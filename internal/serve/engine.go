package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
)

// ErrNotReady reports a request against an engine with no published
// snapshot yet (no training has completed). HTTP maps it to 503.
var ErrNotReady = errors.New("serve: no model snapshot published yet")

// ErrClosed reports a request against a closed engine.
var ErrClosed = errors.New("serve: engine closed")

// Options tunes the engine. The zero value is usable: worker count follows
// mat.Parallelism (the dense-kernel sizing discipline), the queue holds
// 4× workers, batching is off.
type Options struct {
	// Workers bounds the concurrent inference goroutines (0 = the current
	// mat.Parallelism setting).
	Workers int
	// QueueDepth bounds the pending-request queue (0 = 4 × Workers).
	// Callers block — honouring their context deadline — when it is full,
	// so overload degrades into latency rather than dropped work.
	QueueDepth int
	// BatchSize > 1 enables micro-batching: a worker that dequeues a
	// detect request drains up to BatchSize−1 more same-shape (equal node
	// count) detect requests arriving within BatchWindow and answers them
	// with one batched forward pass.
	BatchSize int
	// BatchWindow is how long a worker waits to fill a batch (0 = 2ms,
	// only meaningful when BatchSize > 1).
	BatchWindow time.Duration
	// Metrics, when non-nil, receives the fexiot_serve_* telemetry.
	Metrics *obs.Registry
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return mat.Parallelism()
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 4 * o.workers()
}

func (o Options) batchWindow() time.Duration {
	if o.BatchWindow > 0 {
		return o.BatchWindow
	}
	return 2 * time.Millisecond
}

type reqKind int

const (
	reqDetect reqKind = iota
	reqExplain
)

type request struct {
	kind reqKind
	g    *graph.Graph
	ctx  context.Context
	// done is buffered (capacity 1) so a worker can always deliver even
	// when the caller already gave up on its context.
	done chan response
}

type response struct {
	verdict Verdict
	expl    Explanation
	seq     uint64
	err     error
}

// Engine serves Detect/Explain requests from a bounded worker pool against
// the current snapshot. All methods are safe for concurrent use.
type Engine struct {
	snap atomic.Pointer[Snapshot]
	reqs chan *request
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	opts Options
	m    metrics
}

// NewEngine starts the worker pool (and the snapshot-age ticker when
// metrics are enabled). The engine serves ErrNotReady until the first
// Publish.
func NewEngine(opts Options) *Engine {
	e := &Engine{
		reqs: make(chan *request, opts.queueDepth()),
		stop: make(chan struct{}),
		opts: opts,
		m:    newMetrics(opts.Metrics),
	}
	for i := 0; i < opts.workers(); i++ {
		e.wg.Add(1)
		go e.worker()
	}
	if opts.Metrics != nil {
		e.wg.Add(1)
		go e.ageTicker()
	}
	return e
}

// Publish atomically swaps the live snapshot. In-flight requests finish on
// the snapshot they loaded; requests dequeued after the swap see the new
// one. Nil snapshots are ignored.
func (e *Engine) Publish(s *Snapshot) {
	if s == nil {
		return
	}
	e.snap.Store(s)
	e.m.published.Inc()
	e.m.snapshotSeq.Set(float64(s.Seq()))
	e.m.snapshotAge.Set(time.Since(s.Created()).Seconds())
}

// Snapshot returns the live snapshot (nil before the first Publish) —
// callers that want several reads from one consistent model pin it once.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Detect classifies g on the worker pool. It blocks until a worker
// answers, ctx expires, or the engine closes; the returned sequence number
// identifies the snapshot that served the request.
func (e *Engine) Detect(ctx context.Context, g *graph.Graph) (Verdict, uint64, error) {
	resp := e.submit(ctx, &request{kind: reqDetect, g: g, ctx: ctx})
	return resp.verdict, resp.seq, resp.err
}

// Explain runs the explanation search on the worker pool.
func (e *Engine) Explain(ctx context.Context, g *graph.Graph) (Explanation, uint64, error) {
	resp := e.submit(ctx, &request{kind: reqExplain, g: g, ctx: ctx})
	return resp.expl, resp.seq, resp.err
}

func (e *Engine) submit(ctx context.Context, r *request) response {
	r.done = make(chan response, 1)
	e.m.inflight.Add(1)
	defer e.m.inflight.Add(-1)
	sp := obs.StartSpan(e.m.latency(r.kind))
	defer sp.End()
	select {
	case e.reqs <- r:
		e.m.queueDepth.Set(float64(len(e.reqs)))
	case <-ctx.Done():
		return response{err: ctx.Err()}
	case <-e.stop:
		return response{err: ErrClosed}
	}
	select {
	case resp := <-r.done:
		return resp
	case <-ctx.Done():
		return response{err: ctx.Err()}
	case <-e.stop:
		return response{err: ErrClosed}
	}
}

// Close stops the workers and fails queued requests with ErrClosed. It is
// idempotent and waits for the pool to drain.
func (e *Engine) Close() {
	e.once.Do(func() { close(e.stop) })
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case r := <-e.reqs:
			e.m.queueDepth.Set(float64(len(e.reqs)))
			e.process(r)
		}
	}
}

// process answers one dequeued request, micro-batching same-shape detect
// requests when enabled. The snapshot is loaded exactly once per batch, so
// every request in it — and each individual request — is answered by a
// single consistent model even if Publish lands mid-flight.
func (e *Engine) process(r *request) {
	if r.ctx != nil && r.ctx.Err() != nil {
		r.done <- response{err: r.ctx.Err()}
		return
	}
	if r.kind == reqDetect && e.opts.BatchSize > 1 {
		e.processBatch(r)
		return
	}
	snap := e.snap.Load()
	if snap == nil {
		r.done <- response{err: ErrNotReady}
		return
	}
	switch r.kind {
	case reqDetect:
		r.done <- response{verdict: snap.Detect(r.g), seq: snap.Seq()}
	case reqExplain:
		r.done <- response{expl: snap.Explain(r.g), seq: snap.Seq()}
	}
}

// processBatch drains up to BatchSize−1 further detect requests with the
// same node count arriving within BatchWindow, then answers the whole
// batch with one DetectBatch pass. Requests that do not fit the batch
// (explain, different shape) are answered individually afterwards by the
// same worker.
func (e *Engine) processBatch(first *request) {
	batch := []*request{first}
	var leftover []*request
	shape := first.g.N()
	timer := time.NewTimer(e.opts.batchWindow())
	defer timer.Stop()
fill:
	for len(batch) < e.opts.BatchSize {
		select {
		case r := <-e.reqs:
			if r.ctx != nil && r.ctx.Err() != nil {
				r.done <- response{err: r.ctx.Err()}
				continue
			}
			if r.kind == reqDetect && r.g.N() == shape {
				batch = append(batch, r)
			} else {
				leftover = append(leftover, r)
			}
		case <-timer.C:
			break fill
		case <-e.stop:
			// Shutting down: fail everything we hold.
			for _, r := range append(batch, leftover...) {
				r.done <- response{err: ErrClosed}
			}
			return
		}
	}
	e.m.batchSize.Observe(float64(len(batch)))
	snap := e.snap.Load()
	if snap == nil {
		for _, r := range batch {
			r.done <- response{err: ErrNotReady}
		}
	} else {
		gs := make([]*graph.Graph, len(batch))
		for i, r := range batch {
			gs[i] = r.g
		}
		verdicts := snap.DetectBatch(gs)
		for i, r := range batch {
			r.done <- response{verdict: verdicts[i], seq: snap.Seq()}
		}
	}
	for _, r := range leftover {
		e.process(r)
	}
}

// ageTicker keeps the snapshot-age gauge current between publishes.
func (e *Engine) ageTicker() {
	defer e.wg.Done()
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
			if s := e.snap.Load(); s != nil {
				e.m.snapshotAge.Set(time.Since(s.Created()).Seconds())
			}
		}
	}
}
