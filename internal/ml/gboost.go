package ml

import (
	"math"
	"sort"

	"fexiot/internal/mat"
)

// regNode is a regression tree node used by gradient boosting.
type regNode struct {
	feature int
	thresh  float64
	left    *regNode
	right   *regNode
	value   float64
	isLeaf  bool
}

// regTree fits a depth-bounded regression tree on residuals by variance
// reduction, with leaf values computed by the Newton step for logistic loss
// (as in standard GBDT).
type regTree struct {
	maxDepth   int
	minSamples int
	root       *regNode
}

// fit grows the tree on gradients g and hessians h.
func (t *regTree) fit(x [][]float64, g, h []float64) {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(x, g, h, idx, 0)
}

func leafValue(g, h []float64, idx []int) float64 {
	var sg, sh float64
	for _, i := range idx {
		sg += g[i]
		sh += h[i]
	}
	if sh < 1e-9 {
		return 0
	}
	return -sg / sh // Newton step
}

func (t *regTree) grow(x [][]float64, g, h []float64, idx []int, depth int) *regNode {
	if depth >= t.maxDepth || len(idx) < t.minSamples {
		return &regNode{isLeaf: true, value: leafValue(g, h, idx)}
	}
	// Gain for splitting by the standard GBDT criterion G²/H.
	score := func(sg, sh float64) float64 {
		if sh < 1e-9 {
			return 0
		}
		return sg * sg / sh
	}
	var totG, totH float64
	for _, i := range idx {
		totG += g[i]
		totH += h[i]
	}
	parent := score(totG, totH)
	bestGain := 1e-10
	bestFeat := -1
	bestThresh := 0.0
	d := len(x[0])
	type pair struct {
		v float64
		i int
	}
	vals := make([]pair, len(idx))
	for f := 0; f < d; f++ {
		for k, i := range idx {
			vals[k] = pair{x[i][f], i}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		var lg, lh float64
		for k := 0; k+1 < len(vals); k++ {
			i := vals[k].i
			lg += g[i]
			lh += h[i]
			if vals[k].v == vals[k+1].v {
				continue
			}
			gain := score(lg, lh) + score(totG-lg, totH-lh) - parent
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &regNode{isLeaf: true, value: leafValue(g, h, idx)}
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &regNode{isLeaf: true, value: leafValue(g, h, idx)}
	}
	return &regNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    t.grow(x, g, h, li, depth+1),
		right:   t.grow(x, g, h, ri, depth+1),
	}
}

func (t *regTree) predict(q []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.isLeaf {
		if q[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// GradientBoost is the gradient-boosted-trees classifier of Fig. 3: an
// additive ensemble of shallow regression trees fit to the logistic-loss
// gradients, with shrinkage.
type GradientBoost struct {
	Trees        int
	MaxDepth     int
	LearningRate float64

	bias  float64
	trees []*regTree
}

// NewGradientBoost creates a boosted ensemble.
func NewGradientBoost(trees, maxDepth int, lr float64) *GradientBoost {
	return &GradientBoost{Trees: trees, MaxDepth: maxDepth, LearningRate: lr}
}

// Fit trains the ensemble by functional gradient descent on logistic loss.
func (b *GradientBoost) Fit(x [][]float64, y []int) {
	b.trees = b.trees[:0]
	n := len(x)
	if n == 0 {
		return
	}
	// Initial bias: log-odds of the positive rate.
	pos := 0
	for _, v := range y {
		if v == 1 {
			pos++
		}
	}
	// Clamp away from {0, 1}: a degenerate all-one-class training set must
	// yield a large-but-finite log-odds bias, never ±Inf (which would turn
	// every later sigmoid/gradient into garbage).
	p := mat.Clamp(float64(pos)/float64(n), 1e-12, 1-1e-12)
	b.bias = math.Log(p / (1 - p))

	raw := make([]float64, n)
	for i := range raw {
		raw[i] = b.bias
	}
	g := make([]float64, n)
	h := make([]float64, n)
	for t := 0; t < b.Trees; t++ {
		for i := 0; i < n; i++ {
			pi := mat.Sigmoid(raw[i])
			g[i] = pi - float64(y[i]) // dL/draw
			h[i] = pi * (1 - pi)      // d²L/draw²
		}
		tree := &regTree{maxDepth: b.MaxDepth, minSamples: 2}
		tree.fit(x, g, h)
		b.trees = append(b.trees, tree)
		for i := 0; i < n; i++ {
			raw[i] += b.LearningRate * tree.predict(x[i])
		}
	}
}

// Score returns the positive-class probability.
func (b *GradientBoost) Score(q []float64) float64 {
	raw := b.bias
	for _, t := range b.trees {
		raw += b.LearningRate * t.predict(q)
	}
	return mat.Sigmoid(raw)
}

// Predict thresholds Score at 0.5.
func (b *GradientBoost) Predict(q []float64) int {
	if b.Score(q) >= 0.5 {
		return 1
	}
	return 0
}
