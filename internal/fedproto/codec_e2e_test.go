package fedproto

import (
	"context"
	"encoding/gob"
	"errors"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/embed"
	"fexiot/internal/fed"
	"fexiot/internal/fedproto/codec"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
)

// bigParams builds a two-layer parameter set with 400 values per layer —
// large enough that per-update wire bytes are dominated by tensor data, not
// gob framing, so compression ratios measured on the socket are meaningful.
func bigParams(seed int64) *autodiff.ParamSet {
	p := autodiff.NewParamSet()
	s := uint64(seed)
	fill := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			s = splitmix64(s)
			out[i] = float64(s%100000)/100000 - 0.5
		}
		return out
	}
	p.Register("l0.w", 0, mat.NewDenseData(1, 400, fill(400)))
	p.Register("l1.w", 1, mat.NewDenseData(1, 400, fill(400)))
	return p
}

// varyDelta shifts every parameter by a small element-dependent amount, so
// scripted updates have realistic (non-constant) deltas for quantisation.
func varyDelta(p *autodiff.ParamSet, id, round int) {
	s := splitmix64(uint64(id)*1000003 + uint64(round))
	for _, name := range p.Names() {
		m := p.Get(name)
		d := m.Data()
		for i := range d {
			s = splitmix64(s)
			d[i] += float64(s%1000) / 50000 // [0, 0.02)
		}
	}
}

// runScriptedCodecFed drives a clients×rounds scripted federation with the
// given server codec preference and returns the server (its metrics still
// readable) and every client's final params.
func runScriptedCodecFed(t *testing.T, codecName string, nClients, rounds int) (*Server, []*autodiff.ParamSet) {
	t.Helper()
	addr := freeAddr(t)
	srv := NewServer(ServerConfig{
		Addr:         addr,
		Clients:      nClients,
		Rounds:       rounds,
		NumLayers:    2,
		Quorum:       1,
		RoundTimeout: 10 * time.Second,
		Eps1:         0.4,
		Eps2:         0.95,
		Codec:        codecName,
		Metrics:      obs.NewRegistry(),
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		serverErr <- err
	}()

	params := make([]*autodiff.ParamSet, nClients)
	errs := make([]error, nClients)
	var wg sync.WaitGroup
	for id := 0; id < nClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := bigParams(int64(id))
			params[id] = p
			var conn *Conn
			for try := 0; try < 100; try++ {
				raw, err := net.Dial("tcp", addr)
				if err == nil {
					conn = Wrap(raw)
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if conn == nil {
				errs[id] = net.ErrClosed
				return
			}
			defer conn.Close()
			errs[id] = RunClientLoop(context.Background(), conn, id, 10, p,
				func(round int) map[int]float64 {
					varyDelta(p, id, round)
					return zeroNorms(p)
				})
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not finish")
	}
	return srv, params
}

// TestCodecQ8ByteReduction is the communication-efficiency acceptance e2e:
// a q8 federation's per-update wire bytes (measured on the real socket and
// reported through the new obs counters) must be at least 4× smaller than
// the dense raw64 updates of the same federation, and the lossy pipeline
// must land within quantisation error of a bit-exact raw64 twin run.
func TestCodecQ8ByteReduction(t *testing.T) {
	const nClients, rounds = 3, 4
	srv, q8Params := runScriptedCodecFed(t, codec.Q8, nClients, rounds)

	// Round 0 has no shared base, so its updates go dense and are recorded
	// under raw64; rounds 1..3 ride q8 deltas. Compare per-update averages.
	rawWire := srv.metrics.updEnc.With(codec.Raw64).Value()
	q8Wire := srv.metrics.updEnc.With(codec.Q8).Value()
	if rawWire <= 0 || q8Wire <= 0 {
		t.Fatalf("update byte counters not populated: raw64=%d q8=%d", rawWire, q8Wire)
	}
	avgRaw := float64(rawWire) / float64(nClients)          // 1 dense round
	avgQ8 := float64(q8Wire) / float64(nClients*(rounds-1)) // 3 q8 rounds
	if avgRaw < 4*avgQ8 {
		t.Fatalf("q8 update averages %.0f wire bytes vs %.0f dense — reduction %.2fx, want ≥4x",
			avgQ8, avgRaw, avgRaw/avgQ8)
	}
	if dense := srv.metrics.updRaw.Value(); dense <= rawWire {
		t.Fatalf("raw-equivalent tally %d should exceed the dense round's wire bytes %d", dense, rawWire)
	}
	if n := srv.metrics.ratio.Count(); n != int64(nClients*rounds) {
		t.Fatalf("compression-ratio histogram saw %d updates, want %d", n, nClients*rounds)
	}

	// Twin run under raw64: identical scripts, lossless wire. The q8 run
	// must agree within accumulated quantisation error (per-round error is
	// ≤ Scale/2 per coordinate with Scale ≈ delta-range/255 ≈ 8e-5).
	_, rawParams := runScriptedCodecFed(t, codec.Raw64, nClients, rounds)
	for id := range rawParams {
		want, got := rawParams[id].Flatten(), q8Params[id].Flatten()
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 5e-3 {
				t.Fatalf("client %d element %d: q8 %v vs raw64 %v (|Δ|=%v)",
					id, i, got[i], want[i], d)
			}
		}
	}
}

// TestDecodeUpdateDeltaReconstruction pins the codec layer against the
// server's base bookkeeping: a delta decodes to base+delta exactly (raw64
// framing) or within quantisation error, a delta naming no base is
// malformed, and a base of the wrong shape is rejected before indexing.
func TestDecodeUpdateDeltaReconstruction(t *testing.T) {
	p := scriptParams()
	addDelta(p, 0.5)
	base := scriptParams()
	basePayloads := EncodeLayers(base, []int{0, 1}, zeroNorms(base))

	cdc, _ := codec.New(codec.Q8)
	lay, scheme, isDelta := encodeUpdate(p, base, []int{0, 1}, zeroNorms(p), cdc)
	if scheme != codec.Q8 || !isDelta {
		t.Fatalf("encodeUpdate scheme=%q delta=%v", scheme, isDelta)
	}
	m := &Message{Kind: MsgUpdate, Layers: lay, Codec: scheme, Delta: isDelta, BaseSeq: 9}
	if err := decodeUpdate(m, basePayloads); err != nil {
		t.Fatal(err)
	}
	if err := ValidateUpdate(m, 2); err != nil {
		t.Fatal(err)
	}
	for l, pl := range m.Layers {
		for i, d := range pl.Data {
			for j, v := range d {
				want := p.Get(pl.Names[i]).Data()[j]
				if math.Abs(v-want) > 1e-2 {
					t.Fatalf("layer %d tensor %d el %d: %v want ≈%v", l, i, j, v, want)
				}
			}
		}
	}

	// No base: the update is undecodable and must be named malformed.
	lay2, scheme2, _ := encodeUpdate(p, base, []int{0, 1}, zeroNorms(p), cdc)
	m2 := &Message{Kind: MsgUpdate, Layers: lay2, Codec: scheme2, Delta: true, BaseSeq: 404}
	if err := decodeUpdate(m2, nil); !errors.Is(err, ErrMalformedUpdate) {
		t.Fatalf("unknown base: %v, want ErrMalformedUpdate", err)
	}

	// Wrong-shape base: rejected, never indexed out of range.
	small := autodiff.NewParamSet()
	small.Register("l0.w", 0, mat.NewDenseData(1, 1, []float64{1}))
	lay3, scheme3, _ := encodeUpdate(p, base, []int{0, 1}, zeroNorms(p), cdc)
	m3 := &Message{Kind: MsgUpdate, Layers: lay3, Codec: scheme3, Delta: true}
	if err := decodeUpdate(m3, EncodeLayers(small, []int{0}, nil)); !errors.Is(err, ErrMalformedUpdate) {
		t.Fatalf("mismatched base: %v, want ErrMalformedUpdate", err)
	}

	// No-base encode falls back to dense raw64 — lossy absolute weights
	// would corrupt a fresh joiner's first round.
	lay4, scheme4, isDelta4 := encodeUpdate(p, nil, []int{0, 1}, zeroNorms(p), cdc)
	if scheme4 != "" || isDelta4 {
		t.Fatalf("no-base encode: scheme=%q delta=%v, want dense raw64", scheme4, isDelta4)
	}
	for _, pl := range lay4 {
		if len(pl.Enc) != 0 || len(pl.Data) == 0 {
			t.Fatal("no-base encode must carry dense Data")
		}
	}
}

// TestCodecChaosKillQ8 reruns the headline fault-tolerance chaos test under
// q8 updates: four clients, quorum 3, one hard-killed mid-federation. The
// codec layer must not weaken the quorum machinery, and the survivors'
// final models must stay within quantisation error of the dense closed
// form.
func TestCodecChaosKillQ8(t *testing.T) {
	addr := freeAddr(t)
	srv := NewServer(ServerConfig{
		Addr:         addr,
		Clients:      4,
		Rounds:       3,
		NumLayers:    2,
		Quorum:       0.75,
		MaxStrikes:   1,
		RoundTimeout: 2 * time.Second,
		Eps1:         0.4,
		Eps2:         0.95,
		Codec:        codec.Q8,
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		serverErr <- err
	}()

	params := make([]*autodiff.ParamSet, 4)
	clientErrs := make([]error, 4)
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := scriptParams()
			params[id] = p
			var raw net.Conn
			var err error
			for try := 0; try < 50; try++ {
				raw, err = net.Dial("tcp", addr)
				if err == nil {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err != nil {
				clientErrs[id] = err
				return
			}
			var fc *FaultConn
			if id == 3 {
				fc = NewFaultConn(raw)
				raw = fc
			}
			conn := Wrap(raw)
			defer conn.Close()
			clientErrs[id] = RunClientLoop(context.Background(), conn, id, 10, p,
				func(round int) map[int]float64 {
					if id == 3 && round == 1 {
						fc.Kill()
					}
					addDelta(p, float64(id+1)*0.1)
					return zeroNorms(p)
				})
		}(id)
	}
	wg.Wait()

	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server failed despite quorum: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not finish")
	}
	for id := 0; id < 3; id++ {
		if clientErrs[id] != nil {
			t.Fatalf("survivor %d: %v", id, clientErrs[id])
		}
	}
	if clientErrs[3] == nil {
		t.Fatal("killed client finished cleanly — Kill did not bite")
	}
	if got := srv.Stats().RoundsCompleted; got != 3 {
		t.Fatalf("rounds completed %d, want 3", got)
	}

	// Dense closed form (round 0 mean 0.25, rounds 1-2 mean 0.2), met
	// within accumulated q8 error: constant deltas quantise exactly, so the
	// tolerance only covers the offset/scale representation.
	wantShift := 0.25 + 0.2 + 0.2
	base := scriptParams()
	for id := 0; id < 3; id++ {
		got := params[id].Flatten()
		for i, b := range base.Flatten() {
			want := b + wantShift
			if diff := math.Abs(got[i] - want); diff > 1e-6 {
				t.Fatalf("survivor %d element %d = %v, want %v (|Δ|=%v)", id, i, got[i], want, diff)
			}
		}
	}
}

// legacy checkpoint layout, exactly as a pre-codec build gob-encoded it
// (no Enc field on payloads). Gob matches fields by name, so decoding the
// modern Checkpoint from these bytes is the real old-snapshot upgrade path.
type legacyLayerPayload struct {
	Layer      int
	Names      []string
	Shapes     [][2]int
	Data       [][]float64
	UpdateNorm float64
}

type legacyCheckpoint struct {
	Round   int
	Shapes  [][][2]int
	Names   [][]string
	Global  []legacyLayerPayload
	Strikes map[int]int
	Sizes   map[int]int
	Stats   ServerStats
}

// TestPreCodecCheckpointResumeBitIdentical pins checkpoint compatibility: a
// raw64 federation resumed from a snapshot written by a pre-codec build
// finishes with bit-identical models across clients and the exact dense
// closed form — the codec fields must change nothing about the durable
// format's semantics.
func TestPreCodecCheckpointResumeBitIdentical(t *testing.T) {
	// The "old build's" snapshot: rounds 0-1 closed, global = base + 1.
	global := scriptParams()
	addDelta(global, 1)
	var legacy legacyCheckpoint
	legacy.Round = 2
	legacy.Shapes = [][][2]int{{{1, 2}}, {{1, 2}}}
	legacy.Names = [][]string{{"l0.w"}, {"l1.w"}}
	for l, pl := range EncodeLayers(global, []int{0, 1}, zeroNorms(global)) {
		legacy.Global = append(legacy.Global, legacyLayerPayload{
			Layer: l, Names: pl.Names, Shapes: pl.Shapes, Data: pl.Data})
	}
	legacy.Strikes = map[int]int{}
	legacy.Sizes = map[int]int{0: 10, 1: 10}
	legacy.Stats = ServerStats{RoundsCompleted: 2, Responders: []int{2, 2}}

	ckpt := filepath.Join(t.TempDir(), "precodec.ckpt")
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addr := freeAddr(t)
	srv := NewServer(ServerConfig{
		Addr:           addr,
		Clients:        2,
		Rounds:         4,
		NumLayers:      2,
		Quorum:         1,
		RoundTimeout:   5 * time.Second,
		Eps1:           0.4,
		Eps2:           0.95,
		CheckpointPath: ckpt,
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		serverErr <- err
	}()

	params := make([]*autodiff.ParamSet, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := scriptParams()
			params[id] = p
			_, errs[id] = RunClientSession(context.Background(), ClientConfig{
				Addr: addr, ID: id, DataSize: 10,
				OpTimeout: 5 * time.Second, Seed: int64(id),
			}, p, func(round int) map[int]float64 {
				addDelta(p, float64(id+1)*0.1)
				return zeroNorms(p)
			})
		}(id)
	}
	wg.Wait()
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("resumed server: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not finish")
	}
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}

	// Rounds 2 and 3 ran. Bit-identity: both clients hold the exact same
	// bits (raw64 stays lossless end to end), and the value matches the
	// closed form — replayed global plus two rounds of mean delta 0.15 —
	// up to summation order inside the aggregator.
	a, b := params[0].Flatten(), params[1].Flatten()
	want := scriptParams()
	addDelta(want, 1)
	wantFlat := want.Flatten()
	for i := range wantFlat {
		if a[i] != b[i] {
			t.Fatalf("element %d diverged across clients: %v vs %v", i, a[i], b[i])
		}
		if diff := math.Abs(a[i] - (wantFlat[i] + 0.3)); diff > 1e-9 {
			t.Fatalf("element %d = %v, want %v (|Δ|=%v)", i, a[i], wantFlat[i]+0.3, diff)
		}
	}
}

// TestCodecPoisonF1Parity is the accuracy half of the acceptance pin: a
// real GIN federation with one sign-flipping Byzantine client under
// trimmed-mean aggregation, run twice — raw64 and q8 — must land within 2
// F1 points of each other on held-out graphs. Quantised deltas must not
// change what the poison defences deliver.
func TestCodecPoisonF1Parity(t *testing.T) {
	enc := embed.NewEncoder(16, 24)
	pool := fusion.MultiHomePool(3, 20, 15, nil)
	b := fusion.NewBuilder(5, enc)
	mkData := func(n int) []*graph.Graph {
		out := make([]*graph.Graph, n)
		for i := range out {
			out[i] = b.OfflineSized(pool)
		}
		return out
	}
	const nClients = 4
	datasets := make([][]*graph.Graph, nClients)
	for i := range datasets {
		datasets[i] = mkData(20)
	}
	test := mkData(30)
	dim := fusion.WordFeatureDim(enc)
	base := gnn.NewGIN(dim, 8, 4, 100)

	runOnce := func(codecName string) float64 {
		addr := freeAddr(t)
		srv := NewServer(ServerConfig{
			Addr:         addr,
			Clients:      nClients,
			Rounds:       2,
			Eps1:         0.4,
			Eps2:         0.95,
			NumLayers:    base.Params().NumLayers(),
			Quorum:       1,
			RoundTimeout: 60 * time.Second,
			Aggregator:   fed.TrimmedMeanAgg{},
			Codec:        codecName,
		})
		serverErr := make(chan error, 1)
		go func() {
			_, err := srv.Run(context.Background())
			serverErr <- err
		}()

		models := make([]gnn.Model, nClients)
		errs := make([]error, nClients)
		var wg sync.WaitGroup
		for id := 0; id < nClients; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				m := base.Fresh(int64(id))
				m.Params().CopyFrom(base.Params())
				models[id] = m
				data := datasets[id]
				opt := autodiff.NewAdam(0.005)
				cfg := gnn.DefaultTrainConfig(int64(id))
				cfg.PairsPerEpoch = 10
				var conn *Conn
				for try := 0; try < 100; try++ {
					raw, err := net.Dial("tcp", addr)
					if err == nil {
						conn = Wrap(raw)
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
				if conn == nil {
					errs[id] = net.ErrClosed
					return
				}
				defer conn.Close()
				errs[id] = RunClientLoop(context.Background(), conn, id, len(data), m.Params(),
					func(round int) map[int]float64 {
						before := m.Params().Clone()
						cfg.Seed = int64(id*100 + round)
						gnn.TrainContrastive(m, data, cfg, opt)
						if id == nClients-1 {
							// The Byzantine member: honest training, poisoned
							// update — the adversary of the poison suite.
							fed.CorruptUpdate(fed.SignFlip{}, before, m.Params())
						}
						return LayerNorms(before, m.Params())
					})
			}(id)
		}
		wg.Wait()
		for id, err := range errs {
			if err != nil {
				t.Fatalf("%s client %d: %v", codecName, id, err)
			}
		}
		if err := <-serverErr; err != nil {
			t.Fatalf("%s server: %v", codecName, err)
		}

		det := gnn.NewDetector(models[0], 3)
		det.FitClassifier(datasets[0])
		return gnn.EvaluateDetector(det, test).F1
	}

	rawF1 := runOnce(codec.Raw64)
	q8F1 := runOnce(codec.Q8)
	if d := math.Abs(rawF1 - q8F1); d > 0.02 {
		t.Fatalf("F1 drifted %.4f under q8 (raw64 %.4f, q8 %.4f), want within 2 points",
			d, rawF1, q8F1)
	}
}
