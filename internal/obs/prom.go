package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per family,
// one sample line per series, histograms expanded into cumulative
// le-labeled buckets plus _sum and _count. Output is deterministic —
// families sort by name, series by label values — so scrapes (and golden
// tests) are stable regardless of registration or update order. Safe on a
// nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if err := f.writeProm(w); err != nil {
			return err
		}
	}
	return nil
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries snapshots a family's series ordered by label values.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	ss := append([]*series(nil), f.series...)
	f.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i].labelValues, ss[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return ss
}

func (f *family) writeProm(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for _, s := range f.sortedSeries() {
		if err := f.writeSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeSeries(w io.Writer, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n",
			f.name, labelString(f.labelNames, s.labelValues, "", ""), s.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, labelString(f.labelNames, s.labelValues, "", ""), formatFloat(s.gauge.Value()))
		return err
	case kindHistogram:
		cum := s.hist.snapshot()
		for i, bound := range s.hist.bounds {
			le := formatFloat(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(f.labelNames, s.labelValues, "le", le), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labelNames, s.labelValues, "le", "+Inf"), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
			labelString(f.labelNames, s.labelValues, "", ""), formatFloat(s.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
			labelString(f.labelNames, s.labelValues, "", ""), s.hist.Count())
		return err
	}
	return nil
}

// labelString renders {a="x",b="y"} with values escaped, optionally
// appending one extra label (the histogram le). Label order is declaration
// order — stable by construction.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline (quotes are legal
// in HELP text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: shortest exact
// decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
