package autodiff

import (
	"math"
	"testing"
	"testing/quick"

	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

func demoParams() *ParamSet {
	p := NewParamSet()
	p.Register("l0.w", 0, mat.NewDenseData(2, 2, []float64{1, 2, 3, 4}))
	p.Register("l0.b", 0, mat.NewDenseData(1, 2, []float64{5, 6}))
	p.Register("l1.w", 1, mat.NewDenseData(2, 1, []float64{7, 8}))
	return p
}

func TestParamSetStructure(t *testing.T) {
	p := demoParams()
	if p.NumLayers() != 2 {
		t.Fatalf("NumLayers = %d", p.NumLayers())
	}
	if p.NumElements() != 8 {
		t.Fatalf("NumElements = %d", p.NumElements())
	}
	if p.LayerElements(0) != 6 || p.LayerElements(1) != 2 {
		t.Fatal("LayerElements wrong")
	}
	if got := p.LayerNames(0); len(got) != 2 || got[0] != "l0.b" || got[1] != "l0.w" {
		t.Fatalf("LayerNames(0) = %v", got)
	}
	flat := p.FlattenLayer(1)
	if len(flat) != 2 || flat[0] != 7 {
		t.Fatalf("FlattenLayer = %v", flat)
	}
	if len(p.Flatten()) != 8 {
		t.Fatal("Flatten length")
	}
}

func TestParamSetCloneAndCopy(t *testing.T) {
	p := demoParams()
	q := p.Clone()
	q.Get("l0.w").Set(0, 0, 99)
	if p.Get("l0.w").At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
	p.CopyFrom(q)
	if p.Get("l0.w").At(0, 0) != 99 {
		t.Fatal("CopyFrom failed")
	}
	r := demoParams()
	r.CopyLayerFrom(q, 1)
	if r.Get("l0.w").At(0, 0) != 1 {
		t.Fatal("CopyLayerFrom must not touch other layers")
	}
}

func TestWeightedAverageIdentityProperty(t *testing.T) {
	// FedAvg of k identical models is the model itself.
	f := func(seed int64) bool {
		g := rng.New(seed)
		base := NewParamSet()
		base.Register("w", 0, g.Gaussian(3, 3, 1))
		k := int(seed%4+4) % 4
		k += 2
		sets := make([]*ParamSet, k)
		weights := make([]float64, k)
		for i := range sets {
			sets[i] = base.Clone()
			weights[i] = 1 / float64(k)
		}
		dst := base.Clone()
		WeightedAverage(dst, sets, weights)
		return dst.Get("w").Equalish(base.Get("w"), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedAverageLayerIsolation(t *testing.T) {
	a := demoParams()
	b := demoParams()
	b.Get("l1.w").Fill(0)
	b.Get("l0.w").Fill(0)
	dst := demoParams()
	WeightedAverageLayer(dst, []*ParamSet{a, b}, []float64{0.5, 0.5}, 1)
	// Layer 1 averaged: (7+0)/2.
	if dst.Get("l1.w").At(0, 0) != 3.5 {
		t.Fatalf("layer 1 avg = %v", dst.Get("l1.w").At(0, 0))
	}
	// Layer 0 untouched.
	if dst.Get("l0.w").At(0, 0) != 1 {
		t.Fatal("layer 0 modified")
	}
}

func TestSubAndNorm(t *testing.T) {
	p := demoParams()
	q := demoParams()
	d := p.Sub(q)
	if d.Norm() != 0 {
		t.Fatalf("self-difference norm = %v", d.Norm())
	}
	q.Get("l0.w").Set(0, 0, 0) // was 1
	d = p.Sub(q)
	if math.Abs(d.Norm()-1) > 1e-12 {
		t.Fatalf("norm = %v want 1", d.Norm())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise ||w - target||² with Adam; should approach target.
	target := mat.NewDenseData(2, 2, []float64{1, -2, 3, -4})
	p := NewParamSet()
	p.Register("w", 0, mat.NewDense(2, 2))
	opt := NewAdam(0.05)
	for i := 0; i < 500; i++ {
		tape := NewTape()
		b := Bind(tape, p)
		loss := tape.MSE(b.Node("w"), target)
		tape.Backward(loss)
		opt.Step(p, b.Grads())
	}
	if !p.Get("w").Equalish(target, 1e-2) {
		t.Fatalf("Adam failed to converge: %v", p.Get("w"))
	}
}

func TestAdamSkipsMissingGrads(t *testing.T) {
	p := demoParams()
	before := p.Get("l1.w").Clone()
	opt := NewAdam(0.1)
	opt.Step(p, map[string]*mat.Dense{}) // no gradients at all
	if !p.Get("l1.w").Equalish(before, 0) {
		t.Fatal("parameters changed without gradients")
	}
}

func TestClipGrads(t *testing.T) {
	g := map[string]*mat.Dense{
		"a": mat.NewDenseData(1, 2, []float64{3, 0}),
		"b": mat.NewDenseData(1, 2, []float64{0, 4}),
	}
	ClipGrads(g, 1) // global norm is 5
	var total float64
	for _, m := range g {
		for _, x := range m.Data() {
			total += x * x
		}
	}
	if math.Abs(math.Sqrt(total)-1) > 1e-9 {
		t.Fatalf("clipped norm = %v", math.Sqrt(total))
	}
	// Below threshold: untouched.
	h := map[string]*mat.Dense{"a": mat.NewDenseData(1, 1, []float64{0.5})}
	ClipGrads(h, 1)
	if h["a"].At(0, 0) != 0.5 {
		t.Fatal("small grads must not change")
	}
}

func TestBinderMemoisesNodes(t *testing.T) {
	p := demoParams()
	tape := NewTape()
	b := Bind(tape, p)
	if b.Node("l0.w") != b.Node("l0.w") {
		t.Fatal("Binder must return the same node for repeated use")
	}
}

func TestAccumulateGrads(t *testing.T) {
	p := NewParamSet()
	p.Register("w", 0, mat.NewDenseData(1, 1, []float64{2}))
	acc := map[string]*mat.Dense{}
	for i := 0; i < 3; i++ {
		tape := NewTape()
		b := Bind(tape, p)
		y := b.Node("w")
		sq := tape.Hadamard(y, y)
		tape.Backward(tape.SumAll(sq))
		b.AccumulateGrads(acc)
	}
	// d(w²)/dw = 4 per pass, 3 passes.
	if got := acc["w"].At(0, 0); math.Abs(got-12) > 1e-12 {
		t.Fatalf("accumulated grad = %v want 12", got)
	}
}
