package lexicon

import "testing"

func TestSynonyms(t *testing.T) {
	l := New()
	cases := []struct {
		a, b string
		want bool
	}{
		{"light", "lamp", true},
		{"lamp", "bulb", true},
		{"fridge", "refrigerator", true},
		{"light", "camera", false},
		{"open", "close", false},
		{"ac", "conditioner", true},
	}
	for _, c := range cases {
		if got := l.AreSynonyms(c.a, c.b); got != c.want {
			t.Errorf("AreSynonyms(%q,%q) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSynonymyIsSymmetric(t *testing.T) {
	l := New()
	vocab := l.Vocabulary()
	for i := 0; i < len(vocab); i += 7 {
		for j := 0; j < len(vocab); j += 11 {
			a, b := vocab[i], vocab[j]
			if l.AreSynonyms(a, b) != l.AreSynonyms(b, a) {
				t.Fatalf("asymmetry for %q, %q", a, b)
			}
		}
	}
}

func TestHypernyms(t *testing.T) {
	l := New()
	if !l.IsHypernymOf("device", "camera") {
		t.Error("camera should be a device")
	}
	if !l.IsHypernymOf("device", "heater") {
		t.Error("heater → appliance → device chain broken")
	}
	if !l.IsHypernymOf("sensor", "detector") {
		t.Error("detector should be a sensor")
	}
	if l.IsHypernymOf("camera", "device") {
		t.Error("hypernymy must be directional")
	}
	// Synonym canonicalisation feeds into hypernym lookup.
	if !l.IsHypernymOf("device", "fridge") {
		t.Error("fridge (synonym of refrigerator) should be a device")
	}
}

func TestMeronyms(t *testing.T) {
	l := New()
	if !l.IsMeronymOf("lock", "door") {
		t.Error("lock is part of door")
	}
	if !l.IsMeronymOf("lock", "home") {
		t.Error("transitive meronymy lock → door → home")
	}
	if l.IsMeronymOf("door", "lock") {
		t.Error("meronymy must be directional")
	}
}

func TestRelate(t *testing.T) {
	l := New()
	cases := []struct {
		a, b string
		want Relation
	}{
		{"light", "bulb", Synonym},
		{"camera", "device", Hypernym},
		{"device", "camera", Hyponym},
		{"lock", "door", Meronym},
		{"door", "lock", Holonym},
		{"smoke", "humidity", None},
	}
	for _, c := range cases {
		if got := l.Relate(c.a, c.b); got != c.want {
			t.Errorf("Relate(%q,%q) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRelationFeatures(t *testing.T) {
	l := New()
	f := l.RelationFeatures([]string{"light", "lock"}, []string{"lamp", "door"})
	if f[0] != 1 { // light~lamp synonym
		t.Errorf("synonym slot = %v", f[0])
	}
	if f[3] != 1 { // lock part-of door
		t.Errorf("meronym slot = %v", f[3])
	}
	empty := l.RelationFeatures([]string{"xyzzy"}, []string{"plugh"})
	for i, v := range empty {
		if v != 0 {
			t.Errorf("unknown words slot %d = %v", i, v)
		}
	}
	if len(f) != 5 {
		t.Fatalf("feature width %d", len(f))
	}
}

func TestCanonicalStability(t *testing.T) {
	l := New()
	if l.Canonical("lamp") != l.Canonical("bulb") {
		t.Error("synonyms must share a canonical form")
	}
	if l.Canonical("unknownword") != "unknownword" {
		t.Error("OOV canonical must be identity")
	}
	if l.Canonical("Air Conditioner") != l.Canonical("ac") {
		t.Error("normalisation (case, spaces) failed")
	}
}

func TestVocabularyNonEmptyAndUnique(t *testing.T) {
	v := New().Vocabulary()
	if len(v) < 50 {
		t.Fatalf("vocabulary too small: %d", len(v))
	}
	seen := map[string]bool{}
	for _, w := range v {
		if seen[w] {
			t.Fatalf("duplicate vocab entry %q", w)
		}
		seen[w] = true
	}
}

func TestRelationStringNames(t *testing.T) {
	for r := None; r <= Holonym; r++ {
		if r.String() == "" {
			t.Errorf("relation %d unnamed", r)
		}
	}
}
