package mat

import (
	"testing"
	"testing/quick"
)

func TestCSRBasics(t *testing.T) {
	// [[0 1 0],[2 0 3]]
	s := NewCSR(2, 3, []int{0, 1, 1}, []int{1, 0, 2}, []float64{1, 2, 3})
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	d := s.ToDense()
	want := NewDenseData(2, 3, []float64{0, 1, 0, 2, 0, 3})
	if !d.Equalish(want, 0) {
		t.Fatalf("ToDense = %v", d)
	}
}

func TestCSRDuplicateSum(t *testing.T) {
	s := NewCSR(1, 2, []int{0, 0, 0}, []int{1, 1, 0}, []float64{1, 2, 5})
	d := s.ToDense()
	if d.At(0, 1) != 3 || d.At(0, 0) != 5 {
		t.Fatalf("duplicates not summed: %v", d)
	}
	if s.NNZ() != 2 {
		t.Fatalf("NNZ after merge = %d", s.NNZ())
	}
}

func TestSpMMMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		n := int(seed%5) + 2
		c := int(seed%3) + 1
		var is, js []int
		var vs []float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if (i*7+j*3+int(seed))%3 == 0 {
					is = append(is, i)
					js = append(js, j)
					vs = append(vs, float64((i+j+int(seed%10)))/2)
				}
			}
		}
		if len(is) == 0 {
			is, js, vs = []int{0}, []int{0}, []float64{1}
		}
		s := NewCSR(n, n, is, js, vs)
		b := NewDense(n, c)
		for i := range b.Data() {
			b.Data()[i] = float64(i%7) - 3
		}
		got := SpMM(s, b)
		want := Mul(s.ToDense(), b)
		return got.Equalish(want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRTranspose(t *testing.T) {
	s := NewCSR(2, 3, []int{0, 1, 1}, []int{1, 0, 2}, []float64{1, 2, 3})
	st := s.T()
	want := s.ToDense().T()
	if !st.ToDense().Equalish(want, 0) {
		t.Fatalf("T = %v want %v", st.ToDense(), want)
	}
	r, c := st.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims %dx%d", r, c)
	}
}

func TestCSRRowNZ(t *testing.T) {
	s := NewCSR(2, 3, []int{1, 1}, []int{0, 2}, []float64{2, 3})
	var cols []int
	var sum float64
	s.RowNZ(1, func(j int, v float64) {
		cols = append(cols, j)
		sum += v
	})
	if len(cols) != 2 || sum != 5 {
		t.Fatalf("RowNZ cols=%v sum=%v", cols, sum)
	}
	s.RowNZ(0, func(j int, v float64) { t.Fatal("row 0 should be empty") })
}
