//go:build debugarena

package autodiff

import (
	"math"
	"testing"

	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// TestPoisonCatchesUseAfterRecycle proves the debugarena mode does its job:
// a node value retained across Reset WITHOUT Detach reads back NaN poison,
// so any code that breaks the ownership rules of the package docs fails
// loudly under `go test -tags=debugarena` instead of silently reading
// whatever the next pass wrote.
func TestPoisonCatchesUseAfterRecycle(t *testing.T) {
	if !mat.ArenaPoisonEnabled {
		t.Fatal("debugarena build without poison enabled")
	}
	params := reuseParams(21)
	x := rng.New(23).Gaussian(5, 6, 1)
	tape := NewTape()
	b := Bind(tape, params)
	h := tape.ReLU(tape.MatMul(tape.Constant(x), b.Node("w1")))
	stale := h.Value // ownership violation: kept without Detach/CloneOut
	tape.Reset()

	poisoned := false
	for _, v := range stale.Data() {
		if math.IsNaN(v) {
			poisoned = true
			break
		}
	}
	if !poisoned {
		t.Fatal("recycled tape value not poisoned: use-after-recycle would go undetected")
	}
}

// TestPoisonSparesDetached is the counterpart: the same retention THROUGH
// Detach must stay clean, because Detach transfers ownership out of the
// arena before Reset can poison it.
func TestPoisonSparesDetached(t *testing.T) {
	params := reuseParams(25)
	x := rng.New(27).Gaussian(5, 6, 1)
	tape := NewTape()
	b := Bind(tape, params)
	h := tape.ReLU(tape.MatMul(tape.Constant(x), b.Node("w1")))
	kept := h.Detach()
	tape.Reset()
	for i, v := range kept.Data() {
		if math.IsNaN(v) {
			t.Fatalf("detached value[%d] was poisoned: Detach failed to escape the arena", i)
		}
	}
}
