// Package rules models the smart-home automation domain: physical and
// logical channels, the device catalog, trigger-action rules with platform-
// specific natural-language descriptions, and the causal semantics that
// determine when one rule's action can trigger another rule. It is the
// generative substitute for the rule corpora the paper crawls from five IoT
// platforms (SmartThings, Home Assistant, IFTTT, Google Assistant, Amazon
// Alexa) — see DESIGN.md for the substitution argument.
package rules

// Channel is a physical or logical quantity that sensors observe and
// actuators influence. Trigger-action causality flows through channels.
type Channel int

// The channels of the smart-home environment model.
const (
	ChanNone Channel = iota
	ChanMotion
	ChanSmoke
	ChanCO
	ChanTemperature
	ChanHumidity
	ChanIlluminance
	ChanPresence
	ChanContact // door/window open-closed state
	ChanLeak    // water on the floor
	ChanWaterFlow
	ChanPower // a device's on/off state
	ChanLockState
	ChanSound
	ChanEnergy
	ChanTime   // clock triggers (sunset, sunrise, schedules)
	ChanVoice  // voice-assistant commands
	ChanNotify // notifications to the user
	ChanRecord // camera recordings / spreadsheet logging
	ChanButton // physical or app button presses
	ChanWeather
	numChannels
)

// String names the channel.
func (c Channel) String() string {
	names := [...]string{"none", "motion", "smoke", "co", "temperature",
		"humidity", "illuminance", "presence", "contact", "leak",
		"water_flow", "power", "lock_state", "sound", "energy", "time",
		"voice", "notify", "record", "button", "weather"}
	if int(c) < len(names) {
		return names[c]
	}
	return "unknown"
}

// NumChannels is the channel-space size (for feature vectors).
const NumChannels = int(numChannels)

// Binary channels have two opposing states; Sign tells whether a state is
// the "positive" pole of its channel (used to match environmental deltas to
// sensor trigger states).
var positiveStates = map[string]bool{
	"on": true, "off": false,
	"open": true, "closed": false,
	"detected": true, "clear": false,
	"high": true, "low": false,
	"wet": true, "dry": false,
	"locked": true, "unlocked": false,
	"home": true, "away": false,
	"bright": true, "dark": false,
	"active": true, "inactive": false,
	"running": true, "stopped": false,
	"loud": true, "quiet": false,
	"pressed": true,
}

// StateSign returns +1 for a positive-pole state, −1 for a negative-pole
// state and 0 for states without a polarity (e.g. numeric set-points).
func StateSign(state string) int {
	v, ok := positiveStates[state]
	switch {
	case !ok:
		return 0
	case v:
		return 1
	default:
		return -1
	}
}

// OppositeState returns the opposing pole of a binary state ("" when the
// state has no opposite).
func OppositeState(state string) string {
	opp := map[string]string{
		"on": "off", "off": "on",
		"open": "closed", "closed": "open",
		"detected": "clear", "clear": "detected",
		"high": "low", "low": "high",
		"wet": "dry", "dry": "wet",
		"locked": "unlocked", "unlocked": "locked",
		"home": "away", "away": "home",
		"bright": "dark", "dark": "bright",
		"active": "inactive", "inactive": "active",
		"running": "stopped", "stopped": "running",
		"loud": "quiet", "quiet": "loud",
	}
	return opp[state]
}

// EnvDelta is an environmental side effect: performing an action pushes a
// channel up (+1) or down (−1). Example: turning a heater on pushes
// ChanTemperature up, which can later satisfy a "temperature is high"
// trigger.
type EnvDelta struct {
	Channel Channel
	Sign    int
}
