package fedproto

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/fedproto/codec"
)

// Client-session backoff defaults (ClientConfig zero values).
const (
	DefaultInitialBackoff = 100 * time.Millisecond
	DefaultMaxBackoff     = 5 * time.Second
	DefaultMaxAttempts    = 5
)

// RunClientLoop drives one client over an established connection: it sends
// hello, waits for the server's sync reply (the round to resume at plus,
// for rejoiners, the current aggregated model), then for each round trains
// locally via the callback, ships all layers, and installs the aggregated
// reply. localRound must run one round of local training and return the
// per-layer update norms. The round counter always follows the server's
// announcements, so a client that reconnects mid-federation resumes at the
// federation's round rather than its own.
//
// Cancelling ctx closes the connection, unblocking any in-flight Send or
// Recv; the loop then returns context.Cause(ctx) instead of the socket
// error the teardown provoked.
func RunClientLoop(ctx context.Context, conn *Conn, clientID, dataSize int,
	params *autodiff.ParamSet,
	localRound func(round int) map[int]float64) error {
	return runClientLoop(ctx, conn, clientID, dataSize, params, nil, localRound)
}

// runClientLoop is RunClientLoop with an explicit codec offer: the schemes
// advertised in the hello, in preference order (nil offers everything this
// build supports). The server's sync reply assigns one; lossy schemes make
// the loop keep a clone of each model the server sends (the delta base) and
// echo its ModelSeq stamp with every update.
func runClientLoop(ctx context.Context, conn *Conn, clientID, dataSize int,
	params *autodiff.ParamSet, offered []string,
	localRound func(round int) map[int]float64) error {
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if offered == nil {
		offered = codec.Names()
	}
	if err := conn.Send(&Message{Kind: MsgHello, ClientID: clientID,
		DataSize: dataSize, Codecs: offered}); err != nil {
		return loopErr(ctx, err)
	}
	syncMsg, err := conn.Recv()
	if err != nil {
		return loopErr(ctx, err)
	}
	if syncMsg.Kind != MsgModel {
		return fmt.Errorf("fedproto: unexpected sync kind %d", syncMsg.Kind)
	}
	cdc, err := codec.New(syncMsg.Codec)
	if err != nil {
		// A server assigning a scheme this build does not know is answered
		// with plain raw64 updates — always a legal encoding.
		cdc, _ = codec.New(codec.Raw64)
	}
	lossy := cdc.Name() != codec.Raw64
	// base/baseSeq name the last server model snapshot, the reference lossy
	// deltas are encoded against. No snapshot yet → dense raw64 fallback.
	var base *autodiff.ParamSet
	var baseSeq uint64
	if len(syncMsg.Layers) > 0 {
		if err := ApplyLayers(params, syncMsg.Layers); err != nil {
			return err
		}
	}
	if lossy && syncMsg.ModelSeq != 0 {
		base = params.Clone()
		baseSeq = syncMsg.ModelSeq
	}
	if syncMsg.Final {
		return nil
	}
	layers := make([]int, params.NumLayers())
	for i := range layers {
		layers[i] = i
	}
	for round := syncMsg.Round; ; {
		if err := ctx.Err(); err != nil {
			return context.Cause(ctx)
		}
		norms := localRound(round)
		lay, scheme, isDelta := encodeUpdate(params, base, layers, norms, cdc)
		up := &Message{Kind: MsgUpdate, ClientID: clientID, Round: round,
			Layers: lay, Codec: scheme, Delta: isDelta}
		if isDelta {
			up.BaseSeq = baseSeq
		}
		if err := conn.Send(up); err != nil {
			return loopErr(ctx, err)
		}
		reply, err := conn.Recv()
		if err != nil {
			return loopErr(ctx, err)
		}
		if reply.Kind == MsgDone {
			return nil
		}
		if reply.Kind != MsgModel {
			return fmt.Errorf("fedproto: unexpected reply kind %d", reply.Kind)
		}
		if err := ApplyLayers(params, reply.Layers); err != nil {
			return err
		}
		if lossy {
			if reply.ModelSeq != 0 {
				base = params.Clone()
				baseSeq = reply.ModelSeq
			} else {
				base, baseSeq = nil, 0
			}
		}
		if reply.Final {
			return nil
		}
		round = reply.Round + 1
	}
}

// splitmix64 is the SplitMix64 finalizer: a full-avalanche bijection on
// 64-bit state, so every output bit depends on every input bit.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mixSeed derives the per-session backoff rng seed from the configured
// seed and client id. The previous affine formula
// (Seed*2654435761 + ID + 1) overflowed silently and could collide across
// (seed, id) pairs — e.g. any two ids equidistant under seeds differing by
// one step; two full splitmix64 rounds avalanche both inputs so nearby
// clients of a restarted fleet never share a jitter stream.
func mixSeed(seed int64, id int) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ (uint64(int64(id)) + 0x9e3779b97f4a7c15)))
}

// loopErr prefers the cancellation cause over the socket error the
// cancellation-driven teardown provoked.
func loopErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return err
}

// ClientConfig shapes a reconnecting client session.
type ClientConfig struct {
	Addr     string
	ID       int
	DataSize int
	// InitialBackoff and MaxBackoff bound the exponential reconnect
	// backoff; every sleep is jittered by a uniform factor in [0.5, 1.5)
	// so a restarted fleet does not reconnect in lockstep. Zero values
	// select DefaultInitialBackoff / DefaultMaxBackoff.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// MaxAttempts caps consecutive failed attempts (dial errors or
	// sessions that die before the server's sync reply) before the
	// session gives up; zero selects DefaultMaxAttempts. An attempt that
	// reaches the sync reply resets the count and the backoff.
	MaxAttempts int
	// OpTimeout bounds every Send/Recv of the session; zero disables.
	OpTimeout time.Duration
	// Seed drives the backoff jitter deterministically per client.
	Seed int64
	// Codec restricts the update schemes advertised in the hello to this
	// one ("raw64", "f32", "q8", "topk"); empty advertises everything this
	// build supports and lets the server pick.
	Codec string
	// Dial overrides net.Dial("tcp", addr); tests inject fault-wrapped
	// connections here.
	Dial func(addr string) (net.Conn, error)
	// Sleep overrides time.Sleep in tests.
	Sleep func(time.Duration)
}

// SessionStats summarises a client session.
type SessionStats struct {
	Reconnects int
	InBytes    int64
	OutBytes   int64
}

// RunClientSession runs RunClientLoop against cfg.Addr and survives
// connection failure: any error short of federation completion tears the
// connection down and reconnects with exponential backoff plus jitter,
// resuming at the server-announced round. It returns once the server
// declares the federation finished (a Final or MsgDone reply), after
// MaxAttempts consecutive attempts that made no progress, or as soon as
// ctx is cancelled — cancellation interrupts both in-flight protocol
// exchanges and backoff sleeps, and the session reports
// context.Cause(ctx).
func RunClientSession(ctx context.Context, cfg ClientConfig, params *autodiff.ParamSet,
	localRound func(round int) map[int]float64) (SessionStats, error) {
	if cfg.InitialBackoff <= 0 {
		cfg.InitialBackoff = DefaultInitialBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	sleep := cfg.Sleep
	if sleep == nil {
		// The default sleep is cancellation-aware so a SIGTERM during
		// backoff does not stall shutdown by up to MaxBackoff; injected
		// sleeps (tests) keep their own semantics.
		sleep = func(d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	var offered []string
	if cfg.Codec != "" {
		if _, err := codec.New(cfg.Codec); err != nil {
			return SessionStats{}, err
		}
		offered = []string{cfg.Codec}
	}
	rng := rand.New(rand.NewSource(mixSeed(cfg.Seed, cfg.ID)))

	var stats SessionStats
	backoff := cfg.InitialBackoff
	attempts := 0
	var lastErr error
	for {
		if ctx.Err() != nil {
			return stats, context.Cause(ctx)
		}
		raw, err := dial(cfg.Addr)
		if err != nil {
			lastErr = err
		} else {
			conn := Wrap(raw)
			if cfg.OpTimeout > 0 {
				conn.SetOpDeadline(cfg.OpTimeout)
			}
			err = runClientLoop(ctx, conn, cfg.ID, cfg.DataSize, params, offered, localRound)
			in, out := conn.Bytes()
			stats.InBytes += in
			stats.OutBytes += out
			conn.Close()
			if err == nil {
				return stats, nil
			}
			if ctx.Err() != nil {
				return stats, context.Cause(ctx)
			}
			lastErr = err
			if in > 0 {
				// The server's sync reply arrived, so this attempt made
				// real progress: reset the give-up budget and the backoff.
				attempts = 0
				backoff = cfg.InitialBackoff
			}
		}
		attempts++
		if attempts >= cfg.MaxAttempts {
			return stats, fmt.Errorf("fedproto: client %d: gave up after %d attempts: %w",
				cfg.ID, attempts, lastErr)
		}
		stats.Reconnects++
		sleep(time.Duration(float64(backoff) * (0.5 + rng.Float64())))
		backoff *= 2
		if backoff > cfg.MaxBackoff {
			backoff = cfg.MaxBackoff
		}
	}
}
