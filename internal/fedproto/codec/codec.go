// Package codec implements the compact update encodings of the fedproto
// wire protocol: pluggable schemes that turn one flattened weight tensor
// into a smaller wire representation and back. Clients encode per-round
// *deltas* against the last model the server sent them (fedproto arranges
// the delta bookkeeping; this package only sees vectors), because deltas
// are small, centred near zero and tolerate quantisation — the standard
// communication-efficiency levers of federated learning (Konečný et al.,
// McMahan et al.).
//
// Schemes:
//
//	raw64  verbatim float64 values — lossless, the legacy wire format
//	f32    values truncated to float32 precision (~relative 2^-24 error);
//	       gob's trailing-zero float compression shrinks them to ≈5 bytes
//	q8     per-tensor affine int8 quantisation: v ≈ Offset + Scale·q with
//	       Scale = (max−min)/255, so the per-coordinate error is ≤ Scale/2
//	topk   magnitude sparsification: the top ⌈Ratio·N⌉ coordinates by |v|
//	       survive (f32-truncated), the rest decode to zero
//
// Decode validates the frame before touching it — malformed tensors from
// untrusted peers must produce an error, never a panic — and every scheme
// is deterministic, so two encodes of the same vector are bit-identical.
package codec

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Scheme names, as negotiated on the wire.
const (
	Raw64 = "raw64"
	F32   = "f32"
	Q8    = "q8"
	TopK  = "topk"
)

// DefaultTopKRatio is the fraction of coordinates the topk scheme keeps.
const DefaultTopKRatio = 0.1

// Tensor is one encoded weight tensor. Exactly one representation is
// populated, selected by the codec that produced it:
//
//	raw64/f32: Vals (f32 stores float32-truncated float64s — same values,
//	           ~5 wire bytes each under gob's float compression)
//	q8:        Q plus the affine dequantisation parameters Scale/Offset
//	topk:      Idx (strictly ascending coordinates) and Vals (their values)
type Tensor struct {
	// N is the decoded element count.
	N      int
	Vals   []float64
	Q      []byte
	Scale  float64
	Offset float64
	Idx    []uint32
}

// Codec encodes and decodes one flattened tensor. Implementations are
// stateless and safe for concurrent use.
type Codec interface {
	Name() string
	Encode(v []float64) Tensor
	// Decode reconstructs the vector, or reports why the frame is
	// malformed. The returned slice is freshly allocated.
	Decode(t Tensor) ([]float64, error)
}

// Names lists the registered schemes in negotiation-preference order.
func Names() []string { return []string{Raw64, F32, Q8, TopK} }

// New resolves a scheme by name; the empty string selects raw64 (the
// legacy dense format, and the scheme of every pre-codec peer).
func New(name string) (Codec, error) {
	switch name {
	case "", Raw64:
		return raw64Codec{}, nil
	case F32:
		return f32Codec{}, nil
	case Q8:
		return q8Codec{}, nil
	case TopK:
		return topkCodec{Ratio: DefaultTopKRatio}, nil
	}
	return nil, fmt.Errorf("codec: unknown scheme %q (valid: %s)",
		name, strings.Join(Names(), ", "))
}

// --- raw64 -------------------------------------------------------------------

type raw64Codec struct{}

func (raw64Codec) Name() string { return Raw64 }

func (raw64Codec) Encode(v []float64) Tensor {
	return Tensor{N: len(v), Vals: append([]float64(nil), v...)}
}

func (raw64Codec) Decode(t Tensor) ([]float64, error) {
	if len(t.Vals) != t.N || len(t.Q) != 0 || len(t.Idx) != 0 {
		return nil, fmt.Errorf("codec: raw64 frame has %d values, %d bytes, %d indices for N=%d",
			len(t.Vals), len(t.Q), len(t.Idx), t.N)
	}
	return append([]float64(nil), t.Vals...), nil
}

// --- f32 ---------------------------------------------------------------------

type f32Codec struct{}

func (f32Codec) Name() string { return F32 }

func (f32Codec) Encode(v []float64) Tensor {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(float32(x))
	}
	return Tensor{N: len(v), Vals: out}
}

func (f32Codec) Decode(t Tensor) ([]float64, error) {
	if len(t.Vals) != t.N || len(t.Q) != 0 || len(t.Idx) != 0 {
		return nil, fmt.Errorf("codec: f32 frame has %d values, %d bytes, %d indices for N=%d",
			len(t.Vals), len(t.Q), len(t.Idx), t.N)
	}
	return append([]float64(nil), t.Vals...), nil
}

// --- q8 ----------------------------------------------------------------------

type q8Codec struct{}

func (q8Codec) Name() string { return Q8 }

func (q8Codec) Encode(v []float64) Tensor {
	t := Tensor{N: len(v), Q: make([]byte, len(v))}
	if len(v) == 0 {
		return t
	}
	lo, hi := v[0], v[0]
	allFinite := finite(v[0])
	for _, x := range v[1:] {
		// NaN compares false both ways, so the min/max scan alone would
		// silently quantise around it; track finiteness explicitly.
		if !finite(x) {
			allFinite = false
			break
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	t.Offset = lo
	t.Scale = (hi - lo) / 255
	if !allFinite || !finite(t.Offset) || !finite(t.Scale) {
		// Non-finite inputs cannot be quantised; ship a frame the decoder
		// rejects so the sender is evicted the same way a NaN-poisoned dense
		// update would be.
		t.Scale, t.Offset = math.NaN(), math.NaN()
		return t
	}
	if t.Scale > 0 {
		inv := 1 / t.Scale
		for i, x := range v {
			q := math.Round((x - lo) * inv)
			if q < 0 {
				q = 0
			} else if q > 255 {
				q = 255
			}
			t.Q[i] = byte(q)
		}
	}
	return t
}

func (q8Codec) Decode(t Tensor) ([]float64, error) {
	if len(t.Q) != t.N || len(t.Vals) != 0 || len(t.Idx) != 0 {
		return nil, fmt.Errorf("codec: q8 frame has %d bytes, %d values, %d indices for N=%d",
			len(t.Q), len(t.Vals), len(t.Idx), t.N)
	}
	if !finite(t.Scale) || !finite(t.Offset) || t.Scale < 0 {
		return nil, fmt.Errorf("codec: q8 frame has scale %v offset %v", t.Scale, t.Offset)
	}
	out := make([]float64, t.N)
	for i, q := range t.Q {
		out[i] = t.Offset + t.Scale*float64(q)
	}
	return out, nil
}

// --- topk --------------------------------------------------------------------

type topkCodec struct {
	// Ratio is the kept fraction of coordinates, (0, 1].
	Ratio float64
}

func (topkCodec) Name() string { return TopK }

func (c topkCodec) Encode(v []float64) Tensor {
	t := Tensor{N: len(v)}
	if len(v) == 0 {
		return t
	}
	k := int(math.Ceil(c.Ratio * float64(len(v))))
	if k < 1 {
		k = 1
	}
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	// Deterministic selection: magnitude descending, index ascending on
	// ties, so equal inputs encode bit-identically.
	sort.Slice(idx, func(a, b int) bool {
		ma, mb := math.Abs(v[idx[a]]), math.Abs(v[idx[b]])
		if ma != mb {
			return ma > mb
		}
		return idx[a] < idx[b]
	})
	kept := append([]int(nil), idx[:k]...)
	sort.Ints(kept)
	t.Idx = make([]uint32, k)
	t.Vals = make([]float64, k)
	for i, j := range kept {
		t.Idx[i] = uint32(j)
		t.Vals[i] = float64(float32(v[j]))
	}
	return t
}

func (topkCodec) Decode(t Tensor) ([]float64, error) {
	if len(t.Idx) != len(t.Vals) || len(t.Idx) > t.N || len(t.Q) != 0 {
		return nil, fmt.Errorf("codec: topk frame has %d indices, %d values, %d bytes for N=%d",
			len(t.Idx), len(t.Vals), len(t.Q), t.N)
	}
	out := make([]float64, t.N)
	prev := -1
	for i, j := range t.Idx {
		if int(j) >= t.N || int(j) <= prev {
			return nil, fmt.Errorf("codec: topk index %d at position %d (N=%d, previous %d)",
				j, i, t.N, prev)
		}
		prev = int(j)
		out[j] = t.Vals[i]
	}
	return out, nil
}

// --- wire-size accounting ----------------------------------------------------

// WireBytes estimates the gob payload cost of the tensor in bytes: floats
// cost one length byte plus their significant bytes after gob's byte
// reversal (so f32-truncated values cost ≈5, full-entropy float64s ≈9),
// quantised bytes cost one each, and indices cost their varint size. The
// in-process simulator uses this estimate for Fig. 7-style communication
// accounting; the networked server measures real socket bytes instead.
func (t Tensor) WireBytes() int64 {
	n := int64(len(t.Q))
	for _, f := range t.Vals {
		n += gobFloatBytes(f)
	}
	for _, i := range t.Idx {
		n += gobUintBytes(uint64(i))
	}
	if t.Scale != 0 || t.Offset != 0 {
		n += gobFloatBytes(t.Scale) + gobFloatBytes(t.Offset)
	}
	return n
}

// gobFloatBytes is the wire cost of one float64 under gob: the bits are
// byte-reversed and sent as an unsigned integer, so trailing zero mantissa
// bytes are free.
func gobFloatBytes(f float64) int64 {
	bits := math.Float64bits(f)
	var rev uint64
	for i := 0; i < 8; i++ {
		rev = rev<<8 | bits&0xff
		bits >>= 8
	}
	return gobUintBytes(rev)
}

// gobUintBytes is the wire cost of one unsigned integer under gob: one
// byte below 128, otherwise a count byte plus the minimal big-endian
// representation.
func gobUintBytes(u uint64) int64 {
	if u < 128 {
		return 1
	}
	var n int64
	for ; u > 0; u >>= 8 {
		n++
	}
	return n + 1
}

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
