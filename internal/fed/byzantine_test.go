package fed

import (
	"math"
	"testing"

	"fexiot/internal/autodiff"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
)

// twoParam builds a one-layer parameter set with two values.
func twoParam(a, b float64) *autodiff.ParamSet {
	p := autodiff.NewParamSet()
	p.Register("w", 0, mat.NewDenseData(1, 2, []float64{a, b}))
	return p
}

func TestSignFlipReversesUpdate(t *testing.T) {
	prev, after := twoParam(1, 1), twoParam(3, 0)
	CorruptUpdate(SignFlip{}, prev, after) // Δ = (2, −1) → W = prev − Δ
	got := after.Flatten()
	if got[0] != -1 || got[1] != 2 {
		t.Fatalf("sign-flipped weights %v, want [-1 2]", got)
	}
}

func TestScaleAttackBoostsUpdate(t *testing.T) {
	prev, after := twoParam(1, 1), twoParam(2, 1.5)
	CorruptUpdate(ScaleAttack{K: 10}, prev, after) // Δ = (1, 0.5) → prev + 10Δ
	got := after.Flatten()
	if got[0] != 11 || got[1] != 6 {
		t.Fatalf("scaled weights %v, want [11 6]", got)
	}
}

func TestNaNInjectPoisonsWeights(t *testing.T) {
	prev, after := twoParam(1, 1), twoParam(2, 2)
	CorruptUpdate(NaNInject{}, prev, after)
	if mat.AllFinite(after.Flatten()) {
		t.Fatalf("NaN injection left finite weights %v", after.Flatten())
	}
}

func TestStaleReplayPinsFirstUpdate(t *testing.T) {
	atk := &StaleReplay{}
	// Round 0: Δ₀ = (1, 0) is recorded and passed through.
	prev, after := twoParam(0, 0), twoParam(1, 0)
	CorruptUpdate(atk, prev, after)
	if got := after.Flatten(); got[0] != 1 || got[1] != 0 {
		t.Fatalf("round 0 must replay faithfully, got %v", got)
	}
	// Round 1: honest training moved to (5, 5), but the replay sends
	// prev + Δ₀ instead.
	prev, after = twoParam(2, 2), twoParam(5, 5)
	CorruptUpdate(atk, prev, after)
	if got := after.Flatten(); got[0] != 3 || got[1] != 2 {
		t.Fatalf("replayed weights %v, want prev+Δ₀ = [3 2]", got)
	}
}

func TestMakeByzantineLabelFlip(t *testing.T) {
	c := &Client{Train: []*graph.Graph{{Label: true}, {Label: false}}}
	MakeByzantine(c, LabelFlip{})
	if c.Train[0].Label || !c.Train[1].Label {
		t.Fatal("label-flip left the local labels intact")
	}
	if c.Byzantine() == nil {
		t.Fatal("attack not installed")
	}
	MakeByzantine(c, nil)
	if c.Byzantine() != nil {
		t.Fatal("nil attack must restore honesty")
	}
}

func TestNewAttackRegistry(t *testing.T) {
	for _, name := range AttackNames() {
		atk, err := NewAttack(name)
		if err != nil {
			t.Fatalf("NewAttack(%q): %v", name, err)
		}
		if atk == nil {
			t.Fatalf("NewAttack(%q) returned nil attack", name)
		}
	}
	if atk, err := NewAttack(""); err != nil || atk != nil {
		t.Fatal("empty attack name must mean honest (nil, nil)")
	}
	if _, err := NewAttack("bogus"); err == nil {
		t.Fatal("unknown attack must error")
	}
	// Scale's default factor is the acceptance scenario's 10×.
	if atk, _ := NewAttack("scale"); atk.Name() != "scale-10" {
		t.Fatalf("scale attack name %q, want scale-10", atk.Name())
	}
}

// TestByzantineHookFiresInLocalTrain checks the wrapper corrupts updates
// through the same hook chain as DP: after a real LocalTrain the sign-flip
// client's update is the exact negation of its honest twin's.
func TestByzantineHookFiresInLocalTrain(t *testing.T) {
	ds := [][]*graph.Graph{testGraphs(20)}
	honest := NewClients(testBase(), ds, 0.005)[0]
	evil := NewClients(testBase(), ds, 0.005)[0]
	MakeByzantine(evil, SignFlip{})

	cfg := smallConfig().Train
	honest.LocalTrain(cfg)
	evil.LocalTrain(cfg)

	hu := honest.Update().Flatten()
	eu := evil.Update().Flatten()
	// The parallel mat kernels are not bit-deterministic across schedules,
	// so twin runs agree only to ~1e-10 on near-zero elements.
	for i := range hu {
		if math.Abs(hu[i]+eu[i]) > 1e-9 {
			t.Fatalf("element %d: evil update %v is not the negation of honest %v", i, eu[i], hu[i])
		}
	}
}

// TestNaNClientRejectedBySimulatorGate: the non-finite weights produced by
// a NaN injector must be catchable with mat.CheckFinite before aggregation
// — the same gate the networked server applies.
func TestNaNClientRejectedBySimulatorGate(t *testing.T) {
	c := NewClients(testBase(), [][]*graph.Graph{testGraphs(20)}, 0.005)[0]
	MakeByzantine(c, NaNInject{})
	c.LocalTrain(smallConfig().Train)
	if mat.CheckFinite(c.Model.Params().Flatten()) < 0 {
		t.Fatal("NaN injector produced finite weights")
	}
}
