package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewHandler builds the observability mux: Prometheus text at /metrics, a
// JSON snapshot at /statusz, and the full net/http/pprof suite under
// /debug/pprof/. It works with a nil registry (endpoints serve empty
// metric sets; pprof is always live). The concrete mux is returned so
// subsystems (the serving engine's /v1/* endpoints) can mount additional
// routes before handing it to StartHTTPHandler.
func NewHandler(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteStatusz(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><h1>fexiot observability</h1><ul>` +
			`<li><a href="/metrics">/metrics</a> — Prometheus text format</li>` +
			`<li><a href="/statusz">/statusz</a> — JSON snapshot</li>` +
			`<li><a href="/v1/status">/v1/status</a> — serving-engine status (when mounted)</li>` +
			`<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiler</li>` +
			`</ul></body></html>`))
	})
	return mux
}

// HTTPServer is a running observability endpoint. Close releases the
// listener; in-flight scrapes get a short grace period.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartHTTP binds addr (":0" picks a free port) and serves NewHandler(r)
// in a background goroutine. The returned server reports the resolved
// address via Addr, which is what operators scrape and the smoke test
// greps from the process log.
func StartHTTP(addr string, r *Registry) (*HTTPServer, error) {
	return StartHTTPHandler(addr, NewHandler(r))
}

// StartHTTPHandler binds addr (":0" picks a free port) and serves an
// arbitrary handler in a background goroutine — typically a NewHandler mux
// with extra routes mounted on it.
func StartHTTPHandler(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: h}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr reports the resolved listen address (host:port).
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, allowing in-flight requests one second.
func (s *HTTPServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
