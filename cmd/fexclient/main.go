// Command fexclient runs one federated FexIoT client: it generates (or
// would in production: loads) its local interaction-graph dataset, connects
// to a fexserver, and participates in layer-wise clustered federated
// training over TCP. The session survives connection loss: it reconnects
// with exponential backoff plus jitter and resumes at the round the server
// announces, installing the replayed aggregated model. After training it
// reports local detection metrics.
//
// For robustness testing, -attack turns the client Byzantine: it runs the
// honest protocol but poisons what the server sees (label-flip, sign-flip,
// scale, nan, replay) — the adversary the server's -agg defences are
// measured against.
//
// Usage:
//
//	fexclient -addr localhost:7070 -id 0 -archetype security -graphs 120
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/embed"
	"fexiot/internal/fed"
	"fexiot/internal/fedproto"
	"fexiot/internal/fedproto/codec"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
	"fexiot/internal/rules"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "server address")
	id := flag.Int("id", 0, "client id")
	archetype := flag.String("archetype", "security", "household archetype")
	nGraphs := flag.Int("graphs", 120, "local dataset size")
	pairs := flag.Int("pairs", 150, "contrastive pairs per round")
	seed := flag.Int64("seed", 0, "random seed (default: derived from id)")
	backoff := flag.Duration("backoff", fedproto.DefaultInitialBackoff,
		"initial reconnect backoff (doubles per attempt, jittered)")
	backoffMax := flag.Duration("backoff-max", fedproto.DefaultMaxBackoff,
		"reconnect backoff ceiling")
	retries := flag.Int("retries", 8,
		"consecutive failed connection attempts before giving up")
	opTimeout := flag.Duration("op-timeout", 5*time.Minute,
		"per-message send/receive deadline (0 disables)")
	attackName := flag.String("attack", "",
		"run as a Byzantine client: "+strings.Join(fed.AttackNames(), ", ")+
			" (empty = honest; for robustness testing)")
	codecName := flag.String("codec", "",
		"restrict update encoding to one of "+strings.Join(codec.Names(), ", ")+
			" (empty offers all and accepts the server's choice)")
	httpAddr := flag.String("http", "",
		"observability address serving /metrics, /statusz and /debug/pprof/ (empty disables)")
	flag.Parse()
	if *seed == 0 {
		*seed = int64(*id)*7919 + 17
	}
	attack, err := fed.NewAttack(*attackName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, err := codec.New(*codecName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var reg *obs.Registry
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		mat.InstrumentKernels(reg)
		hs, err := obs.StartHTTP(*httpAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs:", err)
			os.Exit(2)
		}
		defer hs.Close()
		fmt.Printf("obs listening on http://%s\n", hs.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Local data: a home's interaction graphs. A typo'd archetype silently
	// training on the wrong distribution is exactly the kind of federation
	// skew that is impossible to debug from the server side, so unknown
	// names are fatal.
	enc := embed.NewEncoder(48, 64)
	var arch rules.Archetype
	var names []string
	for _, a := range rules.Archetypes() {
		names = append(names, a.Name)
		if a.Name == *archetype {
			arch = a
		}
	}
	if arch.Name == "" {
		fmt.Fprintf(os.Stderr, "unknown archetype %q; valid archetypes: %s\n",
			*archetype, strings.Join(names, ", "))
		os.Exit(2)
	}
	// One client is one household: its rule pool comes from its own
	// archetype, so clients with different -archetype flags really hold
	// non-i.i.d. data (the federation setting of §IV-C).
	gen := rules.NewGenerator(*seed, arch, fmt.Sprintf("c%d-", *id))
	pool := gen.RuleSet(50)
	b := fusion.NewBuilder(*seed+1, enc)
	var local []*graph.Graph
	for i := 0; i < *nGraphs; i++ {
		local = append(local, b.OfflineSized(pool))
	}
	cut := len(local) * 8 / 10
	train, test := local[:cut], local[cut:]
	if _, ok := attack.(fed.LabelFlip); ok {
		// Data poisoning happens before any training: the client optimises
		// honestly on dishonestly labelled graphs.
		for _, g := range train {
			g.Label = !g.Label
		}
	}

	model := gnn.NewGIN(fusion.WordFeatureDim(enc), 24, 16, 100)
	opt := autodiff.NewAdam(0.005)
	cfg := gnn.DefaultTrainConfig(*seed)
	cfg.LR = 0.005
	cfg.PairsPerEpoch = *pairs
	cfg.Metrics = reg

	stats, err := fedproto.RunClientSession(ctx, fedproto.ClientConfig{
		Addr:           *addr,
		ID:             *id,
		DataSize:       len(train),
		InitialBackoff: *backoff,
		MaxBackoff:     *backoffMax,
		MaxAttempts:    *retries,
		OpTimeout:      *opTimeout,
		Seed:           *seed,
		Codec:          *codecName,
	}, model.Params(), func(round int) map[int]float64 {
		before := model.Params().Clone()
		cfg.Seed = *seed + int64(round)
		gnn.TrainContrastive(model, train, cfg, opt)
		// Model-poisoning attacks corrupt the round's update after honest
		// local training, exactly like the in-process simulator's hook.
		fed.CorruptUpdate(attack, before, model.Params())
		return fedproto.LayerNorms(before, model.Params())
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "client session:", err)
		os.Exit(1)
	}

	det := gnn.NewDetector(model, 3)
	det.FitClassifier(train)
	m := gnn.EvaluateDetector(det, test)
	fmt.Printf("client %d done: local acc=%.3f f1=%.3f; wire in=%dB out=%dB reconnects=%d\n",
		*id, m.Accuracy, m.F1, stats.InBytes, stats.OutBytes, stats.Reconnects)
}
