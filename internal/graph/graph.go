// Package graph defines the IoT interaction graph of Definition 1: nodes
// are automation rules with embedding features, directed edges are
// action→trigger causal correlations between rules, and each graph carries
// a binary vulnerability label. It also provides the structural operations
// the rest of the system needs — normalised adjacency operators for GNNs,
// subgraph extraction for the explainer, reachability and cycle queries for
// the ground-truth labeler.
package graph

import (
	"fmt"
	"math"
	"sync"

	"fexiot/internal/mat"
	"fexiot/internal/rules"
)

// FeatureSpace tags which encoder produced a node's features; the paper's
// heterogeneous dataset mixes 300-d word-embedding nodes with 512-d
// sentence-embedding nodes (§IV-A).
type FeatureSpace int

// The two node feature spaces.
const (
	WordSpace FeatureSpace = iota
	SentenceSpace
)

// Node is an automation rule inside an interaction graph.
type Node struct {
	Rule    *rules.Rule
	Feature []float64
	Space   FeatureSpace
}

// Edge is a directed action→trigger correlation: From's action triggers
// To's condition.
type Edge struct {
	From, To int
	Kind     rules.MatchKind
}

// Graph is an interaction graph sample.
type Graph struct {
	ID    string
	Nodes []Node
	Edges []Edge

	// Label is true when the graph contains at least one interaction
	// vulnerability. Tags name the vulnerability types present.
	Label bool
	Tags  []string

	// Online marks graphs fused with real-time event logs (§III-A3).
	Online bool

	cacheOnce sync.Once
	cached    *structCache
}

// N returns the node count.
func (g *Graph) N() int { return len(g.Nodes) }

// AddNode appends a node and returns its index.
func (g *Graph) AddNode(n Node) int {
	g.Nodes = append(g.Nodes, n)
	return len(g.Nodes) - 1
}

// AddEdge appends a directed edge. Duplicate edges are ignored.
func (g *Graph) AddEdge(from, to int, kind rules.MatchKind) {
	if from < 0 || from >= g.N() || to < 0 || to >= g.N() {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", from, to, g.N()))
	}
	for _, e := range g.Edges {
		if e.From == from && e.To == to {
			return
		}
	}
	g.Edges = append(g.Edges, Edge{From: from, To: to, Kind: kind})
}

// Out returns the out-neighbour indices of node i.
func (g *Graph) Out(i int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.From == i {
			out = append(out, e.To)
		}
	}
	return out
}

// In returns the in-neighbour indices of node i.
func (g *Graph) In(i int) []int {
	var in []int
	for _, e := range g.Edges {
		if e.To == i {
			in = append(in, e.From)
		}
	}
	return in
}

// Neighbors returns the undirected neighbour set of node i.
func (g *Graph) Neighbors(i int) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range g.Edges {
		var j int
		switch {
		case e.From == i:
			j = e.To
		case e.To == i:
			j = e.From
		default:
			continue
		}
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// FeatureMatrix stacks node features into an n×d matrix. All nodes must
// share a dimension; heterogeneous graphs should be projected per-space
// first (see PadFeatures).
func (g *Graph) FeatureMatrix() *mat.Dense {
	if g.N() == 0 {
		return mat.NewDense(0, 0)
	}
	d := len(g.Nodes[0].Feature)
	m := mat.NewDense(g.N(), d)
	for i, n := range g.Nodes {
		if len(n.Feature) != d {
			panic(fmt.Sprintf("graph: node %d feature dim %d want %d — pad heterogeneous graphs first",
				i, len(n.Feature), d))
		}
		m.SetRow(i, n.Feature)
	}
	return m
}

// PadFeatures returns a feature matrix where every node's feature vector is
// zero-padded (or truncated) to dim, allowing homogeneous GNNs to consume
// heterogeneous graphs.
func (g *Graph) PadFeatures(dim int) *mat.Dense {
	m := mat.NewDense(g.N(), dim)
	for i, n := range g.Nodes {
		row := m.Row(i)
		for j := 0; j < dim && j < len(n.Feature); j++ {
			row[j] = n.Feature[j]
		}
	}
	return m
}

// NormalizedAdjacency builds the symmetric GCN operator
// Â = D^{-1/2}(A + A^T + I)D^{-1/2} over the undirected version of the
// graph with self loops.
func (g *Graph) NormalizedAdjacency() *mat.CSR {
	n := g.N()
	type key struct{ i, j int }
	seen := map[key]bool{}
	var is, js []int
	add := func(i, j int) {
		if !seen[key{i, j}] {
			seen[key{i, j}] = true
			is = append(is, i)
			js = append(js, j)
		}
	}
	for i := 0; i < n; i++ {
		add(i, i)
	}
	for _, e := range g.Edges {
		add(e.From, e.To)
		add(e.To, e.From)
	}
	deg := make([]float64, n)
	for k := range is {
		deg[is[k]]++
	}
	vs := make([]float64, len(is))
	for k := range is {
		vs[k] = 1.0 / (math.Sqrt(deg[is[k]]) * math.Sqrt(deg[js[k]]))
	}
	return mat.NewCSR(n, n, is, js, vs)
}

// SumAdjacency builds the unnormalised operator A + A^T + (1+eps)·I used by
// GIN aggregation.
func (g *Graph) SumAdjacency(eps float64) *mat.CSR {
	n := g.N()
	var is, js []int
	var vs []float64
	for i := 0; i < n; i++ {
		is = append(is, i)
		js = append(js, i)
		vs = append(vs, 1+eps)
	}
	for _, e := range g.Edges {
		is = append(is, e.From, e.To)
		js = append(js, e.To, e.From)
		vs = append(vs, 1, 1)
	}
	return mat.NewCSR(n, n, is, js, vs)
}

// Reachable reports whether there is a directed path from u to v (u ≠ v).
func (g *Graph) Reachable(u, v int) bool {
	if u == v {
		return false
	}
	visited := make([]bool, g.N())
	stack := []int{u}
	visited[u] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.Out(cur) {
			if next == v {
				return true
			}
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// HasCycle reports whether the directed graph contains a cycle.
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.N())
	var dfs func(int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range g.Out(u) {
			switch color[v] {
			case gray:
				return true
			case white:
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := 0; i < g.N(); i++ {
		if color[i] == white && dfs(i) {
			return true
		}
	}
	return false
}

// CommonAncestor reports whether some node reaches both u and v (or is u
// reaching v / v reaching u themselves); this is the "forked from one
// cause" relation the conflict and duplicate detectors use.
func (g *Graph) CommonAncestor(u, v int) bool {
	if g.Reachable(u, v) || g.Reachable(v, u) {
		return true
	}
	for w := 0; w < g.N(); w++ {
		if w == u || w == v {
			continue
		}
		if g.Reachable(w, u) && g.Reachable(w, v) {
			return true
		}
	}
	return false
}

// InducedSubgraph returns the subgraph on the given node indices (order
// preserved); edge endpoints are remapped. The Label/Tags are not copied —
// a subgraph is a structural object, not a labelled sample.
func (g *Graph) InducedSubgraph(idx []int) *Graph {
	remap := make(map[int]int, len(idx))
	sub := &Graph{ID: g.ID + "/sub"}
	for newIdx, oldIdx := range idx {
		remap[oldIdx] = newIdx
		sub.Nodes = append(sub.Nodes, g.Nodes[oldIdx])
	}
	for _, e := range g.Edges {
		ni, iok := remap[e.From]
		nj, jok := remap[e.To]
		if iok && jok {
			sub.Edges = append(sub.Edges, Edge{From: ni, To: nj, Kind: e.Kind})
		}
	}
	return sub
}

// ConnectedUndirected reports whether the graph is weakly connected.
func (g *Graph) ConnectedUndirected() bool {
	if g.N() == 0 {
		return true
	}
	visited := make([]bool, g.N())
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.Neighbors(cur) {
			if !visited[next] {
				visited[next] = true
				count++
				stack = append(stack, next)
			}
		}
	}
	return count == g.N()
}

// ComponentOf returns the node indices weakly connected to seed, sorted by
// discovery order.
func (g *Graph) ComponentOf(seed int) []int {
	visited := make([]bool, g.N())
	var order []int
	stack := []int{seed}
	visited[seed] = true
	for len(stack) > 0 {
		cur := stack[0]
		stack = stack[1:]
		order = append(order, cur)
		for _, next := range g.Neighbors(cur) {
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return order
}

// Clone deep-copies the graph (rules are shared; features are copied; the
// structural caches are not carried over).
func (g *Graph) Clone() *Graph {
	out := &Graph{ID: g.ID, Label: g.Label, Online: g.Online,
		Tags: append([]string(nil), g.Tags...)}
	for _, n := range g.Nodes {
		out.Nodes = append(out.Nodes, Node{
			Rule:    n.Rule,
			Feature: append([]float64(nil), n.Feature...),
			Space:   n.Space,
		})
	}
	out.Edges = append(out.Edges, g.Edges...)
	return out
}
