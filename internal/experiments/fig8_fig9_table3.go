package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fexiot/internal/datasets"
	"fexiot/internal/explain"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
)

// explainMethods lists the three Fig. 8/9 explanation methods.
func explainMethods() []struct {
	Name string
	Run  func(explain.ScoreFunc, *graph.Graph, explain.SearchConfig) explain.Explanation
} {
	return []struct {
		Name string
		Run  func(explain.ScoreFunc, *graph.Graph, explain.SearchConfig) explain.Explanation
	}{
		{"FexIoT", explain.FexIoTExplain},
		{"SubgraphX", explain.SubgraphX},
		{"MCTS_GNN", explain.MCTSGNN},
	}
}

// FigureVIII reproduces the qualitative explanation comparison: for two
// detected-vulnerable online graphs it prints the subgraph each method
// selects along with the rule descriptions, mirroring the paper's two
// worked examples.
func FigureVIII(s Setup) string {
	d := datasets.BuildIFTTT(s.Scale, s.Seed)
	labeled := d.Shuffled(s.Seed)
	det := trainDetectorOn(s, "GCN", d, labeled)
	h := func(g *graph.Graph) float64 {
		if g.N() == 0 {
			return 0
		}
		return det.Score(g)
	}

	// Pick two vulnerable graphs the detector flags, preferring mid-sized
	// ones like the paper's examples (~10-16 nodes).
	var picks []*graph.Graph
	for _, g := range labeled {
		if g.Label && g.N() >= 8 && g.N() <= 16 && det.Predict(g) == 1 {
			picks = append(picks, g)
			if len(picks) == 2 {
				break
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== Fig. 8 — Qualitative explanation comparison ===\n")
	cfg := explain.DefaultSearchConfig(s.Seed)
	for ei, g := range picks {
		fmt.Fprintf(&b, "\nExample %d: graph %s (%d nodes, tags %v)\n",
			ei+1, g.ID, g.N(), g.Tags)
		for _, m := range explainMethods() {
			ex := m.Run(h, g, cfg)
			sort.Ints(ex.Nodes)
			fmt.Fprintf(&b, "  %-10s subgraph %v (score %.3f)\n", m.Name, ex.Nodes, ex.Score)
			if m.Name == "FexIoT" {
				for _, idx := range ex.Nodes {
					if r := g.Nodes[idx].Rule; r != nil {
						fmt.Fprintf(&b, "      [%d] %s\n", idx, r.Description)
					}
				}
			}
		}
	}
	if len(picks) == 0 {
		b.WriteString("no suitable vulnerable graphs detected at this scale\n")
	}
	return b.String()
}

// FigureIX computes the fidelity/sparsity comparison over randomly chosen
// vulnerable graphs (the paper uses 50).
func FigureIX(s Setup, graphsToTest int) *Table {
	if graphsToTest <= 0 {
		graphsToTest = 50
		if s.Scale.Name != "paper" {
			graphsToTest = 10
		}
	}
	d := datasets.BuildIFTTT(s.Scale, s.Seed)
	labeled := d.Shuffled(s.Seed)
	det := trainDetectorOn(s, "GCN", d, labeled)
	h := func(g *graph.Graph) float64 {
		if g.N() == 0 {
			return 0
		}
		return det.Score(g)
	}
	// The paper explains *detected* vulnerabilities ("100 interaction graphs
	// that contain vulnerable interactions, which are reported by the GCN
	// model"); fidelity is only meaningful when the detector is confident,
	// so the most confidently detected graphs are explained.
	type scoredGraph struct {
		g     *graph.Graph
		score float64
	}
	var cands []scoredGraph
	for _, g := range labeled {
		if g.Label && g.N() >= 6 && g.N() <= 20 {
			if sc := h(g); sc >= 0.5 {
				cands = append(cands, scoredGraph{g, sc})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	var picks []*graph.Graph
	for _, c := range cands {
		picks = append(picks, c.g)
		if len(picks) == graphsToTest {
			break
		}
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 9 — Sparsity-vs-Fidelity curves over %d vulnerable graphs", len(picks)),
		Header: []string{"Method", "N_min", "Fidelity (mean)", "Sparsity (mean)"},
	}
	// Sweeping the explanation-size bound traces each method's trade-off
	// curve: larger subgraphs (low sparsity) carry more of the prediction
	// (high fidelity) — the paper plots exactly this frontier.
	cfg := explain.DefaultSearchConfig(s.Seed)
	for _, m := range explainMethods() {
		for _, minNodes := range []int{2, 4, 6} {
			cfg.MinNodes = minNodes
			var fids, sps []float64
			for gi, g := range picks {
				cfg.Seed = s.Seed + int64(gi)
				ex := m.Run(h, g, cfg)
				fids = append(fids, explain.Fidelity(h, g, ex.Nodes))
				sps = append(sps, explain.Sparsity(g, ex.Nodes))
			}
			t.Add(m.Name, fmt.Sprint(minNodes), f3(mat.Mean(fids)), f3(mat.Mean(sps)))
		}
	}
	t.Add("(paper)", "", "FexIoT best trade-off; ~half of cases fidelity>0.3 & sparsity<0.7", "")
	return t
}

// TableIII measures runtime efficiency: graph-construction time for the
// full corpus, per-graph prediction time, per-graph vulnerability-analysis
// time, and serialized model size.
func TableIII(s Setup) *Table {
	t := &Table{
		Title: "Table III — Runtime efficiency",
		Header: []string{"Dataset", "Graph Construction (s)", "Prediction (ms/graph)",
			"Vuln. Analysis (s/graph)", "Model Size (MB)"},
	}
	for _, name := range []string{"IFTTT", "Hetero"} {
		start := time.Now()
		var d *datasets.Dataset
		model := "GIN"
		if name == "IFTTT" {
			d = datasets.BuildIFTTT(s.Scale, s.Seed)
		} else {
			d = datasets.BuildHetero(s.Scale, s.Seed+100)
			model = "MAGNN"
		}
		construction := time.Since(start)

		labeled := d.Shuffled(s.Seed)
		det := trainDetectorOn(s, model, d, labeled[:min(len(labeled), 400)])

		// Prediction time.
		evalSet := labeled[:min(len(labeled), 200)]
		start = time.Now()
		for _, g := range evalSet {
			det.Predict(g)
		}
		predPer := time.Since(start).Seconds() * 1000 / float64(len(evalSet))

		// Vulnerability-analysis (explanation) time.
		h := func(g *graph.Graph) float64 {
			if g.N() == 0 {
				return 0
			}
			return det.Score(g)
		}
		cfg := explain.DefaultSearchConfig(s.Seed)
		var analysed int
		start = time.Now()
		for _, g := range evalSet {
			if g.Label && g.N() >= 6 {
				explain.FexIoTExplain(h, g, cfg)
				analysed++
				if analysed == 5 {
					break
				}
			}
		}
		var analysisPer float64
		if analysed > 0 {
			analysisPer = time.Since(start).Seconds() / float64(analysed)
		}

		modelMB := float64(det.Model.Params().NumElements()) * 8 / 1e6
		t.Add(name, fmt.Sprintf("%.2f", construction.Seconds()),
			fmt.Sprintf("%.2f", predPer), fmt.Sprintf("%.2f", analysisPer),
			fmt.Sprintf("%.2f", modelMB))
	}
	t.Add("(paper IFTTT)", "17.19", "520 (0.52 s)", "2.18", "5.48")
	t.Add("(paper Hetero)", "976.99", "610 (0.61 s)", "3.64", "6.13")
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
