package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/fusion"
	"fexiot/internal/graph"
	"fexiot/internal/rules"
)

// httpFixture stands a full engine + mux up behind httptest.
func httpFixture(t *testing.T, publish bool) (*httptest.Server, *Engine, []*rules.Rule) {
	t.Helper()
	det, drf, _ := fixture(41)
	e := NewEngine(Options{Workers: 2})
	t.Cleanup(e.Close)
	if publish {
		e.Publish(NewSnapshot(1, det, drf, searchCfg))
	}
	// The builder mirrors the facade: offline chaining of the posted rules.
	// The encoder dims match the fixture's, and embeddings are a pure
	// function of (text, dim), so features line up across instances.
	enc := embed.NewEncoder(24, 32)
	b := fusion.NewBuilder(51, enc)
	build := func(rs []*rules.Rule, log eventlog.Log) (*graph.Graph, error) {
		if len(log) > 0 {
			return b.BuildOnline(rs, log), nil
		}
		size := len(rs)
		if size > 50 {
			size = 50
		}
		return b.Offline(rs, size), nil
	}
	mux := http.NewServeMux()
	e.Mount(mux, build, 5*time.Second)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	home := rules.NewGenerator(21, rules.Archetypes()[0], "h-").RuleSet(14)
	return ts, e, home
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func TestHTTPDetectEndToEnd(t *testing.T) {
	ts, _, home := httpFixture(t, true)

	resp, body := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: home})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out DetectResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if out.Score < 0 || out.Score > 1 {
		t.Fatalf("score %v out of range", out.Score)
	}
	if out.Vulnerable != (out.Score >= 0.5) {
		t.Fatal("verdict inconsistent with score")
	}
	if out.SnapshotSeq != 1 {
		t.Fatalf("snapshot_seq = %d, want 1", out.SnapshotSeq)
	}
	if out.Nodes < 2 {
		t.Fatalf("nodes = %d, want ≥ 2", out.Nodes)
	}
}

func TestHTTPExplainEndToEnd(t *testing.T) {
	ts, _, home := httpFixture(t, true)
	resp, body := postJSON(t, ts.URL+"/v1/explain", DetectRequest{Rules: home})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ExplainResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	if len(out.NodeIndices) == 0 {
		t.Fatal("empty explanation")
	}
	if out.Sparsity < 0 || out.Sparsity > 1 {
		t.Fatalf("sparsity %v out of range", out.Sparsity)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	ts, _, home := httpFixture(t, false) // nothing published

	// 503 before the first snapshot.
	resp, body := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: home})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unpublished engine: status %d (%s), want 503", resp.StatusCode, body)
	}

	// 400 on malformed JSON.
	r, err := http.Post(ts.URL+"/v1/detect", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", r.StatusCode)
	}

	// 400 on empty rules.
	resp, _ = postJSON(t, ts.URL+"/v1/detect", DetectRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty rules: status %d, want 400", resp.StatusCode)
	}

	// 405 on GET.
	g, err := http.Get(ts.URL + "/v1/detect")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", g.StatusCode)
	}
}

// TestHTTPConcurrentStormWithSwap drives concurrent HTTP detects while a
// snapshot publish lands: zero non-2xx responses allowed — the in-process
// twin of scripts/serve-smoke.sh.
func TestHTTPConcurrentStormWithSwap(t *testing.T) {
	ts, e, home := httpFixture(t, true)
	det2, drf2, _ := fixture(43)

	const goroutines = 6
	const perG = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, body := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: home})
				if resp.StatusCode != http.StatusOK {
					errs <- &httpErr{resp.StatusCode, string(body)}
					return
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	e.Publish(NewSnapshot(2, det2, drf2, searchCfg))
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type httpErr struct {
	code int
	body string
}

func (e *httpErr) Error() string { return e.body }
