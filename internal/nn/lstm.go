package nn

import (
	"fmt"
	"sort"

	"fexiot/internal/autodiff"
	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// LSTM is a single-layer LSTM language model over a discrete event
// vocabulary, trained to predict the next event from a fixed-length history
// window — the architecture DeepLog (Du et al., CCS 2017) uses for log
// anomaly detection (Table II baseline).
type LSTM struct {
	Vocab  int // number of distinct event types
	Hidden int
	Window int // history length
	Epochs int
	LR     float64
	Seed   int64
	// TopK: a next event outside the model's top-K predictions is an
	// anomaly (DeepLog's detection rule).
	TopK int

	params *autodiff.ParamSet
}

// NewLSTM creates a DeepLog-style LSTM model.
func NewLSTM(vocab, hidden, window int, epochs int, lr float64, seed int64) *LSTM {
	return &LSTM{Vocab: vocab, Hidden: hidden, Window: window,
		Epochs: epochs, LR: lr, Seed: seed, TopK: 3}
}

func (l *LSTM) initParams() {
	r := rng.New(l.Seed)
	p := autodiff.NewParamSet()
	in := l.Vocab + l.Hidden
	// Gate weights: input, forget, output, candidate.
	for i, gate := range []string{"i", "f", "o", "g"} {
		p.Register("w"+gate, 0, r.Glorot(in, l.Hidden))
		b := mat.NewDense(1, l.Hidden)
		if gate == "f" {
			b.Fill(1) // forget-gate bias trick for gradient flow
		}
		p.Register("b"+gate, 0, b)
		_ = i
	}
	p.Register("wy", 1, r.Glorot(l.Hidden, l.Vocab))
	p.Register("by", 1, mat.NewDense(1, l.Vocab))
	l.params = p
}

// oneHot encodes event id e as a 1×V matrix.
func (l *LSTM) oneHot(e int) *mat.Dense {
	v := mat.NewDense(1, l.Vocab)
	if e >= 0 && e < l.Vocab {
		v.Set(0, e, 1)
	}
	return v
}

// step runs one LSTM cell step on the tape.
func (l *LSTM) step(t *autodiff.Tape, b *autodiff.Binder, x, h, c *autodiff.Node) (hNext, cNext *autodiff.Node) {
	xh := t.ConcatCols(x, h)
	gate := func(name string, act func(*autodiff.Node) *autodiff.Node) *autodiff.Node {
		z := t.MatMul(xh, b.Node("w"+name))
		z = t.AddRowBroadcast(z, b.Node("b"+name))
		return act(z)
	}
	i := gate("i", t.Sigmoid)
	f := gate("f", t.Sigmoid)
	o := gate("o", t.Sigmoid)
	g := gate("g", t.Tanh)
	cNext = t.Add(t.Hadamard(f, c), t.Hadamard(i, g))
	hNext = t.Hadamard(o, t.Tanh(cNext))
	return hNext, cNext
}

// lstmScratch holds the reusable constant inputs of a serial training
// loop: the zero initial state and one one-hot buffer per window position.
// The tape treats constants as caller-owned, so reusing them across
// Reset+Rebind passes is free.
type lstmScratch struct {
	h0, c0 *mat.Dense
	xs     []*mat.Dense
}

func (l *LSTM) newScratch() *lstmScratch {
	s := &lstmScratch{h0: mat.NewDense(1, l.Hidden), c0: mat.NewDense(1, l.Hidden)}
	s.xs = make([]*mat.Dense, l.Window)
	for i := range s.xs {
		s.xs[i] = mat.NewDense(1, l.Vocab)
	}
	return s
}

// forwardScratch unrolls the LSTM over a window using the scratch's
// constant buffers and returns the next-event logits node.
func (l *LSTM) forwardScratch(t *autodiff.Tape, b *autodiff.Binder, window []int, s *lstmScratch) *autodiff.Node {
	h := t.Constant(s.h0)
	c := t.Constant(s.c0)
	for k, e := range window {
		x := s.xs[k]
		x.Zero()
		if e >= 0 && e < l.Vocab {
			x.Set(0, e, 1)
		}
		h, c = l.step(t, b, t.Constant(x), h, c)
	}
	logits := t.MatMul(h, b.Node("wy"))
	return t.AddRowBroadcast(logits, b.Node("by"))
}

// forward unrolls the LSTM over a window of event ids and returns the
// next-event logits node.
func (l *LSTM) forward(t *autodiff.Tape, b *autodiff.Binder, window []int) *autodiff.Node {
	h := t.Constant(mat.NewDense(1, l.Hidden))
	c := t.Constant(mat.NewDense(1, l.Hidden))
	for _, e := range window {
		x := t.Constant(l.oneHot(e))
		h, c = l.step(t, b, x, h, c)
	}
	logits := t.MatMul(h, b.Node("wy"))
	return t.AddRowBroadcast(logits, b.Node("by"))
}

// Fit trains the model on event sequences (each a slice of event ids).
// Training pairs are every (window, next-event) slice of every sequence.
func (l *LSTM) Fit(sequences [][]int) {
	l.initParams()
	type sample struct {
		win  []int
		next int
	}
	var samples []sample
	for _, seq := range sequences {
		for i := 0; i+l.Window < len(seq); i++ {
			samples = append(samples, sample{
				win:  seq[i : i+l.Window],
				next: seq[i+l.Window],
			})
		}
	}
	if len(samples) == 0 {
		return
	}
	opt := autodiff.NewAdam(l.LR)
	r := rng.New(l.Seed + 3)
	tape := autodiff.NewTape()
	binder := autodiff.Bind(tape, l.params)
	scratch := l.newScratch()
	lab := make([]int, 1)
	for e := 0; e < l.Epochs; e++ {
		r.Shuffle(len(samples), func(i, j int) {
			samples[i], samples[j] = samples[j], samples[i]
		})
		for _, s := range samples {
			tape.Reset()
			binder.Rebind(tape, l.params)
			logits := l.forwardScratch(tape, binder, s.win, scratch)
			lab[0] = s.next
			loss := tape.SoftmaxCrossEntropy(logits, lab, nil)
			tape.Backward(loss)
			grads := binder.Grads()
			autodiff.ClipGrads(grads, 5)
			opt.Step(l.params, grads)
		}
	}
}

// PredictLogits returns next-event logits for a history window.
func (l *LSTM) PredictLogits(window []int) []float64 {
	if l.params == nil {
		return make([]float64, l.Vocab)
	}
	s := borrow(l.params)
	defer s.release()
	out := l.forward(s.tape, s.binder, window)
	return append([]float64(nil), out.Value.Row(0)...)
}

// InTopK reports whether event is among the model's top-K next-event
// predictions after the window.
func (l *LSTM) InTopK(window []int, event int) bool {
	logits := l.PredictLogits(window)
	type iv struct {
		i int
		v float64
	}
	order := make([]iv, len(logits))
	for i, v := range logits {
		order[i] = iv{i, v}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].v > order[b].v })
	k := l.TopK
	if k > len(order) {
		k = len(order)
	}
	for i := 0; i < k; i++ {
		if order[i].i == event {
			return true
		}
	}
	return false
}

// AnomalyRate returns the fraction of (window, next) transitions of seq the
// model finds anomalous; DeepLog flags a sequence when any transition is
// anomalous, but the rate is a smoother detector score. Transitions are
// scored concurrently under the shared mat parallelism bound — each is an
// independent read-only forward pass writing only its own flag.
func (l *LSTM) AnomalyRate(seq []int) float64 {
	total := len(seq) - l.Window
	if total <= 0 {
		return 0
	}
	anomalous := make([]bool, total)
	mat.ParallelFor(total, func(i int) {
		anomalous[i] = !l.InTopK(seq[i:i+l.Window], seq[i+l.Window])
	})
	anomalies := 0
	for _, a := range anomalous {
		if a {
			anomalies++
		}
	}
	return float64(anomalies) / float64(total)
}

// NumParams reports the parameter count (used in the Table III model-size
// accounting).
func (l *LSTM) NumParams() int {
	if l.params == nil {
		return 0
	}
	return l.params.NumElements()
}

// String describes the architecture.
func (l *LSTM) String() string {
	return fmt.Sprintf("LSTM(V=%d,H=%d,W=%d)", l.Vocab, l.Hidden, l.Window)
}
