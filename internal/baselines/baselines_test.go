package baselines

import (
	"testing"

	"fexiot/internal/eventlog"
	"fexiot/internal/rules"
)

// testbed builds benign training logs plus benign/attacked test logs from
// one deployment.
func testbed(t *testing.T) (train []eventlog.Log, benign, attacked []eventlog.Log) {
	t.Helper()
	gen := rules.NewGenerator(3, rules.Archetypes()[4], "t")
	deployed := gen.RuleSet(12)
	for i := 0; i < 10; i++ {
		log := eventlog.Clean(eventlog.NewSimulator(deployed, int64(i)).Run(1200))
		if i < 6 {
			train = append(train, log)
		} else {
			benign = append(benign, log)
			// Spoofing attacks perturb every detector's view; the subtler
			// suppression attacks are exercised by the Table II experiment.
			a := eventlog.FakeEvents
			if i%2 == 0 {
				a = eventlog.FakeCommands
			}
			attacked = append(attacked, eventlog.Inject(log, a, deployed, 1.0, int64(i)))
		}
	}
	return
}

func TestDetectorsScoreAttacksHigher(t *testing.T) {
	train, benign, attacked := testbed(t)
	// DeepLog and IsolationForest must rank spoofing attacks above benign
	// logs. HAWatcher's binary templates have limited power on dense
	// periodic logs (the very limitation §IV-C attributes to it), so for it
	// we only require well-formed finite scores; Table II compares the
	// systems end to end.
	for _, d := range []LogDetector{NewDeepLog(), NewIsoForest()} {
		d.Train(train)
		var benignSum, attackSum float64
		for i := range benign {
			benignSum += d.Score(benign[i])
			attackSum += d.Score(attacked[i])
		}
		if attackSum <= benignSum {
			t.Errorf("%s: attacked mean score %.4f not above benign %.4f",
				d.Name(), attackSum/float64(len(attacked)),
				benignSum/float64(len(benign)))
		}
	}
	h := NewHAWatcher()
	h.Train(train)
	for i := range benign {
		for _, s := range []float64{h.Score(benign[i]), h.Score(attacked[i])} {
			if s < 0 || s > 10 {
				t.Fatalf("HAWatcher score %v out of sane range", s)
			}
		}
	}
}

func TestPredictionsBinary(t *testing.T) {
	train, benign, attacked := testbed(t)
	for _, d := range []LogDetector{NewHAWatcher(), NewDeepLog(), NewIsoForest()} {
		d.Train(train)
		for _, log := range append(append([]eventlog.Log{}, benign...), attacked...) {
			p := d.Predict(log)
			if p != 0 && p != 1 {
				t.Fatalf("%s prediction %d", d.Name(), p)
			}
		}
	}
}

func TestHAWatcherMinesTemplates(t *testing.T) {
	train, _, _ := testbed(t)
	h := NewHAWatcher()
	h.Train(train)
	if len(h.templates) == 0 {
		t.Fatal("no correlation templates mined from causal logs")
	}
	// Empty log scores zero.
	if h.Score(nil) != 0 {
		t.Fatal("empty log must score 0")
	}
}

func TestDeepLogFlagsUnseenEventTypes(t *testing.T) {
	train, benign, _ := testbed(t)
	d := NewDeepLog()
	d.Train(train)
	// A log full of never-seen events maps to the sentinel id, which the
	// model has never been trained to predict → high anomaly rate.
	weird := eventlog.Log{}
	for i := 0; i < 20; i++ {
		weird = append(weird, eventlog.Event{Time: int64(i),
			Device: "alien device", Room: "nowhere", Value: "zap"})
	}
	if d.Score(weird) <= d.Score(benign[0]) {
		t.Fatal("unseen event types should raise the DeepLog score")
	}
}

func TestIsoForestNormalization(t *testing.T) {
	v := normalizeVec([]float64{2, 2, 0})
	if v[0] != 0.5 || v[1] != 0.5 {
		t.Fatalf("normalize = %v", v)
	}
	zero := normalizeVec([]float64{0, 0})
	if zero[0] != 0 {
		t.Fatal("zero vector should survive")
	}
}
