package nn

import (
	"math"
	"testing"

	"fexiot/internal/ml"
	"fexiot/internal/rng"
)

func TestMLPSolvesXOR(t *testing.T) {
	r := rng.New(5)
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		a := r.Float64()*2 - 1
		b := r.Float64()*2 - 1
		label := 0
		if (a > 0) != (b > 0) {
			label = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, label)
	}
	m := NewMLP([]int{2, 16, 8, 2}, 60, 0.01, 1)
	m.Fit(x[:300], y[:300])
	metrics := ml.Evaluate(ml.PredictAll(m, x[300:]), y[300:])
	if metrics.Accuracy < 0.9 {
		t.Fatalf("MLP XOR accuracy %v", metrics.Accuracy)
	}
}

func TestMLPScoreIsProbability(t *testing.T) {
	m := NewMLP([]int{2, 8, 2}, 5, 0.01, 2)
	m.Fit([][]float64{{0, 0}, {1, 1}}, []int{0, 1})
	s := m.Score([]float64{0.5, 0.5})
	if s < 0 || s > 1 || math.IsNaN(s) {
		t.Fatalf("score %v", s)
	}
	// Untrained model defaults to 0.5.
	fresh := NewMLP([]int{2, 2}, 1, 0.01, 3)
	if fresh.Score([]float64{1, 2}) != 0.5 {
		t.Fatal("untrained MLP should score 0.5")
	}
}

func TestMLPClassWeightsShiftDecisions(t *testing.T) {
	// Imbalanced 1-D data; upweighting the minority class should increase
	// predicted positives.
	r := rng.New(9)
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		if i%15 == 0 {
			x = append(x, []float64{0.5 + r.NormFloat64()})
			y = append(y, 1)
		} else {
			x = append(x, []float64{-0.5 + r.NormFloat64()})
			y = append(y, 0)
		}
	}
	count := func(weights []float64) int {
		m := NewMLP([]int{1, 8, 2}, 30, 0.01, 4)
		m.ClassWeights = weights
		m.Fit(x, y)
		pos := 0
		for _, q := range x {
			pos += m.Predict(q)
		}
		return pos
	}
	plain := count(nil)
	weighted := count([]float64{1, 15})
	if weighted <= plain {
		t.Fatalf("class weights should increase positive predictions: %d vs %d",
			plain, weighted)
	}
}

func TestMLPInputDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewMLP([]int{3, 2}, 1, 0.01, 1)
	m.Fit([][]float64{{1, 2}}, []int{0})
}

func TestLSTMLearnsCyclicSequence(t *testing.T) {
	// Deterministic cycle 0→1→2→3→0…: the model must learn the transition
	// table and flag violations.
	var seq []int
	for i := 0; i < 120; i++ {
		seq = append(seq, i%4)
	}
	l := NewLSTM(4, 12, 3, 8, 0.02, 1)
	l.TopK = 1
	l.Fit([][]int{seq})
	// Normal continuation is predicted.
	if !l.InTopK([]int{1, 2, 3}, 0) {
		t.Fatal("expected 0 after 1,2,3")
	}
	// A violation is flagged.
	if l.InTopK([]int{1, 2, 3}, 2) {
		t.Fatal("2 after 1,2,3 should be anomalous")
	}
	// Anomaly rates: clean sequence low, corrupted sequence higher.
	clean := l.AnomalyRate(seq[:40])
	corrupt := append([]int(nil), seq[:40]...)
	for i := 5; i < len(corrupt); i += 7 {
		corrupt[i] = (corrupt[i] + 2) % 4
	}
	if cr := l.AnomalyRate(corrupt); cr <= clean {
		t.Fatalf("corrupted rate %v should exceed clean rate %v", cr, clean)
	}
}

func TestLSTMEmptyFit(t *testing.T) {
	l := NewLSTM(4, 8, 3, 2, 0.01, 1)
	l.Fit(nil) // no sequences: must not panic
	if l.AnomalyRate([]int{0, 1}) != 0 {
		t.Fatal("short sequence anomaly rate should be 0")
	}
}

func TestLSTMNumParams(t *testing.T) {
	l := NewLSTM(4, 8, 3, 1, 0.01, 1)
	l.Fit([][]int{{0, 1, 2, 3, 0, 1, 2, 3}})
	want := 4*((4+8)*8+8) + 8*4 + 4 // 4 gates + output head
	if got := l.NumParams(); got != want {
		t.Fatalf("NumParams = %d want %d", got, want)
	}
}
