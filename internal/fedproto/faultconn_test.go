package fedproto

import (
	"net"
	"testing"
	"time"
)

func TestFaultConnDelay(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	f := NewFaultConn(a)
	f.SetDelay(50 * time.Millisecond)

	go b.Write([]byte("hi"))
	buf := make([]byte, 2)
	start := time.Now()
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("read returned after %v, want ≥ ~50ms delay", d)
	}
}

func TestFaultConnDropAfter(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	f := NewFaultConn(a)
	f.DropAfter(3)

	// Reader sees exactly the 3-byte budget of a 5-byte write.
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 8)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()
	n, err := f.Write([]byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("write reported (%d, %v), want (5, nil) — the sender must not notice", n, err)
	}
	select {
	case data := <-got:
		if string(data) != "hel" {
			t.Fatalf("peer received %q, want %q", data, "hel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never received the pre-budget bytes")
	}

	// The budget is spent: further writes are swallowed whole.
	if n, err := f.Write([]byte("more")); err != nil || n != 4 {
		t.Fatalf("blackholed write reported (%d, %v), want (4, nil)", n, err)
	}
	b.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 8)
	if n, err := b.Read(buf); err == nil {
		t.Fatalf("peer received %q after the blackhole engaged", buf[:n])
	}
}

func TestFaultConnKill(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	f := NewFaultConn(a)
	if f.Killed() {
		t.Fatal("fresh conn reports killed")
	}
	if err := f.Kill(); err != nil {
		t.Fatal(err)
	}
	if !f.Killed() {
		t.Fatal("Kill did not mark the conn")
	}
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write on a killed conn succeeded")
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after hard close")
	}
}
