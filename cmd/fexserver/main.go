// Command fexserver runs the FexIoT federated aggregation server over TCP:
// it waits for the expected number of fexclient processes, coordinates the
// training rounds with layer-wise clustered aggregation (Algorithm 1), and
// reports real transferred bytes — the measured counterpart of Fig. 7.
// Rounds are quorum-based: the server closes each round once the
// configured fraction of clients has delivered a valid update, evicts
// clients that stay silent for consecutive rounds, and re-admits rejoining
// clients by replaying the current aggregated model. -agg selects a
// Byzantine-robust aggregation rule (trimmed mean, median, norm-clipped
// mean, Krum) in place of the plain FedAvg mean, and -checkpoint makes the
// server durable: it snapshots the federation state every
// -checkpoint-every closed rounds and resumes from the latest snapshot
// after a crash.
//
// Checkpoints carry a SHA-256 integrity footer and rotate the previous
// snapshot to .prev: a corrupt or truncated latest file rolls back to the
// previous good one instead of failing startup.
//
// -http serves observability on the given address: Prometheus metrics at
// /metrics, a JSON status snapshot at /statusz, pprof profiles under
// /debug/pprof/, and health probes at /healthz (accept loop supervised,
// restart budget not exhausted) and /readyz (listening for clients).
// SIGINT/SIGTERM shut the federation down gracefully, flushing a final
// checkpoint when -checkpoint is set.
//
// Usage:
//
//	fexserver -addr :7070 -clients 4 -rounds 10 -quorum 0.75 -strikes 3 \
//	    -agg trimmed -checkpoint /tmp/fex.ckpt -checkpoint-every 2 \
//	    -http :9090
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fexiot/internal/fed"
	"fexiot/internal/fedproto"
	"fexiot/internal/fedproto/codec"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	clients := flag.Int("clients", 2, "clients to wait for before round 0")
	rounds := flag.Int("rounds", 10, "federated rounds")
	layers := flag.Int("layers", 4, "model layer count (must match clients)")
	eps1 := flag.Float64("eps1", 0.6, "clustering gate ε1 (relative)")
	eps2 := flag.Float64("eps2", 0.95, "clustering gate ε2 (relative)")
	timeout := flag.Duration("timeout", fedproto.DefaultRoundTimeout,
		"per-client read/write deadline per round (negative disables)")
	quorum := flag.Float64("quorum", fedproto.DefaultQuorum,
		"fraction of admitted clients required to close a round")
	strikes := flag.Int("strikes", fedproto.DefaultMaxStrikes,
		"consecutive missed rounds before eviction (negative disables)")
	aggName := flag.String("agg", "fedavg",
		"aggregation rule: "+strings.Join(fed.AggregatorNames(), ", "))
	codecName := flag.String("codec", codec.Raw64,
		"preferred update encoding: "+strings.Join(codec.Names(), ", ")+
			" (per session; clients that don't offer it fall back to raw64)")
	checkpoint := flag.String("checkpoint", "",
		"checkpoint file; resumes from it when present (empty disables)")
	checkpointEvery := flag.Int("checkpoint-every", 1,
		"snapshot cadence in closed rounds")
	httpAddr := flag.String("http", "",
		"observability address serving /metrics, /statusz and /debug/pprof/ (empty disables)")
	flag.Parse()

	agg, err := fed.NewAggregator(*aggName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, err := codec.New(*codecName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var reg *obs.Registry
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		mat.InstrumentKernels(reg)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := fedproto.NewServer(fedproto.ServerConfig{
		Addr:            *addr,
		Clients:         *clients,
		Rounds:          *rounds,
		Eps1:            *eps1,
		Eps2:            *eps2,
		NumLayers:       *layers,
		RoundTimeout:    *timeout,
		Quorum:          *quorum,
		MaxStrikes:      *strikes,
		Aggregator:      agg,
		Codec:           *codecName,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *checkpointEvery,
		Metrics:         reg,
	})
	if *httpAddr != "" {
		// The obs mux carries the health probes beside /metrics: /healthz
		// fails once the supervised accept loop trips its restart circuit,
		// /readyz reports whether the federation listener is up.
		mux := obs.NewHandler(reg)
		health := obs.NewHealth()
		health.AddLiveness("fedproto", srv.Healthy)
		health.AddReadiness("listening", srv.Ready)
		health.Mount(mux)
		hs, err := obs.StartHTTPHandler(*httpAddr, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs:", err)
			os.Exit(2)
		}
		defer hs.Close()
		fmt.Printf("obs listening on http://%s\n", hs.Addr())
	}
	fmt.Printf("fexserver listening on %s for %d clients, %d rounds (quorum %.2f, %d strikes, %s aggregation, %s updates)\n",
		*addr, *clients, *rounds, *quorum, *strikes, agg.Name(), *codecName)
	if *checkpoint != "" {
		fmt.Printf("checkpointing every %d round(s) to %s\n", *checkpointEvery, *checkpoint)
	}
	total, err := srv.Run(ctx)
	stats := srv.Stats()
	if err != nil {
		// A signal-driven shutdown has already flushed its final checkpoint
		// inside Run (when -checkpoint is set); report it as an orderly
		// stop, not a failure.
		if ctx.Err() != nil {
			fmt.Printf("interrupted after %d rounds: %v\n",
				stats.RoundsCompleted, err)
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "server error after %d rounds: %v\n",
			stats.RoundsCompleted, err)
		os.Exit(1)
	}
	fmt.Printf("training complete: %d rounds, %d evicted, %d rejoined; total transferred bytes: %d (%.2f MB)\n",
		stats.RoundsCompleted, stats.Evicted, stats.Rejoined,
		total, float64(total)/1e6)
}
