// Package supervise runs long-lived goroutines under a restart policy so a
// panic or a transient failure in one component degrades the process
// instead of killing it. A supervised task that fails is restarted with
// exponential backoff plus deterministic jitter; a task that keeps failing
// trips a per-task circuit breaker, which surfaces through Check as a
// failed health probe (/healthz 503) rather than a crash loop.
//
// The runtime wraps three components in supervisors: the serve engine's
// inference workers (a panicking worker answers its request with an error
// and is restarted), the fedproto accept loop (a transient Accept error no
// longer bricks admissions for the rest of the federation), and — via
// Retry — the checkpoint writer (a flaky disk gets a bounded number of
// backed-off attempts before the round fails).
package supervise

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"fexiot/internal/obs"
)

// Policy defaults (zero-value resolution).
const (
	DefaultMaxRestarts = 8
	DefaultBackoff     = 50 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
	DefaultResetAfter  = 30 * time.Second
)

// Policy tunes restart behaviour. The zero value is usable: 8 consecutive
// restarts, 50ms initial backoff doubling to a 5s cap, and a 30s
// "ran long enough" horizon that resets the failure streak.
type Policy struct {
	// MaxRestarts bounds consecutive restarts of one task: the next failure
	// after the budget trips the circuit. Zero selects DefaultMaxRestarts;
	// negative disables the circuit (restart forever).
	MaxRestarts int
	// Backoff is the delay before the first restart; it doubles per
	// consecutive failure. Zero selects DefaultBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Zero selects DefaultMaxBackoff.
	MaxBackoff time.Duration
	// ResetAfter: a run that survives this long before failing resets the
	// failure streak and the backoff — only rapid crash loops trip the
	// circuit. Zero selects DefaultResetAfter.
	ResetAfter time.Duration
	// Seed drives the backoff jitter deterministically.
	Seed int64
}

func (p Policy) maxRestarts() int {
	switch {
	case p.MaxRestarts < 0:
		return math.MaxInt
	case p.MaxRestarts == 0:
		return DefaultMaxRestarts
	default:
		return p.MaxRestarts
	}
}

func (p Policy) backoff() time.Duration {
	if p.Backoff <= 0 {
		return DefaultBackoff
	}
	return p.Backoff
}

func (p Policy) maxBackoff() time.Duration {
	if p.MaxBackoff <= 0 {
		return DefaultMaxBackoff
	}
	return p.MaxBackoff
}

func (p Policy) resetAfter() time.Duration {
	if p.ResetAfter <= 0 {
		return DefaultResetAfter
	}
	return p.ResetAfter
}

// PanicError wraps a recovered panic so supervisors and retries can treat
// a crash as an ordinary failure. The stack is captured at recovery.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Run invokes fn once, converting a panic into a *PanicError instead of
// unwinding the process.
func Run(ctx context.Context, fn func(context.Context) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}

// Options configures a Supervisor.
type Options struct {
	Policy Policy
	// Metrics, when non-nil, exposes fexiot_supervisor_restarts_total{task}.
	Metrics *obs.Registry
	// OnTrip, when non-nil, is invoked (off the supervisor lock) each time
	// a task's circuit trips, with the task name and the final failure.
	OnTrip func(task string, cause error)
}

// taskState is one supervised goroutine's book-keeping, guarded by
// Supervisor.mu.
type taskState struct {
	name     string
	restarts int64
	tripped  error
}

// Supervisor owns a set of supervised goroutines sharing one policy. All
// methods are safe for concurrent use.
type Supervisor struct {
	opts     Options
	restarts *obs.CounterVec

	mu    sync.Mutex
	rng   *rand.Rand
	tasks []*taskState
	wg    sync.WaitGroup
}

// New creates a supervisor.
func New(opts Options) *Supervisor {
	s := &Supervisor{
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Policy.Seed ^ 0x5eed5eed5eed)),
	}
	if opts.Metrics != nil {
		s.restarts = opts.Metrics.CounterVec("fexiot_supervisor_restarts_total",
			"supervised task restarts after a panic or error", "task")
	}
	return s
}

// Go runs fn under supervision until it returns nil (orderly completion),
// ctx is cancelled, or the restart circuit trips. Several tasks may share
// a name (e.g. a worker pool); restart counts aggregate per name.
func (s *Supervisor) Go(ctx context.Context, name string, fn func(context.Context) error) {
	t := &taskState{name: name}
	s.mu.Lock()
	s.tasks = append(s.tasks, t)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.loop(ctx, t, fn)
}

func (s *Supervisor) loop(ctx context.Context, t *taskState, fn func(context.Context) error) {
	defer s.wg.Done()
	p := s.opts.Policy
	backoff := p.backoff()
	streak := 0
	for {
		start := time.Now()
		err := Run(ctx, fn)
		if err == nil || ctx.Err() != nil {
			return
		}
		if time.Since(start) >= p.resetAfter() {
			streak = 0
			backoff = p.backoff()
		}
		streak++
		if streak > p.maxRestarts() {
			s.mu.Lock()
			t.tripped = err
			s.mu.Unlock()
			if s.opts.OnTrip != nil {
				s.opts.OnTrip(t.name, err)
			}
			return
		}
		s.mu.Lock()
		t.restarts++
		jitter := 0.5 + s.rng.Float64()
		s.mu.Unlock()
		s.restarts.With(t.name).Inc()
		timer := time.NewTimer(time.Duration(float64(backoff) * jitter))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return
		}
		backoff *= 2
		if backoff > p.maxBackoff() {
			backoff = p.maxBackoff()
		}
	}
}

// Check reports the first tripped circuit, or nil while every task is
// healthy — the liveness probe supervised subsystems expose on /healthz.
func (s *Supervisor) Check() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tasks {
		if t.tripped != nil {
			return fmt.Errorf("supervise: task %q circuit open: %w", t.name, t.tripped)
		}
	}
	return nil
}

// Restarts reports the total restarts across all tasks with the given name.
func (s *Supervisor) Restarts(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, t := range s.tasks {
		if t.name == name {
			n += t.restarts
		}
	}
	return n
}

// TotalRestarts reports restarts across every supervised task.
func (s *Supervisor) TotalRestarts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, t := range s.tasks {
		n += t.restarts
	}
	return n
}

// Wait blocks until every supervised task has returned (orderly exit,
// cancellation, or tripped circuit).
func (s *Supervisor) Wait() { s.wg.Wait() }

// Retry invokes fn until it succeeds, converting panics to errors and
// backing off (with deterministic jitter) between attempts. The policy's
// MaxRestarts bounds the retries: fn runs at most 1+MaxRestarts times.
// Cancelling ctx stops further attempts and returns the last failure.
func Retry(ctx context.Context, p Policy, fn func() error) error {
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5eed5eed5eed))
	backoff := p.backoff()
	var err error
	for attempt := 0; ; attempt++ {
		err = Run(ctx, func(context.Context) error { return fn() })
		if err == nil {
			return nil
		}
		if attempt >= p.maxRestarts() || ctx.Err() != nil {
			return err
		}
		timer := time.NewTimer(time.Duration(float64(backoff) * (0.5 + rng.Float64())))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return err
		}
		backoff *= 2
		if backoff > p.maxBackoff() {
			backoff = p.maxBackoff()
		}
	}
}
