package text

import (
	"strings"
	"unicode"
)

// Token is a single lexical unit of a rule sentence.
type Token struct {
	Text  string // surface form, lower-cased
	Lemma string // dictionary form
	Tag   POS
}

// Tokenize splits a rule sentence into lower-cased word and number tokens.
// Punctuation separates tokens and is dropped, except that intra-word
// hyphens and apostrophes are treated as separators too ("living-room" →
// "living", "room") because the downstream matchers work on word unigrams.
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, strings.ToLower(b.String()))
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		case r == '.' && b.Len() > 0 && isDigitTail(b.String()):
			// Keep decimal points inside numbers ("72.5").
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}

func isDigitTail(s string) bool {
	if s == "" {
		return false
	}
	last := s[len(s)-1]
	return last >= '0' && last <= '9'
}

// IsNumeric reports whether the token is a number literal.
func IsNumeric(w string) bool {
	if w == "" {
		return false
	}
	dot := false
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c == '.' {
			if dot {
				return false
			}
			dot = true
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Lemmatize maps an inflected form to its base form using irregular tables
// plus conservative suffix stripping tuned to the rule language.
func Lemmatize(w string) string {
	if base, ok := irregularLemmas[w]; ok {
		return base
	}
	inflected := strings.HasSuffix(w, "ed") || strings.HasSuffix(w, "ing") ||
		strings.HasSuffix(w, "s")
	if !inflected && (verbLexicon[w] || nounLexicon[w] || adjectiveLexicon[w]) {
		return w
	}
	if verbLexicon[w] || nounLexicon[w] {
		// Base forms that happen to end in an inflection suffix ("press",
		// "monoxide"... actually "-s"/"-ed" lookalikes) stay as-is.
		return w
	}
	// -ies → -y (dries → dry)
	if strings.HasSuffix(w, "ies") && len(w) > 4 {
		if cand := w[:len(w)-3] + "y"; known(cand) {
			return cand
		}
	}
	// -ing: running → run, detecting → detect, closing → close
	if strings.HasSuffix(w, "ing") && len(w) > 5 {
		stem := w[:len(w)-3]
		if known(stem) {
			return stem
		}
		if cand := stem + "e"; known(cand) {
			return cand
		}
		if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] {
			if cand := stem[:len(stem)-1]; known(cand) {
				return cand
			}
		}
	}
	// -ed: detected → detect, closed → close, stopped → stop
	if strings.HasSuffix(w, "ed") && len(w) > 4 {
		stem := w[:len(w)-2]
		if known(stem) {
			return stem
		}
		if cand := w[:len(w)-1]; known(cand) { // closed → close
			return cand
		}
		if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] {
			if cand := stem[:len(stem)-1]; known(cand) {
				return cand
			}
		}
	}
	// -es / -s plural or third person: opens → open, switches → switch
	if strings.HasSuffix(w, "es") && len(w) > 4 {
		if cand := w[:len(w)-2]; known(cand) {
			return cand
		}
	}
	if strings.HasSuffix(w, "s") && len(w) > 3 && !strings.HasSuffix(w, "ss") {
		if cand := w[:len(w)-1]; known(cand) {
			return cand
		}
		return w[:len(w)-1] // default plural strip
	}
	return w
}

func known(w string) bool {
	return verbLexicon[w] || nounLexicon[w] || adjectiveLexicon[w] ||
		adverbLexicon[w]
}

var irregularLemmas = map[string]string{
	"ran": "run", "began": "begin", "left": "leave", "came": "come",
	"went": "go", "fell": "fall", "rose": "rise", "sent": "send",
	"shut": "shut", "lit": "light", "was": "be", "were": "be", "is": "be",
	"are": "be", "been": "be", "being": "be", "has": "have", "had": "have",
	"does": "do", "did": "do", "woke": "wake", "rang": "ring",
	"lights": "light", "degrees": "degree", "minutes": "minute",
	"seconds": "second", "hours": "hour", "windows": "window",
	"doors": "door", "blinds": "blind", "curtains": "curtain",
}
