// Package vuln implements the interaction vulnerability model of
// Definition 2: the six vulnerability types identified by iRuler that the
// paper labels against (condition bypass, condition block, action revert,
// action loop, action conflict, action duplicate), a deterministic
// graph-analytic ground-truth labeler, and the three drifting ("novel")
// vulnerability patterns §IV-C discovers in the unlabeled data.
package vuln

import (
	"sort"

	"fexiot/internal/graph"
	"fexiot/internal/rules"
)

// Type is one of the interaction vulnerability types.
type Type int

// The six labelled vulnerability types (Definition 2), followed by the
// three drifting patterns discovered in §IV-C and the external-attack tag
// used for online graphs.
const (
	ConditionBypass Type = iota
	ConditionBlock
	ActionRevert
	ActionLoop
	ActionConflict
	ActionDuplicate

	// Drifting patterns (not part of the training label space).
	DriftTimedRevert // automation action is reverted over time
	DriftFakeCond    // another action generates fake automation conditions
	DriftManualBlock // non-automation settings block existing actions
	ExternalAttack   // online graph compromised by an injected attack
	numTypes
)

// NumLabeledTypes is the count of the six trainable vulnerability types.
const NumLabeledTypes = 6

// String names the vulnerability type.
func (t Type) String() string {
	names := [...]string{"condition_bypass", "condition_block",
		"action_revert", "action_loop", "action_conflict",
		"action_duplicate", "drift_timed_revert", "drift_fake_condition",
		"drift_manual_block", "external_attack"}
	if int(t) < len(names) {
		return names[t]
	}
	return "unknown"
}

// Finding records one detected vulnerability instance and the nodes
// involved (indices into the graph).
type Finding struct {
	Type  Type
	Nodes []int
}

// Detect runs the six graph-analytic detectors over an interaction graph
// and returns all findings, deterministically ordered by (type, nodes).
func Detect(g *graph.Graph) []Finding {
	var out []Finding
	out = append(out, detectLoop(g)...)
	out = append(out, detectPairwise(g)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return lessIntSlice(out[i].Nodes, out[j].Nodes)
	})
	return out
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// detectLoop finds directed cycles ("action loop": a chain of rules that
// re-triggers itself, like the camera on/off spreadsheet loop of Fig. 8).
func detectLoop(g *graph.Graph) []Finding {
	if !g.HasCycle() {
		return nil
	}
	// Report the nodes on some cycle via DFS back-edge capture.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.N())
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	var cyc []int
	var dfs func(int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range g.Out(u) {
			if color[v] == gray {
				// Walk back from u to v collecting the cycle.
				cyc = append(cyc, v)
				for x := u; x != v && x != -1; x = parent[x] {
					cyc = append(cyc, x)
				}
				return true
			}
			if color[v] == white {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := 0; i < g.N(); i++ {
		if color[i] == white && dfs(i) {
			break
		}
	}
	sort.Ints(cyc)
	return []Finding{{Type: ActionLoop, Nodes: cyc}}
}

// revertMaxHops bounds how long a causal chain still counts as an "action
// revert": the undoing rule must fire within a few steps of the original
// action, mirroring HAWatcher's short-order interference semantics.
const revertMaxHops = 2

// detectPairwise scans rule pairs for the conflict, revert, duplicate,
// bypass and block patterns. Conflict, duplicate and block require
// *sibling activation* — the two rules fire from the same direct parent or
// share an identical trigger condition — which is the simultaneity
// requirement of the underlying iRuler/HAWatcher vulnerability semantics.
func detectPairwise(g *graph.Graph) []Finding {
	var out []Finding
	n := g.N()
	hasEdge := make(map[[2]int]bool, len(g.Edges))
	inDeg := make([]int, n)
	parents := make([][]int, n)
	for _, e := range g.Edges {
		hasEdge[[2]int{e.From, e.To}] = true
		inDeg[e.To]++
		parents[e.To] = append(parents[e.To], e.From)
	}
	dist := hopDistances(g)
	siblings := func(u, v int) bool {
		ru, rv := g.Nodes[u].Rule, g.Nodes[v].Rule
		if ru.Trigger == rv.Trigger {
			return true
		}
		for _, pu := range parents[u] {
			for _, pv := range parents[v] {
				if pu == pv {
					return true
				}
			}
		}
		return false
	}
	for u := 0; u < n; u++ {
		ru := g.Nodes[u].Rule
		if ru == nil {
			continue
		}
		// Condition bypass: an environmental edge into a rule whose action
		// is security-sensitive — the trigger can be satisfied artificially
		// rather than by the genuine environment.
		for _, e := range g.Edges {
			if e.From != u || e.Kind != rules.EnvMatch {
				continue
			}
			rv := g.Nodes[e.To].Rule
			if rv == nil {
				continue
			}
			for _, eff := range rv.Actions {
				if eff.Sensitive {
					out = append(out, Finding{Type: ConditionBypass,
						Nodes: []int{u, e.To}})
					break
				}
			}
		}
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			rv := g.Nodes[v].Rule
			if rv == nil {
				continue
			}
			// Action revert: a short downstream chain undoes the upstream
			// action.
			if d := dist[u][v]; d > 0 && d <= revertMaxHops {
				if conflicting(ru, rv) {
					out = append(out, Finding{Type: ActionRevert,
						Nodes: []int{u, v}})
				}
			}
			if u < v && siblings(u, v) && dist[u][v] < 0 && dist[v][u] < 0 {
				// Simultaneous activation of causally unordered siblings.
				if conflicting(ru, rv) {
					out = append(out, Finding{Type: ActionConflict,
						Nodes: []int{u, v}})
				}
				if duplicating(ru, rv) {
					out = append(out, Finding{Type: ActionDuplicate,
						Nodes: []int{u, v}})
				}
			}
			// Condition block: a sibling's action forces v's trigger false
			// while v is meant to fire (in-degree > 0).
			if siblings(u, v) && !hasEdge[[2]int{u, v}] && inDeg[v] > 0 &&
				blocksTrigger(ru, rv) {
				out = append(out, Finding{Type: ConditionBlock,
					Nodes: []int{u, v}})
			}
		}
	}
	return out
}

// hopDistances returns the directed BFS hop count between all node pairs
// (-1 when unreachable; 0 on the diagonal).
func hopDistances(g *graph.Graph) [][]int {
	n := g.N()
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	dist := make([][]int, n)
	for s := 0; s < n; s++ {
		row := make([]int, n)
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range adj[cur] {
				if row[next] < 0 {
					row[next] = row[cur] + 1
					queue = append(queue, next)
				}
			}
		}
		dist[s] = row
	}
	return dist
}

func conflicting(a, b *rules.Rule) bool {
	for _, ea := range a.Actions {
		for _, eb := range b.Actions {
			if rules.Conflicts(ea, eb) {
				return true
			}
		}
	}
	return false
}

func duplicating(a, b *rules.Rule) bool {
	for _, ea := range a.Actions {
		for _, eb := range b.Actions {
			if rules.Duplicates(ea, eb) {
				return true
			}
		}
	}
	return false
}

func blocksTrigger(a, b *rules.Rule) bool {
	for _, ea := range a.Actions {
		if rules.Blocks(ea, b.Trigger) {
			return true
		}
	}
	return false
}

// Label applies the detectors to g, setting Label and Tags in place, and
// returns the findings.
func Label(g *graph.Graph) []Finding {
	findings := Detect(g)
	g.Label = len(findings) > 0
	seen := map[string]bool{}
	g.Tags = nil
	for _, f := range findings {
		name := f.Type.String()
		if !seen[name] {
			seen[name] = true
			g.Tags = append(g.Tags, name)
		}
	}
	return findings
}

// PrimaryType returns the dominant vulnerability type of a labelled graph
// (the first tag), or -1 for benign graphs. Used by the drift experiment to
// colour clusters (Fig. 6).
func PrimaryType(g *graph.Graph) Type {
	if len(g.Tags) == 0 {
		return -1
	}
	for t := Type(0); t < numTypes; t++ {
		if g.Tags[0] == t.String() {
			return t
		}
	}
	return -1
}
