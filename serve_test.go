package fexiot_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fexiot"
)

// smallSystem builds a compact system + training corpus sized for the
// -race concurrency tests.
func smallSystem(t *testing.T, seed int64) (*fexiot.System, []*fexiot.Graph) {
	t.Helper()
	opts := fexiot.DefaultOptions()
	opts.Seed, opts.WordDim, opts.SentenceDim = seed, 24, 32
	opts.Hidden, opts.EmbedDim = 12, 8
	sys, err := fexiot.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var train []*fexiot.Graph
	archs := fexiot.ArchetypeNames()
	for home := 0; home < 6; home++ {
		deployed := fexiot.GenerateHome(archs[home%len(archs)], 20, seed+int64(home))
		for i := 0; i < 2; i++ {
			train = append(train, sys.BuildGraph(deployed))
		}
	}
	return sys, train
}

// TestConcurrentDetectWhileTraining is the race regression test for the
// facade: N goroutines hammer Detect/Explain/Evaluate while training
// rounds retrain and republish the model. On the pre-snapshot code, where
// TrainCentral wrote the detector and drift fields Detect was reading,
// this fails under -race.
func TestConcurrentDetectWhileTraining(t *testing.T) {
	sys, train := smallSystem(t, 7)
	sys.TrainCentral(train, 1, 40)

	probe := sys.BuildGraph(fexiot.GenerateHome("safety", 16, 99))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := sys.Detect(probe)
				if err != nil {
					t.Errorf("Detect during training: %v", err)
					return
				}
				if v.Score < 0 || v.Score > 1 {
					t.Errorf("torn verdict: score %v", v.Score)
					return
				}
				if i == 0 {
					if _, err := sys.Evaluate(train[:2]); err != nil {
						t.Errorf("Evaluate during training: %v", err)
						return
					}
				}
			}
		}(i)
	}
	for r := 0; r < 3; r++ {
		sys.TrainCentral(train, 1, 40)
	}
	close(stop)
	wg.Wait()
}

// TestRetrainPublishesBitIdenticalToFreshSystem pins the publish
// semantics: after retraining, the live system must answer exactly like a
// fresh System trained the same way — the snapshot copy adds nothing and
// loses nothing.
func TestRetrainPublishesBitIdenticalToFreshSystem(t *testing.T) {
	sysA, trainA := smallSystem(t, 11)
	sysB, trainB := smallSystem(t, 11)
	// sysA goes through an extra earlier training round whose snapshot the
	// retrain must fully replace; sysB trains once from scratch.
	sysA.TrainCentral(trainA, 1, 20)
	sysA.TrainCentral(trainA, 2, 40)
	sysB.TrainCentral(trainB, 2, 40)

	probeA := sysA.BuildGraph(fexiot.GenerateHome("safety", 16, 5))
	probeB := sysB.BuildGraph(fexiot.GenerateHome("safety", 16, 5))
	va, err := sysA.Detect(probeA)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := sysB.Detect(probeB)
	if err != nil {
		t.Fatal(err)
	}
	if va != vb {
		t.Fatalf("served verdict %+v != fresh-system verdict %+v", va, vb)
	}
}

// TestServeEndToEnd boots the full fexiot.Serve stack: HTTP detects
// answer, a retrain republishes, and the snapshot sequence advances
// without a dropped request.
func TestServeEndToEnd(t *testing.T) {
	sys, train := smallSystem(t, 13)
	sys.TrainCentral(train, 1, 40)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := fexiot.Serve(ctx, sys, fexiot.ServeOptions{
		Addr:           "127.0.0.1:0",
		Workers:        2,
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	home := fexiot.GenerateHome("safety", 14, 3)
	body, err := json.Marshal(map[string]any{"rules": home})
	if err != nil {
		t.Fatal(err)
	}
	detect := func() (float64, uint64) {
		resp, err := http.Post(base+"/v1/detect", "application/json",
			strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect status %d", resp.StatusCode)
		}
		var out struct {
			Score       float64 `json:"score"`
			SnapshotSeq uint64  `json:"snapshot_seq"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Score, out.SnapshotSeq
	}

	_, seq1 := detect()
	if seq1 != 1 {
		t.Fatalf("first snapshot seq = %d, want 1", seq1)
	}
	// Retraining publishes straight into the running server.
	sys.TrainCentral(train, 1, 40)
	_, seq2 := detect()
	if seq2 != 2 {
		t.Fatalf("post-retrain snapshot seq = %d, want 2", seq2)
	}

	// The obs routes ride on the same mux.
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status %d", resp.StatusCode)
	}
}
