package autodiff

import (
	"math"
	"sort"

	"fexiot/internal/mat"
)

// Binder binds a ParamSet onto a tape for one forward pass, memoising the
// parameter nodes so each matrix appears once per pass (gradients then
// accumulate correctly when a parameter is used multiple times).
type Binder struct {
	tape   *Tape
	params *ParamSet
	nodes  map[string]*Node
}

// Bind creates a Binder for params on tape.
func Bind(t *Tape, params *ParamSet) *Binder {
	return &Binder{tape: t, params: params, nodes: map[string]*Node{}}
}

// Rebind points the binder at a (usually freshly Reset) tape for the next
// pass, forgetting the previous pass's parameter nodes but keeping the map
// storage. Training loops call Reset+Rebind per pass instead of allocating
// a new tape and binder per pass.
func (b *Binder) Rebind(t *Tape, params *ParamSet) {
	b.tape = t
	b.params = params
	clear(b.nodes)
}

// EachGrad calls fn for every bound parameter that accumulated a gradient
// this pass. Unlike Grads it allocates nothing; the *mat.Dense handed to fn
// is tape-owned and dies at the next Reset, so fn must consume it (copy or
// accumulate), not retain it.
func (b *Binder) EachGrad(fn func(name string, g *mat.Dense)) {
	for name, n := range b.nodes {
		if n.Grad != nil {
			fn(name, n.Grad)
		}
	}
}

// Node returns the tape node for the named parameter, creating it on first
// use in this pass.
func (b *Binder) Node(name string) *Node {
	if n, ok := b.nodes[name]; ok {
		return n
	}
	n := b.tape.Param(b.params.Get(name))
	b.nodes[name] = n
	return n
}

// Grads collects the gradients accumulated on the bound parameter nodes.
func (b *Binder) Grads() map[string]*mat.Dense {
	out := make(map[string]*mat.Dense, len(b.nodes))
	for name, n := range b.nodes {
		if n.Grad != nil {
			out[name] = n.Grad
		}
	}
	return out
}

// AccumulateGrads merges this pass's gradients into acc (allocating entries
// as needed), used when a batch is composed of several per-graph passes.
func (b *Binder) AccumulateGrads(acc map[string]*mat.Dense) {
	for name, n := range b.nodes {
		if n.Grad == nil {
			continue
		}
		if g, ok := acc[name]; ok {
			g.AddScaled(n.Grad, 1)
		} else {
			acc[name] = n.Grad.Clone()
		}
	}
}

// ScaleGrads multiplies every gradient in grads by s.
func ScaleGrads(grads map[string]*mat.Dense, s float64) {
	for _, g := range grads {
		g.Scale(s)
	}
}

// ClipGrads rescales gradients so the global norm does not exceed maxNorm.
// It returns the pre-clip global norm, which callers feed into training
// telemetry (a clipped step is one where the return value exceeds maxNorm).
//
// The squared-norm sum runs over sorted parameter names: summing in map
// iteration order made the clip factor — and therefore the trained weights
// — differ in the last few ulps between otherwise identical runs, which
// breaks the serving layer's bit-identical republish guarantee.
func ClipGrads(grads map[string]*mat.Dense, maxNorm float64) float64 {
	names := make([]string, 0, len(grads))
	for name := range grads {
		names = append(names, name)
	}
	sort.Strings(names)
	var total float64
	for _, name := range names {
		for _, x := range grads[name].Data() {
			total += x * x
		}
	}
	if total <= 0 {
		return 0
	}
	norm := math.Sqrt(total)
	if norm > maxNorm {
		ScaleGrads(grads, maxNorm/norm)
	}
	return norm
}
