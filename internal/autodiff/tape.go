// Package autodiff implements a reverse-mode automatic differentiation tape
// over dense matrices. It is the training runtime for every neural model in
// the repository — the MLP correlation classifier, the DeepLog LSTM baseline
// and the GCN/GIN/MAGNN graph networks — standing in for the PyTorch/DGL
// stack the paper uses.
//
// The tape is rebuilt for every forward pass (define-by-run). Backward walks
// the nodes in reverse insertion order, which is a valid topological order
// because operations can only consume previously created nodes.
//
// # Memory model
//
// The tape owns a mat.Arena and recycles aggressively: Reset returns every
// node struct to a free list and every tape-allocated Value/Grad backing
// array to the arena, so a training step after warm-up runs at ~zero
// steady-state allocations. The ownership rules (DESIGN.md §4.13):
//
//   - Param/Constant values are caller-owned; the tape never recycles them.
//   - Every other node's Value and Grad die at Reset. Any reference held
//     across Reset — including a Grads() map or a Node pointer — is invalid.
//   - To keep a result past Reset, call Detach (zero-copy; pins the backing
//     array so Reset skips it) or CloneOut (independent copy) first.
//   - Gradients must be consumed (opt.Step, AccumulateGrads) before Reset.
//
// Backward dispatch is closure-free: each op stores a package-level back
// function and keeps its state (parents, scalars, index slices) in Node
// fields, because capturing closures allocate on every op while plain
// function values do not.
package autodiff

import (
	"fmt"
	"math"

	"fexiot/internal/mat"
)

// Node is a matrix-valued value on the tape together with its gradient.
type Node struct {
	Value *mat.Dense
	Grad  *mat.Dense

	tape     *Tape
	back     func(*Node)
	a, b     *Node   // the common one- and two-parent cases, inline
	parents  []*Node // variadic parents (ConcatCols); capacity reused
	needs    bool
	external bool // Value is caller-owned (Param/Constant): never recycled
	escaped  bool // Detach pinned the Value backing: survives Reset
	hasAux   bool // ahdr holds a leased auxiliary buffer (released on Reset)

	// Per-op state read by the static back functions.
	scalar float64    // Scale factor, LeakyReLU slope, AddConst c, 1/n, wsum…
	ints   []int      // node-owned scratch (MaxRows argmax); capacity reused
	fls    []float64  // node-owned scratch (BCE sigmoids); capacity reused
	idx    []int      // caller-owned indices or labels (Gather/Scatter/SCE)
	w1, w2 []float64  // caller-owned weights/targets (SCE, BCE)
	auxRef *mat.Dense // caller-owned matrix (Dropout mask, MSE target)
	sparse *mat.CSR   // SpMM operator

	// Inline headers backing Value, Grad and the auxiliary matrix when they
	// are tape-owned; Remake retargets them at arena leases without
	// allocating.
	vhdr, ghdr, ahdr mat.Dense
}

// Dims returns the node's value dimensions.
func (n *Node) Dims() (int, int) { return n.Value.Dims() }

// Detach pins the node's value so it survives Reset and returns a header
// for it. The backing array is shared (zero-copy) but permanently escapes
// the arena: the tape will never recycle or overwrite it. For caller-owned
// leaves (Param/Constant) the value is returned as is.
func (n *Node) Detach() *mat.Dense {
	if n.external {
		return n.Value
	}
	n.escaped = true
	r, c := n.Value.Dims()
	// A fresh header, not &n.vhdr: the node struct itself is recycled at
	// Reset and its inline header will be retargeted at other memory.
	return mat.NewDenseData(r, c, n.Value.Data())
}

// CloneOut returns an independent copy of the node's value, safe to hold
// across Reset without pinning arena memory.
func (n *Node) CloneOut() *mat.Dense { return n.Value.Clone() }

// Tape records operations for reverse-mode differentiation and owns the
// recycled memory behind them.
type Tape struct {
	nodes []*Node
	free  []*Node // recycled node structs

	arena   *mat.Arena
	scratch mat.Dense // backward temporary header (single-threaded use)

	// csrT caches sparse-operator transposes across passes: graph
	// adjacencies recur every epoch, so the backward of SpMM hits this map
	// instead of rebuilding the transpose. Bounded; cleared when full (the
	// MAGNN path builds throwaway operators that must not pile up).
	csrT map[*mat.CSR]*mat.CSR

	resets int
}

// arenaTrimEvery is how many Resets pass between arena Trim epochs.
const arenaTrimEvery = 1024

// csrCacheMax bounds the transpose cache.
const csrCacheMax = 512

// NewTape creates an empty tape with its own arena.
func NewTape() *Tape {
	return &Tape{arena: mat.NewArena(0)}
}

// Reset recycles every recorded node: tape-owned Value/Grad backing arrays
// return to the arena (parameters, constants and Detach-pinned values are
// skipped) and the node structs go to the free list for the next pass.
// Everything obtained from the tape — Node pointers, Grads() maps — is
// invalid afterwards; see the package doc for the ownership rules.
func (t *Tape) Reset() {
	for _, n := range t.nodes {
		if n.Grad != nil {
			t.arena.Release(n.Grad.Data())
			n.Grad = nil
		}
		if n.hasAux {
			t.arena.Release(n.ahdr.Data())
			n.hasAux = false
		}
		if !n.external && !n.escaped {
			t.arena.Release(n.Value.Data())
		}
		n.Value = nil
		n.external, n.escaped, n.needs = false, false, false
		n.back = nil
		n.a, n.b = nil, nil
		n.parents = n.parents[:0]
		n.scalar = 0
		n.idx, n.w1, n.w2 = nil, nil, nil
		n.auxRef = nil
		n.sparse = nil
		t.free = append(t.free, n)
	}
	t.nodes = t.nodes[:0]
	t.resets++
	if t.resets%arenaTrimEvery == 0 {
		t.arena.Trim()
	}
}

// ArenaStats exposes the tape arena's counters (tests and telemetry).
func (t *Tape) ArenaStats() mat.ArenaStats { return t.arena.Stats() }

// Len reports the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

// alloc takes a node struct from the free list or the heap.
func (t *Tape) alloc() *Node {
	if k := len(t.free); k > 0 {
		n := t.free[k-1]
		t.free = t.free[:k-1]
		return n
	}
	return &Node{}
}

// leaf registers a caller-owned value (parameter or constant).
func (t *Tape) leaf(v *mat.Dense, needs bool) *Node {
	n := t.alloc()
	n.tape = t
	n.needs = needs
	n.external = true
	n.Value = v
	t.nodes = append(t.nodes, n)
	return n
}

// op registers an operation node whose r×c value is a zeroed arena lease
// (the same semantics mat.NewDense gave the pre-arena tape).
func (t *Tape) op(r, c int, needs bool, back func(*Node)) *Node {
	n := t.alloc()
	n.tape = t
	n.needs = needs
	n.back = back
	n.vhdr.Remake(r, c, t.arena.Lease(r*c))
	n.Value = &n.vhdr
	t.nodes = append(t.nodes, n)
	return n
}

// anyNeeds reports whether any parent participates in gradient computation.
func anyNeeds(parents ...*Node) bool {
	for _, p := range parents {
		if p != nil && p.needs {
			return true
		}
	}
	return false
}

// Param registers a trainable parameter. Its gradient is allocated lazily on
// the first backward pass that touches it.
func (t *Tape) Param(v *mat.Dense) *Node {
	return t.leaf(v, true)
}

// Constant registers a value that requires no gradient.
func (t *Tape) Constant(v *mat.Dense) *Node {
	return t.leaf(v, false)
}

// ensureGrad leases n.Grad (zeroed) if missing. Reset returns the buffer to
// the arena, so across steps the same backing arrays cycle between the grad
// headers instead of being reallocated.
func ensureGrad(n *Node) {
	if n.Grad == nil {
		r, c := n.Value.Dims()
		n.ghdr.Remake(r, c, n.tape.arena.Lease(r*c))
		n.Grad = &n.ghdr
	}
}

// Backward seeds d(loss)/d(loss)=1 and propagates gradients to all
// contributing nodes. loss must be 1×1.
func (t *Tape) Backward(loss *Node) {
	r, c := loss.Value.Dims()
	if r != 1 || c != 1 {
		panic(fmt.Sprintf("autodiff: Backward on %dx%d node; want scalar", r, c))
	}
	ensureGrad(loss)
	loss.Grad.Set(0, 0, 1)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.needs && n.Grad != nil {
			n.back(n)
		}
	}
}

// csrTranspose returns the cached transpose of s, building it on first use.
func (t *Tape) csrTranspose(s *mat.CSR) *mat.CSR {
	if t.csrT == nil {
		t.csrT = make(map[*mat.CSR]*mat.CSR)
	}
	if st, ok := t.csrT[s]; ok {
		return st
	}
	if len(t.csrT) >= csrCacheMax {
		clear(t.csrT)
	}
	st := s.T()
	t.csrT[s] = st
	return st
}

// --- Core operations -------------------------------------------------------

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	out := t.op(a.Value.Rows(), b.Value.Cols(), anyNeeds(a, b), backMatMul)
	out.a, out.b = a, b
	mat.MulTo(out.Value, a.Value, b.Value)
	return out
}

func backMatMul(out *Node) {
	a, b, t := out.a, out.b, out.tape
	if a.needs {
		ensureGrad(a)
		// dA += dOut · Bᵀ
		r, c := a.Value.Dims()
		buf := t.arena.Lease(r * c)
		t.scratch.Remake(r, c, buf)
		mat.MulBTTo(&t.scratch, out.Grad, b.Value)
		a.Grad.AddScaled(&t.scratch, 1)
		t.arena.Release(buf)
	}
	if b.needs {
		ensureGrad(b)
		// dB += Aᵀ · dOut
		r, c := b.Value.Dims()
		buf := t.arena.Lease(r * c)
		t.scratch.Remake(r, c, buf)
		mat.MulTTo(&t.scratch, a.Value, out.Grad)
		b.Grad.AddScaled(&t.scratch, 1)
		t.arena.Release(buf)
	}
}

// SpMM returns s·b for a constant sparse operator s (e.g. normalised graph
// adjacency). No gradient flows into s.
func (t *Tape) SpMM(s *mat.CSR, b *Node) *Node {
	r, _ := s.Dims()
	_, c := b.Value.Dims()
	out := t.op(r, c, b.needs, backSpMM)
	out.a = b
	out.sparse = s
	mat.SpMMTo(out.Value, s, b.Value)
	return out
}

func backSpMM(out *Node) {
	b, t := out.a, out.tape
	if !b.needs {
		return
	}
	ensureGrad(b)
	st := t.csrTranspose(out.sparse)
	r, c := b.Value.Dims()
	buf := t.arena.Lease(r * c)
	t.scratch.Remake(r, c, buf)
	mat.SpMMTo(&t.scratch, st, out.Grad)
	b.Grad.AddScaled(&t.scratch, 1)
	t.arena.Release(buf)
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	r, c := a.Value.Dims()
	out := t.op(r, c, anyNeeds(a, b), backAdd)
	out.a, out.b = a, b
	od, ad, bd := out.Value.Data(), a.Value.Data(), b.Value.Data()
	for i := range od {
		od[i] = ad[i] + bd[i]
	}
	return out
}

func backAdd(out *Node) {
	if out.a.needs {
		ensureGrad(out.a)
		out.a.Grad.AddScaled(out.Grad, 1)
	}
	if out.b.needs {
		ensureGrad(out.b)
		out.b.Grad.AddScaled(out.Grad, 1)
	}
}

// Sub returns a−b.
func (t *Tape) Sub(a, b *Node) *Node {
	r, c := a.Value.Dims()
	out := t.op(r, c, anyNeeds(a, b), backSub)
	out.a, out.b = a, b
	od, ad, bd := out.Value.Data(), a.Value.Data(), b.Value.Data()
	for i := range od {
		od[i] = ad[i] - bd[i]
	}
	return out
}

func backSub(out *Node) {
	if out.a.needs {
		ensureGrad(out.a)
		out.a.Grad.AddScaled(out.Grad, 1)
	}
	if out.b.needs {
		ensureGrad(out.b)
		out.b.Grad.AddScaled(out.Grad, -1)
	}
}

// AddRowBroadcast adds a 1×c bias row to every row of a (n×c).
func (t *Tape) AddRowBroadcast(a, bias *Node) *Node {
	n, c := a.Value.Dims()
	br, bc := bias.Value.Dims()
	if br != 1 || bc != c {
		panic(fmt.Sprintf("autodiff: AddRowBroadcast bias %dx%d for %dx%d", br, bc, n, c))
	}
	out := t.op(n, c, anyNeeds(a, bias), backAddRowBroadcast)
	out.a, out.b = a, bias
	copy(out.Value.Data(), a.Value.Data())
	for i := 0; i < n; i++ {
		mat.Axpy(out.Value.Row(i), bias.Value.Row(0), 1)
	}
	return out
}

func backAddRowBroadcast(out *Node) {
	a, bias := out.a, out.b
	n, _ := a.Value.Dims()
	if a.needs {
		ensureGrad(a)
		a.Grad.AddScaled(out.Grad, 1)
	}
	if bias.needs {
		ensureGrad(bias)
		g := bias.Grad.Row(0)
		for i := 0; i < n; i++ {
			mat.Axpy(g, out.Grad.Row(i), 1)
		}
	}
}

// Hadamard returns the element-wise product a⊙b.
func (t *Tape) Hadamard(a, b *Node) *Node {
	r, c := a.Value.Dims()
	out := t.op(r, c, anyNeeds(a, b), backHadamard)
	out.a, out.b = a, b
	od, ad, bd := out.Value.Data(), a.Value.Data(), b.Value.Data()
	for i := range od {
		od[i] = ad[i] * bd[i]
	}
	return out
}

func backHadamard(out *Node) {
	a, b := out.a, out.b
	og := out.Grad.Data()
	if a.needs {
		ensureGrad(a)
		ad, bv := a.Grad.Data(), b.Value.Data()
		for i := range ad {
			ad[i] += og[i] * bv[i]
		}
	}
	if b.needs {
		ensureGrad(b)
		bd, av := b.Grad.Data(), a.Value.Data()
		for i := range bd {
			bd[i] += og[i] * av[i]
		}
	}
}

// Scale returns s*a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	r, c := a.Value.Dims()
	out := t.op(r, c, a.needs, backScale)
	out.a = a
	out.scalar = s
	od, ad := out.Value.Data(), a.Value.Data()
	for i := range od {
		od[i] = ad[i] * s
	}
	return out
}

func backScale(out *Node) {
	if out.a.needs {
		ensureGrad(out.a)
		out.a.Grad.AddScaled(out.Grad, out.scalar)
	}
}

// unary applies a static element-wise f with a static back function.
func (t *Tape) unary(a *Node, f func(float64) float64, back func(*Node)) *Node {
	r, c := a.Value.Dims()
	out := t.op(r, c, a.needs, back)
	out.a = a
	copy(out.Value.Data(), a.Value.Data())
	out.Value.Apply(f)
	return out
}

// ReLU applies max(0,x) element-wise.
func (t *Tape) ReLU(a *Node) *Node { return t.unary(a, reluF, backReLU) }

func reluF(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

func backReLU(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	ad, vd, gd := a.Grad.Data(), a.Value.Data(), out.Grad.Data()
	for i := range ad {
		d := 0.0
		if vd[i] > 0 {
			d = 1
		}
		ad[i] += gd[i] * d
	}
}

// LeakyReLU applies x>0 ? x : slope*x element-wise.
func (t *Tape) LeakyReLU(a *Node, slope float64) *Node {
	r, c := a.Value.Dims()
	out := t.op(r, c, a.needs, backLeakyReLU)
	out.a = a
	out.scalar = slope
	od, ad := out.Value.Data(), a.Value.Data()
	for i, x := range ad {
		if x > 0 {
			od[i] = x
		} else {
			od[i] = slope * x
		}
	}
	return out
}

func backLeakyReLU(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	slope := out.scalar
	ad, vd, gd := a.Grad.Data(), a.Value.Data(), out.Grad.Data()
	for i := range ad {
		d := slope
		if vd[i] > 0 {
			d = 1
		}
		ad[i] += gd[i] * d
	}
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Node) *Node { return t.unary(a, mat.Sigmoid, backSigmoid) }

func backSigmoid(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	ad, gd, od := a.Grad.Data(), out.Grad.Data(), out.Value.Data()
	for i := range ad {
		ad[i] += gd[i] * (od[i] * (1 - od[i]))
	}
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Node) *Node { return t.unary(a, math.Tanh, backTanh) }

func backTanh(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	ad, gd, od := a.Grad.Data(), out.Grad.Data(), out.Value.Data()
	for i := range ad {
		ad[i] += gd[i] * (1 - od[i]*od[i])
	}
}

// MeanRows returns the 1×c column-mean of an n×c node (graph mean readout).
func (t *Tape) MeanRows(a *Node) *Node {
	n, c := a.Value.Dims()
	out := t.op(1, c, a.needs, backMeanRows)
	out.a = a
	inv := 1 / float64(n)
	out.scalar = inv
	for i := 0; i < n; i++ {
		mat.Axpy(out.Value.Row(0), a.Value.Row(i), inv)
	}
	return out
}

func backMeanRows(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	n, _ := a.Value.Dims()
	g := out.Grad.Row(0)
	inv := out.scalar
	for i := 0; i < n; i++ {
		mat.Axpy(a.Grad.Row(i), g, inv)
	}
}

// SumRows returns the 1×c column-sum of an n×c node (graph sum readout, as
// used by GIN).
func (t *Tape) SumRows(a *Node) *Node {
	n, c := a.Value.Dims()
	out := t.op(1, c, a.needs, backSumRows)
	out.a = a
	for i := 0; i < n; i++ {
		mat.Axpy(out.Value.Row(0), a.Value.Row(i), 1)
	}
	return out
}

func backSumRows(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	n, _ := a.Value.Dims()
	g := out.Grad.Row(0)
	for i := 0; i < n; i++ {
		mat.Axpy(a.Grad.Row(i), g, 1)
	}
}

// MaxRows returns the 1×c column-wise maximum of an n×c node; the gradient
// routes to the arg-max row per column. Max readout preserves "a node with
// this pattern exists" signals that mean pooling dilutes on large graphs.
func (t *Tape) MaxRows(a *Node) *Node {
	n, c := a.Value.Dims()
	out := t.op(1, c, a.needs, backMaxRows)
	out.a = a
	if cap(out.ints) < c {
		out.ints = make([]int, c)
	}
	out.ints = out.ints[:c]
	for j := 0; j < c; j++ {
		best := a.Value.At(0, j)
		bi := 0
		for i := 1; i < n; i++ {
			if v := a.Value.At(i, j); v > best {
				best, bi = v, i
			}
		}
		out.Value.Set(0, j, best)
		out.ints[j] = bi
	}
	return out
}

func backMaxRows(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	for j, bi := range out.ints {
		a.Grad.Add(bi, j, out.Grad.At(0, j))
	}
}

// ConcatCols concatenates nodes horizontally (same row count).
func (t *Tape) ConcatCols(parts ...*Node) *Node {
	rows, _ := parts[0].Value.Dims()
	total := 0
	for _, p := range parts {
		r, c := p.Value.Dims()
		if r != rows {
			panic("autodiff: ConcatCols row mismatch")
		}
		total += c
	}
	out := t.op(rows, total, anyNeeds(parts...), backConcatCols)
	out.parents = append(out.parents[:0], parts...)
	off := 0
	for _, p := range parts {
		_, c := p.Value.Dims()
		for i := 0; i < rows; i++ {
			copy(out.Value.Row(i)[off:off+c], p.Value.Row(i))
		}
		off += c
	}
	return out
}

func backConcatCols(out *Node) {
	rows, _ := out.Value.Dims()
	off := 0
	for _, p := range out.parents {
		_, c := p.Value.Dims()
		if p.needs {
			ensureGrad(p)
			for i := 0; i < rows; i++ {
				mat.Axpy(p.Grad.Row(i), out.Grad.Row(i)[off:off+c], 1)
			}
		}
		off += c
	}
}

// GatherRows selects rows idx from a into a new len(idx)×c node. idx is
// caller-owned and must stay valid until Reset.
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	_, c := a.Value.Dims()
	out := t.op(len(idx), c, a.needs, backGatherRows)
	out.a = a
	out.idx = idx
	for i, r := range idx {
		copy(out.Value.Row(i), a.Value.Row(r))
	}
	return out
}

func backGatherRows(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	for i, r := range out.idx {
		mat.Axpy(a.Grad.Row(r), out.Grad.Row(i), 1)
	}
}

// ScatterRows builds an n×c node whose rows at idx come from a (len(idx)×c)
// and whose other rows are zero — the inverse of GatherRows, used to merge
// per-type projections in heterogeneous GNNs. idx is caller-owned and must
// stay valid until Reset.
func (t *Tape) ScatterRows(a *Node, idx []int, n int) *Node {
	ar, c := a.Value.Dims()
	if ar != len(idx) {
		panic(fmt.Sprintf("autodiff: ScatterRows %d rows with %d indices", ar, len(idx)))
	}
	out := t.op(n, c, a.needs, backScatterRows)
	out.a = a
	out.idx = idx
	for i, r := range idx {
		copy(out.Value.Row(r), a.Value.Row(i))
	}
	return out
}

func backScatterRows(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	for i, r := range out.idx {
		mat.Axpy(a.Grad.Row(i), out.Grad.Row(r), 1)
	}
}

// Dropout zeroes elements with probability p during training, scaling the
// survivors by 1/(1-p). mask is sampled by the caller for determinism and
// must stay valid until Reset.
func (t *Tape) Dropout(a *Node, mask *mat.Dense, p float64) *Node {
	if p <= 0 {
		return a
	}
	r, c := a.Value.Dims()
	out := t.op(r, c, a.needs, backDropout)
	out.a = a
	out.auxRef = mask
	out.scalar = 1 / (1 - p)
	scale := out.scalar
	od, ad, md := out.Value.Data(), a.Value.Data(), mask.Data()
	for i := range od {
		od[i] = ad[i] * md[i] * scale
	}
	return out
}

func backDropout(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	scale := out.scalar
	ad, gd, md := a.Grad.Data(), out.Grad.Data(), out.auxRef.Data()
	for i := range ad {
		ad[i] += gd[i] * md[i] * scale
	}
}
