package mat

import "fmt"

// CSR is a compressed sparse row matrix. It is used for normalised graph
// adjacency operators (Â in GCN, the aggregation operator in GIN/MAGNN),
// which stay fixed during training so no gradient flows through them.
type CSR struct {
	rows, cols int
	indptr     []int
	indices    []int
	vals       []float64
}

// NewCSR builds a CSR matrix from coordinate triplets. Duplicate coordinates
// are summed. Entries must have valid indices.
func NewCSR(rows, cols int, is, js []int, vs []float64) *CSR {
	if len(is) != len(js) || len(is) != len(vs) {
		panic("mat: NewCSR triplet length mismatch")
	}
	counts := make([]int, rows+1)
	for _, i := range is {
		if i < 0 || i >= rows {
			panic(fmt.Sprintf("mat: NewCSR row %d out of range %d", i, rows))
		}
		counts[i+1]++
	}
	for i := 0; i < rows; i++ {
		counts[i+1] += counts[i]
	}
	indptr := counts
	indices := make([]int, len(is))
	vals := make([]float64, len(is))
	fill := make([]int, rows)
	for k, i := range is {
		j := js[k]
		if j < 0 || j >= cols {
			panic(fmt.Sprintf("mat: NewCSR col %d out of range %d", j, cols))
		}
		pos := indptr[i] + fill[i]
		indices[pos] = j
		vals[pos] = vs[k]
		fill[i]++
	}
	m := &CSR{rows: rows, cols: cols, indptr: indptr, indices: indices, vals: vals}
	m.sumDuplicates()
	return m
}

// sumDuplicates merges repeated (i,j) entries within each row.
func (m *CSR) sumDuplicates() {
	newIndptr := make([]int, m.rows+1)
	newIndices := m.indices[:0]
	newVals := m.vals[:0]
	pos := 0
	for i := 0; i < m.rows; i++ {
		start, end := m.indptr[i], m.indptr[i+1]
		// Rows are short (graph degree ≤ 50); simple insertion merge.
		type ent struct {
			j int
			v float64
		}
		var row []ent
		for k := start; k < end; k++ {
			j, v := m.indices[k], m.vals[k]
			merged := false
			for t := range row {
				if row[t].j == j {
					row[t].v += v
					merged = true
					break
				}
			}
			if !merged {
				row = append(row, ent{j, v})
			}
		}
		for _, e := range row {
			newIndices = append(newIndices, e.j)
			newVals = append(newVals, e.v)
			pos++
		}
		newIndptr[i+1] = pos
	}
	m.indptr = newIndptr
	m.indices = newIndices
	m.vals = newVals
}

// Dims returns the matrix dimensions.
func (m *CSR) Dims() (int, int) { return m.rows, m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// RowNZ iterates the non-zeros of row i.
func (m *CSR) RowNZ(i int, fn func(j int, v float64)) {
	for k := m.indptr[i]; k < m.indptr[i+1]; k++ {
		fn(m.indices[k], m.vals[k])
	}
}

// T returns the transpose as a new CSR matrix.
func (m *CSR) T() *CSR {
	is := make([]int, 0, m.NNZ())
	js := make([]int, 0, m.NNZ())
	vs := make([]float64, 0, m.NNZ())
	for i := 0; i < m.rows; i++ {
		m.RowNZ(i, func(j int, v float64) {
			is = append(is, j)
			js = append(js, i)
			vs = append(vs, v)
		})
	}
	return NewCSR(m.cols, m.rows, is, js, vs)
}

// SpMMTo computes dst = S·B where S is sparse and B, dst are dense.
func SpMMTo(dst *Dense, s *CSR, b *Dense) {
	if s.cols != b.rows {
		panic(fmt.Sprintf("mat: SpMM %dx%d by %dx%d", s.rows, s.cols, b.rows, b.cols))
	}
	if dst.rows != s.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: SpMMTo dst %dx%d want %dx%d", dst.rows, dst.cols, s.rows, b.cols))
	}
	dst.Zero()
	for i := 0; i < s.rows; i++ {
		di := dst.Row(i)
		for k := s.indptr[i]; k < s.indptr[i+1]; k++ {
			j, v := s.indices[k], s.vals[k]
			bj := b.Row(j)
			for c, bv := range bj {
				di[c] += v * bv
			}
		}
	}
}

// SpMM computes S·B into a new dense matrix.
func SpMM(s *CSR, b *Dense) *Dense {
	out := NewDense(s.rows, b.cols)
	SpMMTo(out, s, b)
	return out
}

// ToDense expands the sparse matrix into dense form (for tests).
func (m *CSR) ToDense() *Dense {
	out := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		m.RowNZ(i, func(j int, v float64) { out.Add(i, j, v) })
	}
	return out
}
