package drift

import (
	"math"
	"testing"
	"testing/quick"

	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// twoClasses builds embeddings at centres (0,0) and (10,10).
func twoClasses(n int, spread float64, seed int64) ([][]float64, []int) {
	r := rng.New(seed)
	var x [][]float64
	var y []int
	for i := 0; i < n; i++ {
		c := i % 2
		cx := 0.0
		if c == 1 {
			cx = 10
		}
		x = append(x, []float64{cx + r.NormFloat64()*spread, cx + r.NormFloat64()*spread})
		y = append(y, c)
	}
	return x, y
}

func TestDetectorFlagsFarSamples(t *testing.T) {
	x, y := twoClasses(200, 0.5, 1)
	d := Fit(x, y)
	if d.IsDrifting([]float64{0.2, -0.1}) {
		t.Fatal("in-distribution sample flagged")
	}
	if d.IsDrifting([]float64{10.3, 9.8}) {
		t.Fatal("in-distribution class-1 sample flagged")
	}
	if !d.IsDrifting([]float64{100, -100}) {
		t.Fatal("far outlier not flagged")
	}
	// Points between the classes but far from both are drifting.
	if !d.IsDrifting([]float64{5, -40}) {
		t.Fatal("off-manifold midpoint not flagged")
	}
}

func TestDetectorAnomalyScoresOrdered(t *testing.T) {
	x, y := twoClasses(200, 0.5, 3)
	d := Fit(x, y)
	near := d.Anomaly([]float64{0.1, 0.1})
	mid := d.Anomaly([]float64{3, 3})
	far := d.Anomaly([]float64{50, 50})
	if !(near < mid && mid < far) {
		t.Fatalf("anomaly not monotone with distance: %v %v %v", near, mid, far)
	}
}

func TestMADPropertiesViaDetector(t *testing.T) {
	// Scale equivariance: scaling embeddings scales distances but the MAD
	// normalisation keeps anomaly scores invariant.
	x, y := twoClasses(100, 0.7, 5)
	d1 := Fit(x, y)
	scaled := make([][]float64, len(x))
	for i, v := range x {
		scaled[i] = []float64{v[0] * 7, v[1] * 7}
	}
	d2 := Fit(scaled, y)
	a1 := d1.Anomaly([]float64{2, 2})
	a2 := d2.Anomaly([]float64{14, 14})
	if math.Abs(a1-a2) > 1e-6 {
		t.Fatalf("MAD scores not scale-equivariant: %v vs %v", a1, a2)
	}
}

func TestFilterDrifting(t *testing.T) {
	x, y := twoClasses(100, 0.5, 7)
	d := Fit(x, y)
	test := append([][]float64{}, x[:10]...)
	test = append(test, []float64{99, 99}, []float64{-50, 50})
	in, out := d.FilterDrifting(test)
	// The MAD tail flags a small fraction of genuine in-distribution
	// samples (the paper manually inspects its drifting candidates for the
	// same reason); the two planted outliers must always be flagged.
	if len(in) < 7 {
		t.Fatalf("too many false drift flags: in=%d out=%d", len(in), len(out))
	}
	flagged := map[int]bool{}
	for _, i := range out {
		flagged[i] = true
	}
	if !flagged[10] || !flagged[11] {
		t.Fatalf("planted outliers not flagged: %v", out)
	}
}

func TestDetectorDegenerateClass(t *testing.T) {
	// All points identical → MAD floor keeps scores finite.
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 0, 0}
	d := Fit(x, y)
	if math.IsNaN(d.Anomaly([]float64{1, 1})) {
		t.Fatal("NaN anomaly on degenerate class")
	}
	if !d.IsDrifting([]float64{5, 5}) {
		t.Fatal("clear outlier must drift off a point class")
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	x, y := twoClasses(200, 0.5, 9)
	km := NewKMeans(2, 3)
	km.Fit(x)
	// Cluster assignment must align with true classes (up to relabelling).
	agree := 0
	for i := range x {
		if km.Assigned[i] == y[i] {
			agree++
		}
	}
	frac := float64(agree) / float64(len(x))
	if frac < 0.95 && frac > 0.05 {
		t.Fatalf("clusters misaligned with classes: agreement %v", frac)
	}
	if km.Inertia <= 0 {
		t.Fatal("inertia should be positive for spread data")
	}
	// Predict maps points to their nearest centre.
	c0 := km.Predict([]float64{0, 0})
	c1 := km.Predict([]float64{10, 10})
	if c0 == c1 {
		t.Fatal("distinct blobs predicted to one cluster")
	}
}

func TestKMeansDeterminism(t *testing.T) {
	x, _ := twoClasses(80, 0.6, 11)
	a := NewKMeans(3, 5)
	a.Fit(x)
	b := NewKMeans(3, 5)
	b.Fit(x)
	for i := range a.Assigned {
		if a.Assigned[i] != b.Assigned[i] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

func TestKMeansMoreClustersLowerInertia(t *testing.T) {
	x, _ := twoClasses(150, 1.0, 13)
	k2 := NewKMeans(2, 1)
	k2.Fit(x)
	k6 := NewKMeans(6, 1)
	k6.Fit(x)
	if k6.Inertia >= k2.Inertia {
		t.Fatalf("k=6 inertia %v should undercut k=2 inertia %v",
			k6.Inertia, k2.Inertia)
	}
}

func TestTSNEPreservesClusterStructure(t *testing.T) {
	x, y := twoClasses(120, 0.4, 17)
	ts := NewTSNE()
	ts.Iters = 150
	emb := ts.Embed(x)
	if len(emb) != len(x) {
		t.Fatalf("embedding count %d", len(emb))
	}
	// Mean within-class distance must be far below cross-class distance.
	var within, cross float64
	var nw, nc int
	for i := 0; i < len(emb); i++ {
		for j := i + 1; j < len(emb); j++ {
			d := mat.Dist2(emb[i], emb[j])
			if y[i] == y[j] {
				within += d
				nw++
			} else {
				cross += d
				nc++
			}
		}
	}
	within /= float64(nw)
	cross /= float64(nc)
	if cross < 2*within {
		t.Fatalf("t-SNE lost cluster structure: within %v cross %v", within, cross)
	}
	for _, p := range emb {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
			t.Fatal("NaN in t-SNE output")
		}
	}
}

func TestTSNEDegenerateInputs(t *testing.T) {
	ts := NewTSNE()
	if out := ts.Embed(nil); out != nil {
		t.Fatal("empty input should return nil")
	}
	if out := ts.Embed([][]float64{{1, 2, 3}}); len(out) != 1 {
		t.Fatal("single point should embed")
	}
}

// TestTSNEDuplicatePointsFinite is the zero-variance regression test: with
// every input row identical the perplexity search has no distance scale, so
// the affinities must fall back to the uniform distribution and the
// embedding stay finite — also when only part of the data is duplicated.
func TestTSNEDuplicatePointsFinite(t *testing.T) {
	ts := NewTSNE()
	ts.Iters = 50
	allSame := make([][]float64, 12)
	for i := range allSame {
		allSame[i] = []float64{1.5, -2, 0.25}
	}
	for name, x := range map[string][][]float64{
		"all-duplicates": allSame,
		"partial-duplicates": append(append([][]float64{}, allSame[:6]...),
			[][]float64{{0, 0, 0}, {1, 1, 1}, {2, 0, 1}, {0, 2, 1}, {3, 3, 0}, {4, 0, 4}}...),
	} {
		emb := ts.Embed(x)
		if len(emb) != len(x) {
			t.Fatalf("%s: embedding count %d, want %d", name, len(emb), len(x))
		}
		for i, p := range emb {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) ||
				math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
				t.Fatalf("%s: point %d embedded non-finite: %v", name, i, p)
			}
		}
	}
}

func TestFitValidationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched inputs")
		}
	}()
	Fit([][]float64{{1}}, []int{0, 1})
}

func TestAnomalyNonNegativeProperty(t *testing.T) {
	x, y := twoClasses(60, 0.5, 23)
	d := Fit(x, y)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return d.Anomaly([]float64{a, b}) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
