package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"fexiot/internal/eventlog"
	"fexiot/internal/graph"
	"fexiot/internal/rules"
)

// GraphBuilder fuses a request's rules (and optional event log) into an
// interaction graph. The facade supplies System.BuildGraph /
// System.BuildOnlineGraph; it must be safe for concurrent use.
type GraphBuilder func(rs []*rules.Rule, log eventlog.Log) (*graph.Graph, error)

// DetectRequest is the JSON body of POST /v1/detect and /v1/explain: the
// deployed automation rules, plus an optional cleaned event log — when
// present the rules and log fuse into an online graph, otherwise the rules
// chain into an offline graph.
type DetectRequest struct {
	Rules  []*rules.Rule `json:"rules"`
	Events eventlog.Log  `json:"events,omitempty"`
}

// DetectResponse is the JSON reply of POST /v1/detect.
type DetectResponse struct {
	Vulnerable  bool    `json:"vulnerable"`
	Score       float64 `json:"score"`
	Drifting    bool    `json:"drifting"`
	DriftScore  float64 `json:"drift_score"`
	Nodes       int     `json:"nodes"`
	SnapshotSeq uint64  `json:"snapshot_seq"`
}

// ExplainResponse is the JSON reply of POST /v1/explain.
type ExplainResponse struct {
	NodeIndices []int    `json:"node_indices"`
	RuleIDs     []string `json:"rule_ids"`
	Score       float64  `json:"score"`
	Fidelity    float64  `json:"fidelity"`
	Sparsity    float64  `json:"sparsity"`
	SnapshotSeq uint64   `json:"snapshot_seq"`
}

// StatusResponse is the JSON reply of GET /v1/status: a cheap operational
// snapshot of the serving engine — what model is live, how big the pool
// is, how loaded the queue is — without scraping /metrics.
type StatusResponse struct {
	Ready              bool    `json:"ready"`
	SnapshotSeq        uint64  `json:"snapshot_seq"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	NodeFeatureDim     int     `json:"node_feature_dim,omitempty"`
	Workers            int     `json:"workers"`
	QueueDepth         int     `json:"queue_depth"`
	QueueLength        int     `json:"queue_length"`
	ShedTotal          int64   `json:"shed_total"`
	UptimeSeconds      float64 `json:"uptime_seconds"`
	StreamSessions     *int    `json:"stream_sessions,omitempty"`
}

// StatusInfo carries facade-known facts into GET /v1/status: the node
// feature width the live model consumes, and — when streaming sessions are
// mounted — a live session count.
type StatusInfo struct {
	NodeFeatureDim int
	Sessions       func() int
}

// send/sendErr write a response and count network write failures (the only
// thing left to do once the status line is out).
func (e *Engine) send(w http.ResponseWriter, status int, body any) {
	if err := WriteJSON(w, status, body); err != nil {
		e.m.writeErrs.Inc()
	}
}

func (e *Engine) sendErr(w http.ResponseWriter, err error) {
	if werr := WriteError(w, err); werr != nil {
		e.m.writeErrs.Inc()
	}
}

// Mount registers the inference endpoints on mux (typically the
// obs.NewHandler mux, so /v1/* rides next to /metrics), plus a /v1/
// catch-all answering unknown versioned paths with a not_found envelope
// instead of the mux's plain-text 404. timeout bounds each request's queue
// wait + inference (0 disables).
func (e *Engine) Mount(mux *http.ServeMux, build GraphBuilder, timeout time.Duration) {
	mux.HandleFunc("/v1/detect", func(w http.ResponseWriter, req *http.Request) {
		e.handle(w, req, build, timeout, reqDetect)
	})
	mux.HandleFunc("/v1/explain", func(w http.ResponseWriter, req *http.Request) {
		e.handle(w, req, build, timeout, reqExplain)
	})
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, req *http.Request) {
		e.sendErr(w, fmt.Errorf("%w: no endpoint %s", ErrNotFound, req.URL.Path))
	})
}

// MountStatus registers GET /v1/status.
func (e *Engine) MountStatus(mux *http.ServeMux, info StatusInfo) {
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, req *http.Request) {
		if !AllowMethods(w, req, http.MethodGet) {
			return
		}
		st := e.Stats()
		resp := StatusResponse{
			Ready:              st.SnapshotSeq > 0,
			SnapshotSeq:        st.SnapshotSeq,
			SnapshotAgeSeconds: st.SnapshotAgeSeconds,
			NodeFeatureDim:     info.NodeFeatureDim,
			Workers:            st.Workers,
			QueueDepth:         st.QueueDepth,
			QueueLength:        st.QueueLength,
			ShedTotal:          st.Shed,
			UptimeSeconds:      st.UptimeSeconds,
		}
		if info.Sessions != nil {
			n := info.Sessions()
			resp.StreamSessions = &n
		}
		e.send(w, http.StatusOK, resp)
	})
}

func (e *Engine) handle(w http.ResponseWriter, req *http.Request,
	build GraphBuilder, timeout time.Duration, kind reqKind) {
	// A panicking handler (hostile payload tripping a parser edge) must
	// cost one 500, never the process.
	defer func() {
		if v := recover(); v != nil {
			e.m.panics.Inc()
			e.sendErr(w, fmt.Errorf("%w: %v", ErrPanicked, v))
		}
	}()
	if !AllowMethods(w, req, http.MethodPost) {
		return
	}
	if !RequireContentType(w, req) {
		return
	}
	var in DetectRequest
	if err := ReadJSON(w, req, e.opts.maxBodyBytes(), &in); err != nil {
		e.sendErr(w, err)
		return
	}
	if len(in.Rules) == 0 {
		e.sendErr(w, fmt.Errorf("%w: rules must be non-empty", ErrBadRequest))
		return
	}
	g, err := build(in.Rules, in.Events)
	if err != nil {
		e.sendErr(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if g.N() == 0 {
		e.sendErr(w, fmt.Errorf("%w: rules and events fuse into an empty graph "+
			"(no rule was active in the log)", ErrBadRequest))
		return
	}
	ctx := req.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	switch kind {
	case reqDetect:
		v, seq, err := e.Detect(ctx, g)
		if err != nil {
			e.sendErr(w, err)
			return
		}
		e.send(w, http.StatusOK, DetectResponse{
			Vulnerable:  v.Vulnerable,
			Score:       v.Score,
			Drifting:    v.Drifting,
			DriftScore:  v.DriftScore,
			Nodes:       g.N(),
			SnapshotSeq: seq,
		})
	case reqExplain:
		ex, seq, err := e.Explain(ctx, g)
		if err != nil {
			e.sendErr(w, err)
			return
		}
		out := ExplainResponse{
			NodeIndices: ex.NodeIndices,
			Score:       ex.Score,
			Fidelity:    ex.Fidelity,
			Sparsity:    ex.Sparsity,
			SnapshotSeq: seq,
		}
		for _, r := range ex.Rules {
			if r != nil {
				out.RuleIDs = append(out.RuleIDs, r.ID)
			}
		}
		e.send(w, http.StatusOK, out)
	}
}
