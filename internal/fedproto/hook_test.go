package fedproto

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

// TestOnRoundCompleteHook runs a real two-client loopback federation with
// the publish hook installed and pins the hook contract the serving layer
// relies on: fired exactly once per round, in round order, with the
// post-aggregation global model, strictly before the federation reports
// completion — so a snapshot published from the hook can never lag the
// final model.
func TestOnRoundCompleteHook(t *testing.T) {
	const rounds = 3
	addr := freeAddr(t)

	var mu sync.Mutex
	var gotRounds []int
	var gotLayers []int
	var lastGlobal [][]float64

	srv := NewServer(ServerConfig{
		Addr:         addr,
		Clients:      2,
		Rounds:       rounds,
		Eps1:         0.4,
		Eps2:         0.95,
		NumLayers:    2,
		RoundTimeout: 10 * time.Second,
		OnRoundComplete: func(round int, global []LayerPayload) {
			mu.Lock()
			defer mu.Unlock()
			gotRounds = append(gotRounds, round)
			gotLayers = append(gotLayers, len(global))
			lastGlobal = lastGlobal[:0]
			for _, lp := range global {
				for _, d := range lp.Data {
					cp := make([]float64, len(d))
					copy(cp, d)
					lastGlobal = append(lastGlobal, cp)
				}
			}
		},
	})
	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		serverDone <- err
	}()

	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := scriptParams()
			_, err := RunClientSession(context.Background(), ClientConfig{
				Addr: addr, ID: id, DataSize: 10,
				OpTimeout: 10 * time.Second, Seed: int64(id),
			}, p, func(round int) map[int]float64 {
				addDelta(p, 0.1)
				return zeroNorms(p)
			})
			if err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(gotRounds) != rounds {
		t.Fatalf("hook fired %d times (%v), want %d", len(gotRounds), gotRounds, rounds)
	}
	for i, r := range gotRounds {
		if r != i {
			t.Fatalf("hook round order %v, want 0..%d ascending", gotRounds, rounds-1)
		}
		if gotLayers[i] != 2 {
			t.Fatalf("round %d: hook saw %d layers, want 2", r, gotLayers[i])
		}
	}

	// Equal-sized clients applying identical +0.1 deltas each round make the
	// FedAvg closed form exact: after 3 rounds every weight is its scripted
	// start + 0.3. The two layers each hold one 1x2 tensor.
	if len(lastGlobal) != 2 {
		t.Fatalf("final global tensors = %d, want 2", len(lastGlobal))
	}
	wantVals := [][]float64{{1.3, 2.3}, {3.3, 4.3}}
	for l, row := range wantVals {
		for j, w := range row {
			if got := lastGlobal[l][j]; math.Abs(got-w) > 1e-9 {
				t.Fatalf("final global layer %d[%d] = %v, want %v", l, j, got, w)
			}
		}
	}
}
