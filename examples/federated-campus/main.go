// Federated campus: eight households with heterogeneous automation habits
// collaboratively train a vulnerability detector without sharing raw data,
// comparing the paper's layer-wise clustered aggregation against FedAvg and
// isolated training — a miniature of the Fig. 4 evaluation through the
// public API.
package main

import (
	"fmt"
	"log"

	"fexiot"
)

func main() {
	const homesPerArch = 2
	archs := []string{"security", "security", "climate", "climate",
		"energy", "entertainment", "safety", "safety"}
	_ = homesPerArch

	// Each client is one household with its own graphs.
	fmt.Println("building 8 household datasets…")
	clientData := make([][]*fexiot.Graph, len(archs))
	builderOpts := fexiot.DefaultOptions()
	builderOpts.Seed = 3
	builderSys, err := fexiot.New(builderOpts)
	if err != nil {
		log.Fatal(err)
	}
	for i, arch := range archs {
		deployed := fexiot.GenerateHome(arch, 28, int64(i*13+7))
		for g := 0; g < 30; g++ {
			clientData[i] = append(clientData[i], builderSys.BuildGraph(deployed))
		}
		vuln := 0
		for _, g := range clientData[i] {
			if g.Label {
				vuln++
			}
		}
		fmt.Printf("  client %d (%-13s): %d graphs, %d vulnerable\n",
			i, arch, len(clientData[i]), vuln)
	}

	// Held-out evaluation graphs from fresh homes.
	var test []*fexiot.Graph
	for i, arch := range archs {
		deployed := fexiot.GenerateHome(arch, 28, int64(i*17+211))
		for g := 0; g < 6; g++ {
			test = append(test, builderSys.BuildGraph(deployed))
		}
	}

	for _, algo := range []fexiot.FederatedAlgorithm{
		fexiot.AlgoFexIoT, fexiot.AlgoFedAvg, fexiot.AlgoClient,
	} {
		sysOpts := fexiot.DefaultOptions()
		sysOpts.Seed = 3
		sys, err := fexiot.New(sysOpts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.TrainFederated(clientData, algo, 12)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sys.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-7s: acc=%.3f f1=%.3f transferred=%.1fMB clusters=%v\n",
			algo, m.Accuracy, m.F1, float64(res.TransferredBytes)/1e6, res.Clusters)
	}
	fmt.Println("\nexpected shape: FexIoT ≥ FedAvg > Client, with FexIoT moving fewer bytes")
}
