package gnn

import (
	"math"
	"testing"

	"fexiot/internal/autodiff"
	"fexiot/internal/embed"
	"fexiot/internal/fusion"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/rng"
	"fexiot/internal/rules"
)

// testGraphs builds a small labelled corpus from the synthetic pipeline.
var testEnc = embed.NewEncoder(24, 32)

// featDim is the word-space node feature width for the test encoder.
var featDim = fusion.WordFeatureDim(testEnc)
var sentDim = fusion.SentenceFeatureDim(testEnc)

func testGraphs(t *testing.T, n int) []*graph.Graph {
	t.Helper()
	return makeGraphs(n)
}

func benchGraphs(b *testing.B, n int) []*graph.Graph {
	b.Helper()
	return makeGraphs(n)
}

func makeGraphs(n int) []*graph.Graph {
	pool := fusion.MultiHomePool(3, 40, 25, nil)
	b := fusion.NewBuilder(5, testEnc)
	out := make([]*graph.Graph, n)
	for i := range out {
		out[i] = b.OfflineSized(pool)
	}
	return out
}

func modelsUnderTest() map[string]Model {
	return map[string]Model{
		"gcn":   NewGCN(featDim, 16, 8, 1),
		"gin":   NewGIN(featDim, 16, 8, 2),
		"magnn": NewMAGNN(featDim, sentDim, 16, 8, 3),
	}
}

func TestModelsEmbedAndAreDeterministic(t *testing.T) {
	gs := testGraphs(t, 4)
	for name, m := range modelsUnderTest() {
		for _, g := range gs {
			z1 := Embed(m, g)
			z2 := Embed(m, g)
			if len(z1) != m.EmbedDim() {
				t.Fatalf("%s embed dim %d want %d", name, len(z1), m.EmbedDim())
			}
			for i := range z1 {
				if z1[i] != z2[i] {
					t.Fatalf("%s embedding not deterministic", name)
				}
				if math.IsNaN(z1[i]) || math.IsInf(z1[i], 0) {
					t.Fatalf("%s embedding has NaN/Inf", name)
				}
			}
		}
	}
}

func TestFreshModelsDiffer(t *testing.T) {
	gs := testGraphs(t, 1)
	for name, m := range modelsUnderTest() {
		f := m.Fresh(99)
		z1 := Embed(m, gs[0])
		z2 := Embed(f, gs[0])
		same := true
		for i := range z1 {
			if z1[i] != z2[i] {
				same = false
			}
		}
		if same {
			t.Fatalf("%s Fresh should reinitialise weights", name)
		}
		// Structure must match for federated averaging.
		if len(f.Params().Names()) != len(m.Params().Names()) {
			t.Fatalf("%s Fresh changed parameter structure", name)
		}
	}
}

func TestLayerAssignmentsBottomUp(t *testing.T) {
	for name, m := range modelsUnderTest() {
		p := m.Params()
		if p.NumLayers() < 2 {
			t.Fatalf("%s needs ≥2 layers for layer-wise clustering", name)
		}
		for l := 0; l < p.NumLayers(); l++ {
			if p.LayerElements(l) == 0 {
				t.Fatalf("%s layer %d is empty", name, l)
			}
		}
	}
}

func TestContrastiveTrainingSeparatesClasses(t *testing.T) {
	gs := testGraphs(t, 80)
	var pos, neg []*graph.Graph
	for _, g := range gs {
		if g.Label {
			pos = append(pos, g)
		} else {
			neg = append(neg, g)
		}
	}
	if len(pos) < 5 || len(neg) < 5 {
		t.Skip("unbalanced sample; dataset quota logic handles this in production")
	}
	m := NewGIN(featDim, 16, 8, 7)
	cfg := DefaultTrainConfig(11)
	cfg.LR = 0.005
	cfg.Epochs = 1
	cfg.PairsPerEpoch = 400
	opt := autodiff.NewAdam(cfg.LR)

	meanGap := func() float64 {
		// Average cross-class distance minus average in-class distance.
		var cross, within float64
		var nc, nw int
		for i := 0; i < len(pos) && i < 10; i++ {
			for j := 0; j < len(neg) && j < 10; j++ {
				cross += mat.Dist2(Embed(m, pos[i]), Embed(m, neg[j]))
				nc++
			}
		}
		for i := 0; i < len(neg)-1 && i < 10; i++ {
			within += mat.Dist2(Embed(m, neg[i]), Embed(m, neg[i+1]))
			nw++
		}
		return cross/float64(nc) - within/float64(nw)
	}
	before := meanGap()
	for round := 0; round < 6; round++ {
		cfg.Seed = int64(round)
		TrainContrastive(m, gs, cfg, opt)
	}
	after := meanGap()
	// A single short run is noisy; after six rounds the gap must clearly
	// widen relative to the random-init baseline.
	if after <= before {
		t.Fatalf("contrastive training should widen the class gap: before %v after %v",
			before, after)
	}
}

func TestDetectorPipeline(t *testing.T) {
	gs := testGraphs(t, 300)
	m := NewGIN(featDim, 16, 8, 13)
	cfg := DefaultTrainConfig(17)
	cfg.PairsPerEpoch = 500
	cfg.LR = 0.005
	opt := autodiff.NewAdam(cfg.LR)
	for round := 0; round < 4; round++ {
		cfg.Seed = int64(round)
		TrainContrastive(m, gs[:240], cfg, opt)
	}
	d := NewDetector(m, 3)
	d.FitClassifier(gs[:240])
	metrics := EvaluateDetector(d, gs[240:])
	// Even a briefly trained model must beat chance decisively on held-out
	// graphs.
	if metrics.Accuracy < 0.6 {
		t.Fatalf("detector accuracy %v too low (metrics %+v)", metrics.Accuracy, metrics)
	}
}

func TestMAGNNHandlesMixedFeatureSpaces(t *testing.T) {
	// Build a toy heterogeneous graph directly: word node (24-d) plus
	// sentence node (32-d).
	g := &graph.Graph{}
	wf := make([]float64, 24)
	wf[0] = 1
	sf := make([]float64, 32)
	sf[1] = 1
	g.AddNode(graph.Node{Feature: wf, Space: graph.WordSpace})
	g.AddNode(graph.Node{Feature: sf, Space: graph.SentenceSpace})
	g.AddEdge(0, 1, rules.DirectMatch)
	m := NewMAGNN(24, 32, 16, 8, 5)
	_ = sentDim
	z := Embed(m, g)
	if len(z) != 8 {
		t.Fatalf("embed dim %d", len(z))
	}
	var nonzero bool
	for _, v := range z {
		if v != 0 {
			nonzero = true
		}
		if math.IsNaN(v) {
			t.Fatal("NaN in MAGNN embedding")
		}
	}
	if !nonzero {
		t.Fatal("MAGNN embedding all zero")
	}
}

func TestGNNGradientsFlowToAllLayers(t *testing.T) {
	gs := testGraphs(t, 2)
	for name, m := range modelsUnderTest() {
		tape := autodiff.NewTape()
		binder := autodiff.Bind(tape, m.Params())
		za := m.Forward(tape, binder, gs[0])
		zb := m.Forward(tape, binder, gs[1])
		loss := tape.ContrastiveLoss(za, zb, gs[0].Label != gs[1].Label, 2.0)
		tape.Backward(loss)
		grads := binder.Grads()
		if len(grads) == 0 {
			t.Fatalf("%s produced no gradients", name)
		}
		var total float64
		for _, g := range grads {
			total += g.Norm()
		}
		if total == 0 {
			t.Fatalf("%s gradients all zero", name)
		}
	}
}

func TestEmbedSensitiveToStructure(t *testing.T) {
	// Same nodes, different wiring → different embeddings (for a random
	// model this holds almost surely).
	r := rng.New(31)
	mkGraph := func(wire bool) *graph.Graph {
		g := &graph.Graph{}
		for i := 0; i < 4; i++ {
			f := make([]float64, featDim)
			f[i] = 1
			g.AddNode(graph.Node{Feature: f, Space: graph.WordSpace})
		}
		if wire {
			g.AddEdge(0, 1, rules.DirectMatch)
			g.AddEdge(1, 2, rules.DirectMatch)
		} else {
			g.AddEdge(0, 3, rules.DirectMatch)
			g.AddEdge(3, 2, rules.DirectMatch)
		}
		return g
	}
	_ = r
	for name, m := range modelsUnderTest() {
		z1 := Embed(m, mkGraph(true))
		z2 := Embed(m, mkGraph(false))
		if mat.Dist2(z1, z2) == 0 {
			t.Fatalf("%s is blind to edge structure", name)
		}
	}
}
