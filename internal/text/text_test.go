package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Turn lights on if motion is detected",
			[]string{"turn", "lights", "on", "if", "motion", "is", "detected"}},
		{"Set thermostat to 72.5 degrees!",
			[]string{"set", "thermostat", "to", "72.5", "degrees"}},
		{"living-room light", []string{"living", "room", "light"}},
		{"", nil},
		{"  ,,  ", nil},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	for _, ok := range []string{"5", "72.5", "100"} {
		if !IsNumeric(ok) {
			t.Errorf("IsNumeric(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "a1", "1.2.3", "1a"} {
		if IsNumeric(bad) {
			t.Errorf("IsNumeric(%q) = true", bad)
		}
	}
}

func TestLemmatize(t *testing.T) {
	cases := map[string]string{
		"detected": "detect",
		"closes":   "close",
		"closing":  "close",
		"running":  "run",
		"lights":   "light",
		"opens":    "open",
		"turned":   "turn",
		"valves":   "valve",
		"was":      "be",
		"stopped":  "stop",
		"switches": "switch",
		"turn":     "turn",
	}
	for in, want := range cases {
		if got := Lemmatize(in); got != want {
			t.Errorf("Lemmatize(%q) = %q want %q", in, got, want)
		}
	}
}

func TestTagBasicSentence(t *testing.T) {
	toks := TagSentence("turn the lights on if motion is detected")
	byText := map[string]POS{}
	for _, tk := range toks {
		byText[tk.Text] = tk.Tag
	}
	if byText["turn"] != Verb {
		t.Errorf("turn tagged %v", byText["turn"])
	}
	if byText["lights"] != Noun {
		t.Errorf("lights tagged %v", byText["lights"])
	}
	if byText["on"] != Particle {
		t.Errorf("on tagged %v", byText["on"])
	}
	if byText["motion"] != Noun {
		t.Errorf("motion tagged %v", byText["motion"])
	}
	if byText["detected"] != Verb {
		t.Errorf("detected tagged %v", byText["detected"])
	}
	if byText["is"] != Auxiliary {
		t.Errorf("is tagged %v", byText["is"])
	}
}

func TestTagAmbiguity(t *testing.T) {
	// "lock" as imperative verb vs noun after determiner.
	toks := TagSentence("lock the door")
	if toks[0].Tag != Verb {
		t.Errorf("imperative lock tagged %v", toks[0].Tag)
	}
	toks = TagSentence("the lock is open")
	if toks[1].Tag != Noun {
		t.Errorf("nominal lock tagged %v", toks[1].Tag)
	}
	// predicative adjective after auxiliary
	if toks[3].Tag != Adjective {
		t.Errorf("predicative open tagged %v", toks[3].Tag)
	}
}

func TestSplitClauses(t *testing.T) {
	cases := []struct {
		in        string
		trig, act string
	}{
		{"Turn lights on if motion is detected",
			"motion is detected", "turn lights on"},
		{"If smoke is detected, turn on the water valve",
			"smoke is detected", "turn on the water valve"},
		{"when a water leak is detected then close the water valve",
			"a water leak is detected", "close the water valve"},
		{"Lock front door when living room lights are on",
			"living room lights are on", "lock front door"},
		{"Alexa, turn on heater", "", "alexa, turn on heater"},
	}
	for _, c := range cases {
		trig, act := SplitClauses(c.in)
		if trig != c.trig || act != c.act {
			t.Errorf("SplitClauses(%q) = (%q,%q) want (%q,%q)",
				c.in, trig, act, c.trig, c.act)
		}
	}
}

func TestParseElements(t *testing.T) {
	pr := Parse("If smoke is detected, turn on the water valve and start alarm beeping")
	if len(pr.Trigger.Elements.Objects) == 0 || pr.Trigger.Elements.Objects[0] != "smoke" {
		t.Errorf("trigger objects = %v", pr.Trigger.Elements.Objects)
	}
	hasVerb := func(e Elements, v string) bool {
		for _, x := range e.Verbs {
			if x == v {
				return true
			}
		}
		return false
	}
	if !hasVerb(pr.Action.Elements, "turn") || !hasVerb(pr.Action.Elements, "start") {
		t.Errorf("action verbs = %v", pr.Action.Elements.Verbs)
	}
	found := false
	for _, o := range pr.Action.Elements.Objects {
		if o == "valve" {
			found = true
		}
	}
	if !found {
		t.Errorf("action objects = %v", pr.Action.Elements.Objects)
	}
}

func TestEntityElimination(t *testing.T) {
	pr := Parse("turn on the kitchen light if the bedroom door opens")
	for _, o := range pr.Action.Elements.Objects {
		if o == "kitchen" {
			t.Error("kitchen should be eliminated as an entity")
		}
	}
	for _, o := range pr.Trigger.Elements.Objects {
		if o == "bedroom" {
			t.Error("bedroom should be eliminated as an entity")
		}
	}
}

func TestKeyPhrases(t *testing.T) {
	kp := KeyPhrases("Close the water valve when a water leak is detected")
	if len(kp) == 0 {
		t.Fatal("no key phrases")
	}
	joined := map[string]bool{}
	for _, k := range kp {
		joined[k] = true
	}
	for _, want := range []string{"close", "valve", "leak", "detect"} {
		if !joined[want] {
			t.Errorf("key phrases %v missing %q", kp, want)
		}
	}
	for k := range joined {
		if IsStopword(k) {
			t.Errorf("stopword %q leaked into key phrases", k)
		}
	}
}

func TestTokenizeNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for _, w := range toks {
			if w == "" {
				return false
			}
		}
		tags := Tag(toks)
		return len(tags) == len(toks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPOSStringCoverage(t *testing.T) {
	for p := Noun; p <= Other; p++ {
		if p.String() == "" {
			t.Errorf("POS %d has empty name", p)
		}
	}
}

func TestMarkerIndexWholeWord(t *testing.T) {
	// "notify" contains "if" but is not a marker occurrence.
	trig, act := SplitClauses("notify the user")
	if trig != "" || act != "notify the user" {
		t.Errorf("false marker split: (%q, %q)", trig, act)
	}
}
