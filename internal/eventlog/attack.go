package eventlog

import (
	"fexiot/internal/rng"
	"fexiot/internal/rules"
)

// Attack identifies one of the five HAWatcher attack classes the paper
// injects to create external graph vulnerabilities (§IV-A).
type Attack int

// The five attack classes.
const (
	FakeEvents Attack = iota
	FakeCommands
	StealthyCommands
	CommandFailure
	EventLosses
	NumAttacks
)

// String names the attack.
func (a Attack) String() string {
	switch a {
	case FakeEvents:
		return "fake_events"
	case FakeCommands:
		return "fake_commands"
	case StealthyCommands:
		return "stealthy_commands"
	case CommandFailure:
		return "command_failure"
	case EventLosses:
		return "event_losses"
	default:
		return "unknown"
	}
}

// Inject applies the attack to a copy of the log and returns it. The
// deployed rule set provides the device vocabulary for spoofed entries.
// Intensity in (0,1] scales how many records are affected.
func Inject(log Log, a Attack, deployed []*rules.Rule, intensity float64, seed int64) Log {
	r := rng.New(seed)
	out := append(Log(nil), log...)
	if len(out) == 0 {
		return out
	}
	n := int(float64(len(out))*intensity*0.2) + 1
	switch a {
	case FakeEvents:
		// Sensor events that no physical cause produced: spoofed state
		// reports inserted at random times.
		for i := 0; i < n; i++ {
			src := out[r.Intn(len(out))]
			fake := src
			fake.Kind = KindSensor
			fake.RuleID = ""
			fake.Value = flipValue(src.Value)
			fake.Time = out[r.Intn(len(out))].Time
			out = insertSorted(out, fake)
		}
	case FakeCommands:
		// Actuator commands issued by no rule (an attacker speaking the
		// device protocol).
		for i := 0; i < n; i++ {
			eff := randomEffect(deployed, r)
			if eff == nil {
				break
			}
			fake := Event{Time: out[r.Intn(len(out))].Time, Device: eff.Device,
				Room: eff.Room, Channel: eff.Channel, Value: eff.State,
				Kind: KindCommand}
			out = insertSorted(out, fake)
		}
	case StealthyCommands:
		// Commands whose log entries are suppressed while their state
		// changes remain — the state appears to change with no cause.
		removed := 0
		for i := 0; i < len(out) && removed < n; i++ {
			if out[i].Kind == KindCommand && r.Bool(0.6) {
				out = append(out[:i], out[i+1:]...)
				removed++
				i--
			}
		}
	case CommandFailure:
		// Commands logged but never taking effect: drop the matching state
		// confirmation.
		dropped := 0
		for i := 0; i < len(out) && dropped < n; i++ {
			if out[i].Kind == KindState && r.Bool(0.6) {
				out = append(out[:i], out[i+1:]...)
				dropped++
				i--
			}
		}
	case EventLosses:
		// Random records vanish (jammed radio, dropped packets).
		for i := 0; i < n && len(out) > 1; i++ {
			idx := r.Intn(len(out))
			out = append(out[:idx], out[idx+1:]...)
		}
	}
	return out
}

// flipValue returns the opposite pole when one exists, else the value.
func flipValue(v string) string {
	if o := rules.OppositeState(v); o != "" {
		return o
	}
	return v
}

// randomEffect samples an action from the deployed rules.
func randomEffect(deployed []*rules.Rule, r *rng.RNG) *rules.Effect {
	if len(deployed) == 0 {
		return nil
	}
	for trial := 0; trial < 10; trial++ {
		rule := deployed[r.Intn(len(deployed))]
		if len(rule.Actions) > 0 {
			eff := rule.Actions[r.Intn(len(rule.Actions))]
			if o := rules.OppositeState(eff.State); o != "" {
				eff.State = o // the attacker commands the opposite of normal
			}
			return &eff
		}
	}
	return nil
}

// insertSorted inserts e keeping the log time-ordered.
func insertSorted(log Log, e Event) Log {
	i := len(log)
	for i > 0 && log[i-1].Time > e.Time {
		i--
	}
	log = append(log, Event{})
	copy(log[i+1:], log[i:])
	log[i] = e
	return log
}
