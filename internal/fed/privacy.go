package fed

import (
	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// The paper's §VI sketches two hardening directions for FexIoT: adding
// differential privacy to the model updates and defending the aggregation
// against Sybil attackers that control multiple clients. Both are
// implemented here as composable options.

// DPConfig is client-side (ε,δ)-style update privatisation in the DP-FedAvg
// mould: the local update is clipped to ClipNorm and perturbed with
// Gaussian noise of standard deviation NoiseSigma·ClipNorm before it ever
// leaves the client.
type DPConfig struct {
	ClipNorm   float64
	NoiseSigma float64
	Seed       int64
}

// Privatize applies clipping and noising to the client's pending update in
// place: the model weights become prev + clip(ΔW) + noise. Call it after
// LocalTrain and before the server reads the weights.
func (c *Client) Privatize(cfg DPConfig) {
	if c.prev == nil || cfg.ClipNorm <= 0 {
		return
	}
	update := c.Model.Params().Sub(c.prev)
	norm := update.Norm()
	scale := 1.0
	if norm > cfg.ClipNorm {
		scale = cfg.ClipNorm / norm
	}
	r := rng.New(cfg.Seed*1000003 + int64(c.ID))
	sigma := cfg.NoiseSigma * cfg.ClipNorm
	// W ← prev + scale·ΔW + N(0, σ²)
	private := c.prev.Clone()
	for _, name := range private.Names() {
		p := private.Get(name)
		u := update.Get(name)
		pd, ud := p.Data(), u.Data()
		for i := range pd {
			pd[i] += scale*ud[i] + r.NormFloat64()*sigma
		}
	}
	c.Model.Params().CopyFrom(private)
}

// PrivateAlgorithm wraps any federated algorithm with client-side DP: after
// every local training round, each client privatises its update before the
// wrapped algorithm's server logic observes the weights.
type PrivateAlgorithm struct {
	Inner Algorithm
	DP    DPConfig
}

// Name identifies the wrapped algorithm.
func (p *PrivateAlgorithm) Name() string { return p.Inner.Name() + "+DP" }

// Run interposes privatisation by wrapping each client's training data in a
// hook-aware shim. The inner algorithm drives the schedule; the shim adds
// clip+noise after every LocalTrain.
func (p *PrivateAlgorithm) Run(clients []*Client, cfg Config) *Result {
	for _, c := range clients {
		c.dp = &p.DP
	}
	defer func() {
		for _, c := range clients {
			c.dp = nil
		}
	}()
	return p.Inner.Run(clients, cfg)
}

// Privatized reports whether a DP hook is currently installed (testing
// hook).
func (c *Client) Privatized() bool { return c.dp != nil }

// SybilFilter re-weights aggregation against Sybil coordination (Fung et
// al., RAID 2020): clients whose update directions are near-duplicates of
// each other — the signature of one attacker echoing itself from many
// identities — share their aggregation mass instead of multiplying it.
// weights are the data-size weights; the returned slice is renormalised.
func SybilFilter(clients []*Client, idx []int, weights []float64, simThreshold float64) []float64 {
	if len(idx) != len(weights) {
		panic("fed: SybilFilter length mismatch")
	}
	updates := make([][]float64, len(idx))
	for k, i := range idx {
		updates[k] = clients[i].Update().Flatten()
	}
	out := append([]float64(nil), weights...)
	// Count near-duplicate groups: each member of a duplicate group of size
	// g keeps 1/g of its weight.
	for k := range idx {
		dupes := 1
		for j := range idx {
			if j == k {
				continue
			}
			if mat.CosineSimilarity(updates[k], updates[j]) > simThreshold {
				dupes++
			}
		}
		out[k] /= float64(dupes)
	}
	var total float64
	for _, w := range out {
		total += w
	}
	if total > 0 {
		for k := range out {
			out[k] /= total
		}
	}
	return out
}
