package experiments

import (
	"fmt"

	"fexiot/internal/datasets"
	"fexiot/internal/embed"
	"fexiot/internal/fusion"
	"fexiot/internal/ml"
	"fexiot/internal/nn"
)

// TableI regenerates the dataset statistics table: labelled/unlabelled
// graph counts, vulnerable counts and the node-count range for both the
// homogeneous IFTTT corpus and the heterogeneous five-platform corpus.
func TableI(s Setup) *Table {
	t := &Table{
		Title: "Table I — Statistics of interaction graphs (scale: " + s.Scale.Name + ")",
		Header: []string{"Type", "Label", "Total Graph Num.", "Vulnerable Graph Num.",
			"Nodes (min-max)"},
	}
	ifttt := datasets.BuildIFTTT(s.Scale, s.Seed)
	hetero := datasets.BuildHetero(s.Scale, s.Seed+100)
	for _, d := range []*datasets.Dataset{ifttt, hetero} {
		min, max := d.NodeRange()
		t.Add(d.Name, "labeled", fmt.Sprint(len(d.Labeled)),
			fmt.Sprint(d.Vulnerable()), fmt.Sprintf("%d-%d", min, max))
		t.Add(d.Name, "unlabeled", fmt.Sprint(len(d.Unlabeled)), "*", "")
	}
	return t
}

// FigureIII evaluates the four correlation-discovery classifiers of Fig. 3
// (MLP, RandomForest, KNN, GradientBoost) by 10-fold cross-validation on a
// labelled action-trigger pair corpus, mirroring the 5,600 positive + 8,000
// negative pairs of §IV-B (scaled at CI scale).
func FigureIII(s Setup) *Table {
	enc := embed.NewEncoder(s.Scale.WordDim, s.Scale.SentenceDim)
	pool := fusion.MultiHomePool(s.Seed+3, s.Scale.Homes/2, s.Scale.RulesPerHome, nil)
	feat := fusion.NewPairFeaturizer(enc, 24)
	nPos, nNeg := 5600, 8000
	if s.Scale.Name != "paper" {
		nPos, nNeg = 700, 1000
	}
	ds := fusion.BuildPairDataset(feat, pool, nPos, nNeg, s.Seed+5)

	dim := feat.FeatureDim()
	classifiers := []struct {
		name    string
		factory func() ml.Classifier
	}{
		{"MLP", func() ml.Classifier {
			return nn.NewMLP([]int{dim, 32, 16, 2}, 12, 0.01, 7)
		}},
		{"RandomForest", func() ml.Classifier {
			return ml.NewRandomForest(40, 10, 11)
		}},
		{"KNN", func() ml.Classifier { return ml.NewKNN(5) }},
		{"GradientBoost", func() ml.Classifier {
			return ml.NewGradientBoost(60, 3, 0.2)
		}},
	}

	t := &Table{
		Title:  "Fig. 3 — Correlation-discovery classifiers (10-fold CV)",
		Header: []string{"Classifier", "Accuracy", "Precision", "Recall", "F1"},
	}
	folds := 10
	for _, c := range classifiers {
		m := ml.KFold(c.factory, ds.X, ds.Y, folds, s.Seed+9)
		t.Add(c.name, f3(m.Accuracy), f3(m.Precision), f3(m.Recall), f3(m.F1))
	}
	t.Add("(paper)", "0.97-0.984", "0.96-0.997", "0.96-0.998", "0.96-0.98")
	return t
}
