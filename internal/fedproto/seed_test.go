package fedproto

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"fexiot/internal/autodiff"
)

// TestMixSeedDisperses pins the splitmix64 seed derivation: over a grid of
// nearby (seed, id) pairs — exactly the restarted-fleet case — every
// derived rng seed is distinct. The previous affine formula
// seed*2654435761 + id + 1 collides on this grid (e.g. seed+1 shifts by the
// multiplier, id by 1, so (s, id+2654435761) pairs alias; with small ids
// the collisions appear as soon as seeds differ by one and ids compensate).
func TestMixSeedDisperses(t *testing.T) {
	seen := map[int64][2]int64{}
	for seed := int64(-50); seed < 50; seed++ {
		for id := 0; id < 200; id++ {
			m := mixSeed(seed, id)
			if prev, ok := seen[m]; ok {
				t.Fatalf("mixSeed(%d,%d) == mixSeed(%d,%d) == %d",
					seed, id, prev[0], prev[1], m)
			}
			seen[m] = [2]int64{seed, int64(id)}
		}
	}
	// The old formula demonstrably collides on a comparable grid, so the
	// test is really pinning an improvement: id and seed+k·step alias.
	old := func(seed int64, id int) int64 { return seed*2654435761 + int64(id) + 1 }
	if old(0, 2654435761) != old(1, 0) {
		t.Fatal("affine collision check is stale; update the comment")
	}
}

// TestBackoffJitterDistinctAcrossIDs drives 64 same-seed clients through a
// failing dial and captures each session's first backoff sleep: the jitter
// streams must not coincide, or a restarted fleet thundering-herds the
// server in lockstep.
func TestBackoffJitterDistinctAcrossIDs(t *testing.T) {
	first := map[time.Duration]int{}
	for id := 0; id < 64; id++ {
		var slept []time.Duration
		cfg := ClientConfig{
			Addr:        "unreachable",
			ID:          id,
			Seed:        7, // same fleet-wide seed for every client
			MaxAttempts: 2,
			Dial: func(string) (net.Conn, error) {
				return nil, errors.New("injected dial failure")
			},
			Sleep: func(d time.Duration) { slept = append(slept, d) },
		}
		_, err := RunClientSession(context.Background(), cfg,
			autodiff.NewParamSet(), func(int) map[int]float64 { return nil })
		if err == nil {
			t.Fatalf("client %d: session must fail against the injected dial", id)
		}
		if len(slept) == 0 {
			t.Fatalf("client %d: no backoff sleep captured", id)
		}
		if prev, ok := first[slept[0]]; ok {
			t.Fatalf("clients %d and %d share first jitter %v", prev, id, slept[0])
		}
		first[slept[0]] = id
	}
}
