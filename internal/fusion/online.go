package fusion

import (
	"fmt"
	"sort"

	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/graph"
	"fexiot/internal/rules"
	"fexiot/internal/vuln"
)

// TriggerWindow is how long (simulated seconds) after an action a matching
// trigger event still counts as caused by it when fusing logs into online
// graphs.
const TriggerWindow = 120

// BuildOnline fuses a cleaned event log with the deployed rules into an
// online interaction graph (§III-A3): the offline trigger-action logic
// supplies candidate edges, while the log decides which rules actually ran
// and whether the timestamps support the causal direction. The result is
// the "fine-grained real-time interaction graph" of the paper.
func (b *Builder) BuildOnline(deployed []*rules.Rule, log eventlog.Log) *graph.Graph {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	g := &graph.Graph{ID: fmt.Sprintf("on%d", b.nextID), Online: true}

	// Execution times per rule (from command records) and trigger-match
	// times per rule (from any record matching the trigger condition).
	execTimes := map[string][]int64{}
	trigTimes := map[*rules.Rule][]int64{}
	byID := map[string]*rules.Rule{}
	for _, r := range deployed {
		byID[r.ID] = r
	}
	for _, e := range log {
		if e.RuleID != "" && e.Kind == eventlog.KindCommand {
			execTimes[e.RuleID] = append(execTimes[e.RuleID], e.Time)
		}
		for _, r := range deployed {
			t := r.Trigger
			if t.Device == e.Device && t.Room == e.Room &&
				t.Channel == e.Channel && t.State == e.Value {
				trigTimes[r] = append(trigTimes[r], e.Time)
			}
		}
	}

	// Active rules appear as nodes.
	var members []*rules.Rule
	for _, r := range deployed {
		if len(execTimes[r.ID]) > 0 || len(trigTimes[r]) > 0 {
			members = append(members, r)
		}
	}
	if len(members) == 0 {
		return g
	}
	idx := map[*rules.Rule]int{}
	for i, r := range members {
		feat, space := b.NodeFeature(r)
		g.AddNode(graph.Node{Rule: r, Feature: feat, Space: space})
		idx[r] = i
	}

	// Edges: the offline logic must allow a→b AND the log must show an
	// execution of a shortly before a trigger match of b.
	for _, a := range members {
		for _, c := range members {
			if a == c {
				continue
			}
			kind := b.Oracle(a, c)
			if kind == rules.NoMatch {
				continue
			}
			if timestampsSupport(execTimes[a.ID], trigTimes[c]) {
				g.AddEdge(idx[a], idx[c], kind)
			}
		}
	}

	// Unexplained activity becomes anomaly nodes: commands no deployed rule
	// issued, and state changes with no command behind them, are exactly
	// what spoofing and stealthy-command attacks leave in a log. Each
	// anomalous device instance contributes one node wired to the rules
	// that reference it, so compromised windows are structurally visible to
	// the detector.
	b.addAnomalyNodes(g, members, idx, log)
	vuln.Label(g)
	return g
}

// addAnomalyNodes scans the log for unexplained command/state events and
// grafts anomaly nodes into the online graph.
func (b *Builder) addAnomalyNodes(g *graph.Graph, members []*rules.Rule,
	idx map[*rules.Rule]int, log eventlog.Log) {
	type instKey struct {
		dev, room string
	}
	// Commands present at time t for an instance (to explain states).
	cmdAt := map[instKey][]int64{}
	for _, e := range log {
		if e.Kind == eventlog.KindCommand {
			k := instKey{e.Device, e.Room}
			cmdAt[k] = append(cmdAt[k], e.Time)
		}
	}
	anomalous := map[instKey]string{}
	for _, e := range log {
		k := instKey{e.Device, e.Room}
		switch e.Kind {
		case eventlog.KindCommand:
			if e.RuleID == "" {
				anomalous[k] = "unexplained command"
			}
		case eventlog.KindState:
			explained := false
			for _, t := range cmdAt[k] {
				if e.Time-t >= 0 && e.Time-t <= 2 {
					explained = true
					break
				}
			}
			if !explained {
				anomalous[k] = "unexplained state change"
			}
		}
	}
	// Map iteration order is randomised; anomaly nodes must land in a fixed
	// order or the same log fuses into byte-different graphs across calls.
	keys := make([]instKey, 0, len(anomalous))
	for k := range anomalous {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].room != keys[j].room {
			return keys[i].room < keys[j].room
		}
		return keys[i].dev < keys[j].dev
	})
	for _, k := range keys {
		kind := anomalous[k]
		feat := make([]float64, 0, b.Encoder.WordDim()+2*SigDim)
		feat = append(feat, b.Encoder.RuleEmbedding(
			kind+" of the "+k.room+" "+k.dev)...)
		sig := make([]float64, SigDim)
		axpy(sig, embed.HashVector("anomaly:"+k.room+"|"+k.dev, SigDim), 1)
		feat = append(feat, sig...)
		feat = append(feat, make([]float64, SigDim)...)
		node := g.AddNode(graph.Node{Feature: feat, Space: graph.WordSpace})
		// Wire to every rule referencing the instance.
		for _, r := range members {
			touches := r.Trigger.Device == k.dev && r.Trigger.Room == k.room
			for _, a := range r.Actions {
				if a.Device == k.dev && a.Room == k.room {
					touches = true
				}
			}
			if touches {
				g.AddEdge(node, idx[r], rules.EnvMatch)
			}
		}
	}
	g.InvalidateCache()
}

// timestampsSupport reports whether some execution time is followed by a
// trigger match within the window.
func timestampsSupport(exec, trig []int64) bool {
	for _, te := range exec {
		for _, tt := range trig {
			if tt >= te && tt-te <= TriggerWindow {
				return true
			}
		}
	}
	return false
}

// OnlineSample couples an online graph with its ground truth for Table II:
// whether an attack was injected into the log it was fused from.
type OnlineSample struct {
	Graph    *graph.Graph
	Attacked bool
	Attack   eventlog.Attack // valid when Attacked
	Log      eventlog.Log
}

// Vulnerable reports the Table II ground truth: attacked logs and logs
// whose fused graph contains an inherent interaction vulnerability are
// positives.
func (s *OnlineSample) Vulnerable() bool {
	return s.Attacked || s.Graph.Label
}
