package mat

import (
	"math"
	"testing"
	"testing/quick"
)

// randSPD builds a random symmetric positive-definite matrix from a seed.
func randSPD(n int, seed int64) *Dense {
	b := NewDense(n, n)
	for i := range b.Data() {
		b.Data()[i] = math.Sin(float64(i)*1.37 + float64(seed))
	}
	spd := Mul(b.T(), b)
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n)) // ensure strict positive definiteness
	}
	return spd
}

func TestCholeskyReconstruction(t *testing.T) {
	a := randSPD(5, 3)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := Mul(l, l.T())
	if !recon.Equalish(a, 1e-9) {
		t.Fatalf("LLᵀ != A:\n%v\n%v", recon, a)
	}
}

func TestCholeskySingular(t *testing.T) {
	a := NewDense(3, 3) // zero matrix is not PD
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveSPDResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%6+6) % 6
		n += 2
		a := randSPD(n, seed)
		b := make([]float64, n)
		for i := range b {
			b[i] = math.Cos(float64(i) + float64(seed))
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		// Check A·x ≈ b.
		for i := 0; i < n; i++ {
			s := Dot(a.Row(i), x)
			if math.Abs(s-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveGauss(t *testing.T) {
	a := NewDenseData(3, 3, []float64{2, 1, -1, -3, -1, 2, -2, 1, 2})
	b := []float64{8, -11, -3}
	x, err := SolveGauss(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v want %v", x, want)
		}
	}
	// Inputs untouched.
	if a.At(0, 0) != 2 || b[0] != 8 {
		t.Fatal("SolveGauss must not modify inputs")
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := SolveGauss(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestWeightedLeastSquaresRecoversLine(t *testing.T) {
	// y = 3x1 - 2x2, uniform weights.
	n := 50
	x := NewDense(n, 2)
	y := make([]float64, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, math.Sin(float64(i)))
		x.Set(i, 1, math.Cos(float64(i)*0.7))
		y[i] = 3*x.At(i, 0) - 2*x.At(i, 1)
		w[i] = 1
	}
	coef, err := WeightedLeastSquares(x, y, w, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-3) > 1e-5 || math.Abs(coef[1]+2) > 1e-5 {
		t.Fatalf("coef = %v want [3 -2]", coef)
	}
}

func TestWeightedLeastSquaresRespectsWeights(t *testing.T) {
	// Two inconsistent points; the heavier one should dominate.
	x := NewDenseData(2, 1, []float64{1, 1})
	y := []float64{0, 10}
	coef, err := WeightedLeastSquares(x, y, []float64{1, 999}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if coef[0] < 9.9 {
		t.Fatalf("coef = %v, heavy point should dominate", coef)
	}
}

func TestPCAAlignsWithDominantDirection(t *testing.T) {
	// Points along direction (1,1) with small orthogonal noise.
	n := 100
	x := NewDense(n, 2)
	for i := 0; i < n; i++ {
		tt := float64(i) - float64(n)/2
		noise := 0.01 * math.Sin(float64(i)*13)
		x.Set(i, 0, tt+noise)
		x.Set(i, 1, tt-noise)
	}
	p := PCA(x, 1, 50)
	// Projected variance should be close to total variance.
	var proj, total float64
	for i := 0; i < n; i++ {
		proj += p.At(i, 0) * p.At(i, 0)
		total += x.At(i, 0)*x.At(i, 0) + x.At(i, 1)*x.At(i, 1)
	}
	// Mean was removed; compare magnitudes loosely.
	if proj < 0.95*total*0.5 {
		t.Fatalf("PCA captured too little variance: %v of %v", proj, total)
	}
}

func TestQuantileAndMedian(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if Median(v) != 3 {
		t.Fatalf("Median = %v", Median(v))
	}
	if Quantile(v, 0) != 1 || Quantile(v, 1) != 5 {
		t.Fatalf("extreme quantiles wrong")
	}
	if q := Quantile(v, 0.5); q != 3 {
		t.Fatalf("Quantile(0.5) = %v", q)
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if CosineSimilarity(a, b) != 0 {
		t.Fatal("orthogonal cosine")
	}
	if CosineSimilarity(a, a) != 1 {
		t.Fatal("self cosine")
	}
	if Dist2(a, b) != math.Sqrt2 {
		t.Fatalf("Dist2 = %v", Dist2(a, b))
	}
	if ArgMax([]float64{1, 5, 2}) != 1 || ArgMin([]float64{1, 5, -2}) != 2 {
		t.Fatal("argmax/argmin")
	}
	s := Softmax([]float64{1, 1, 1})
	for _, p := range s {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", s)
		}
	}
	if Sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0)")
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp")
	}
}

func TestSoftmaxStability(t *testing.T) {
	s := Softmax([]float64{1000, 1000, 999})
	var sum float64
	for _, p := range s {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatal("softmax overflow")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", sum)
	}
}
