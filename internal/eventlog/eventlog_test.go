package eventlog

import (
	"testing"
	"testing/quick"

	"fexiot/internal/rules"
)

// deployedRules builds a small coherent rule set for simulation tests.
func deployedRules() []*rules.Rule {
	mk := func(id string, trig rules.Condition, acts ...rules.Effect) *rules.Rule {
		return &rules.Rule{ID: id, Platform: rules.SmartThings, Trigger: trig,
			Actions: acts, Description: id}
	}
	return []*rules.Rule{
		mk("r1",
			rules.Condition{Device: "motion sensor", Room: "kitchen",
				Channel: rules.ChanMotion, State: "detected"},
			rules.Effect{Device: "light", Room: "kitchen", Verb: "turn on",
				Channel: rules.ChanPower, State: "on",
				Env: []rules.EnvDelta{{Channel: rules.ChanIlluminance, Sign: 1}}}),
		mk("r2",
			rules.Condition{Device: "light", Room: "kitchen",
				Channel: rules.ChanPower, State: "on"},
			rules.Effect{Device: "camera", Room: "kitchen", Verb: "turn on",
				Channel: rules.ChanPower, State: "on"}),
		mk("r3",
			rules.Condition{Device: "temperature sensor", Room: "bedroom",
				Channel: rules.ChanTemperature, State: "high"},
			rules.Effect{Device: "fan", Room: "bedroom", Verb: "start",
				Channel: rules.ChanPower, State: "running",
				Env: []rules.EnvDelta{{Channel: rules.ChanTemperature, Sign: -1}}}),
	}
}

func TestSimulatorProducesCausalChain(t *testing.T) {
	sim := NewSimulator(deployedRules(), 3)
	log := sim.Run(2000)
	if len(log) == 0 {
		t.Fatal("empty log")
	}
	// Motion happens spontaneously; r1 must fire and r2 must chain off it.
	fired := map[string]bool{}
	for _, e := range log {
		if e.RuleID != "" {
			fired[e.RuleID] = true
		}
	}
	if !fired["r1"] {
		t.Fatal("r1 never fired despite motion events")
	}
	if !fired["r2"] {
		t.Fatal("r2 never chained from r1's light-on action")
	}
	// Log is time ordered.
	for i := 1; i < len(log); i++ {
		if log[i].Time < log[i-1].Time {
			t.Fatal("log not time ordered")
		}
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	a := NewSimulator(deployedRules(), 7).Run(500)
	b := NewSimulator(deployedRules(), 7).Run(500)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestCleanRemovesErrorsAndRepeats(t *testing.T) {
	raw := Log{
		{Time: 1, Device: "light", Room: "kitchen", Channel: rules.ChanPower,
			Value: "on", Kind: KindSensor},
		{Time: 2, Device: "light", Room: "kitchen", Channel: rules.ChanPower,
			Value: "on", Kind: KindSensor}, // repeat
		{Time: 3, Device: "light", Room: "kitchen", Channel: rules.ChanPower,
			Value: "on", Err: true, Kind: KindError}, // error
		{Time: 4, Device: "light", Room: "kitchen", Channel: rules.ChanPower,
			Value: "off", Kind: KindSensor}, // change
	}
	cleaned := Clean(raw)
	if len(cleaned) != 2 {
		t.Fatalf("cleaned length %d want 2: %v", len(cleaned), cleaned)
	}
	if cleaned[0].Value != "on" || cleaned[1].Value != "off" {
		t.Fatalf("cleaned values wrong: %v", cleaned)
	}
}

func TestCleanConvertsNumericToLogical(t *testing.T) {
	var raw Log
	// Bimodal humidity history: low ~30, high ~70.
	for i := 0; i < 10; i++ {
		v := 30.0
		if i%2 == 1 {
			v = 70
		}
		raw = append(raw, Event{Time: int64(i), Device: "humidity sensor",
			Room: "bathroom", Channel: rules.ChanHumidity, Numeric: v,
			IsNumeric: true, Kind: KindSensor})
	}
	cleaned := Clean(raw)
	for _, e := range cleaned {
		if e.IsNumeric {
			t.Fatal("numeric reading survived cleaning")
		}
		if e.Value != "low" && e.Value != "high" {
			t.Fatalf("unexpected logical value %q", e.Value)
		}
	}
	// The paper's example: "humidity is 32" → low.
	found := false
	for _, e := range cleaned {
		if e.Value == "low" {
			found = true
		}
	}
	if !found {
		t.Fatal("no low readings after conversion")
	}
}

func TestCleanPropertyNoErrorsNoConsecutiveRepeats(t *testing.T) {
	f := func(seed int64) bool {
		sim := NewSimulator(deployedRules(), seed)
		cleaned := Clean(sim.Run(800))
		lastVal := map[string]string{}
		for _, e := range cleaned {
			if e.Err || e.IsNumeric {
				return false
			}
			k := e.Room + "|" + e.Device + "|" + e.Channel.String()
			if e.Kind == KindSensor && lastVal[k] == e.Value {
				return false
			}
			lastVal[k] = e.Value
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAttacksChangeTheLog(t *testing.T) {
	deployed := deployedRules()
	base := Clean(NewSimulator(deployed, 5).Run(1500))
	if len(base) < 10 {
		t.Fatalf("base log too small: %d", len(base))
	}
	for a := Attack(0); a < NumAttacks; a++ {
		attacked := Inject(base, a, deployed, 0.5, 11)
		same := len(attacked) == len(base)
		if same {
			for i := range attacked {
				if attacked[i] != base[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("attack %v left the log unchanged", a)
		}
	}
	// Losses and suppressions shrink; fakes grow.
	if len(Inject(base, EventLosses, deployed, 0.5, 3)) >= len(base) {
		t.Error("event losses should shrink the log")
	}
	if len(Inject(base, FakeEvents, deployed, 0.5, 3)) <= len(base) {
		t.Error("fake events should grow the log")
	}
}

func TestInjectPreservesOrdering(t *testing.T) {
	deployed := deployedRules()
	base := Clean(NewSimulator(deployed, 9).Run(1000))
	for a := Attack(0); a < NumAttacks; a++ {
		attacked := Inject(base, a, deployed, 0.7, 13)
		for i := 1; i < len(attacked); i++ {
			if attacked[i].Time < attacked[i-1].Time {
				t.Fatalf("attack %v broke time ordering", a)
			}
		}
	}
}

func TestInjectDoesNotMutateInput(t *testing.T) {
	deployed := deployedRules()
	base := Clean(NewSimulator(deployed, 15).Run(800))
	snapshot := append(Log(nil), base...)
	Inject(base, FakeCommands, deployed, 0.9, 1)
	Inject(base, EventLosses, deployed, 0.9, 2)
	for i := range base {
		if base[i] != snapshot[i] {
			t.Fatal("Inject mutated its input log")
		}
	}
}

func TestEventTypesRoundTrip(t *testing.T) {
	v := NewEventTypes()
	log := Clean(NewSimulator(deployedRules(), 21).Run(600))
	seq := v.Sequence(log, true)
	if len(seq) != len(log) {
		t.Fatal("sequence length mismatch")
	}
	for _, id := range seq {
		if id < 0 || id >= v.Size() {
			t.Fatalf("id %d out of range %d", id, v.Size())
		}
	}
	// Lookup of unseen event maps to sentinel.
	unseen := Event{Device: "never", Room: "seen", Value: "x"}
	seq2 := v.Sequence(Log{unseen}, false)
	if seq2[0] != v.Size() {
		t.Fatal("unseen event must map to the sentinel id")
	}
}

func TestStatusVector(t *testing.T) {
	log := Log{
		{Device: "light", Channel: rules.ChanPower, Value: "on", Kind: KindCommand},
		{Device: "door", Channel: rules.ChanContact, Value: "open", Kind: KindSensor},
	}
	v := StatusVector(log)
	if len(v) != 2*rules.NumChannels {
		t.Fatalf("vector length %d", len(v))
	}
	if v[int(rules.ChanPower)] != 1 { // "on" is positive
		t.Error("power positive count wrong")
	}
	if v[rules.NumChannels+int(rules.ChanPower)] != 1 { // command count
		t.Error("command count wrong")
	}
	if v[int(rules.ChanContact)] != 1 {
		t.Error("contact positive count wrong")
	}
}

func TestDeviceStates(t *testing.T) {
	log := Log{
		{Device: "light", Room: "kitchen", Value: "on"},
		{Device: "light", Room: "kitchen", Value: "off"},
		{Device: "fan", Room: "bedroom", Value: "running"},
	}
	states := DeviceStates(log)
	if states[Instance{"light", "kitchen"}] != "off" {
		t.Error("last state should win")
	}
	if states[Instance{"fan", "bedroom"}] != "running" {
		t.Error("fan state missing")
	}
}

func TestAttackStrings(t *testing.T) {
	for a := Attack(0); a < NumAttacks; a++ {
		if a.String() == "unknown" {
			t.Errorf("attack %d unnamed", a)
		}
	}
}
