package fusion

import (
	"strings"
	"testing"
	"testing/quick"

	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/graph"
	"fexiot/internal/rules"
	"fexiot/internal/vuln"
)

var testEnc = embed.NewEncoder(24, 32)

func testPool() []*rules.Rule {
	return MultiHomePool(3, 40, 25, nil)
}

func TestMultiHomePool(t *testing.T) {
	pool := testPool()
	if len(pool) != 40*25 {
		t.Fatalf("pool size %d", len(pool))
	}
	ids := map[string]bool{}
	platforms := map[rules.Platform]int{}
	for _, r := range pool {
		if ids[r.ID] {
			t.Fatalf("duplicate rule id %s", r.ID)
		}
		ids[r.ID] = true
		platforms[r.Platform]++
	}
	if len(platforms) < 4 {
		t.Fatalf("pool covers only %d platforms", len(platforms))
	}
	// Platform-restricted pool.
	p := rules.IFTTT
	ifttt := MultiHomePool(3, 10, 10, &p)
	for _, r := range ifttt {
		if r.Platform != rules.IFTTT {
			t.Fatal("restricted pool leaked other platforms")
		}
	}
}

func TestOfflineGraphWellFormed(t *testing.T) {
	pool := testPool()
	b := NewBuilder(5, testEnc)
	for i := 0; i < 30; i++ {
		g := b.OfflineSized(pool)
		if g.N() < 2 || g.N() > 50 {
			t.Fatalf("graph size %d out of [2,50]", g.N())
		}
		for _, e := range g.Edges {
			if e.From < 0 || e.From >= g.N() || e.To < 0 || e.To >= g.N() {
				t.Fatalf("edge out of range: %+v", e)
			}
			// Every edge must be backed by the oracle.
			if rules.RuleCanTrigger(g.Nodes[e.From].Rule, g.Nodes[e.To].Rule) == rules.NoMatch {
				t.Fatal("edge without oracle support")
			}
		}
		for _, n := range g.Nodes {
			if n.Rule == nil || len(n.Feature) == 0 {
				t.Fatal("node missing rule or feature")
			}
			wantDim := WordFeatureDim(testEnc)
			if n.Space == graph.SentenceSpace {
				wantDim = SentenceFeatureDim(testEnc)
			}
			if len(n.Feature) != wantDim {
				t.Fatalf("feature dim %d want %d", len(n.Feature), wantDim)
			}
		}
	}
}

func TestOfflineDeterministic(t *testing.T) {
	pool := testPool()
	a := NewBuilder(7, testEnc).OfflineSized(pool)
	b := NewBuilder(7, testEnc).OfflineSized(pool)
	if a.N() != b.N() || len(a.Edges) != len(b.Edges) || a.Label != b.Label {
		t.Fatal("builder not deterministic")
	}
}

func TestLabelsMatchDetectors(t *testing.T) {
	pool := testPool()
	b := NewBuilder(9, testEnc)
	for i := 0; i < 20; i++ {
		g := b.OfflineSized(pool)
		findings := vuln.Detect(g)
		if g.Label != (len(findings) > 0) {
			t.Fatal("label inconsistent with detectors")
		}
	}
}

func TestInjectedPatternsDetected(t *testing.T) {
	// Each injected pattern type must trigger its intended detector when
	// built standalone.
	wantTags := map[int]string{
		0: "condition_bypass",
		1: "condition_block",
		2: "action_revert",
		3: "action_loop",
		4: "action_conflict",
		5: "action_duplicate",
	}
	for kind, wantTag := range wantTags {
		b := NewBuilder(int64(kind)+13, testEnc)
		rs := b.injectPatternOf(kind, nil)
		g := &graph.Graph{}
		for _, r := range rs {
			feat, space := b.NodeFeature(r)
			g.AddNode(graph.Node{Rule: r, Feature: feat, Space: space})
		}
		for i, ri := range rs {
			for j, rj := range rs {
				if i != j {
					if k := rules.RuleCanTrigger(ri, rj); k != rules.NoMatch {
						g.AddEdge(i, j, k)
					}
				}
			}
		}
		vuln.Label(g)
		found := false
		for _, tag := range g.Tags {
			if tag == wantTag {
				found = true
			}
		}
		if !found {
			t.Errorf("pattern %d: tags %v missing %q", kind, g.Tags, wantTag)
		}
	}
}

func TestPairFeaturesShapeAndSeparation(t *testing.T) {
	pool := testPool()
	f := NewPairFeaturizer(testEnc, 16)
	ds := BuildPairDataset(f, pool, 60, 60, 7)
	if len(ds.X) != 120 || len(ds.Y) != 120 {
		t.Fatalf("dataset size %d/%d", len(ds.X), len(ds.Y))
	}
	dim := f.FeatureDim()
	for _, x := range ds.X {
		if len(x) != dim {
			t.Fatalf("feature dim %d want %d", len(x), dim)
		}
	}
	// Positives and negatives must differ in mean DTW-object similarity
	// (feature 1) — the core signal of §III-A1.
	var posMean, negMean float64
	var nPos, nNeg int
	for i, x := range ds.X {
		if ds.Y[i] == 1 {
			posMean += x[1]
			nPos++
		} else {
			negMean += x[1]
			nNeg++
		}
	}
	posMean /= float64(nPos)
	negMean /= float64(nNeg)
	if posMean <= negMean {
		t.Fatalf("correlated pairs should have higher object similarity: %v vs %v",
			posMean, negMean)
	}
}

func TestPoolIndexMatchesOracle(t *testing.T) {
	pool := testPool()[:300]
	ix := NewPoolIndex(pool)
	f := func(seed uint16) bool {
		anchor := pool[int(seed)%len(pool)]
		fwd := map[*rules.Rule]bool{}
		for _, r := range ix.Forward(anchor) {
			fwd[r] = true
		}
		bwd := map[*rules.Rule]bool{}
		for _, r := range ix.Backward(anchor) {
			bwd[r] = true
		}
		for _, r := range pool {
			if r == anchor {
				continue
			}
			if (rules.RuleCanTrigger(anchor, r) != rules.NoMatch) != fwd[r] {
				return false
			}
			if (rules.RuleCanTrigger(r, anchor) != rules.NoMatch) != bwd[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeFeatureSignatureCancellation(t *testing.T) {
	b := NewBuilder(3, testEnc)
	mk := func(state string) *rules.Rule {
		d := rules.CatalogByName()["light"]
		var eff rules.Effect
		for _, c := range d.Commands {
			if c.State == state {
				eff = rules.Effect{Device: "light", Room: "kitchen", Verb: c.Verb,
					Channel: c.Channel, State: c.State, Env: c.Env}
			}
		}
		r := &rules.Rule{ID: state, Platform: rules.IFTTT,
			Trigger: rules.Condition{Device: "motion sensor", Room: "kitchen",
				Channel: rules.ChanMotion, State: "detected"},
			Actions: []rules.Effect{eff}}
		r.Description = rules.Describe(rules.IFTTT, r.Trigger, r.Actions)
		return r
	}
	fOn, _ := b.NodeFeature(mk("on"))
	fOff, _ := b.NodeFeature(mk("off"))
	// The action-signature blocks must oppose: summing them cancels.
	start := testEnc.WordDim()
	var sumNorm, onNorm float64
	for i := start; i < start+SigDim; i++ {
		s := fOn[i] + fOff[i]
		sumNorm += s * s
		onNorm += fOn[i] * fOn[i]
	}
	if sumNorm > onNorm*0.5 {
		t.Fatalf("opposite actions should cancel in signature space: sum %v vs on %v",
			sumNorm, onNorm)
	}
}

func TestBuildOnlineFusesLogs(t *testing.T) {
	gen := rules.NewGenerator(3, rules.Archetypes()[4], "t")
	deployed := gen.RuleSet(14)
	log := eventlog.Clean(eventlog.NewSimulator(deployed, 7).Run(2000))
	b := NewBuilder(11, testEnc)
	g := b.BuildOnline(deployed, log)
	if !g.Online {
		t.Fatal("online flag not set")
	}
	if g.N() == 0 {
		t.Fatal("no active rules recovered from the log")
	}
	// Edges require both oracle support and timestamp support.
	for _, e := range g.Edges {
		if rules.RuleCanTrigger(g.Nodes[e.From].Rule, g.Nodes[e.To].Rule) == rules.NoMatch {
			t.Fatal("online edge without oracle support")
		}
	}
	// Empty log → empty graph.
	if b.BuildOnline(deployed, nil).N() != 0 {
		t.Fatal("empty log should produce empty graph")
	}
}

func TestDriftGraphsTagged(t *testing.T) {
	pool := testPool()
	b := NewBuilder(21, testEnc)
	for kind := DriftKind(0); kind < NumDriftKinds; kind++ {
		g := b.OfflineWithDrift(pool, kind, 3)
		found := false
		for _, tag := range g.Tags {
			if strings.HasPrefix(tag, "drift_") {
				found = true
			}
		}
		if !found {
			t.Fatalf("drift kind %d not tagged: %v", kind, g.Tags)
		}
	}
}

func TestOnlineSampleVulnerable(t *testing.T) {
	s := &OnlineSample{Graph: &graph.Graph{}}
	if s.Vulnerable() {
		t.Fatal("benign sample misreported")
	}
	s.Attacked = true
	if !s.Vulnerable() {
		t.Fatal("attacked sample must be vulnerable")
	}
	s2 := &OnlineSample{Graph: &graph.Graph{Label: true}}
	if !s2.Vulnerable() {
		t.Fatal("inherent vulnerability must count")
	}
}

func TestClassifierOraclePipeline(t *testing.T) {
	pool := testPool()
	f := NewPairFeaturizer(testEnc, 16)
	oracle := TrainCorrelationClassifier(f, pool, 150, 220, 7)
	prec, rec := EdgeAgreement(oracle.Oracle(), pool, 120, 11)
	// The classifier sees entity-stripped text, so it over-predicts across
	// rooms (precision suffers) but must recover most true correlations.
	if rec < 0.7 {
		t.Fatalf("classifier oracle recall %v too low", rec)
	}
	if prec <= 0.05 {
		t.Fatalf("classifier oracle precision %v is chance-level", prec)
	}
	// A builder driven by the classifier still produces usable graphs.
	b := NewBuilder(13, testEnc)
	b.Oracle = oracle.Oracle()
	g := b.Offline(pool, 10)
	if g.N() < 2 {
		t.Fatal("classifier-driven builder produced a degenerate graph")
	}
	// The ground-truth oracle agrees with itself perfectly.
	p0, r0 := EdgeAgreement(rules.RuleCanTrigger, pool, 120, 11)
	if p0 != 1 || r0 != 1 {
		t.Fatalf("ground-truth oracle self-agreement %v/%v", p0, r0)
	}
}
