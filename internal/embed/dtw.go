package embed

import (
	"math"

	"fexiot/internal/mat"
)

// DTWDistance computes the dynamic-time-warping distance between two
// sequences of embedding vectors using cosine distance (1 − cosine
// similarity) as the local cost. The paper uses DTW to compare verb-element
// and object-element sequences of different lengths (§III-A1 feature (i)).
func DTWDistance(a, b [][]float64) float64 {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return 0
	}
	if n == 0 || m == 0 {
		return float64(n + m) // maximal mismatch per unmatched element
	}
	const inf = math.MaxFloat64 / 4
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = inf
	}
	for i := 1; i <= n; i++ {
		cur[0] = inf
		for j := 1; j <= m; j++ {
			cost := 1 - mat.CosineSimilarity(a[i-1], b[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// DTWSimilarity converts the DTW distance into a (0,1] similarity score,
// normalised by the warped path's worst case.
func DTWSimilarity(a, b [][]float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	d := DTWDistance(a, b)
	longest := len(a)
	if len(b) > longest {
		longest = len(b)
	}
	// Local cosine cost is bounded by 2 per step; path length is bounded by
	// n+m, but normalising by the longer side keeps similar-length matches
	// comparable.
	return 1 / (1 + d/float64(longest))
}

// ElementSimilarity embeds two word-element lists and returns their DTW
// similarity. Used for both the verb-similarity and the object-similarity
// correlation features.
func (e *Encoder) ElementSimilarity(as, bs []string) float64 {
	av := make([][]float64, len(as))
	for i, w := range as {
		av[i] = e.Word(w)
	}
	bv := make([][]float64, len(bs))
	for i, w := range bs {
		bv[i] = e.Word(w)
	}
	return DTWSimilarity(av, bv)
}
