package embed

import (
	"math"
	"testing"
	"testing/quick"

	"fexiot/internal/mat"
)

func TestWordDeterminism(t *testing.T) {
	e1 := NewEncoder(64, 96)
	e2 := NewEncoder(64, 96)
	a := e1.Word("light")
	b := e2.Word("light")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embeddings must be deterministic across encoders")
		}
	}
}

func TestWordNormalised(t *testing.T) {
	e := NewEncoder(64, 96)
	for _, w := range []string{"light", "camera", "zzzunknown", "detect"} {
		n := mat.Norm2(e.Word(w))
		if math.Abs(n-1) > 1e-9 {
			t.Errorf("‖%s‖ = %v want 1", w, n)
		}
	}
}

func TestSemanticStructure(t *testing.T) {
	e := NewEncoder(128, 128)
	synSim := e.Similarity("light", "lamp")
	unrelSim := e.Similarity("light", "humidity")
	if synSim < 0.8 {
		t.Errorf("synonym similarity %v too low", synSim)
	}
	if synSim <= unrelSim+0.3 {
		t.Errorf("synonyms (%v) must be far closer than unrelated (%v)",
			synSim, unrelSim)
	}
	// Hypernym sharing: two appliances closer than appliance vs hazard.
	applSim := e.Similarity("heater", "fan")
	crossSim := e.Similarity("heater", "smoke")
	if applSim <= crossSim {
		t.Errorf("co-hyponyms (%v) should be closer than cross-category (%v)",
			applSim, crossSim)
	}
}

func TestSentenceEmbedding(t *testing.T) {
	e := NewEncoder(64, 96)
	s := e.Sentence("turn on the light")
	if len(s) != 96 {
		t.Fatalf("sentence dim %d", len(s))
	}
	if math.Abs(mat.Norm2(s)-1) > 1e-9 {
		t.Fatal("sentence embedding must be unit norm")
	}
	// Paraphrase closer than unrelated sentence.
	para := e.Sentence("switch on the lamp")
	unrel := e.Sentence("water leak detected in basement")
	simPara := mat.CosineSimilarity(s, para)
	simUnrel := mat.CosineSimilarity(s, unrel)
	if simPara <= simUnrel {
		t.Errorf("paraphrase sim %v should exceed unrelated sim %v",
			simPara, simUnrel)
	}
	// Word order matters (bigram term).
	rev := e.Sentence("light the on turn")
	if mat.CosineSimilarity(s, rev) >= 0.9999 {
		t.Error("word order should perturb the sentence embedding")
	}
	// Empty input yields the zero vector without panicking.
	if mat.Norm2(e.Sentence("the a an")) != 0 {
		t.Error("stopword-only sentence should embed to zero")
	}
}

func TestPairEmbeddingEq1(t *testing.T) {
	e := NewEncoder(32, 48)
	a := e.PairEmbedding("motion is detected", "turn lights on")
	if len(a) != 32 {
		t.Fatalf("pair dim %d", len(a))
	}
	// Eq. (1) is additive: pair = mean(trigger words) + mean(action words).
	trigOnly := e.PairEmbedding("motion is detected", "")
	actOnly := e.PairEmbedding("", "turn lights on")
	for i := range a {
		if math.Abs(a[i]-(trigOnly[i]+actOnly[i])) > 1e-9 {
			t.Fatal("pair embedding must decompose additively per Eq. (1)")
		}
	}
}

func TestKeyPhraseEmbedding(t *testing.T) {
	e := NewEncoder(32, 48)
	v := e.KeyPhraseEmbedding("Close the water valve when a water leak is detected")
	if mat.Norm2(v) == 0 {
		t.Fatal("key-phrase embedding is zero")
	}
	if len(v) != 32 {
		t.Fatalf("dim %d", len(v))
	}
	if mat.Norm2(e.KeyPhraseEmbedding("")) != 0 {
		t.Fatal("empty rule must embed to zero")
	}
}

func TestDTWIdenticalSequences(t *testing.T) {
	e := NewEncoder(32, 48)
	seq := []string{"turn", "open", "close"}
	if got := e.ElementSimilarity(seq, seq); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self DTW similarity = %v want 1", got)
	}
}

func TestDTWHandlesLengthMismatch(t *testing.T) {
	e := NewEncoder(32, 48)
	// Same verbs with a repetition: DTW should stay near 1.
	a := []string{"turn", "turn", "open"}
	b := []string{"turn", "open"}
	simRepeat := e.ElementSimilarity(a, b)
	simDiff := e.ElementSimilarity([]string{"turn", "open"}, []string{"humidity", "smoke"})
	if simRepeat <= simDiff {
		t.Fatalf("repeat sim %v should exceed different-word sim %v",
			simRepeat, simDiff)
	}
	if simRepeat < 0.8 {
		t.Fatalf("warped repeat similarity %v too low", simRepeat)
	}
}

func TestDTWEmptySequences(t *testing.T) {
	if DTWSimilarity(nil, nil) != 1 {
		t.Fatal("two empty sequences are identical")
	}
	e := NewEncoder(16, 16)
	if s := e.ElementSimilarity(nil, []string{"open"}); s <= 0 || s >= 1 {
		t.Fatalf("empty-vs-nonempty similarity %v out of (0,1)", s)
	}
}

func TestDTWSymmetryProperty(t *testing.T) {
	e := NewEncoder(16, 16)
	words := []string{"open", "close", "turn", "lock", "detect", "smoke"}
	f := func(ai, bi uint8) bool {
		a := []string{words[int(ai)%len(words)], words[int(ai/7)%len(words)]}
		b := []string{words[int(bi)%len(words)]}
		return math.Abs(e.ElementSimilarity(a, b)-e.ElementSimilarity(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHashGaussianMoments(t *testing.T) {
	v := hashGaussian("moment-test", 4096, 1.0)
	m := mat.Mean(v)
	sd := mat.Std(v)
	if math.Abs(m) > 0.08 {
		t.Fatalf("mean %v too far from 0", m)
	}
	if math.Abs(sd-1) > 0.08 {
		t.Fatalf("std %v too far from 1", sd)
	}
}

func TestWordCaching(t *testing.T) {
	e := NewEncoder(32, 48)
	a := e.Word("valve")
	b := e.Word("valve")
	if &a[0] != &b[0] {
		t.Fatal("cache should return the same slice")
	}
}
