package gnn

import (
	"fmt"

	"fexiot/internal/autodiff"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/rng"
	"fexiot/internal/rules"
)

// MAGNN is the heterogeneous graph model used on the five-platform dataset
// (Fu et al., WWW 2020). Faithful to the metapath-aggregation idea at the
// scale of interaction graphs, it (i) projects each node type — word-space
// nodes (300-d app descriptions) and sentence-space nodes (512-d voice
// commands) — into a shared latent space with type-specific transforms, and
// (ii) aggregates separately along the two relation types (direct
// device-state edges and environmental edges), which are the metapaths of
// the interaction schema, before combining them with a self transform.
type MAGNN struct {
	WordDim   int
	SentDim   int
	HiddenDim int
	OutDim    int
	NumLayers int

	params *autodiff.ParamSet
}

// NewMAGNN builds the model.
func NewMAGNN(wordDim, sentDim, hiddenDim, outDim int, seed int64) *MAGNN {
	m := &MAGNN{WordDim: wordDim, SentDim: sentDim, HiddenDim: hiddenDim,
		OutDim: outDim, NumLayers: 2}
	r := rng.New(seed)
	p := autodiff.NewParamSet()
	// Layer 0: type-specific input projections.
	p.Register("proj.word", 0, r.Glorot(wordDim, hiddenDim))
	p.Register("proj.sent", 0, r.Glorot(sentDim, hiddenDim))
	p.Register("proj.b", 0, mat.NewDense(1, hiddenDim))
	// Relation-aware aggregation layers.
	for l := 0; l < m.NumLayers; l++ {
		layer := l + 1
		p.Register(fmt.Sprintf("agg%d.self", l), layer, r.Glorot(hiddenDim, hiddenDim))
		p.Register(fmt.Sprintf("agg%d.direct", l), layer, r.Glorot(hiddenDim, hiddenDim))
		p.Register(fmt.Sprintf("agg%d.env", l), layer, r.Glorot(hiddenDim, hiddenDim))
		p.Register(fmt.Sprintf("agg%d.b", l), layer, mat.NewDense(1, hiddenDim))
	}
	p.Register("out.w", m.NumLayers+1, r.Glorot(2*hiddenDim, outDim))
	m.params = p
	return m
}

// Params returns the weight set.
func (m *MAGNN) Params() *autodiff.ParamSet { return m.params }

// EmbedDim returns the embedding width.
func (m *MAGNN) EmbedDim() int { return m.OutDim }

// Fresh returns a new MAGNN with the same shape.
func (m *MAGNN) Fresh(seed int64) Model {
	return NewMAGNN(m.WordDim, m.SentDim, m.HiddenDim, m.OutDim, seed)
}

// kindAdjacency builds the row-normalised undirected adjacency over edges of
// one relation kind (no self loops; the self transform handles identity).
func kindAdjacency(g *graph.Graph, kind rules.MatchKind) *mat.CSR {
	n := g.N()
	var is, js []int
	for _, e := range g.Edges {
		if e.Kind != kind {
			continue
		}
		is = append(is, e.From, e.To)
		js = append(js, e.To, e.From)
	}
	deg := make([]float64, n)
	for _, i := range is {
		deg[i]++
	}
	vs := make([]float64, len(is))
	for k := range is {
		vs[k] = 1 / deg[is[k]]
	}
	return mat.NewCSR(n, n, is, js, vs)
}

// Forward builds the embedding computation for one heterogeneous graph.
func (m *MAGNN) Forward(t *autodiff.Tape, b *autodiff.Binder, g *graph.Graph) *autodiff.Node {
	n := g.N()
	// Type-specific projections scattered into a shared latent matrix.
	var wordIdx, sentIdx []int
	for i, node := range g.Nodes {
		if node.Space == graph.SentenceSpace {
			sentIdx = append(sentIdx, i)
		} else {
			wordIdx = append(wordIdx, i)
		}
	}
	var h *autodiff.Node
	addSpace := func(idx []int, dim int, w string) {
		if len(idx) == 0 {
			return
		}
		sub := mat.NewDense(len(idx), dim)
		for k, i := range idx {
			row := sub.Row(k)
			f := g.Nodes[i].Feature
			for j := 0; j < dim && j < len(f); j++ {
				row[j] = f[j]
			}
		}
		proj := t.MatMul(t.Constant(sub), b.Node(w))
		scattered := t.ScatterRows(proj, idx, n)
		if h == nil {
			h = scattered
		} else {
			h = t.Add(h, scattered)
		}
	}
	addSpace(wordIdx, m.WordDim, "proj.word")
	addSpace(sentIdx, m.SentDim, "proj.sent")
	if h == nil {
		h = t.Constant(mat.NewDense(n, m.HiddenDim))
	} else {
		h = t.AddRowBroadcast(h, b.Node("proj.b"))
		h = t.ReLU(h)
	}

	aDirect := kindAdjacency(g, rules.DirectMatch)
	aEnv := kindAdjacency(g, rules.EnvMatch)
	for l := 0; l < m.NumLayers; l++ {
		self := t.MatMul(h, b.Node(fmt.Sprintf("agg%d.self", l)))
		dir := t.MatMul(t.SpMM(aDirect, h), b.Node(fmt.Sprintf("agg%d.direct", l)))
		env := t.MatMul(t.SpMM(aEnv, h), b.Node(fmt.Sprintf("agg%d.env", l)))
		sum := t.Add(t.Add(self, dir), env)
		sum = t.AddRowBroadcast(sum, b.Node(fmt.Sprintf("agg%d.b", l)))
		h = t.ReLU(sum)
	}
	pooled := t.ConcatCols(t.MeanRows(h), t.MaxRows(h))
	return t.MatMul(pooled, b.Node("out.w"))
}
