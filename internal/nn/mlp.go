// Package nn implements the neural models built on the autodiff tape: the
// multi-layer perceptron used both as a Fig. 3 correlation classifier and as
// sub-blocks of the GNNs, and the LSTM sequence model behind the DeepLog
// baseline of Table II.
package nn

import (
	"fmt"

	"fexiot/internal/autodiff"
	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// MLP is a fully connected network with ReLU hidden activations and a
// 2-way softmax head, trained with Adam on weighted cross-entropy.
type MLP struct {
	Layers []int // e.g. {in, 64, 32, 2}
	Epochs int
	LR     float64
	Batch  int
	Seed   int64
	// ClassWeights rebalances the loss; nil = uniform.
	ClassWeights []float64

	params *autodiff.ParamSet
}

// NewMLP creates an MLP; layers must start with the input dimension and end
// with 2 (binary logits).
func NewMLP(layers []int, epochs int, lr float64, seed int64) *MLP {
	return &MLP{Layers: layers, Epochs: epochs, LR: lr, Batch: 32, Seed: seed}
}

// initParams allocates weights with Glorot initialisation.
func (m *MLP) initParams() {
	r := rng.New(m.Seed)
	m.params = autodiff.NewParamSet()
	for l := 0; l+1 < len(m.Layers); l++ {
		m.params.Register(fmt.Sprintf("l%d.w", l), l, r.Glorot(m.Layers[l], m.Layers[l+1]))
		m.params.Register(fmt.Sprintf("l%d.b", l), l, mat.NewDense(1, m.Layers[l+1]))
	}
}

// forward builds the network on a tape for a batch matrix.
func (m *MLP) forward(t *autodiff.Tape, b *autodiff.Binder, x *autodiff.Node) *autodiff.Node {
	h := x
	for l := 0; l+1 < len(m.Layers); l++ {
		h = t.MatMul(h, b.Node(fmt.Sprintf("l%d.w", l)))
		h = t.AddRowBroadcast(h, b.Node(fmt.Sprintf("l%d.b", l)))
		if l+2 < len(m.Layers) {
			h = t.ReLU(h)
		}
	}
	return h
}

// Fit trains the network.
func (m *MLP) Fit(x [][]float64, y []int) {
	if len(x) == 0 {
		return
	}
	if m.Layers[0] != len(x[0]) {
		panic(fmt.Sprintf("nn: MLP input dim %d, data dim %d", m.Layers[0], len(x[0])))
	}
	m.initParams()
	opt := autodiff.NewAdam(m.LR)
	r := rng.New(m.Seed + 7)
	n := len(x)
	batch := m.Batch
	if batch > n {
		batch = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// One tape, binder and batch buffer serve every step; Reset+Rebind per
	// batch recycles the pass's nodes and matrix backings (the gradients
	// are consumed by Step before the next Reset invalidates them).
	tape := autodiff.NewTape()
	binder := autodiff.Bind(tape, m.params)
	var bx *mat.Dense
	by := make([]int, batch)
	for e := 0; e < m.Epochs; e++ {
		r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			if bx == nil || bx.Rows() != end-start {
				bx = mat.NewDense(end-start, m.Layers[0])
			}
			by = by[:end-start]
			for i := start; i < end; i++ {
				bx.SetRow(i-start, x[order[i]])
				by[i-start] = y[order[i]]
			}
			tape.Reset()
			binder.Rebind(tape, m.params)
			logits := m.forward(tape, binder, tape.Constant(bx))
			loss := tape.SoftmaxCrossEntropy(logits, by, m.ClassWeights)
			tape.Backward(loss)
			grads := binder.Grads()
			autodiff.ClipGrads(grads, 5)
			opt.Step(m.params, grads)
		}
	}
}

// Logits evaluates the network on one sample.
func (m *MLP) Logits(q []float64) []float64 {
	if m.params == nil {
		return []float64{0, 0}
	}
	s := borrow(m.params)
	defer s.release()
	x := mat.NewDense(1, len(q))
	x.SetRow(0, q)
	out := m.forward(s.tape, s.binder, s.tape.Constant(x))
	return append([]float64(nil), out.Value.Row(0)...)
}

// Score returns the positive-class probability.
func (m *MLP) Score(q []float64) float64 {
	return mat.Softmax(m.Logits(q))[1]
}

// Predict thresholds Score at 0.5.
func (m *MLP) Predict(q []float64) int {
	if m.Score(q) >= 0.5 {
		return 1
	}
	return 0
}
