package chaos_test

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fexiot"
	"fexiot/internal/autodiff"
	"fexiot/internal/chaos"
	"fexiot/internal/fedproto"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
	"fexiot/internal/supervise"
)

// The scripted-federation helpers mirror fedproto's in-package test kit:
// a deterministic two-layer model whose FedAvg rounds have a closed form.

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func scriptParams() *autodiff.ParamSet {
	p := autodiff.NewParamSet()
	p.Register("l0.w", 0, mat.NewDenseData(1, 2, []float64{1, 2}))
	p.Register("l1.w", 1, mat.NewDenseData(1, 2, []float64{3, 4}))
	return p
}

func addDelta(p *autodiff.ParamSet, d float64) {
	for _, name := range p.Names() {
		m := p.Get(name)
		for i := range m.Data() {
			m.Data()[i] += d
		}
	}
}

func zeroNorms(p *autodiff.ParamSet) map[int]float64 {
	out := map[int]float64{}
	for l := 0; l < p.NumLayers(); l++ {
		out[l] = 0
	}
	return out
}

// TestSoakFederationSurvivesScheduledChaos is the cross-layer soak e2e: a
// seeded chaos plan kills one client's link mid-federation, hard-stops the
// checkpointing server after a few rounds, bit-flips the latest snapshot
// on disk, and restarts the server — while, on the serving side, a
// supervised republisher takes a scheduled panic. The run must end with
// the federation complete, all clients on identical models, the
// republisher restarted at least once, and /healthz + /readyz live.
func TestSoakFederationSurvivesScheduledChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short")
	}
	const (
		nClients = 3
		rounds   = 5
		seed     = 1234
	)
	plan := chaos.NewPlan(seed)
	// Seeded schedule: which client loses its link, and after which round
	// the server is killed. Drawn from the plan so a failing run replays
	// from the seed alone.
	victim := plan.Intn(nClients)
	killAfterRound := 2 + plan.Intn(2) // 2 or 3 closed rounds

	ckpt := filepath.Join(t.TempDir(), "soak.ckpt")
	addr := freeAddr(t)
	cfg := fedproto.ServerConfig{
		Addr: addr, Clients: nClients, Rounds: rounds, NumLayers: 2,
		Quorum: 0.5, RoundTimeout: 3 * time.Second,
		Eps1: 0.4, Eps2: 0.95,
		CheckpointPath: ckpt, CheckpointEvery: 1,
	}

	// --- serving side: a trained system with a supervised republisher that
	// panics once on a scheduled call and must be restarted.
	sysOpts := fexiot.DefaultOptions()
	sysOpts.Seed, sysOpts.WordDim, sysOpts.SentenceDim = seed, 24, 32
	sysOpts.Hidden, sysOpts.EmbedDim = 12, 8
	sysOpts.Metrics = obs.NewRegistry()
	sys, err := fexiot.New(sysOpts)
	if err != nil {
		t.Fatal(err)
	}
	var train []*fexiot.Graph
	for home := 0; home < 3; home++ {
		deployed := fexiot.GenerateHome(fexiot.ArchetypeNames()[home%2], 14, seed+int64(home))
		train = append(train, sys.BuildGraph(deployed))
	}
	sys.TrainCentral(train, 1, 30)

	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	srv, err := fexiot.Serve(sctx, sys, fexiot.ServeOptions{Addr: "127.0.0.1:0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	crash := chaos.PanicOnCall(2, "republisher sabotage")
	sup := supervise.New(supervise.Options{
		Policy: supervise.Policy{Backoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Seed: seed},
	})
	srv.Health().AddLiveness("republisher", sup.Check)
	republished := make(chan struct{}, 16)
	sup.Go(sctx, "republisher", func(ctx context.Context) error {
		t := time.NewTicker(40 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return nil
			case <-t.C:
				crash() // scheduled panic on the 2nd tick, once
				sys.TrainCentral(train, 1, 10)
				select {
				case republished <- struct{}{}:
				default:
				}
			}
		}
	})

	// --- federation side.
	srv1 := fedproto.NewServer(cfg)
	done1 := make(chan error, 1)
	go func() { _, err := srv1.Run(context.Background()); done1 <- err }()

	params := make([]*autodiff.ParamSet, nClients)
	errs := make([]error, nClients)
	var conns sync.Map // victim's live fault conns
	var wg sync.WaitGroup
	for id := 0; id < nClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := scriptParams()
			params[id] = p
			ccfg := fedproto.ClientConfig{
				Addr: addr, ID: id, DataSize: 10,
				InitialBackoff: 20 * time.Millisecond,
				MaxBackoff:     100 * time.Millisecond,
				MaxAttempts:    300,
				OpTimeout:      3 * time.Second,
				Seed:           int64(id),
			}
			if id == victim {
				ccfg.Dial = func(a string) (net.Conn, error) {
					raw, err := net.Dial("tcp", a)
					if err != nil {
						return nil, err
					}
					fc := chaos.NewConn(raw)
					conns.Store(fc, struct{}{})
					return fc, nil
				}
			}
			_, errs[id] = fedproto.RunClientSession(context.Background(), ccfg, p,
				func(round int) map[int]float64 {
					time.Sleep(15 * time.Millisecond)
					addDelta(p, float64(id+1)*0.1)
					return zeroNorms(p)
				})
		}(id)
	}

	waitRounds := func(s *fedproto.Server, n int) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for s.Stats().RoundsCompleted < n {
			if time.Now().After(deadline) {
				t.Fatalf("federation never reached round %d", n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Chaos event 1: yank the victim's link mid-federation; the session
	// layer must reconnect and resync.
	waitRounds(srv1, 1)
	conns.Range(func(k, _ any) bool {
		k.(*chaos.Conn).Kill()
		return true
	})

	// Chaos event 2: hard-kill the server after the scheduled round count.
	waitRounds(srv1, killAfterRound)
	srv1.Stop()
	select {
	case <-done1:
	case <-time.After(10 * time.Second):
		t.Fatal("stopped server did not return")
	}

	// Chaos event 3: corrupt the latest checkpoint. The restart must roll
	// back to .prev and still finish the federation.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := fedproto.NewServer(cfg)
	done2 := make(chan error, 1)
	go func() { _, err := srv2.Run(context.Background()); done2 <- err }()

	wg.Wait()
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("resumed server: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("resumed server never finished")
	}
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d session: %v", id, err)
		}
	}

	// Every client converged to the same model despite the kill, crash and
	// corruption.
	ref := params[0].Flatten()
	for id := 1; id < nClients; id++ {
		got := params[id].Flatten()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("client %d diverged at element %d: %v vs %v", id, i, got[i], ref[i])
			}
		}
	}

	// The republisher took its scheduled panic, was restarted, and kept
	// publishing afterwards.
	select {
	case <-republished:
	case <-time.After(10 * time.Second):
		t.Fatal("republisher never published after its scheduled panic")
	}
	if got := sup.Restarts("republisher"); got < 1 {
		t.Fatalf("republisher restarts = %d, want ≥ 1", got)
	}

	// The serving plane is still alive and ready.
	base := "http://" + srv.Addr()
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + probe)
		if err != nil {
			t.Fatalf("%s: %v", probe, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d (%s), want 200 after the soak", probe, resp.StatusCode, body)
		}
		var parsed map[string]string
		if err := json.Unmarshal(body, &parsed); err != nil || parsed["status"] != "ok" {
			t.Fatalf("%s body = %s", probe, body)
		}
	}
	scancel()
	sup.Wait()
}
