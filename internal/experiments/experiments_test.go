package experiments

import (
	"strings"
	"testing"

	"fexiot/internal/datasets"
)

// tinySetup keeps experiment smoke tests fast.
func tinySetup() Setup {
	s := DefaultSetup()
	s.Scale = datasets.Scale{
		Name:             "tiny",
		IFTTTLabeled:     90,
		IFTTTVulnerable:  22,
		IFTTTUnlabeled:   40,
		HeteroLabeled:    90,
		HeteroVulnerable: 27,
		HeteroUnlabeled:  40,
		OnlineGraphs:     16,
		Homes:            25,
		RulesPerHome:     20,
		WordDim:          24,
		SentenceDim:      32,
	}
	s.Rounds = 2
	s.PairsPerRound = 30
	s.Hidden = 10
	s.EmbedDim = 6
	return s
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig3", "fig4", "fig5", "fig6", "table2",
		"fig7", "fig8", "fig9", "table3", "chaos", "poison", "ablation-layerwise",
		"ablation-contrastive", "ablation-beam", "ablation-mad"}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, err := Run("nope", tinySetup()); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestTableISmoke(t *testing.T) {
	out := TableI(tinySetup()).String()
	if !strings.Contains(out, "IFTTT") || !strings.Contains(out, "Hetero") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if !strings.Contains(out, "90") {
		t.Fatalf("labeled count missing:\n%s", out)
	}
}

func TestFig3Smoke(t *testing.T) {
	s := tinySetup()
	out := FigureIII(s).String()
	for _, name := range []string{"MLP", "RandomForest", "KNN", "GradientBoost"} {
		if !strings.Contains(out, name) {
			t.Fatalf("classifier %s missing:\n%s", name, out)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	s := tinySetup()
	out := FigureIV(s, "GIN", []float64{1}).String()
	for _, name := range []string{"FexIoT", "GCFL+", "FMTL", "FedAvg", "Client"} {
		if !strings.Contains(out, name) {
			t.Fatalf("algorithm %s missing:\n%s", name, out)
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	s := tinySetup()
	out := FigureVII(s, []int{4}).String()
	if !strings.Contains(out, "saving") {
		t.Fatalf("saving column missing:\n%s", out)
	}
}

func TestTableIISmoke(t *testing.T) {
	s := tinySetup()
	out := TableII(s).String()
	for _, name := range []string{"HAWatcher", "DeepLog", "IsolationForest", "FexIoT"} {
		if !strings.Contains(out, name) {
			t.Fatalf("system %s missing:\n%s", name, out)
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	s := tinySetup()
	out := FigureIX(s, 3).String()
	for _, name := range []string{"FexIoT", "SubgraphX", "MCTS_GNN"} {
		if !strings.Contains(out, name) {
			t.Fatalf("method %s missing:\n%s", name, out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.Add("x", "y")
	out := tb.String()
	if !strings.Contains(out, "=== T ===") || !strings.Contains(out, "x") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}

func TestFig5Smoke(t *testing.T) {
	s := tinySetup()
	out := FigureV(s, []int{4}).String()
	if !strings.Contains(out, "IFTTT") || !strings.Contains(out, "Median") {
		t.Fatalf("fig5 output malformed:\n%s", out)
	}
}

func TestFig8Smoke(t *testing.T) {
	s := tinySetup()
	out := FigureVIII(s)
	if !strings.Contains(out, "Fig. 8") {
		t.Fatalf("fig8 output malformed:\n%s", out)
	}
}

func TestTableIIISmoke(t *testing.T) {
	s := tinySetup()
	out := TableIII(s).String()
	if !strings.Contains(out, "Model Size") || !strings.Contains(out, "IFTTT") {
		t.Fatalf("table3 output malformed:\n%s", out)
	}
}

func TestAblationSmokes(t *testing.T) {
	s := tinySetup()
	if out := AblationBeam(s).String(); !strings.Contains(out, "Beam") {
		t.Fatalf("beam ablation malformed:\n%s", out)
	}
	if out := AblationMAD(s).String(); !strings.Contains(out, "T_M") {
		t.Fatalf("MAD ablation malformed:\n%s", out)
	}
	if out := AblationContrastive(s).String(); !strings.Contains(out, "contrastive") {
		t.Fatalf("contrastive ablation malformed:\n%s", out)
	}
}

// TestPoisonRobustnessPinned pins the acceptance bar of the robustness PR:
// with 8 clients of which 2 run the scale-10× attack, trimmed mean, median
// and Krum hold honest-client F1 within 5 points of their own attack-free
// baseline, while plain FedAvg degrades measurably. Sign-flip is tabled as
// the documented limitation — flipped near-zero coordinates hide inside the
// honest update variance, so every aggregator (robust or not) slows down
// about equally; the pinned bar for it is only "no collapse".
func TestPoisonRobustnessPinned(t *testing.T) {
	s := tinySetup()
	// 8-way splits of the tiny dataset leave 2-3 test graphs per client —
	// F1 would be split noise. Give the poisoning scenario enough labelled
	// graphs and training for stable per-client baselines (clean FedAvg
	// lands near 0.64 here; everything is seeded, so reruns reproduce it).
	s.Scale.IFTTTLabeled = 360
	s.Scale.IFTTTVulnerable = 110
	s.Hidden = 16
	s.EmbedDim = 8
	s.Rounds = 8
	s.PairsPerRound = 120
	tbl, res := PoisonSweep(s, []string{"none", "sign-flip", "scale"},
		[]string{"fedavg", "trimmed", "median", "krum"}, 8, 2)
	t.Logf("\n%s", tbl.String())
	for _, agg := range []string{"trimmed", "median", "krum"} {
		clean := res.Cell("none", agg)
		if got := res.Cell("scale", agg); got < clean-0.05 {
			t.Errorf("%s under scale-10: F1 %.3f dropped more than 5 points below clean %.3f",
				agg, got, clean)
		}
		if got := res.Cell("sign-flip", agg); got < 0.25 {
			t.Errorf("%s under sign-flip collapsed: F1 %.3f", agg, got)
		}
	}
	clean := res.Cell("none", "fedavg")
	if got := res.Cell("scale", "fedavg"); got > clean-0.10 {
		t.Errorf("fedavg under scale-10: F1 %.3f should degrade measurably below clean %.3f",
			got, clean)
	}
}

// TestChaosSmoke runs the fault-injection federation demo at test scale and
// checks the invariants that must hold regardless of scheduling: the server
// finishes every round on the surviving quorum and the killed client is
// evicted exactly once.
func TestChaosSmoke(t *testing.T) {
	out := ChaosFederation(tinySetup()).String()
	for _, want := range []string{"server", "completed", "rounds completed", "4",
		"evicted", "1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, out)
		}
	}
}
