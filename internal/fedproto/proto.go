// Package fedproto implements a real wire protocol for FexIoT federated
// training: clients connect to a server over TCP, exchange gob-encoded
// layer payloads, and the server runs the same layer-wise clustering
// aggregation as the in-process simulator. The communication costs of
// Fig. 7 can therefore be measured on actual serialized bytes rather than
// estimated parameter counts.
package fedproto

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/fedproto/codec"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
)

// MsgKind tags protocol messages.
type MsgKind int

// Protocol message kinds.
const (
	MsgHello  MsgKind = iota // client → server: join with dataset size
	MsgUpdate                // client → server: layer payloads after local training
	MsgModel                 // server → client: aggregated layer payloads
	MsgDone                  // server → client: training finished
)

// LayerPayload carries one layer's parameters on the wire. Exactly one of
// Data and Enc is populated: Data holds dense float64 tensors (the raw64
// legacy format, and every server→client model), Enc holds codec-encoded
// tensors on a compact MsgUpdate (decodeUpdate reconstructs Data from them
// before anything downstream looks at the payload).
type LayerPayload struct {
	Layer  int
	Names  []string
	Shapes [][2]int
	Data   [][]float64
	// UpdateNorm is ‖ΔW_l‖ of the client's last local round, used by the
	// server's clustering gate without shipping the previous weights.
	UpdateNorm float64
	// Enc carries the codec-encoded tensors of a non-raw64 update, one per
	// name, in Names order.
	Enc []codec.Tensor
}

// Message is the single wire envelope. The codec fields gob-encode to
// nothing at their zero values, so raw64 traffic stays byte-compatible
// with pre-codec peers in both directions.
type Message struct {
	Kind     MsgKind
	ClientID int
	DataSize int // |G_c| for FedAvg weighting (MsgHello)
	Round    int
	Final    bool           // set on the last MsgModel of a session
	Layers   []LayerPayload // MsgUpdate / MsgModel
	// Codecs (MsgHello) advertises the update schemes the client can
	// encode, in preference order; absent for pre-codec clients.
	Codecs []string
	// Codec names the scheme: on the sync MsgModel it is the server's
	// assignment for the session's updates, on a MsgUpdate it declares how
	// the payloads are encoded (empty = raw64).
	Codec string
	// Delta marks MsgUpdate payloads as element-wise deltas against the
	// model snapshot BaseSeq names.
	Delta bool
	// ModelSeq (MsgModel) identifies this model snapshot session-uniquely;
	// BaseSeq (MsgUpdate) echoes the stamp of the model a delta update was
	// encoded against.
	ModelSeq uint64
	BaseSeq  uint64
}

// EncodeLayers extracts the given layers of a ParamSet into payloads.
func EncodeLayers(p *autodiff.ParamSet, layers []int, updates map[int]float64) []LayerPayload {
	var out []LayerPayload
	for _, l := range layers {
		pl := LayerPayload{Layer: l, UpdateNorm: updates[l]}
		for _, name := range p.LayerNames(l) {
			m := p.Get(name)
			r, c := m.Dims()
			pl.Names = append(pl.Names, name)
			pl.Shapes = append(pl.Shapes, [2]int{r, c})
			pl.Data = append(pl.Data, append([]float64(nil), m.Data()...))
		}
		out = append(out, pl)
	}
	return out
}

// ApplyLayers writes payloads back into a ParamSet.
func ApplyLayers(p *autodiff.ParamSet, layers []LayerPayload) error {
	for _, pl := range layers {
		for i, name := range pl.Names {
			m := p.Get(name)
			r, c := m.Dims()
			if pl.Shapes[i] != [2]int{r, c} {
				return fmt.Errorf("fedproto: %s shape %v want %dx%d",
					name, pl.Shapes[i], r, c)
			}
			copy(m.Data(), pl.Data[i])
		}
	}
	return nil
}

// countingConn wraps a connection and tallies transferred bytes, mirroring
// each tally into the (possibly nil) observability counters installed by
// Conn.Instrument. The tallies are atomics: Read and Write are the
// per-syscall hot path, and InBytes/OutBytes readers (metrics scrapes,
// per-update wire-byte deltas) must never contend with a blocked decode.
type countingConn struct {
	net.Conn
	pc *Conn
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.pc.inBytes.Add(int64(n))
	c.pc.obsIn.Load().Add(int64(n)) // nil-safe
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.pc.outBytes.Add(int64(n))
	c.pc.obsOut.Load().Add(int64(n)) // nil-safe
	return n, err
}

// Conn is a counted, gob-framed protocol connection.
type Conn struct {
	enc *gob.Encoder
	dec *gob.Decoder
	raw net.Conn

	sendMu sync.Mutex // serialises Send: gob encoders are not goroutine-safe

	inBytes, outBytes atomic.Int64
	obsIn, obsOut     atomic.Pointer[obs.Counter]

	mu         sync.Mutex
	opDeadline time.Duration
	// readArmed/writeArmed record that the deadline currently on the socket
	// was armed by Recv/Send itself (not by an explicit SetReadDeadline /
	// SetWriteDeadline caller), so the next op-deadline-free call knows to
	// clear it instead of letting it poison a blocking read or write.
	readArmed, writeArmed bool
}

// Wrap builds a protocol connection over a raw socket.
func Wrap(c net.Conn) *Conn {
	pc := &Conn{raw: c}
	counted := countingConn{Conn: c, pc: pc}
	pc.enc = gob.NewEncoder(counted)
	pc.dec = gob.NewDecoder(counted)
	return pc
}

// Instrument mirrors this connection's byte tallies into observability
// counters (either may be nil). The server installs its bytes_received /
// bytes_sent counters here at admission so per-connection accounting and
// the scrapeable totals stay in lockstep.
func (c *Conn) Instrument(in, out *obs.Counter) {
	c.obsIn.Store(in)
	c.obsOut.Store(out)
}

// armWrite arms the socket write deadline for one Send when a per-op
// deadline is configured — and, crucially, clears a deadline a previous
// Send armed when it no longer is: after SetOpDeadline(0) a stale deadline
// must not fail a later blocking Send with a spurious timeout. Deadlines
// armed directly via SetWriteDeadline are the caller's to manage and are
// left alone.
func (c *Conn) armWrite() {
	c.mu.Lock()
	d := c.opDeadline
	wasArmed := c.writeArmed
	c.writeArmed = d > 0
	c.mu.Unlock()
	if d > 0 {
		c.raw.SetWriteDeadline(time.Now().Add(d))
	} else if wasArmed {
		c.raw.SetWriteDeadline(time.Time{})
	}
}

// armRead is armWrite for the read side.
func (c *Conn) armRead() {
	c.mu.Lock()
	d := c.opDeadline
	wasArmed := c.readArmed
	c.readArmed = d > 0
	c.mu.Unlock()
	if d > 0 {
		c.raw.SetReadDeadline(time.Now().Add(d))
	} else if wasArmed {
		c.raw.SetReadDeadline(time.Time{})
	}
}

// Send writes one message.
func (c *Conn) Send(m *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.armWrite()
	return c.enc.Encode(m)
}

// Recv reads one message.
func (c *Conn) Recv() (*Message, error) {
	c.armRead()
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	return &m, nil
}

// SetOpDeadline makes every subsequent Send and Recv arm a fresh deadline
// of d on the socket (zero disables). Client sessions use it so a server
// that silently evicts them cannot park them in Recv forever.
func (c *Conn) SetOpDeadline(d time.Duration) {
	c.mu.Lock()
	c.opDeadline = d
	c.mu.Unlock()
}

// OpDeadline reports the per-operation deadline installed by SetOpDeadline.
func (c *Conn) OpDeadline() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opDeadline
}

// Close closes the underlying socket.
func (c *Conn) Close() error { return c.raw.Close() }

// SetReadDeadline bounds the next Recv; a zero time clears the deadline.
// A Recv past the deadline fails with a net timeout error. The caller owns
// a deadline set this way: Recv will not clear it even with a zero op
// deadline (the server's round-timeout pattern depends on that).
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readArmed = false
	c.mu.Unlock()
	return c.raw.SetReadDeadline(t)
}

// SetWriteDeadline bounds the next Send; a zero time clears the deadline.
// As with SetReadDeadline, the caller owns it.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeArmed = false
	c.mu.Unlock()
	return c.raw.SetWriteDeadline(t)
}

// Bytes reports (received, sent) byte counts.
func (c *Conn) Bytes() (in, out int64) {
	return c.inBytes.Load(), c.outBytes.Load()
}

// InBytes reports bytes received so far. The server reads it around each
// Recv to measure one update's real wire size.
func (c *Conn) InBytes() int64 { return c.inBytes.Load() }

// ValidateUpdate checks that a remote MsgUpdate is well-formed before any
// payload is indexed: the right kind, exactly one payload per model layer
// in ascending layer-id order, and internally consistent
// names/shapes/data. Remote input that fails any check is rejected with an
// error wrapping ErrMalformedUpdate — a short, shuffled or padded update
// must never panic the server.
func ValidateUpdate(m *Message, numLayers int) error {
	if m.Kind != MsgUpdate {
		return fmt.Errorf("%w: message kind %d, want MsgUpdate", ErrMalformedUpdate, m.Kind)
	}
	if len(m.Layers) != numLayers {
		return fmt.Errorf("%w: %d layer payloads, want %d", ErrMalformedUpdate, len(m.Layers), numLayers)
	}
	for l, pl := range m.Layers {
		if pl.Layer != l {
			return fmt.Errorf("%w: payload %d carries layer id %d", ErrMalformedUpdate, l, pl.Layer)
		}
		if len(pl.Names) != len(pl.Shapes) || len(pl.Names) != len(pl.Data) {
			return fmt.Errorf("%w: layer %d has %d names, %d shapes, %d tensors",
				ErrMalformedUpdate, l, len(pl.Names), len(pl.Shapes), len(pl.Data))
		}
		for i, sh := range pl.Shapes {
			if sh[0] < 0 || sh[1] < 0 || len(pl.Data[i]) != sh[0]*sh[1] {
				return fmt.Errorf("%w: layer %d tensor %q has %d values, want %dx%d",
					ErrMalformedUpdate, l, pl.Names[i], len(pl.Data[i]), sh[0], sh[1])
			}
		}
	}
	return nil
}

// CheckFiniteUpdate rejects updates carrying NaN or ±Inf weights with an
// error wrapping ErrNonFiniteUpdate. It runs after ValidateUpdate on every
// remote update — one diverged client must never reach the aggregator,
// where a single non-finite coordinate poisons the global model. The scan
// is mat.CheckFinite per tensor plus the reported update norm.
func CheckFiniteUpdate(m *Message) error {
	for l, pl := range m.Layers {
		if !mat.AllFinite([]float64{pl.UpdateNorm}) {
			return fmt.Errorf("%w: layer %d update norm is %v", ErrNonFiniteUpdate, l, pl.UpdateNorm)
		}
		for i, d := range pl.Data {
			if j := mat.CheckFinite(d); j >= 0 {
				return fmt.Errorf("%w: layer %d tensor %q element %d is %v",
					ErrNonFiniteUpdate, l, pl.Names[i], j, d[j])
			}
		}
	}
	return nil
}

// LayerNorms computes per-layer update norms between two snapshots.
func LayerNorms(before, after *autodiff.ParamSet) map[int]float64 {
	out := map[int]float64{}
	diff := after.Sub(before)
	for l := 0; l < after.NumLayers(); l++ {
		out[l] = mat.Norm2(diff.FlattenLayer(l))
	}
	return out
}
