package rules

// Device describes one kind of smart-home device: what it senses, what it
// can be commanded to do, and the environmental side effects of each
// command. The catalog below is the generative device model behind the
// synthetic platform corpora.
type Device struct {
	Name     string   // canonical name used in rule sentences
	Aliases  []string // alternative surface forms
	Security bool     // security-sensitive (locks, doors, cameras, alarms)

	// Sensing: a sensor observes SenseChannel and reports SenseStates.
	SenseChannel Channel
	SenseStates  []string

	// Actuation: an actuator accepts commands; each command sets the
	// device's own state channel and optionally perturbs the environment.
	Commands []Command
}

// Command is one actuation a device supports.
type Command struct {
	Verb      string     // natural language verb phrase, e.g. "turn on"
	State     string     // resulting device state, e.g. "on"
	Channel   Channel    // the device-state channel the command writes
	Env       []EnvDelta // environmental side effects
	Sensitive bool       // security-sensitive action (unlock, disarm, open)
}

// IsSensor reports whether the device can appear in trigger conditions via
// its own sensing channel.
func (d *Device) IsSensor() bool { return d.SenseChannel != ChanNone }

// IsActuator reports whether the device accepts commands.
func (d *Device) IsActuator() bool { return len(d.Commands) > 0 }

// Catalog returns the smart-home device catalog. The slice is freshly
// allocated; callers may reorder it.
func Catalog() []Device {
	return []Device{
		// --- Sensors ---------------------------------------------------
		{Name: "motion sensor", SenseChannel: ChanMotion,
			SenseStates: []string{"detected", "clear"}},
		{Name: "smoke detector", Aliases: []string{"smoke alarm"},
			SenseChannel: ChanSmoke, SenseStates: []string{"detected", "clear"}},
		{Name: "co detector", Aliases: []string{"carbon monoxide detector"},
			SenseChannel: ChanCO, SenseStates: []string{"detected", "clear"}},
		{Name: "temperature sensor", Aliases: []string{"thermometer"},
			SenseChannel: ChanTemperature, SenseStates: []string{"high", "low"}},
		{Name: "humidity sensor", SenseChannel: ChanHumidity,
			SenseStates: []string{"high", "low"}},
		{Name: "illuminance sensor", Aliases: []string{"light sensor"},
			SenseChannel: ChanIlluminance, SenseStates: []string{"bright", "dark"}},
		{Name: "presence sensor", SenseChannel: ChanPresence,
			SenseStates: []string{"home", "away"}},
		{Name: "contact sensor", SenseChannel: ChanContact,
			SenseStates: []string{"open", "closed"}},
		{Name: "leak sensor", Aliases: []string{"water leak sensor", "moisture sensor"},
			SenseChannel: ChanLeak, SenseStates: []string{"wet", "dry"}},
		{Name: "sound sensor", Aliases: []string{"noise sensor"},
			SenseChannel: ChanSound, SenseStates: []string{"loud", "quiet"}},
		{Name: "button", SenseChannel: ChanButton,
			SenseStates: []string{"pressed"}},
		{Name: "doorbell", Security: true, SenseChannel: ChanButton,
			SenseStates: []string{"pressed"},
			Commands: []Command{
				{Verb: "ring", State: "pressed", Channel: ChanButton,
					Env: []EnvDelta{{ChanSound, 1}}},
			}},

		// --- Actuators ---------------------------------------------------
		{Name: "light", Aliases: []string{"lamp", "bulb"},
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanPower,
					Env: []EnvDelta{{ChanIlluminance, 1}}},
				{Verb: "turn off", State: "off", Channel: ChanPower,
					Env: []EnvDelta{{ChanIlluminance, -1}}},
				{Verb: "dim", State: "dim", Channel: ChanPower,
					Env: []EnvDelta{{ChanIlluminance, -1}}},
			}},
		{Name: "switch", Aliases: []string{"smart switch"},
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanPower},
				{Verb: "turn off", State: "off", Channel: ChanPower},
			}},
		{Name: "plug", Aliases: []string{"outlet", "smart plug"},
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanPower,
					Env: []EnvDelta{{ChanEnergy, 1}}},
				{Verb: "turn off", State: "off", Channel: ChanPower,
					Env: []EnvDelta{{ChanEnergy, -1}}},
			}},
		{Name: "heater", Aliases: []string{"furnace", "radiator"},
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanPower,
					Env: []EnvDelta{{ChanTemperature, 1}, {ChanEnergy, 1}}},
				{Verb: "turn off", State: "off", Channel: ChanPower,
					Env: []EnvDelta{{ChanTemperature, -1}}},
			}},
		{Name: "air conditioner", Aliases: []string{"ac"},
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanPower,
					Env: []EnvDelta{{ChanTemperature, -1}, {ChanHumidity, -1}, {ChanEnergy, 1}}},
				{Verb: "turn off", State: "off", Channel: ChanPower,
					Env: []EnvDelta{{ChanTemperature, 1}}},
			}},
		{Name: "thermostat",
			Commands: []Command{
				{Verb: "raise", State: "high", Channel: ChanTemperature,
					Env: []EnvDelta{{ChanTemperature, 1}, {ChanEnergy, 1}}},
				{Verb: "lower", State: "low", Channel: ChanTemperature,
					Env: []EnvDelta{{ChanTemperature, -1}}},
			}},
		{Name: "fan", Aliases: []string{"ventilation fan", "exhaust fan"},
			Commands: []Command{
				{Verb: "start", State: "running", Channel: ChanPower,
					Env: []EnvDelta{{ChanTemperature, -1}, {ChanHumidity, -1}, {ChanSmoke, -1}, {ChanSound, 1}}},
				{Verb: "stop", State: "stopped", Channel: ChanPower},
			}},
		{Name: "humidifier",
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanPower,
					Env: []EnvDelta{{ChanHumidity, 1}}},
				{Verb: "turn off", State: "off", Channel: ChanPower,
					Env: []EnvDelta{{ChanHumidity, -1}}},
			}},
		{Name: "dehumidifier",
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanPower,
					Env: []EnvDelta{{ChanHumidity, -1}, {ChanEnergy, 1}}},
				{Verb: "turn off", State: "off", Channel: ChanPower},
			}},
		{Name: "window", Security: true,
			SenseChannel: ChanContact, SenseStates: []string{"open", "closed"},
			Commands: []Command{
				{Verb: "open", State: "open", Channel: ChanContact,
					Env: []EnvDelta{{ChanTemperature, -1}, {ChanHumidity, 1}, {ChanSound, 1}}},
				{Verb: "close", State: "closed", Channel: ChanContact,
					Env: []EnvDelta{{ChanTemperature, 1}}},
			}},
		{Name: "door", Security: true,
			SenseChannel: ChanContact, SenseStates: []string{"open", "closed"},
			Commands: []Command{
				{Verb: "open", State: "open", Channel: ChanContact,
					Env: []EnvDelta{{ChanMotion, 1}}},
				{Verb: "close", State: "closed", Channel: ChanContact},
			}},
		{Name: "garage door", Security: true,
			SenseChannel: ChanContact, SenseStates: []string{"open", "closed"},
			Commands: []Command{
				{Verb: "open", State: "open", Channel: ChanContact, Sensitive: true},
				{Verb: "close", State: "closed", Channel: ChanContact},
			}},
		{Name: "lock", Aliases: []string{"door lock", "smart lock"}, Security: true,
			SenseChannel: ChanLockState, SenseStates: []string{"locked", "unlocked"},
			Commands: []Command{
				{Verb: "lock", State: "locked", Channel: ChanLockState},
				{Verb: "unlock", State: "unlocked", Channel: ChanLockState, Sensitive: true},
			}},
		{Name: "blind", Aliases: []string{"curtain", "shade"},
			Commands: []Command{
				{Verb: "open", State: "open", Channel: ChanContact,
					Env: []EnvDelta{{ChanIlluminance, 1}}},
				{Verb: "close", State: "closed", Channel: ChanContact,
					Env: []EnvDelta{{ChanIlluminance, -1}}},
			}},
		{Name: "water valve", Aliases: []string{"valve"},
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanWaterFlow,
					Env: []EnvDelta{{ChanLeak, 1}}},
				{Verb: "turn off", State: "off", Channel: ChanWaterFlow,
					Env: []EnvDelta{{ChanLeak, -1}}},
			}},
		{Name: "sprinkler", Aliases: []string{"irrigation system"},
			Commands: []Command{
				{Verb: "start", State: "running", Channel: ChanWaterFlow,
					Env: []EnvDelta{{ChanLeak, 1}, {ChanHumidity, 1}}},
				{Verb: "stop", State: "stopped", Channel: ChanWaterFlow},
			}},
		{Name: "camera", Security: true,
			SenseChannel: ChanMotion, SenseStates: []string{"detected", "clear"},
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanPower},
				{Verb: "turn off", State: "off", Channel: ChanPower, Sensitive: true},
				{Verb: "record", State: "recording", Channel: ChanRecord,
					Env: []EnvDelta{{ChanRecord, 1}}},
			}},
		{Name: "alarm", Aliases: []string{"siren"}, Security: true,
			Commands: []Command{
				{Verb: "arm", State: "armed", Channel: ChanPower},
				{Verb: "disarm", State: "disarmed", Channel: ChanPower, Sensitive: true},
				{Verb: "sound", State: "on", Channel: ChanSound,
					Env: []EnvDelta{{ChanSound, 1}}},
			}},
		{Name: "speaker", Aliases: []string{"smart speaker"},
			Commands: []Command{
				{Verb: "play music on", State: "on", Channel: ChanSound,
					Env: []EnvDelta{{ChanSound, 1}}},
				{Verb: "mute", State: "off", Channel: ChanSound,
					Env: []EnvDelta{{ChanSound, -1}}},
			}},
		{Name: "tv", Aliases: []string{"television"},
			Commands: []Command{
				{Verb: "turn on", State: "on", Channel: ChanPower,
					Env: []EnvDelta{{ChanSound, 1}, {ChanIlluminance, 1}}},
				{Verb: "turn off", State: "off", Channel: ChanPower},
			}},
		{Name: "vacuum", Aliases: []string{"robot vacuum"},
			Commands: []Command{
				{Verb: "start", State: "running", Channel: ChanPower,
					Env: []EnvDelta{{ChanSound, 1}, {ChanMotion, 1}}},
				{Verb: "stop", State: "stopped", Channel: ChanPower},
			}},
		{Name: "coffee maker",
			Commands: []Command{
				{Verb: "start", State: "running", Channel: ChanPower,
					Env: []EnvDelta{{ChanEnergy, 1}}},
				{Verb: "stop", State: "stopped", Channel: ChanPower},
			}},
		{Name: "washer", Aliases: []string{"washing machine"},
			Commands: []Command{
				{Verb: "start", State: "running", Channel: ChanPower,
					Env: []EnvDelta{{ChanSound, 1}, {ChanEnergy, 1}}},
				{Verb: "stop", State: "stopped", Channel: ChanPower},
			}},

		// --- Notification/logging sinks ---------------------------------
		// A large share of real applets end in a notification, a log row or
		// an email rather than a physical command; these actions have no
		// opposing state, so they never conflict or block.
		{Name: "phone",
			Commands: []Command{
				{Verb: "send a notification to", State: "notified", Channel: ChanNotify},
				{Verb: "send a text message to", State: "messaged", Channel: ChanNotify},
			}},
		{Name: "spreadsheet",
			Commands: []Command{
				{Verb: "add a row to", State: "updated", Channel: ChanRecord},
			}},
		{Name: "email",
			Commands: []Command{
				{Verb: "send", State: "sent", Channel: ChanNotify},
			}},
		{Name: "calendar",
			Commands: []Command{
				{Verb: "add an event to", State: "updated", Channel: ChanRecord},
			}},
		{Name: "weather station", SenseChannel: ChanWeather,
			SenseStates: []string{"raining", "sunny", "windy", "snowing"}},
	}
}

// CatalogByName indexes the catalog by canonical device name.
func CatalogByName() map[string]*Device {
	cat := Catalog()
	out := make(map[string]*Device, len(cat))
	for i := range cat {
		out[cat[i].Name] = &cat[i]
	}
	return out
}
