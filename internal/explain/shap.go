// Package explain implements the vulnerability explanation layer of §III-C:
// kernel SHAP over graph substructures (Eq. 5-6), the SHAP-guided Monte
// Carlo beam search of Algorithm 2, the SubgraphX and MCTS_GNN comparison
// methods of Fig. 8-9, and the fidelity/sparsity metrics used to score
// explanations quantitatively.
package explain

import (
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// ScoreFunc is the detection model h(·): it maps an interaction graph to a
// vulnerability probability. The explainer treats it as a black box.
type ScoreFunc func(g *graph.Graph) float64

// maskGraph returns the induced subgraph on the kept node indices; masking
// a node removes it and its edges, the standard graph-explanation ablation.
func maskGraph(g *graph.Graph, keep []int) *graph.Graph {
	return g.InducedSubgraph(keep)
}

// KernelSHAP approximates the SHAP value (Eq. 5) of treating the candidate
// subgraph as one player and the remaining nodes as singleton players. It
// samples K coalitions z′ of the other players, evaluates
// h(subgraph ∪ coalition), and solves the weighted linear regression of
// Eq. (6) whose first coefficient is the subgraph's SHAP value φ.
func KernelSHAP(h ScoreFunc, g *graph.Graph, sub []int, k int, seed int64) float64 {
	return KernelSHAPRNG(h, g, sub, k, rng.New(seed))
}

// KernelSHAPRNG is KernelSHAP with an explicit caller-owned generator: all
// coalition sampling draws from r and nothing else, so concurrent calls
// with independent generators never race and repeat calls with equal-seeded
// generators are bit-identical.
func KernelSHAPRNG(h ScoreFunc, g *graph.Graph, sub []int, k int, r *rng.RNG) float64 {
	n := g.N()
	inSub := make([]bool, n)
	for _, i := range sub {
		inSub[i] = true
	}
	var others []int
	for i := 0; i < n; i++ {
		if !inSub[i] {
			others = append(others, i)
		}
	}
	// Players: index 0 = the subgraph, 1..m = singleton other nodes.
	m := len(others) + 1
	if m == 1 {
		// No other players: φ is the full prediction minus the empty value.
		return h(g) - h(maskGraph(g, nil))
	}

	var rows [][]float64 // z′ indicator vectors (length m)
	var ys []float64     // h(T_x⁻¹(z′))
	var ws []float64     // Shapley kernel weights

	evalCoalition := func(mask []bool) {
		var keep []int
		if mask[0] {
			keep = append(keep, sub...)
		}
		for j, node := range others {
			if mask[j+1] {
				keep = append(keep, node)
			}
		}
		size := 0
		for _, b := range mask {
			if b {
				size++
			}
		}
		// Shapley kernel: C = (M−1) / (C(M,|z|)·|z|·(M−|z|)); the empty and
		// full coalitions get large finite weights (they pin the intercept
		// and total).
		var w float64
		if size == 0 || size == m {
			w = 1e6
		} else {
			w = float64(m-1) / (binom(m, size) * float64(size) * float64(m-size))
		}
		row := make([]float64, m+1)
		row[0] = 1 // intercept
		for j, b := range mask {
			if b {
				row[j+1] = 1
			}
		}
		rows = append(rows, row)
		ys = append(ys, h(maskGraph(g, keep)))
		ws = append(ws, w)
	}

	// Always include the empty and full coalitions, then K −2 random ones.
	empty := make([]bool, m)
	full := make([]bool, m)
	for i := range full {
		full[i] = true
	}
	evalCoalition(empty)
	evalCoalition(full)
	for s := 0; s < k-2; s++ {
		mask := make([]bool, m)
		// Sample coalition sizes ~ the Shapley kernel by drawing a size
		// uniformly then members uniformly; the regression weights correct
		// the residual bias.
		size := 1 + r.Intn(m-1)
		for _, idx := range r.SampleWithoutReplacement(m, size) {
			mask[idx] = true
		}
		evalCoalition(mask)
	}

	x := mat.NewDense(len(rows), m+1)
	for i, row := range rows {
		x.SetRow(i, row)
	}
	coef, err := mat.WeightedLeastSquares(x, ys, ws, 1e-6)
	if err != nil {
		return 0
	}
	// coef[1] is the subgraph player's φ.
	return coef[1]
}

// binom computes C(n, k) as float64 (n ≤ ~60 in interaction graphs).
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}

// ShapleyValue is the sampling estimator SubgraphX uses: the average
// marginal contribution of the subgraph over random permutations of the
// other players, assuming player independence (the assumption the paper
// criticises).
func ShapleyValue(h ScoreFunc, g *graph.Graph, sub []int, samples int, seed int64) float64 {
	return ShapleyValueRNG(h, g, sub, samples, rng.New(seed))
}

// ShapleyValueRNG is ShapleyValue with an explicit caller-owned generator
// (see KernelSHAPRNG for the concurrency contract).
func ShapleyValueRNG(h ScoreFunc, g *graph.Graph, sub []int, samples int, r *rng.RNG) float64 {
	n := g.N()
	inSub := make([]bool, n)
	for _, i := range sub {
		inSub[i] = true
	}
	var others []int
	for i := 0; i < n; i++ {
		if !inSub[i] {
			others = append(others, i)
		}
	}
	if len(others) == 0 {
		return h(g) - h(maskGraph(g, nil))
	}
	var total float64
	for s := 0; s < samples; s++ {
		perm := r.Perm(len(others))
		cut := r.Intn(len(others) + 1)
		var keep []int
		for _, idx := range perm[:cut] {
			keep = append(keep, others[idx])
		}
		without := h(maskGraph(g, keep))
		with := h(maskGraph(g, append(append([]int(nil), keep...), sub...)))
		total += with - without
	}
	return total / float64(samples)
}

// Fidelity is the drop in prediction when the explanation subgraph is
// removed from the graph: h(G) − h(G \ G_sub). Higher means the subgraph
// really carries the prediction (Fig. 9, following Pope et al.).
func Fidelity(h ScoreFunc, g *graph.Graph, sub []int) float64 {
	inSub := make([]bool, g.N())
	for _, i := range sub {
		inSub[i] = true
	}
	var rest []int
	for i := 0; i < g.N(); i++ {
		if !inSub[i] {
			rest = append(rest, i)
		}
	}
	return h(g) - h(maskGraph(g, rest))
}

// Sparsity is the fraction of the graph NOT selected by the explanation:
// 1 − |G_sub|/|G| (Fig. 9). Concise explanations score high.
func Sparsity(g *graph.Graph, sub []int) float64 {
	if g.N() == 0 {
		return 0
	}
	return 1 - float64(len(sub))/float64(g.N())
}
