package gnn

import (
	"math"

	"fexiot/internal/autodiff"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/ml"
	"fexiot/internal/obs"
	"fexiot/internal/rng"
)

// TrainConfig controls contrastive representation learning (Eq. 2).
type TrainConfig struct {
	Margin        float64 // the distance threshold k in Eq. (2)
	LR            float64 // Adam learning rate (paper: 0.001)
	Epochs        int     // local passes
	PairsPerEpoch int     // contrastive pairs sampled per pass
	BatchPairs    int     // pairs accumulated per optimiser step
	Seed          int64
	// GradClip bounds the global gradient norm of every optimiser step.
	// Zero selects the historical default of 5; negative disables clipping.
	GradClip float64
	// DivergeFactor aborts the round when a batch loss exceeds
	// DivergeFactor × the round's first batch loss — the signature of a
	// numerically diverging model. Zero disables the ratio check; the
	// non-finite (NaN/Inf) loss and gradient checks are always on. An
	// aborted round restores the weights captured at entry, so divergence
	// never propagates NaN into the federation.
	DivergeFactor float64
	// Metrics, when non-nil, receives training telemetry: contrastive loss,
	// gradient norm, clip and divergence events, and per-round training
	// time. Nil (the default) keeps training on the zero-overhead path.
	Metrics *obs.Registry
}

// trainMetrics are the nil-gated telemetry handles of one training round.
type trainMetrics struct {
	loss     *obs.Gauge     // fexiot_train_loss
	gradNorm *obs.Gauge     // fexiot_train_grad_norm
	clips    *obs.Counter   // fexiot_train_grad_clip_total
	diverged *obs.Counter   // fexiot_train_divergence_total
	rounds   *obs.Counter   // fexiot_train_rounds_total
	roundDur *obs.Histogram // fexiot_train_round_duration_seconds
}

// newTrainMetrics resolves the handles; with a nil registry every handle is
// nil and each telemetry call collapses to a nil check.
func newTrainMetrics(r *obs.Registry) trainMetrics {
	return trainMetrics{
		loss:     r.Gauge("fexiot_train_loss", "contrastive loss of the most recent training batch"),
		gradNorm: r.Gauge("fexiot_train_grad_norm", "pre-clip global gradient norm of the most recent optimiser step"),
		clips:    r.Counter("fexiot_train_grad_clip_total", "optimiser steps whose gradient norm was clipped"),
		diverged: r.Counter("fexiot_train_divergence_total", "training rounds aborted and rolled back on loss divergence or non-finite values"),
		rounds:   r.Counter("fexiot_train_rounds_total", "completed local contrastive training rounds"),
		roundDur: r.Histogram("fexiot_train_round_duration_seconds", "wall time of one local contrastive training round", nil),
	}
}

// DefaultTrainConfig mirrors the paper's training setup.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{Margin: 2.0, LR: 0.001, Epochs: 1,
		PairsPerEpoch: 64, BatchPairs: 8, Seed: seed}
}

// gradClip resolves the configured clip bound (0 = disabled).
func (c TrainConfig) gradClip() float64 {
	switch {
	case c.GradClip < 0:
		return 0
	case c.GradClip == 0:
		return 5
	default:
		return c.GradClip
	}
}

// gradsFinite reports whether every accumulated gradient is finite.
func gradsFinite(grads map[string]*mat.Dense) bool {
	for _, g := range grads {
		if !mat.AllFinite(g.Data()) {
			return false
		}
	}
	return true
}

// TrainContrastive runs contrastive training of the model on labelled
// graphs, sampling same-class and different-class pairs in roughly equal
// proportion. The optimiser is owned by the caller so federated clients
// keep momentum state across rounds.
//
// The loop is divergence-safe: a non-finite batch loss or gradient — or,
// with cfg.DivergeFactor set, a loss blow-up past DivergeFactor × the first
// batch loss — aborts the round and restores the weights captured at entry.
// It returns false on such an abort and true when the round completed.
func TrainContrastive(m Model, graphs []*graph.Graph, cfg TrainConfig, opt *autodiff.Adam) bool {
	if len(graphs) < 2 {
		return true
	}
	tm := newTrainMetrics(cfg.Metrics)
	sp := obs.StartSpan(tm.roundDur)
	defer sp.End()
	snapshot := m.Params().Clone()
	firstLoss := math.NaN()
	r := rng.New(cfg.Seed)
	var pos, neg []int
	for i, g := range graphs {
		if g.Label {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	samplePair := func() (a, b *graph.Graph, diff bool) {
		if len(pos) > 0 && len(neg) > 0 && r.Bool(0.5) {
			return graphs[pos[r.Intn(len(pos))]], graphs[neg[r.Intn(len(neg))]], true
		}
		pool := neg
		if len(pool) < 2 || (len(pos) >= 2 && r.Bool(0.5)) {
			pool = pos
		}
		if len(pool) < 2 {
			i, j := r.Intn(len(graphs)), r.Intn(len(graphs))
			return graphs[i], graphs[j], graphs[i].Label != graphs[j].Label
		}
		i := r.Intn(len(pool))
		j := r.Intn(len(pool))
		for j == i && len(pool) > 1 {
			j = r.Intn(len(pool))
		}
		return graphs[pool[i]], graphs[pool[j]], false
	}

	// One tape and binder serve the whole round: Reset+Rebind per pair
	// recycles every node and buffer, so the steady-state loop allocates
	// nothing. Gradients accumulate into persistent buffers (acc) with a
	// per-batch view restricted to the parameters actually touched this
	// batch — Adam must only see touched names, exactly as the seed's
	// per-batch map gave it (MAGNN legitimately skips a projection when a
	// graph has no nodes of that space).
	tape := autodiff.NewTape()
	binder := autodiff.Bind(tape, m.Params())
	acc := map[string]*mat.Dense{}
	grads := map[string]*mat.Dense{}
	accumulate := func(name string, g *mat.Dense) {
		buf := grads[name]
		if buf == nil {
			if buf = acc[name]; buf == nil {
				r, c := g.Dims()
				buf = mat.NewDense(r, c)
				acc[name] = buf
			} else {
				buf.Zero()
			}
			grads[name] = buf
		}
		// Zero+AddScaled(g,1) ≡ the seed's Clone on first touch;
		// AddScaled on later touches matches exactly.
		buf.AddScaled(g, 1)
	}
	for e := 0; e < cfg.Epochs; e++ {
		remaining := cfg.PairsPerEpoch
		for remaining > 0 {
			batch := cfg.BatchPairs
			if batch > remaining {
				batch = remaining
			}
			remaining -= batch
			clear(grads)
			batchLoss := 0.0
			for k := 0; k < batch; k++ {
				ga, gb, diff := samplePair()
				tape.Reset()
				binder.Rebind(tape, m.Params())
				za := m.Forward(tape, binder, ga)
				zb := m.Forward(tape, binder, gb)
				loss := tape.ContrastiveLoss(za, zb, diff, cfg.Margin)
				loss = tape.Scale(loss, 1/float64(batch))
				batchLoss += loss.Value.At(0, 0)
				tape.Backward(loss)
				binder.EachGrad(accumulate)
			}
			// Divergence gate: a NaN/Inf loss or gradient, or a loss
			// blow-up past the configured factor, means this round is
			// poisoning the weights — roll back instead of propagating.
			diverged := !mat.AllFinite([]float64{batchLoss}) || !gradsFinite(grads)
			if !diverged && cfg.DivergeFactor > 0 {
				if math.IsNaN(firstLoss) {
					firstLoss = batchLoss
				} else if firstLoss > 0 && batchLoss > cfg.DivergeFactor*firstLoss {
					diverged = true
				}
			}
			if diverged {
				tm.diverged.Inc()
				m.Params().CopyFrom(snapshot)
				return false
			}
			tm.loss.Set(batchLoss)
			if clip := cfg.gradClip(); clip > 0 {
				norm := autodiff.ClipGrads(grads, clip)
				tm.gradNorm.Set(norm)
				if norm > clip {
					tm.clips.Inc()
				}
			}
			opt.Step(m.Params(), grads)
		}
	}
	tm.rounds.Inc()
	return true
}

// SupervisedHead is a linear classification head trained jointly with the
// model under weighted cross-entropy — the ablation counterpart of the
// paper's contrastive objective (DESIGN.md §4.2).
type SupervisedHead struct {
	params *autodiff.ParamSet
}

// NewSupervisedHead creates a head for a model's embedding width.
func NewSupervisedHead(embedDim int, seed int64) *SupervisedHead {
	r := rng.New(seed)
	p := autodiff.NewParamSet()
	p.Register("head.w", 0, r.Glorot(embedDim, 2))
	p.Register("head.b", 0, mat.NewDense(1, 2))
	return &SupervisedHead{params: p}
}

// TrainSupervised trains model+head jointly with weighted cross-entropy on
// graph labels. Both optimisers are caller-owned.
func TrainSupervised(m Model, head *SupervisedHead, graphs []*graph.Graph,
	cfg TrainConfig, opt, headOpt *autodiff.Adam, classWeights []float64) {
	if len(graphs) == 0 {
		return
	}
	r := rng.New(cfg.Seed)
	tape := autodiff.NewTape()
	binder := autodiff.Bind(tape, m.Params())
	hb := autodiff.Bind(tape, head.params)
	lab := make([]int, 1)
	for e := 0; e < cfg.Epochs; e++ {
		remaining := cfg.PairsPerEpoch
		for remaining > 0 {
			batch := cfg.BatchPairs
			if batch > remaining {
				batch = remaining
			}
			remaining -= batch
			grads := map[string]*mat.Dense{}
			headGrads := map[string]*mat.Dense{}
			for k := 0; k < batch; k++ {
				g := graphs[r.Intn(len(graphs))]
				lab[0] = 0
				if g.Label {
					lab[0] = 1
				}
				tape.Reset()
				binder.Rebind(tape, m.Params())
				hb.Rebind(tape, head.params)
				z := m.Forward(tape, binder, g)
				logits := tape.AddRowBroadcast(tape.MatMul(z, hb.Node("head.w")), hb.Node("head.b"))
				loss := tape.SoftmaxCrossEntropy(logits, lab, classWeights)
				loss = tape.Scale(loss, 1/float64(batch))
				tape.Backward(loss)
				binder.AccumulateGrads(grads)
				hb.AccumulateGrads(headGrads)
			}
			autodiff.ClipGrads(grads, 5)
			autodiff.ClipGrads(headGrads, 5)
			opt.Step(m.Params(), grads)
			headOpt.Step(head.params, headGrads)
		}
	}
}

// PredictSupervised classifies a graph with the trained head.
func (h *SupervisedHead) Predict(m Model, g *graph.Graph) int {
	z := Embed(m, g)
	w := h.params.Get("head.w")
	b := h.params.Get("head.b")
	logit0, logit1 := b.At(0, 0), b.At(0, 1)
	for i, v := range z {
		logit0 += v * w.At(i, 0)
		logit1 += v * w.At(i, 1)
	}
	if logit1 >= logit0 {
		return 1
	}
	return 0
}

// Detector couples a graph representation model with the local linear
// classifier of §III-B1 (an SGDClassifier on graph embeddings).
type Detector struct {
	Model Model
	Clf   *ml.SGDClassifier
}

// NewDetector wires a model to a fresh SGD classifier.
func NewDetector(m Model, seed int64) *Detector {
	clf := ml.NewSGDClassifier(30, 0.1, seed)
	return &Detector{Model: m, Clf: clf}
}

// FitClassifier trains the linear head on the embeddings of the labelled
// graphs, with inverse-frequency class weights (the paper's imbalance
// handling).
func (d *Detector) FitClassifier(graphs []*graph.Graph) {
	if len(graphs) == 0 {
		return
	}
	x := EmbedAll(d.Model, graphs)
	y := make([]int, len(graphs))
	pos := 0
	for i, g := range graphs {
		if g.Label {
			y[i] = 1
			pos++
		}
	}
	neg := len(graphs) - pos
	if pos > 0 && neg > 0 {
		total := float64(len(graphs))
		d.Clf.ClassWeights = []float64{total / (2 * float64(neg)),
			total / (2 * float64(pos))}
	}
	d.Clf.Fit(x, y)
}

// Score returns the vulnerability probability of a graph.
func (d *Detector) Score(g *graph.Graph) float64 {
	return d.Clf.Score(Embed(d.Model, g))
}

// Predict thresholds Score at 0.5.
func (d *Detector) Predict(g *graph.Graph) int {
	if d.Score(g) >= 0.5 {
		return 1
	}
	return 0
}

// EvaluateDetector computes detection metrics over labelled graphs. The
// per-graph predictions are independent read-only passes, so they run
// under the shared mat parallelism bound; each index owns its own output
// slot, keeping the metrics deterministic.
func EvaluateDetector(d *Detector, graphs []*graph.Graph) ml.Metrics {
	pred := make([]int, len(graphs))
	truth := make([]int, len(graphs))
	mat.ParallelFor(len(graphs), func(i int) {
		pred[i] = d.Predict(graphs[i])
		if graphs[i].Label {
			truth[i] = 1
		}
	})
	return ml.Evaluate(pred, truth)
}
