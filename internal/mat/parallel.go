package mat

// Shared parallel execution layer for the dense kernels. All heavy
// operations in this package (MulTo, MulTTo, MulBTTo, T and the
// element-wise ops) split their output rows into contiguous blocks and run
// the blocks on a package-level worker pool. The design is deliberately
// work-stealing-free: each output row is owned by exactly one worker, so
// every float is accumulated in exactly the same order as the serial
// kernel and results are bit-identical regardless of the worker count.
//
// The pool is sized from runtime.NumCPU(), overridable with the
// FEXIOT_PROCS environment variable or SetParallelism. Operations whose
// FLOP count falls under a small threshold run the serial loops instead,
// so the tiny matrices of individual autodiff steps never pay goroutine
// hand-off overhead.

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"unsafe"
)

// serialFLOPCutoff is the approximate FLOP count below which the matrix
// products stay on the serial code path; a product this small finishes in
// a few microseconds, comparable to the cost of dispatching pool blocks.
const serialFLOPCutoff = 128 * 1024

// serialElemCutoff is the element-count analogue for the memory-bound
// element-wise operations (Scale, AddScaled, Apply) and the transpose.
const serialElemCutoff = 64 * 1024

var (
	// parallelism is the configured degree of parallelism: the maximum
	// number of row blocks an operation is split into and the bound on
	// ParallelFor's in-flight goroutines.
	parallelism atomic.Int64

	poolOnce sync.Once
	poolCh   chan blockTask
)

func init() {
	n := runtime.NumCPU()
	if s := os.Getenv("FEXIOT_PROCS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	parallelism.Store(int64(n))
}

// SetParallelism fixes the degree of parallelism used by the dense kernels
// and ParallelFor. Values below 1 are clamped to 1 (fully serial).
// Results are bit-identical at every setting.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int64(n))
}

// Parallelism reports the configured degree of parallelism (from
// FEXIOT_PROCS, SetParallelism, or runtime.NumCPU()).
func Parallelism() int { return int(parallelism.Load()) }

// blockTask is one contiguous row block handed to a pool worker.
type blockTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// startPool lazily launches the package-level workers. The pool is sized
// once from the machine; Parallelism only controls how many blocks are in
// flight, so reconfiguring it never requires restarting workers.
func startPool() {
	n := runtime.NumCPU()
	poolCh = make(chan blockTask, 8*n)
	for w := 0; w < n; w++ {
		go func() {
			for t := range poolCh {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// parallelRows partitions [0, n) into at most Parallelism() contiguous
// blocks of at least minWork rows each and runs fn on every block, using
// the worker pool for all blocks but the first (which runs on the calling
// goroutine). It returns once every block has completed. fn must only
// write rows inside its own [lo, hi) range; the blocks are disjoint, so no
// two workers ever touch the same output row. With one block the call is a
// plain fn(0, n), making the serial and parallel paths share one body.
func parallelRows(n, minWork int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minWork < 1 {
		minWork = 1
	}
	p := Parallelism()
	if max := n / minWork; p > max {
		p = max
	}
	if p <= 1 {
		if km := kmetrics.Load(); km != nil {
			km.serial.Inc()
		}
		fn(0, n)
		return
	}
	poolOnce.Do(startPool)
	if km := kmetrics.Load(); km != nil {
		km.parallel.Inc()
		km.inflight.Add(float64(p))
		defer km.inflight.Add(float64(-p))
	}
	var wg sync.WaitGroup
	wg.Add(p - 1)
	for b := 1; b < p; b++ {
		poolCh <- blockTask{fn: fn, lo: b * n / p, hi: (b + 1) * n / p, wg: &wg}
	}
	fn(0, n/p)
	wg.Wait()
}

// minBlockRows returns the minimum rows per block so that one block
// amounts to at least cutoff units of work, given a per-row cost.
func minBlockRows(perRow, cutoff int) int {
	if perRow <= 0 {
		return 1
	}
	r := cutoff / perRow
	if r < 1 {
		r = 1
	}
	return r
}

// ParallelFor runs fn(i) for every i in [0, n) with at most Parallelism()
// invocations in flight, replacing the ad-hoc per-item goroutine fan-outs
// of the federated layers. It runs each fn on a fresh goroutine (not a
// pool worker), so fn may itself invoke the parallel dense kernels without
// risking pool starvation. fn must be safe to call concurrently and should
// only write state owned by its own index. ParallelFor returns after all
// invocations complete; with parallelism 1 it degrades to a plain loop.
func ParallelFor(n int, fn func(i int)) {
	p := Parallelism()
	if p <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	sem := make(chan struct{}, p)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// sharesBacking reports whether two float64 slices overlap in memory. The
// check is constant-time pointer arithmetic — cheap enough to run on every
// product — and catches both identical matrices and partial views carved
// from one backing array.
func sharesBacking(x, y []float64) bool {
	if len(x) == 0 || len(y) == 0 {
		return false
	}
	const sz = unsafe.Sizeof(float64(0))
	x0 := uintptr(unsafe.Pointer(&x[0]))
	x1 := x0 + uintptr(len(x))*sz
	y0 := uintptr(unsafe.Pointer(&y[0]))
	y1 := y0 + uintptr(len(y))*sz
	return x0 < y1 && y0 < x1
}

// checkNoAlias panics when dst shares backing memory with either input.
// The product kernels stream into dst while still reading the inputs, so
// aliasing would silently corrupt the result.
func checkNoAlias(op string, dst *Dense, inputs ...*Dense) {
	for _, in := range inputs {
		if sharesBacking(dst.data, in.data) {
			panic("mat: " + op + ": dst shares backing memory with an input; allocate a distinct destination")
		}
	}
}
