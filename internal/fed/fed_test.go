package fed

import (
	"testing"
	"testing/quick"

	"fexiot/internal/embed"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
)

var testEnc = embed.NewEncoder(24, 32)

func testGraphs(n int) []*graph.Graph {
	pool := fusion.MultiHomePool(3, 30, 20, nil)
	b := fusion.NewBuilder(5, testEnc)
	out := make([]*graph.Graph, n)
	for i := range out {
		out[i] = b.OfflineSized(pool)
	}
	return out
}

func testBase() gnn.Model {
	return gnn.NewGIN(fusion.WordFeatureDim(testEnc), 12, 8, 100)
}

func smallConfig() Config {
	cfg := DefaultConfig(7)
	cfg.Rounds = 3
	cfg.Train.PairsPerEpoch = 20
	cfg.Train.LR = 0.005
	return cfg
}

func splitFour(gs []*graph.Graph) [][]*graph.Graph {
	return DirichletSplit(gs, 4, 1.0, LabelArchetypeClass(5), 11)
}

func TestDirichletSplitPartitions(t *testing.T) {
	gs := testGraphs(120)
	shards := DirichletSplit(gs, 5, 0.5, LabelArchetypeClass(5), 3)
	if len(shards) != 5 {
		t.Fatalf("shard count %d", len(shards))
	}
	seen := map[*graph.Graph]int{}
	total := 0
	for _, shard := range shards {
		total += len(shard)
		for _, g := range shard {
			seen[g]++
		}
	}
	if total != len(gs) {
		t.Fatalf("split total %d want %d", total, len(gs))
	}
	for g, n := range seen {
		if n != 1 {
			t.Fatalf("graph %s assigned %d times", g.ID, n)
		}
	}
	// Minimum shard size honoured.
	for i, shard := range shards {
		if len(shard) < 4 {
			t.Fatalf("shard %d too small: %d", i, len(shard))
		}
	}
}

func TestDirichletSkewGrowsAsAlphaShrinks(t *testing.T) {
	gs := testGraphs(300)
	skew := func(alpha float64) float64 {
		shards := DirichletSplit(gs, 6, alpha, LabelArchetypeClass(5), 3)
		// Std of positive-label fraction across clients.
		var fracs []float64
		for _, shard := range shards {
			pos := 0
			for _, g := range shard {
				if g.Label {
					pos++
				}
			}
			fracs = append(fracs, float64(pos)/float64(len(shard)))
		}
		return mat.Std(fracs)
	}
	if skew(0.1) <= skew(100) {
		t.Fatalf("label skew at α=0.1 (%v) should exceed α=100 (%v)",
			skew(0.1), skew(100))
	}
}

func TestNewClientsShareInitialWeights(t *testing.T) {
	gs := testGraphs(40)
	clients := NewClients(testBase(), splitFour(gs), 0.005)
	if len(clients) != 4 {
		t.Fatalf("client count %d", len(clients))
	}
	w0 := clients[0].Model.Params().Flatten()
	for _, c := range clients[1:] {
		w := c.Model.Params().Flatten()
		for i := range w {
			if w[i] != w0[i] {
				t.Fatal("clients must start from identical weights")
			}
		}
	}
}

func TestFedAvgSynchronisesModels(t *testing.T) {
	gs := testGraphs(60)
	clients := NewClients(testBase(), splitFour(gs), 0.005)
	res := FedAvg{}.Run(clients, smallConfig())
	// After a FedAvg round every client holds the same weights.
	w0 := clients[0].Model.Params().Flatten()
	for _, c := range clients[1:] {
		w := c.Model.Params().Flatten()
		for i := range w {
			if w[i] != w0[i] {
				t.Fatal("FedAvg must leave identical weights")
			}
		}
	}
	if res.Comm.Total() <= 0 {
		t.Fatal("FedAvg must account transferred bytes")
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("round records %d", len(res.Rounds))
	}
}

func TestClientOnlyNeverCommunicates(t *testing.T) {
	gs := testGraphs(60)
	clients := NewClients(testBase(), splitFour(gs), 0.005)
	res := ClientOnly{}.Run(clients, smallConfig())
	if res.Comm.Total() != 0 {
		t.Fatal("isolated clients must not transfer bytes")
	}
	// Models must diverge (no aggregation).
	w0 := clients[0].Model.Params().Flatten()
	w1 := clients[1].Model.Params().Flatten()
	same := true
	for i := range w0 {
		if w0[i] != w1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("isolated clients should diverge")
	}
	if len(res.FinalClusters) != 4 {
		t.Fatal("cluster assignment length")
	}
}

func TestFexIoTRunsAndSavesBytes(t *testing.T) {
	gs := testGraphs(80)
	shards := splitFour(gs)

	clientsA := NewClients(testBase(), shards, 0.005)
	cfg := smallConfig()
	cfg.Rounds = 5
	resFex := NewFexIoT().Run(clientsA, cfg)

	clientsB := NewClients(testBase(), shards, 0.005)
	resAvg := FedAvg{}.Run(clientsB, cfg)

	if resFex.Comm.Total() <= 0 {
		t.Fatal("FexIoT must account bytes")
	}
	if resFex.Comm.Total() > resAvg.Comm.Total() {
		t.Fatalf("layer-wise staleness should not exceed FedAvg cost: %d vs %d",
			resFex.Comm.Total(), resAvg.Comm.Total())
	}
	// Cluster assignment is a valid partition.
	if len(resFex.FinalClusters) != 4 {
		t.Fatal("cluster assignment length")
	}
	for _, c := range resFex.FinalClusters {
		if c < 0 || c >= 4 {
			t.Fatalf("cluster id %d out of range", c)
		}
	}
}

func TestClusteredBaselinesProducePartitions(t *testing.T) {
	gs := testGraphs(80)
	for _, algo := range []Algorithm{GCFL(), FMTL()} {
		clients := NewClients(testBase(), splitFour(gs), 0.005)
		res := algo.Run(clients, smallConfig())
		counts := map[int]int{}
		for _, c := range res.FinalClusters {
			counts[c]++
		}
		// Singleton clusters are forbidden by the split rule.
		for id, n := range counts {
			if n < 2 {
				t.Fatalf("%s produced singleton cluster %d", algo.Name(), id)
			}
		}
	}
}

func TestGateFromNormsProperty(t *testing.T) {
	cfg := Config{Eps1: 0.4, Eps2: 0.95}
	// Identical updates: meanNorm == avgNorm → no split.
	if gateFromNorms([]float64{1, 1, 1}, 1, cfg) {
		t.Fatal("aligned clients must not split")
	}
	// Cancelling updates: tiny mean, others large → split.
	if !gateFromNorms([]float64{1, 1, 1}, 0.05, cfg) {
		t.Fatal("cancelling clients must split")
	}
	// Degenerate inputs never split.
	if gateFromNorms(nil, 0, cfg) || gateFromNorms([]float64{0, 0}, 0, cfg) {
		t.Fatal("degenerate norms must not split")
	}
}

func TestBinaryClusterSeparatesOpposedSignals(t *testing.T) {
	signals := [][]float64{
		{1, 0}, {0.9, 0.1}, {-1, 0}, {-0.95, -0.05},
	}
	a, b := binaryCluster(signals, []int{0, 1, 2, 3})
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("split sizes %d/%d", len(a), len(b))
	}
	side := map[int]int{}
	for _, i := range a {
		side[i] = 0
	}
	for _, i := range b {
		side[i] = 1
	}
	if side[0] != side[1] || side[2] != side[3] || side[0] == side[2] {
		t.Fatalf("opposed signals not separated: a=%v b=%v", a, b)
	}
}

func TestEvaluateClientProducesMetrics(t *testing.T) {
	gs := testGraphs(50)
	clients := NewClients(testBase(), splitFour(gs[:40]), 0.005)
	clients[0].LocalTrain(smallConfig().Train)
	m := EvaluateClient(clients[0], gs[40:], 3)
	if m.Accuracy < 0 || m.Accuracy > 1 {
		t.Fatalf("accuracy %v out of range", m.Accuracy)
	}
}

func TestUpdateReflectsTraining(t *testing.T) {
	gs := testGraphs(30)
	clients := NewClients(testBase(), splitFour(gs), 0.005)
	c := clients[0]
	// Before any training the update equals the raw weights (documented
	// fallback), after training it is the delta.
	c.LocalTrain(smallConfig().Train)
	if mat.Norm2(c.Update().Flatten()) == 0 {
		t.Fatal("training must move weights")
	}
	for l := 0; l < c.Model.Params().NumLayers(); l++ {
		if len(c.UpdateLayer(l)) == 0 {
			t.Fatalf("layer %d update empty", l)
		}
	}
}

func TestLabelArchetypeClassStable(t *testing.T) {
	f := func(homeIdx uint8, label bool) bool {
		g := &graph.Graph{Label: label}
		// classOf on empty graphs must not panic and stays in range.
		cls := LabelArchetypeClass(5)(g)
		return cls >= 0 && cls < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPrivatizeClipsAndNoises(t *testing.T) {
	gs := testGraphs(30)
	clients := NewClients(testBase(), splitFour(gs), 0.005)
	c := clients[0]
	c.LocalTrain(smallConfig().Train)
	raw := c.Update().Flatten()
	// Privatise with a tight clip: the resulting update norm must sit near
	// the clip bound plus bounded noise.
	c.Privatize(DPConfig{ClipNorm: 0.1, NoiseSigma: 0.01, Seed: 3})
	private := c.Update().Flatten()
	if mat.Norm2(private) > 0.5 {
		t.Fatalf("privatised update norm %v far above clip", mat.Norm2(private))
	}
	if mat.Norm2(raw) <= 0.1 {
		t.Skip("raw update already tiny; clipping unobservable")
	}
	if mat.Norm2(private) >= mat.Norm2(raw) {
		t.Fatal("clipping should shrink a large update")
	}
	// Privatising without a snapshot is a no-op.
	fresh := NewClients(testBase(), splitFour(gs), 0.005)[0]
	before := fresh.Model.Params().Flatten()
	fresh.Privatize(DPConfig{ClipNorm: 0.1, NoiseSigma: 1})
	after := fresh.Model.Params().Flatten()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Privatize before training must be a no-op")
		}
	}
}

func TestPrivateAlgorithmStillLearnsButPerturbs(t *testing.T) {
	gs := testGraphs(60)
	shards := splitFour(gs)
	plain := NewClients(testBase(), shards, 0.005)
	FedAvg{}.Run(plain, smallConfig())
	priv := NewClients(testBase(), shards, 0.005)
	dp := &PrivateAlgorithm{Inner: FedAvg{}, DP: DPConfig{ClipNorm: 1, NoiseSigma: 0.05, Seed: 9}}
	if dp.Name() != "FedAvg+DP" {
		t.Fatalf("name %q", dp.Name())
	}
	dp.Run(priv, smallConfig())
	// The DP run must differ from the plain run (noise was injected).
	a := plain[0].Model.Params().Flatten()
	b := priv[0].Model.Params().Flatten()
	diff := 0.0
	for i := range a {
		d := a[i] - b[i]
		diff += d * d
	}
	if diff == 0 {
		t.Fatal("DP training identical to plain training")
	}
	// dp hooks are removed afterwards.
	if priv[0].Privatized() {
		t.Fatal("dp hook leaked")
	}
}

func TestSybilFilterDownweightsDuplicates(t *testing.T) {
	gs := testGraphs(60)
	clients := NewClients(testBase(), splitFour(gs), 0.005)
	for _, c := range clients {
		c.LocalTrain(smallConfig().Train)
	}
	// Make clients 2 and 3 Sybil copies of client 1's update.
	sybilParams := clients[1].Model.Params()
	clients[2].Model.Params().CopyFrom(sybilParams)
	clients[2].prev = clients[1].prev.Clone()
	clients[3].Model.Params().CopyFrom(sybilParams)
	clients[3].prev = clients[1].prev.Clone()

	idx := []int{0, 1, 2, 3}
	weights := []float64{0.25, 0.25, 0.25, 0.25}
	filtered := SybilFilter(clients, idx, weights, 0.99)
	// The three duplicates share their mass; the honest client gains.
	if filtered[0] <= filtered[1] {
		t.Fatalf("honest weight %v should exceed sybil weight %v",
			filtered[0], filtered[1])
	}
	var total float64
	for _, w := range filtered {
		total += w
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("weights not normalised: %v", filtered)
	}
}

// TestQuorumWeights pins the weighting rule shared with the networked
// fedproto server: FedAvg proportions over the surviving subset, uniform
// degradation on zero total, and agreement with dataWeights.
func TestQuorumWeights(t *testing.T) {
	sizes := []int{30, 10, 0, 60}
	w := QuorumWeights(sizes, []int{0, 1, 3})
	want := []float64{0.3, 0.1, 0.6}
	for k := range want {
		if diff := w[k] - want[k]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("weight %d = %v, want %v", k, w[k], want[k])
		}
	}
	// Zero total degrades to uniform.
	u := QuorumWeights([]int{0, 0}, []int{0, 1})
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Fatalf("zero-total weights %v, want uniform", u)
	}
	// dataWeights is the same rule applied to client dataset sizes.
	gs := testGraphs(40)
	clients := NewClients(testBase(), splitFour(gs), 0.005)
	idx := []int{0, 2}
	dw := dataWeights(clients, idx)
	sz := make([]int, len(clients))
	for _, i := range idx {
		sz[i] = len(clients[i].Train)
	}
	qw := QuorumWeights(sz, idx)
	for k := range dw {
		if dw[k] != qw[k] {
			t.Fatalf("dataWeights %v != QuorumWeights %v", dw, qw)
		}
	}
}
