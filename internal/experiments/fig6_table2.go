package experiments

import (
	"fmt"

	"fexiot/internal/autodiff"
	"fexiot/internal/baselines"
	"fexiot/internal/datasets"
	"fexiot/internal/drift"
	"fexiot/internal/eventlog"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/ml"
	"fexiot/internal/vuln"
)

// trainDetectorOn trains a contrastive GNN + SGD head centrally on labelled
// graphs (the shared backbone for Fig. 6, Table II and the explanation
// experiments).
func trainDetectorOn(s Setup, model string, d *datasets.Dataset,
	graphs []*graph.Graph) *gnn.Detector {
	m := s.newModel(model, d.Encoder, 100+s.Seed)
	cfg := gnn.DefaultTrainConfig(s.Seed)
	cfg.LR = s.LR
	cfg.PairsPerEpoch = s.PairsPerRound * 2
	opt := autodiff.NewAdam(cfg.LR)
	opt.WeightDecay = 1e-4
	rounds := s.Rounds
	for r := 0; r < rounds; r++ {
		cfg.Seed = s.Seed + int64(r)
		gnn.TrainContrastive(m, graphs, cfg, opt)
	}
	det := gnn.NewDetector(m, 3)
	det.FitClassifier(graphs)
	return det
}

// FigureVI reproduces the drifting-pattern analysis: train the contrastive
// model on labelled data, embed a sample of graphs, cluster them with
// k-means over t-SNE coordinates (the Fig. 6 visualisation), and count the
// drifting samples recovered from unlabelled data spiked with the three
// novel patterns of §IV-C.
func FigureVI(s Setup) *Table {
	t := &Table{
		Title: "Fig. 6 — Embedding clusters and drifting-sample detection",
		Header: []string{"Dataset", "Samples", "k-means clusters",
			"Drift planted", "Drift flagged", "Planted recovered"},
	}
	for _, name := range []string{"IFTTT", "Hetero"} {
		var d *datasets.Dataset
		if name == "IFTTT" {
			d = datasets.BuildIFTTT(s.Scale, s.Seed)
		} else {
			d = datasets.BuildHetero(s.Scale, s.Seed+100)
		}
		labeled := d.Shuffled(s.Seed)
		det := trainDetectorOn(s, "GIN", d, labeled)

		// Embed a sample for the k-means/t-SNE view (paper: 1,500).
		sample := labeled
		maxSample := 1500
		if len(sample) > maxSample {
			sample = sample[:maxSample]
		}
		emb := gnn.EmbedAll(det.Model, sample)
		ts := drift.NewTSNE()
		ts.Iters = 120
		coords := ts.Embed(emb)
		km := drift.NewKMeans(vuln.NumLabeledTypes+1, s.Seed)
		km.Fit(coords)

		// Drift detection on unlabelled data spiked with novel patterns.
		labels := make([]int, len(labeled))
		for i, g := range labeled {
			if g.Label {
				labels[i] = 1
			}
		}
		detDrift := drift.Fit(gnn.EmbedAll(det.Model, labeled), labels)
		unl := append([]*graph.Graph(nil), d.Unlabeled...)
		b := fusion.NewBuilder(s.Seed+31, d.Encoder)
		planted := len(unl) / 20
		if planted < 3 {
			planted = 3
		}
		plantedSet := map[int]bool{}
		for i := 0; i < planted; i++ {
			idx := i * len(unl) / planted
			unl[idx] = b.OfflineWithDrift(d.Pool,
				fusion.DriftKind(i%int(fusion.NumDriftKinds)), 3)
			plantedSet[idx] = true
		}
		_, drifting := detDrift.FilterDrifting(gnn.EmbedAll(det.Model, unl))
		recovered := 0
		for _, idx := range drifting {
			if plantedSet[idx] {
				recovered++
			}
		}
		t.Add(name, fmt.Sprint(len(sample)), fmt.Sprint(len(km.Centers)),
			fmt.Sprint(planted), fmt.Sprint(len(drifting)),
			fmt.Sprintf("%d/%d", recovered, planted))
	}
	t.Add("(paper)", "1500", "7", "", "63 (IFTTT) / 104 (Hetero)", "3 new patterns")
	return t
}

// TableII runs the testbed system comparison: HAWatcher, DeepLog and
// IsolationForest consume event logs while FexIoT consumes the fused
// online graphs; all are evaluated on the same online samples.
func TableII(s Setup) *Table {
	samples, enc, deployed := datasets.BuildTestbed(s.Scale, s.Seed+41)
	// Training material: benign logs (first half of the benign samples) and
	// offline graphs for the FexIoT detector.
	var benignLogs []eventlog.Log
	for _, sm := range samples {
		if !sm.Attacked && !sm.Graph.Label {
			benignLogs = append(benignLogs, sm.Log)
		}
	}
	trainLogs := benignLogs
	if len(trainLogs) > len(samples)/3 {
		trainLogs = trainLogs[:len(samples)/3]
	}

	// FexIoT's training material mirrors the paper's federated setup: the
	// heterogeneous offline corpus (all five platforms — the testbed homes
	// deploy mixed-platform rules) plus online graphs fused from a disjoint
	// set of training homes, so the detector has seen the online graph
	// distribution. The test samples below never enter training.
	dHet := datasets.BuildHetero(s.Scale, s.Seed)
	dHet.Encoder = enc // deterministic per-dims; shared with the online fuser
	trainGraphs := dHet.Shuffled(s.Seed)
	if len(trainGraphs) > 500 {
		trainGraphs = trainGraphs[:500]
	}
	// Auxiliary training windows from the SAME testbed deployment (disjoint
	// simulator seeds, so no window overlaps the test set) teach the
	// detector the online graph distribution of this home.
	auxSamples := datasets.TestbedWindows(s.Scale, deployed, enc,
		s.Seed+41+int64(s.Scale.OnlineGraphs)*17+991, s.Scale.OnlineGraphs/2)
	for _, sm := range auxSamples {
		if sm.Graph.N() == 0 {
			continue
		}
		g := sm.Graph
		g.Label = sm.Vulnerable()
		trainGraphs = append(trainGraphs, g)
	}
	det := trainDetectorOn(s, "GIN", dHet, trainGraphs)

	truth := make([]int, len(samples))
	for i, sm := range samples {
		if sm.Vulnerable() {
			truth[i] = 1
		}
	}

	t := &Table{
		Title:  "Table II — Comparison of different systems with testbed data",
		Header: []string{"Method", "Accuracy", "Precision", "Recall", "F1"},
	}
	logDetectors := []baselines.LogDetector{
		baselines.NewHAWatcher(), baselines.NewDeepLog(), baselines.NewIsoForest(),
	}
	for _, ld := range logDetectors {
		ld.Train(trainLogs)
		pred := make([]int, len(samples))
		for i, sm := range samples {
			pred[i] = ld.Predict(sm.Log)
		}
		m := ml.Evaluate(pred, truth)
		t.Add(ld.Name(), f3(m.Accuracy), f3(m.Precision), f3(m.Recall), f3(m.F1))
	}
	// FexIoT: GNN detector on fused online graphs; attacks perturb the
	// graph structure so the detector flags them, and ground-truth labels
	// on the fused graph catch inherent vulnerabilities.
	pred := make([]int, len(samples))
	for i, sm := range samples {
		if sm.Graph.N() == 0 {
			pred[i] = 0
			continue
		}
		pred[i] = det.Predict(sm.Graph)
	}
	m := ml.Evaluate(pred, truth)
	t.Add("FexIoT", f3(m.Accuracy), f3(m.Precision), f3(m.Recall), f3(m.F1))
	t.Add("(paper HAWatcher)", "0.82", "0.83", "0.87", "0.85")
	t.Add("(paper DeepLog)", "0.74", "0.78", "0.79", "0.78")
	t.Add("(paper IsolationForest)", "0.63", "0.74", "0.61", "0.67")
	t.Add("(paper FexIoT)", "0.90", "0.90", "0.93", "0.91")
	return t
}
