package eventlog

import (
	"fexiot/internal/jenks"
	"fexiot/internal/rules"
)

// Clean reproduces the log-cleaning step of §III-A2:
//
//  1. execution-error records are dropped (they do not change device state);
//  2. repetitive readings — consecutive reports of the same device with an
//     unchanged value — are collapsed to the first occurrence;
//  3. numeric sensor readings are converted to the logical levels app
//     descriptions use ("humidity is 32" → "humidity is low") with Jenks
//     natural breaks over the device's own reading history.
func Clean(log Log) Log {
	// Pass 1: collect numeric histories per device instance.
	histories := map[string][]float64{}
	for _, e := range log {
		if e.IsNumeric && !e.Err {
			k := Instance{Device: e.Device, Room: e.Room}.key()
			histories[k] = append(histories[k], e.Numeric)
		}
	}
	breaksFor := map[string][]float64{}
	for k, h := range histories {
		if len(h) >= 2 {
			breaksFor[k] = jenks.Breaks(h, 2)
		}
	}

	var out Log
	lastValue := map[string]string{}
	for _, e := range log {
		if e.Err || e.Kind == KindError {
			continue
		}
		if e.IsNumeric {
			k := Instance{Device: e.Device, Room: e.Room}.key()
			level := "low"
			if b := breaksFor[k]; len(b) > 0 {
				names := jenks.LevelNames(len(b) + 1)
				level = names[jenks.Classify(e.Numeric, b)]
			}
			e.Value = level
			e.IsNumeric = false
			e.Numeric = 0
		}
		vk := Instance{Device: e.Device, Room: e.Room}.key() + "|" + e.Channel.String()
		if lastValue[vk] == e.Value && e.Kind == KindSensor {
			continue // repetitive reading
		}
		lastValue[vk] = e.Value
		out = append(out, e)
	}
	return out
}

// DeviceStates extracts the final observed logical state of every device
// instance from a cleaned log.
func DeviceStates(log Log) map[Instance]string {
	out := map[Instance]string{}
	for _, e := range log {
		if e.Err {
			continue
		}
		out[Instance{Device: e.Device, Room: e.Room}] = e.Value
	}
	return out
}

// EventTypes assigns a compact integer id to every distinct
// (device, room, channel, value) event shape — the vocabulary DeepLog's
// LSTM models (Table II).
type EventTypes struct {
	ids   map[string]int
	names []string
}

// NewEventTypes creates an empty vocabulary.
func NewEventTypes() *EventTypes {
	return &EventTypes{ids: map[string]int{}}
}

// ID interns the event's type, growing the vocabulary as needed.
func (v *EventTypes) ID(e Event) int {
	k := e.Room + "|" + e.Device + "|" + e.Channel.String() + "|" + e.Value
	if id, ok := v.ids[k]; ok {
		return id
	}
	id := len(v.names)
	v.ids[k] = id
	v.names = append(v.names, k)
	return id
}

// Lookup returns the id without growing (-1 when unseen).
func (v *EventTypes) Lookup(e Event) int {
	k := e.Room + "|" + e.Device + "|" + e.Channel.String() + "|" + e.Value
	if id, ok := v.ids[k]; ok {
		return id
	}
	return -1
}

// Size is the vocabulary size.
func (v *EventTypes) Size() int { return len(v.names) }

// Sequence converts a log into its event-type id sequence, interning new
// types when grow is true and mapping unseen types to a reserved id
// otherwise.
func (v *EventTypes) Sequence(log Log, grow bool) []int {
	out := make([]int, 0, len(log))
	for _, e := range log {
		if grow {
			out = append(out, v.ID(e))
		} else if id := v.Lookup(e); id >= 0 {
			out = append(out, id)
		} else {
			out = append(out, v.Size()) // unseen-type sentinel
		}
	}
	return out
}

// StatusVector summarises a cleaned log as a fixed-length numeric vector
// (per-channel positive-state counts and command counts) — the input
// representation for the IsolationForest baseline of Table II.
func StatusVector(log Log) []float64 {
	out := make([]float64, 2*rules.NumChannels)
	for _, e := range log {
		ch := int(e.Channel)
		if ch >= rules.NumChannels {
			continue
		}
		if rules.StateSign(e.Value) > 0 {
			out[ch]++
		}
		if e.Kind == KindCommand {
			out[rules.NumChannels+ch]++
		}
	}
	return out
}
