// Package fexiot is the public API of the FexIoT reproduction: a federated,
// explicable GNN system for IoT interaction vulnerability analysis (Wang et
// al., ICDE 2023). It wraps the internal substrates behind a small facade:
//
//	sys, err := fexiot.New(fexiot.DefaultOptions())
//	g := sys.BuildGraph(deployedRules)          // offline interaction graph
//	sys.TrainCentral(trainingGraphs, 8, 120)    // or TrainFederated(...)
//	verdict, err := sys.Detect(g)               // vulnerability verdict
//	expl, err := sys.Explain(g)                 // responsible subgraph
//
// Detect, Explain and Evaluate fail with ErrNotTrained (not a panic) until
// one of the training entry points has installed a detector. New validates
// its Options and rejects unknown models and non-positive dimensions:
// start from DefaultOptions and override, rather than guessing which zero
// values are meaningful.
//
// The examples/ directory contains runnable walkthroughs and cmd/fexbench
// regenerates every table and figure of the paper's evaluation.
package fexiot

import (
	"errors"
	"fmt"

	"fexiot/internal/autodiff"
	"fexiot/internal/drift"
	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/explain"
	"fexiot/internal/fed"
	"fexiot/internal/fedproto/codec"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/ml"
	"fexiot/internal/obs"
	"fexiot/internal/rules"
)

// Re-exported core types so callers only import this package for common
// workflows.
type (
	// Rule is a trigger-action automation rule.
	Rule = rules.Rule
	// Graph is an IoT interaction graph.
	Graph = graph.Graph
	// Log is a device event log.
	Log = eventlog.Log
	// Metrics bundles accuracy/precision/recall/F1.
	Metrics = ml.Metrics
)

// Options configures a System. Build it with DefaultOptions and override
// the fields you care about; New rejects non-positive dimensions and
// unknown model names instead of silently substituting defaults.
type Options struct {
	// WordDim and SentenceDim size the text encoders (DefaultOptions picks
	// compact dims suitable for laptops; the paper used 300/512).
	WordDim     int
	SentenceDim int
	// Hidden and EmbedDim size the GNN.
	Hidden   int
	EmbedDim int
	// Model selects the representation network: "GIN", "GCN" or "MAGNN"
	// (empty selects GIN).
	Model string
	// Seed makes every component deterministic.
	Seed int64
	// Procs bounds the parallelism of the dense kernels and training
	// fan-outs (0 keeps the current setting: FEXIOT_PROCS or all cores).
	// Results are bit-identical at every setting.
	Procs int
	// Metrics, when non-nil, instruments the whole pipeline — training,
	// federation and the dense kernels — into the given observability
	// registry (serve it with obs.StartHTTP). Nil disables instrumentation
	// at unmeasurable cost.
	Metrics *obs.Registry
	// Codec selects the simulated federated update encoding ("raw64",
	// "f32", "q8", "topk"; empty = raw64): lossy schemes shrink upload
	// bytes by compressing per-round deltas at a bounded accuracy cost,
	// mirroring the networked protocol's -codec flag.
	Codec string
}

// DefaultOptions returns the documented defaults: a compact GIN sized for
// laptops, seed 1. Callers introspect and override fields rather than
// relying on zero values being patched up.
func DefaultOptions() Options {
	return Options{
		WordDim:     48,
		SentenceDim: 64,
		Hidden:      24,
		EmbedDim:    16,
		Model:       "GIN",
		Seed:        1,
	}
}

// validate rejects option sets New must not build from.
func (o Options) validate() error {
	switch o.Model {
	case "", "GIN", "GCN", "MAGNN":
	default:
		return fmt.Errorf("fexiot: unknown model %q (valid: GIN, GCN, MAGNN)", o.Model)
	}
	if o.WordDim < 1 || o.SentenceDim < 1 || o.Hidden < 1 || o.EmbedDim < 1 {
		return fmt.Errorf("fexiot: dimensions must be positive "+
			"(WordDim=%d SentenceDim=%d Hidden=%d EmbedDim=%d); start from DefaultOptions",
			o.WordDim, o.SentenceDim, o.Hidden, o.EmbedDim)
	}
	if o.Procs < 0 {
		return fmt.Errorf("fexiot: Procs must be non-negative, got %d", o.Procs)
	}
	if _, err := codec.New(o.Codec); err != nil {
		return fmt.Errorf("fexiot: %w", err)
	}
	return nil
}

// System is the assembled FexIoT pipeline: data fusion, detection and
// explanation.
type System struct {
	opts     Options
	encoder  *embed.Encoder
	builder  *fusion.Builder
	detector *gnn.Detector
	drift    *drift.Detector
}

// New assembles a system, or reports why the options cannot be built.
func New(opts Options) (*System, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Procs > 0 {
		mat.SetParallelism(opts.Procs)
	}
	if opts.Metrics != nil {
		mat.InstrumentKernels(opts.Metrics)
	}
	enc := embed.NewEncoder(opts.WordDim, opts.SentenceDim)
	return &System{
		opts:    opts,
		encoder: enc,
		builder: fusion.NewBuilder(opts.Seed, enc),
	}, nil
}

// newModel instantiates the configured GNN.
func (s *System) newModel(seed int64) gnn.Model {
	wordDim := s.encoder.WordDim() + 2*fusion.SigDim
	sentDim := s.encoder.SentenceDim() + 2*fusion.SigDim
	switch s.opts.Model {
	case "GCN":
		return gnn.NewGCN(wordDim, s.opts.Hidden, s.opts.EmbedDim, seed)
	case "MAGNN":
		return gnn.NewMAGNN(wordDim, sentDim, s.opts.Hidden, s.opts.EmbedDim, seed)
	default:
		return gnn.NewGIN(wordDim, s.opts.Hidden, s.opts.EmbedDim, seed)
	}
}

// BuildGraph chains deployed rules into an offline interaction graph
// (§III-A3) and labels it with the ground-truth detectors.
func (s *System) BuildGraph(deployed []*Rule) *Graph {
	size := len(deployed)
	if size > 50 {
		size = 50
	}
	return s.builder.Offline(deployed, size)
}

// BuildOnlineGraph fuses a cleaned event log with the deployed rules into
// an online interaction graph.
func (s *System) BuildOnlineGraph(deployed []*Rule, log Log) *Graph {
	return s.builder.BuildOnline(deployed, log)
}

// CleanLog applies §III-A2 log cleaning (error removal, duplicate
// collapsing, Jenks numeric→logical conversion).
func CleanLog(log Log) Log { return eventlog.Clean(log) }

// SimulateHome runs the discrete-event simulator over deployed rules for
// the given number of simulated seconds and returns the raw event log.
func SimulateHome(deployed []*Rule, steps int64, seed int64) Log {
	return eventlog.NewSimulator(deployed, seed).Run(steps)
}

// TrainCentral trains the detection pipeline centrally on labelled graphs
// (contrastive representation + linear head), for rounds×pairsPerRound
// contrastive pairs.
func (s *System) TrainCentral(graphs []*Graph, rounds, pairsPerRound int) {
	m := s.newModel(100 + s.opts.Seed)
	cfg := gnn.DefaultTrainConfig(s.opts.Seed)
	cfg.LR = 0.005
	cfg.PairsPerEpoch = pairsPerRound
	cfg.Metrics = s.opts.Metrics
	opt := autodiff.NewAdam(cfg.LR)
	opt.WeightDecay = 1e-4
	for r := 0; r < rounds; r++ {
		cfg.Seed = s.opts.Seed + int64(r)
		gnn.TrainContrastive(m, graphs, cfg, opt)
	}
	s.detector = gnn.NewDetector(m, 3)
	s.detector.FitClassifier(graphs)
	s.fitDrift(graphs)
}

// FederatedAlgorithm names a federated training strategy.
type FederatedAlgorithm string

// The five Fig. 4 strategies.
const (
	AlgoFexIoT FederatedAlgorithm = "fexiot"
	AlgoGCFL   FederatedAlgorithm = "gcfl+"
	AlgoFMTL   FederatedAlgorithm = "fmtl"
	AlgoFedAvg FederatedAlgorithm = "fedavg"
	AlgoClient FederatedAlgorithm = "client"
)

func (a FederatedAlgorithm) build() (fed.Algorithm, error) {
	switch a {
	case AlgoFexIoT, "":
		return fed.NewFexIoT(), nil
	case AlgoGCFL:
		return fed.GCFL(), nil
	case AlgoFMTL:
		return fed.FMTL(), nil
	case AlgoFedAvg:
		return fed.FedAvg{}, nil
	case AlgoClient:
		return fed.ClientOnly{}, nil
	default:
		return nil, fmt.Errorf("fexiot: unknown federated algorithm %q", a)
	}
}

// FederatedResult reports a federated training run.
type FederatedResult struct {
	// TransferredBytes is the total communication cost.
	TransferredBytes int64
	// Clusters is the final client→cluster assignment.
	Clusters []int
}

// TrainFederated trains across client datasets with the selected algorithm
// (paper's Algorithm 1 by default) and installs client 0's model as the
// system detector. The per-client detectors are returned via the clients'
// own heads when needed; use the experiments package for full Fig. 4 style
// evaluation.
func (s *System) TrainFederated(clientData [][]*Graph, algo FederatedAlgorithm,
	rounds int) (*FederatedResult, error) {
	a, err := algo.build()
	if err != nil {
		return nil, err
	}
	base := s.newModel(100 + s.opts.Seed)
	clients := fed.NewClients(base, clientData, 0.005)
	cfg := fed.DefaultConfig(s.opts.Seed)
	cfg.Rounds = rounds
	cfg.Eps1, cfg.Eps2 = 0.4, 0.95
	cfg.Metrics = s.opts.Metrics
	cfg.Codec = s.opts.Codec
	res := a.Run(clients, cfg)

	var all []*Graph
	for _, ds := range clientData {
		all = append(all, ds...)
	}
	s.detector = gnn.NewDetector(clients[0].Model, 3)
	s.detector.FitClassifier(all)
	s.fitDrift(all)
	return &FederatedResult{
		TransferredBytes: res.Comm.Total(),
		Clusters:         res.FinalClusters,
	}, nil
}

// fitDrift fits the MAD drift detector on training embeddings.
func (s *System) fitDrift(graphs []*Graph) {
	emb := gnn.EmbedAll(s.detector.Model, graphs)
	labels := make([]int, len(graphs))
	for i, g := range graphs {
		if g.Label {
			labels[i] = 1
		}
	}
	s.drift = drift.Fit(emb, labels)
}

// Verdict is a detection outcome.
type Verdict struct {
	Vulnerable bool
	Score      float64 // vulnerability probability
	Drifting   bool    // outside the training distribution (§III-B3)
	// DriftScore is the MAD-normalised out-of-distribution deviation A^k;
	// values above 3 set Drifting.
	DriftScore float64
}

// ErrNotTrained reports a detection, explanation or evaluation request
// against a system with no installed detector. Test with errors.Is; train
// via TrainCentral or TrainFederated to clear it.
var ErrNotTrained = errors.New("fexiot: system not trained; call TrainCentral or TrainFederated first")

// Detect classifies an interaction graph. It fails with ErrNotTrained
// until the system has been trained.
func (s *System) Detect(g *Graph) (Verdict, error) {
	if s.detector == nil {
		return Verdict{}, ErrNotTrained
	}
	score := s.detector.Score(g)
	v := Verdict{Vulnerable: score >= 0.5, Score: score}
	if s.drift != nil {
		z := gnn.Embed(s.detector.Model, g)
		v.DriftScore = s.drift.Anomaly(z)
		v.Drifting = s.drift.IsDrifting(z)
	}
	return v, nil
}

// Explanation is a detected root-cause subgraph.
type Explanation struct {
	NodeIndices []int
	Rules       []*Rule
	Score       float64
	Fidelity    float64
	Sparsity    float64
}

// Explain runs the SHAP-guided Monte Carlo beam search (Algorithm 2) on a
// graph and returns the highest-risk connected subgraph. It fails with
// ErrNotTrained until the system has been trained.
func (s *System) Explain(g *Graph) (Explanation, error) {
	if s.detector == nil {
		return Explanation{}, ErrNotTrained
	}
	h := func(sub *graph.Graph) float64 {
		if sub.N() == 0 {
			return 0
		}
		return s.detector.Score(sub)
	}
	cfg := explain.DefaultSearchConfig(s.opts.Seed)
	ex := explain.FexIoTExplain(h, g, cfg)
	out := Explanation{
		NodeIndices: ex.Nodes,
		Score:       ex.Score,
		Fidelity:    explain.Fidelity(h, g, ex.Nodes),
		Sparsity:    explain.Sparsity(g, ex.Nodes),
	}
	for _, idx := range ex.Nodes {
		out.Rules = append(out.Rules, g.Nodes[idx].Rule)
	}
	return out, nil
}

// Evaluate computes detection metrics over labelled graphs. It fails with
// ErrNotTrained until the system has been trained.
func (s *System) Evaluate(graphs []*Graph) (Metrics, error) {
	if s.detector == nil {
		return Metrics{}, ErrNotTrained
	}
	return gnn.EvaluateDetector(s.detector, graphs), nil
}

// GenerateHome samples a synthetic smart-home rule deployment from the
// built-in archetypes — handy for examples and tests.
func GenerateHome(archetype string, numRules int, seed int64) []*Rule {
	for _, a := range rules.Archetypes() {
		if a.Name == archetype {
			return rules.NewGenerator(seed, a, archetype+"-").RuleSet(numRules)
		}
	}
	archs := rules.Archetypes()
	return rules.NewGenerator(seed, archs[0], "home-").RuleSet(numRules)
}

// ArchetypeNames lists the built-in household archetypes.
func ArchetypeNames() []string {
	var out []string
	for _, a := range rules.Archetypes() {
		out = append(out, a.Name)
	}
	return out
}
