// Package drift implements §III-B3 of the paper: detecting drifting
// interaction-graph samples — novel vulnerability patterns outside the
// training distribution — from federated contrastive graph representations
// using per-class median-absolute-deviation statistics, plus the k-means
// and exact t-SNE used to visualise the embedding space (Fig. 6).
package drift

import (
	"math"

	"fexiot/internal/mat"
)

// TM is the MAD multiple beyond which a sample is a potential drifting
// sample; the paper sets it to 3 "empirically following existing
// practices".
const TM = 3.0

// Detector holds the per-class statistics computed from training
// embeddings.
type Detector struct {
	// Centroids per class (0 = normal, 1 = vulnerable).
	Centroids [][]float64
	// MedianDist and MAD of the distance-to-centroid distribution per
	// class.
	MedianDist []float64
	MAD        []float64
	// Threshold is the MAD multiple (default TM).
	Threshold float64
}

// Fit computes class centroids and the MAD of within-class distances from
// labelled training embeddings.
func Fit(embeddings [][]float64, labels []int) *Detector {
	if len(embeddings) == 0 || len(embeddings) != len(labels) {
		panic("drift: Fit needs aligned non-empty embeddings and labels")
	}
	numClasses := 0
	for _, l := range labels {
		if l+1 > numClasses {
			numClasses = l + 1
		}
	}
	d := &Detector{Threshold: TM}
	dim := len(embeddings[0])
	for class := 0; class < numClasses; class++ {
		centroid := make([]float64, dim)
		n := 0
		for i, l := range labels {
			if l == class {
				mat.Axpy(centroid, embeddings[i], 1)
				n++
			}
		}
		if n == 0 {
			// Empty class: infinite distances so it never claims samples.
			d.Centroids = append(d.Centroids, centroid)
			d.MedianDist = append(d.MedianDist, math.Inf(1))
			d.MAD = append(d.MAD, 1)
			continue
		}
		for i := range centroid {
			centroid[i] /= float64(n)
		}
		var dists []float64
		for i, l := range labels {
			if l == class {
				dists = append(dists, mat.Dist2(embeddings[i], centroid))
			}
		}
		med := mat.Median(dists)
		devs := make([]float64, len(dists))
		for i, x := range dists {
			devs[i] = math.Abs(x - med)
		}
		madVal := mat.Median(devs)
		if madVal < 1e-9 {
			madVal = 1e-9 // degenerate class collapses to a point
		}
		d.Centroids = append(d.Centroids, centroid)
		d.MedianDist = append(d.MedianDist, med)
		d.MAD = append(d.MAD, madVal)
	}
	return d
}

// Anomaly returns A^k = min_i (d_i − median_i)₊ / MAD_i for a test
// embedding: how many MADs the sample sits *beyond* its nearest class's
// typical distance-to-centroid. The deviation is one-sided — §III-B3 asks
// whether "d is large enough to make x an outlier", so samples closer than
// typical to a centroid are maximally in-distribution, not anomalous.
func (d *Detector) Anomaly(z []float64) float64 {
	best := math.Inf(1)
	for class := range d.Centroids {
		if math.IsInf(d.MedianDist[class], 1) {
			continue
		}
		dist := mat.Dist2(z, d.Centroids[class])
		dev := dist - d.MedianDist[class]
		if dev < 0 {
			dev = 0
		}
		a := dev / d.MAD[class]
		if a < best {
			best = a
		}
	}
	return best
}

// IsDrifting reports whether the sample exceeds the MAD threshold for every
// class — "if a new sample has a larger distance from all existing classes,
// then it is a potential drifting sample".
func (d *Detector) IsDrifting(z []float64) bool {
	return d.Anomaly(z) > d.Threshold
}

// Clone returns a deep copy of the fitted statistics. Serving snapshots
// freeze drift state with it so a later Fit on fresh training data can
// never mutate the centroids an in-flight request is reading.
func (d *Detector) Clone() *Detector {
	if d == nil {
		return nil
	}
	out := &Detector{Threshold: d.Threshold}
	for _, c := range d.Centroids {
		out.Centroids = append(out.Centroids, append([]float64(nil), c...))
	}
	out.MedianDist = append([]float64(nil), d.MedianDist...)
	out.MAD = append([]float64(nil), d.MAD...)
	return out
}

// FilterDrifting partitions test embeddings into in-distribution indices
// and drifting indices.
func (d *Detector) FilterDrifting(embeddings [][]float64) (in, drifting []int) {
	for i, z := range embeddings {
		if d.IsDrifting(z) {
			drifting = append(drifting, i)
		} else {
			in = append(in, i)
		}
	}
	return
}
