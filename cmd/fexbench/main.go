// Command fexbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fexbench -exp fig4            # one experiment
//	fexbench -exp all             # everything (slow)
//	fexbench -list                # show experiment ids
//	FEXIOT_SCALE=paper fexbench -exp table1   # paper-sized datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fexiot/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	seed := flag.Int64("seed", 1, "master random seed")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			fmt.Println("  ", n)
		}
		if *exp == "" {
			os.Exit(0)
		}
		return
	}

	setup := experiments.DefaultSetup()
	setup.Seed = *seed
	fmt.Printf("scale=%s seed=%d\n\n", setup.Scale.Name, setup.Seed)

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := experiments.Run(id, setup)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("[%s took %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}
