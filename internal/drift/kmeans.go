package drift

import (
	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// KMeans clusters vectors into k groups with Lloyd's algorithm and
// k-means++ seeding (used for the Fig. 6 cluster visualisation).
type KMeans struct {
	K        int
	MaxIter  int
	Seed     int64
	Centers  [][]float64
	Assigned []int
	Inertia  float64
}

// NewKMeans creates a clusterer.
func NewKMeans(k int, seed int64) *KMeans {
	return &KMeans{K: k, MaxIter: 100, Seed: seed}
}

// Fit runs Lloyd's algorithm seeded from the struct's Seed field.
func (km *KMeans) Fit(x [][]float64) {
	km.FitRNG(x, rng.New(km.Seed))
}

// FitRNG runs Lloyd's algorithm drawing all randomness from the supplied
// caller-owned generator, so concurrent fits on distinct KMeans values
// never share a random stream and equal-seeded fits are bit-identical.
func (km *KMeans) FitRNG(x [][]float64, r *rng.RNG) {
	n := len(x)
	if n == 0 {
		return
	}
	k := km.K
	if k > n {
		k = n
	}

	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	centers = append(centers, cloneVec(x[r.Intn(n)]))
	d2 := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, p := range x {
			best := mat.Dist2(p, centers[0])
			for _, c := range centers[1:] {
				if d := mat.Dist2(p, c); d < best {
					best = d
				}
			}
			d2[i] = best * best
			total += d2[i]
		}
		if total == 0 {
			centers = append(centers, cloneVec(x[r.Intn(n)]))
			continue
		}
		centers = append(centers, cloneVec(x[r.PickWeighted(d2)]))
	}

	assign := make([]int, n)
	for iter := 0; iter < km.MaxIter; iter++ {
		changed := false
		for i, p := range x {
			best := 0
			bestD := mat.Dist2(p, centers[0])
			for c := 1; c < k; c++ {
				if d := mat.Dist2(p, centers[c]); d < bestD {
					bestD, best = d, c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centres.
		dim := len(x[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range x {
			mat.Axpy(sums[assign[i]], p, 1)
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue // keep old centre for empty clusters
			}
			for j := range sums[c] {
				sums[c][j] /= float64(counts[c])
			}
			centers[c] = sums[c]
		}
		if !changed && iter > 0 {
			break
		}
	}
	km.Centers = centers
	km.Assigned = assign
	km.Inertia = 0
	for i, p := range x {
		d := mat.Dist2(p, centers[assign[i]])
		km.Inertia += d * d
	}
}

// Predict returns the nearest centre index.
func (km *KMeans) Predict(p []float64) int {
	best := 0
	bestD := mat.Dist2(p, km.Centers[0])
	for c := 1; c < len(km.Centers); c++ {
		if d := mat.Dist2(p, km.Centers[c]); d < bestD {
			bestD, best = d, c
		}
	}
	return best
}

func cloneVec(v []float64) []float64 { return append([]float64(nil), v...) }
