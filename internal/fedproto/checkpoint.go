package fedproto

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint is the gob snapshot a durable server writes after closing a
// round: everything a restarted fexserver needs to resume the federation —
// the next round to collect, the pinned tensor layout, the last global
// model (replayed to rejoining clients via the ordinary hello/sync path),
// the per-client strike state, and the run's stats so counters survive the
// crash.
type Checkpoint struct {
	// Round is the next round to collect: rounds [0, Round) have closed.
	Round  int
	Shapes [][][2]int
	Names  [][]string
	Global []LayerPayload
	// Strikes maps client id → consecutive missed rounds at snapshot time.
	Strikes map[int]int
	// Sizes maps client id → |G_c|, informational (hellos re-announce it).
	Sizes map[int]int
	Stats ServerStats
}

// SaveCheckpoint writes ck atomically: gob into a temp file in the target
// directory, fsync, rename. A crash mid-write leaves the previous snapshot
// intact, so the latest durable round is never corrupted.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := gob.NewEncoder(tmp).Encode(ck); err != nil {
		tmp.Close()
		return fmt.Errorf("fedproto: encode checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads a snapshot written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("fedproto: decode checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// saveCheckpoint snapshots the server state after nextRound−1 closed.
func (s *Server) saveCheckpoint(nextRound int) error {
	s.mu.Lock()
	ck := &Checkpoint{
		Round:   nextRound,
		Shapes:  s.shapes,
		Names:   s.names,
		Global:  s.global,
		Strikes: map[int]int{},
		Sizes:   map[int]int{},
		Stats:   s.stats,
	}
	ck.Stats.Responders = append([]int(nil), s.stats.Responders...)
	for _, st := range s.clients {
		if st.alive {
			ck.Strikes[st.id] = st.strikes
			ck.Sizes[st.id] = st.size
		}
	}
	s.mu.Unlock()
	return SaveCheckpoint(s.cfg.CheckpointPath, ck)
}

// restoreCheckpoint loads the latest snapshot, if any, before Run starts
// listening. A missing file is a fresh federation, not an error.
func (s *Server) restoreCheckpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	ck, err := LoadCheckpoint(s.cfg.CheckpointPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.startRound = ck.Round
	s.round = ck.Round
	s.shapes = ck.Shapes
	s.names = ck.Names
	s.global = ck.Global
	s.stats = ck.Stats
	s.restoredStrikes = ck.Strikes
	return nil
}
