package rules

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogWellFormed(t *testing.T) {
	cat := Catalog()
	if len(cat) < 20 {
		t.Fatalf("catalog too small: %d", len(cat))
	}
	names := map[string]bool{}
	for _, d := range cat {
		if d.Name == "" {
			t.Fatal("unnamed device")
		}
		if names[d.Name] {
			t.Fatalf("duplicate device %q", d.Name)
		}
		names[d.Name] = true
		if !d.IsSensor() && !d.IsActuator() {
			t.Fatalf("device %q neither senses nor actuates", d.Name)
		}
		if d.IsSensor() && len(d.SenseStates) == 0 {
			t.Fatalf("sensor %q has no states", d.Name)
		}
		for _, c := range d.Commands {
			if c.Verb == "" || c.State == "" || c.Channel == ChanNone {
				t.Fatalf("device %q has malformed command %+v", d.Name, c)
			}
		}
	}
}

func TestStateSignAndOpposite(t *testing.T) {
	if StateSign("on") != 1 || StateSign("off") != -1 || StateSign("sunset") != 0 {
		t.Fatal("StateSign wrong")
	}
	// Opposites are involutive where defined.
	for _, s := range []string{"on", "open", "detected", "high", "wet",
		"locked", "home", "bright", "running"} {
		o := OppositeState(s)
		if o == "" {
			t.Fatalf("%q has no opposite", s)
		}
		if OppositeState(o) != s {
			t.Fatalf("opposite not involutive for %q", s)
		}
		if StateSign(s) != -StateSign(o) {
			t.Fatalf("signs of %q and %q must oppose", s, o)
		}
	}
}

func TestCanTriggerDirect(t *testing.T) {
	// "Turn on the lights" directly matches "the lights are on".
	a := Effect{Device: "light", Channel: ChanPower, State: "on"}
	c := Condition{Device: "light", Channel: ChanPower, State: "on"}
	if CanTrigger(a, c) != DirectMatch {
		t.Fatal("direct match expected")
	}
	// Different state: no direct trigger.
	c.State = "off"
	if CanTrigger(a, c) != NoMatch {
		t.Fatal("opposite state must not trigger")
	}
}

func TestCanTriggerEnvironmental(t *testing.T) {
	// Heater on raises temperature → triggers "temperature is high".
	heater := Effect{Device: "heater", Channel: ChanPower, State: "on",
		Env: []EnvDelta{{ChanTemperature, 1}}}
	hot := Condition{Device: "temperature sensor", Channel: ChanTemperature, State: "high"}
	cold := Condition{Device: "temperature sensor", Channel: ChanTemperature, State: "low"}
	if CanTrigger(heater, hot) != EnvMatch {
		t.Fatal("heater should raise temperature")
	}
	if CanTrigger(heater, cold) != NoMatch {
		t.Fatal("heater must not trigger low temperature")
	}
}

func TestBlocks(t *testing.T) {
	closeWin := Effect{Device: "window", Channel: ChanContact, State: "closed"}
	openCond := Condition{Device: "window", Channel: ChanContact, State: "open"}
	if !Blocks(closeWin, openCond) {
		t.Fatal("closing the window blocks the open condition")
	}
	// Environmental block: AC lowers temperature, blocking "high".
	ac := Effect{Device: "air conditioner", Channel: ChanPower, State: "on",
		Env: []EnvDelta{{ChanTemperature, -1}}}
	hot := Condition{Device: "temperature sensor", Channel: ChanTemperature, State: "high"}
	if !Blocks(ac, hot) {
		t.Fatal("AC blocks high temperature")
	}
	if Blocks(ac, Condition{Device: "temperature sensor", Channel: ChanTemperature, State: "low"}) {
		t.Fatal("AC does not block low temperature")
	}
}

func TestConflictsAndDuplicates(t *testing.T) {
	on := Effect{Device: "water valve", Channel: ChanWaterFlow, State: "on"}
	off := Effect{Device: "water valve", Channel: ChanWaterFlow, State: "off"}
	if !Conflicts(on, off) {
		t.Fatal("valve on/off must conflict")
	}
	if Conflicts(on, on) {
		t.Fatal("same action is not a conflict")
	}
	if !Duplicates(on, on) {
		t.Fatal("same action duplicates")
	}
	other := Effect{Device: "light", Channel: ChanPower, State: "on"}
	if Conflicts(on, other) || Duplicates(on, other) {
		t.Fatal("different devices never conflict/duplicate")
	}
}

func TestDescribePlatformIdioms(t *testing.T) {
	trig := Condition{Device: "motion sensor", Channel: ChanMotion, State: "detected"}
	act := []Effect{{Device: "light", Verb: "turn on", Channel: ChanPower, State: "on"}}
	cases := map[Platform]string{
		SmartThings:   "when motion is detected",
		HomeAssistant: "When motion is detected",
		IFTTT:         "If motion is detected, then",
	}
	for p, want := range cases {
		got := Describe(p, trig, act)
		if !strings.Contains(got, want) {
			t.Errorf("%s description %q missing %q", p, got, want)
		}
		if !strings.Contains(strings.ToLower(got), "turn on the light") {
			t.Errorf("%s description %q missing action", p, got)
		}
	}
	// Voice platforms prefix the wake word on voice triggers.
	voiceTrig := Condition{Device: "voice", Channel: ChanVoice, State: "good night"}
	alexa := Describe(AmazonAlexa, voiceTrig, act)
	if !strings.HasPrefix(alexa, "Alexa, ") {
		t.Errorf("Alexa description %q", alexa)
	}
	google := Describe(GoogleAssistant, voiceTrig, act)
	if !strings.HasPrefix(google, "Hey Google, ") {
		t.Errorf("Google description %q", google)
	}
}

func TestDescribeMultiAction(t *testing.T) {
	trig := Condition{Device: "smoke detector", Channel: ChanSmoke, State: "detected"}
	acts := []Effect{
		{Device: "water valve", Verb: "turn on", Channel: ChanWaterFlow, State: "on"},
		{Device: "alarm", Verb: "sound", Channel: ChanSound, State: "on"},
	}
	got := Describe(IFTTT, trig, acts)
	if !strings.Contains(got, "and sound the alarm") {
		t.Errorf("multi-action description %q", got)
	}
	if !strings.Contains(got, "smoke is detected") {
		t.Errorf("description %q should phrase smoke naturally", got)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	arch := Archetypes()[0]
	a := NewGenerator(7, arch, "r").RuleSet(20)
	b := NewGenerator(7, arch, "r").RuleSet(20)
	for i := range a {
		if a[i].Description != b[i].Description || a[i].ID != b[i].ID {
			t.Fatal("generator must be deterministic")
		}
	}
}

func TestGeneratorWellFormedRulesProperty(t *testing.T) {
	archs := Archetypes()
	f := func(seed int64, archIdx uint8) bool {
		g := NewGenerator(seed, archs[int(archIdx)%len(archs)], "x")
		for i := 0; i < 10; i++ {
			r := g.Rule()
			if r.ID == "" || r.Description == "" {
				return false
			}
			if len(r.Actions) == 0 || len(r.Actions) > 2 {
				return false
			}
			if r.Trigger.Channel == ChanNone {
				return false
			}
			for _, a := range r.Actions {
				if a.Device == "" || a.State == "" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorArchetypeBias(t *testing.T) {
	// A security home should mention security devices far more often than a
	// climate home does.
	count := func(arch Archetype, device string) int {
		g := NewGenerator(11, arch, "x")
		n := 0
		for _, r := range g.RuleSet(400) {
			for _, a := range r.Actions {
				if a.Device == device {
					n++
				}
			}
			if r.Trigger.Device == device {
				n++
			}
		}
		return n
	}
	archs := Archetypes()
	var security, climate Archetype
	for _, a := range archs {
		switch a.Name {
		case "security":
			security = a
		case "climate":
			climate = a
		}
	}
	if count(security, "lock") <= count(climate, "lock") {
		t.Error("security archetype should use locks more")
	}
	if count(climate, "heater") <= count(security, "heater") {
		t.Error("climate archetype should use heaters more")
	}
}

func TestRuleSetOnRestrictsPlatform(t *testing.T) {
	g := NewGenerator(3, Archetypes()[2], "x")
	for _, r := range g.RuleSetOn(IFTTT, 50) {
		if r.Platform != IFTTT {
			t.Fatalf("rule on %s", r.Platform)
		}
	}
}

func TestVoicePlatformClassification(t *testing.T) {
	if !GoogleAssistant.VoicePlatform() || !AmazonAlexa.VoicePlatform() {
		t.Fatal("assistants are voice platforms")
	}
	if SmartThings.VoicePlatform() || IFTTT.VoicePlatform() {
		t.Fatal("app platforms are not voice platforms")
	}
}

func TestRuleCanTriggerChain(t *testing.T) {
	// R1: motion → lights on. R2: lights on → lock door.
	r1 := &Rule{ID: "r1",
		Trigger: Condition{Device: "motion sensor", Channel: ChanMotion, State: "detected"},
		Actions: []Effect{{Device: "light", Channel: ChanPower, State: "on",
			Env: []EnvDelta{{ChanIlluminance, 1}}}}}
	r2 := &Rule{ID: "r2",
		Trigger: Condition{Device: "light", Channel: ChanPower, State: "on"},
		Actions: []Effect{{Device: "lock", Channel: ChanLockState, State: "locked"}}}
	if RuleCanTrigger(r1, r2) != DirectMatch {
		t.Fatal("r1 should directly trigger r2")
	}
	if RuleCanTrigger(r2, r1) != NoMatch {
		t.Fatal("r2 must not trigger r1")
	}
	// Environmental chain: lights on raises illuminance → "bright" trigger.
	r3 := &Rule{ID: "r3",
		Trigger: Condition{Device: "illuminance sensor", Channel: ChanIlluminance, State: "bright"},
		Actions: []Effect{{Device: "blind", Channel: ChanContact, State: "closed"}}}
	if RuleCanTrigger(r1, r3) != EnvMatch {
		t.Fatal("light should environmentally trigger brightness rule")
	}
}
