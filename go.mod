module fexiot

go 1.22
