// Package jenks implements the Jenks natural-breaks classification
// algorithm (Fisher's exact dynamic program). FexIoT uses it to convert
// numerical sensor readings in event logs ("humidity is 32") into the
// logical levels app descriptions speak of ("humidity is low"), §III-A2.
package jenks

import (
	"fmt"
	"sort"
)

// Breaks computes the k-class natural breaks for data. It returns the k-1
// upper boundaries of the first k-1 classes (ascending); a value v belongs
// to class i when v ≤ breaks[i] (last class otherwise). Duplicates in data
// are fine. k must be ≥ 2; when the data has fewer distinct values than k,
// the effective class count shrinks gracefully.
func Breaks(data []float64, k int) []float64 {
	if k < 2 {
		panic(fmt.Sprintf("jenks: k = %d; need ≥ 2", k))
	}
	if len(data) == 0 {
		return nil
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	n := len(sorted)
	if k > n {
		k = n
	}
	if k < 2 {
		return nil
	}

	// Fisher-Jenks dynamic program over prefix sums.
	// cost(i,j) = within-class sum of squared deviations of sorted[i..j].
	prefix := make([]float64, n+1)
	prefixSq := make([]float64, n+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
		prefixSq[i+1] = prefixSq[i] + v*v
	}
	cost := func(i, j int) float64 { // inclusive indices
		cnt := float64(j - i + 1)
		s := prefix[j+1] - prefix[i]
		sq := prefixSq[j+1] - prefixSq[i]
		return sq - s*s/cnt
	}

	const inf = 1e300
	// dp[c][j] = minimal cost of splitting sorted[0..j] into c+1 classes.
	dp := make([][]float64, k)
	arg := make([][]int, k)
	for c := range dp {
		dp[c] = make([]float64, n)
		arg[c] = make([]int, n)
	}
	for j := 0; j < n; j++ {
		dp[0][j] = cost(0, j)
	}
	for c := 1; c < k; c++ {
		for j := 0; j < n; j++ {
			dp[c][j] = inf
			if j < c {
				continue
			}
			for split := c; split <= j; split++ {
				v := dp[c-1][split-1] + cost(split, j)
				if v < dp[c][j] {
					dp[c][j] = v
					arg[c][j] = split
				}
			}
		}
	}

	// Recover the break positions.
	var cuts []int
	j := n - 1
	for c := k - 1; c >= 1; c-- {
		split := arg[c][j]
		cuts = append(cuts, split)
		j = split - 1
		if j < 0 {
			break
		}
	}
	// cuts are the start indices of classes 1..k-1, in reverse order.
	breaks := make([]float64, 0, len(cuts))
	for i := len(cuts) - 1; i >= 0; i-- {
		breaks = append(breaks, sorted[cuts[i]-1])
	}
	return dedupe(breaks)
}

func dedupe(b []float64) []float64 {
	out := b[:0]
	for i, v := range b {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Classify returns the class index of v given ascending breaks (as produced
// by Breaks): class i when v ≤ breaks[i], else len(breaks).
func Classify(v float64, breaks []float64) int {
	for i, b := range breaks {
		if v <= b {
			return i
		}
	}
	return len(breaks)
}

// LevelNames maps a class count to human-readable logical levels matching
// the vocabulary of app descriptions.
func LevelNames(k int) []string {
	switch k {
	case 2:
		return []string{"low", "high"}
	case 3:
		return []string{"low", "medium", "high"}
	case 4:
		return []string{"very_low", "low", "high", "very_high"}
	default:
		names := make([]string, k)
		for i := range names {
			names[i] = fmt.Sprintf("level_%d", i)
		}
		return names
	}
}

// ToLogical converts a numeric reading into a logical level word using
// natural breaks computed over the historical values.
func ToLogical(v float64, history []float64, k int) string {
	breaks := Breaks(history, k)
	names := LevelNames(len(breaks) + 1)
	idx := Classify(v, breaks)
	if idx >= len(names) {
		idx = len(names) - 1
	}
	return names[idx]
}
