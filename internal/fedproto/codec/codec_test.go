package codec

import (
	"math"
	"math/rand"
	"testing"
)

// vectors is the shared property-test corpus: shapes and distributions a
// federated delta actually takes, plus adversarial edge cases.
func vectors() map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	gauss := make([]float64, 999)
	for i := range gauss {
		gauss[i] = rng.NormFloat64() * 0.01
	}
	skewed := make([]float64, 256)
	for i := range skewed {
		skewed[i] = math.Exp(rng.NormFloat64()) - 1
	}
	return map[string][]float64{
		"empty":    {},
		"single":   {0.25},
		"zeros":    make([]float64, 64),
		"constant": {3.5, 3.5, 3.5, 3.5},
		"gauss":    gauss,
		"skewed":   skewed,
		"tiny":     {1e-300, -1e-300, 0, 2e-300},
		"mixed":    {-1, 0, 1, 0.5, -0.25, 1e-9, -1e-9, 100},
	}
}

func TestNewResolvesEveryName(t *testing.T) {
	for _, name := range Names() {
		cdc, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if cdc.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, cdc.Name())
		}
	}
	if cdc, err := New(""); err != nil || cdc.Name() != Raw64 {
		t.Fatalf("New(\"\") = %v, %v; want raw64", cdc, err)
	}
	if _, err := New("zstd"); err == nil {
		t.Fatal("unknown scheme must be rejected")
	}
}

func TestRaw64BitIdentical(t *testing.T) {
	cdc, _ := New(Raw64)
	for name, v := range vectors() {
		got, err := cdc.Decode(cdc.Encode(v))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(v) {
			t.Fatalf("%s: length %d want %d", name, len(got), len(v))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("%s[%d]: %v != %v (raw64 must be bit-identical)",
					name, i, got[i], v[i])
			}
		}
	}
}

func TestF32WithinFloat32Rounding(t *testing.T) {
	cdc, _ := New(F32)
	for name, v := range vectors() {
		got, err := cdc.Decode(cdc.Encode(v))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range v {
			if got[i] != float64(float32(v[i])) {
				t.Fatalf("%s[%d]: %v is not the float32 rounding of %v",
					name, i, got[i], v[i])
			}
		}
	}
}

func TestQ8ErrorWithinHalfScale(t *testing.T) {
	cdc, _ := New(Q8)
	for name, v := range vectors() {
		tens := cdc.Encode(v)
		got, err := cdc.Decode(tens)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Documented bound: per-coordinate error ≤ Scale/2 with
		// Scale = (max−min)/255. A hair of slack covers the rounding of
		// Scale itself.
		bound := tens.Scale/2 + 1e-12*math.Abs(tens.Scale)
		for i := range v {
			if e := math.Abs(got[i] - v[i]); e > bound {
				t.Fatalf("%s[%d]: |%v − %v| = %v exceeds Scale/2 = %v",
					name, i, got[i], v[i], e, bound)
			}
		}
	}
}

func TestQ8RejectsNonFiniteInput(t *testing.T) {
	cdc, _ := New(Q8)
	for _, bad := range [][]float64{
		{1, math.NaN(), 3},
		{math.Inf(1), 0},
		{0, math.Inf(-1)},
	} {
		if _, err := cdc.Decode(cdc.Encode(bad)); err == nil {
			t.Fatalf("q8 round-trip of %v must fail like a NaN dense update", bad)
		}
	}
}

func TestTopKKeepsLargestMagnitudes(t *testing.T) {
	cdc, _ := New(TopK)
	v := make([]float64, 100)
	rng := rand.New(rand.NewSource(7))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	tens := cdc.Encode(v)
	k := int(math.Ceil(DefaultTopKRatio * float64(len(v))))
	if len(tens.Idx) != k || len(tens.Vals) != k {
		t.Fatalf("kept %d/%d coordinates, want %d", len(tens.Idx), len(tens.Vals), k)
	}
	// The smallest kept magnitude dominates every dropped one.
	kept := map[uint32]bool{}
	minKept := math.Inf(1)
	for _, i := range tens.Idx {
		kept[i] = true
		if m := math.Abs(v[i]); m < minKept {
			minKept = m
		}
	}
	for i, x := range v {
		if !kept[uint32(i)] && math.Abs(x) > minKept {
			t.Fatalf("dropped |v[%d]| = %v > smallest kept %v", i, math.Abs(x), minKept)
		}
	}
	got, err := cdc.Decode(tens)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range got {
		if kept[uint32(i)] {
			if x != float64(float32(v[i])) {
				t.Fatalf("kept coordinate %d decodes %v want %v", i, x, float64(float32(v[i])))
			}
		} else if x != 0 {
			t.Fatalf("dropped coordinate %d decodes %v want 0", i, x)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	// Ties in topk and boundary values in q8 must break identically across
	// encodes — negotiation and checkpoint identity depend on it.
	v := []float64{1, -1, 1, -1, 0.5, 0.5, 0, 0}
	for _, name := range Names() {
		cdc, _ := New(name)
		a, b := cdc.Encode(v), cdc.Encode(v)
		da, _ := cdc.Decode(a)
		db, _ := cdc.Decode(b)
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("%s: two encodes of the same vector differ at %d", name, i)
			}
		}
	}
}

func TestDecodeRejectsMalformedFrames(t *testing.T) {
	cases := map[string]struct {
		scheme string
		t      Tensor
	}{
		"raw64 short":       {Raw64, Tensor{N: 3, Vals: []float64{1}}},
		"raw64 stray q":     {Raw64, Tensor{N: 1, Vals: []float64{1}, Q: []byte{1}}},
		"f32 long":          {F32, Tensor{N: 1, Vals: []float64{1, 2}}},
		"q8 short":          {Q8, Tensor{N: 4, Q: []byte{1, 2}}},
		"q8 nan scale":      {Q8, Tensor{N: 1, Q: []byte{0}, Scale: math.NaN()}},
		"q8 neg scale":      {Q8, Tensor{N: 1, Q: []byte{0}, Scale: -1}},
		"q8 inf offset":     {Q8, Tensor{N: 1, Q: []byte{0}, Offset: math.Inf(1)}},
		"topk mismatch":     {TopK, Tensor{N: 4, Idx: []uint32{0, 1}, Vals: []float64{1}}},
		"topk out of range": {TopK, Tensor{N: 2, Idx: []uint32{5}, Vals: []float64{1}}},
		"topk descending":   {TopK, Tensor{N: 4, Idx: []uint32{2, 1}, Vals: []float64{1, 2}}},
		"topk duplicate":    {TopK, Tensor{N: 4, Idx: []uint32{1, 1}, Vals: []float64{1, 2}}},
		"topk too many":     {TopK, Tensor{N: 1, Idx: []uint32{0, 1}, Vals: []float64{1, 2}}},
	}
	for name, c := range cases {
		cdc, _ := New(c.scheme)
		if _, err := cdc.Decode(c.t); err == nil {
			t.Errorf("%s: Decode accepted a malformed frame", name)
		}
	}
}

func TestWireBytesMatchesGobCosts(t *testing.T) {
	// Spot-pin the cost model against gob's documented encoding: small
	// uints are one byte, byte-reversed floats drop trailing zero bytes.
	if n := gobUintBytes(0); n != 1 {
		t.Fatalf("uint 0 costs %d", n)
	}
	if n := gobUintBytes(127); n != 1 {
		t.Fatalf("uint 127 costs %d", n)
	}
	if n := gobUintBytes(128); n != 2 {
		t.Fatalf("uint 128 costs %d", n)
	}
	if n := gobFloatBytes(0); n != 1 {
		t.Fatalf("float 0 costs %d", n)
	}
	// 1.0 = 0x3FF0000000000000 → reversed 0xF03F → 3 bytes (count + 2).
	if n := gobFloatBytes(1.0); n != 3 {
		t.Fatalf("float 1.0 costs %d", n)
	}
	// An f32-truncated value keeps ≤4 mantissa bytes → ≤6 wire bytes.
	if n := gobFloatBytes(float64(float32(0.1234567))); n > 6 {
		t.Fatalf("f32-truncated float costs %d", n)
	}
	// A q8 tensor's cost is dominated by one byte per element.
	cdc, _ := New(Q8)
	v := make([]float64, 1000)
	rng := rand.New(rand.NewSource(3))
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	wb := cdc.Encode(v).WireBytes()
	if wb < 1000 || wb > 1030 {
		t.Fatalf("q8 of 1000 values costs %d wire bytes, want ≈1000", wb)
	}
}
