// Drift-monitor: the concept-drift workflow of §III-B3 — a detector trained
// on the six known vulnerability types meets graphs carrying the three
// *novel* patterns of §IV-C; the MAD filter flags them as drifting instead
// of silently misclassifying them.
package main

import (
	"fmt"
	"log"

	"fexiot"
	"fexiot/internal/embed"
	"fexiot/internal/fusion"
	"fexiot/internal/graph"
)

func main() {
	opts := fexiot.DefaultOptions()
	opts.Seed = 13
	sys, err := fexiot.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	enc := embed.NewEncoder(48, 64)
	pool := fusion.MultiHomePool(21, 60, 25, nil)
	b := fusion.NewBuilder(23, enc)

	fmt.Println("training on graphs with the six known vulnerability types…")
	var training []*graph.Graph
	for i := 0; i < 350; i++ {
		training = append(training, b.OfflineSized(pool))
	}
	sys2 := sys // trained below via the same internal encoder dims
	_ = sys2
	sys.TrainCentral(training, 10, 300)

	// In-distribution test graphs.
	var normal []*graph.Graph
	for i := 0; i < 40; i++ {
		normal = append(normal, b.OfflineSized(pool))
	}
	// Graphs carrying the three novel drifting patterns.
	kinds := []fusion.DriftKind{fusion.DriftTimedRevert,
		fusion.DriftFakeCondition, fusion.DriftManualBlock}
	names := []string{"timed revert", "fake condition", "manual block"}
	var novel []*graph.Graph
	for i := 0; i < 30; i++ {
		novel = append(novel, b.OfflineWithDrift(pool, kinds[i%len(kinds)], 3))
	}

	stats := func(gs []*graph.Graph) (flagged int, meanScore float64) {
		for _, g := range gs {
			v, err := sys.Detect(g)
			if err != nil {
				log.Fatal(err)
			}
			if v.Drifting {
				flagged++
			}
			meanScore += v.DriftScore
		}
		return flagged, meanScore / float64(len(gs))
	}
	inDist, inScore := stats(normal)
	outDist, outScore := stats(novel)
	fmt.Printf("\nMAD drift filter (T_M = 3):\n")
	fmt.Printf("  known-pattern graphs flagged:  %d / %d (mean deviation %.2f MADs)\n",
		inDist, len(normal), inScore)
	fmt.Printf("  novel-pattern graphs flagged:  %d / %d (mean deviation %.2f MADs)\n",
		outDist, len(novel), outScore)
	if outScore > inScore {
		fmt.Println("  novel patterns sit further out of distribution ✓")
	}

	fmt.Println("\nthe three novel patterns (paper §IV-C):")
	for i, k := range kinds {
		g := b.OfflineWithDrift(pool, k, 3)
		v, err := sys.Detect(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s → score=%.3f deviation=%.2f MADs drifting=%v\n",
			names[i], v.Score, v.DriftScore, v.Drifting)
	}
	fmt.Println("\ndrifting samples are routed to manual inspection rather than" +
		" trusted to the classifier — reducing false alarms on unseen patterns.")
}
