// Package autodiff implements a reverse-mode automatic differentiation tape
// over dense matrices. It is the training runtime for every neural model in
// the repository — the MLP correlation classifier, the DeepLog LSTM baseline
// and the GCN/GIN/MAGNN graph networks — standing in for the PyTorch/DGL
// stack the paper uses.
//
// The tape is rebuilt for every forward pass (define-by-run). Backward walks
// the nodes in reverse insertion order, which is a valid topological order
// because operations can only consume previously created nodes.
package autodiff

import (
	"fmt"
	"math"

	"fexiot/internal/mat"
)

// Node is a matrix-valued value on the tape together with its gradient.
type Node struct {
	Value *mat.Dense
	Grad  *mat.Dense

	tape    *Tape
	back    func()
	parents []*Node
	needs   bool
}

// Dims returns the node's value dimensions.
func (n *Node) Dims() (int, int) { return n.Value.Dims() }

// Tape records operations for reverse-mode differentiation.
type Tape struct {
	nodes []*Node
}

// NewTape creates an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset clears all recorded nodes so the tape can be reused.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// Len reports the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

// node registers a new tape node.
func (t *Tape) node(val *mat.Dense, needs bool, parents []*Node, back func()) *Node {
	n := &Node{Value: val, tape: t, back: back, parents: parents, needs: needs}
	t.nodes = append(t.nodes, n)
	return n
}

// anyNeeds reports whether any parent participates in gradient computation.
func anyNeeds(parents ...*Node) bool {
	for _, p := range parents {
		if p != nil && p.needs {
			return true
		}
	}
	return false
}

// Param registers a trainable parameter. Its gradient is allocated lazily on
// the first backward pass that touches it.
func (t *Tape) Param(v *mat.Dense) *Node {
	return t.node(v, true, nil, nil)
}

// Constant registers a value that requires no gradient.
func (t *Tape) Constant(v *mat.Dense) *Node {
	return t.node(v, false, nil, nil)
}

// ensureGrad allocates n.Grad if missing.
func ensureGrad(n *Node) {
	if n.Grad == nil {
		r, c := n.Value.Dims()
		n.Grad = mat.NewDense(r, c)
	}
}

// Backward seeds d(loss)/d(loss)=1 and propagates gradients to all
// contributing nodes. loss must be 1×1.
func (t *Tape) Backward(loss *Node) {
	r, c := loss.Value.Dims()
	if r != 1 || c != 1 {
		panic(fmt.Sprintf("autodiff: Backward on %dx%d node; want scalar", r, c))
	}
	ensureGrad(loss)
	loss.Grad.Set(0, 0, 1)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.needs && n.Grad != nil {
			n.back()
		}
	}
}

// --- Core operations -------------------------------------------------------

// MatMul returns a·b.
func (t *Tape) MatMul(a, b *Node) *Node {
	val := mat.Mul(a.Value, b.Value)
	needs := anyNeeds(a, b)
	var out *Node
	out = t.node(val, needs, []*Node{a, b}, func() {
		if a.needs {
			ensureGrad(a)
			// dA += dOut · Bᵀ
			tmp := mat.NewDense(a.Value.Rows(), a.Value.Cols())
			mat.MulBTTo(tmp, out.Grad, b.Value)
			a.Grad.AddScaled(tmp, 1)
		}
		if b.needs {
			ensureGrad(b)
			// dB += Aᵀ · dOut
			tmp := mat.NewDense(b.Value.Rows(), b.Value.Cols())
			mat.MulTTo(tmp, a.Value, out.Grad)
			b.Grad.AddScaled(tmp, 1)
		}
	})
	return out
}

// SpMM returns s·b for a constant sparse operator s (e.g. normalised graph
// adjacency). No gradient flows into s.
func (t *Tape) SpMM(s *mat.CSR, b *Node) *Node {
	val := mat.SpMM(s, b.Value)
	needs := b.needs
	var st *mat.CSR
	var out *Node
	out = t.node(val, needs, []*Node{b}, func() {
		if !b.needs {
			return
		}
		ensureGrad(b)
		if st == nil {
			st = s.T()
		}
		tmp := mat.SpMM(st, out.Grad)
		b.Grad.AddScaled(tmp, 1)
	})
	return out
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	val := mat.AddM(a.Value, b.Value)
	var out *Node
	out = t.node(val, anyNeeds(a, b), []*Node{a, b}, func() {
		if a.needs {
			ensureGrad(a)
			a.Grad.AddScaled(out.Grad, 1)
		}
		if b.needs {
			ensureGrad(b)
			b.Grad.AddScaled(out.Grad, 1)
		}
	})
	return out
}

// Sub returns a−b.
func (t *Tape) Sub(a, b *Node) *Node {
	val := mat.SubM(a.Value, b.Value)
	var out *Node
	out = t.node(val, anyNeeds(a, b), []*Node{a, b}, func() {
		if a.needs {
			ensureGrad(a)
			a.Grad.AddScaled(out.Grad, 1)
		}
		if b.needs {
			ensureGrad(b)
			b.Grad.AddScaled(out.Grad, -1)
		}
	})
	return out
}

// AddRowBroadcast adds a 1×c bias row to every row of a (n×c).
func (t *Tape) AddRowBroadcast(a, bias *Node) *Node {
	n, c := a.Value.Dims()
	br, bc := bias.Value.Dims()
	if br != 1 || bc != c {
		panic(fmt.Sprintf("autodiff: AddRowBroadcast bias %dx%d for %dx%d", br, bc, n, c))
	}
	val := a.Value.Clone()
	for i := 0; i < n; i++ {
		mat.Axpy(val.Row(i), bias.Value.Row(0), 1)
	}
	var out *Node
	out = t.node(val, anyNeeds(a, bias), []*Node{a, bias}, func() {
		if a.needs {
			ensureGrad(a)
			a.Grad.AddScaled(out.Grad, 1)
		}
		if bias.needs {
			ensureGrad(bias)
			g := bias.Grad.Row(0)
			for i := 0; i < n; i++ {
				mat.Axpy(g, out.Grad.Row(i), 1)
			}
		}
	})
	return out
}

// Hadamard returns the element-wise product a⊙b.
func (t *Tape) Hadamard(a, b *Node) *Node {
	val := mat.Hadamard(a.Value, b.Value)
	var out *Node
	out = t.node(val, anyNeeds(a, b), []*Node{a, b}, func() {
		if a.needs {
			ensureGrad(a)
			a.Grad.AddScaled(mat.Hadamard(out.Grad, b.Value), 1)
		}
		if b.needs {
			ensureGrad(b)
			b.Grad.AddScaled(mat.Hadamard(out.Grad, a.Value), 1)
		}
	})
	return out
}

// Scale returns s*a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	val := a.Value.Clone().Scale(s)
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if a.needs {
			ensureGrad(a)
			a.Grad.AddScaled(out.Grad, s)
		}
	})
	return out
}

// unary applies f element-wise with derivative df(input value, output value).
func (t *Tape) unary(a *Node, f func(float64) float64, df func(x, y float64) float64) *Node {
	val := a.Value.Clone().Apply(f)
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if !a.needs {
			return
		}
		ensureGrad(a)
		ad, vd, gd, od := a.Grad.Data(), a.Value.Data(), out.Grad.Data(), out.Value.Data()
		for i := range ad {
			ad[i] += gd[i] * df(vd[i], od[i])
		}
	})
	return out
}

// ReLU applies max(0,x) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// LeakyReLU applies x>0 ? x : slope*x element-wise.
func (t *Tape) LeakyReLU(a *Node, slope float64) *Node {
	return t.unary(a,
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return slope * x
		},
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return slope
		})
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	return t.unary(a,
		mat.Sigmoid,
		func(_, y float64) float64 { return y * (1 - y) })
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.unary(a,
		math.Tanh,
		func(_, y float64) float64 { return 1 - y*y })
}

// MeanRows returns the 1×c column-mean of an n×c node (graph mean readout).
func (t *Tape) MeanRows(a *Node) *Node {
	n, c := a.Value.Dims()
	val := mat.NewDense(1, c)
	for i := 0; i < n; i++ {
		mat.Axpy(val.Row(0), a.Value.Row(i), 1/float64(n))
	}
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if !a.needs {
			return
		}
		ensureGrad(a)
		g := out.Grad.Row(0)
		inv := 1 / float64(n)
		for i := 0; i < n; i++ {
			mat.Axpy(a.Grad.Row(i), g, inv)
		}
	})
	return out
}

// SumRows returns the 1×c column-sum of an n×c node (graph sum readout, as
// used by GIN).
func (t *Tape) SumRows(a *Node) *Node {
	n, c := a.Value.Dims()
	val := mat.NewDense(1, c)
	for i := 0; i < n; i++ {
		mat.Axpy(val.Row(0), a.Value.Row(i), 1)
	}
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if !a.needs {
			return
		}
		ensureGrad(a)
		g := out.Grad.Row(0)
		for i := 0; i < n; i++ {
			mat.Axpy(a.Grad.Row(i), g, 1)
		}
	})
	return out
}

// MaxRows returns the 1×c column-wise maximum of an n×c node; the gradient
// routes to the arg-max row per column. Max readout preserves "a node with
// this pattern exists" signals that mean pooling dilutes on large graphs.
func (t *Tape) MaxRows(a *Node) *Node {
	n, c := a.Value.Dims()
	val := mat.NewDense(1, c)
	arg := make([]int, c)
	for j := 0; j < c; j++ {
		best := a.Value.At(0, j)
		bi := 0
		for i := 1; i < n; i++ {
			if v := a.Value.At(i, j); v > best {
				best, bi = v, i
			}
		}
		val.Set(0, j, best)
		arg[j] = bi
	}
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if !a.needs {
			return
		}
		ensureGrad(a)
		for j := 0; j < c; j++ {
			a.Grad.Add(arg[j], j, out.Grad.At(0, j))
		}
	})
	return out
}

// ConcatCols concatenates nodes horizontally (same row count).
func (t *Tape) ConcatCols(parts ...*Node) *Node {
	rows, _ := parts[0].Value.Dims()
	total := 0
	for _, p := range parts {
		r, c := p.Value.Dims()
		if r != rows {
			panic("autodiff: ConcatCols row mismatch")
		}
		total += c
	}
	val := mat.NewDense(rows, total)
	off := 0
	for _, p := range parts {
		_, c := p.Value.Dims()
		for i := 0; i < rows; i++ {
			copy(val.Row(i)[off:off+c], p.Value.Row(i))
		}
		off += c
	}
	var out *Node
	out = t.node(val, anyNeeds(parts...), parts, func() {
		off := 0
		for _, p := range parts {
			_, c := p.Value.Dims()
			if p.needs {
				ensureGrad(p)
				for i := 0; i < rows; i++ {
					mat.Axpy(p.Grad.Row(i), out.Grad.Row(i)[off:off+c], 1)
				}
			}
			off += c
		}
	})
	return out
}

// GatherRows selects rows idx from a into a new len(idx)×c node.
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	_, c := a.Value.Dims()
	val := mat.NewDense(len(idx), c)
	for i, r := range idx {
		copy(val.Row(i), a.Value.Row(r))
	}
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if !a.needs {
			return
		}
		ensureGrad(a)
		for i, r := range idx {
			mat.Axpy(a.Grad.Row(r), out.Grad.Row(i), 1)
		}
	})
	return out
}

// ScatterRows builds an n×c node whose rows at idx come from a (len(idx)×c)
// and whose other rows are zero — the inverse of GatherRows, used to merge
// per-type projections in heterogeneous GNNs.
func (t *Tape) ScatterRows(a *Node, idx []int, n int) *Node {
	ar, c := a.Value.Dims()
	if ar != len(idx) {
		panic(fmt.Sprintf("autodiff: ScatterRows %d rows with %d indices", ar, len(idx)))
	}
	val := mat.NewDense(n, c)
	for i, r := range idx {
		copy(val.Row(r), a.Value.Row(i))
	}
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if !a.needs {
			return
		}
		ensureGrad(a)
		for i, r := range idx {
			mat.Axpy(a.Grad.Row(i), out.Grad.Row(r), 1)
		}
	})
	return out
}

// Dropout zeroes elements with probability p during training, scaling the
// survivors by 1/(1-p). mask is sampled by the caller for determinism.
func (t *Tape) Dropout(a *Node, mask *mat.Dense, p float64) *Node {
	if p <= 0 {
		return a
	}
	scale := 1 / (1 - p)
	val := mat.Hadamard(a.Value, mask).Scale(scale)
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if !a.needs {
			return
		}
		ensureGrad(a)
		g := mat.Hadamard(out.Grad, mask).Scale(scale)
		a.Grad.AddScaled(g, 1)
	})
	return out
}
