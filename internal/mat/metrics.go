package mat

import (
	"sync/atomic"

	"fexiot/internal/obs"
)

// kernelMetrics are the package-level observability handles of the dense
// kernels. The whole struct sits behind one atomic pointer: the disabled
// state is a nil pointer, so the per-operation cost of instrumentation when
// no registry is installed is a single atomic load and branch — unmeasurable
// next to even the smallest matrix product (see BenchmarkMatMulParallel).
type kernelMetrics struct {
	flops    *obs.Counter // fexiot_mat_flops_total
	serial   *obs.Counter // fexiot_mat_dispatch_total{mode="serial"}
	parallel *obs.Counter // fexiot_mat_dispatch_total{mode="parallel"}
	inflight *obs.Gauge   // fexiot_mat_pool_inflight_blocks
}

var kmetrics atomic.Pointer[kernelMetrics]

// InstrumentKernels installs observability for the dense kernels into r:
// FLOPs executed by the matrix products, serial vs parallel dispatch
// decisions, and worker-pool occupancy. A nil registry uninstalls the
// instrumentation, restoring the zero-overhead fast path. The handles are
// process-global because the worker pool is; installing a second registry
// replaces the first.
func InstrumentKernels(r *obs.Registry) {
	InstrumentArenas(r)
	if r == nil {
		kmetrics.Store(nil)
		return
	}
	dispatch := r.CounterVec("fexiot_mat_dispatch_total",
		"dense-kernel dispatch decisions by execution mode", "mode")
	kmetrics.Store(&kernelMetrics{
		flops: r.Counter("fexiot_mat_flops_total",
			"floating-point operations executed by the matrix product kernels"),
		serial:   dispatch.With("serial"),
		parallel: dispatch.With("parallel"),
		inflight: r.Gauge("fexiot_mat_pool_inflight_blocks",
			"row blocks currently executing on the worker pool"),
	})
}

// countFLOPs tallies one product's floating-point operations when
// instrumentation is installed.
func countFLOPs(n int) {
	if km := kmetrics.Load(); km != nil {
		km.flops.Add(int64(n))
	}
}

// arenaMetrics are the process-global observability handles of every
// Arena, following the same nil-pointer-disables pattern as kernelMetrics:
// arenas are per-tape/per-workspace but their traffic is one logical
// allocator subsystem, so the counters aggregate across all of them.
type arenaMetrics struct {
	leases      *obs.Counter // fexiot_mat_arena_leases_total
	hits        *obs.Counter // fexiot_mat_arena_hits_total
	misses      *obs.Counter // fexiot_mat_arena_misses_total
	releases    *obs.Counter // fexiot_mat_arena_releases_total
	trims       *obs.Counter // fexiot_mat_arena_trims_total
	bytesLive   *obs.Gauge   // fexiot_mat_arena_bytes_live
	bytesPooled *obs.Gauge   // fexiot_mat_arena_bytes_pooled
}

var ametrics atomic.Pointer[arenaMetrics]

// InstrumentArenas installs the fexiot_mat_arena_* metric family into r:
// lease traffic split into pool hits and fresh-make misses, release and
// trim counts, and the bytes currently leased out vs retained in free
// lists (summed over every live arena). A nil registry uninstalls the
// instrumentation. InstrumentKernels calls this automatically, so any
// binary that instruments the kernels also exports the arena family.
func InstrumentArenas(r *obs.Registry) {
	if r == nil {
		ametrics.Store(nil)
		return
	}
	ametrics.Store(&arenaMetrics{
		leases: r.Counter("fexiot_mat_arena_leases_total",
			"buffer leases served by the matrix arenas"),
		hits: r.Counter("fexiot_mat_arena_hits_total",
			"arena leases satisfied from a free list"),
		misses: r.Counter("fexiot_mat_arena_misses_total",
			"arena leases that fell back to a fresh allocation"),
		releases: r.Counter("fexiot_mat_arena_releases_total",
			"buffers handed back to the matrix arenas"),
		trims: r.Counter("fexiot_mat_arena_trims_total",
			"epoch trims run across the matrix arenas"),
		bytesLive: r.Gauge("fexiot_mat_arena_bytes_live",
			"bytes currently leased out of the matrix arenas"),
		bytesPooled: r.Gauge("fexiot_mat_arena_bytes_pooled",
			"bytes currently retained in arena free lists"),
	})
}
