package eventlog

import (
	"sort"

	"fexiot/internal/rng"
	"fexiot/internal/rules"
)

// Simulator executes deployed rules against an environment model and
// produces event logs. The environment keeps a numeric level per
// (room, channel); actions shift levels, sensors threshold them, and rule
// triggers fire on state transitions — a closed causal loop, so the logs
// carry genuine trigger-action structure rather than random noise.
type Simulator struct {
	Rules []*rules.Rule

	// Noise configuration (§III-A2 describes exactly these artefacts).
	PeriodicReportEvery int64   // sensors re-report unchanged values this often
	ErrorProb           float64 // chance an actuation logs an execution error
	ExternalEventRate   float64 // rate of spontaneous environment happenings per step

	r           *rng.RNG
	deviceState map[string]string  // instance key → logical state
	envLevel    map[string]float64 // room|channel → numeric level
	clockState  string
}

// NewSimulator builds a simulator over a deployed rule set.
func NewSimulator(deployed []*rules.Rule, seed int64) *Simulator {
	return &Simulator{
		Rules:               deployed,
		PeriodicReportEvery: 60,
		ErrorProb:           0.03,
		ExternalEventRate:   0.3,
		r:                   rng.New(seed),
		deviceState:         map[string]string{},
		envLevel:            map[string]float64{},
	}
}

func envKeyOf(room string, ch rules.Channel) string {
	return room + "|" + ch.String()
}

// baselines per channel: typical numeric level and the shift one actuation
// causes.
func channelBaseline(ch rules.Channel) (base, shift float64) {
	switch ch {
	case rules.ChanTemperature:
		return 21, 6
	case rules.ChanHumidity:
		return 40, 18
	case rules.ChanIlluminance:
		return 120, 180
	case rules.ChanSound:
		return 30, 25
	case rules.ChanEnergy:
		return 100, 150
	default:
		return 0, 1
	}
}

// Run simulates `steps` ticks (1 tick = 1 simulated second) and returns the
// raw event log, noise included.
func (s *Simulator) Run(steps int64) Log {
	var log Log
	lastReport := map[string]int64{}
	lastValue := map[string]float64{}

	emitSensor := func(t int64, inst Instance, ch rules.Channel, value string, numeric float64, isNum bool) {
		log = append(log, Event{Time: t, Device: inst.Device, Room: inst.Room,
			Channel: ch, Value: value, Numeric: numeric, IsNumeric: isNum,
			Kind: KindSensor})
	}

	clockCycle := []string{"morning", "sunset", "night", "sunrise"}
	for t := int64(0); t < steps; t++ {
		// 0. The clock advances through the schedule states so time
		// triggers ("at sunset, …") fire periodically.
		s.clockState = clockCycle[(t/300)%int64(len(clockCycle))]

		// 1. Spontaneous external happenings keep the home alive: motion,
		// button presses, presence flips, manual door/lock operation.
		if s.r.Bool(s.ExternalEventRate) {
			s.externalHappening(t, &log)
		}

		// 2. Rule evaluation: a rule fires when its trigger condition holds
		// in the current state; its actions mutate device state and
		// environment and are logged.
		for _, rule := range s.Rules {
			if !s.conditionHolds(rule.Trigger) {
				continue
			}
			// Debounce: a rule fires at most once per 30 ticks.
			dk := "fired|" + rule.ID
			if last, ok := lastReport[dk]; ok && t-last < 30 {
				continue
			}
			lastReport[dk] = t
			for _, eff := range rule.Actions {
				s.applyEffect(t, rule, eff, &log)
			}
		}

		// 3. Periodic sensor reporting with drift — the repetitive-reading
		// noise the cleaner must strip.
		for _, inst := range s.sensorInstances() {
			rk := "report|" + inst.key()
			if t-lastReport[rk] < s.PeriodicReportEvery {
				continue
			}
			lastReport[rk] = t
			ch := s.senseChannelOf(inst.Device)
			if numericChannel(ch) {
				level := s.level(inst.Room, ch)
				level += s.r.NormFloat64() * 0.4 // sensor jitter
				emitSensor(t, inst, ch, "", level, true)
				lastValue[rk] = level
			} else {
				state := s.logicalSensorState(inst, ch)
				emitSensor(t, inst, ch, state, 0, false)
			}
		}

		// 4. Environment relaxation toward baseline.
		for k := range s.envLevel {
			s.envLevel[k] *= 0.995
		}
	}
	sort.SliceStable(log, func(i, j int) bool { return log[i].Time < log[j].Time })
	return log
}

// externalHappening injects a spontaneous cause.
func (s *Simulator) externalHappening(t int64, log *Log) {
	insts := s.sensorInstances()
	if len(insts) == 0 {
		return
	}
	inst := insts[s.r.Intn(len(insts))]
	ch := s.senseChannelOf(inst.Device)
	emit := func(value string) {
		s.deviceState[inst.key()] = value
		*log = append(*log, Event{Time: t, Device: inst.Device, Room: inst.Room,
			Channel: ch, Value: value, Kind: KindSensor})
	}
	switch ch {
	case rules.ChanMotion, rules.ChanButton:
		emit(positivePole(ch))
	case rules.ChanPresence:
		if s.deviceState[inst.key()] == "home" {
			emit("away")
		} else {
			emit("home")
		}
	case rules.ChanContact, rules.ChanLockState:
		// Residents open/close doors and windows and toggle locks by hand.
		if s.deviceState[inst.key()] == positivePole(ch) {
			emit(negativePole(ch))
		} else {
			emit(positivePole(ch))
		}
	case rules.ChanSmoke, rules.ChanCO, rules.ChanLeak:
		// Hazards are rare but must occur for safety rules to exercise.
		if s.r.Bool(0.15) {
			emit(positivePole(ch))
		} else if s.deviceState[inst.key()] == positivePole(ch) {
			emit(negativePole(ch)) // hazard clears
		}
	case rules.ChanWeather:
		emit([]string{"raining", "sunny", "windy", "snowing"}[s.r.Intn(4)])
	default:
		// Environmental nudge (weather, a window opened by hand, …).
		base, shift := channelBaseline(ch)
		k := envKeyOf(inst.Room, ch)
		if _, ok := s.envLevel[k]; !ok {
			s.envLevel[k] = base
		}
		s.envLevel[k] += s.r.Range(-shift/2, shift/2)
	}
}

// applyEffect executes one rule action: logs the command, maybe errors,
// updates device state, shifts environment levels, and logs the state
// change.
func (s *Simulator) applyEffect(t int64, rule *rules.Rule, eff rules.Effect, log *Log) {
	inst := Instance{Device: eff.Device, Room: eff.Room}
	*log = append(*log, Event{Time: t, Device: eff.Device, Room: eff.Room,
		Channel: eff.Channel, Value: eff.State, RuleID: rule.ID, Kind: KindCommand})
	if s.r.Bool(s.ErrorProb) {
		// Execution error: the command is logged, an error follows, and the
		// state does not change — cleaning drops these (§III-A2).
		*log = append(*log, Event{Time: t, Device: eff.Device, Room: eff.Room,
			Channel: eff.Channel, Value: eff.State, Err: true, RuleID: rule.ID,
			Kind: KindError})
		return
	}
	s.deviceState[inst.key()] = eff.State
	*log = append(*log, Event{Time: t + 1, Device: eff.Device, Room: eff.Room,
		Channel: eff.Channel, Value: eff.State, RuleID: rule.ID, Kind: KindState})
	for _, d := range eff.Env {
		base, shift := channelBaseline(d.Channel)
		k := envKeyOf(eff.Room, d.Channel)
		if _, ok := s.envLevel[k]; !ok {
			s.envLevel[k] = base
		}
		s.envLevel[k] += float64(d.Sign) * shift
	}
}

// conditionHolds evaluates a trigger against current state.
func (s *Simulator) conditionHolds(c rules.Condition) bool {
	switch c.Channel {
	case rules.ChanTime:
		return s.clockState == c.State
	case rules.ChanVoice:
		return false // voice commands arrive only as injected happenings
	}
	if numericChannel(c.Channel) {
		level := s.level(c.Room, c.Channel)
		base, shift := channelBaseline(c.Channel)
		switch rules.StateSign(c.State) {
		case 1:
			return level > base+shift/2
		case -1:
			return level < base-shift/2
		}
		return false
	}
	key := Instance{Device: c.Device, Room: c.Room}.key()
	return s.deviceState[key] == c.State
}

// level reads an environment level, initialising to baseline.
func (s *Simulator) level(room string, ch rules.Channel) float64 {
	k := envKeyOf(room, ch)
	if v, ok := s.envLevel[k]; ok {
		return v
	}
	base, _ := channelBaseline(ch)
	s.envLevel[k] = base
	return base
}

// logicalSensorState reports a binary sensor's current pole.
func (s *Simulator) logicalSensorState(inst Instance, ch rules.Channel) string {
	if v, ok := s.deviceState[inst.key()]; ok && v != "" {
		return v
	}
	return negativePole(ch)
}

// sensorInstances enumerates the sensing instances referenced by the rules.
func (s *Simulator) sensorInstances() []Instance {
	seen := map[string]bool{}
	var out []Instance
	for _, r := range s.Rules {
		t := r.Trigger
		if t.Channel == rules.ChanTime || t.Channel == rules.ChanVoice {
			continue
		}
		inst := Instance{Device: t.Device, Room: t.Room}
		if !seen[inst.key()] {
			seen[inst.key()] = true
			out = append(out, inst)
		}
	}
	return out
}

// senseChannelOf maps a device name to its sensing channel via the catalog
// (device-state instances report their own channel through the trigger).
func (s *Simulator) senseChannelOf(device string) rules.Channel {
	if d, ok := rules.CatalogByName()[device]; ok && d.IsSensor() {
		return d.SenseChannel
	}
	// Actuator state triggers: report power-ish state; find via rules.
	for _, r := range s.Rules {
		if r.Trigger.Device == device {
			return r.Trigger.Channel
		}
	}
	return rules.ChanPower
}

// numericChannel reports whether a channel logs numeric readings.
func numericChannel(ch rules.Channel) bool {
	switch ch {
	case rules.ChanTemperature, rules.ChanHumidity, rules.ChanIlluminance,
		rules.ChanSound, rules.ChanEnergy:
		return true
	}
	return false
}

// positivePole / negativePole give the logical state names of a channel.
func positivePole(ch rules.Channel) string {
	switch ch {
	case rules.ChanMotion, rules.ChanSmoke, rules.ChanCO:
		return "detected"
	case rules.ChanContact:
		return "open"
	case rules.ChanLeak:
		return "wet"
	case rules.ChanPresence:
		return "home"
	case rules.ChanLockState:
		return "locked"
	case rules.ChanButton:
		return "pressed"
	default:
		return "high"
	}
}

func negativePole(ch rules.Channel) string {
	switch ch {
	case rules.ChanMotion, rules.ChanSmoke, rules.ChanCO:
		return "clear"
	case rules.ChanContact:
		return "closed"
	case rules.ChanLeak:
		return "dry"
	case rules.ChanPresence:
		return "away"
	case rules.ChanLockState:
		return "unlocked"
	default:
		return "low"
	}
}
