// Package lexicon is a curated smart-home mini-WordNet. It answers the four
// lexical-relation queries §III-A1 of the paper issues against WordNet —
// synonym, hypernym, meronym and holonym — over the vocabulary of IoT
// automation rules: devices, sensors, attributes, actions and environment
// concepts. The relations drive the one-hot causal-relation features of the
// action-trigger correlation classifier.
package lexicon

import "strings"

// Relation identifies a lexical relation between two words.
type Relation int

// The relation kinds the correlation features test for.
const (
	None     Relation = iota
	Synonym           // same synset: light ~ lamp
	Hypernym          // first is a kind of second: smoke detector → sensor
	Hyponym           // inverse of hypernym
	Meronym           // first is part of second: lock → door
	Holonym           // inverse of meronym
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case Synonym:
		return "synonym"
	case Hypernym:
		return "hypernym"
	case Hyponym:
		return "hyponym"
	case Meronym:
		return "meronym"
	case Holonym:
		return "holonym"
	default:
		return "none"
	}
}

// synsets groups interchangeable words. The first member is the canonical
// form used as the synset id.
var synsets = [][]string{
	{"light", "lamp", "bulb", "luminaire"},
	{"turn_on", "activate", "enable", "start", "power_on", "switch_on"},
	{"turn_off", "deactivate", "disable", "stop", "power_off", "switch_off", "shut"},
	{"open", "unclose"},
	{"close", "shut"},
	{"lock", "secure"},
	{"unlock", "unsecure"},
	{"detect", "sense", "notice"},
	{"notify", "alert", "message", "remind", "announce"},
	{"temperature", "heat_level", "warmth"},
	{"humidity", "moisture", "dampness"},
	{"illuminance", "brightness", "luminance", "light_level"},
	{"motion", "movement"},
	{"presence", "occupancy"},
	{"leak", "flood", "water_leak"},
	{"smoke", "fume"},
	{"co", "monoxide", "carbon_monoxide"},
	{"camera", "cam", "webcam"},
	{"thermostat", "temperature_controller"},
	{"heater", "furnace", "radiator"},
	{"conditioner", "ac", "air_conditioner", "cooler"},
	{"fan", "ventilator", "blower"},
	{"valve", "water_valve", "shutoff"},
	{"sprinkler", "irrigator"},
	{"alarm", "siren", "buzzer"},
	{"plug", "outlet", "socket"},
	{"door", "entry"},
	{"window", "casement"},
	{"blind", "curtain", "shade"},
	{"speaker", "sound_system"},
	{"tv", "television"},
	{"vacuum", "robot_vacuum", "hoover"},
	{"refrigerator", "fridge"},
	{"doorbell", "door_chime"},
	{"dim", "darken", "lower_brightness"},
	{"brighten", "raise_brightness"},
	{"increase", "raise", "boost"},
	{"decrease", "lower", "reduce", "drop"},
	{"record", "capture", "film"},
	{"arm", "engage"},
	{"disarm", "disengage"},
	{"switch", "toggle_switch", "relay"},
	{"phone", "smartphone", "mobile"},
	{"home", "house", "residence"},
	{"on", "active", "running", "enabled"},
	{"off", "inactive", "stopped", "disabled"},
	{"high", "elevated"},
	{"low", "reduced"},
	{"hot", "warm"},
	{"cold", "cool", "chilly"},
	{"wet", "damp", "moist"},
	{"dry", "arid"},
}

// hypernymEdges encode "X is a kind of Y" (word → parent concept).
var hypernymEdges = map[string]string{
	"light":        "device",
	"camera":       "device",
	"thermostat":   "device",
	"heater":       "appliance",
	"conditioner":  "appliance",
	"fan":          "appliance",
	"humidifier":   "appliance",
	"dehumidifier": "appliance",
	"vacuum":       "appliance",
	"valve":        "actuator",
	"sprinkler":    "actuator",
	"lock":         "actuator",
	"switch":       "actuator",
	"plug":         "actuator",
	"alarm":        "device",
	"speaker":      "device",
	"tv":           "appliance",
	"doorbell":     "device",
	"refrigerator": "appliance",
	"oven":         "appliance",
	"washer":       "appliance",
	"dryer":        "appliance",
	"appliance":    "device",
	"actuator":     "device",
	"sensor":       "device",
	"detector":     "sensor",
	"smoke":        "hazard",
	"co":           "hazard",
	"leak":         "hazard",
	"fire":         "hazard",
	"motion":       "event",
	"presence":     "event",
	"contact":      "event",
	"temperature":  "attribute",
	"humidity":     "attribute",
	"illuminance":  "attribute",
	"battery":      "attribute",
	"power":        "attribute",
	"door":         "opening",
	"window":       "opening",
	"gate":         "opening",
	"blind":        "covering",
	"hazard":       "event",
}

// meronymEdges encode "X is a part of Y".
var meronymEdges = map[string]string{
	"lock":     "door",
	"handle":   "door",
	"doorbell": "door",
	"bulb":     "light",
	"battery":  "sensor",
	"filter":   "conditioner",
	"valve":    "pipe",
	"blind":    "window",
	"kitchen":  "home",
	"bedroom":  "home",
	"bathroom": "home",
	"garage":   "home",
	"yard":     "home",
	"door":     "home",
	"window":   "home",
}

// Lexicon answers relation queries; construct with New.
type Lexicon struct {
	synsetOf  map[string]int
	canonical []string
	hyper     map[string]string
	mero      map[string]string
}

// New builds the default smart-home lexicon.
func New() *Lexicon {
	l := &Lexicon{
		synsetOf: map[string]int{},
		hyper:    map[string]string{},
		mero:     map[string]string{},
	}
	for i, ss := range synsets {
		l.canonical = append(l.canonical, ss[0])
		for _, w := range ss {
			l.synsetOf[normalize(w)] = i
		}
	}
	for k, v := range hypernymEdges {
		l.hyper[k] = v
	}
	for k, v := range meronymEdges {
		l.mero[k] = v
	}
	return l
}

func normalize(w string) string {
	return strings.ReplaceAll(strings.ToLower(strings.TrimSpace(w)), " ", "_")
}

// Canonical returns the canonical synset member for w (w itself when the
// word is out of vocabulary).
func (l *Lexicon) Canonical(w string) string {
	if id, ok := l.synsetOf[normalize(w)]; ok {
		return l.canonical[id]
	}
	return normalize(w)
}

// AreSynonyms reports whether a and b share a synset.
func (l *Lexicon) AreSynonyms(a, b string) bool {
	ia, oka := l.synsetOf[normalize(a)]
	ib, okb := l.synsetOf[normalize(b)]
	return oka && okb && ia == ib
}

// HypernymChain returns the chain of ancestor concepts of w
// (canonicalised), nearest first, up to a small depth bound.
func (l *Lexicon) HypernymChain(w string) []string {
	cur := l.Canonical(w)
	var chain []string
	for i := 0; i < 6; i++ {
		parent, ok := l.hyper[cur]
		if !ok {
			break
		}
		chain = append(chain, parent)
		cur = parent
	}
	return chain
}

// IsHypernymOf reports whether parent is an ancestor concept of child.
func (l *Lexicon) IsHypernymOf(parent, child string) bool {
	p := l.Canonical(parent)
	for _, anc := range l.HypernymChain(child) {
		if anc == p {
			return true
		}
	}
	return false
}

// IsMeronymOf reports whether part is a part of whole.
func (l *Lexicon) IsMeronymOf(part, whole string) bool {
	p, w := l.Canonical(part), l.Canonical(whole)
	if l.mero[p] == w {
		return true
	}
	// One level of transitivity: bulb → light; light part-of nothing, but
	// kitchen → home covers room containment.
	if mid, ok := l.mero[p]; ok && l.mero[mid] == w {
		return true
	}
	return false
}

// Relate classifies the lexical relation between a and b, testing the four
// relation types the correlation features use. Ties resolve in the order
// synonym, hypernym, hyponym, meronym, holonym.
func (l *Lexicon) Relate(a, b string) Relation {
	switch {
	case l.AreSynonyms(a, b):
		return Synonym
	case l.IsHypernymOf(b, a):
		return Hypernym
	case l.IsHypernymOf(a, b):
		return Hyponym
	case l.IsMeronymOf(a, b):
		return Meronym
	case l.IsMeronymOf(b, a):
		return Holonym
	default:
		return None
	}
}

// RelationFeatures returns the one-hot causal-relation feature vector
// [synonym, hypernym, hyponym, meronym, holonym] aggregated over the cross
// product of two word lists: each slot is 1 when any pair exhibits the
// relation. This is feature (ii) of §III-A1.
func (l *Lexicon) RelationFeatures(as, bs []string) []float64 {
	out := make([]float64, 5)
	for _, a := range as {
		for _, b := range bs {
			switch l.Relate(a, b) {
			case Synonym:
				out[0] = 1
			case Hypernym:
				out[1] = 1
			case Hyponym:
				out[2] = 1
			case Meronym:
				out[3] = 1
			case Holonym:
				out[4] = 1
			}
		}
	}
	return out
}

// Vocabulary returns every word known to the lexicon (synset members plus
// relation endpoints), useful to seed the embedding table.
func (l *Lexicon) Vocabulary() []string {
	seen := map[string]bool{}
	var out []string
	add := func(w string) {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for _, ss := range synsets {
		for _, w := range ss {
			add(normalize(w))
		}
	}
	for k, v := range hypernymEdges {
		add(k)
		add(v)
	}
	for k, v := range meronymEdges {
		add(k)
		add(v)
	}
	return out
}
