package fedproto

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// TestServerRunCancelFlushesCheckpoint cancels a running federation and
// asserts the graceful-shutdown contract: Run returns an error wrapping
// context.Canceled and the final checkpoint on disk records every closed
// round, so a restarted server resumes where the shutdown caught this one.
func TestServerRunCancelFlushesCheckpoint(t *testing.T) {
	addr := freeAddr(t)
	ckpt := filepath.Join(t.TempDir(), "fed.ckpt")
	srv := NewServer(ServerConfig{
		Addr:           addr,
		Clients:        1,
		Rounds:         1000, // far more than will run: only cancel ends it
		NumLayers:      2,
		RoundTimeout:   10 * time.Second,
		CheckpointPath: ckpt,
	})
	ctx, cancel := context.WithCancel(context.Background())
	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		serverDone <- err
	}()

	// One scripted client; cancel both sides once two rounds have closed.
	roundsSeen := make(chan int, 1000)
	clientDone := make(chan error, 1)
	go func() {
		p := scriptParams()
		_, err := RunClientSession(ctx, ClientConfig{
			Addr: addr, ID: 0, DataSize: 10,
			OpTimeout: 10 * time.Second, MaxAttempts: 3,
		}, p, func(round int) map[int]float64 {
			roundsSeen <- round
			addDelta(p, 0.1)
			return zeroNorms(p)
		})
		clientDone <- err
	}()

	for {
		select {
		case r := <-roundsSeen:
			if r >= 2 {
				goto cancelNow
			}
		case <-time.After(10 * time.Second):
			t.Fatal("federation made no progress")
		}
	}
cancelNow:
	cancel()

	srvErr := <-serverDone
	if srvErr == nil {
		t.Fatal("cancelled Run must not report success")
	}
	if !errors.Is(srvErr, context.Canceled) {
		t.Fatalf("Run error %v must wrap context.Canceled", srvErr)
	}
	if err := <-clientDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("client session error %v must wrap context.Canceled", err)
	}

	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("shutdown checkpoint missing: %v", err)
	}
	if ck.Round < 2 {
		t.Fatalf("checkpoint resumes at round %d, want >= 2", ck.Round)
	}
	if len(ck.Global) == 0 {
		t.Fatal("checkpoint carries no global model")
	}
}

// TestClientSessionCancelDuringBackoff cancels a session that is stuck
// redialling a dead server and asserts it returns promptly with the
// cancellation cause instead of sleeping out its backoff schedule.
func TestClientSessionCancelDuringBackoff(t *testing.T) {
	addr := freeAddr(t) // reserved and released: nothing listens here
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunClientSession(ctx, ClientConfig{
			Addr: addr, ID: 0, DataSize: 1,
			InitialBackoff: 10 * time.Second, // without cancel, one retry sleeps 10s
			MaxBackoff:     10 * time.Second,
			MaxAttempts:    5,
		}, scriptParams(), func(round int) map[int]float64 { return nil })
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("session error %v must wrap context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled session did not return before its backoff expired")
	}
}
