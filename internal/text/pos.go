package text

import "strings"

// Tag performs part-of-speech tagging over a tokenised sentence. Evidence
// order: number literals, closed-class word lists, the verb/noun/adjective
// lexicons with contextual disambiguation, then suffix heuristics.
func Tag(tokens []string) []Token {
	out := make([]Token, len(tokens))
	for i, w := range tokens {
		lemma := Lemmatize(w)
		out[i] = Token{Text: w, Lemma: lemma, Tag: tagOne(tokens, i, w, lemma)}
	}
	disambiguate(out)
	return out
}

func tagOne(tokens []string, i int, w, lemma string) POS {
	switch {
	case IsNumeric(w):
		return Number
	case interjections[w]:
		return Interjection
	case auxiliaries[w]:
		return Auxiliary
	case determiners[w]:
		return Determiner
	case pronouns[w]:
		return Pronoun
	case conjunctions[w]:
		return Conjunction
	case particles[w]:
		return Particle
	case prepositions[w]:
		return Preposition
	case adverbLexicon[w] || adverbLexicon[lemma]:
		return Adverb
	case verbLexicon[lemma] && adjectiveLexicon[w]:
		// Ambiguous forms like "open", "closed", "detected": resolved in
		// disambiguate using left context.
		return Verb
	case verbLexicon[lemma] && nounLexicon[w]:
		// e.g. "water", "lock", "alarm": default noun, promoted to verb when
		// sentence-initial or after a conjunction.
		return Noun
	case verbLexicon[lemma]:
		return Verb
	case adjectiveLexicon[w] || adjectiveLexicon[lemma]:
		return Adjective
	case nounLexicon[w] || nounLexicon[lemma]:
		return Noun
	case strings.HasSuffix(w, "ly"):
		return Adverb
	case strings.HasSuffix(w, "ing") || strings.HasSuffix(w, "ed"):
		return Verb
	default:
		return Noun // open-class default: unknown words are device names
	}
}

// disambiguate applies contextual rules over the first-pass tags.
func disambiguate(toks []Token) {
	for i := range toks {
		w := toks[i]
		prev := func() *Token {
			if i > 0 {
				return &toks[i-1]
			}
			return nil
		}()
		next := func() *Token {
			if i+1 < len(toks) {
				return &toks[i+1]
			}
			return nil
		}()

		// "is detected", "are on", "is closed": the word after an auxiliary
		// is predicative — keep verb-like words as verbs (passive voice) but
		// pure state adjectives as adjectives.
		if prev != nil && prev.Tag == Auxiliary {
			if adjectiveLexicon[w.Text] && !strings.HasSuffix(w.Text, "ed") {
				toks[i].Tag = Adjective
			} else if strings.HasSuffix(w.Text, "ed") {
				toks[i].Tag = Verb
			}
		}

		// Sentence-initial or post-comma/conjunction noun/verb ambiguity:
		// imperative reading makes it a verb ("lock the door", "water the
		// lawn", "alarm beeps" keeps noun because a verb follows).
		if w.Tag == Noun && verbLexicon[w.Lemma] {
			imperativePosition := i == 0 ||
				(prev != nil && (prev.Tag == Conjunction || prev.Tag == Interjection))
			objectFollows := next != nil &&
				(next.Tag == Determiner || next.Tag == Noun || next.Tag == Adjective ||
					next.Tag == Pronoun || next.Tag == Number)
			if imperativePosition && objectFollows {
				toks[i].Tag = Verb
			}
		}

		// Determiner + ambiguous verb → noun ("the lock", "the alarm").
		if w.Tag == Verb && prev != nil && prev.Tag == Determiner &&
			nounLexicon[w.Text] {
			toks[i].Tag = Noun
		}

		// Phrasal-verb particles: "turn on the light" (verb immediately
		// before) or "turn the lights on" (verb earlier in the clause and
		// the particle closes it). After an auxiliary, "on"/"off" are state
		// adjectives: "lights are on".
		if w.Text == "on" || w.Text == "off" {
			if prev != nil && prev.Tag == Auxiliary {
				toks[i].Tag = Adjective
			} else if prev != nil && prev.Tag == Verb {
				toks[i].Tag = Particle
			} else if (next == nil || next.Tag == Conjunction) && verbEarlier(toks, i) {
				toks[i].Tag = Particle
			}
		}
	}
}

// verbEarlier reports whether a full verb occurs in the same clause before
// position i (clause boundary = conjunction).
func verbEarlier(toks []Token, i int) bool {
	for j := i - 1; j >= 0; j-- {
		if toks[j].Tag == Conjunction {
			return false
		}
		if toks[j].Tag == Verb {
			return true
		}
	}
	return false
}

// TagSentence tokenises and tags in one call.
func TagSentence(s string) []Token { return Tag(Tokenize(s)) }
