// Package obs is the stdlib-only observability subsystem of FexIoT: atomic
// counters and gauges, lock-cheap histograms, and lightweight span tracing
// behind a Registry, exported three ways — Prometheus text format over HTTP
// (/metrics), a JSON snapshot (/statusz), and net/http/pprof wiring.
//
// The design has one hard requirement inherited from the dense kernels it
// instruments: with observability disabled the overhead must be
// unmeasurable. Every handle type (*Counter, *Gauge, *Histogram, Span) is
// nil-safe — methods on a nil receiver return immediately — and every
// Registry constructor on a nil *Registry returns a nil handle. Hot paths
// therefore build their metric handles unconditionally at setup time and
// call them unconditionally; when no registry is configured the entire
// instrumentation collapses to a nil check per call site.
//
//	reg := obs.NewRegistry()                  // or nil to disable
//	dur := reg.Histogram("round_seconds", "round latency", obs.DefBuckets)
//	sp := obs.StartSpan(dur)
//	...
//	sp.End()                                  // observes the duration
//
// Updates are atomic (counters and gauges are single atomic words,
// histogram buckets are independent atomic counters), so concurrent
// writers never contend on a mutex; the mutex in Registry guards only
// registration and rendering, which are cold paths.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind tags the Prometheus type of a registered family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n. Safe on a nil receiver (no-op).
// Negative deltas are ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver (no-op).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta via CAS. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram buckets, tuned for operation
// durations in seconds from sub-millisecond kernels to multi-minute rounds.
var DefBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram counts observations into fixed buckets. Observe is lock-free:
// one atomic add on the bucket, one on the count, and a CAS loop on the
// float sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    Gauge
}

// Observe records v. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// snapshot returns cumulative bucket counts aligned with bounds plus +Inf.
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.bounds)+1)
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// series is one label-value combination of a family, holding exactly one of
// the three handle types.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric with its help text, type and series.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	buckets    []float64 // histograms only
	mu         sync.Mutex
	series     []*series          // insertion order; sorted at render time
	byKey      map[string]*series // joined label values → series
}

// Registry holds a process's metric families. The zero value is not usable;
// call NewRegistry. A nil *Registry is the disabled state: every
// constructor returns a nil handle and every render produces empty output.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	start    time.Time
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}, start: time.Now()}
}

// lookup returns the family for name, creating it on first use, and panics
// on a kind or label-arity mismatch — two call sites disagreeing about what
// a metric is can only be a programming error.
func (r *Registry) lookup(name, help string, kind metricKind, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%d labels, was %s/%d",
				name, kind, len(labelNames), f.kind, len(f.labelNames)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		byKey:      map[string]*series{}}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// with returns the series for the given label values, creating it on first
// use. Caller must pass exactly len(labelNames) values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q called with %d label values, declared %d",
			f.name, len(values), len(f.labelNames)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Int64, len(f.buckets)+1)
		s.hist = h
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter returns the registered counter, creating it on first use.
// Returns nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, nil).with(nil).counter
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, nil).with(nil).gauge
}

// Histogram returns the registered histogram, creating it on first use.
// Nil or empty buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.lookup(name, help, kindHistogram, nil, buckets).with(nil).hist
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family for name.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, labelNames, nil)}
}

// With returns the counter for the given label values (nil on a nil vec).
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(labelValues).counter
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family for name.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values (nil on a nil vec).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(labelValues).gauge
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family for name. Nil or empty
// buckets select DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values (nil on a nil vec).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.with(labelValues).hist
}

// Span measures the duration of one operation into a histogram. The zero
// Span (returned for a nil histogram) is a no-op and never reads the clock.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing an operation whose duration lands in h at End.
// A nil histogram yields a no-op span that never touches the clock, so the
// disabled cost is a nil check.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End observes the span's duration in seconds. Safe on the zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}
