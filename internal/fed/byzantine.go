package fed

import (
	"fmt"
	"math"
	"strings"

	"fexiot/internal/autodiff"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
)

// The attacker model of the robustness evaluation: a Byzantine client runs
// the honest protocol (hello, local training, update upload) but corrupts
// what the server sees. Each attack below is a standard poisoning primitive
// from the FL robustness literature; together with the Aggregator menu they
// span the poison experiment's attack × defence table.

// Attack corrupts one client's pending update after local training. prev is
// the weight snapshot before the round's training (never nil when invoked);
// implementations mutate c.Model.Params() in place, exactly like the DP
// hook, so the server-facing weights are the corrupted ones.
type Attack interface {
	Name() string
	Corrupt(c *Client)
}

// AttackNames lists the selectable attack names accepted by NewAttack (and
// the fexclient -attack flag).
func AttackNames() []string {
	return []string{"label-flip", "sign-flip", "scale", "nan", "replay"}
}

// NewAttack resolves an attack by name; "scale" accepts the default 10×
// factor. The empty string means honest (nil attack).
func NewAttack(name string) (Attack, error) {
	switch name {
	case "":
		return nil, nil
	case "label-flip":
		return LabelFlip{}, nil
	case "sign-flip":
		return SignFlip{}, nil
	case "scale":
		return ScaleAttack{K: 10}, nil
	case "nan":
		return NaNInject{}, nil
	case "replay":
		return &StaleReplay{}, nil
	default:
		return nil, fmt.Errorf("fed: unknown attack %q (valid: %s)",
			name, strings.Join(AttackNames(), ", "))
	}
}

// SignFlip sends W ← prev − ΔW: the update direction is reversed, steering
// gradient descent uphill. A classic untargeted model-poisoning attack.
type SignFlip struct{}

// Name identifies the attack.
func (SignFlip) Name() string { return "sign-flip" }

// Corrupt reverses the round's update.
func (SignFlip) Corrupt(c *Client) {
	applyDelta(c, func(d float64) float64 { return -d })
}

// ScaleAttack sends W ← prev + K·ΔW: a boosted update that dominates any
// unweighted mean (the "model replacement" scaling of backdoor attacks).
type ScaleAttack struct{ K float64 }

// Name identifies the attack.
func (a ScaleAttack) Name() string { return fmt.Sprintf("scale-%g", a.K) }

// Corrupt scales the round's update by K.
func (a ScaleAttack) Corrupt(c *Client) {
	applyDelta(c, func(d float64) float64 { return a.K * d })
}

// NaNInject poisons the update with NaN/Inf values — the numerically
// diverged client. Without a finiteness gate one such update turns the
// whole federation's mean into NaN in a single round.
type NaNInject struct{}

// Name identifies the attack.
func (NaNInject) Name() string { return "nan" }

// Corrupt overwrites part of the weights with non-finite values.
func (NaNInject) Corrupt(c *Client) {
	for _, name := range c.Model.Params().Names() {
		d := c.Model.Params().Get(name).Data()
		for i := range d {
			switch i % 3 {
			case 0:
				d[i] = math.NaN()
			case 1:
				d[i] = math.Inf(1)
			}
		}
	}
}

// StaleReplay records the first update it observes and replays it every
// round thereafter (W ← prev + Δ₀): a freshness attack that drags the
// federation back toward round-0 state.
type StaleReplay struct {
	first *autodiff.ParamSet
}

// Name identifies the attack.
func (*StaleReplay) Name() string { return "replay" }

// Corrupt replaces the round's update with the recorded first-round update.
func (s *StaleReplay) Corrupt(c *Client) {
	if s.first == nil {
		s.first = c.Update().Clone()
		return // round 0 is replayed faithfully
	}
	w := c.prev.Clone()
	for _, name := range w.Names() {
		w.Get(name).AddScaled(s.first.Get(name), 1)
	}
	c.Model.Params().CopyFrom(w)
}

// LabelFlip flips every local training label before training — data
// poisoning rather than model poisoning, so the corrupted update is
// produced by honest optimisation on dishonest data. Installed once at
// wrap time; Corrupt is a no-op.
type LabelFlip struct{}

// Name identifies the attack.
func (LabelFlip) Name() string { return "label-flip" }

// Corrupt does nothing: the poison is in the flipped dataset.
func (LabelFlip) Corrupt(c *Client) {}

// applyDelta rewrites the pending update: W ← prev + f(ΔW) element-wise.
func applyDelta(c *Client, f func(float64) float64) {
	if c.prev == nil {
		return
	}
	update := c.Model.Params().Sub(c.prev)
	w := c.prev.Clone()
	for _, name := range w.Names() {
		wd := w.Get(name).Data()
		ud := update.Get(name).Data()
		for i := range wd {
			wd[i] += f(ud[i])
		}
	}
	c.Model.Params().CopyFrom(w)
}

// MakeByzantine turns a client hostile: atk corrupts every subsequent
// update right after local training (and after any DP hook). LabelFlip
// additionally flips the client's local dataset labels immediately. A nil
// attack restores honesty.
func MakeByzantine(c *Client, atk Attack) {
	c.byz = atk
	if _, ok := atk.(LabelFlip); ok {
		for _, g := range c.Train {
			g.Label = !g.Label
		}
	}
}

// Byzantine reports the attack installed on a client, or nil when honest.
func (c *Client) Byzantine() Attack { return c.byz }

// CorruptUpdate applies atk to a parameter set holding prev + ΔW, returning
// the corrupted weights — the connection-free form used by networked
// clients (fexclient -attack) that own raw ParamSets instead of *Client.
func CorruptUpdate(atk Attack, prev, after *autodiff.ParamSet) {
	if atk == nil {
		return
	}
	shim := &Client{Model: paramModel{after}, prev: prev}
	atk.Corrupt(shim)
}

// paramModel adapts a bare ParamSet to the slice of gnn.Model the attacks
// touch (Params only). The remaining methods are never called by attacks.
type paramModel struct{ p *autodiff.ParamSet }

func (m paramModel) Params() *autodiff.ParamSet { return m.p }
func (m paramModel) Forward(*autodiff.Tape, *autodiff.Binder, *graph.Graph) *autodiff.Node {
	panic("fed: paramModel is aggregation-only")
}
func (m paramModel) EmbedDim() int              { return 0 }
func (m paramModel) Fresh(seed int64) gnn.Model { return m }
