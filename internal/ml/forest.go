package ml

import (
	"math"

	"fexiot/internal/rng"
)

// RandomForest is the bagged-tree ensemble of Fig. 3: each tree trains on a
// bootstrap resample with a random feature subspace per split (the "random
// subspace technique" the paper credits for avoiding overfitting).
type RandomForest struct {
	Trees    int
	MaxDepth int
	Seed     int64

	forest []*DecisionTree
}

// NewRandomForest creates a forest.
func NewRandomForest(trees, maxDepth int, seed int64) *RandomForest {
	return &RandomForest{Trees: trees, MaxDepth: maxDepth, Seed: seed}
}

// Fit trains the ensemble.
func (f *RandomForest) Fit(x [][]float64, y []int) {
	f.forest = f.forest[:0]
	if len(x) == 0 {
		return
	}
	d := len(x[0])
	maxFeat := int(math.Sqrt(float64(d))) + 1
	r := rng.New(f.Seed)
	for t := 0; t < f.Trees; t++ {
		// Bootstrap resample expressed as per-sample weights.
		w := make([]float64, len(x))
		for i := 0; i < len(x); i++ {
			w[r.Intn(len(x))]++
		}
		tree := &DecisionTree{
			MaxDepth:    f.MaxDepth,
			MinSamples:  2,
			MaxFeatures: maxFeat,
			Seed:        f.Seed + int64(t)*101,
		}
		tree.FitWeighted(x, y, w)
		f.forest = append(f.forest, tree)
	}
}

// Score averages tree probabilities.
func (f *RandomForest) Score(q []float64) float64 {
	if len(f.forest) == 0 {
		return 0.5
	}
	var s float64
	for _, t := range f.forest {
		s += t.Score(q)
	}
	return s / float64(len(f.forest))
}

// Predict thresholds Score at 0.5.
func (f *RandomForest) Predict(q []float64) int {
	if f.Score(q) >= 0.5 {
		return 1
	}
	return 0
}
