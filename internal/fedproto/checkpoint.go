package fedproto

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"fexiot/internal/chaos"
)

// Checkpoint is the gob snapshot a durable server writes after closing a
// round: everything a restarted fexserver needs to resume the federation —
// the next round to collect, the pinned tensor layout, the last global
// model (replayed to rejoining clients via the ordinary hello/sync path),
// the per-client strike state, and the run's stats so counters survive the
// crash.
type Checkpoint struct {
	// Round is the next round to collect: rounds [0, Round) have closed.
	Round  int
	Shapes [][][2]int
	Names  [][]string
	Global []LayerPayload
	// Strikes maps client id → consecutive missed rounds at snapshot time.
	Strikes map[int]int
	// Sizes maps client id → |G_c|, informational (hellos re-announce it).
	Sizes map[int]int
	Stats ServerStats
}

// Checkpoint files end in a 40-byte integrity footer: the SHA-256 of the
// gob body followed by an 8-byte magic. Loaders verify the hash when the
// magic is present and fall back to plain gob decoding when it is not, so
// footer-less checkpoints from older builds still load.
const (
	ckptMagic      = "FEXCKPT1"
	ckptFooterSize = sha256.Size + len(ckptMagic)
)

// PrevSuffix names the last-known-good rotation file: SaveCheckpoint moves
// the previous <path> to <path>.prev before installing the new snapshot,
// and loaders roll back to it when <path> is corrupt or truncated.
const PrevSuffix = ".prev"

// ErrCheckpointCorrupt reports a checkpoint whose integrity footer does not
// match its body, or whose body does not decode — a truncated write or
// bit rot, distinguished from a missing file so restart logic can roll
// back to the previous good snapshot instead of failing.
var ErrCheckpointCorrupt = errors.New("fedproto: corrupt checkpoint")

// ckptFS is the filesystem behind checkpoint IO. Production uses the real
// disk; chaos tests inject scripted write/rename failures through
// SetCheckpointFS.
var ckptFS chaos.FS = chaos.OSFS{}

// SetCheckpointFS swaps the filesystem used by checkpoint IO — the
// chaos-injection seam for disk faults — and returns a function restoring
// the previous one. Not for use while a server is concurrently
// checkpointing.
func SetCheckpointFS(f chaos.FS) (restore func()) {
	prev := ckptFS
	ckptFS = f
	return func() { ckptFS = prev }
}

// SaveCheckpoint writes ck atomically and durably: gob body plus SHA-256
// integrity footer into a temp file in the target directory, fsync,
// then a two-step rename that retires the previous snapshot to
// <path>.prev before installing the new one. A crash at any point leaves
// at least one intact snapshot on disk: mid-write keeps both old files,
// mid-rotation keeps .prev, and a torn final rename is caught at load by
// the footer hash.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(ck); err != nil {
		return fmt.Errorf("fedproto: encode checkpoint: %w", err)
	}
	sum := sha256.Sum256(body.Bytes())
	body.Write(sum[:])
	body.WriteString(ckptMagic)

	dir := filepath.Dir(path)
	tmp, err := ckptFS.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer ckptFS.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(body.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// Rotate last-known-good: the current snapshot, already verified or
	// legacy-loaded at startup, becomes the rollback target.
	if err := ckptFS.Rename(path, path+PrevSuffix); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return ckptFS.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads one snapshot file, verifying the integrity footer
// when present and falling back to legacy footer-less gob decoding when it
// is not. Corruption (hash mismatch, truncation, undecodable body) is
// reported as ErrCheckpointCorrupt, never a panic.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := ckptFS.ReadFile(path)
	if err != nil {
		return nil, err
	}
	body := data
	if len(data) >= ckptFooterSize &&
		string(data[len(data)-len(ckptMagic):]) == ckptMagic {
		body = data[: len(data)-ckptFooterSize : len(data)-ckptFooterSize]
		want := data[len(data)-ckptFooterSize : len(data)-len(ckptMagic)]
		if sum := sha256.Sum256(body); !bytes.Equal(sum[:], want) {
			return nil, fmt.Errorf("%w: %s: SHA-256 mismatch", ErrCheckpointCorrupt, path)
		}
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("%w: %s: decode: %v", ErrCheckpointCorrupt, path, err)
	}
	return &ck, nil
}

// LoadLatestCheckpoint loads the freshest intact snapshot for path: the
// file itself when it verifies, otherwise the <path>.prev rotation target.
// It returns the snapshot and the file it actually came from. When neither
// file exists the error satisfies errors.Is(err, fs.ErrNotExist) — a fresh
// federation; when files exist but none verifies, the joined corruption
// errors are returned instead.
func LoadLatestCheckpoint(path string) (*Checkpoint, string, error) {
	ck, err := LoadCheckpoint(path)
	if err == nil {
		return ck, path, nil
	}
	prev := path + PrevSuffix
	ckPrev, errPrev := LoadCheckpoint(prev)
	if errPrev == nil {
		return ckPrev, prev, nil
	}
	if errors.Is(err, fs.ErrNotExist) && errors.Is(errPrev, fs.ErrNotExist) {
		return nil, "", err
	}
	return nil, "", errors.Join(err, errPrev)
}

// saveCheckpoint snapshots the server state after nextRound−1 closed.
func (s *Server) saveCheckpoint(nextRound int) error {
	s.mu.Lock()
	ck := &Checkpoint{
		Round:   nextRound,
		Shapes:  s.shapes,
		Names:   s.names,
		Global:  s.global,
		Strikes: map[int]int{},
		Sizes:   map[int]int{},
		Stats:   s.stats,
	}
	ck.Stats.Responders = append([]int(nil), s.stats.Responders...)
	for _, st := range s.clients {
		if st.alive {
			ck.Strikes[st.id] = st.strikes
			ck.Sizes[st.id] = st.size
		}
	}
	s.mu.Unlock()
	return SaveCheckpoint(s.cfg.CheckpointPath, ck)
}

// restoreCheckpoint loads the latest intact snapshot, if any, before Run
// starts listening: the current file when it verifies, the .prev rollback
// when the latest is corrupt or truncated. Missing files are a fresh
// federation, not an error.
func (s *Server) restoreCheckpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	ck, _, err := LoadLatestCheckpoint(s.cfg.CheckpointPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.startRound = ck.Round
	s.round = ck.Round
	s.shapes = ck.Shapes
	s.names = ck.Names
	s.global = ck.Global
	s.stats = ck.Stats
	s.restoredStrikes = ck.Strikes
	return nil
}
