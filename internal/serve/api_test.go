package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/fusion"
	"fexiot/internal/graph"
	"fexiot/internal/rules"
)

// decodeEnvelope parses an error body and fails the test on anything that
// is not a well-formed envelope.
func decodeEnvelope(t *testing.T, body []byte) ErrorEnvelope {
	t.Helper()
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not an envelope: %v\n%s", err, body)
	}
	if env.Err.Code == "" || env.Err.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	if env.Legacy != env.Err.Message {
		t.Fatalf("error_string %q does not mirror error.message %q",
			env.Legacy, env.Err.Message)
	}
	return env
}

// TestErrorEnvelopeGolden pins the exact error bytes of the /v1 surface:
// a client that string-matches these bodies survives releases.
func TestErrorEnvelopeGolden(t *testing.T) {
	ts, _, home := httpFixture(t, false) // nothing published

	// Empty rule set → bad_request, byte-for-byte.
	resp, body := postJSON(t, ts.URL+"/v1/detect", DetectRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty rules: status %d, want 400", resp.StatusCode)
	}
	const wantEmpty = `{"error":{"code":"bad_request","message":"serve: bad request: rules must be non-empty"},"error_string":"serve: bad request: rules must be non-empty"}` + "\n"
	if string(body) != wantEmpty {
		t.Fatalf("empty-rules body:\n got %q\nwant %q", body, wantEmpty)
	}

	// Unpublished engine → not_ready, byte-for-byte.
	resp, body = postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: home})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish: status %d, want 503", resp.StatusCode)
	}
	const wantNotReady = `{"error":{"code":"not_ready","message":"serve: no model snapshot published yet"},"error_string":"serve: no model snapshot published yet"}` + "\n"
	if string(body) != wantNotReady {
		t.Fatalf("pre-publish body:\n got %q\nwant %q", body, wantNotReady)
	}
}

func TestErrorEnvelopeCodes(t *testing.T) {
	ts, _, _ := httpFixture(t, true)

	// Malformed JSON → 400 bad_request.
	r, err := http.Post(ts.URL+"/v1/detect", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, r)
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", r.StatusCode)
	}
	if env := decodeEnvelope(t, body); env.Err.Code != CodeBadRequest {
		t.Fatalf("malformed JSON: code %q, want %q", env.Err.Code, CodeBadRequest)
	}

	// Wrong verb → 405 method_not_allowed with an Allow header.
	g, err := http.Get(ts.URL + "/v1/detect")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, g)
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET detect: status %d, want 405", g.StatusCode)
	}
	if allow := g.Header.Get("Allow"); allow != "POST" {
		t.Fatalf("GET detect: Allow %q, want POST", allow)
	}
	if env := decodeEnvelope(t, body); env.Err.Code != CodeMethodNotAllowed {
		t.Fatalf("GET detect: code %q, want %q", env.Err.Code, CodeMethodNotAllowed)
	}

	// Wrong Content-Type → 415 unsupported_media_type.
	r, err = http.Post(ts.URL+"/v1/detect", "text/plain", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, r)
	if r.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain: status %d, want 415", r.StatusCode)
	}
	if env := decodeEnvelope(t, body); env.Err.Code != CodeUnsupportedMedia {
		t.Fatalf("text/plain: code %q, want %q", env.Err.Code, CodeUnsupportedMedia)
	}

	// Unknown /v1 path → 404 not_found envelope, not the mux's plain 404.
	r, err = http.Post(ts.URL+"/v1/nope", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, r)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/nope: status %d, want 404", r.StatusCode)
	}
	if env := decodeEnvelope(t, body); env.Err.Code != CodeNotFound {
		t.Fatalf("/v1/nope: code %q, want %q", env.Err.Code, CodeNotFound)
	}

	// nosniff on every response, success or error.
	if got := r.Header.Get("X-Content-Type-Options"); got != "nosniff" {
		t.Fatalf("X-Content-Type-Options = %q, want nosniff", got)
	}
}

// TestErrorEnvelopeTooLarge pins the oversize-body path: a tiny cap turns
// a normal request into 413 too_large before any parsing work.
func TestErrorEnvelopeTooLarge(t *testing.T) {
	det, drf, _ := fixture(83)
	e := NewEngine(Options{Workers: 1, MaxBodyBytes: 64})
	t.Cleanup(e.Close)
	e.Publish(NewSnapshot(1, det, drf, searchCfg))
	mux := http.NewServeMux()
	e.Mount(mux, nil, time.Second)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	big := `{"rules":[` + strings.Repeat(`{"id":"x"},`, 64) + `{"id":"x"}]}`
	r, err := http.Post(ts.URL+"/v1/detect", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, r)
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d, want 413\n%s", r.StatusCode, body)
	}
	if env := decodeEnvelope(t, body); env.Err.Code != CodeTooLarge {
		t.Fatalf("oversize body: code %q, want %q", env.Err.Code, CodeTooLarge)
	}
}

// TestErrorEnvelopeOverloaded saturates a depth-1 queue behind a blocked
// worker and pins the shed reply: 429, overloaded, Retry-After.
func TestErrorEnvelopeOverloaded(t *testing.T) {
	det, drf, _ := fixture(89)
	block := make(chan struct{})
	var blocked sync.Once
	e := NewEngine(Options{Workers: 1, QueueDepth: 1,
		FaultHook: func(string) { blocked.Do(func() { <-block }) }})
	t.Cleanup(e.Close)
	t.Cleanup(func() {
		select {
		case <-block:
		default:
			close(block)
		}
	})
	e.Publish(NewSnapshot(1, det, drf, searchCfg))
	ts, home := mountedServer(t, e)

	// One in-flight (stalled in the worker) plus one queued fills the engine.
	inflight := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: home})
			resp.Body.Close()
			inflight <- struct{}{}
		}()
	}
	// Wait until both occupy the engine (one running, one queued).
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().QueueLength < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/detect", DetectRequest{Rules: home})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("surplus request: status %d, want 429\n%s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	if env := decodeEnvelope(t, body); env.Err.Code != CodeOverloaded {
		t.Fatalf("surplus request: code %q, want %q", env.Err.Code, CodeOverloaded)
	}

	close(block)
	<-inflight
	<-inflight
}

// TestStatusEndpoint exercises GET /v1/status across the publish boundary.
func TestStatusEndpoint(t *testing.T) {
	det, drf, _ := fixture(97)
	e := NewEngine(Options{Workers: 2})
	t.Cleanup(e.Close)
	mux := http.NewServeMux()
	e.Mount(mux, nil, time.Second)
	n := 0
	e.MountStatus(mux, StatusInfo{NodeFeatureDim: 40, Sessions: func() int { return n }})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	get := func() StatusResponse {
		t.Helper()
		r, err := http.Get(ts.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, r)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", r.StatusCode, body)
		}
		var out StatusResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("bad status body %s: %v", body, err)
		}
		return out
	}

	before := get()
	if before.Ready || before.SnapshotSeq != 0 {
		t.Fatalf("pre-publish status ready=%v seq=%d, want false/0",
			before.Ready, before.SnapshotSeq)
	}
	if before.Workers != 2 || before.NodeFeatureDim != 40 {
		t.Fatalf("workers=%d dim=%d, want 2/40", before.Workers, before.NodeFeatureDim)
	}
	if before.StreamSessions == nil || *before.StreamSessions != 0 {
		t.Fatalf("stream_sessions = %v, want 0", before.StreamSessions)
	}

	e.Publish(NewSnapshot(7, det, drf, searchCfg))
	n = 3
	after := get()
	if !after.Ready || after.SnapshotSeq != 7 {
		t.Fatalf("post-publish status ready=%v seq=%d, want true/7",
			after.Ready, after.SnapshotSeq)
	}
	if after.StreamSessions == nil || *after.StreamSessions != 3 {
		t.Fatalf("stream_sessions = %v, want 3", after.StreamSessions)
	}

	// POST /v1/status → 405 with Allow: GET.
	r, err := http.Post(ts.URL+"/v1/status", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, r)
	if r.StatusCode != http.StatusMethodNotAllowed || r.Header.Get("Allow") != "GET" {
		t.Fatalf("POST status: %d Allow=%q, want 405/GET\n%s",
			r.StatusCode, r.Header.Get("Allow"), body)
	}
}

// mountedServer mounts an existing engine behind httptest with the same
// offline builder httpFixture uses.
func mountedServer(t *testing.T, e *Engine) (*httptest.Server, []*rules.Rule) {
	t.Helper()
	enc := embed.NewEncoder(24, 32)
	b := fusion.NewBuilder(51, enc)
	build := func(rs []*rules.Rule, log eventlog.Log) (*graph.Graph, error) {
		return b.Offline(rs, len(rs)), nil
	}
	mux := http.NewServeMux()
	e.Mount(mux, build, 5*time.Second)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	home := rules.NewGenerator(21, rules.Archetypes()[0], "h-").RuleSet(14)
	return ts, home
}

func readAll(t *testing.T, r *http.Response) []byte {
	t.Helper()
	defer r.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}
