package fusion

import (
	"fexiot/internal/embed"
	"fexiot/internal/lexicon"
	"fexiot/internal/mat"
	"fexiot/internal/rng"
	"fexiot/internal/rules"
	"fexiot/internal/text"
)

// PairFeaturizer extracts the correlation features of §III-A1 for a pair of
// rule sentences (a's action clause vs b's trigger clause): (i) DTW
// similarity of verb elements and of object elements, (ii) one-hot lexical
// relation features, (iii) the Eq. (1) trigger-action pair embedding.
type PairFeaturizer struct {
	Encoder *embed.Encoder
	Lexicon *lexicon.Lexicon
	// EmbedDim truncates the Eq. (1) embedding appended to the handcrafted
	// features (keeps classical classifiers fast); 0 keeps the full vector.
	EmbedDim int
}

// NewPairFeaturizer builds a featurizer with the default lexicon.
func NewPairFeaturizer(enc *embed.Encoder, embedDim int) *PairFeaturizer {
	return &PairFeaturizer{Encoder: enc, Lexicon: lexicon.New(), EmbedDim: embedDim}
}

// FeatureDim returns the produced feature vector length.
func (f *PairFeaturizer) FeatureDim() int {
	d := f.Encoder.WordDim()
	if f.EmbedDim > 0 && f.EmbedDim < d {
		d = f.EmbedDim
	}
	// 2 DTW similarities + 5 relation one-hots + 1 sentence cosine + embed.
	return 8 + d
}

// Features computes the correlation feature vector for (action of a →
// trigger of b).
func (f *PairFeaturizer) Features(a, b *rules.Rule) []float64 {
	pa := text.Parse(a.Description)
	pb := text.Parse(b.Description)

	actEl := pa.Action.Elements
	trigEl := pb.Trigger.Elements
	out := make([]float64, 0, f.FeatureDim())

	// (i) Similarity features via DTW over element embeddings.
	out = append(out,
		f.Encoder.ElementSimilarity(actEl.Verbs, trigEl.Verbs),
		f.Encoder.ElementSimilarity(actEl.Objects, trigEl.Objects),
	)

	// (ii) Causal relation one-hots between the object vocabularies.
	out = append(out, f.Lexicon.RelationFeatures(actEl.Objects, trigEl.Objects)...)

	// Sentence-level cosine between the two clauses.
	sa := f.Encoder.Sentence(pa.Action.Text)
	sb := f.Encoder.Sentence(pb.Trigger.Text)
	out = append(out, mat.CosineSimilarity(sa, sb))

	// (iii) Eq. (1) pair embedding (trigger of b + action of a).
	pair := f.Encoder.PairEmbedding(pb.Trigger.Text, pa.Action.Text)
	d := len(pair)
	if f.EmbedDim > 0 && f.EmbedDim < d {
		d = f.EmbedDim
	}
	out = append(out, pair[:d]...)
	return out
}

// PairDataset materialises a labelled correlation dataset from a rule pool:
// positive examples are ground-truth action→trigger pairs, negatives are
// uncorrelated pairs. It mirrors the paper's 5,600 positive + 8,000
// negative manually-labelled pairs (§IV-B).
type PairDataset struct {
	X [][]float64
	Y []int // 1 = correlated
}

// BuildPairDataset samples nPos correlated and nNeg uncorrelated rule pairs
// from pool and featurises them. Correlated pairs are rare among random
// pairs, so positives are drawn through the pool index.
func BuildPairDataset(f *PairFeaturizer, pool []*rules.Rule, nPos, nNeg int, seed int64) *PairDataset {
	ds := &PairDataset{}
	r := rng.New(seed)
	ix := NewPoolIndex(pool)
	addPair := func(a, b *rules.Rule, label int) {
		ds.X = append(ds.X, f.Features(a, b))
		ds.Y = append(ds.Y, label)
	}
	pos := 0
	for guard := 0; pos < nPos && guard < nPos*200; guard++ {
		a := pool[r.Intn(len(pool))]
		partners := ix.Forward(a)
		if len(partners) == 0 {
			continue
		}
		addPair(a, partners[r.Intn(len(partners))], 1)
		pos++
	}
	neg := 0
	for guard := 0; neg < nNeg && guard < nNeg*200; guard++ {
		a := pool[r.Intn(len(pool))]
		b := pool[r.Intn(len(pool))]
		if a == b || rules.RuleCanTrigger(a, b) != rules.NoMatch {
			continue
		}
		addPair(a, b, 0)
		neg++
	}
	return ds
}
