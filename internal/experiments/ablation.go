package experiments

import (
	"fmt"

	"fexiot/internal/autodiff"
	"fexiot/internal/datasets"
	"fexiot/internal/explain"
	"fexiot/internal/fed"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/ml"
)

// AblationLayerwise contrasts FexIoT's layer-wise clustering against
// whole-model clustering (GCFL+-style) under identical budgets — design
// choice 1 of DESIGN.md §4.
func AblationLayerwise(s Setup) *Table {
	d := datasets.BuildIFTTT(s.Scale, s.Seed)
	labeled := d.Shuffled(s.Seed + 2)
	t := &Table{
		Title:  "Ablation — layer-wise vs whole-model clustering (α=0.1)",
		Header: []string{"Variant", "Accuracy", "F1", "Clusters"},
	}
	for _, algo := range []fed.Algorithm{fed.NewFexIoT(), fed.GCFL()} {
		cd := s.splitClients(labeled, 10, 0.1, s.Seed+7)
		base := s.newModel("GIN", d.Encoder, 100)
		ms, res := s.runFederated(algo, base, cd)
		m := meanMetrics(ms)
		t.Add(algo.Name(), f3(m.Accuracy), f3(m.F1),
			fmt.Sprint(res.Rounds[len(res.Rounds)-1].NumClusters))
	}
	return t
}

// AblationContrastive contrasts the contrastive representation objective
// (Eq. 2) against plain supervised cross-entropy — design choice 2.
func AblationContrastive(s Setup) *Table {
	d := datasets.BuildIFTTT(s.Scale, s.Seed)
	labeled := d.Shuffled(s.Seed + 2)
	cut := len(labeled) * 8 / 10
	train, test := labeled[:cut], labeled[cut:]
	t := &Table{
		Title:  "Ablation — contrastive (Eq. 2) vs supervised cross-entropy",
		Header: []string{"Objective", "Accuracy", "F1"},
	}

	// Contrastive + SGD head (the paper's pipeline).
	det := trainDetectorOn(s, "GIN", d, train)
	m := gnn.EvaluateDetector(det, test)
	t.Add("contrastive+SGD", f3(m.Accuracy), f3(m.F1))

	// Supervised CE, same budget.
	model := s.newModel("GIN", d.Encoder, 100+s.Seed)
	head := gnn.NewSupervisedHead(model.EmbedDim(), 4)
	opt := autodiff.NewAdam(s.LR)
	opt.WeightDecay = 1e-4
	hOpt := autodiff.NewAdam(s.LR)
	cfg := gnn.DefaultTrainConfig(s.Seed)
	cfg.LR = s.LR
	cfg.PairsPerEpoch = s.PairsPerRound * 2
	for r := 0; r < s.Rounds; r++ {
		cfg.Seed = s.Seed + int64(r)
		gnn.TrainSupervised(model, head, train, cfg, opt, hOpt, nil)
	}
	pred := make([]int, len(test))
	truth := make([]int, len(test))
	for i, g := range test {
		pred[i] = head.Predict(model, g)
		if g.Label {
			truth[i] = 1
		}
	}
	mm := ml.Evaluate(pred, truth)
	t.Add("supervised CE", f3(mm.Accuracy), f3(mm.F1))
	return t
}

// AblationBeam sweeps the MCBS beam width — design choice 4: wider beams
// explore more subgraphs per level at higher cost.
func AblationBeam(s Setup) *Table {
	d := datasets.BuildIFTTT(s.Scale, s.Seed)
	labeled := d.Shuffled(s.Seed)
	det := trainDetectorOn(s, "GCN", d, labeled[:min(len(labeled), 300)])
	h := func(g *graph.Graph) float64 {
		if g.N() == 0 {
			return 0
		}
		return det.Score(g)
	}
	var picks []*graph.Graph
	for _, g := range labeled {
		if g.Label && g.N() >= 6 && g.N() <= 16 {
			picks = append(picks, g)
			if len(picks) == 8 {
				break
			}
		}
	}
	t := &Table{
		Title:  "Ablation — MCBS beam width",
		Header: []string{"Beam", "Fidelity (mean)", "Sparsity (mean)"},
	}
	for _, beam := range []int{1, 2, 4, 8} {
		cfg := explain.DefaultSearchConfig(s.Seed)
		cfg.Beam = beam
		var fids, sps []float64
		for gi, g := range picks {
			cfg.Seed = s.Seed + int64(gi)
			ex := explain.FexIoTExplain(h, g, cfg)
			fids = append(fids, explain.Fidelity(h, g, ex.Nodes))
			sps = append(sps, explain.Sparsity(g, ex.Nodes))
		}
		t.Add(fmt.Sprint(beam), f3(mat.Mean(fids)), f3(mat.Mean(sps)))
	}
	return t
}

// AblationMAD sweeps the drifting-sample MAD threshold T_M — design
// choice 5: lower thresholds flag more candidates.
func AblationMAD(s Setup) *Table {
	d := datasets.BuildIFTTT(s.Scale, s.Seed)
	labeled := d.Shuffled(s.Seed)
	det := trainDetectorOn(s, "GIN", d, labeled)
	emb := gnn.EmbedAll(det.Model, labeled)
	labels := make([]int, len(labeled))
	for i, g := range labeled {
		if g.Label {
			labels[i] = 1
		}
	}
	dd := driftFitHelper(emb, labels)
	test := gnn.EmbedAll(det.Model, d.Unlabeled[:min(len(d.Unlabeled), 400)])
	t := &Table{
		Title:  "Ablation — MAD threshold T_M for drift filtering",
		Header: []string{"T_M", "Flagged", "Flagged %"},
	}
	for _, tm := range []float64{1, 2, 3, 5} {
		dd.Threshold = tm
		_, drifting := dd.FilterDrifting(test)
		t.Add(fmt.Sprintf("%.0f", tm), fmt.Sprint(len(drifting)),
			fmt.Sprintf("%.1f%%", 100*float64(len(drifting))/float64(len(test))))
	}
	return t
}
