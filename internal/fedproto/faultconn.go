package fedproto

import (
	"net"

	"fexiot/internal/chaos"
)

// FaultConn is the historical name of the link fault injector, now
// generalised into the unified chaos package as chaos.Conn (delay,
// blackhole, mid-stream kill). The alias keeps existing chaos tests and
// the chaos experiment compiling unchanged.
type FaultConn = chaos.Conn

// NewFaultConn wraps an established connection with no faults armed.
func NewFaultConn(c net.Conn) *FaultConn { return chaos.NewConn(c) }
