package gnn

import (
	"testing"

	"fexiot/internal/autodiff"
	"fexiot/internal/mat"
)

// BenchmarkTrainStepAllocs pins the steady-state allocation cost of one
// contrastive training pair on a reused tape — the hot loop the arena and
// node recycling exist for. Parallelism is pinned to 1 because the parallel
// kernel dispatch allocates goroutine bookkeeping that would drown the
// signal. Seed baseline (fresh tape per pair): ~2400 allocs/op; pooled:
// single digits.
func BenchmarkTrainStepAllocs(b *testing.B) {
	gs := benchGraphs(b, 8)
	m := NewGIN(featDim, 32, 16, 7)
	tape := autodiff.NewTape()
	binder := autodiff.Bind(tape, m.Params())
	old := mat.Parallelism()
	mat.SetParallelism(1)
	defer mat.SetParallelism(old)
	sink := func(string, *mat.Dense) {}
	step := func(i int) {
		tape.Reset()
		binder.Rebind(tape, m.Params())
		za := m.Forward(tape, binder, gs[i%len(gs)])
		zb := m.Forward(tape, binder, gs[(i+1)%len(gs)])
		loss := tape.ContrastiveLoss(za, zb, i%2 == 0, 1.0)
		tape.Backward(loss)
		binder.EachGrad(sink)
	}
	for i := 0; i < 8; i++ { // warm the arena and node free lists
		step(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(i)
	}
}

// BenchmarkDetectAllocs pins the steady-state allocation cost of one
// inference pass through a long-lived workspace — the path a serve worker
// takes per request.
func BenchmarkDetectAllocs(b *testing.B) {
	gs := benchGraphs(b, 8)
	m := NewGIN(featDim, 32, 16, 7)
	ws := NewWorkspace()
	old := mat.Parallelism()
	mat.SetParallelism(1)
	defer mat.SetParallelism(old)
	for i := 0; i < 8; i++ {
		ws.Embed(m, gs[i%len(gs)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Embed(m, gs[i%len(gs)])
	}
}

// TestTrainStepSteadyStateAllocs is the hard allocation-regression pin: a
// warmed tape must run a full forward+backward+grad-walk pair in at most a
// handful of allocations (the seed path took thousands). The ceiling is
// deliberately loose — it catches a regression back to per-node allocation,
// not incidental single allocs.
func TestTrainStepSteadyStateAllocs(t *testing.T) {
	gs := makeGraphs(4)
	m := NewGIN(featDim, 32, 16, 7)
	tape := autodiff.NewTape()
	binder := autodiff.Bind(tape, m.Params())
	old := mat.Parallelism()
	mat.SetParallelism(1)
	defer mat.SetParallelism(old)
	sink := func(string, *mat.Dense) {}
	step := func(i int) {
		tape.Reset()
		binder.Rebind(tape, m.Params())
		za := m.Forward(tape, binder, gs[i%len(gs)])
		zb := m.Forward(tape, binder, gs[(i+1)%len(gs)])
		loss := tape.ContrastiveLoss(za, zb, i%2 == 0, 1.0)
		tape.Backward(loss)
		binder.EachGrad(sink)
	}
	for i := 0; i < 8; i++ {
		step(i)
	}
	i := 0
	avg := testing.AllocsPerRun(20, func() {
		step(i)
		i++
	})
	if avg > 64 {
		t.Fatalf("steady-state train step allocates %.1f/op, want ≤64 "+
			"(regression toward per-node allocation)", avg)
	}
}

// TestDetectSteadyStateAllocs pins the workspace inference path the same
// way: a warmed workspace embed must stay within a handful of allocations.
func TestDetectSteadyStateAllocs(t *testing.T) {
	gs := makeGraphs(4)
	m := NewGIN(featDim, 32, 16, 7)
	ws := NewWorkspace()
	old := mat.Parallelism()
	mat.SetParallelism(1)
	defer mat.SetParallelism(old)
	for i := 0; i < 8; i++ {
		ws.Embed(m, gs[i%len(gs)])
	}
	i := 0
	avg := testing.AllocsPerRun(20, func() {
		ws.Embed(m, gs[i%len(gs)])
		i++
	})
	if avg > 32 {
		t.Fatalf("steady-state workspace embed allocates %.1f/op, want ≤32", avg)
	}
}
