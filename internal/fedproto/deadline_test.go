package fedproto

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// pipeConns builds a connected pair of protocol conns over loopback TCP
// (net.Pipe has no deadline support, so deadline semantics need a real
// socket).
func pipeConns(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	ca, cb := Wrap(cli), Wrap(a.c)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

// TestOpDeadlineClearedAfterDisable is the stale-deadline regression test:
// Recv under an armed op deadline used to leave the socket deadline in
// place, so after SetOpDeadline(0) a later blocking Recv died with a
// spurious i/o timeout the moment the old deadline expired — exactly the
// fate of a client idling for the next round's MsgModel. With the fix, the
// deadline-free Recv clears the stale deadline and blocks until the
// message arrives well past it.
func TestOpDeadlineClearedAfterDisable(t *testing.T) {
	cli, srv := pipeConns(t)

	const short = 80 * time.Millisecond
	cli.SetOpDeadline(short)
	if err := srv.Send(&Message{Kind: MsgModel, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Recv(); err != nil {
		t.Fatalf("deadline-armed recv: %v", err)
	}

	// Disable per-op deadlines, then block well past the old deadline.
	cli.SetOpDeadline(0)
	go func() {
		time.Sleep(3 * short)
		srv.Send(&Message{Kind: MsgModel, Round: 2})
	}()
	m, err := cli.Recv()
	if err != nil {
		t.Fatalf("blocking recv after SetOpDeadline(0): %v (stale deadline not cleared)", err)
	}
	if m.Round != 2 {
		t.Fatalf("got round %d want 2", m.Round)
	}
}

// TestOpDeadlineClearedAfterDisableSend is the write-side twin: a Send
// after SetOpDeadline(0) must not inherit the previous Send's deadline.
func TestOpDeadlineClearedAfterDisableSend(t *testing.T) {
	cli, srv := pipeConns(t)

	const short = 80 * time.Millisecond
	cli.SetOpDeadline(short)
	if err := cli.Send(&Message{Kind: MsgHello}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}

	cli.SetOpDeadline(0)
	time.Sleep(2 * short) // let the stale write deadline expire
	if err := cli.Send(&Message{Kind: MsgUpdate}); err != nil {
		t.Fatalf("send after SetOpDeadline(0): %v (stale deadline not cleared)", err)
	}
	if m, err := srv.Recv(); err != nil || m.Kind != MsgUpdate {
		t.Fatalf("recv: %v %v", m, err)
	}
}

// TestExternalDeadlineSurvivesOpFreeRecv guards the server's round-timeout
// pattern: a deadline armed directly via SetReadDeadline is the caller's,
// and a Recv with no op deadline must honour it rather than clear it.
func TestExternalDeadlineSurvivesOpFreeRecv(t *testing.T) {
	cli, srv := pipeConns(t)

	// Genuinely arm the internal read deadline (a successful Recv under an
	// op deadline), then hand ownership to an external deadline: the next
	// op-free Recv must not treat it as its own stale deadline and clear it.
	cli.SetOpDeadline(50 * time.Millisecond)
	if err := srv.Send(&Message{Kind: MsgModel}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Recv(); err != nil {
		t.Fatal(err)
	}
	cli.SetOpDeadline(0)
	cli.SetReadDeadline(time.Now().Add(60 * time.Millisecond))
	start := time.Now()
	_, err := cli.Recv()
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("recv = %v, want timeout from the externally armed deadline", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("external deadline was cleared by an op-deadline-free Recv")
	}
}

// TestBytesConcurrentWithBlockedRecv pins the lock-free tallies: Bytes and
// InBytes must return while another goroutine is parked inside Recv (the
// old implementation took the same mutex for both, so a blocked decode
// could starve readers).
func TestBytesConcurrentWithBlockedRecv(t *testing.T) {
	cli, srv := pipeConns(t)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli.Recv() // parked until the reply lands
	}()

	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			cli.Bytes()
			cli.InBytes()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Bytes() blocked behind a parked Recv")
	}
	srv.Send(&Message{Kind: MsgDone})
	wg.Wait()
	if in := cli.InBytes(); in <= 0 {
		t.Fatalf("InBytes = %d after a received message", in)
	}
}
