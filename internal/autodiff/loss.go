package autodiff

import (
	"fmt"
	"math"

	"fexiot/internal/mat"
)

// SumAll reduces a node to its 1×1 element sum.
func (t *Tape) SumAll(a *Node) *Node {
	out := t.op(1, 1, a.needs, backSumAll)
	out.a = a
	out.Value.Set(0, 0, a.Value.Sum())
	return out
}

func backSumAll(out *Node) {
	a := out.a
	if !a.needs {
		return
	}
	ensureGrad(a)
	g := out.Grad.At(0, 0)
	d := a.Grad.Data()
	for i := range d {
		d[i] += g
	}
}

// AddConst returns a + c element-wise for a constant scalar c.
func (t *Tape) AddConst(a *Node, c float64) *Node {
	r, cc := a.Value.Dims()
	out := t.op(r, cc, a.needs, backAddConst)
	out.a = a
	out.scalar = c
	od, ad := out.Value.Data(), a.Value.Data()
	for i := range od {
		od[i] = ad[i] + c
	}
	return out
}

func backAddConst(out *Node) {
	if out.a.needs {
		ensureGrad(out.a)
		out.a.Grad.AddScaled(out.Grad, 1)
	}
}

// SoftmaxCrossEntropy computes the mean weighted cross-entropy between
// logits (n×C) and integer labels, with per-class weights (nil for uniform).
// This is the "weighted cross-entropy loss ... according to the inverse
// ratio to class frequencies" used by the paper for class imbalance. labels
// and classWeights are caller-owned and must stay valid until Reset.
func (t *Tape) SoftmaxCrossEntropy(logits *Node, labels []int, classWeights []float64) *Node {
	n, c := logits.Value.Dims()
	if len(labels) != n {
		panic(fmt.Sprintf("autodiff: %d labels for %d logits rows", len(labels), n))
	}
	out := t.op(1, 1, logits.needs, backSoftmaxCrossEntropy)
	out.a = logits
	out.idx = labels
	out.w1 = classWeights
	// The softmax probabilities are needed again in backward; they live in
	// the node's leased auxiliary buffer and die at Reset.
	out.ahdr.Remake(n, c, t.arena.Lease(n*c))
	out.hasAux = true
	probs := &out.ahdr
	var loss float64
	var wsum float64
	for i := 0; i < n; i++ {
		p := probs.Row(i)
		mat.SoftmaxTo(p, logits.Value.Row(i))
		w := 1.0
		if classWeights != nil {
			w = classWeights[labels[i]]
		}
		wsum += w
		loss -= w * math.Log(math.Max(p[labels[i]], 1e-12))
	}
	if wsum == 0 {
		wsum = 1
	}
	loss /= wsum
	out.scalar = wsum
	out.Value.Set(0, 0, loss)
	return out
}

func backSoftmaxCrossEntropy(out *Node) {
	logits := out.a
	if !logits.needs {
		return
	}
	ensureGrad(logits)
	n, c := logits.Value.Dims()
	labels, classWeights, wsum := out.idx, out.w1, out.scalar
	g := out.Grad.At(0, 0)
	for i := 0; i < n; i++ {
		w := 1.0
		if classWeights != nil {
			w = classWeights[labels[i]]
		}
		gi := logits.Grad.Row(i)
		pi := out.ahdr.Row(i)
		for j := 0; j < c; j++ {
			d := pi[j]
			if j == labels[i] {
				d -= 1
			}
			gi[j] += g * w * d / wsum
		}
	}
}

// MSE computes mean squared error between pred and a constant target of the
// same shape. target is caller-owned and must stay valid until Reset.
func (t *Tape) MSE(pred *Node, target *mat.Dense) *Node {
	r, c := pred.Value.Dims()
	tr, tc := target.Dims()
	if r != tr || c != tc {
		panic(fmt.Sprintf("autodiff: MSE %dx%d vs target %dx%d", r, c, tr, tc))
	}
	out := t.op(1, 1, pred.needs, backMSE)
	out.a = pred
	out.auxRef = target
	n := float64(r * c)
	out.scalar = n
	var loss float64
	pd, td := pred.Value.Data(), target.Data()
	for i := range pd {
		d := pd[i] - td[i]
		loss += d * d
	}
	loss /= n
	out.Value.Set(0, 0, loss)
	return out
}

func backMSE(out *Node) {
	pred := out.a
	if !pred.needs {
		return
	}
	ensureGrad(pred)
	g := out.Grad.At(0, 0)
	n := out.scalar
	pd, td, gd := pred.Value.Data(), out.auxRef.Data(), pred.Grad.Data()
	for i := range pd {
		gd[i] += g * 2 * (pd[i] - td[i]) / n
	}
}

// ContrastiveLoss implements Eq. (2) of the paper for a pair of graph
// embeddings za, zb (each 1×d):
//
//	L = d²·(1−y) + max(0, k − d²)·y
//
// where d is the Euclidean distance, y=1 when the two graphs come from
// different classes and y=0 when they share a class, and k is the margin.
func (t *Tape) ContrastiveLoss(za, zb *Node, differentClass bool, margin float64) *Node {
	diff := t.Sub(za, zb)
	sq := t.Hadamard(diff, diff)
	d2 := t.SumAll(sq)
	if !differentClass {
		return d2
	}
	neg := t.Scale(d2, -1)
	shifted := t.AddConst(neg, margin)
	return t.ReLU(shifted)
}

// BCEWithLogits computes mean binary cross-entropy between logits (n×1) and
// targets in {0,1}, with optional per-sample weights. targets and
// sampleWeights are caller-owned and must stay valid until Reset.
func (t *Tape) BCEWithLogits(logits *Node, targets []float64, sampleWeights []float64) *Node {
	n, c := logits.Value.Dims()
	if c != 1 || len(targets) != n {
		panic(fmt.Sprintf("autodiff: BCE logits %dx%d with %d targets", n, c, len(targets)))
	}
	out := t.op(1, 1, logits.needs, backBCEWithLogits)
	out.a = logits
	out.w1 = targets
	out.w2 = sampleWeights
	if cap(out.fls) < n {
		out.fls = make([]float64, n)
	}
	out.fls = out.fls[:n]
	var loss, wsum float64
	for i := 0; i < n; i++ {
		z := logits.Value.At(i, 0)
		s := mat.Sigmoid(z)
		out.fls[i] = s
		w := 1.0
		if sampleWeights != nil {
			w = sampleWeights[i]
		}
		wsum += w
		// Numerically stable BCE.
		loss += w * (math.Max(z, 0) - z*targets[i] + math.Log(1+math.Exp(-math.Abs(z))))
	}
	if wsum == 0 {
		wsum = 1
	}
	loss /= wsum
	out.scalar = wsum
	out.Value.Set(0, 0, loss)
	return out
}

func backBCEWithLogits(out *Node) {
	logits := out.a
	if !logits.needs {
		return
	}
	ensureGrad(logits)
	n, _ := logits.Value.Dims()
	targets, sampleWeights, wsum := out.w1, out.w2, out.scalar
	g := out.Grad.At(0, 0)
	for i := 0; i < n; i++ {
		w := 1.0
		if sampleWeights != nil {
			w = sampleWeights[i]
		}
		logits.Grad.Add(i, 0, g*w*(out.fls[i]-targets[i])/wsum)
	}
}
