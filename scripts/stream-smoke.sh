#!/bin/sh
# stream-smoke: end-to-end smoke test of the streaming detection sessions
# against the real fexserve binary. Starts the server with a short
# background republish cadence, opens a session with the -sample rule set,
# feeds it the -stream-sample NDJSON batch (attack-injected simulator
# events), and reads the rolling verdict across at least two republishes —
# the reported snapshot_seq must advance while the refusion count stays
# put (republishes re-score, they never re-fuse). The structured /v1 error
# envelope is asserted on the unhappy paths (unknown id, wrong verb, wrong
# Content-Type, bad NDJSON), the fexiot_stream_* metric family must be
# live, and DELETE must drop the session gauge back to zero.
# `make stream-smoke` runs this as part of `make check`.
set -eu

WORKDIR=$(mktemp -d)
SERVER_LOG="$WORKDIR/server.log"
cleanup() {
    [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "stream-smoke: building fexserve..."
go build -o "$WORKDIR/fexserve" ./cmd/fexserve

# Compact training, 300ms republish cadence, and both sample files: the
# detect sample doubles as the stream-create body, the stream sample is the
# NDJSON batch.
"$WORKDIR/fexserve" -addr 127.0.0.1:0 -homes 4 -rules 16 -graphs 2 \
    -rounds 1 -pairs 30 -republish 300ms \
    -window-events 100000 -window-age 1000000 \
    -sample "$WORKDIR/detect.json" -stream-sample "$WORKDIR/events.ndjson" \
    >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 300); do
    ADDR=$(sed -n 's#^fexserve listening on http://##p' "$SERVER_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "stream-smoke: server died:"; cat "$SERVER_LOG"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "stream-smoke: no listen address in server log"; cat "$SERVER_LOG"; exit 1; }
[ -s "$WORKDIR/detect.json" ] || { echo "stream-smoke: detect sample never written"; exit 1; }
[ -s "$WORKDIR/events.ndjson" ] || { echo "stream-smoke: NDJSON sample never written"; exit 1; }
echo "stream-smoke: serving on $ADDR ($(wc -l < "$WORKDIR/events.ndjson") sample events)"

code_of() { # code_of OUTFILE METHOD URL [CT] [BODYFILE]
    out=$1; method=$2; url=$3; ct=${4:-}; bodyfile=${5:-}
    set -- -s -o "$out" -w '%{http_code}' -X "$method"
    [ -n "$ct" ] && set -- "$@" -H "Content-Type: $ct"
    [ -n "$bodyfile" ] && set -- "$@" --data-binary @"$bodyfile"
    curl "$@" "$url" || echo 000
}

json_field() { # json_field FILE FIELD — first numeric/string value of "field"
    sed -n 's/.*"'"$2"'":\([^,}]*\).*/\1/p' "$1" | head -n1 | tr -d '"'
}

# --- Session lifecycle -------------------------------------------------

code=$(code_of "$WORKDIR/create.out" POST "http://$ADDR/v1/streams" \
    application/json "$WORKDIR/detect.json")
[ "$code" = 201 ] || { echo "stream-smoke: create returned $code:"; cat "$WORKDIR/create.out"; exit 1; }
SID=$(json_field "$WORKDIR/create.out" id)
[ -n "$SID" ] || { echo "stream-smoke: create reply has no id:"; cat "$WORKDIR/create.out"; exit 1; }
echo "stream-smoke: session $SID created"

code=$(code_of "$WORKDIR/ingest.out" POST "http://$ADDR/v1/streams/$SID/events" \
    application/x-ndjson "$WORKDIR/events.ndjson")
[ "$code" = 200 ] || { echo "stream-smoke: ingest returned $code:"; cat "$WORKDIR/ingest.out"; exit 1; }
INGESTED=$(json_field "$WORKDIR/ingest.out" ingested)
[ "$INGESTED" -ge 1 ] || { echo "stream-smoke: ingest reported $INGESTED events:"; cat "$WORKDIR/ingest.out"; exit 1; }

code=$(code_of "$WORKDIR/v1.out" GET "http://$ADDR/v1/streams/$SID")
[ "$code" = 200 ] || { echo "stream-smoke: verdict returned $code:"; cat "$WORKDIR/v1.out"; exit 1; }
SEQ1=$(json_field "$WORKDIR/v1.out" snapshot_seq)
REF1=$(json_field "$WORKDIR/v1.out" refusions)
NODES=$(json_field "$WORKDIR/v1.out" nodes)
[ "$NODES" -ge 1 ] || { echo "stream-smoke: verdict fused an empty graph:"; cat "$WORKDIR/v1.out"; exit 1; }
echo "stream-smoke: rolling verdict at seq=$SEQ1 nodes=$NODES refusions=$REF1"

# Wait for the snapshot sequence to advance at least twice past the first
# read; each poll must re-score on the fresh snapshot without re-fusing.
ADVANCED=""
for _ in $(seq 1 300); do
    sleep 0.1
    code=$(code_of "$WORKDIR/v2.out" GET "http://$ADDR/v1/streams/$SID")
    [ "$code" = 200 ] || { echo "stream-smoke: verdict poll returned $code:"; cat "$WORKDIR/v2.out"; exit 1; }
    SEQ2=$(json_field "$WORKDIR/v2.out" snapshot_seq)
    if [ "$SEQ2" -ge $((SEQ1 + 2)) ]; then ADVANCED=yes; break; fi
done
[ -n "$ADVANCED" ] || { echo "stream-smoke: snapshot_seq never advanced past $SEQ1"; \
    cat "$SERVER_LOG"; exit 1; }
REF2=$(json_field "$WORKDIR/v2.out" refusions)
[ "$REF2" = "$REF1" ] || { echo "stream-smoke: republish caused a refusion ($REF1 -> $REF2)"; \
    cat "$WORKDIR/v2.out"; exit 1; }
echo "stream-smoke: verdict tracked republishes seq $SEQ1 -> $SEQ2 with refusions pinned at $REF2"

# /v1/status must report the live session.
code=$(code_of "$WORKDIR/status.out" GET "http://$ADDR/v1/status")
[ "$code" = 200 ] || { echo "stream-smoke: /v1/status returned $code"; exit 1; }
grep -q '"stream_sessions":1' "$WORKDIR/status.out" \
    || { echo "stream-smoke: /v1/status not counting the session:"; cat "$WORKDIR/status.out"; exit 1; }

# --- Structured error envelope ----------------------------------------

expect_code() { # expect_code WANT_HTTP WANT_CODE METHOD URL [CT] [BODYFILE]
    want=$1; wantcode=$2; shift 2
    got=$(code_of "$WORKDIR/err.out" "$@")
    [ "$got" = "$want" ] || { echo "stream-smoke: $2 $3 returned $got, want $want:"; \
        cat "$WORKDIR/err.out"; exit 1; }
    grep -q '"code":"'"$wantcode"'"' "$WORKDIR/err.out" \
        || { echo "stream-smoke: $2 $3 envelope missing code $wantcode:"; \
             cat "$WORKDIR/err.out"; exit 1; }
}

expect_code 404 not_found GET "http://$ADDR/v1/streams/no-such-session"
expect_code 404 not_found GET "http://$ADDR/v1/nope"
expect_code 405 method_not_allowed GET "http://$ADDR/v1/streams"
expect_code 415 unsupported_media_type POST "http://$ADDR/v1/streams" text/csv "$WORKDIR/detect.json"
printf '{broken\n' >"$WORKDIR/bad.ndjson"
expect_code 400 bad_request POST "http://$ADDR/v1/streams/$SID/events" \
    application/x-ndjson "$WORKDIR/bad.ndjson"
echo "stream-smoke: error envelope codes verified (404/405/415/400)"

# --- Metrics and teardown ----------------------------------------------

curl -sf "http://$ADDR/metrics" >"$WORKDIR/metrics.txt"
for metric in fexiot_stream_sessions fexiot_stream_events_total \
    fexiot_stream_refusions_total fexiot_stream_feature_cache_hits_total \
    fexiot_stream_verdict_lag_seconds; do
    grep -q "^# TYPE $metric " "$WORKDIR/metrics.txt" \
        || { echo "stream-smoke: $metric missing from /metrics"; exit 1; }
done
grep -q '^fexiot_stream_sessions 1' "$WORKDIR/metrics.txt" \
    || { echo "stream-smoke: session gauge not 1:"; \
         grep fexiot_stream "$WORKDIR/metrics.txt"; exit 1; }

code=$(code_of "$WORKDIR/del.out" DELETE "http://$ADDR/v1/streams/$SID")
[ "$code" = 200 ] || { echo "stream-smoke: delete returned $code:"; cat "$WORKDIR/del.out"; exit 1; }
expect_code 404 not_found GET "http://$ADDR/v1/streams/$SID"
curl -sf "http://$ADDR/metrics" | grep -q '^fexiot_stream_sessions 0' \
    || { echo "stream-smoke: session gauge not back to 0 after delete"; exit 1; }

echo "stream-smoke: OK (session $SID: $INGESTED events, verdict tracked" \
    "seq $SEQ1->$SEQ2 across republishes, envelope + metrics verified, clean delete)"
