package fusion

import (
	"fexiot/internal/ml"
	"fexiot/internal/rng"
	"fexiot/internal/rules"
)

// ClassifierOracle wraps a trained action-trigger correlation classifier as
// an EdgeOracle — the deployed pipeline of §III-A3, where the ground-truth
// semantics are unavailable and a model trained on labelled pairs predicts
// which rules correlate. Because the correlation features eliminate named
// entities, the classifier cannot distinguish device instances in different
// rooms; its predictions are therefore a noisy superset of the true edges,
// exactly the labelling noise the paper's manual cross-checking step
// handles.
type ClassifierOracle struct {
	Classifier ml.Classifier
	Featurizer *PairFeaturizer
	// Threshold on the classifier score for declaring a correlation.
	Threshold float64

	cache map[[2]string]rules.MatchKind
}

// NewClassifierOracle builds the oracle around a trained classifier.
func NewClassifierOracle(c ml.Classifier, f *PairFeaturizer) *ClassifierOracle {
	return &ClassifierOracle{Classifier: c, Featurizer: f, Threshold: 0.5,
		cache: map[[2]string]rules.MatchKind{}}
}

// Oracle returns the EdgeOracle function.
func (o *ClassifierOracle) Oracle() EdgeOracle {
	return func(a, b *rules.Rule) rules.MatchKind {
		key := [2]string{a.ID, b.ID}
		if k, ok := o.cache[key]; ok {
			return k
		}
		k := rules.NoMatch
		if o.Classifier.Score(o.Featurizer.Features(a, b)) >= o.Threshold {
			// The classifier sees text only, so it cannot tell direct from
			// environmental correlation; report the direct kind unless the
			// ground-truth semantics identify an environmental path (used
			// for edge-kind bookkeeping, not for the existence decision).
			k = rules.DirectMatch
			if gt := rules.RuleCanTrigger(a, b); gt == rules.EnvMatch {
				k = rules.EnvMatch
			}
		}
		o.cache[key] = k
		return k
	}
}

// TrainCorrelationClassifier fits the paper's default correlation model (a
// random forest, the best average performer in Fig. 3) on pairs sampled
// from the pool and returns a ready oracle.
func TrainCorrelationClassifier(f *PairFeaturizer, pool []*rules.Rule,
	nPos, nNeg int, seed int64) *ClassifierOracle {
	ds := BuildPairDataset(f, pool, nPos, nNeg, seed)
	clf := ml.NewRandomForest(40, 10, seed+1)
	clf.Fit(ds.X, ds.Y)
	return NewClassifierOracle(clf, f)
}

// EdgeAgreement measures how closely a predicted oracle reproduces the
// ground-truth edges over sampled rule pairs: precision and recall of the
// predicted correlations.
func EdgeAgreement(o EdgeOracle, pool []*rules.Rule, samples int, seed int64) (precision, recall float64) {
	ix := NewPoolIndex(pool)
	r := rng.New(seed)
	tp, fp, fn := 0, 0, 0
	// Positive pairs through the index (ground truth correlated).
	for i := 0; i < samples; i++ {
		a := pool[r.Intn(len(pool))]
		partners := ix.Forward(a)
		if len(partners) == 0 {
			continue
		}
		b := partners[r.Intn(len(partners))]
		if o(a, b) != rules.NoMatch {
			tp++
		} else {
			fn++
		}
	}
	// Random pairs (overwhelmingly negative).
	for i := 0; i < samples; i++ {
		a := pool[r.Intn(len(pool))]
		b := pool[r.Intn(len(pool))]
		if a == b || rules.RuleCanTrigger(a, b) != rules.NoMatch {
			continue
		}
		if o(a, b) != rules.NoMatch {
			fp++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return
}
