// Package chaos is the unified fault-injection subsystem of FexIoT: every
// deliberately broken thing the resilience tests throw at the runtime is
// built here, seeded and deterministic, so a failing soak run replays
// exactly.
//
// Three injection surfaces, one per layer the runtime touches:
//
//   - Conn wraps a net.Conn with scriptable link faults — read/write delay,
//     silent write blackholes, and hard mid-stream kills (the generalised
//     descendant of fedproto's original FaultConn).
//   - FS implements the checkpoint filesystem seam with scripted
//     write/sync/rename failures, modelling a full disk or a flaky volume
//     that heals after a few attempts.
//   - PanicOnCall builds hooks that panic on an exact invocation, driving
//     the serve engine's worker-recovery path and the supervisor's restart
//     circuit.
//
// Plan ties them together: a splitmix64-seeded decision stream for soak
// harnesses that need "random" kill times, victim picks and fault budgets
// without ever consulting the real clock or global rng — the same seed
// always produces the same federation-killing schedule.
package chaos

import (
	"fmt"
	"sync"
	"time"
)

// splitmix64 is the SplitMix64 finalizer: a full-avalanche bijection on
// 64-bit state, so consecutive outputs are statistically independent.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Plan is a seeded, deterministic fault-decision stream. All methods are
// safe for concurrent use; concurrency does not perturb the per-call
// determinism of a single-goroutine consumer, which is how soak harnesses
// should draw their schedules.
type Plan struct {
	mu    sync.Mutex
	state uint64
}

// NewPlan seeds a fault plan. Equal seeds yield identical decision streams.
func NewPlan(seed int64) *Plan {
	return &Plan{state: splitmix64(uint64(seed))}
}

func (p *Plan) next() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state += 0x9e3779b97f4a7c15
	return splitmix64(p.state)
}

// Intn draws a uniform int in [0, n). n must be positive.
func (p *Plan) Intn(n int) int {
	if n <= 0 {
		panic("chaos: Intn on non-positive n")
	}
	return int(p.next() % uint64(n))
}

// Float64 draws a uniform float64 in [0, 1).
func (p *Plan) Float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// Coin reports true with probability prob.
func (p *Plan) Coin(prob float64) bool { return p.Float64() < prob }

// Duration draws a uniform duration in [min, max).
func (p *Plan) Duration(min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	return min + time.Duration(p.next()%uint64(max-min))
}

// PanicOnCall returns a hook that panics with msg on exactly the nth
// invocation (1-based) and is a no-op on every other call — a scheduled
// crash for exercising panic-recovery paths. The hook is safe for
// concurrent use and panics at most once.
func PanicOnCall(n int, msg string) func() {
	var mu sync.Mutex
	calls := 0
	return func() {
		mu.Lock()
		calls++
		fire := calls == n
		mu.Unlock()
		if fire {
			panic(fmt.Sprintf("chaos: scheduled panic (call %d): %s", n, msg))
		}
	}
}
