# FexIoT build/test/benchmark entry points. `make check` is the CI gate:
# build, vet, tests and the race detector must all pass.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test test-debugarena race race-fedproto race-fed \
	race-serve race-supervise race-stream soak vet bench bench-matmul \
	bench-agg bench-codecs bench-json bench-json-smoke poison-smoke \
	obs-smoke serve-smoke stream-smoke fuzz check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The arena's NaN-poison mode: released buffers are filled with NaN, so any
# use-after-recycle in the tape/workspace layers fails loudly. Runs the
# allocation-hot packages with the debugarena build tag, never from cache.
test-debugarena:
	$(GO) test -tags=debugarena -count=1 ./internal/mat/ \
		./internal/autodiff/ ./internal/gnn/ ./internal/nn/

# The full suite under the race detector. The evaluation package alone
# (pinned F1 sweeps under ~15x race instrumentation) legitimately needs
# most of go test's default 600s per-package budget on single-core CI
# hosts, so the timeout is raised explicitly — a hang still fails, just
# later.
race:
	$(GO) test -race -timeout 1800s ./...

# The federation protocol's concurrency paths (quorum rounds, eviction,
# rejoin, fault injection, crash/restart recovery) under the race detector,
# never from cache.
race-fedproto:
	$(GO) test -race -count=1 ./internal/fedproto/...

# The robust-aggregation and Byzantine-attack paths under the race detector.
race-fed:
	$(GO) test -race -count=1 ./internal/fed/...

# The snapshot-isolated serving engine (swap-mid-storm, batching, HTTP)
# plus the facade's detect-while-training race regression, never from
# cache.
race-serve:
	$(GO) test -race -count=1 ./internal/serve/...
	$(GO) test -race -count=1 -run 'TestConcurrentDetectWhileTraining|TestServeEndToEnd' .

# The self-healing runtime under the race detector, never from cache: the
# supervisor's restart/circuit paths, the chaos primitives, and the serve
# engine's Close-vs-submit and shed races.
race-supervise:
	$(GO) test -race -count=1 ./internal/supervise/... ./internal/chaos/...
	$(GO) test -race -count=1 \
		-run 'TestCloseSubmitRace|TestOverloadShedsFast|TestWorkerPanicRecoveredAndRestarted' \
		./internal/serve/

# The streaming session subsystem under the race detector, never from
# cache: the manager's concurrent ingest/verdict/evict paths plus the
# full-stack stream e2e (bit-identity vs batch, republish tracking, idle
# eviction).
race-stream:
	$(GO) test -race -count=1 ./internal/stream/...
	$(GO) test -race -count=1 -run 'TestStream' .

# The cross-layer chaos soak: a seeded plan kills a client link, hard-stops
# and restarts the checkpointing federation server over a corrupted latest
# snapshot, and crashes a supervised republisher — everything must recover.
soak:
	$(GO) test -count=1 -run TestSoak -timeout 300s ./internal/chaos/

vet:
	$(GO) vet ./...

# The full evaluation as benches (one run per table/figure at CI scale).
bench:
	$(GO) test -bench=. -benchmem

# Dense kernel serial-vs-parallel comparison (FEXIOT_PROCS to pin workers).
bench-matmul:
	$(GO) test -run XXX -bench 'MatMul(Serial|Parallel)' .

# Aggregation-rule throughput: FedAvg vs trimmed/median/norm-clip/Krum.
bench-agg:
	$(GO) test -run XXX -bench 'Aggregators' .

# Update-codec encode/decode throughput and wire-byte footprint (raw64 vs
# f32/q8/topk), plus the ≥4x q8 compression pin as a hard test. Fast: a
# bounded benchtime keeps this inside the `make check` budget.
bench-codecs:
	$(GO) test -count=1 -run 'TestQ8BeatsRaw64ByFourX' \
		-bench Codecs -benchtime 100x ./internal/fedproto/codec/

# Allocation/throughput baseline snapshot: runs the pinned benchmarks with
# -benchmem and writes BENCH_<date>.json (name, ns/op, B/op, allocs/op plus
# extra ReportMetric columns) for committing/diffing against past baselines.
bench-json:
	sh scripts/bench-baseline.sh

# Harness smoke for `make check`: tiny benchtime, throwaway output file —
# proves the bench-to-JSON pipeline still runs and parses.
bench-json-smoke:
	BENCH_SMOKE=1 sh scripts/bench-baseline.sh

# The pinned poisoning acceptance scenario, never from cache: 8 clients,
# 2 Byzantine, robust aggregators must hold F1 while FedAvg degrades.
poison-smoke:
	$(GO) test -count=1 -run TestPoisonRobustnessPinned ./internal/experiments/

# End-to-end observability smoke: a real two-client federation with
# fexserver -http, then curl /metrics and /statusz and fail on anything
# missing or empty.
obs-smoke:
	sh scripts/obs-smoke.sh

# End-to-end serving smoke: fexserve with a background republish cadence,
# a concurrent curl storm on /v1/detect across live snapshot swaps, zero
# non-2xx tolerated and the serve metrics must be live.
serve-smoke:
	sh scripts/serve-smoke.sh

# End-to-end streaming smoke: a real fexserve, one session fed the
# attack-injected NDJSON sample, rolling verdict tracked across ≥2
# republishes, structured error envelope and stream metrics asserted.
stream-smoke:
	sh scripts/stream-smoke.sh

# Wire-protocol fuzzers (gob decode must error, never panic). FUZZTIME
# bounds each target; raise it for long local runs.
fuzz:
	$(GO) test -fuzz FuzzDecodeUpdate -fuzztime $(FUZZTIME) ./internal/fedproto/
	$(GO) test -fuzz FuzzDecodeHello -fuzztime $(FUZZTIME) ./internal/fedproto/

check: build vet test test-debugarena race race-fedproto race-fed \
	race-serve race-supervise race-stream soak poison-smoke bench-codecs \
	bench-json-smoke obs-smoke serve-smoke stream-smoke
