package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGolden pins the full text-format rendering: HELP/TYPE
// lines, family name ordering, series label ordering, label value
// escaping, and cumulative histogram buckets with _sum/_count. Any change
// to the exposition format shows up as a diff against this golden string.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "registered first, renders last").Add(7)
	r.Gauge("aa_temp", "renders first despite late registration").Set(-1.5)
	cv := r.CounterVec("fexiot_requests_total", `quoted "help" stays verbatim`, "path", "verdict")
	cv.With(`weird\path`, "ok").Add(3)
	cv.With("a\nb", `has"quote`).Inc()
	cv.With("plain", "ok").Add(2)
	h := r.Histogram("fexiot_round_duration_seconds", "round latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(42)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_temp renders first despite late registration
# TYPE aa_temp gauge
aa_temp -1.5
# HELP fexiot_requests_total quoted "help" stays verbatim
# TYPE fexiot_requests_total counter
fexiot_requests_total{path="a\nb",verdict="has\"quote"} 1
fexiot_requests_total{path="plain",verdict="ok"} 2
fexiot_requests_total{path="weird\\path",verdict="ok"} 3
# HELP fexiot_round_duration_seconds round latency
# TYPE fexiot_round_duration_seconds histogram
fexiot_round_duration_seconds_bucket{le="0.1"} 1
fexiot_round_duration_seconds_bucket{le="1"} 3
fexiot_round_duration_seconds_bucket{le="10"} 3
fexiot_round_duration_seconds_bucket{le="+Inf"} 4
fexiot_round_duration_seconds_sum 43.05
fexiot_round_duration_seconds_count 4
# HELP zz_last_total registered first, renders last
# TYPE zz_last_total counter
zz_last_total 7
`
	if got := b.String(); got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestNilRegistryIsNoOp exercises the disabled fast path: every handle off
// a nil registry must be callable and render nothing.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	c.Inc()
	c.Add(5)
	g := r.Gauge("g", "")
	g.Set(1)
	g.Add(2)
	h := r.Histogram("h", "", nil)
	h.Observe(3)
	r.CounterVec("cv", "", "l").With("x").Inc()
	r.GaugeVec("gv", "", "l").With("x").Set(1)
	r.HistogramVec("hv", "", nil, "l").With("x").Observe(1)
	sp := StartSpan(h)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.String() != "" {
		t.Fatalf("nil registry rendered %q, err %v", b.String(), err)
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 0 {
		t.Fatalf("nil registry snapshot has metrics: %v", snap.Metrics)
	}
}

// TestIdempotentRegistration: the same name returns the same handle, and
// concurrent registration+update is race-free.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x_total", "a") != r.Counter("x_total", "a") {
		t.Fatal("re-registration must return the same counter")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("x_total", "a").Inc()
				r.CounterVec("y_total", "b", "l").With("v").Inc()
				r.Histogram("z_seconds", "c", nil).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("x_total", "a").Value(); got != 8000 {
		t.Fatalf("x_total = %d, want 8000", got)
	}
	if got := r.Histogram("z_seconds", "c", nil).Count(); got != 8000 {
		t.Fatalf("z_seconds count = %d, want 8000", got)
	}
}

// TestKindMismatchPanics: re-registering a name as a different type is a
// programming error, loudly.
func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "")
	r.Gauge("m", "")
}

// TestHistogramBuckets pins the boundary semantics: a value equal to an
// upper bound lands in that bucket (le is inclusive).
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	cum := h.snapshot()
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 {
		t.Fatalf("cumulative buckets %v, want [1 2 3]", cum)
	}
	if h.Sum() != 6 || h.Count() != 3 {
		t.Fatalf("sum=%v count=%v", h.Sum(), h.Count())
	}
}

// TestSpan measures a real sleep into the histogram.
func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", "", nil)
	sp := StartSpan(h)
	time.Sleep(5 * time.Millisecond)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span not observed: count %d", h.Count())
	}
	if h.Sum() < 0.004 {
		t.Fatalf("span duration %v implausibly small", h.Sum())
	}
}

// TestHTTPEndpoints boots the real server on a loopback port and checks all
// three endpoint families.
func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "test counter").Add(12)
	srv, err := StartHTTP("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	if m := get("/metrics"); !strings.Contains(m, "hits_total 12") {
		t.Fatalf("/metrics missing counter:\n%s", m)
	}
	var snap StatusSnapshot
	if err := json.Unmarshal([]byte(get("/statusz")), &snap); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if len(snap.Metrics["hits_total"]) != 1 || snap.Metrics["hits_total"][0].Value != 12 {
		t.Fatalf("/statusz metric wrong: %+v", snap.Metrics)
	}
	if snap.NumGoroutine <= 0 || snap.GoVersion == "" {
		t.Fatalf("/statusz vitals missing: %+v", snap)
	}
	if p := get("/debug/pprof/cmdline"); len(p) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
