// Repository benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation, plus the ablation benches of DESIGN.md
// §4 and micro-benchmarks of the pipeline stages. Each experiment bench
// executes the corresponding driver once per iteration (the default 1 s
// benchtime yields exactly one run) and prints the regenerated rows on the
// first iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation at CI scale; FEXIOT_SCALE=paper scales the
// datasets to Table I's exact counts.
package fexiot_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"fexiot"
	"fexiot/internal/experiments"
	"fexiot/internal/fed"
	"fexiot/internal/mat"
)

var printOnce sync.Map

// runExperiment executes one registered experiment per b.N iteration and
// prints its output the first time.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	setup := experiments.DefaultSetup()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(id, setup)
		if err != nil {
			b.Fatal(err)
		}
		if _, dup := printOnce.LoadOrStore(id, true); !dup {
			fmt.Println(out)
		}
	}
}

// --- One benchmark per table / figure ------------------------------------

// BenchmarkTableI regenerates the dataset statistics of Table I.
func BenchmarkTableI(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig3 regenerates the correlation-classifier comparison (Fig. 3).
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4 regenerates the federated comparison sweep (Fig. 4).
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5 regenerates the scalability box plots (Fig. 5).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the clustering/drift analysis (Fig. 6).
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTableII regenerates the testbed system comparison (Table II).
func BenchmarkTableII(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig7 regenerates the communication-cost comparison (Fig. 7).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates the qualitative explanation examples (Fig. 8).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates the fidelity/sparsity comparison (Fig. 9).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkTableIII regenerates the runtime-efficiency table (Table III).
func BenchmarkTableIII(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkChaos runs the fault-injection federation demo: a loopback
// quorum federation that survives a hard-killed client (DESIGN.md §4.6).
func BenchmarkChaos(b *testing.B) { runExperiment(b, "chaos") }

// BenchmarkPoison runs the Byzantine-robustness sweep: 8 clients, 2
// attackers, detector F1 per attack × aggregator (DESIGN.md §4.7).
func BenchmarkPoison(b *testing.B) { runExperiment(b, "poison") }

// --- Ablation benches (DESIGN.md §4) --------------------------------------

// BenchmarkAblationLayerwise contrasts layer-wise vs whole-model clustering.
func BenchmarkAblationLayerwise(b *testing.B) { runExperiment(b, "ablation-layerwise") }

// BenchmarkAblationContrastive contrasts Eq. (2) vs supervised CE.
func BenchmarkAblationContrastive(b *testing.B) { runExperiment(b, "ablation-contrastive") }

// BenchmarkAblationBeam sweeps the MCBS beam width.
func BenchmarkAblationBeam(b *testing.B) { runExperiment(b, "ablation-beam") }

// BenchmarkAblationMAD sweeps the drift threshold T_M.
func BenchmarkAblationMAD(b *testing.B) { runExperiment(b, "ablation-mad") }

// --- Dense kernel benches (internal/mat parallel layer) --------------------

// matMulSizes are the square problem sizes benchmarked serial vs parallel.
var matMulSizes = []int{64, 256, 512, 1024}

// benchMatMul times n×n·n×n MulTo at a fixed parallelism and reports
// effective GFLOP/s.
func benchMatMul(b *testing.B, n, procs int) {
	old := mat.Parallelism()
	mat.SetParallelism(procs)
	defer mat.SetParallelism(old)
	x, y, dst := mat.NewDense(n, n), mat.NewDense(n, n), mat.NewDense(n, n)
	for i := range x.Data() {
		x.Data()[i] = math.Sin(float64(i) * 0.13)
		y.Data()[i] = math.Cos(float64(i) * 0.07)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulTo(dst, x, y)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkMatMulSerial pins the kernel to one worker — the baseline the
// ≥2× parallel speedup target in ISSUE.md is measured against.
func BenchmarkMatMulSerial(b *testing.B) {
	for _, n := range matMulSizes {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) { benchMatMul(b, n, 1) })
	}
}

// BenchmarkMatMulParallel runs the same products at the configured
// parallelism (FEXIOT_PROCS or all cores).
func BenchmarkMatMulParallel(b *testing.B) {
	for _, n := range matMulSizes {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) { benchMatMul(b, n, mat.Parallelism()) })
	}
}

// --- Robust aggregation benches (internal/fed) -----------------------------

// benchAggregator times one rule over a 16-client federation with a 64k-
// coordinate layer and reports aggregated coordinates per second — the
// GFLOP-style throughput number that makes the robustness tax comparable
// across rules (sorting for trimmed/median, O(n²) distances for Krum).
func benchAggregator(b *testing.B, agg fed.Aggregator) {
	const nClients, dim = 16, 1 << 16
	vecs := make([][]float64, nClients)
	w := make([]float64, nClients)
	for i := range vecs {
		w[i] = 1 / float64(nClients)
		vecs[i] = make([]float64, dim)
		for j := range vecs[i] {
			vecs[i][j] = math.Sin(float64(i*dim+j) * 0.37)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Aggregate(vecs, w)
	}
	coords := float64(nClients) * float64(dim)
	b.ReportMetric(coords*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gcoord/s")
}

// BenchmarkAggregators compares the aggregation rules' throughput: FedAvg's
// weighted mean vs the robust alternatives.
func BenchmarkAggregators(b *testing.B) {
	for _, agg := range []fed.Aggregator{
		fed.MeanAgg{}, fed.TrimmedMeanAgg{}, fed.MedianAgg{},
		fed.NormClipAgg{}, fed.KrumAgg{M: 1}, fed.KrumAgg{},
	} {
		b.Run(agg.Name(), func(b *testing.B) { benchAggregator(b, agg) })
	}
}

// --- Micro-benchmarks of the pipeline stages -------------------------------

// pipelineFixture builds a small trained system shared by the micro-benches.
type pipelineFixture struct {
	sys   *fexiot.System
	train []*fexiot.Graph
	probe *fexiot.Graph
}

var (
	fixtureOnce sync.Once
	fixture     pipelineFixture
)

func getFixture(b *testing.B) *pipelineFixture {
	b.Helper()
	fixtureOnce.Do(func() {
		opts := fexiot.DefaultOptions()
		opts.Seed = 7
		sys, err := fexiot.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		var train []*fexiot.Graph
		for home := 0; home < 20; home++ {
			arch := fexiot.ArchetypeNames()[home%len(fexiot.ArchetypeNames())]
			deployed := fexiot.GenerateHome(arch, 25, int64(home+1))
			for i := 0; i < 6; i++ {
				train = append(train, sys.BuildGraph(deployed))
			}
		}
		sys.TrainCentral(train, 6, 200)
		probe := train[0]
		for _, g := range train {
			if g.Label && g.N() >= 8 {
				probe = g
				break
			}
		}
		fixture = pipelineFixture{sys: sys, train: train, probe: probe}
	})
	return &fixture
}

// BenchmarkGraphConstruction measures offline interaction-graph building.
func BenchmarkGraphConstruction(b *testing.B) {
	f := getFixture(b)
	deployed := fexiot.GenerateHome("safety", 25, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.sys.BuildGraph(deployed)
	}
}

// BenchmarkDetect measures one vulnerability prediction (GNN embed + head).
func BenchmarkDetect(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.sys.Detect(f.probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplain measures one SHAP-guided MCBS explanation.
func BenchmarkExplain(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.sys.Explain(f.probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateAndClean measures event-log simulation plus cleaning.
func BenchmarkSimulateAndClean(b *testing.B) {
	deployed := fexiot.GenerateHome("safety", 14, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fexiot.CleanLog(fexiot.SimulateHome(deployed, 1000, int64(i)))
	}
}

// BenchmarkOnlineFusion measures log-to-online-graph fusion.
func BenchmarkOnlineFusion(b *testing.B) {
	f := getFixture(b)
	deployed := fexiot.GenerateHome("safety", 14, 5)
	log := fexiot.CleanLog(fexiot.SimulateHome(deployed, 2000, 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.sys.BuildOnlineGraph(deployed, log)
	}
}
