package ml

import (
	"math"
	"sort"

	"fexiot/internal/rng"
)

// treeNode is one node of a CART decision tree.
type treeNode struct {
	feature  int
	thresh   float64
	left     *treeNode
	right    *treeNode
	leafProb float64 // positive-class probability at a leaf
	isLeaf   bool
}

// DecisionTree is a CART binary classification tree with Gini impurity.
type DecisionTree struct {
	MaxDepth    int
	MinSamples  int
	MaxFeatures int // 0 = all features; forests pass sqrt(d)
	Seed        int64

	root *treeNode
}

// NewDecisionTree creates a tree with the given depth bound.
func NewDecisionTree(maxDepth int) *DecisionTree {
	return &DecisionTree{MaxDepth: maxDepth, MinSamples: 2}
}

// Fit grows the tree on the dataset.
func (t *DecisionTree) Fit(x [][]float64, y []int) {
	t.FitWeighted(x, y, nil)
}

// FitWeighted grows the tree honouring optional per-sample weights (used by
// boosting-style callers and bootstrap training).
func (t *DecisionTree) FitWeighted(x [][]float64, y []int, w []float64) {
	if len(x) == 0 {
		t.root = &treeNode{isLeaf: true, leafProb: 0.5}
		return
	}
	if w == nil {
		w = make([]float64, len(x))
		for i := range w {
			w[i] = 1
		}
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	r := rng.New(t.Seed + 1)
	t.root = t.grow(x, y, w, idx, 0, r)
}

func weightedPosProb(y []int, w []float64, idx []int) float64 {
	var pos, total float64
	for _, i := range idx {
		total += w[i]
		if y[i] == 1 {
			pos += w[i]
		}
	}
	if total == 0 {
		return 0.5
	}
	return pos / total
}

func gini(p float64) float64 { return 2 * p * (1 - p) }

func (t *DecisionTree) grow(x [][]float64, y []int, w []float64, idx []int, depth int, r *rng.RNG) *treeNode {
	p := weightedPosProb(y, w, idx)
	if depth >= t.MaxDepth || len(idx) < t.MinSamples || p == 0 || p == 1 {
		return &treeNode{isLeaf: true, leafProb: p}
	}
	d := len(x[0])
	features := make([]int, d)
	for i := range features {
		features[i] = i
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < d {
		r.Shuffle(d, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.MaxFeatures]
	}

	bestGain := -1.0
	bestFeat := -1
	bestThresh := 0.0
	parentImp := gini(p)
	var totalW float64
	for _, i := range idx {
		totalW += w[i]
	}

	type pair struct {
		v float64
		i int
	}
	vals := make([]pair, len(idx))
	for _, f := range features {
		for k, i := range idx {
			vals[k] = pair{v: x[i][f], i: i}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		// Sweep split points between distinct values.
		var leftW, leftPos float64
		var rightW, rightPos float64
		for _, pr := range vals {
			rightW += w[pr.i]
			if y[pr.i] == 1 {
				rightPos += w[pr.i]
			}
		}
		for k := 0; k+1 < len(vals); k++ {
			i := vals[k].i
			leftW += w[i]
			rightW -= w[i]
			if y[i] == 1 {
				leftPos += w[i]
				rightPos -= w[i]
			}
			if vals[k].v == vals[k+1].v {
				continue
			}
			if leftW == 0 || rightW == 0 {
				continue
			}
			pl := leftPos / leftW
			prr := rightPos / rightW
			imp := (leftW*gini(pl) + rightW*gini(prr)) / totalW
			gain := parentImp - imp
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	if bestFeat < 0 || bestGain <= 1e-12 {
		return &treeNode{isLeaf: true, leafProb: p}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &treeNode{isLeaf: true, leafProb: p}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    t.grow(x, y, w, leftIdx, depth+1, r),
		right:   t.grow(x, y, w, rightIdx, depth+1, r),
	}
}

// Score returns the positive-class probability at the reached leaf.
func (t *DecisionTree) Score(q []float64) float64 {
	n := t.root
	if n == nil {
		return 0.5
	}
	for !n.isLeaf {
		if q[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafProb
}

// Predict thresholds Score at 0.5.
func (t *DecisionTree) Predict(q []float64) int {
	if t.Score(q) >= 0.5 {
		return 1
	}
	return 0
}

// Depth returns the tree depth (0 for a lone leaf).
func (t *DecisionTree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.isLeaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		return 1 + int(math.Max(float64(l), float64(r)))
	}
	return walk(t.root)
}
