// Package baselines implements the three comparison systems of Table II:
// HAWatcher (correlation-template mining over event logs), DeepLog (an LSTM
// language model over event-type sequences) and an IsolationForest over
// device-status vectors. All three consume event logs; FexIoT itself
// consumes the fused online interaction graphs.
package baselines

import (
	"math"

	"fexiot/internal/eventlog"
	"fexiot/internal/mat"
	"fexiot/internal/ml"
	"fexiot/internal/nn"
)

// LogDetector scores an event log for anomaly; higher is more anomalous.
type LogDetector interface {
	Name() string
	Train(benign []eventlog.Log)
	Score(log eventlog.Log) float64
	// Predict applies the detector's calibrated threshold.
	Predict(log eventlog.Log) int
}

// calibrate sets a decision threshold at the q-quantile of the benign
// training scores (scores above it are flagged).
func calibrate(d interface{ Score(eventlog.Log) float64 }, benign []eventlog.Log, q float64) float64 {
	scores := make([]float64, len(benign))
	for i, l := range benign {
		scores[i] = d.Score(l)
	}
	if len(scores) == 0 {
		return 0.5
	}
	return mat.Quantile(scores, q)
}

// --- HAWatcher ----------------------------------------------------------------

// HAWatcher mines binary correlation templates from benign logs: event type
// A is "correlated" with event type B when B follows A within the window
// with confidence above MinConfidence. At detection time a log is scored by
// its rate of correlation violations — expected consequents that never
// arrive — plus events of types never seen in training. This reproduces the
// semantics-aware anomaly detection of Fu et al. (USENIX Security 2021) at
// the granularity our logs support; as the paper notes, binary templates
// "can hardly cover long-term complex correlations".
type HAWatcher struct {
	Window        int64
	MinSupport    int
	MinConfidence float64

	vocab     *eventlog.EventTypes
	templates map[[2]int]bool // forward: antecedent → consequent
	// backTemplates[b] lists antecedent types that (almost) always precede
	// b in benign logs; an occurrence of b with none of them nearby is a
	// spoofed or out-of-order event.
	backTemplates map[int][]int
	threshold     float64
}

// NewHAWatcher builds the detector with the defaults used in Table II.
func NewHAWatcher() *HAWatcher {
	return &HAWatcher{Window: 60, MinSupport: 3, MinConfidence: 0.8}
}

// Name identifies the system.
func (h *HAWatcher) Name() string { return "HAWatcher" }

// Train mines templates from benign logs.
func (h *HAWatcher) Train(benign []eventlog.Log) {
	h.vocab = eventlog.NewEventTypes()
	countA := map[int]int{}
	countAB := map[[2]int]int{} // b follows a within the window
	countBA := map[[2]int]int{} // a precedes b within the window
	for _, log := range benign {
		ids := h.vocab.Sequence(log, true)
		for i, a := range ids {
			countA[a]++
			seen := map[int]bool{}
			for j := i + 1; j < len(ids); j++ {
				if log[j].Time-log[i].Time > h.Window {
					break
				}
				b := ids[j]
				if b != a && !seen[b] {
					seen[b] = true
					countAB[[2]int{a, b}]++
				}
			}
			seenBack := map[int]bool{}
			for j := i - 1; j >= 0; j-- {
				if log[i].Time-log[j].Time > h.Window {
					break
				}
				p := ids[j]
				if p != a && !seenBack[p] {
					seenBack[p] = true
					countBA[[2]int{a, p}]++
				}
			}
		}
	}
	h.templates = map[[2]int]bool{}
	for ab, n := range countAB {
		if n >= h.MinSupport &&
			float64(n)/float64(countA[ab[0]]) >= h.MinConfidence {
			h.templates[ab] = true
		}
	}
	h.backTemplates = map[int][]int{}
	for bp, n := range countBA {
		b, p := bp[0], bp[1]
		if n >= h.MinSupport &&
			float64(n)/float64(countA[b]) >= h.MinConfidence {
			h.backTemplates[b] = append(h.backTemplates[b], p)
		}
	}
	h.threshold = calibrate(h, benign, 0.9)
}

// Score counts correlation violations per event.
func (h *HAWatcher) Score(log eventlog.Log) float64 {
	if len(log) == 0 {
		return 0
	}
	ids := h.vocab.Sequence(log, false)
	// The score is the failure rate over template checks (not over raw log
	// length, which injected events would dilute).
	checks, fails := 0.0, 0.0
	for i, a := range ids {
		if a == h.vocab.Size() {
			checks++
			fails++ // unseen event type
			continue
		}
		// Forward: every template a→b must be honoured within the window.
		for ab := range h.templates {
			if ab[0] != a {
				continue
			}
			checks++
			found := false
			for j := i + 1; j < len(ids); j++ {
				if log[j].Time-log[i].Time > h.Window {
					break
				}
				if ids[j] == ab[1] {
					found = true
					break
				}
			}
			if !found {
				fails++
			}
		}
		// Backward: events that always had an antecedent in benign logs
		// must have one now — spoofed injections do not.
		if ants := h.backTemplates[a]; len(ants) > 0 {
			checks++
			found := false
			for j := i - 1; j >= 0 && !found; j-- {
				if log[i].Time-log[j].Time > h.Window {
					break
				}
				for _, p := range ants {
					if ids[j] == p {
						found = true
						break
					}
				}
			}
			if !found {
				fails++
			}
		}
	}
	if checks == 0 {
		return 0
	}
	return fails / checks
}

// Predict applies the calibrated threshold.
func (h *HAWatcher) Predict(log eventlog.Log) int {
	if h.Score(log) > h.threshold {
		return 1
	}
	return 0
}

// --- DeepLog --------------------------------------------------------------------

// DeepLog models benign logs as a language over event-type ids with an LSTM
// and flags transitions outside the model's top-K predictions (Du et al.,
// CCS 2017).
type DeepLog struct {
	Hidden int
	Window int
	Epochs int
	TopK   int

	vocab     *eventlog.EventTypes
	model     *nn.LSTM
	threshold float64
}

// NewDeepLog builds the detector with small-scale defaults.
func NewDeepLog() *DeepLog {
	return &DeepLog{Hidden: 24, Window: 4, Epochs: 3, TopK: 3}
}

// Name identifies the system.
func (d *DeepLog) Name() string { return "DeepLog" }

// Train fits the LSTM on benign sequences.
func (d *DeepLog) Train(benign []eventlog.Log) {
	d.vocab = eventlog.NewEventTypes()
	var seqs [][]int
	for _, log := range benign {
		seqs = append(seqs, d.vocab.Sequence(log, true))
	}
	// +1 for the unseen-type sentinel.
	d.model = nn.NewLSTM(d.vocab.Size()+1, d.Hidden, d.Window, d.Epochs, 0.01, 17)
	d.model.TopK = d.TopK
	d.model.Fit(seqs)
	d.threshold = calibrate(d, benign, 0.9)
}

// Score is the anomalous-transition rate.
func (d *DeepLog) Score(log eventlog.Log) float64 {
	seq := d.vocab.Sequence(log, false)
	return d.model.AnomalyRate(seq)
}

// Predict applies the calibrated threshold.
func (d *DeepLog) Predict(log eventlog.Log) int {
	if d.Score(log) > d.threshold {
		return 1
	}
	return 0
}

// --- IsolationForest ---------------------------------------------------------------

// IsoForest feeds device-status vectors into an isolation forest (Liu et
// al., ICDM 2008) — "the input is a data vector that includes device
// status" (Table II).
type IsoForest struct {
	forest    *ml.IsolationForest
	threshold float64
}

// NewIsoForest builds the detector.
func NewIsoForest() *IsoForest {
	return &IsoForest{forest: ml.NewIsolationForest(100, 64, 5)}
}

// Name identifies the system.
func (f *IsoForest) Name() string { return "IsolationForest" }

// Train fits the forest on benign status vectors.
func (f *IsoForest) Train(benign []eventlog.Log) {
	x := make([][]float64, len(benign))
	for i, l := range benign {
		x[i] = normalizeVec(eventlog.StatusVector(l))
	}
	f.forest.Fit(x, nil)
	f.threshold = calibrate(f, benign, 0.9)
}

// Score is the isolation-forest anomaly score of the log's status vector.
func (f *IsoForest) Score(log eventlog.Log) float64 {
	return f.forest.Score(normalizeVec(eventlog.StatusVector(log)))
}

// Predict applies the calibrated threshold.
func (f *IsoForest) Predict(log eventlog.Log) int {
	if f.Score(log) > f.threshold {
		return 1
	}
	return 0
}

// normalizeVec scales a count vector to unit L1 mass so log length does not
// dominate.
func normalizeVec(v []float64) []float64 {
	var sum float64
	for _, x := range v {
		sum += math.Abs(x)
	}
	if sum == 0 {
		return v
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / sum
	}
	return out
}
