// Explain-vuln: reproduce the paper's introductory scenario — the
// SmartThings smoke/water-valve conflict — and let the SHAP-guided Monte
// Carlo beam search pinpoint exactly the rules that compose the vulnerable
// interaction (the Fig. 8 style qualitative walk-through).
package main

import (
	"fmt"
	"log"

	"fexiot"
	"fexiot/internal/rules"
)

// scenario hand-builds the intro example: R1 "if smoke is detected, turn on
// the water valve and sound the alarm" plus R2 "close the water valve when
// a water leak is detected", surrounded by unrelated background rules.
func scenario() []*fexiot.Rule {
	mk := func(id string, p rules.Platform, trig rules.Condition, acts ...rules.Effect) *fexiot.Rule {
		r := &rules.Rule{ID: id, Platform: p, Trigger: trig, Actions: acts}
		r.Description = rules.Describe(p, trig, acts)
		return r
	}
	eff := func(dev, room, state string) rules.Effect {
		d := rules.CatalogByName()[dev]
		for _, c := range d.Commands {
			if c.State == state {
				return rules.Effect{Device: dev, Room: room, Verb: c.Verb,
					Channel: c.Channel, State: c.State, Env: c.Env,
					Sensitive: c.Sensitive}
			}
		}
		panic("no command " + dev + "/" + state)
	}
	kitchen := "kitchen"
	r1 := mk("R1", rules.SmartThings,
		rules.Condition{Device: "smoke detector", Room: kitchen,
			Channel: rules.ChanSmoke, State: "detected"},
		eff("water valve", kitchen, "on"),
		eff("alarm", kitchen, "on"))
	r2 := mk("R2", rules.SmartThings,
		rules.Condition{Device: "leak sensor", Room: kitchen,
			Channel: rules.ChanLeak, State: "wet"},
		eff("water valve", kitchen, "off"))
	// Background rules that are benign.
	r3 := mk("R3", rules.IFTTT,
		rules.Condition{Device: "motion sensor", Room: "hallway",
			Channel: rules.ChanMotion, State: "detected"},
		eff("light", "hallway", "on"))
	r4 := mk("R4", rules.HomeAssistant,
		rules.Condition{Device: "light", Room: "hallway",
			Channel: rules.ChanPower, State: "on"},
		eff("camera", "hallway", "on"))
	r5 := mk("R5", rules.IFTTT,
		rules.Condition{Device: "presence sensor", Room: "",
			Channel: rules.ChanPresence, State: "away"},
		eff("phone", "hallway", "notified"))
	return []*fexiot.Rule{r1, r2, r3, r4, r5}
}

func main() {
	opts := fexiot.DefaultOptions()
	opts.Seed, opts.Model = 5, "GCN"
	sys, err := fexiot.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training detector…")
	var training []*fexiot.Graph
	for home := 0; home < 40; home++ {
		arch := fexiot.ArchetypeNames()[home%len(fexiot.ArchetypeNames())]
		deployed := fexiot.GenerateHome(arch, 25, int64(home+61))
		for i := 0; i < 8; i++ {
			training = append(training, sys.BuildGraph(deployed))
		}
	}
	sys.TrainCentral(training, 10, 300)

	deployed := scenario()
	fmt.Println("\nthe deployed rules (paper §I example):")
	for _, r := range deployed {
		fmt.Printf("  %s: %s\n", r.ID, r.Description)
	}

	g := sys.BuildGraph(deployed)
	fmt.Printf("\ninteraction graph: %d nodes, %d edges; ground truth tags: %v\n",
		g.N(), len(g.Edges), g.Tags)

	v, err := sys.Detect(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector verdict: vulnerable=%v score=%.3f\n", v.Vulnerable, v.Score)

	ex, err := sys.Explain(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexplanation (risk %.3f, fidelity %.2f, sparsity %.2f):\n",
		ex.Score, ex.Fidelity, ex.Sparsity)
	for _, r := range ex.Rules {
		if r != nil {
			fmt.Printf("  → %s: %s\n", r.ID, r.Description)
		}
	}
	fmt.Println("\nexpected: the explanation isolates R1/R2 — the water valve is" +
		" turned on by the smoke response and immediately closed by the leak" +
		" rule, so \"the water valve fails to turn on when smoke is detected\".")
}
