// Command fexserve runs the snapshot-isolated inference server: it trains
// a compact detection system on synthetic homes, then serves POST
// /v1/detect and /v1/explain (JSON bodies of deployed rules plus an
// optional event log), GET /v1/status and the stateful streaming session
// endpoints under /v1/streams (create with a rule set, feed NDJSON event
// batches, read a rolling verdict) beside the observability routes
// (/metrics, /statusz, /debug/pprof/) and the health probes (/healthz,
// /readyz) on one address. Every /v1 error is a structured envelope
// {"error":{"code":...,"message":...}}.
//
// -republish retrains in the background on that cadence and atomically
// publishes each new model to the running server — the smoke test drives
// a concurrent request storm through exactly this window to prove a swap
// never drops or tears a request. The republisher runs supervised: a
// panic restarts it with backoff, and an exhausted restart budget flips
// /healthz to 503. A full request queue fast-fails with 429 +
// Retry-After; -max-body bounds request bodies (413 beyond it) and
// -max-snapshot-age makes /readyz report 503 once the live snapshot goes
// stale. SIGINT/SIGTERM shut the server down gracefully.
//
// Usage:
//
//	fexserve -addr :8080 -homes 10 -rules 22 -seed 7 \
//	    -workers 4 -batch 8 -republish 2s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fexiot"
	"fexiot/internal/eventlog"
	"fexiot/internal/obs"
	"fexiot/internal/supervise"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address (\":0\" picks a free port)")
	homes := flag.Int("homes", 10, "synthetic training homes")
	rulesPerHome := flag.Int("rules", 22, "rules per training home")
	graphsPerHome := flag.Int("graphs", 4, "graphs sampled per home")
	rounds := flag.Int("rounds", 3, "contrastive training rounds")
	pairs := flag.Int("pairs", 80, "contrastive pairs per round")
	seed := flag.Int64("seed", 7, "deterministic seed")
	procs := flag.Int("procs", 0, "kernel parallelism bound (0 = FEXIOT_PROCS or all cores)")
	workers := flag.Int("workers", 0, "inference workers (0 = kernel parallelism)")
	queue := flag.Int("queue", 0, "request queue depth (0 = 4 × workers)")
	batch := flag.Int("batch", 0, "micro-batch size (≤1 disables batching)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch fill window (0 = 2ms)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = 1 MiB)")
	maxSnapAge := flag.Duration("max-snapshot-age", 0,
		"/readyz fails once the live snapshot is older than this (0 = any snapshot)")
	republish := flag.Duration("republish", 0,
		"retrain and publish a fresh snapshot on this cadence (0 disables)")
	sample := flag.String("sample", "",
		"write a sample /v1/detect request body (JSON) to this file at startup")
	maxSessions := flag.Int("max-sessions", 0, "concurrent streaming sessions (0 = 256)")
	windowEvents := flag.Int("window-events", 0, "streaming window size in events (0 = 4096)")
	windowAge := flag.Int64("window-age", 0, "streaming window age in simulated seconds (0 = 3600)")
	idleTimeout := flag.Duration("idle-timeout", 0, "evict streaming sessions idle this long (0 = 10m)")
	streamSample := flag.String("stream-sample", "",
		"write a sample NDJSON event batch (attack-injected, cleaned) to this file at startup")
	flag.Parse()

	opts := fexiot.DefaultOptions()
	opts.Seed = *seed
	opts.WordDim, opts.SentenceDim = 24, 32
	opts.Hidden, opts.EmbedDim = 12, 8
	opts.Procs = *procs
	opts.Metrics = obs.NewRegistry()
	sys, err := fexiot.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	train := trainingGraphs(sys, *homes, *rulesPerHome, *graphsPerHome, *seed)
	fmt.Printf("training on %d graphs from %d homes...\n", len(train), *homes)
	sys.TrainCentral(train, *rounds, *pairs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := fexiot.Serve(ctx, sys, fexiot.ServeOptions{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchSize:      *batch,
		BatchWindow:    *batchWindow,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxSnapshotAge: *maxSnapAge,
		Streams: fexiot.StreamOptions{
			MaxSessions:     *maxSessions,
			MaxWindowEvents: *windowEvents,
			MaxWindowAge:    *windowAge,
			IdleTimeout:     *idleTimeout,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer srv.Close()

	if *sample != "" {
		// A ready-made request body so shell harnesses (serve-smoke) can
		// storm /v1/detect without generating rule JSON themselves.
		home := fexiot.GenerateHome(fexiot.ArchetypeNames()[0], 14, *seed+101)
		buf, err := json.Marshal(map[string]any{"rules": home})
		if err == nil {
			err = os.WriteFile(*sample, buf, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sample:", err)
			os.Exit(2)
		}
	}

	if *streamSample != "" {
		// An NDJSON event batch from the same home the -sample body deploys,
		// with fake commands injected, so the smoke test can open a stream
		// with the detect sample and feed it a vulnerable event window.
		home := fexiot.GenerateHome(fexiot.ArchetypeNames()[0], 14, *seed+101)
		raw := fexiot.SimulateHome(home, 1800, *seed+202)
		raw = eventlog.Inject(raw, eventlog.FakeCommands, home, 0.6, *seed+303)
		if err := writeNDJSON(*streamSample, fexiot.CleanLog(raw)); err != nil {
			fmt.Fprintln(os.Stderr, "stream-sample:", err)
			os.Exit(2)
		}
	}

	fmt.Printf("fexserve listening on http://%s\n", srv.Addr())

	if *republish > 0 {
		// The republisher runs supervised: a panicking retrain is restarted
		// with backoff instead of silently killing the cadence, and a
		// crash-looping one trips a circuit that fails /healthz (and, with
		// -max-snapshot-age, eventually /readyz as the snapshot staled).
		sup := supervise.New(supervise.Options{Metrics: opts.Metrics})
		srv.Health().AddLiveness("republisher", sup.Check)
		sup.Go(ctx, "republisher", func(ctx context.Context) error {
			t := time.NewTicker(*republish)
			defer t.Stop()
			for round := 1; ; round++ {
				select {
				case <-ctx.Done():
					return nil
				case <-t.C:
					// Each retrain ends in an atomic snapshot publish; the
					// server keeps answering on the old model until then.
					sys.TrainCentral(train, 1, *pairs)
					fmt.Printf("republished snapshot %d\n", round)
				}
			}
		})
	}

	<-ctx.Done()
	fmt.Println("shutting down")
}

// writeNDJSON writes one JSON event per line — the wire shape of
// POST /v1/streams/{id}/events.
func writeNDJSON(path string, log fexiot.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, e := range log {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// trainingGraphs samples labelled offline graphs across the built-in
// archetypes.
func trainingGraphs(sys *fexiot.System, homes, rulesPerHome, graphsPerHome int,
	seed int64) []*fexiot.Graph {
	archs := fexiot.ArchetypeNames()
	var train []*fexiot.Graph
	for h := 0; h < homes; h++ {
		deployed := fexiot.GenerateHome(archs[h%len(archs)], rulesPerHome,
			seed+int64(h+1))
		for i := 0; i < graphsPerHome; i++ {
			train = append(train, sys.BuildGraph(deployed))
		}
	}
	return train
}
