package vuln

import (
	"testing"

	"fexiot/internal/graph"
	"fexiot/internal/rules"
)

func mkRule(id string, trig rules.Condition, acts ...rules.Effect) *rules.Rule {
	return &rules.Rule{ID: id, Trigger: trig, Actions: acts,
		Description: id, Platform: rules.IFTTT}
}

func eff(dev string, ch rules.Channel, state string, env ...rules.EnvDelta) rules.Effect {
	return rules.Effect{Device: dev, Channel: ch, State: state, Env: env, Verb: "set"}
}

func cond(dev string, ch rules.Channel, state string) rules.Condition {
	return rules.Condition{Device: dev, Channel: ch, State: state}
}

// buildGraph wires nodes and adds ground-truth edges.
func buildGraph(rs ...*rules.Rule) *graph.Graph {
	g := &graph.Graph{}
	for _, r := range rs {
		g.AddNode(graph.Node{Rule: r, Feature: []float64{0}})
	}
	for i, a := range rs {
		for j, b := range rs {
			if i != j {
				if k := rules.RuleCanTrigger(a, b); k != rules.NoMatch {
					g.AddEdge(i, j, k)
				}
			}
		}
	}
	return g
}

func hasType(fs []Finding, t Type) bool {
	for _, f := range fs {
		if f.Type == t {
			return true
		}
	}
	return false
}

func TestDetectActionLoop(t *testing.T) {
	a := mkRule("a", cond("fan", rules.ChanPower, "running"),
		eff("humidifier", rules.ChanPower, "on"))
	b := mkRule("b", cond("humidifier", rules.ChanPower, "on"),
		eff("fan", rules.ChanPower, "running"))
	g := buildGraph(a, b)
	fs := Detect(g)
	if !hasType(fs, ActionLoop) {
		t.Fatalf("loop not detected: %v", fs)
	}
}

func TestDetectActionRevert(t *testing.T) {
	// w turns valve on; leak rule downstream turns it off.
	w := mkRule("w", cond("smoke detector", rules.ChanSmoke, "detected"),
		eff("water valve", rules.ChanWaterFlow, "on", rules.EnvDelta{Channel: rules.ChanLeak, Sign: 1}))
	a := mkRule("a", cond("leak sensor", rules.ChanLeak, "wet"),
		eff("water valve", rules.ChanWaterFlow, "off"))
	g := buildGraph(w, a)
	fs := Detect(g)
	if !hasType(fs, ActionRevert) {
		t.Fatalf("revert not detected: %v", fs)
	}
	if hasType(fs, ActionConflict) {
		t.Fatal("causally ordered opposition is a revert, not a conflict")
	}
}

func TestDetectActionConflict(t *testing.T) {
	w := mkRule("w", cond("motion sensor", rules.ChanMotion, "detected"),
		eff("heater", rules.ChanPower, "on"))
	a := mkRule("a", cond("heater", rules.ChanPower, "on"),
		eff("fan", rules.ChanPower, "running"))
	b := mkRule("b", cond("heater", rules.ChanPower, "on"),
		eff("fan", rules.ChanPower, "stopped"))
	g := buildGraph(w, a, b)
	fs := Detect(g)
	if !hasType(fs, ActionConflict) {
		t.Fatalf("conflict not detected: %v", fs)
	}
}

func TestDetectActionDuplicate(t *testing.T) {
	w := mkRule("w", cond("motion sensor", rules.ChanMotion, "detected"),
		eff("light", rules.ChanPower, "on"))
	a := mkRule("a", cond("light", rules.ChanPower, "on"),
		eff("lock", rules.ChanLockState, "locked"))
	b := mkRule("b", cond("light", rules.ChanPower, "on"),
		eff("lock", rules.ChanLockState, "locked"))
	g := buildGraph(w, a, b)
	fs := Detect(g)
	if !hasType(fs, ActionDuplicate) {
		t.Fatalf("duplicate not detected: %v", fs)
	}
}

func TestDetectConditionBypass(t *testing.T) {
	w := mkRule("w", cond("button", rules.ChanButton, "pressed"),
		eff("heater", rules.ChanPower, "on", rules.EnvDelta{Channel: rules.ChanTemperature, Sign: 1}))
	a := mkRule("a", cond("temperature sensor", rules.ChanTemperature, "high"),
		rules.Effect{Device: "window", Channel: rules.ChanContact, State: "open",
			Sensitive: true, Verb: "open"})
	g := buildGraph(w, a)
	fs := Detect(g)
	if !hasType(fs, ConditionBypass) {
		t.Fatalf("bypass not detected: %v", fs)
	}
}

func TestBypassRequiresEnvEdgeAndSensitiveAction(t *testing.T) {
	// Direct (non-environmental) edge into a sensitive rule: not a bypass.
	w := mkRule("w", cond("button", rules.ChanButton, "pressed"),
		eff("lock", rules.ChanLockState, "unlocked"))
	a := mkRule("a", cond("lock", rules.ChanLockState, "unlocked"),
		rules.Effect{Device: "door", Channel: rules.ChanContact, State: "open",
			Sensitive: true, Verb: "open"})
	if hasType(Detect(buildGraph(w, a)), ConditionBypass) {
		t.Fatal("direct edges must not count as bypass")
	}
	// Environmental edge into a benign rule: not a bypass either.
	w2 := mkRule("w2", cond("button", rules.ChanButton, "pressed"),
		eff("heater", rules.ChanPower, "on", rules.EnvDelta{Channel: rules.ChanTemperature, Sign: 1}))
	b := mkRule("b", cond("temperature sensor", rules.ChanTemperature, "high"),
		eff("fan", rules.ChanPower, "running"))
	if hasType(Detect(buildGraph(w2, b)), ConditionBypass) {
		t.Fatal("benign actions must not count as bypass")
	}
}

func TestDetectConditionBlock(t *testing.T) {
	a := mkRule("a", cond("motion sensor", rules.ChanMotion, "detected"),
		eff("heater", rules.ChanPower, "on", rules.EnvDelta{Channel: rules.ChanTemperature, Sign: 1}))
	u := mkRule("u", cond("heater", rules.ChanPower, "on"),
		eff("air conditioner", rules.ChanPower, "on", rules.EnvDelta{Channel: rules.ChanTemperature, Sign: -1}))
	v := mkRule("v", cond("temperature sensor", rules.ChanTemperature, "high"),
		eff("fan", rules.ChanPower, "running"))
	g := buildGraph(a, u, v)
	fs := Detect(g)
	if !hasType(fs, ConditionBlock) {
		t.Fatalf("block not detected: %v", fs)
	}
}

func TestBenignGraphHasNoFindings(t *testing.T) {
	// Simple unrelated chain: motion → light; door open → notify-ish action.
	a := mkRule("a", cond("motion sensor", rules.ChanMotion, "detected"),
		eff("light", rules.ChanPower, "on", rules.EnvDelta{Channel: rules.ChanIlluminance, Sign: 1}))
	b := mkRule("b", cond("light", rules.ChanPower, "on"),
		eff("camera", rules.ChanPower, "on"))
	g := buildGraph(a, b)
	if fs := Detect(g); len(fs) != 0 {
		t.Fatalf("benign graph flagged: %v", fs)
	}
	Label(g)
	if g.Label || len(g.Tags) != 0 {
		t.Fatal("benign label wrong")
	}
}

func TestLabelSetsTags(t *testing.T) {
	a := mkRule("a", cond("fan", rules.ChanPower, "running"),
		eff("humidifier", rules.ChanPower, "on"))
	b := mkRule("b", cond("humidifier", rules.ChanPower, "on"),
		eff("fan", rules.ChanPower, "running"))
	g := buildGraph(a, b)
	fs := Label(g)
	if !g.Label || len(fs) == 0 {
		t.Fatal("vulnerable graph not labelled")
	}
	if len(g.Tags) == 0 || g.Tags[0] != "action_loop" {
		t.Fatalf("tags = %v", g.Tags)
	}
	if PrimaryType(g) != ActionLoop {
		t.Fatalf("primary type = %v", PrimaryType(g))
	}
}

func TestPrimaryTypeBenign(t *testing.T) {
	g := &graph.Graph{}
	if PrimaryType(g) != -1 {
		t.Fatal("benign primary type should be -1")
	}
}

func TestDetectDeterministicOrder(t *testing.T) {
	w := mkRule("w", cond("motion sensor", rules.ChanMotion, "detected"),
		eff("heater", rules.ChanPower, "on"))
	a := mkRule("a", cond("heater", rules.ChanPower, "on"),
		eff("fan", rules.ChanPower, "running"))
	b := mkRule("b", cond("heater", rules.ChanPower, "on"),
		eff("fan", rules.ChanPower, "stopped"))
	g := buildGraph(w, a, b)
	f1 := Detect(g)
	f2 := Detect(g)
	if len(f1) != len(f2) {
		t.Fatal("nondeterministic findings")
	}
	for i := range f1 {
		if f1[i].Type != f2[i].Type {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := Type(0); ty < numTypes; ty++ {
		if ty.String() == "unknown" || ty.String() == "" {
			t.Errorf("type %d unnamed", ty)
		}
	}
	if NumLabeledTypes != 6 {
		t.Fatal("the paper defines six labelled types")
	}
}
