package nn

import (
	"sync"

	"fexiot/internal/autodiff"
)

// infScratch is the pooled inference workspace of the nn models: a tape
// (with its arena of recycled matrix buffers) and a binder, reset and
// rebound per call so MLP.Logits and LSTM.PredictLogits stop paying a
// fresh graph allocation per query. Not safe for concurrent use; borrow
// from infPool per call.
type infScratch struct {
	tape   *autodiff.Tape
	binder *autodiff.Binder
}

var infPool = sync.Pool{New: func() any {
	t := autodiff.NewTape()
	return &infScratch{tape: t, binder: autodiff.Bind(t, nil)}
}}

// borrow takes a scratch from the pool, reset and rebound onto params.
func borrow(params *autodiff.ParamSet) *infScratch {
	s := infPool.Get().(*infScratch)
	s.tape.Reset()
	s.binder.Rebind(s.tape, params)
	return s
}

// release returns a scratch to the pool.
func (s *infScratch) release() { infPool.Put(s) }
