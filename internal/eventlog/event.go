// Package eventlog simulates the runtime side of a smart home: a
// discrete-event simulator executes the deployed automation rules against a
// physical environment model and emits timestamped device event logs with
// realistic noise; cleaning reproduces §III-A2 (duplicate-reading and
// execution-error removal, Jenks numeric→logical conversion); and the five
// HAWatcher attack injectors of §IV-A create the external-vulnerability
// online graphs of Table II.
package eventlog

import (
	"fmt"

	"fexiot/internal/rules"
)

// Event is one record of a device event log (Fig. 1b: time, device,
// status).
type Event struct {
	Time      int64 // simulated seconds since log start
	Device    string
	Room      string
	Channel   rules.Channel
	Value     string  // logical state ("on", "detected", …) or numeric text
	Numeric   float64 // numeric reading when IsNumeric
	IsNumeric bool
	Err       bool   // execution-error record
	RuleID    string // rule whose action produced the event ("" for sensors)
	Kind      EventKind
}

// EventKind distinguishes event provenance.
type EventKind int

// Event kinds.
const (
	KindSensor  EventKind = iota // periodic or change-driven sensor report
	KindCommand                  // actuator command issued by a rule
	KindState                    // actuator state-change confirmation
	KindError                    // execution error
)

// String renders an event like a log line.
func (e Event) String() string {
	dev := e.Device
	if e.Room != "" {
		dev = e.Room + " " + dev
	}
	val := e.Value
	if e.IsNumeric {
		val = fmt.Sprintf("%.1f", e.Numeric)
	}
	suffix := ""
	if e.Err {
		suffix = " [error]"
	}
	return fmt.Sprintf("t=%06d %s: %s%s", e.Time, dev, val, suffix)
}

// Log is an ordered sequence of events.
type Log []Event

// Instance identifies a concrete device (kind + room).
type Instance struct {
	Device string
	Room   string
}

// key formats an instance key.
func (i Instance) key() string { return i.Room + "|" + i.Device }
