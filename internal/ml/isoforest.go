package ml

import (
	"math"

	"fexiot/internal/rng"
)

// IsolationForest is the density-based anomaly detector of Table II (Liu et
// al., ICDM 2008): anomalous points isolate in fewer random splits, so a
// short average path length across random isolation trees marks an outlier.
type IsolationForest struct {
	Trees      int
	SampleSize int
	Seed       int64
	// Threshold on the anomaly score in (0,1); above = anomaly. The
	// conventional default is 0.5 under the c(n) normalisation.
	Threshold float64

	trees []*isoNode
	cn    float64
}

type isoNode struct {
	feature int
	thresh  float64
	left    *isoNode
	right   *isoNode
	size    int
	isLeaf  bool
}

// NewIsolationForest creates a forest with standard parameters.
func NewIsolationForest(trees, sampleSize int, seed int64) *IsolationForest {
	return &IsolationForest{Trees: trees, SampleSize: sampleSize, Seed: seed,
		Threshold: 0.5}
}

// avgPathLength is c(n), the average unsuccessful-search path length of a
// BST with n nodes, used to normalise path lengths.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649
	return 2*h - 2*float64(n-1)/float64(n)
}

// Fit builds the isolation trees. Labels are ignored (unsupervised); the
// Classifier interface is satisfied so the Table II harness can treat every
// system uniformly.
func (f *IsolationForest) Fit(x [][]float64, _ []int) {
	f.trees = f.trees[:0]
	if len(x) == 0 {
		return
	}
	sample := f.SampleSize
	if sample <= 0 || sample > len(x) {
		sample = min(256, len(x))
	}
	f.cn = avgPathLength(sample)
	maxDepth := int(math.Ceil(math.Log2(float64(sample)))) + 1
	r := rng.New(f.Seed)
	for t := 0; t < f.Trees; t++ {
		idx := r.SampleWithoutReplacement(len(x), sample)
		f.trees = append(f.trees, buildIso(x, idx, 0, maxDepth, r))
	}
}

func buildIso(x [][]float64, idx []int, depth, maxDepth int, r *rng.RNG) *isoNode {
	if depth >= maxDepth || len(idx) <= 1 {
		return &isoNode{isLeaf: true, size: len(idx)}
	}
	d := len(x[0])
	// Pick a feature with spread.
	var feat int
	var lo, hi float64
	found := false
	for trial := 0; trial < d; trial++ {
		feat = r.Intn(d)
		lo, hi = x[idx[0]][feat], x[idx[0]][feat]
		for _, i := range idx {
			v := x[i][feat]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > lo {
			found = true
			break
		}
	}
	if !found {
		return &isoNode{isLeaf: true, size: len(idx)}
	}
	thresh := r.Range(lo, hi)
	var li, ri []int
	for _, i := range idx {
		if x[i][feat] < thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &isoNode{isLeaf: true, size: len(idx)}
	}
	return &isoNode{
		feature: feat,
		thresh:  thresh,
		left:    buildIso(x, li, depth+1, maxDepth, r),
		right:   buildIso(x, ri, depth+1, maxDepth, r),
	}
}

func pathLength(n *isoNode, q []float64, depth float64) float64 {
	if n.isLeaf {
		return depth + avgPathLength(n.size)
	}
	if q[n.feature] < n.thresh {
		return pathLength(n.left, q, depth+1)
	}
	return pathLength(n.right, q, depth+1)
}

// Score returns the anomaly score in (0,1): s = 2^(−E[h]/c(n)).
func (f *IsolationForest) Score(q []float64) float64 {
	if len(f.trees) == 0 || f.cn == 0 {
		return 0.5
	}
	var sum float64
	for _, t := range f.trees {
		sum += pathLength(t, q, 0)
	}
	mean := sum / float64(len(f.trees))
	return math.Pow(2, -mean/f.cn)
}

// Predict flags anomalies (score above threshold) as the positive class.
func (f *IsolationForest) Predict(q []float64) int {
	if f.Score(q) > f.Threshold {
		return 1
	}
	return 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
