package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield same stream")
		}
	}
}

func TestSplitStableIndependence(t *testing.T) {
	a := SplitStable(1, "alpha")
	b := SplitStable(1, "beta")
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams look identical: %d collisions", same)
	}
	// Stable: recomputing gives the same stream.
	c := SplitStable(1, "alpha")
	d := SplitStable(1, "alpha")
	for i := 0; i < 20; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("SplitStable must be deterministic")
		}
	}
}

func TestDirichletIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed)
		for _, alpha := range []float64{0.1, 1, 10} {
			p := g.Dirichlet(5, alpha)
			var sum float64
			for _, x := range p {
				if x < 0 || math.IsNaN(x) {
					return false
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletConcentrationEffect(t *testing.T) {
	// Small alpha → spiky distributions; large alpha → near uniform.
	g := New(7)
	var spikySpread, flatSpread float64
	n := 200
	for i := 0; i < n; i++ {
		spiky := g.Dirichlet(10, 0.1)
		flat := g.Dirichlet(10, 100)
		spikySpread += maxOf(spiky) - minOf(spiky)
		flatSpread += maxOf(flat) - minOf(flat)
	}
	if spikySpread <= flatSpread {
		t.Fatalf("alpha=0.1 spread %v should exceed alpha=100 spread %v",
			spikySpread/float64(n), flatSpread/float64(n))
	}
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

func TestGammaMean(t *testing.T) {
	// Mean of Gamma(shape,1) is shape.
	g := New(11)
	for _, shape := range []float64{0.5, 2, 8} {
		var sum float64
		n := 5000
		for i := 0; i < n; i++ {
			sum += g.Gamma(shape)
		}
		mean := sum / float64(n)
		if math.Abs(mean-shape) > 0.15*shape+0.05 {
			t.Fatalf("Gamma(%v) mean = %v", shape, mean)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	g := New(13)
	lambda := 4.0
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		sum += float64(g.Poisson(lambda))
	}
	mean := sum / float64(n)
	if math.Abs(mean-lambda) > 0.2 {
		t.Fatalf("Poisson mean = %v want ~%v", mean, lambda)
	}
	if g.Poisson(0) != 0 {
		t.Fatal("Poisson(0) must be 0")
	}
}

func TestGlorotBounds(t *testing.T) {
	g := New(17)
	m := g.Glorot(10, 20)
	limit := math.Sqrt(6.0 / 30.0)
	for _, x := range m.Data() {
		if x < -limit || x > limit {
			t.Fatalf("Glorot out of bounds: %v limit %v", x, limit)
		}
	}
	if m.Norm() == 0 {
		t.Fatal("Glorot all zero")
	}
}

func TestPickWeighted(t *testing.T) {
	g := New(19)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[g.PickWeighted([]float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weighted sampling violated ordering: %v", counts)
	}
	// Degenerate weights fall back to uniform.
	idx := g.PickWeighted([]float64{0, 0})
	if idx != 0 && idx != 1 {
		t.Fatal("degenerate weights")
	}
}

func TestIntRangeAndSample(t *testing.T) {
	g := New(23)
	for i := 0; i < 100; i++ {
		v := g.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange out of range: %d", v)
		}
	}
	s := g.SampleWithoutReplacement(10, 4)
	seen := map[int]bool{}
	for _, x := range s {
		if seen[x] || x < 0 || x >= 10 {
			t.Fatalf("bad sample %v", s)
		}
		seen[x] = true
	}
	if len(s) != 4 {
		t.Fatalf("sample size %d", len(s))
	}
	if len(g.SampleWithoutReplacement(3, 10)) != 3 {
		t.Fatal("oversized k must clamp")
	}
}

func TestPickGeneric(t *testing.T) {
	g := New(29)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(g, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose some element: %v", seen)
	}
}
