package fusion

import (
	"math"
	"testing"

	"fexiot/internal/rules"
)

// TestFeatureCacheHitsAndIdentity pins the node-feature cache's two
// contracts: repeated fusions of the same rules hit the cache, and cached
// features are bit-identical to a cold computation.
func TestFeatureCacheHitsAndIdentity(t *testing.T) {
	home := rules.NewGenerator(7, rules.Archetypes()[0], "c-").RuleSet(12)

	warm := NewBuilder(11, testEnc)
	cold := NewBuilder(11, testEnc)

	var warmFeats [][]float64
	for _, r := range home {
		f, _ := warm.NodeFeature(r)
		warmFeats = append(warmFeats, f)
	}
	st := warm.FeatureCacheStats()
	if st.Misses != int64(len(home)) || st.Hits != 0 {
		t.Fatalf("cold pass: hits=%d misses=%d, want 0/%d", st.Hits, st.Misses, len(home))
	}

	// Second pass over the same rules: all hits.
	for i, r := range home {
		f, _ := warm.NodeFeature(r)
		for k := range f {
			if math.Float64bits(f[k]) != math.Float64bits(warmFeats[i][k]) {
				t.Fatalf("rule %s feature[%d] drifted across cache hit", r.ID, k)
			}
		}
	}
	st = warm.FeatureCacheStats()
	if st.Hits != int64(len(home)) {
		t.Fatalf("warm pass: hits=%d, want %d", st.Hits, len(home))
	}

	// Cached features are bit-identical to a never-cached builder's.
	for i, r := range home {
		f, _ := cold.NodeFeature(r)
		if len(f) != len(warmFeats[i]) {
			t.Fatalf("rule %s: dim %d vs %d", r.ID, len(f), len(warmFeats[i]))
		}
		for k := range f {
			if math.Float64bits(f[k]) != math.Float64bits(warmFeats[i][k]) {
				t.Fatalf("rule %s feature[%d]: cached %v vs cold %v",
					r.ID, k, warmFeats[i][k], f[k])
			}
		}
	}
}

// TestFeatureCacheKeyExcludesID pins the cache key to rule CONTENT: two
// rules differing only in ID share an entry, and any content difference
// (trigger, action, sensitivity) splits them.
func TestFeatureCacheKeyExcludesID(t *testing.T) {
	home := rules.NewGenerator(7, rules.Archetypes()[0], "k-").RuleSet(4)
	b := NewBuilder(11, testEnc)

	r1 := *home[0]
	r2 := *home[0]
	r2.ID = "different-id"
	b.NodeFeature(&r1)
	b.NodeFeature(&r2)
	st := b.FeatureCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("id-only twin: hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}

	// A content change misses.
	r3 := *home[0]
	r3.Description = r3.Description + " tweaked"
	b.NodeFeature(&r3)
	st = b.FeatureCacheStats()
	if st.Misses != 2 {
		t.Fatalf("content twin: misses=%d, want 2", st.Misses)
	}
}

// TestFeatureCacheCopies guards the cache against aliasing: mutating a
// returned feature must not corrupt later reads.
func TestFeatureCacheCopies(t *testing.T) {
	home := rules.NewGenerator(7, rules.Archetypes()[0], "a-").RuleSet(1)
	b := NewBuilder(11, testEnc)
	f1, _ := b.NodeFeature(home[0])
	want := f1[0]
	f1[0] = want + 1e9
	f2, _ := b.NodeFeature(home[0])
	if f2[0] != want {
		t.Fatalf("cache aliased caller slice: got %v, want %v", f2[0], want)
	}
}
