package graph

import (
	"sync"

	"fexiot/internal/mat"
)

// Structural caches: a graph's adjacency operators and padded feature
// matrices are immutable once the graph is built, but the GNN training loop
// requests them for every forward pass. The caches below memoise them.
// They are safe for concurrent readers (federated clients train in
// parallel, and evaluation shares test graphs across clients).
type structCache struct {
	mu       sync.Mutex
	normAdj  *mat.CSR
	sumAdj   map[float64]*mat.CSR
	features map[int]*mat.Dense
}

func (g *Graph) cache() *structCache {
	g.cacheOnce.Do(func() {
		g.cached = &structCache{
			sumAdj:   map[float64]*mat.CSR{},
			features: map[int]*mat.Dense{},
		}
	})
	return g.cached
}

// InvalidateCache drops memoised operators after structural mutation.
// Builders that mutate a graph after handing it to a model must call this.
func (g *Graph) InvalidateCache() {
	c := g.cache()
	c.mu.Lock()
	c.normAdj = nil
	c.sumAdj = map[float64]*mat.CSR{}
	c.features = map[int]*mat.Dense{}
	c.mu.Unlock()
}

// CachedNormalizedAdjacency memoises NormalizedAdjacency.
func (g *Graph) CachedNormalizedAdjacency() *mat.CSR {
	c := g.cache()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.normAdj == nil {
		c.normAdj = g.NormalizedAdjacency()
	}
	return c.normAdj
}

// CachedSumAdjacency memoises SumAdjacency per ε.
func (g *Graph) CachedSumAdjacency(eps float64) *mat.CSR {
	c := g.cache()
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.sumAdj[eps]; ok {
		return a
	}
	a := g.SumAdjacency(eps)
	c.sumAdj[eps] = a
	return a
}

// CachedPadFeatures memoises PadFeatures per dimension. The returned matrix
// is shared — callers must not mutate it.
func (g *Graph) CachedPadFeatures(dim int) *mat.Dense {
	c := g.cache()
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.features[dim]; ok {
		return m
	}
	m := g.PadFeatures(dim)
	c.features[dim] = m
	return m
}
