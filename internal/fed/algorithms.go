package fed

import (
	"math"

	"fexiot/internal/mat"
)

var _ = math.Inf // math used by binaryCluster

// --- FedAvg ----------------------------------------------------------------

// FedAvg is classic federated averaging (McMahan et al.): every round each
// client trains locally and the server replaces every model with the
// data-weighted mean.
type FedAvg struct{}

// Name identifies the algorithm.
func (FedAvg) Name() string { return "FedAvg" }

// Run executes federated averaging.
func (FedAvg) Run(clients []*Client, cfg Config) *Result {
	res := &Result{FinalClusters: uniformClusters(len(clients))}
	sm := newSimMetrics(cfg.Metrics)
	all := indexRange(len(clients))
	modelParams := clients[0].Model.Params().NumElements()
	for r := 0; r < cfg.Rounds; r++ {
		localTrainAll(clients, cfg.roundTrain(r))
		avg := clients[0].Model.Params().Clone()
		AggregateParams(aggregatorOr(cfg.Aggregator), avg, paramsOf(clients, all), dataWeights(clients, all))
		for _, c := range clients {
			c.Model.Params().CopyFrom(avg)
		}
		// Full model up and down for every client.
		roundBytes := int64(len(clients)) * bytesFor(modelParams) * 2
		res.Comm.UploadBytes += int64(len(clients)) * bytesFor(modelParams)
		res.Comm.DownloadBytes += int64(len(clients)) * bytesFor(modelParams)
		info := RoundInfo{Round: r, NumClusters: 1, CommBytes: roundBytes}
		res.Rounds = append(res.Rounds, info)
		sm.record(info)
	}
	res.Comm.Rounds = cfg.Rounds
	return res
}

// --- Isolated clients --------------------------------------------------------

// ClientOnly trains every client locally with no communication (the
// "Client" baseline of Fig. 4).
type ClientOnly struct{}

// Name identifies the algorithm.
func (ClientOnly) Name() string { return "Client" }

// Run trains clients in isolation.
func (ClientOnly) Run(clients []*Client, cfg Config) *Result {
	res := &Result{FinalClusters: isolatedClusters(len(clients))}
	sm := newSimMetrics(cfg.Metrics)
	for r := 0; r < cfg.Rounds; r++ {
		localTrainAll(clients, cfg.roundTrain(r))
		info := RoundInfo{Round: r, NumClusters: len(clients)}
		res.Rounds = append(res.Rounds, info)
		sm.record(info)
	}
	res.Comm.Rounds = cfg.Rounds
	return res
}

// --- Clustered baselines ------------------------------------------------------

// clusteredFL factors the shared mechanics of FMTL and GCFL+: whole-model
// aggregation within a dynamically refined partition of the clients.
type clusteredFL struct {
	name string
	// signal extracts the vector the algorithm clusters on.
	signal func(c *Client) []float64
}

// FMTL is clustered federated multi-task learning (Sattler et al.): the
// split signal is the latest whole-model weight-update direction (a
// geometric property of the loss surface at the stationary point).
func FMTL() Algorithm {
	return &clusteredFL{
		name:   "FMTL",
		signal: func(c *Client) []float64 { return c.Update().Flatten() },
	}
}

// GCFL is GCFL+ (Xie et al.): clustering on smoothed gradient sequences —
// each client keeps a moving window of updates and clusters on the window
// mean, damping the oscillation of any single round.
func GCFL() Algorithm {
	windows := map[int][][]float64{}
	return &clusteredFL{
		name: "GCFL+",
		signal: func(c *Client) []float64 {
			u := c.Update().Flatten()
			w := append(windows[c.ID], u)
			if len(w) > 3 {
				w = w[len(w)-3:]
			}
			windows[c.ID] = w
			mean := make([]float64, len(u))
			for _, v := range w {
				mat.Axpy(mean, v, 1/float64(len(w)))
			}
			return mean
		},
	}
}

// Name identifies the algorithm.
func (a *clusteredFL) Name() string { return a.name }

// Run executes clustered whole-model FL.
func (a *clusteredFL) Run(clients []*Client, cfg Config) *Result {
	res := &Result{}
	sm := newSimMetrics(cfg.Metrics)
	modelParams := clients[0].Model.Params().NumElements()
	clusters := [][]int{indexRange(len(clients))}
	for r := 0; r < cfg.Rounds; r++ {
		localTrainAll(clients, cfg.roundTrain(r))
		signals := make([][]float64, len(clients))
		for i, c := range clients {
			signals[i] = a.signal(c)
		}
		var next [][]int
		for _, cluster := range clusters {
			split := false
			if len(cluster) >= 2 {
				norms, meanNorm := wholeModelUpdateNorms(clients, cluster)
				split = gateFromNorms(norms, meanNorm, cfg)
			}
			if split {
				c1, c2 := binaryCluster(signals, cluster)
				if len(c2) > 0 {
					next = append(next, c1, c2)
					continue
				}
			}
			next = append(next, cluster)
		}
		clusters = next
		for _, cluster := range clusters {
			avg := clients[cluster[0]].Model.Params().Clone()
			AggregateParams(aggregatorOr(cfg.Aggregator), avg, paramsOf(clients, cluster), dataWeights(clients, cluster))
			for _, i := range cluster {
				clients[i].Model.Params().CopyFrom(avg)
			}
		}
		roundBytes := int64(len(clients)) * bytesFor(modelParams) * 2
		res.Comm.UploadBytes += int64(len(clients)) * bytesFor(modelParams)
		res.Comm.DownloadBytes += int64(len(clients)) * bytesFor(modelParams)
		info := RoundInfo{Round: r, NumClusters: len(clusters), CommBytes: roundBytes}
		res.Rounds = append(res.Rounds, info)
		sm.record(info)
	}
	res.Comm.Rounds = cfg.Rounds
	res.FinalClusters = clusterAssignment(len(clients), clusters)
	return res
}

// --- Shared helpers ------------------------------------------------------------

func indexRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func uniformClusters(n int) []int { return make([]int, n) }

func isolatedClusters(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func clusterAssignment(n int, clusters [][]int) []int {
	out := make([]int, n)
	for cid, cluster := range clusters {
		for _, i := range cluster {
			out[i] = cid
		}
	}
	return out
}

// wholeModelUpdateNorms returns ‖ΔW_c‖ per cluster member plus the norm of
// the data-weighted mean update.
func wholeModelUpdateNorms(clients []*Client, cluster []int) ([]float64, float64) {
	w := dataWeights(clients, cluster)
	var mean []float64
	norms := make([]float64, len(cluster))
	for k, i := range cluster {
		u := clients[i].Update().Flatten()
		norms[k] = mat.Norm2(u)
		if mean == nil {
			mean = make([]float64, len(u))
		}
		mat.Axpy(mean, u, w[k])
	}
	return norms, mat.Norm2(mean)
}

// gateFromNorms applies the Eq. (3) gate: the aggregate update is nearly
// stationary (ε1 bound) while at least one client still moves strongly
// (ε2 bound) — the signature of clients pulling in different directions.
// The paper states ε1, ε2 as absolute norms ("related to the size of model
// weights"); to stay calibrated across model sizes and layer widths, this
// implementation interprets them relative to the average individual update
// norm: the gate fires when ‖Σ w_c ΔW_c‖ < ε1·avg‖ΔW_c‖ and
// max‖ΔW_c‖ > ε2·avg‖ΔW_c‖.
func gateFromNorms(norms []float64, meanNorm float64, cfg Config) bool {
	maxNorm, avg := 0.0, 0.0
	for _, n := range norms {
		if n > maxNorm {
			maxNorm = n
		}
		avg += n
	}
	if len(norms) == 0 || avg == 0 {
		return false
	}
	avg /= float64(len(norms))
	return meanNorm < cfg.Eps1*avg && maxNorm > cfg.Eps2*avg
}

// binaryCluster splits cluster members into two groups by cosine
// similarity of their signals: the least similar pair seeds the groups and
// every member joins the nearer seed.
func binaryCluster(signals [][]float64, cluster []int) ([]int, []int) {
	seedA, seedB := cluster[0], cluster[1]
	worst := math.Inf(1)
	for x := 0; x < len(cluster); x++ {
		for y := x + 1; y < len(cluster); y++ {
			s := mat.CosineSimilarity(signals[cluster[x]], signals[cluster[y]])
			if s < worst {
				worst = s
				seedA, seedB = cluster[x], cluster[y]
			}
		}
	}
	var a, b []int
	for _, i := range cluster {
		sa := mat.CosineSimilarity(signals[i], signals[seedA])
		sb := mat.CosineSimilarity(signals[i], signals[seedB])
		if sa >= sb {
			a = append(a, i)
		} else {
			b = append(b, i)
		}
	}
	// Singleton clusters degenerate to isolated training and fragment the
	// federation; keep the cluster whole instead.
	if len(a) < 2 || len(b) < 2 {
		return cluster, nil
	}
	return a, b
}
