package stream

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fexiot/internal/eventlog"
	"fexiot/internal/graph"
	"fexiot/internal/rules"
	"fexiot/internal/serve"
)

// stubEngine is a controllable Engine: tests move the published sequence
// and count detections.
type stubEngine struct {
	mu        sync.Mutex
	seq       uint64
	published bool
	detects   int
	verdict   serve.Verdict
}

func (s *stubEngine) Detect(_ context.Context, g *graph.Graph) (serve.Verdict, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.published {
		return serve.Verdict{}, 0, serve.ErrNotReady
	}
	s.detects++
	v := s.verdict
	v.Score = float64(g.N()) // score mirrors the graph so tests see refusions
	return v, s.seq, nil
}

func (s *stubEngine) SnapshotSeq() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq, s.published
}

func (s *stubEngine) publish(seq uint64) {
	s.mu.Lock()
	s.seq, s.published = seq, true
	s.mu.Unlock()
}

func (s *stubEngine) detectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.detects
}

// testManager builds a manager over a stub engine and a builder that makes
// one node per window event, counting build calls (= refusions).
func testManager(t *testing.T, opts Options) (*Manager, *stubEngine, *atomic.Int64) {
	t.Helper()
	eng := &stubEngine{}
	var builds atomic.Int64
	build := func(rs []*rules.Rule, log eventlog.Log) (*graph.Graph, error) {
		builds.Add(1)
		g := &graph.Graph{Online: true}
		for range log {
			g.AddNode(graph.Node{})
		}
		return g, nil
	}
	m := NewManager(eng, build, opts)
	t.Cleanup(m.Shutdown)
	return m, eng, &builds
}

func testRules() []*rules.Rule { return []*rules.Rule{{ID: "r1"}} }

func ev(tm int64, dev string) eventlog.Event {
	return eventlog.Event{Time: tm, Device: dev, Value: "on"}
}

func TestStreamCreateValidation(t *testing.T) {
	m, _, _ := testManager(t, Options{})
	if _, err := m.Create(nil); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("empty rules: err = %v, want ErrBadRequest", err)
	}
	id, err := m.Create(testRules())
	if err != nil || id == "" {
		t.Fatalf("create: %q, %v", id, err)
	}
	if m.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1", m.Sessions())
	}
}

func TestStreamWindowCountBound(t *testing.T) {
	m, _, _ := testManager(t, Options{MaxWindowEvents: 3})
	id, _ := m.Create(testRules())
	res, err := m.Ingest(id, []eventlog.Event{
		ev(1, "a"), ev(2, "b"), ev(3, "c"), ev(4, "d"), ev(5, "e"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowEvents != 3 || res.Dropped != 2 {
		t.Fatalf("window=%d dropped=%d, want 3/2", res.WindowEvents, res.Dropped)
	}
	if res.WindowSpan != 2 { // events 3..5 survive
		t.Fatalf("span = %d, want 2", res.WindowSpan)
	}
}

func TestStreamWindowAgeBound(t *testing.T) {
	m, _, _ := testManager(t, Options{MaxWindowAge: 10})
	id, _ := m.Create(testRules())
	m.Ingest(id, []eventlog.Event{ev(1, "old"), ev(2, "old2")})
	// A much newer event ages the first two out (cutoff = 100-10 = 90).
	res, err := m.Ingest(id, []eventlog.Event{ev(100, "new")})
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowEvents != 1 || res.Dropped != 2 {
		t.Fatalf("window=%d dropped=%d, want 1/2", res.WindowEvents, res.Dropped)
	}
}

func TestStreamRefusionOnlyOnChange(t *testing.T) {
	m, eng, builds := testManager(t, Options{MaxWindowEvents: 4})
	eng.publish(1)
	id, _ := m.Create(testRules())
	m.Ingest(id, []eventlog.Event{ev(1, "a"), ev(2, "b")})

	ctx := context.Background()
	v1, err := m.Verdict(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Refused || !v1.Rescored || builds.Load() != 1 {
		t.Fatalf("first read: refused=%v rescored=%v builds=%d, want true/true/1",
			v1.Refused, v1.Rescored, builds.Load())
	}
	if v1.Nodes != 2 || v1.Verdict.Score != 2 {
		t.Fatalf("nodes=%d score=%v, want 2/2", v1.Nodes, v1.Verdict.Score)
	}

	// Unchanged window + unchanged snapshot → pure cache read.
	v2, _ := m.Verdict(ctx, id)
	if v2.Refused || v2.Rescored || builds.Load() != 1 {
		t.Fatalf("cached read: refused=%v rescored=%v builds=%d, want false/false/1",
			v2.Refused, v2.Rescored, builds.Load())
	}
	if v2.Verdict != v1.Verdict {
		t.Fatal("cached verdict differs from computed verdict")
	}

	// Re-ingesting the exact window is a no-op: no refusion on next read.
	res, _ := m.Ingest(id, []eventlog.Event{ev(1, "a"), ev(2, "b")})
	if res.Changed {
		// The duplicate batch doubles the window (a+a+b+b fits in 4), so it
		// IS a change — assert the opposite case with a truly stale batch
		// below instead.
		t.Log("duplicate batch changed the window (expected: duplicates accumulate)")
	}

	// A genuinely new event changes the window → one more refusion.
	m.Ingest(id, []eventlog.Event{ev(3, "c")})
	v3, _ := m.Verdict(ctx, id)
	if !v3.Refused || builds.Load() < 2 {
		t.Fatalf("changed window: refused=%v builds=%d, want true/≥2", v3.Refused, builds.Load())
	}
}

func TestStreamStaleBatchNoRefusion(t *testing.T) {
	m, eng, builds := testManager(t, Options{MaxWindowAge: 10})
	eng.publish(1)
	id, _ := m.Create(testRules())
	m.Ingest(id, []eventlog.Event{ev(100, "new")})
	if _, err := m.Verdict(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	before := builds.Load()

	// Events older than the age cutoff never enter the window → no change,
	// no refusion on the next read.
	res, err := m.Ingest(id, []eventlog.Event{ev(1, "stale"), ev(2, "stale2")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed || res.WindowEvents != 1 || res.Dropped != 2 {
		t.Fatalf("stale batch: changed=%v window=%d dropped=%d, want false/1/2",
			res.Changed, res.WindowEvents, res.Dropped)
	}
	v, _ := m.Verdict(context.Background(), id)
	if v.Refused || builds.Load() != before {
		t.Fatalf("stale batch triggered refusion (builds %d→%d)", before, builds.Load())
	}
}

func TestStreamRescoreOnRepublish(t *testing.T) {
	m, eng, builds := testManager(t, Options{})
	eng.publish(1)
	id, _ := m.Create(testRules())
	m.Ingest(id, []eventlog.Event{ev(1, "a")})
	ctx := context.Background()
	v1, err := m.Verdict(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v1.SnapshotSeq != 1 {
		t.Fatalf("seq = %d, want 1", v1.SnapshotSeq)
	}

	// A republish re-scores the cached graph without re-fusing it.
	eng.publish(2)
	v2, err := m.Verdict(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Refused || !v2.Rescored {
		t.Fatalf("post-republish: refused=%v rescored=%v, want false/true", v2.Refused, v2.Rescored)
	}
	if v2.SnapshotSeq != 2 || builds.Load() != 1 {
		t.Fatalf("seq=%d builds=%d, want 2/1", v2.SnapshotSeq, builds.Load())
	}
}

func TestStreamEmptyWindowVerdict(t *testing.T) {
	m, eng, _ := testManager(t, Options{})
	id, _ := m.Create(testRules())
	ctx := context.Background()

	// Nothing published yet → not_ready.
	if _, err := m.Verdict(ctx, id); !errors.Is(err, serve.ErrNotReady) {
		t.Fatalf("pre-publish empty window: err = %v, want ErrNotReady", err)
	}

	// Published: an empty window is vacuously clean, not an error.
	eng.publish(1)
	v, err := m.Verdict(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Verdict.Vulnerable || v.Verdict.Score != 0 || v.Nodes != 0 {
		t.Fatalf("empty window verdict = %+v, want zero", v)
	}
	if eng.detectCount() != 0 {
		t.Fatal("empty graph must not reach the engine")
	}
}

func TestStreamMaxSessions(t *testing.T) {
	m, _, _ := testManager(t, Options{MaxSessions: 2})
	if _, err := m.Create(testRules()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(testRules()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(testRules()); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("third create: err = %v, want ErrOverloaded", err)
	}
	// Deleting one frees a slot.
	if err := m.Delete("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(testRules()); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

func TestStreamDelete(t *testing.T) {
	m, _, _ := testManager(t, Options{})
	id, _ := m.Create(testRules())
	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id); !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("double delete: err = %v, want ErrNotFound", err)
	}
	if _, err := m.Ingest(id, []eventlog.Event{ev(1, "a")}); !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("ingest after delete: err = %v, want ErrNotFound", err)
	}
	if _, err := m.Verdict(context.Background(), id); !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("verdict after delete: err = %v, want ErrNotFound", err)
	}
}

func TestStreamIdleEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	m, _, _ := testManager(t, Options{
		IdleTimeout:     time.Minute,
		JanitorInterval: time.Hour, // sweeps driven manually
		now:             clock,
	})
	idle, _ := m.Create(testRules())
	active, _ := m.Create(testRules())

	mu.Lock()
	now = now.Add(50 * time.Second)
	mu.Unlock()
	if _, err := m.Ingest(active, []eventlog.Event{ev(1, "a")}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	now = now.Add(30 * time.Second) // idle is now 80s stale, active 30s
	mu.Unlock()
	if n := m.sweep(); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	if _, err := m.Verdict(context.Background(), idle); !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("evicted session: err = %v, want ErrNotFound", err)
	}
	if m.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1", m.Sessions())
	}
	_ = active
}

func TestStreamConcurrentSessions(t *testing.T) {
	m, eng, _ := testManager(t, Options{})
	eng.publish(1)
	const sessions = 8
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			id, err := m.Create(testRules())
			if err != nil {
				t.Error(err)
				return
			}
			for k := 0; k < 20; k++ {
				if _, err := m.Ingest(id, []eventlog.Event{ev(int64(k), "d")}); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Verdict(context.Background(), id); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
