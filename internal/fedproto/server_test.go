package fedproto

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// dialHello connects to the server and completes the hello handshake.
func dialHello(t *testing.T, addr string, id, size int) *Conn {
	t.Helper()
	var raw net.Conn
	var err error
	for try := 0; try < 50; try++ {
		raw, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := Wrap(raw)
	if err := c.Send(&Message{Kind: MsgHello, ClientID: id, DataSize: size}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	return c
}

// TestServerHungClientFailsRound is the regression test for the blocking
// Recv deadlock: a client that goes silent after hello must fail the round
// with a deadline error naming the client, not hang Run() forever.
func TestServerHungClientFailsRound(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := NewServer(ServerConfig{
		Addr:         addr,
		Clients:      2,
		Rounds:       1,
		NumLayers:    1,
		RoundTimeout: 250 * time.Millisecond,
	})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()

	good := dialHello(t, addr, 0, 10)
	defer good.Close()
	hung := dialHello(t, addr, 1, 10)
	defer hung.Close()

	// The good client ships a round-0 update; the hung client sends nothing.
	up := &Message{Kind: MsgUpdate, ClientID: 0, Round: 0, Layers: []LayerPayload{{
		Layer: 0, Names: []string{"w"}, Shapes: [][2]int{{1, 2}},
		Data: [][]float64{{1, 2}}, UpdateNorm: 1,
	}}}
	if err := good.Send(up); err != nil {
		t.Fatalf("update: %v", err)
	}

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run() succeeded despite a hung client")
		}
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("want a net timeout error, got %v", err)
		}
		if !strings.Contains(err.Error(), "client 1") {
			t.Fatalf("error does not identify the hung client: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run() still blocked after 5s — deadline not applied")
	}
}

// TestServerSurfacesEveryFailedClient checks that when several clients
// fail in one round, the combined error names each of them.
func TestServerSurfacesEveryFailedClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := NewServer(ServerConfig{
		Addr:         addr,
		Clients:      3,
		Rounds:       1,
		NumLayers:    1,
		RoundTimeout: 250 * time.Millisecond,
	})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()

	conns := make([]*Conn, 3)
	for id := 0; id < 3; id++ {
		conns[id] = dialHello(t, addr, id, 5)
		defer conns[id].Close()
	}
	// Client 0 sends a well-formed update; clients 1 and 2 both go silent.
	up := &Message{Kind: MsgUpdate, ClientID: 0, Round: 0, Layers: []LayerPayload{{
		Layer: 0, Names: []string{"w"}, Shapes: [][2]int{{1, 1}},
		Data: [][]float64{{3}}, UpdateNorm: 1,
	}}}
	if err := conns[0].Send(up); err != nil {
		t.Fatalf("update: %v", err)
	}

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run() succeeded despite hung clients")
		}
		msg := err.Error()
		for _, want := range []string{"client 1", "client 2"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("combined error missing %q: %v", want, err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run() still blocked after 5s")
	}
}
