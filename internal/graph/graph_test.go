package graph

import (
	"math"
	"testing"
	"testing/quick"

	"fexiot/internal/rules"
)

// chain builds a path graph 0→1→…→n-1 with dim-1 features.
func chain(n int) *Graph {
	g := &Graph{ID: "chain"}
	for i := 0; i < n; i++ {
		g.AddNode(Node{Feature: []float64{float64(i)}})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, rules.DirectMatch)
	}
	return g
}

func TestAddEdgeDeduplicates(t *testing.T) {
	g := chain(3)
	before := len(g.Edges)
	g.AddEdge(0, 1, rules.DirectMatch)
	if len(g.Edges) != before {
		t.Fatal("duplicate edge added")
	}
}

func TestAddEdgeBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	chain(2).AddEdge(0, 5, rules.DirectMatch)
}

func TestNeighborsInOut(t *testing.T) {
	g := chain(3)
	if out := g.Out(0); len(out) != 1 || out[0] != 1 {
		t.Fatalf("Out(0) = %v", out)
	}
	if in := g.In(1); len(in) != 1 || in[0] != 0 {
		t.Fatalf("In(1) = %v", in)
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 {
		t.Fatalf("Neighbors(1) = %v", nb)
	}
}

func TestReachableAndCycle(t *testing.T) {
	g := chain(4)
	if !g.Reachable(0, 3) {
		t.Fatal("0 should reach 3")
	}
	if g.Reachable(3, 0) {
		t.Fatal("3 must not reach 0")
	}
	if g.HasCycle() {
		t.Fatal("chain has no cycle")
	}
	g.AddEdge(3, 0, rules.DirectMatch)
	if !g.HasCycle() {
		t.Fatal("cycle not detected")
	}
}

func TestCommonAncestor(t *testing.T) {
	// 0→1, 0→2: fork.
	g := &Graph{}
	for i := 0; i < 4; i++ {
		g.AddNode(Node{Feature: []float64{0}})
	}
	g.AddEdge(0, 1, rules.DirectMatch)
	g.AddEdge(0, 2, rules.DirectMatch)
	if !g.CommonAncestor(1, 2) {
		t.Fatal("fork children share an ancestor")
	}
	if g.CommonAncestor(1, 3) {
		t.Fatal("3 is isolated")
	}
	if !g.CommonAncestor(0, 2) {
		t.Fatal("direct reachability counts")
	}
}

func TestClosureMatchesNaiveReachability(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		n := int(seed%8) + 2
		g := &Graph{}
		for i := 0; i < n; i++ {
			g.AddNode(Node{Feature: []float64{0}})
		}
		s := seed
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				s = s*6364136223846793005 + 1442695040888963407
				if s%5 == 0 {
					g.AddEdge(i, j, rules.DirectMatch)
				}
			}
		}
		cl := g.TransitiveClosure()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if cl.Reachable(i, j) != g.Reachable(i, j) {
					return false
				}
				if cl.CommonAncestor(i, j) != g.CommonAncestor(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedAdjacency(t *testing.T) {
	g := chain(3)
	a := g.NormalizedAdjacency()
	r, c := a.Dims()
	if r != 3 || c != 3 {
		t.Fatalf("dims %dx%d", r, c)
	}
	d := a.ToDense()
	// Symmetric.
	if !d.Equalish(d.T(), 1e-12) {
		t.Fatal("normalised adjacency must be symmetric")
	}
	// Node 1 has degree 3 (self + two neighbours); self-loop weight 1/3.
	if math.Abs(d.At(1, 1)-1.0/3) > 1e-12 {
		t.Fatalf("Â[1,1] = %v", d.At(1, 1))
	}
	// Off-diagonal (0,1): 1/sqrt(2*3).
	if math.Abs(d.At(0, 1)-1/math.Sqrt(6)) > 1e-12 {
		t.Fatalf("Â[0,1] = %v", d.At(0, 1))
	}
}

func TestSumAdjacency(t *testing.T) {
	g := chain(2)
	a := g.SumAdjacency(0.5).ToDense()
	if a.At(0, 0) != 1.5 || a.At(1, 1) != 1.5 {
		t.Fatalf("self weight: %v", a)
	}
	if a.At(0, 1) != 1 || a.At(1, 0) != 1 {
		t.Fatalf("neighbour weight: %v", a)
	}
}

func TestFeatureMatrixAndPad(t *testing.T) {
	g := chain(3)
	m := g.FeatureMatrix()
	if m.Rows() != 3 || m.Cols() != 1 {
		t.Fatalf("feature dims %dx%d", m.Rows(), m.Cols())
	}
	p := g.PadFeatures(4)
	if p.Cols() != 4 || p.At(2, 0) != 2 || p.At(2, 3) != 0 {
		t.Fatalf("pad: %v", p)
	}
	// Mixed dims panic without padding.
	g.Nodes[0].Feature = []float64{1, 2}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mixed dims")
		}
	}()
	g.FeatureMatrix()
}

func TestInducedSubgraphProperty(t *testing.T) {
	g := chain(5)
	g.AddEdge(0, 3, rules.EnvMatch)
	sub := g.InducedSubgraph([]int{0, 1, 3})
	if sub.N() != 3 {
		t.Fatalf("sub nodes %d", sub.N())
	}
	// Edges 0→1 and 0→3 survive (remapped), 1→2 and 3→4 don't.
	if len(sub.Edges) != 2 {
		t.Fatalf("sub edges %v", sub.Edges)
	}
	for _, e := range sub.Edges {
		if e.From >= 3 || e.To >= 3 {
			t.Fatalf("unremapped edge %v", e)
		}
	}
}

func TestConnectedAndComponent(t *testing.T) {
	g := chain(3)
	if !g.ConnectedUndirected() {
		t.Fatal("chain is connected")
	}
	g.AddNode(Node{Feature: []float64{9}})
	if g.ConnectedUndirected() {
		t.Fatal("isolated node breaks connectivity")
	}
	comp := g.ComponentOf(0)
	if len(comp) != 3 {
		t.Fatalf("component %v", comp)
	}
	if len(g.ComponentOf(3)) != 1 {
		t.Fatal("isolated component size")
	}
	empty := &Graph{}
	if !empty.ConnectedUndirected() {
		t.Fatal("empty graph is trivially connected")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := chain(2)
	g.Label = true
	g.Tags = []string{"action_loop"}
	c := g.Clone()
	c.Nodes[0].Feature[0] = 99
	c.Tags[0] = "other"
	if g.Nodes[0].Feature[0] == 99 || g.Tags[0] == "other" {
		t.Fatal("clone aliases original")
	}
	if !c.Label {
		t.Fatal("label not copied")
	}
}

func TestInDegree(t *testing.T) {
	g := chain(3)
	cl := g.TransitiveClosure()
	if cl.InDegree(0) != 0 || cl.InDegree(1) != 1 {
		t.Fatal("in-degrees wrong")
	}
	if got := cl.Out(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Out(0) = %v", got)
	}
}

func TestCachedOperatorsMatchFresh(t *testing.T) {
	g := chain(4)
	if !g.CachedNormalizedAdjacency().ToDense().Equalish(g.NormalizedAdjacency().ToDense(), 0) {
		t.Fatal("cached normalized adjacency differs")
	}
	if !g.CachedSumAdjacency(0.1).ToDense().Equalish(g.SumAdjacency(0.1).ToDense(), 0) {
		t.Fatal("cached sum adjacency differs")
	}
	if !g.CachedPadFeatures(3).Equalish(g.PadFeatures(3), 0) {
		t.Fatal("cached features differ")
	}
	// Cache returns the same object.
	if g.CachedNormalizedAdjacency() != g.CachedNormalizedAdjacency() {
		t.Fatal("cache not memoising")
	}
	// Invalidation rebuilds after mutation.
	old := g.CachedNormalizedAdjacency()
	g.AddEdge(0, 3, rules.EnvMatch)
	g.InvalidateCache()
	fresh := g.CachedNormalizedAdjacency()
	if fresh == old {
		t.Fatal("invalidation did not drop the cache")
	}
	if fresh.NNZ() == old.NNZ() {
		t.Fatal("rebuilt operator should reflect the new edge")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	g := chain(6)
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				g.CachedNormalizedAdjacency()
				g.CachedSumAdjacency(0.1)
				g.CachedPadFeatures(4)
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
