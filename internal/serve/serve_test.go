package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"fexiot/internal/drift"
	"fexiot/internal/embed"
	"fexiot/internal/explain"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
)

// fixture builds a small trained detector + drift state + labelled graphs.
func fixture(seed int64) (*gnn.Detector, *drift.Detector, []*graph.Graph) {
	enc := embed.NewEncoder(24, 32)
	pool := fusion.MultiHomePool(3, 20, 22, nil)
	b := fusion.NewBuilder(seed, enc)
	gs := make([]*graph.Graph, 16)
	for i := range gs {
		gs[i] = b.OfflineSized(pool)
	}
	m := gnn.NewGIN(fusion.WordFeatureDim(enc), 12, 8, seed+1)
	det := gnn.NewDetector(m, 3)
	det.FitClassifier(gs)
	labels := make([]int, len(gs))
	for i, g := range gs {
		if g.Label {
			labels[i] = 1
		}
	}
	drf := drift.Fit(gnn.EmbedAll(m, gs), labels)
	return det, drf, gs
}

var searchCfg = explain.DefaultSearchConfig(7)

// TestSnapshotFrozenAgainstTraining pins the deep-freeze: after the
// snapshot is taken, retraining the original model and classifier must not
// change any verdict the snapshot produces.
func TestSnapshotFrozenAgainstTraining(t *testing.T) {
	det, drf, gs := fixture(5)
	snap := NewSnapshot(1, det, drf, searchCfg)
	before := snap.DetectBatch(gs)

	// Clobber everything the snapshot was built from: fresh random weights,
	// a reversed-label classifier refit, and drift stats from junk.
	emb := gnn.EmbedAll(det.Model, gs)
	det.Model.Params().CopyFrom(det.Model.Fresh(99).Params())
	flipped := make([]int, len(gs))
	for i, g := range gs {
		if !g.Label {
			flipped[i] = 1
		}
	}
	det.Clf.Fit(emb, flipped)
	for i := range drf.Centroids {
		for j := range drf.Centroids[i] {
			drf.Centroids[i][j] += 100
		}
	}

	after := snap.DetectBatch(gs)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("snapshot verdicts changed after retraining the originals:\nbefore %+v\nafter  %+v",
			before[:2], after[:2])
	}
}

// TestSnapshotMatchesSourceBitIdentically pins publish fidelity: the
// frozen copy must score every graph exactly as the detector it was taken
// from — the "next request sees the new model bit-identically" contract.
func TestSnapshotMatchesSourceBitIdentically(t *testing.T) {
	det, drf, gs := fixture(8)
	snap := NewSnapshot(1, det, drf, searchCfg)
	for i, g := range gs {
		want := det.Clf.Score(gnn.Embed(det.Model, g))
		got := snap.Detect(g)
		if got.Score != want {
			t.Fatalf("graph %d: snapshot score %v != source score %v", i, got.Score, want)
		}
		z := gnn.Embed(det.Model, g)
		if got.DriftScore != drf.Anomaly(z) {
			t.Fatalf("graph %d: drift score diverged", i)
		}
	}
}

// TestDetectBatchMatchesSingle pins the micro-batching contract: a batched
// pass must be bit-identical to per-graph detection.
func TestDetectBatchMatchesSingle(t *testing.T) {
	det, drf, gs := fixture(11)
	snap := NewSnapshot(1, det, drf, searchCfg)
	batch := snap.DetectBatch(gs)
	for i, g := range gs {
		if single := snap.Detect(g); single != batch[i] {
			t.Fatalf("graph %d: batch verdict %+v != single %+v", i, batch[i], single)
		}
	}
}

func TestEngineNotReadyThenServes(t *testing.T) {
	det, drf, gs := fixture(13)
	e := NewEngine(Options{Workers: 2})
	defer e.Close()

	if _, _, err := e.Detect(context.Background(), gs[0]); err != ErrNotReady {
		t.Fatalf("untrained engine returned %v, want ErrNotReady", err)
	}

	snap := NewSnapshot(1, det, drf, searchCfg)
	e.Publish(snap)
	v, seq, err := e.Detect(context.Background(), gs[0])
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	if want := snap.Detect(gs[0]); v != want {
		t.Fatalf("engine verdict %+v != snapshot verdict %+v", v, want)
	}
}

func TestEngineClosedAndCancelled(t *testing.T) {
	det, drf, gs := fixture(17)
	e := NewEngine(Options{Workers: 1})
	e.Publish(NewSnapshot(1, det, drf, searchCfg))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.Detect(ctx, gs[0]); err != context.Canceled {
		t.Fatalf("cancelled request returned %v, want context.Canceled", err)
	}

	e.Close()
	if _, _, err := e.Detect(context.Background(), gs[0]); err != ErrClosed {
		t.Fatalf("closed engine returned %v, want ErrClosed", err)
	}
}

// TestSwapMidStormNeverTears is the snapshot-isolation core: a storm of
// concurrent Detects runs while a new model is published mid-flight. Every
// response must be wholly consistent with exactly one snapshot — the
// sequence number it reports must predict its score bit-exactly.
func TestSwapMidStormNeverTears(t *testing.T) {
	detA, drfA, gs := fixture(19)
	detB, drfB, _ := fixture(23) // independently trained second model
	snapA := NewSnapshot(1, detA, drfA, searchCfg)
	snapB := NewSnapshot(2, detB, drfB, searchCfg)

	g := gs[0]
	wantA := snapA.Detect(g)
	wantB := snapB.Detect(g)
	if wantA.Score == wantB.Score {
		t.Fatal("fixture models agree on the probe graph; tear detection is vacuous")
	}

	e := NewEngine(Options{Workers: 4})
	defer e.Close()
	e.Publish(snapA)

	const goroutines = 8
	const perG = 25
	var sawB sync.WaitGroup
	sawB.Add(1)
	var once sync.Once
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v, seq, err := e.Detect(context.Background(), g)
				if err != nil {
					errs <- err
					return
				}
				var want Verdict
				switch seq {
				case 1:
					want = wantA
				case 2:
					want = wantB
					once.Do(sawB.Done)
				default:
					errs <- fmt.Errorf("unknown snapshot seq %d", seq)
					return
				}
				if v != want {
					errs <- fmt.Errorf("torn verdict: seq %d returned %+v, want %+v", seq, v, want)
					return
				}
			}
		}()
	}
	// Publish the swap while the storm is in flight.
	time.Sleep(2 * time.Millisecond)
	e.Publish(snapB)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// After the swap every new request must see model B.
	if _, seq, err := e.Detect(context.Background(), g); err != nil || seq != 2 {
		t.Fatalf("post-swap request: seq %d err %v, want seq 2", seq, err)
	}
}

// TestEngineBatchingCorrectUnderLoad floods a batching engine and checks
// every verdict is bit-identical to the unbatched path, and that batches
// actually formed.
func TestEngineBatchingCorrectUnderLoad(t *testing.T) {
	det, drf, gs := fixture(29)
	snap := NewSnapshot(1, det, drf, searchCfg)
	// The queue should hold the whole storm: this test is about batching,
	// not overload. Size it generously; under -race the workers run slowly
	// enough that a legal ErrOverloaded shed is still possible, so callers
	// below back off and retry as real clients would.
	e := NewEngine(Options{Workers: 2, BatchSize: 8, BatchWindow: 5 * time.Millisecond,
		QueueDepth: 256})
	defer e.Close()
	e.Publish(snap)

	// Mixed shapes: batches must group by node count yet answer everything.
	want := make([]Verdict, len(gs))
	for i, g := range gs {
		want[i] = snap.Detect(g)
	}
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(gs))
	for r := 0; r < rounds; r++ {
		for i := range gs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var v Verdict
				var err error
				for attempt := 0; attempt < 50; attempt++ {
					v, _, err = e.Detect(context.Background(), gs[i])
					if !errors.Is(err, ErrOverloaded) {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					errs <- err
					return
				}
				if v != want[i] {
					errs <- fmt.Errorf("graph %d: batched verdict %+v != %+v", i, v, want[i])
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentExplainDeterministic runs the explanation search from many
// goroutines at once: with per-call seeded generators, every result must
// be identical (and race-free under -race).
func TestConcurrentExplainDeterministic(t *testing.T) {
	det, drf, gs := fixture(31)
	snap := NewSnapshot(1, det, drf, searchCfg)
	var probe *graph.Graph
	for _, g := range gs {
		if g.N() >= 6 {
			probe = g
			break
		}
	}
	if probe == nil {
		t.Skip("no graph large enough to explain")
	}
	want := snap.Explain(probe)
	const goroutines = 8
	results := make([]Explanation, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = snap.Explain(probe)
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("goroutine %d explanation diverged:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}

// BenchmarkServeThroughput measures request throughput against worker
// count; the acceptance bar is ≥2× req/s from 1→4 workers on multi-core
// hosts (single-core hosts see flat, not regressed, throughput).
func BenchmarkServeThroughput(b *testing.B) {
	det, drf, gs := fixture(37)
	snap := NewSnapshot(1, det, drf, searchCfg)
	g := gs[0]
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := NewEngine(Options{Workers: workers, QueueDepth: 64})
			e.Publish(snap)
			defer e.Close()
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, _, err := e.Detect(ctx, g); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			reqPerSec := float64(b.N) / b.Elapsed().Seconds()
			if !math.IsInf(reqPerSec, 0) {
				b.ReportMetric(reqPerSec, "req/s")
			}
		})
	}
}
