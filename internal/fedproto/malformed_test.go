package fedproto

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// goodLayers builds a well-formed two-layer update payload.
func goodLayers() []LayerPayload {
	return []LayerPayload{
		{Layer: 0, Names: []string{"w"}, Shapes: [][2]int{{1, 2}}, Data: [][]float64{{1, 2}}},
		{Layer: 1, Names: []string{"w"}, Shapes: [][2]int{{1, 2}}, Data: [][]float64{{3, 4}}},
	}
}

func TestValidateUpdate(t *testing.T) {
	ok := &Message{Kind: MsgUpdate, Layers: goodLayers()}
	if err := ValidateUpdate(ok, 2); err != nil {
		t.Fatalf("valid update rejected: %v", err)
	}

	cases := []struct {
		name string
		msg  *Message
	}{
		{"wrong kind", &Message{Kind: MsgHello, Layers: goodLayers()}},
		{"short layers", &Message{Kind: MsgUpdate, Layers: goodLayers()[:1]}},
		{"extra layers", &Message{Kind: MsgUpdate, Layers: append(goodLayers(),
			LayerPayload{Layer: 2, Names: []string{"w"}, Shapes: [][2]int{{1, 1}}, Data: [][]float64{{9}}})},
		},
		{"shuffled layer ids", &Message{Kind: MsgUpdate, Layers: []LayerPayload{
			goodLayers()[1], goodLayers()[0]}},
		},
		{"names/data arity mismatch", &Message{Kind: MsgUpdate, Layers: []LayerPayload{
			{Layer: 0, Names: []string{"w", "b"}, Shapes: [][2]int{{1, 2}}, Data: [][]float64{{1, 2}}},
			goodLayers()[1]}},
		},
		{"data shorter than shape", &Message{Kind: MsgUpdate, Layers: []LayerPayload{
			{Layer: 0, Names: []string{"w"}, Shapes: [][2]int{{1, 2}}, Data: [][]float64{{1}}},
			goodLayers()[1]}},
		},
		{"negative shape", &Message{Kind: MsgUpdate, Layers: []LayerPayload{
			{Layer: 0, Names: []string{"w"}, Shapes: [][2]int{{-1, -2}}, Data: [][]float64{{1, 2}}},
			goodLayers()[1]}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateUpdate(tc.msg, 2)
			if !errors.Is(err, ErrMalformedUpdate) {
				t.Fatalf("want ErrMalformedUpdate, got %v", err)
			}
		})
	}
}

// TestCheckShapesPinning verifies the cross-client layout check: the first
// valid update pins the federation's tensor layout and later updates that
// disagree are rejected by name instead of panicking the aggregation.
func TestCheckShapesPinning(t *testing.T) {
	s := NewServer(ServerConfig{NumLayers: 2})
	if err := s.checkShapes(&Message{Kind: MsgUpdate, Layers: goodLayers()}); err != nil {
		t.Fatalf("pinning update rejected: %v", err)
	}
	if err := s.checkShapes(&Message{Kind: MsgUpdate, Layers: goodLayers()}); err != nil {
		t.Fatalf("matching update rejected: %v", err)
	}
	odd := goodLayers()
	odd[1].Shapes = [][2]int{{1, 3}}
	odd[1].Data = [][]float64{{3, 4, 5}}
	if err := s.checkShapes(&Message{Kind: MsgUpdate, Layers: odd}); !errors.Is(err, ErrMalformedUpdate) {
		t.Fatalf("mismatched shapes: want ErrMalformedUpdate, got %v", err)
	}
	renamed := goodLayers()
	renamed[0].Names = []string{"v"}
	if err := s.checkShapes(&Message{Kind: MsgUpdate, Layers: renamed}); !errors.Is(err, ErrMalformedUpdate) {
		t.Fatalf("mismatched names: want ErrMalformedUpdate, got %v", err)
	}
}

// TestServerRejectsBadUpdates runs a live server against clients that ship
// malformed round updates. Every variant must surface as a named
// ErrMalformedUpdate (joined with the quorum failure) — never a panic —
// and the error must identify the offending client.
func TestServerRejectsBadUpdates(t *testing.T) {
	bad := []struct {
		name string
		msg  *Message
	}{
		{"short layers", &Message{Kind: MsgUpdate, ClientID: 1, Layers: goodLayers()[:1]}},
		{"shuffled layer ids", &Message{Kind: MsgUpdate, ClientID: 1,
			Layers: []LayerPayload{goodLayers()[1], goodLayers()[0]}}},
		{"wrong kind", &Message{Kind: MsgModel, ClientID: 1, Layers: goodLayers()}},
		{"data/shape mismatch", &Message{Kind: MsgUpdate, ClientID: 1, Layers: []LayerPayload{
			{Layer: 0, Names: []string{"w"}, Shapes: [][2]int{{1, 2}}, Data: [][]float64{{1, 2, 3}}},
			goodLayers()[1]}}},
		{"pinned-shape mismatch", &Message{Kind: MsgUpdate, ClientID: 1, Layers: []LayerPayload{
			{Layer: 0, Names: []string{"w"}, Shapes: [][2]int{{1, 3}}, Data: [][]float64{{1, 2, 3}}},
			goodLayers()[1]}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			addr := freeAddr(t)
			srv := NewServer(ServerConfig{
				Addr: addr, Clients: 2, Rounds: 1, NumLayers: 2,
				Quorum: 1, RoundTimeout: 500 * time.Millisecond,
			})
			done := make(chan error, 1)
			go func() {
				_, err := srv.Run(context.Background())
				done <- err
			}()

			good := dialHello(t, addr, 0, 10)
			defer good.Close()
			badConn := dialHello(t, addr, 1, 10)
			defer badConn.Close()

			if err := good.Send(&Message{Kind: MsgUpdate, ClientID: 0, Round: 0,
				Layers: goodLayers()}); err != nil {
				t.Fatalf("good update: %v", err)
			}
			if err := badConn.Send(tc.msg); err != nil {
				t.Fatalf("bad update: %v", err)
			}

			select {
			case err := <-done:
				if err == nil {
					t.Fatal("Run() succeeded despite a malformed update failing quorum")
				}
				if !errors.Is(err, ErrMalformedUpdate) {
					t.Fatalf("want ErrMalformedUpdate in chain, got %v", err)
				}
				if !errors.Is(err, ErrQuorumLost) {
					t.Fatalf("want ErrQuorumLost in chain, got %v", err)
				}
				if !strings.Contains(err.Error(), "client 1") && !strings.Contains(err.Error(), "client 0") {
					t.Fatalf("error does not identify a client: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Run() still blocked after 5s")
			}
		})
	}
}
