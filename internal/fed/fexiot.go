package fed

import (
	"fexiot/internal/fedproto/codec"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
)

// FexIoT is the paper's dynamic layer-wise clustering-based federated GNN
// aggregation (Algorithm 1). Each round, after local training, the server
// walks the model bottom-up: for every current client cluster it evaluates
// the Eq. (3) gate on that layer's updates; when the gate fires, the
// cluster bipartitions by cosine similarity of the layer weights and each
// half aggregates the layer separately (lines 13-17); otherwise the whole
// cluster averages the layer (line 19). The recursion then descends into
// the next layer within each (possibly split) cluster, so upper layers are
// clustered at a finer grain than lower ones — matching the observation
// that deep-model similarity decreases from the bottom up.
//
// Communication: layer-wise aggregation enables layer-wise traffic. A
// client uploads a layer only while that layer still changes materially —
// its update norm above StaleFrac times the peak update norm that client
// has ever seen on that layer; converged layers skip synchronisation. This
// self-calibrating staleness rule is the mechanism behind the ~40% cost
// saving of Fig. 7.
type FexIoT struct {
	// StaleFrac ∈ [0,1): a layer upload is skipped once its update norm
	// decays below StaleFrac·peak. Zero disables skipping.
	StaleFrac float64

	peakNorm map[[2]int]float64 // (client, layer) → max observed ‖ΔW_l‖
}

// NewFexIoT returns the algorithm with the default staleness policy.
func NewFexIoT() *FexIoT {
	return &FexIoT{StaleFrac: 0.3, peakNorm: map[[2]int]float64{}}
}

// Name identifies the algorithm.
func (*FexIoT) Name() string { return "FexIoT" }

// Run executes Algorithm 1.
func (f *FexIoT) Run(clients []*Client, cfg Config) *Result {
	res := &Result{}
	sm := newSimMetrics(cfg.Metrics)
	numLayers := clients[0].Model.Params().NumLayers()
	var finalBottom [][]int
	cdc := simCodec(cfg.Codec)
	for r := 0; r < cfg.Rounds; r++ {
		sp := obs.StartSpan(sm.roundDur)
		localTrainAll(clients, cfg.roundTrain(r))
		// Wire-codec simulation: what the server aggregates (and the norms,
		// weights and gate below see) is each client's reconstructed update,
		// not the exact local one — mirroring the networked protocol.
		var codecBytes [][]int64 // [layer][client] encoded upload bytes
		if cdc != nil {
			codecBytes = applySimCodec(clients, cdc, numLayers)
		}
		// Per-layer flattened weights and update norms.
		layerWeights := make([][][]float64, numLayers) // [layer][client]
		layerNorms := make([][]float64, numLayers)
		for l := 0; l < numLayers; l++ {
			layerWeights[l] = make([][]float64, len(clients))
			layerNorms[l] = make([]float64, len(clients))
			for i, c := range clients {
				layerWeights[l][i] = c.Model.Params().FlattenLayer(l)
				n := mat.Norm2(c.UpdateLayer(l))
				layerNorms[l][i] = n
				if f.peakNorm != nil && n > f.peakNorm[[2]int{i, l}] {
					f.peakNorm[[2]int{i, l}] = n
				}
			}
		}

		var leafClusters [][]int
		var commUp, commDown int64
		// RecursiveClusteringAgg(l, C) of Algorithm 1.
		var recurse func(l int, cluster []int)
		recurse = func(l int, cluster []int) {
			if l >= numLayers {
				leafClusters = append(leafClusters, cluster)
				return
			}
			layerElems := clients[cluster[0]].Model.Params().LayerElements(l)
			// Upload accounting: members whose layer still moves (or that
			// are being clustered) transmit it — at the codec's encoded wire
			// size when one is active. Downloads are always dense: the
			// server's models ship raw64 in the networked protocol too.
			uploads := 0
			for _, i := range cluster {
				peak := 0.0
				if f.peakNorm != nil {
					peak = f.peakNorm[[2]int{i, l}]
				}
				if f.StaleFrac == 0 || layerNorms[l][i] > f.StaleFrac*peak {
					uploads++
					if codecBytes != nil {
						commUp += codecBytes[l][i]
					}
				}
			}
			if codecBytes == nil {
				commUp += int64(uploads) * bytesFor(layerElems)
			}
			commDown += int64(uploads) * bytesFor(layerElems)

			split := false
			if len(cluster) >= 2 {
				// Eq. (3) on this layer's updates within the cluster.
				w := dataWeights(clients, cluster)
				var meanUpdate []float64
				norms := make([]float64, len(cluster))
				for k, i := range cluster {
					u := clients[i].Update().FlattenLayer(l)
					norms[k] = mat.Norm2(u)
					if meanUpdate == nil {
						meanUpdate = make([]float64, len(u))
					}
					mat.Axpy(meanUpdate, u, w[k])
				}
				split = gateFromNorms(norms, mat.Norm2(meanUpdate), cfg)
			}
			if split {
				// Lines 13-17: cosine similarity over layer weights, binary
				// clustering, per-sub-cluster aggregation of this layer.
				c1, c2 := binaryCluster(layerWeights[l], cluster)
				if len(c2) > 0 {
					f.averageLayer(clients, c1, l, cfg.Aggregator)
					f.averageLayer(clients, c2, l, cfg.Aggregator)
					recurse(l+1, c1)
					recurse(l+1, c2)
					return
				}
			}
			// Line 19: aggregate the whole cluster at this layer.
			f.averageLayer(clients, cluster, l, cfg.Aggregator)
			recurse(l+1, cluster)
		}
		recurse(0, indexRange(len(clients)))

		res.Comm.UploadBytes += commUp
		res.Comm.DownloadBytes += commDown
		info := RoundInfo{
			Round:       r,
			NumClusters: len(leafClusters),
			CommBytes:   commUp + commDown,
		}
		res.Rounds = append(res.Rounds, info)
		sp.End()
		sm.record(info)
		finalBottom = leafClusters
	}
	res.Comm.Rounds = cfg.Rounds
	res.FinalClusters = clusterAssignment(len(clients), finalBottom)
	return res
}

// simCodec resolves a Config.Codec name to a lossy codec instance, or nil
// when the dense raw64 path (including unknown names) applies.
func simCodec(name string) codec.Codec {
	cdc, err := codec.New(name)
	if err != nil || cdc.Name() == codec.Raw64 {
		return nil
	}
	return cdc
}

// applySimCodec pushes one round's updates through the wire codec: every
// client's params become prev + Decode(Encode(params − prev)) in place, so
// aggregation sees exactly what the networked server would reconstruct. It
// returns the encoded upload wire size per [layer][client] for the
// communication accounting.
func applySimCodec(clients []*Client, cdc codec.Codec, numLayers int) [][]int64 {
	bytes := make([][]int64, numLayers)
	for l := range bytes {
		bytes[l] = make([]int64, len(clients))
	}
	mat.ParallelFor(len(clients), func(i int) {
		c := clients[i]
		if c.prev == nil {
			return
		}
		p := c.Model.Params()
		for l := 0; l < numLayers; l++ {
			for _, name := range p.LayerNames(l) {
				cur := p.Get(name).Data()
				prev := c.prev.Get(name).Data()
				d := make([]float64, len(cur))
				for j := range cur {
					d[j] = cur[j] - prev[j]
				}
				t := cdc.Encode(d)
				bytes[l][i] += t.WireBytes()
				dec, err := cdc.Decode(t)
				if err != nil {
					// Self-encoded frames only fail on non-finite updates;
					// leave those params as-is for the gate to handle.
					continue
				}
				for j := range cur {
					cur[j] = prev[j] + dec[j]
				}
			}
		}
	})
	return bytes
}

// averageLayer replaces layer l of every cluster member with the cluster's
// aggregate of that layer (data-weighted mean under FedAvg, a robust
// combination under the alternatives).
func (f *FexIoT) averageLayer(clients []*Client, cluster []int, l int, agg Aggregator) {
	if len(cluster) == 0 {
		return
	}
	avg := clients[cluster[0]].Model.Params().Clone()
	AggregateParamsLayer(aggregatorOr(agg), avg, paramsOf(clients, cluster),
		dataWeights(clients, cluster), l)
	for _, i := range cluster {
		clients[i].Model.Params().CopyLayerFrom(avg, l)
	}
}
