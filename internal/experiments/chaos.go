package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/embed"
	"fexiot/internal/fedproto"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
)

// ChaosFederation demonstrates the fault-tolerant networked federation:
// four real GNN clients train over loopback TCP, one is hard-killed
// mid-federation through the fault-injection conn, and the run reports how
// the quorum rounds, eviction and rejoin machinery absorbed it. This is
// the availability counterpart of the accuracy experiments: the paper's
// federation assumes every household stays online, while testbed studies
// (Shen & Xue; FedIoT) report churn as the dominant failure mode.
func ChaosFederation(s Setup) *Table {
	const (
		clients = 4
		rounds  = 4
		quorum  = 0.75
		victim  = 3
	)

	enc := embed.NewEncoder(16, 24)
	pool := fusion.MultiHomePool(s.Seed+2, 20, 15, nil)
	b := fusion.NewBuilder(s.Seed+3, enc)
	// The Builder memoises internally and is not safe for concurrent use;
	// build every client's dataset up front.
	datasets := make([][]*graph.Graph, clients)
	for i := range datasets {
		datasets[i] = make([]*graph.Graph, 16)
		for k := range datasets[i] {
			datasets[i][k] = b.OfflineSized(pool)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t := &Table{Title: "Chaos: quorum federation under fault injection",
			Header: []string{"error", "detail"}}
		t.Add("listen", err.Error())
		return t
	}
	addr := ln.Addr().String()
	ln.Close()

	dim := fusion.WordFeatureDim(enc)
	base := gnn.NewGIN(dim, 8, 4, 100)
	srv := fedproto.NewServer(fedproto.ServerConfig{
		Addr:         addr,
		Clients:      clients,
		Rounds:       rounds,
		Eps1:         s.Eps1,
		Eps2:         s.Eps2,
		NumLayers:    base.Params().NumLayers(),
		RoundTimeout: 10 * time.Second,
		Quorum:       quorum,
		MaxStrikes:   1,
		Metrics:      s.Metrics,
	})
	var serverBytes int64
	var serverErr error
	serverDone := make(chan struct{})
	go func() {
		serverBytes, serverErr = srv.Run(context.Background())
		close(serverDone)
	}()

	sessions := make([]fedproto.SessionStats, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := base.Fresh(int64(id))
			m.Params().CopyFrom(base.Params())
			data := datasets[id]
			opt := autodiff.NewAdam(0.005)
			cfg := gnn.DefaultTrainConfig(int64(id))
			cfg.PairsPerEpoch = 8

			var fc *fedproto.FaultConn
			dials := 0
			killed := false
			clientCfg := fedproto.ClientConfig{
				Addr: addr, ID: id, DataSize: len(data),
				InitialBackoff: 5 * time.Millisecond,
				MaxBackoff:     50 * time.Millisecond,
				MaxAttempts:    20,
				OpTimeout:      30 * time.Second,
				Seed:           int64(id),
			}
			if id == victim {
				clientCfg.Dial = func(addr string) (net.Conn, error) {
					raw, err := net.Dial("tcp", addr)
					if err != nil {
						return nil, err
					}
					dials++
					if dials == 1 {
						fc = fedproto.NewFaultConn(raw)
						return fc, nil
					}
					return raw, nil
				}
			}
			sessions[id], errs[id] = fedproto.RunClientSession(context.Background(), clientCfg, m.Params(),
				func(round int) map[int]float64 {
					if id == victim && round >= 1 && !killed {
						killed = true
						fc.Kill() // crash the household mid-federation
					}
					before := m.Params().Clone()
					cfg.Seed = int64(id*100 + round)
					gnn.TrainContrastive(m, data, cfg, opt)
					return fedproto.LayerNorms(before, m.Params())
				})
		}(id)
	}
	wg.Wait()
	<-serverDone

	st := srv.Stats()
	t := &Table{Title: "Chaos: quorum federation under fault injection",
		Header: []string{"setting", "value"}}
	t.Add("clients", fmt.Sprintf("%d", clients))
	t.Add("rounds configured", fmt.Sprintf("%d", rounds))
	t.Add("quorum", fmt.Sprintf("%.2f", quorum))
	t.Add("fault", fmt.Sprintf("client %d hard-killed at round 1", victim))
	if serverErr != nil {
		t.Add("server", "FAILED: "+serverErr.Error())
	} else {
		t.Add("server", "completed")
	}
	t.Add("rounds completed", fmt.Sprintf("%d", st.RoundsCompleted))
	t.Add("responders/round", fmt.Sprint(st.Responders))
	t.Add("evicted", fmt.Sprintf("%d", st.Evicted))
	t.Add("rejoined", fmt.Sprintf("%d", st.Rejoined))
	if errs[victim] == nil {
		t.Add("victim session", fmt.Sprintf("recovered (%d reconnects)", sessions[victim].Reconnects))
	} else {
		t.Add("victim session", "gave up: "+errs[victim].Error())
	}
	t.Add("bytes transferred", fmt.Sprintf("%d", serverBytes))
	return t
}
