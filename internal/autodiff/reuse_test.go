package autodiff

import (
	"math"
	"testing"

	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// reuseParams builds a small two-layer parameter set.
func reuseParams(seed int64) *ParamSet {
	r := rng.New(seed)
	p := NewParamSet()
	p.Register("w1", 0, r.Glorot(6, 8))
	p.Register("b1", 0, mat.NewDense(1, 8))
	p.Register("w2", 1, r.Glorot(8, 4))
	p.Register("b2", 1, mat.NewDense(1, 4))
	return p
}

// reuseForward runs a small MLP-shaped pass: matmul, broadcast bias, ReLU,
// matmul, bias, softmax CE — all the hot ops of the real models.
func reuseForward(t *Tape, b *Binder, x *mat.Dense, labels []int) *Node {
	h := t.MatMul(t.Constant(x), b.Node("w1"))
	h = t.AddRowBroadcast(h, b.Node("b1"))
	h = t.ReLU(h)
	h = t.MatMul(h, b.Node("w2"))
	h = t.AddRowBroadcast(h, b.Node("b2"))
	return t.SoftmaxCrossEntropy(h, labels, nil)
}

// TestTapeReuseMatchesFreshTape pins the arena's bit-identity contract: a
// pass on a many-times-recycled tape must produce exactly the same loss and
// gradients as the same pass on a brand-new tape.
func TestTapeReuseMatchesFreshTape(t *testing.T) {
	params := reuseParams(3)
	r := rng.New(17)
	x := r.Gaussian(5, 6, 1)
	labels := []int{0, 1, 2, 3, 0}

	// Reference: fresh tape per pass.
	freshLoss := func() (float64, map[string]*mat.Dense) {
		tape := NewTape()
		b := Bind(tape, params)
		loss := reuseForward(tape, b, x, labels)
		tape.Backward(loss)
		return loss.Value.At(0, 0), b.Grads()
	}
	wantLoss, wantGrads := freshLoss()

	// Candidate: one tape recycled through many passes (with varying-shape
	// interleaved passes to churn the arena's size classes).
	tape := NewTape()
	b := Bind(tape, params)
	other := r.Gaussian(9, 6, 1)
	otherLabels := []int{1, 0, 3, 2, 1, 0, 0, 2, 3}
	for i := 0; i < 50; i++ {
		tape.Reset()
		b.Rebind(tape, params)
		if i%3 == 2 {
			loss := reuseForward(tape, b, other, otherLabels)
			tape.Backward(loss)
			continue
		}
		loss := reuseForward(tape, b, x, labels)
		tape.Backward(loss)
		if got := loss.Value.At(0, 0); math.Float64bits(got) != math.Float64bits(wantLoss) {
			t.Fatalf("pass %d: recycled-tape loss %v != fresh-tape loss %v", i, got, wantLoss)
		}
		for name, want := range wantGrads {
			got := b.Grads()[name]
			for j, wv := range want.Data() {
				if math.Float64bits(got.Data()[j]) != math.Float64bits(wv) {
					t.Fatalf("pass %d: grad %q[%d] = %v != %v", i, name, j, got.Data()[j], wv)
				}
			}
		}
	}
}

// TestGradBufferReuseAcrossPasses verifies ensureGrad actually recycles: on
// a warmed tape, a parameter's gradient matrix must reuse arena backing
// rather than allocate, which shows up as a stable steady-state arena miss
// count.
func TestGradBufferReuseAcrossPasses(t *testing.T) {
	params := reuseParams(5)
	x := rng.New(7).Gaussian(5, 6, 1)
	labels := []int{0, 1, 2, 3, 0}
	tape := NewTape()
	b := Bind(tape, params)
	for i := 0; i < 5; i++ { // warm every size class
		tape.Reset()
		b.Rebind(tape, params)
		tape.Backward(reuseForward(tape, b, x, labels))
	}
	before := tape.ArenaStats()
	for i := 0; i < 20; i++ {
		tape.Reset()
		b.Rebind(tape, params)
		tape.Backward(reuseForward(tape, b, x, labels))
	}
	after := tape.ArenaStats()
	if after.Misses != before.Misses {
		t.Fatalf("steady-state passes still miss the arena: %d -> %d misses",
			before.Misses, after.Misses)
	}
	if after.Hits == before.Hits {
		t.Fatalf("steady-state passes never hit the arena (hits stuck at %d)", after.Hits)
	}
}

// TestTapeSteadyStateZeroAlloc pins the tentpole number at the tape layer:
// once warm, forward+backward+Reset runs without heap allocation.
func TestTapeSteadyStateZeroAlloc(t *testing.T) {
	old := mat.Parallelism()
	mat.SetParallelism(1)
	defer mat.SetParallelism(old)
	params := reuseParams(9)
	x := rng.New(11).Gaussian(5, 6, 1)
	labels := []int{0, 1, 2, 3, 0}
	tape := NewTape()
	b := Bind(tape, params)
	step := func() {
		tape.Reset()
		b.Rebind(tape, params)
		tape.Backward(reuseForward(tape, b, x, labels))
	}
	for i := 0; i < 8; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(50, step); avg > 0 {
		t.Fatalf("steady-state forward+backward+Reset allocates %.1f/op, want 0", avg)
	}
}

// TestDetachSurvivesReset pins the escape hatch: a detached value must keep
// its contents after the tape is recycled and its buffers are reused by a
// different pass.
func TestDetachSurvivesReset(t *testing.T) {
	params := reuseParams(13)
	x := rng.New(19).Gaussian(5, 6, 1)
	tape := NewTape()
	b := Bind(tape, params)
	h := tape.ReLU(tape.MatMul(tape.Constant(x), b.Node("w1")))
	kept := h.Detach()
	want := append([]float64(nil), kept.Data()...)

	// Churn the tape hard: the detached backing must never be handed out.
	for i := 0; i < 30; i++ {
		tape.Reset()
		b.Rebind(tape, params)
		tape.Backward(reuseForward(tape, b, x, []int{0, 1, 2, 3, 0}))
	}
	for i, v := range kept.Data() {
		if math.Float64bits(v) != math.Float64bits(want[i]) {
			t.Fatalf("detached value[%d] corrupted after Reset churn: %v != %v", i, v, want[i])
		}
	}

	// CloneOut must copy, not alias: mutating the clone leaves the node
	// untouched and vice versa.
	tape.Reset()
	b.Rebind(tape, params)
	h = tape.ReLU(tape.MatMul(tape.Constant(x), b.Node("w1")))
	clone := h.CloneOut()
	clone.Set(0, 0, 12345)
	if h.Value.At(0, 0) == 12345 {
		t.Fatal("CloneOut aliases the node's backing")
	}
}

// TestDetachOnLeafReturnsValue pins that detaching a parameter or constant
// (caller-owned memory) is the identity, not a copy.
func TestDetachOnLeafReturnsValue(t *testing.T) {
	tape := NewTape()
	x := mat.NewDense(2, 2)
	n := tape.Constant(x)
	if n.Detach() != x {
		t.Fatal("Detach on a leaf should return the caller-owned matrix itself")
	}
}
