// Command fexgen generates synthetic smart-home corpora: rule sets, event
// logs and labelled interaction-graph datasets, printed as human-readable
// text or JSON.
//
// Usage:
//
//	fexgen -what rules -n 20 -archetype security
//	fexgen -what log -n 2000
//	fexgen -what graphs -n 50 -json
//	fexgen -what stats            # Table I style statistics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fexiot/internal/datasets"
	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/fusion"
	"fexiot/internal/rules"
)

func main() {
	what := flag.String("what", "rules", "rules | log | graphs | stats")
	n := flag.Int("n", 10, "how many rules/steps/graphs")
	archetype := flag.String("archetype", "security", "household archetype")
	seed := flag.Int64("seed", 1, "random seed")
	asJSON := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	switch *what {
	case "rules":
		gen := pickGenerator(*archetype, *seed)
		rs := gen.RuleSet(*n)
		if *asJSON {
			emitJSON(rs)
			return
		}
		for _, r := range rs {
			fmt.Printf("%-22s %s\n", "["+r.Platform.String()+"]", r.Description)
		}
	case "log":
		gen := pickGenerator(*archetype, *seed)
		deployed := gen.RuleSet(14)
		raw := eventlog.NewSimulator(deployed, *seed).Run(int64(*n))
		cleaned := eventlog.Clean(raw)
		fmt.Printf("# %d raw events, %d after cleaning\n", len(raw), len(cleaned))
		for _, e := range cleaned {
			fmt.Println(e)
		}
	case "graphs":
		enc := embed.NewEncoder(48, 64)
		pool := fusion.MultiHomePool(*seed, 60, 25, nil)
		b := fusion.NewBuilder(*seed+1, enc)
		type graphOut struct {
			ID    string   `json:"id"`
			Nodes int      `json:"nodes"`
			Edges int      `json:"edges"`
			Label bool     `json:"vulnerable"`
			Tags  []string `json:"tags,omitempty"`
			Rules []string `json:"rules,omitempty"`
		}
		var out []graphOut
		for i := 0; i < *n; i++ {
			g := b.OfflineSized(pool)
			item := graphOut{ID: g.ID, Nodes: g.N(), Edges: len(g.Edges),
				Label: g.Label, Tags: g.Tags}
			if *asJSON {
				for _, node := range g.Nodes {
					item.Rules = append(item.Rules, node.Rule.Description)
				}
			}
			out = append(out, item)
		}
		if *asJSON {
			emitJSON(out)
			return
		}
		for _, g := range out {
			fmt.Printf("%-6s nodes=%-3d edges=%-3d vulnerable=%-5v %v\n",
				g.ID, g.Nodes, g.Edges, g.Label, g.Tags)
		}
	case "stats":
		sc := datasets.Active()
		fmt.Printf("scale: %s\n", sc.Name)
		d := datasets.BuildIFTTT(sc, *seed)
		min, max := d.NodeRange()
		fmt.Printf("IFTTT:  labeled=%d vulnerable=%d unlabeled=%d nodes=%d-%d\n",
			len(d.Labeled), d.Vulnerable(), len(d.Unlabeled), min, max)
		h := datasets.BuildHetero(sc, *seed+100)
		min, max = h.NodeRange()
		fmt.Printf("Hetero: labeled=%d vulnerable=%d unlabeled=%d nodes=%d-%d\n",
			len(h.Labeled), h.Vulnerable(), len(h.Unlabeled), min, max)
	default:
		fmt.Fprintf(os.Stderr, "unknown -what %q\n", *what)
		os.Exit(1)
	}
}

func pickGenerator(archetype string, seed int64) *rules.Generator {
	for _, a := range rules.Archetypes() {
		if a.Name == archetype {
			return rules.NewGenerator(seed, a, archetype+"-")
		}
	}
	fmt.Fprintf(os.Stderr, "unknown archetype %q; using %q\n",
		archetype, rules.Archetypes()[0].Name)
	return rules.NewGenerator(seed, rules.Archetypes()[0], "home-")
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "json:", err)
		os.Exit(1)
	}
}
