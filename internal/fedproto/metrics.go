package fedproto

import (
	"fexiot/internal/fed"
	"fexiot/internal/obs"
)

// serverMetrics are the nil-gated observability handles of the aggregation
// server. NewServer resolves them once from ServerConfig.Metrics; with a
// nil registry every handle is nil and each instrumentation call in the
// round loop collapses to a nil check.
type serverMetrics struct {
	roundDur   *obs.Histogram  // fexiot_round_duration_seconds
	responders *obs.Gauge      // fexiot_round_responders
	rounds     *obs.Counter    // fexiot_rounds_completed_total
	evicted    *obs.Counter    // fexiot_clients_evicted_total
	rejoined   *obs.Counter    // fexiot_clients_rejoined_total
	strikes    *obs.Counter    // fexiot_client_strikes_total
	live       *obs.Gauge      // fexiot_clients_live
	bytesIn    *obs.Counter    // fexiot_bytes_received_total
	bytesOut   *obs.Counter    // fexiot_bytes_sent_total
	rejected   *obs.Counter    // fexiot_updates_rejected_total
	quorumLost *obs.Counter    // fexiot_quorum_lost_total
	ckptDur    *obs.Histogram  // fexiot_checkpoint_duration_seconds
	aggDur     *obs.Histogram  // fexiot_aggregate_duration_seconds{rule=...}
	updEnc     *obs.CounterVec // fexiot_update_encoded_bytes_total{codec=...}
	updRaw     *obs.Counter    // fexiot_update_raw_bytes_total
	ratio      *obs.Histogram  // fexiot_update_compression_ratio
}

// newServerMetrics resolves the handle set against r for the configured
// aggregation rule (the per-aggregator label on aggregation time).
func newServerMetrics(r *obs.Registry, agg fed.Aggregator) serverMetrics {
	rule := "fedavg"
	if agg != nil {
		rule = agg.Name()
	}
	return serverMetrics{
		roundDur: r.Histogram("fexiot_round_duration_seconds",
			"wall time of one federated round: collection, aggregation, checkpoint and replies", nil),
		responders: r.Gauge("fexiot_round_responders",
			"clients whose valid update made it into the most recent closed round"),
		rounds: r.Counter("fexiot_rounds_completed_total",
			"federated rounds closed at or above quorum"),
		evicted: r.Counter("fexiot_clients_evicted_total",
			"clients evicted for silence past the strike budget or broken streams"),
		rejoined: r.Counter("fexiot_clients_rejoined_total",
			"clients re-admitted mid-federation on a fresh connection"),
		strikes: r.Counter("fexiot_client_strikes_total",
			"round-collection timeouts charged to silent clients"),
		live: r.Gauge("fexiot_clients_live",
			"admitted, non-evicted clients"),
		bytesIn: r.Counter("fexiot_bytes_received_total",
			"bytes received from clients across all connections"),
		bytesOut: r.Counter("fexiot_bytes_sent_total",
			"bytes sent to clients across all connections"),
		rejected: r.Counter("fexiot_updates_rejected_total",
			"client updates dropped in collection: timeouts, stream errors, malformed or non-finite payloads"),
		quorumLost: r.Counter("fexiot_quorum_lost_total",
			"rounds that closed below quorum and failed the federation"),
		ckptDur: r.Histogram("fexiot_checkpoint_duration_seconds",
			"wall time of one durable checkpoint write (encode, fsync, rename)", nil),
		aggDur: r.HistogramVec("fexiot_aggregate_duration_seconds",
			"wall time of one round's layer-wise clustering aggregation", nil, "rule").With(rule),
		updEnc: r.CounterVec("fexiot_update_encoded_bytes_total",
			"wire bytes of accepted client updates, by codec scheme", "codec"),
		updRaw: r.Counter("fexiot_update_raw_bytes_total",
			"dense raw64-equivalent bytes of accepted client updates"),
		ratio: r.Histogram("fexiot_update_compression_ratio",
			"per-update raw64-equivalent bytes over wire bytes",
			[]float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}),
	}
}
