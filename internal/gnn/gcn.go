package gnn

import (
	"fmt"

	"fexiot/internal/autodiff"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/rng"
)

// GCN is a graph convolutional network with three convolution layers (the
// configuration the paper adopts) and mean readout:
//
//	H_{l+1} = ReLU(Â · H_l · W_l),   z = mean_rows(H_L) · W_out
type GCN struct {
	InputDim  int
	HiddenDim int
	OutDim    int
	NumConv   int

	params *autodiff.ParamSet
}

// NewGCN builds a GCN with Glorot-initialised weights.
func NewGCN(inputDim, hiddenDim, outDim int, seed int64) *GCN {
	m := &GCN{InputDim: inputDim, HiddenDim: hiddenDim, OutDim: outDim, NumConv: 3}
	r := rng.New(seed)
	p := autodiff.NewParamSet()
	in := inputDim
	for l := 0; l < m.NumConv; l++ {
		p.Register(fmt.Sprintf("conv%d.w", l), l, r.Glorot(in, hiddenDim))
		p.Register(fmt.Sprintf("conv%d.b", l), l, mat.NewDense(1, hiddenDim))
		in = hiddenDim
	}
	p.Register("out.w", m.NumConv, r.Glorot(2*hiddenDim, outDim))
	m.params = p
	return m
}

// Params returns the weight set.
func (m *GCN) Params() *autodiff.ParamSet { return m.params }

// EmbedDim returns the embedding width.
func (m *GCN) EmbedDim() int { return m.OutDim }

// Fresh returns a new GCN with the same shape.
func (m *GCN) Fresh(seed int64) Model {
	return NewGCN(m.InputDim, m.HiddenDim, m.OutDim, seed)
}

// Forward builds the embedding computation for one graph.
func (m *GCN) Forward(t *autodiff.Tape, b *autodiff.Binder, g *graph.Graph) *autodiff.Node {
	adj := g.CachedNormalizedAdjacency()
	h := t.Constant(g.CachedPadFeatures(m.InputDim))
	for l := 0; l < m.NumConv; l++ {
		h = t.SpMM(adj, h)
		h = t.MatMul(h, b.Node(fmt.Sprintf("conv%d.w", l)))
		h = t.AddRowBroadcast(h, b.Node(fmt.Sprintf("conv%d.b", l)))
		h = t.ReLU(h)
	}
	pooled := t.ConcatCols(t.MeanRows(h), t.MaxRows(h))
	return t.MatMul(pooled, b.Node("out.w"))
}
