// Package fed implements the federated learning layer of FexIoT: the client
// and server roles, the paper's dynamic layer-wise clustering-based
// aggregation (Algorithm 1), the comparison baselines of Fig. 4 (FedAvg,
// FMTL, GCFL+ and isolated per-client training), the Dirichlet non-i.i.d.
// data splitter of the evaluation, and communication-cost accounting for
// Fig. 7.
package fed

import (
	"fexiot/internal/autodiff"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/ml"
	"fexiot/internal/obs"
)

// Client is one household participating in federated training. It owns a
// local graph dataset, a local copy of the representation model with its
// optimiser state, and the local linear classification head of §III-B1.
type Client struct {
	ID    int
	Model gnn.Model
	Train []*graph.Graph
	Opt   *autodiff.Adam

	// prev snapshots the weights before the most recent local training, so
	// the server can inspect update directions ΔW.
	prev *autodiff.ParamSet
	// dp, when set, privatises every update before the server sees it
	// (installed by PrivateAlgorithm).
	dp *DPConfig
	// byz, when set, corrupts every update before the server sees it
	// (installed by MakeByzantine) — the simulated attacker of the
	// robustness evaluation.
	byz Attack
}

// NewClient builds a client around a fresh model instance.
func NewClient(id int, model gnn.Model, train []*graph.Graph, lr float64) *Client {
	return &Client{ID: id, Model: model, Train: train, Opt: autodiff.NewAdam(lr)}
}

// NewClients spawns one client per dataset, all starting from the weights
// of base — federated averaging only makes sense from a common
// initialisation.
func NewClients(base gnn.Model, datasets [][]*graph.Graph, lr float64) []*Client {
	out := make([]*Client, len(datasets))
	for i, ds := range datasets {
		m := base.Fresh(int64(i))
		m.Params().CopyFrom(base.Params())
		out[i] = NewClient(i, m, ds, lr)
	}
	return out
}

// localTrainAll runs one round of local training on every client in
// parallel (clients are independent during the local phase), bounded by
// the shared mat parallelism knob (FEXIOT_PROCS / mat.SetParallelism).
func localTrainAll(clients []*Client, cfg gnn.TrainConfig) {
	mat.ParallelFor(len(clients), func(i int) {
		clients[i].LocalTrain(cfg)
	})
}

// LocalTrain runs one round of local contrastive training (line 3 of
// Algorithm 1) and records the update.
func (c *Client) LocalTrain(cfg gnn.TrainConfig) {
	c.prev = c.Model.Params().Clone()
	cfg.Seed = cfg.Seed*1000003 + int64(c.ID)
	gnn.TrainContrastive(c.Model, c.Train, cfg, c.Opt)
	if c.dp != nil {
		c.Privatize(*c.dp)
	}
	if c.byz != nil {
		c.byz.Corrupt(c)
	}
}

// Update returns ΔW = W_after − W_before of the latest local training.
func (c *Client) Update() *autodiff.ParamSet {
	if c.prev == nil {
		return c.Model.Params().Clone()
	}
	return c.Model.Params().Sub(c.prev)
}

// UpdateLayer returns the flattened layer-l slice of the latest update.
func (c *Client) UpdateLayer(l int) []float64 {
	return c.Update().FlattenLayer(l)
}

// FitLocalClassifier trains the client's SGD head on local embeddings and
// returns the resulting detector.
func (c *Client) FitLocalClassifier(seed int64) *gnn.Detector {
	d := gnn.NewDetector(c.Model, seed)
	d.FitClassifier(c.Train)
	return d
}

// EvaluateClient trains the local head and evaluates on test graphs.
func EvaluateClient(c *Client, test []*graph.Graph, seed int64) ml.Metrics {
	d := c.FitLocalClassifier(seed)
	return gnn.EvaluateDetector(d, test)
}

// CommStats tracks transferred bytes during federated training.
type CommStats struct {
	UploadBytes   int64
	DownloadBytes int64
	Rounds        int
}

// Total returns upload + download bytes.
func (s *CommStats) Total() int64 { return s.UploadBytes + s.DownloadBytes }

// bytesFor counts the wire size of n float64 parameters.
func bytesFor(nParams int) int64 { return int64(nParams) * 8 }

// RoundInfo captures per-round diagnostics for convergence plots.
type RoundInfo struct {
	Round       int
	NumClusters int
	CommBytes   int64
}

// Result is the outcome of a federated training run.
type Result struct {
	Comm   CommStats
	Rounds []RoundInfo
	// FinalClusters maps client index → cluster id at the bottom layer
	// (diagnostic; -1 when the algorithm does not cluster).
	FinalClusters []int
}

// Algorithm is a federated training strategy over a fixed client
// population.
type Algorithm interface {
	Name() string
	// Run trains the clients in place for cfg.Rounds rounds.
	Run(clients []*Client, cfg Config) *Result
}

// Config holds shared federated training settings.
type Config struct {
	Rounds int
	Train  gnn.TrainConfig
	// Eps1 and Eps2 are the thresholds ε1, ε2 of Eq. (3) gating the
	// clustering decision.
	Eps1, Eps2 float64
	Seed       int64
	// Aggregator combines client models each round. Nil selects the classic
	// FedAvg weighted mean; the robust alternatives (trimmed mean, median,
	// norm-clipped mean, Krum) bound the damage Byzantine clients can do.
	Aggregator Aggregator
	// Metrics, when non-nil, receives simulator telemetry (per-round
	// communication bytes, cluster counts, round durations) and is
	// propagated into every client's local training config. Nil keeps the
	// simulator on the zero-overhead path.
	Metrics *obs.Registry
	// Codec simulates the wire update codec of the networked protocol
	// ("raw64", "f32", "q8", "topk"; empty = raw64): each round every
	// client's update is replaced by its encode→decode reconstruction —
	// exactly what the server would aggregate — and upload accounting uses
	// the encoded wire size instead of dense float64 bytes. Unknown names
	// fall back to raw64 (the facade validates before running).
	Codec string
}

// roundTrain derives round r's local training config: the round-keyed seed
// plus the federation's observability registry.
func (c Config) roundTrain(r int) gnn.TrainConfig {
	t := c.Train
	t.Seed = c.Seed + int64(r)
	t.Metrics = c.Metrics
	return t
}

// simMetrics are the nil-gated telemetry handles of the in-process
// federated simulator.
type simMetrics struct {
	rounds   *obs.Counter   // fexiot_sim_rounds_total
	comm     *obs.Counter   // fexiot_sim_comm_bytes_total
	clusters *obs.Gauge     // fexiot_sim_clusters
	roundDur *obs.Histogram // fexiot_sim_round_duration_seconds
}

// newSimMetrics resolves the handles; a nil registry yields nil handles and
// every telemetry call collapses to a nil check.
func newSimMetrics(r *obs.Registry) simMetrics {
	return simMetrics{
		rounds:   r.Counter("fexiot_sim_rounds_total", "federated simulator rounds completed"),
		comm:     r.Counter("fexiot_sim_comm_bytes_total", "simulated federation communication cost (upload + download bytes)"),
		clusters: r.Gauge("fexiot_sim_clusters", "client clusters at the bottom layer after the most recent round"),
		roundDur: r.Histogram("fexiot_sim_round_duration_seconds", "wall time of one simulated federated round (local training + aggregation)", nil),
	}
}

// record logs one closed simulator round.
func (m simMetrics) record(info RoundInfo) {
	m.rounds.Inc()
	m.comm.Add(info.CommBytes)
	m.clusters.Set(float64(info.NumClusters))
}

// DefaultConfig mirrors the paper's settings (ε1 = 1.2, ε2 = 0.8, Adam with
// lr 0.001 — §IV-C).
func DefaultConfig(seed int64) Config {
	return Config{
		Rounds: 20,
		Train:  gnn.DefaultTrainConfig(seed),
		// Relative reinterpretation of the paper's ε1=1.2, ε2=0.8 (§IV-C):
		// split when the aggregated update direction is much smaller than
		// the average individual update while someone still moves.
		Eps1: 0.4,
		Eps2: 0.95,
		Seed: seed,
	}
}

// QuorumWeights returns the FedAvg weights |G_i|/Σ|G| over the idx subset
// of sizes; a zero total degrades to uniform weights. It is the single
// weighting rule shared by the in-process simulator and the networked
// fedproto server, so quorum rounds that aggregate only the surviving
// subset of clients weight them exactly as the simulation would.
func QuorumWeights(sizes []int, idx []int) []float64 {
	total := 0
	for _, i := range idx {
		total += sizes[i]
	}
	w := make([]float64, len(idx))
	for k, i := range idx {
		if total == 0 {
			w[k] = 1 / float64(len(idx))
		} else {
			w[k] = float64(sizes[i]) / float64(total)
		}
	}
	return w
}

// dataWeights returns the FedAvg weights |G_c|/|G| over a client subset.
func dataWeights(clients []*Client, idx []int) []float64 {
	sizes := make([]int, len(clients))
	for _, i := range idx {
		sizes[i] = len(clients[i].Train)
	}
	return QuorumWeights(sizes, idx)
}

// paramsOf collects the parameter sets of a client subset.
func paramsOf(clients []*Client, idx []int) []*autodiff.ParamSet {
	out := make([]*autodiff.ParamSet, len(idx))
	for k, i := range idx {
		out[k] = clients[i].Model.Params()
	}
	return out
}
