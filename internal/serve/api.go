package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strings"
)

// The /v1 surface speaks one error vocabulary: every endpoint — detect,
// explain, status, streams — maps its failures through ErrorStatus onto
// exactly one of these codes, and every error body is the same
// ErrorEnvelope. Handlers never invent their own status mapping; they wrap
// a sentinel (or let an engine error propagate) and call WriteError.
const (
	CodeOverloaded       = "overloaded"
	CodeNotReady         = "not_ready"
	CodeDeadline         = "deadline"
	CodeBadRequest       = "bad_request"
	CodeTooLarge         = "too_large"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeUnsupportedMedia = "unsupported_media_type"
	CodeInternal         = "internal"
)

// Sentinel errors of the HTTP surface. Handlers wrap them with context
// (fmt.Errorf("%w: …")) so ErrorStatus can classify by errors.Is while the
// message stays specific.
var (
	// ErrBadRequest reports a request the server understood transport-wise
	// but cannot act on: malformed JSON, an empty rule set, an event batch
	// that parses to nothing.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrTooLarge reports a request body over the configured cap.
	ErrTooLarge = errors.New("serve: request body too large")
	// ErrNotFound reports an unknown /v1 path or an unknown resource id
	// (a closed or never-created stream session).
	ErrNotFound = errors.New("serve: not found")
	// ErrMethodNotAllowed reports a known path hit with the wrong verb.
	ErrMethodNotAllowed = errors.New("serve: method not allowed")
	// ErrUnsupportedMedia reports a body-carrying request without an
	// acceptable Content-Type.
	ErrUnsupportedMedia = errors.New("serve: unsupported media type")
)

// APIError is the structured error object inside ErrorEnvelope.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the error body of every /v1 endpoint:
//
//	{"error":{"code":"overloaded","message":"…"},"error_string":"…"}
//
// error_string mirrors error.message for clients of the pre-envelope
// surface, which read a flat string from the error field; it is deprecated
// and will be dropped one release after the envelope landed. (JSON cannot
// carry both the object and the legacy string under the one "error" key,
// so the flat mirror lives at error_string.)
type ErrorEnvelope struct {
	Err    APIError `json:"error"`
	Legacy string   `json:"error_string"`
}

// Envelope builds the ErrorEnvelope for err using the shared mapping.
func Envelope(err error) ErrorEnvelope {
	_, code := ErrorStatus(err)
	return ErrorEnvelope{
		Err:    APIError{Code: code, Message: err.Error()},
		Legacy: err.Error(),
	}
}

// ErrorStatus is the single sentinel-error→(HTTP status, code) mapping of
// the /v1 surface. Every handler — engine endpoints, status, streams —
// routes its errors through here, so a given failure always produces the
// same status and code no matter which endpoint surfaced it.
func ErrorStatus(err error) (int, string) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, CodeOverloaded
	case errors.Is(err, ErrNotReady), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, CodeNotReady
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, CodeDeadline
	case errors.Is(err, ErrTooLarge), errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, CodeTooLarge
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, CodeBadRequest
	case errors.Is(err, ErrMethodNotAllowed):
		return http.StatusMethodNotAllowed, CodeMethodNotAllowed
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, ErrUnsupportedMedia):
		return http.StatusUnsupportedMediaType, CodeUnsupportedMedia
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// WriteJSON writes one complete JSON response. The body is marshalled
// before any byte reaches the wire: a marshalling failure degrades into a
// well-formed internal-error envelope instead of a 200 header followed by
// truncated JSON (the failure mode of encoding straight into the
// ResponseWriter). Every response carries X-Content-Type-Options: nosniff.
// The returned error is the network write error, if any — by then the
// status line is out, so callers can only count it.
func WriteJSON(w http.ResponseWriter, status int, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		status = http.StatusInternalServerError
		buf, _ = json.Marshal(Envelope(fmt.Errorf("encoding response: %v", err)))
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_, werr := w.Write(append(buf, '\n'))
	return werr
}

// WriteError maps err through ErrorStatus and writes the envelope. An
// overloaded error carries Retry-After: 1 so callers back off instead of
// hammering a saturated queue.
func WriteError(w http.ResponseWriter, err error) error {
	status, code := ErrorStatus(err)
	if code == CodeOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	return WriteJSON(w, status, ErrorEnvelope{
		Err:    APIError{Code: code, Message: err.Error()},
		Legacy: err.Error(),
	})
}

// AllowMethods enforces the uniform method discipline: when the request's
// verb is listed it returns true; otherwise it answers 405 with an Allow
// header naming the accepted verbs and the method_not_allowed envelope.
func AllowMethods(w http.ResponseWriter, req *http.Request, methods ...string) bool {
	for _, m := range methods {
		if req.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	WriteError(w, fmt.Errorf("%w: %s not accepted (allow: %s)",
		ErrMethodNotAllowed, req.Method, strings.Join(methods, ", ")))
	return false
}

// RequireContentType enforces the uniform body discipline: a
// body-carrying request must declare one of the accepted media types
// (parameters such as charset are ignored). On violation it answers 415
// with the unsupported_media_type envelope and returns false. With no
// accepted types given it requires application/json.
func RequireContentType(w http.ResponseWriter, req *http.Request, accepted ...string) bool {
	if len(accepted) == 0 {
		accepted = []string{"application/json"}
	}
	ct := req.Header.Get("Content-Type")
	mt, _, err := mime.ParseMediaType(ct)
	if err == nil {
		for _, a := range accepted {
			if mt == a {
				return true
			}
		}
	}
	WriteError(w, fmt.Errorf("%w: Content-Type %q (send %s)",
		ErrUnsupportedMedia, ct, strings.Join(accepted, " or ")))
	return false
}

// ReadJSON decodes one JSON value from the request body under a byte cap,
// classifying failures onto the shared sentinels: an overrun body wraps
// ErrTooLarge, anything else undecodable wraps ErrBadRequest. The caller
// passes the error straight to WriteError.
func ReadJSON(w http.ResponseWriter, req *http.Request, maxBytes int64, v any) error {
	req.Body = http.MaxBytesReader(w, req.Body, maxBytes)
	if err := json.NewDecoder(req.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("%w: body exceeds %d bytes", ErrTooLarge, tooBig.Limit)
		}
		return fmt.Errorf("%w: bad JSON: %v", ErrBadRequest, err)
	}
	return nil
}
