package experiments

import (
	"fmt"
	"sort"

	"fexiot/internal/drift"
)

// driftFitHelper keeps the drift import local to the ablation file's user.
func driftFitHelper(emb [][]float64, labels []int) *drift.Detector {
	return drift.Fit(emb, labels)
}

// Runner executes one experiment and returns its printable output.
type Runner func(s Setup) string

// Registry maps experiment ids (table/figure numbers) to runners; this is
// the index cmd/fexbench and the repository benches dispatch on.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": func(s Setup) string { return TableI(s).String() },
		"fig3":   func(s Setup) string { return FigureIII(s).String() },
		"fig4": func(s Setup) string {
			// CI scale sweeps GIN over three α values; paper scale adds GCN
			// and the full five-point sweep of Fig. 4.
			alphas := []float64{0.1, 1, 10}
			if s.Scale.Name == "paper" {
				alphas = []float64{0.1, 1, 2, 5, 10}
				return FigureIV(s, "GIN", alphas).String() +
					FigureIV(s, "GCN", alphas).String()
			}
			return FigureIV(s, "GIN", alphas).String()
		},
		"fig4-gcn": func(s Setup) string {
			alphas := []float64{0.1, 1, 10}
			if s.Scale.Name == "paper" {
				alphas = []float64{0.1, 1, 2, 5, 10}
			}
			return FigureIV(s, "GCN", alphas).String()
		},
		"fig5": func(s Setup) string {
			counts := []int{10, 20}
			if s.Scale.Name == "paper" {
				counts = []int{25, 50, 75, 100}
			}
			// Scalability shape (flat medians, widening spread) emerges well
			// before full convergence; trim the rounds at CI scale.
			s.Rounds = s.Rounds * 2 / 3
			return FigureV(s, counts).String()
		},
		"fig6":   func(s Setup) string { return FigureVI(s).String() },
		"table2": func(s Setup) string { return TableII(s).String() },
		"fig7": func(s Setup) string {
			counts := []int{10, 20}
			if s.Scale.Name == "paper" {
				counts = []int{25, 50, 100}
			}
			// Communication shape needs fewer rounds than accuracy sweeps.
			s.Rounds = s.Rounds * 2 / 3
			return FigureVII(s, counts).String()
		},
		"fig8":   FigureVIII,
		"fig9":   func(s Setup) string { return FigureIX(s, 0).String() },
		"table3": func(s Setup) string { return TableIII(s).String() },

		"chaos":  func(s Setup) string { return ChaosFederation(s).String() },
		"poison": func(s Setup) string { return PoisonFederation(s).String() },

		"ablation-layerwise":   func(s Setup) string { return AblationLayerwise(s).String() },
		"ablation-contrastive": func(s Setup) string { return AblationContrastive(s).String() },
		"ablation-beam":        func(s Setup) string { return AblationBeam(s).String() },
		"ablation-mad":         func(s Setup) string { return AblationMAD(s).String() },
	}
}

// Names lists the registered experiment ids in sorted order.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, s Setup) (string, error) {
	r, ok := Registry()[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %v)",
			id, Names())
	}
	return r(s), nil
}
