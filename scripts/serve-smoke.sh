#!/bin/sh
# serve-smoke: end-to-end smoke test of the snapshot-isolated serving
# engine against the real fexserve binary. Starts the server with a short
# background republish cadence, drives a concurrent curl storm at
# /v1/detect while fresh snapshots publish underneath it, and fails on any
# non-2xx response, a stalled publish counter, or missing fexiot_serve_*
# metrics. A second, deliberately undersized instance (-workers 1 -queue 1)
# is then saturated to prove fast-fail load shedding: surplus requests get
# 429 + Retry-After, the shed counter advances, and non-shed requests stay
# 2xx. Health probes (/healthz, /readyz) are asserted on the trained
# instance. `make serve-smoke` runs this as part of `make check`.
set -eu

WORKDIR=$(mktemp -d)
SERVER_LOG="$WORKDIR/server.log"
cleanup() {
    [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "${SHED_PID:-}" ] && kill "$SHED_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building fexserve..."
go build -o "$WORKDIR/fexserve" ./cmd/fexserve

# A compact training run keeps startup fast; -republish retrains and
# atomically swaps the live snapshot every 300ms — the storm below runs
# straight through several of those swap windows.
"$WORKDIR/fexserve" -addr 127.0.0.1:0 -homes 4 -rules 16 -graphs 2 \
    -rounds 1 -pairs 30 -republish 300ms \
    -sample "$WORKDIR/detect.json" >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Poll the log until the resolved address appears.
ADDR=""
for _ in $(seq 1 300); do
    ADDR=$(sed -n 's#^fexserve listening on http://##p' "$SERVER_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "serve-smoke: server died:"; cat "$SERVER_LOG"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-smoke: no listen address in server log"; cat "$SERVER_LOG"; exit 1; }
[ -s "$WORKDIR/detect.json" ] || { echo "serve-smoke: sample request body never written"; exit 1; }
echo "serve-smoke: serving on $ADDR"

# One warm-up detect plus one explain: both endpoints must answer 200
# before the storm starts.
for endpoint in detect explain; do
    code=$(curl -s -o "$WORKDIR/$endpoint.out" -w '%{http_code}' \
        -H 'Content-Type: application/json' \
        --data-binary @"$WORKDIR/detect.json" "http://$ADDR/v1/$endpoint" || echo 000)
    [ "$code" = 200 ] || { echo "serve-smoke: /v1/$endpoint returned $code:"; \
        cat "$WORKDIR/$endpoint.out"; exit 1; }
done
grep -q '"snapshot_seq"' "$WORKDIR/detect.out" \
    || { echo "serve-smoke: detect response has no snapshot_seq:"; cat "$WORKDIR/detect.out"; exit 1; }

# Health probes: a trained, publishing server must be both live and ready.
for probe in healthz readyz; do
    code=$(curl -s -o "$WORKDIR/$probe.out" -w '%{http_code}' "http://$ADDR/$probe" || echo 000)
    [ "$code" = 200 ] || { echo "serve-smoke: /$probe returned $code:"; \
        cat "$WORKDIR/$probe.out"; exit 1; }
    grep -q '"status":"ok"' "$WORKDIR/$probe.out" \
        || { echo "serve-smoke: /$probe body not ok:"; cat "$WORKDIR/$probe.out"; exit 1; }
done
echo "serve-smoke: /healthz and /readyz are 200 ok"

published() {
    curl -sf "http://$ADDR/metrics" 2>/dev/null \
        | sed -n 's/^fexiot_serve_snapshots_published_total //p' | head -n1
}
BASE=$(published)
[ -n "$BASE" ] || { echo "serve-smoke: fexiot_serve_snapshots_published_total missing"; exit 1; }

# The storm: four workers POST /v1/detect in a tight loop until told to
# stop, logging every status code. Meanwhile the main shell waits for the
# publish counter to advance at least twice past the baseline, proving the
# swaps landed while requests were in flight.
STOP="$WORKDIR/stop"
storm() {
    n=0
    while [ ! -f "$STOP" ] && [ "$n" -lt 2000 ]; do
        curl -s -o /dev/null -w '%{http_code}\n' \
            -H 'Content-Type: application/json' \
            --data-binary @"$WORKDIR/detect.json" \
            "http://$ADDR/v1/detect" >>"$WORKDIR/codes.$1" || echo 000 >>"$WORKDIR/codes.$1"
        n=$((n+1))
    done
}
storm 1 & W1=$!
storm 2 & W2=$!
storm 3 & W3=$!
storm 4 & W4=$!

ADVANCED=""
for _ in $(seq 1 300); do
    NOW=$(published)
    if [ -n "$NOW" ] && [ "$(printf '%.0f' "$NOW")" -ge "$(($(printf '%.0f' "$BASE") + 2))" ]; then
        ADVANCED=yes
        break
    fi
    sleep 0.1
done
touch "$STOP"
wait "$W1" "$W2" "$W3" "$W4"

[ -n "$ADVANCED" ] || { echo "serve-smoke: publish counter never advanced past $BASE"; \
    cat "$SERVER_LOG"; exit 1; }

TOTAL=$(cat "$WORKDIR"/codes.* | wc -l)
BAD=$(grep -cv '^2' "$WORKDIR"/codes.* 2>/dev/null | awk -F: '{s+=$2} END {print s+0}')
[ "$TOTAL" -ge 8 ] || { echo "serve-smoke: storm only issued $TOTAL requests"; exit 1; }
[ "$BAD" -eq 0 ] || { echo "serve-smoke: $BAD of $TOTAL storm requests were non-2xx:"; \
    sort "$WORKDIR"/codes.* | uniq -c; exit 1; }

# The serve metric families must all be live on /metrics, and so must the
# matrix-arena family (training + the storm's inference both lease from it).
curl -sf "http://$ADDR/metrics" >"$WORKDIR/metrics.txt"
for metric in fexiot_serve_request_duration_seconds fexiot_serve_inflight \
    fexiot_serve_queue_depth fexiot_serve_snapshot_age_seconds \
    fexiot_serve_snapshot_seq fexiot_serve_snapshots_published_total \
    fexiot_mat_arena_leases_total fexiot_mat_arena_hits_total \
    fexiot_mat_arena_bytes_pooled; do
    grep -q "^# TYPE $metric " "$WORKDIR/metrics.txt" \
        || { echo "serve-smoke: $metric missing from /metrics"; cat "$WORKDIR/metrics.txt"; exit 1; }
done
grep -q '^fexiot_mat_arena_leases_total [1-9]' "$WORKDIR/metrics.txt" \
    || { echo "serve-smoke: arena never leased (counter zero or missing):"; \
         grep fexiot_mat_arena "$WORKDIR/metrics.txt" || true; exit 1; }
grep -q '^fexiot_serve_request_duration_seconds_count{endpoint="detect"} [1-9]' "$WORKDIR/metrics.txt" \
    || { echo "serve-smoke: no detect latency samples recorded"; \
         grep fexiot_serve_request "$WORKDIR/metrics.txt" || true; exit 1; }

kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# --- Overload stage: an undersized instance (-workers 1 -queue 1) under a
# sustained concurrent storm must fast-fail the surplus with 429 +
# Retry-After while fexiot_serve_shed_total advances — and every non-shed
# request must still be 2xx (shedding never corrupts accepted work).
SHED_LOG="$WORKDIR/shed.log"
"$WORKDIR/fexserve" -addr 127.0.0.1:0 -homes 4 -rules 16 -graphs 2 \
    -rounds 1 -pairs 30 -workers 1 -queue 1 -batch 1 \
    -sample "$WORKDIR/shed.json" >"$SHED_LOG" 2>&1 &
SHED_PID=$!

SHED_ADDR=""
for _ in $(seq 1 300); do
    SHED_ADDR=$(sed -n 's#^fexserve listening on http://##p' "$SHED_LOG" | head -n1)
    [ -n "$SHED_ADDR" ] && break
    kill -0 "$SHED_PID" 2>/dev/null || { echo "serve-smoke: shed server died:"; cat "$SHED_LOG"; exit 1; }
    sleep 0.1
done
[ -n "$SHED_ADDR" ] || { echo "serve-smoke: no listen address in shed server log"; cat "$SHED_LOG"; exit 1; }
echo "serve-smoke: overload instance on $SHED_ADDR (workers=1 queue=1)"

shed_total() {
    curl -sf "http://$SHED_ADDR/metrics" 2>/dev/null \
        | sed -n 's/^fexiot_serve_shed_total //p' | head -n1
}

# Eight concurrent loops against a single worker with a one-slot queue:
# each logs "<code> <retry-after>" per request so we can assert both the
# 429s and the header in one pass.
SHED_STOP="$WORKDIR/shed-stop"
shed_storm() {
    n=0
    while [ ! -f "$SHED_STOP" ] && [ "$n" -lt 2000 ]; do
        curl -s -o /dev/null -w '%{http_code} %header{retry-after}\n' \
            -H 'Content-Type: application/json' \
            --data-binary @"$WORKDIR/shed.json" \
            "http://$SHED_ADDR/v1/detect" >>"$WORKDIR/shedcodes.$1" \
            || echo '000 -' >>"$WORKDIR/shedcodes.$1"
        n=$((n+1))
    done
}
for i in 1 2 3 4 5 6 7 8; do shed_storm "$i" & eval "S$i=\$!"; done

SHED_SEEN=""
for _ in $(seq 1 200); do
    NOW=$(shed_total)
    if [ -n "$NOW" ] && [ "$(printf '%.0f' "$NOW")" -ge 1 ]; then
        SHED_SEEN=yes
        break
    fi
    sleep 0.1
done
touch "$SHED_STOP"
wait "$S1" "$S2" "$S3" "$S4" "$S5" "$S6" "$S7" "$S8"

[ -n "$SHED_SEEN" ] || { echo "serve-smoke: fexiot_serve_shed_total never advanced under overload"; \
    sort "$WORKDIR"/shedcodes.* | uniq -c; cat "$SHED_LOG"; exit 1; }

REJECTED=$(grep -c '^429' "$WORKDIR"/shedcodes.* 2>/dev/null | awk -F: '{s+=$2} END {print s+0}')
ACCEPTED=$(grep -c '^2' "$WORKDIR"/shedcodes.* 2>/dev/null | awk -F: '{s+=$2} END {print s+0}')
OTHER=$(grep -cv '^2\|^429' "$WORKDIR"/shedcodes.* 2>/dev/null | awk -F: '{s+=$2} END {print s+0}')
[ "$REJECTED" -ge 1 ] || { echo "serve-smoke: shed counter advanced but no 429 observed"; \
    sort "$WORKDIR"/shedcodes.* | uniq -c; exit 1; }
[ "$ACCEPTED" -ge 1 ] || { echo "serve-smoke: overload storm had zero accepted requests"; \
    sort "$WORKDIR"/shedcodes.* | uniq -c; exit 1; }
[ "$OTHER" -eq 0 ] || { echo "serve-smoke: $OTHER non-2xx/non-429 responses under overload:"; \
    sort "$WORKDIR"/shedcodes.* | uniq -c; exit 1; }
grep -q '^429 1' "$WORKDIR"/shedcodes.* \
    || { echo "serve-smoke: 429s missing the Retry-After header:"; \
         grep '^429' "$WORKDIR"/shedcodes.* | sort | uniq -c; exit 1; }

kill "$SHED_PID" 2>/dev/null || true
wait "$SHED_PID" 2>/dev/null || true
SHED_PID=""

echo "serve-smoke: OK ($TOTAL storm requests all 2xx across ≥2 snapshot swaps, serve metrics live;" \
    "overload shed $REJECTED/$((REJECTED + ACCEPTED)) with 429 + Retry-After, $ACCEPTED accepted stayed 2xx)"
