// Package ml implements the classical machine-learning components the paper
// takes from scikit-learn: the four correlation-discovery classifiers of
// Fig. 3 (MLP lives in internal/nn; RandomForest, KNN and GradientBoost live
// here), the SGDClassifier that turns federated graph embeddings into
// vulnerability predictions, the IsolationForest baseline of Table II, and
// the evaluation machinery (metrics, k-fold cross-validation, grid search).
package ml

import "fexiot/internal/rng"

// Classifier is a binary classifier over dense feature vectors. Labels are
// 0 (negative) and 1 (positive).
type Classifier interface {
	Fit(x [][]float64, y []int)
	Predict(x []float64) int
	// Score returns a real-valued confidence for the positive class
	// (monotone in probability; not necessarily calibrated).
	Score(x []float64) float64
}

// Metrics holds the four headline evaluation numbers the paper reports.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64

	TP, FP, TN, FN int
}

// Evaluate computes binary classification metrics for predictions vs truth.
func Evaluate(pred, truth []int) Metrics {
	if len(pred) != len(truth) {
		panic("ml: Evaluate length mismatch")
	}
	var m Metrics
	for i := range pred {
		switch {
		case pred[i] == 1 && truth[i] == 1:
			m.TP++
		case pred[i] == 1 && truth[i] == 0:
			m.FP++
		case pred[i] == 0 && truth[i] == 0:
			m.TN++
		default:
			m.FN++
		}
	}
	total := float64(len(pred))
	if total > 0 {
		m.Accuracy = float64(m.TP+m.TN) / total
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// PredictAll applies a classifier to every row.
func PredictAll(c Classifier, x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = c.Predict(row)
	}
	return out
}

// KFold runs k-fold cross-validation: factory builds a fresh classifier per
// fold; the returned metrics average the per-fold results. Folds are
// shuffled deterministically by seed, matching the paper's 10-fold CV
// protocol (Fig. 3).
func KFold(factory func() Classifier, x [][]float64, y []int, k int, seed int64) Metrics {
	n := len(x)
	if n == 0 || k < 2 {
		panic("ml: KFold needs data and k ≥ 2")
	}
	if k > n {
		k = n
	}
	perm := rng.New(seed).Perm(n)
	var sum Metrics
	for fold := 0; fold < k; fold++ {
		var trainX, testX [][]float64
		var trainY, testY []int
		for i, idx := range perm {
			if i%k == fold {
				testX = append(testX, x[idx])
				testY = append(testY, y[idx])
			} else {
				trainX = append(trainX, x[idx])
				trainY = append(trainY, y[idx])
			}
		}
		c := factory()
		c.Fit(trainX, trainY)
		m := Evaluate(PredictAll(c, testX), testY)
		sum.Accuracy += m.Accuracy
		sum.Precision += m.Precision
		sum.Recall += m.Recall
		sum.F1 += m.F1
	}
	sum.Accuracy /= float64(k)
	sum.Precision /= float64(k)
	sum.Recall /= float64(k)
	sum.F1 /= float64(k)
	return sum
}

// TrainTestSplit shuffles and splits a dataset; frac is the training
// fraction (the paper uses 80/20, §IV-C).
func TrainTestSplit(x [][]float64, y []int, frac float64, seed int64) (trX [][]float64, trY []int, teX [][]float64, teY []int) {
	perm := rng.New(seed).Perm(len(x))
	cut := int(frac * float64(len(x)))
	for i, idx := range perm {
		if i < cut {
			trX = append(trX, x[idx])
			trY = append(trY, y[idx])
		} else {
			teX = append(teX, x[idx])
			teY = append(teY, y[idx])
		}
	}
	return
}

// GridSearch evaluates factory(param) for each candidate parameter value by
// k-fold CV and returns the parameter with the best F1 plus its metrics —
// the "grid search method" the paper uses for hyperparameters (§IV-B).
func GridSearch(factory func(param float64) Classifier, params []float64,
	x [][]float64, y []int, k int, seed int64) (best float64, bestM Metrics) {
	first := true
	for _, p := range params {
		m := KFold(func() Classifier { return factory(p) }, x, y, k, seed)
		if first || m.F1 > bestM.F1 {
			first = false
			best, bestM = p, m
		}
	}
	return
}
