package autodiff

import (
	"fmt"
	"math"
	"sort"

	"fexiot/internal/mat"
)

// ParamSet is an ordered collection of named trainable matrices. Each
// parameter is tagged with the model layer it belongs to, which is what the
// paper's layer-wise clustered federated aggregation (Algorithm 1) operates
// on.
type ParamSet struct {
	names   []string
	vals    map[string]*mat.Dense
	layerOf map[string]int
}

// NewParamSet creates an empty parameter set.
func NewParamSet() *ParamSet {
	return &ParamSet{vals: map[string]*mat.Dense{}, layerOf: map[string]int{}}
}

// Register adds a parameter under name, associated with layer index layer.
func (p *ParamSet) Register(name string, layer int, v *mat.Dense) *mat.Dense {
	if _, ok := p.vals[name]; ok {
		panic(fmt.Sprintf("autodiff: duplicate parameter %q", name))
	}
	p.names = append(p.names, name)
	p.vals[name] = v
	p.layerOf[name] = layer
	return v
}

// Get returns the parameter value by name.
func (p *ParamSet) Get(name string) *mat.Dense {
	v, ok := p.vals[name]
	if !ok {
		panic(fmt.Sprintf("autodiff: unknown parameter %q", name))
	}
	return v
}

// Names returns the parameter names in registration order.
func (p *ParamSet) Names() []string { return append([]string(nil), p.names...) }

// Layer returns the layer index of a parameter.
func (p *ParamSet) Layer(name string) int { return p.layerOf[name] }

// NumLayers returns 1 + the largest layer index.
func (p *ParamSet) NumLayers() int {
	max := -1
	for _, l := range p.layerOf {
		if l > max {
			max = l
		}
	}
	return max + 1
}

// LayerNames returns the names of parameters in layer l, sorted.
func (p *ParamSet) LayerNames(l int) []string {
	var out []string
	for _, n := range p.names {
		if p.layerOf[n] == l {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// NumElements returns the total scalar count across all parameters.
func (p *ParamSet) NumElements() int {
	total := 0
	for _, v := range p.vals {
		r, c := v.Dims()
		total += r * c
	}
	return total
}

// LayerElements returns the scalar count of parameters in layer l.
func (p *ParamSet) LayerElements(l int) int {
	total := 0
	for _, n := range p.names {
		if p.layerOf[n] == l {
			r, c := p.vals[n].Dims()
			total += r * c
		}
	}
	return total
}

// Clone returns a deep copy sharing names and layer assignment.
func (p *ParamSet) Clone() *ParamSet {
	out := NewParamSet()
	for _, n := range p.names {
		out.Register(n, p.layerOf[n], p.vals[n].Clone())
	}
	return out
}

// CopyFrom copies values from src (same structure) into p.
func (p *ParamSet) CopyFrom(src *ParamSet) {
	for _, n := range p.names {
		p.vals[n].CopyFrom(src.vals[n])
	}
}

// CopyLayerFrom copies only the parameters of layer l from src.
func (p *ParamSet) CopyLayerFrom(src *ParamSet, l int) {
	for _, n := range p.names {
		if p.layerOf[n] == l {
			p.vals[n].CopyFrom(src.vals[n])
		}
	}
}

// FlattenLayer concatenates the layer-l parameters into one vector; this is
// the representation the FL server clusters by cosine similarity.
func (p *ParamSet) FlattenLayer(l int) []float64 {
	var out []float64
	for _, n := range p.names {
		if p.layerOf[n] == l {
			out = append(out, p.vals[n].Data()...)
		}
	}
	return out
}

// Flatten concatenates all parameters into one vector.
func (p *ParamSet) Flatten() []float64 {
	var out []float64
	for _, n := range p.names {
		out = append(out, p.vals[n].Data()...)
	}
	return out
}

// SetFlattenLayer writes a flat vector back into the layer-l parameters —
// the inverse of FlattenLayer, used by robust aggregators that operate on
// flattened coordinates.
func (p *ParamSet) SetFlattenLayer(l int, v []float64) {
	off := 0
	for _, n := range p.names {
		if p.layerOf[n] != l {
			continue
		}
		d := p.vals[n].Data()
		copy(d, v[off:off+len(d)])
		off += len(d)
	}
	if off != len(v) {
		panic(fmt.Sprintf("autodiff: SetFlattenLayer got %d values, layer %d holds %d", len(v), l, off))
	}
}

// SetFlatten writes a flat vector back into all parameters — the inverse of
// Flatten.
func (p *ParamSet) SetFlatten(v []float64) {
	off := 0
	for _, n := range p.names {
		d := p.vals[n].Data()
		copy(d, v[off:off+len(d)])
		off += len(d)
	}
	if off != len(v) {
		panic(fmt.Sprintf("autodiff: SetFlatten got %d values, set holds %d", len(v), off))
	}
}

// Sub returns the element-wise difference p − q as flat-layer vectors are
// needed; it produces a new ParamSet with the same structure.
func (p *ParamSet) Sub(q *ParamSet) *ParamSet {
	out := p.Clone()
	for _, n := range out.names {
		out.vals[n].AddScaled(q.vals[n], -1)
	}
	return out
}

// Norm returns the Frobenius norm over all parameters.
func (p *ParamSet) Norm() float64 {
	var s float64
	for _, v := range p.vals {
		for _, x := range v.Data() {
			s += x * x
		}
	}
	return math.Sqrt(s)
}

// WeightedAverage overwrites dst with Σ w_i · sets_i (weights should sum to
// 1 for a convex combination, as in FedAvg).
func WeightedAverage(dst *ParamSet, sets []*ParamSet, weights []float64) {
	if len(sets) != len(weights) {
		panic("autodiff: WeightedAverage length mismatch")
	}
	for _, n := range dst.names {
		d := dst.vals[n]
		d.Zero()
		for i, s := range sets {
			d.AddScaled(s.vals[n], weights[i])
		}
	}
}

// WeightedAverageLayer averages only layer l parameters into dst.
func WeightedAverageLayer(dst *ParamSet, sets []*ParamSet, weights []float64, l int) {
	for _, n := range dst.names {
		if dst.layerOf[n] != l {
			continue
		}
		d := dst.vals[n]
		d.Zero()
		for i, s := range sets {
			d.AddScaled(s.vals[n], weights[i])
		}
	}
}

// Adam is the Adam optimiser over a ParamSet, with the paper's default
// learning rate 0.001.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    map[string]*mat.Dense
	v    map[string]*mat.Dense
}

// NewAdam creates an Adam optimiser with standard hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[string]*mat.Dense{}, v: map[string]*mat.Dense{}}
}

// Step applies one Adam update using the gradients stored in grads, a map
// from parameter name to the gradient matrix accumulated by the tape.
func (a *Adam) Step(params *ParamSet, grads map[string]*mat.Dense) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, name := range params.names {
		g, ok := grads[name]
		if !ok || g == nil {
			continue
		}
		w := params.vals[name]
		mm, ok := a.m[name]
		if !ok {
			r, c := w.Dims()
			mm = mat.NewDense(r, c)
			a.m[name] = mm
			a.v[name] = mat.NewDense(r, c)
		}
		vv := a.v[name]
		wd, gd, md, vd := w.Data(), g.Data(), mm.Data(), vv.Data()
		for i := range wd {
			gi := gd[i]
			if a.WeightDecay > 0 {
				gi += a.WeightDecay * wd[i]
			}
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*gi
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*gi*gi
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			wd[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// Reset clears the optimiser state (used when the FL server replaces a
// client's weights wholesale).
func (a *Adam) Reset() {
	a.step = 0
	a.m = map[string]*mat.Dense{}
	a.v = map[string]*mat.Dense{}
}
