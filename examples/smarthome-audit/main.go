// Smart-home audit: the runtime (online) analysis workflow of §III-A —
// simulate a week of device event logs for a deployed home, clean the logs,
// fuse them with the app descriptions into online interaction graphs, and
// audit both a benign run and an attacked run (fake events injected, one of
// the five HAWatcher attack classes).
package main

import (
	"fmt"
	"log"

	"fexiot"
	"fexiot/internal/eventlog"
)

func main() {
	opts := fexiot.DefaultOptions()
	opts.Seed = 11
	sys, err := fexiot.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Train on offline graphs from many homes.
	fmt.Println("training detector on offline graphs…")
	var training []*fexiot.Graph
	for home := 0; home < 40; home++ {
		arch := fexiot.ArchetypeNames()[home%len(fexiot.ArchetypeNames())]
		deployed := fexiot.GenerateHome(arch, 25, int64(home+31))
		for i := 0; i < 8; i++ {
			training = append(training, sys.BuildGraph(deployed))
		}
	}
	sys.TrainCentral(training, 10, 300)

	// The audited home: pick a safety-focused deployment whose benign week
	// comes out clean, so the attack's effect is visible.
	var deployed []*fexiot.Rule
	for seed := int64(77); ; seed++ {
		deployed = fexiot.GenerateHome("safety", 14, seed)
		cleaned := fexiot.CleanLog(fexiot.SimulateHome(deployed, 3000, 5))
		g := sys.BuildOnlineGraph(deployed, cleaned)
		if v, err := sys.Detect(g); err == nil && g.N() >= 4 && !v.Vulnerable {
			break
		}
		if seed > 177 {
			break // fall back to whatever we have
		}
	}
	fmt.Println("\ndeployed rules:")
	for _, r := range deployed {
		fmt.Printf("  [%s] %s\n", r.Platform, r.Description)
	}

	// --- Benign week -----------------------------------------------------
	raw := fexiot.SimulateHome(deployed, 3000, 5)
	clean := fexiot.CleanLog(raw)
	fmt.Printf("\nbenign run: %d raw events → %d after cleaning\n",
		len(raw), len(clean))
	fmt.Println("sample log lines:")
	for i := 0; i < 5 && i < len(clean); i++ {
		fmt.Println("  ", clean[i])
	}
	g := sys.BuildOnlineGraph(deployed, clean)
	v, err := sys.Detect(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online graph: %d active rules, %d observed causal edges\n",
		g.N(), len(g.Edges))
	fmt.Printf("verdict: vulnerable=%v score=%.3f\n", v.Vulnerable, v.Score)

	// --- Attacked week ---------------------------------------------------
	fmt.Println("\ninjecting a fake-events attack into the same log…")
	attacked := eventlog.Inject(clean, eventlog.FakeEvents, deployed, 0.8, 13)
	ga := sys.BuildOnlineGraph(deployed, attacked)
	va, err := sys.Detect(ga)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online graph: %d active rules, %d observed causal edges\n",
		ga.N(), len(ga.Edges))
	fmt.Printf("verdict: vulnerable=%v score=%.3f (was %.3f)\n",
		va.Vulnerable, va.Score, v.Score)
	if va.Score > v.Score {
		fmt.Println("the attack raised the vulnerability score ✓")
	}
}
