# FexIoT build/test/benchmark entry points. `make check` is the CI gate:
# build, vet, tests and the race detector must all pass.

GO ?= go

.PHONY: all build test race race-fedproto vet bench bench-matmul check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The federation protocol's concurrency paths (quorum rounds, eviction,
# rejoin, fault injection) under the race detector, never from cache.
race-fedproto:
	$(GO) test -race -count=1 ./internal/fedproto/...

vet:
	$(GO) vet ./...

# The full evaluation as benches (one run per table/figure at CI scale).
bench:
	$(GO) test -bench=. -benchmem

# Dense kernel serial-vs-parallel comparison (FEXIOT_PROCS to pin workers).
bench-matmul:
	$(GO) test -run XXX -bench 'MatMul(Serial|Parallel)' .

check: build vet test race race-fedproto
