#!/bin/sh
# obs-smoke: end-to-end smoke test of the observability subsystem against
# the real binaries. Runs a two-client federation with fexserver -http,
# scrapes /metrics and /statusz from the live server, and fails if either
# endpoint is empty or the acceptance metrics are missing. `make obs-smoke`
# runs this as part of `make check`.
set -eu

WORKDIR=$(mktemp -d)
SERVER_LOG="$WORKDIR/server.log"
cleanup() {
    [ -n "${SERVER_PID:-}" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "${C0_PID:-}" ] && kill "$C0_PID" 2>/dev/null || true
    [ -n "${C1_PID:-}" ] && kill "$C1_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "obs-smoke: building binaries..."
go build -o "$WORKDIR/fexserver" ./cmd/fexserver
go build -o "$WORKDIR/fexclient" ./cmd/fexclient

# The federation port must be known up front (clients dial it); reserve a
# free one. The obs port can stay :0 — the server prints the resolved
# address.
FED_ADDR=127.0.0.1:$(python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()')

# -codec q8 makes the federation negotiate quantised deltas, so the scrape
# below can assert the compression metrics on a live run, not just their
# TYPE lines.
"$WORKDIR/fexserver" -addr "$FED_ADDR" -clients 2 -rounds 3 -layers 4 \
    -codec q8 -http 127.0.0.1:0 >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Poll the log until the resolved obs address appears.
OBS_ADDR=""
for _ in $(seq 1 100); do
    OBS_ADDR=$(sed -n 's#^obs listening on http://##p' "$SERVER_LOG" | head -n1)
    [ -n "$OBS_ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "obs-smoke: server died:"; cat "$SERVER_LOG"; exit 1; }
    sleep 0.1
done
[ -n "$OBS_ADDR" ] || { echo "obs-smoke: no obs address in server log"; cat "$SERVER_LOG"; exit 1; }
echo "obs-smoke: federation on $FED_ADDR, observability on $OBS_ADDR"

# Scrape while idle: the endpoints must serve before round 0.
curl -sf "http://$OBS_ADDR/metrics" >"$WORKDIR/metrics.early" \
    || { echo "obs-smoke: /metrics unreachable"; exit 1; }
[ -s "$WORKDIR/metrics.early" ] || { echo "obs-smoke: /metrics empty"; exit 1; }

# A two-client federation. Client 1 trains on enough contrastive pairs
# that each round lasts long enough for the scrape loop to observe the
# counter advancing before the server exits.
"$WORKDIR/fexclient" -addr "$FED_ADDR" -id 0 -archetype security \
    -graphs 8 -pairs 4 >"$WORKDIR/c0.log" 2>&1 &
C0_PID=$!
"$WORKDIR/fexclient" -addr "$FED_ADDR" -id 1 -archetype climate \
    -graphs 12 -pairs 300 >"$WORKDIR/c1.log" 2>&1 &
C1_PID=$!

# Scrape mid-run: the server exits once the federation completes, so the
# live endpoints must be read while rounds close. Keep the last successful
# capture and stop as soon as the round counter has visibly advanced (with
# -rounds 3, counter 1 means whole rounds still remain to scrape in).
SCRAPED=""
Q8SEEN=""
for _ in $(seq 1 2400); do
    if curl -sf "http://$OBS_ADDR/metrics" >"$WORKDIR/metrics.tmp" 2>/dev/null \
        && [ -s "$WORKDIR/metrics.tmp" ]; then
        mv "$WORKDIR/metrics.tmp" "$WORKDIR/metrics.txt"
        curl -sf "http://$OBS_ADDR/statusz" >"$WORKDIR/statusz.json" 2>/dev/null || true
        if grep -q '^fexiot_rounds_completed_total [1-9]' "$WORKDIR/metrics.txt"; then
            SCRAPED=yes
            # Round 0 goes dense (no shared base yet); keep scraping until a
            # round-1+ quantised update shows up under codec="q8".
            if grep -q 'fexiot_update_encoded_bytes_total{codec="q8"} [1-9]' "$WORKDIR/metrics.txt"; then
                Q8SEEN=yes
                break
            fi
        fi
    elif ! kill -0 "$SERVER_PID" 2>/dev/null; then
        break
    fi
done

wait "$C0_PID" || { echo "obs-smoke: client 0 failed:"; cat "$WORKDIR/c0.log"; exit 1; }
C0_PID=""
wait "$C1_PID" || { echo "obs-smoke: client 1 failed:"; cat "$WORKDIR/c1.log"; exit 1; }
C1_PID=""
wait "$SERVER_PID" || { echo "obs-smoke: server failed:"; cat "$SERVER_LOG"; exit 1; }
SERVER_PID=""

[ -s "$WORKDIR/metrics.txt" ] || { echo "obs-smoke: never scraped a non-empty /metrics"; exit 1; }
[ -s "$WORKDIR/statusz.json" ] || { echo "obs-smoke: never scraped a non-empty /statusz"; exit 1; }
[ -n "$SCRAPED" ] || { echo "obs-smoke: round counter never advanced on /metrics"; \
    grep fexiot_rounds "$WORKDIR/metrics.txt" || true; exit 1; }

for metric in fexiot_round_duration_seconds fexiot_round_responders \
    fexiot_clients_evicted_total fexiot_bytes_received_total \
    fexiot_update_encoded_bytes_total fexiot_update_raw_bytes_total \
    fexiot_update_compression_ratio; do
    grep -q "^# TYPE $metric " "$WORKDIR/metrics.txt" \
        || { echo "obs-smoke: $metric missing from /metrics"; cat "$WORKDIR/metrics.txt"; exit 1; }
done

# The q8 federation must have produced observable compression: a quantised
# update accepted under codec="q8" and a populated ratio histogram.
[ -n "$Q8SEEN" ] || { echo "obs-smoke: no q8-encoded update ever appeared on /metrics"; \
    grep fexiot_update "$WORKDIR/metrics.txt" || true; exit 1; }
grep -q '^fexiot_update_compression_ratio_count [1-9]' "$WORKDIR/metrics.txt" \
    || { echo "obs-smoke: compression-ratio histogram empty"; \
         grep fexiot_update_compression "$WORKDIR/metrics.txt" || true; exit 1; }
grep -q '"go_version"' "$WORKDIR/statusz.json" \
    || { echo "obs-smoke: /statusz is not a status snapshot"; cat "$WORKDIR/statusz.json"; exit 1; }

echo "obs-smoke: OK (rounds advancing, q8 compression metrics live, /statusz live)"
