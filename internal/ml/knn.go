package ml

import (
	"sort"

	"fexiot/internal/mat"
)

// KNN is the k-nearest-neighbours classifier of Fig. 3. Prediction is a
// majority vote among the k closest training points by Euclidean distance,
// with inverse-distance weighting to break ties smoothly.
type KNN struct {
	K int

	x [][]float64
	y []int
}

// NewKNN creates a k-NN classifier.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit memorises the training set.
func (c *KNN) Fit(x [][]float64, y []int) {
	c.x = x
	c.y = y
}

// Score returns the weighted positive-vote fraction among the k neighbours.
func (c *KNN) Score(q []float64) float64 {
	k := c.K
	if k <= 0 {
		k = 5
	}
	if k > len(c.x) {
		k = len(c.x)
	}
	type nb struct {
		d float64
		y int
	}
	nbs := make([]nb, len(c.x))
	for i, row := range c.x {
		nbs[i] = nb{d: mat.Dist2(q, row), y: c.y[i]}
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].d < nbs[j].d })
	var pos, total float64
	for i := 0; i < k; i++ {
		w := 1 / (nbs[i].d + 1e-9)
		total += w
		if nbs[i].y == 1 {
			pos += w
		}
	}
	if total == 0 {
		return 0
	}
	return pos / total
}

// Predict returns the majority class.
func (c *KNN) Predict(q []float64) int {
	if c.Score(q) >= 0.5 {
		return 1
	}
	return 0
}
