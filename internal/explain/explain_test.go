package explain

import (
	"math"
	"testing"
	"testing/quick"

	"fexiot/internal/graph"
	"fexiot/internal/rules"
)

// planted builds an 8-node chain graph where nodes 2 and 3 form the
// "vulnerable core": the score function fires iff both survive masking.
// Each node carries its original index as its feature so the black-box
// score can identify nodes after subgraph extraction.
func planted() (*graph.Graph, ScoreFunc) {
	g := &graph.Graph{}
	for i := 0; i < 8; i++ {
		g.AddNode(graph.Node{Feature: []float64{float64(i)}})
	}
	for i := 0; i+1 < 8; i++ {
		g.AddEdge(i, i+1, rules.DirectMatch)
	}
	h := func(sub *graph.Graph) float64 {
		has2, has3 := false, false
		for _, n := range sub.Nodes {
			switch n.Feature[0] {
			case 2:
				has2 = true
			case 3:
				has3 = true
			}
		}
		if has2 && has3 {
			return 0.95
		}
		return 0.05
	}
	return g, h
}

func hasAll(sub []int, want ...int) bool {
	in := map[int]bool{}
	for _, v := range sub {
		in[v] = true
	}
	for _, w := range want {
		if !in[w] {
			return false
		}
	}
	return true
}

func TestKernelSHAPFindsResponsibleSubgraph(t *testing.T) {
	g, h := planted()
	core := KernelSHAP(h, g, []int{2, 3}, 24, 1)
	offCore := KernelSHAP(h, g, []int{5, 6}, 24, 1)
	if core <= offCore {
		t.Fatalf("core SHAP %v should exceed off-core %v", core, offCore)
	}
	if core <= 0 {
		t.Fatalf("core SHAP %v should be positive", core)
	}
}

func TestShapleyValueAgreesOnPlanted(t *testing.T) {
	g, h := planted()
	core := ShapleyValue(h, g, []int{2, 3}, 60, 1)
	offCore := ShapleyValue(h, g, []int{5, 6}, 60, 1)
	if core <= offCore {
		t.Fatalf("core Shapley %v should exceed off-core %v", core, offCore)
	}
}

func TestSHAPEfficiencyProperty(t *testing.T) {
	// Σφ over a full partition ≈ h(G) − h(∅). Single-player case: treating
	// ALL nodes as the subgraph must give exactly that difference.
	g, h := planted()
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	phi := KernelSHAP(h, g, all, 8, 3)
	want := h(g) - h(g.InducedSubgraph(nil))
	if math.Abs(phi-want) > 1e-6 {
		t.Fatalf("efficiency violated: φ=%v want %v", phi, want)
	}
}

func TestSearchMethodsRecoverPlantedCore(t *testing.T) {
	g, h := planted()
	cfg := DefaultSearchConfig(7)
	cfg.MinNodes = 2
	cfg.Iterations = 4
	for name, method := range map[string]func(ScoreFunc, *graph.Graph, SearchConfig) Explanation{
		"fexiot":    FexIoTExplain,
		"subgraphx": SubgraphX,
		"mcts_gnn":  MCTSGNN,
	} {
		ex := method(h, g, cfg)
		if len(ex.Nodes) == 0 {
			t.Fatalf("%s returned empty explanation", name)
		}
		if !hasAll(ex.Nodes, 2, 3) {
			t.Errorf("%s missed the planted core: %v", name, ex.Nodes)
		}
		// Explanations must be connected subgraphs.
		if !connectedSubset(g, ex.Nodes) {
			t.Errorf("%s explanation disconnected: %v", name, ex.Nodes)
		}
	}
}

func TestFidelityAndSparsity(t *testing.T) {
	g, h := planted()
	// Removing the core from the graph drops the prediction: fidelity high.
	fidCore := Fidelity(h, g, []int{2, 3})
	fidOff := Fidelity(h, g, []int{5, 6})
	if fidCore <= fidOff {
		t.Fatalf("core fidelity %v should exceed off-core %v", fidCore, fidOff)
	}
	if math.Abs(fidCore-0.9) > 1e-9 {
		t.Fatalf("core fidelity %v want 0.9", fidCore)
	}
	// Sparsity bounds and monotonicity.
	if s := Sparsity(g, []int{2, 3}); math.Abs(s-0.75) > 1e-9 {
		t.Fatalf("sparsity %v want 0.75", s)
	}
	if Sparsity(g, nil) != 1 {
		t.Fatal("empty explanation has sparsity 1")
	}
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if Sparsity(g, all) != 0 {
		t.Fatal("full explanation has sparsity 0")
	}
}

func TestFidelityBoundsProperty(t *testing.T) {
	g, h := planted()
	f := func(mask uint8) bool {
		var sub []int
		for i := 0; i < g.N(); i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, i)
			}
		}
		fid := Fidelity(h, g, sub)
		sp := Sparsity(g, sub)
		return fid >= -1 && fid <= 1 && sp >= 0 && sp <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChildrenKeepConnectivity(t *testing.T) {
	g, _ := planted() // chain 0-…-7
	sub := []int{0, 1, 2, 3}
	kids := children(g, sub)
	// Only the endpoints can be pruned from a path without disconnecting.
	if len(kids) != 2 {
		t.Fatalf("children count %d want 2: %v", len(kids), kids)
	}
	for _, k := range kids {
		if !connectedSubset(g, k) {
			t.Fatalf("disconnected child %v", k)
		}
		if len(k) != 3 {
			t.Fatalf("child size %d", len(k))
		}
	}
	if children(g, []int{4}) != nil {
		t.Fatal("singleton has no children")
	}
}

func TestSearchRespectsMinNodes(t *testing.T) {
	g, h := planted()
	cfg := DefaultSearchConfig(3)
	cfg.MinNodes = 3
	ex := FexIoTExplain(h, g, cfg)
	if len(ex.Nodes) < cfg.MinNodes {
		t.Fatalf("explanation size %d below MinNodes %d", len(ex.Nodes), cfg.MinNodes)
	}
}

func TestSearchOnTinyGraphs(t *testing.T) {
	g := &graph.Graph{}
	g.AddNode(graph.Node{Feature: []float64{1}})
	h := func(sub *graph.Graph) float64 { return float64(sub.N()) }
	ex := FexIoTExplain(h, g, DefaultSearchConfig(1))
	if len(ex.Nodes) != 1 {
		t.Fatalf("tiny graph explanation %v", ex.Nodes)
	}
	empty := &graph.Graph{}
	ex = FexIoTExplain(h, empty, DefaultSearchConfig(1))
	if len(ex.Nodes) != 0 {
		t.Fatal("empty graph should yield empty explanation")
	}
}

func TestRootComponentPicksLargest(t *testing.T) {
	g := &graph.Graph{}
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Node{Feature: []float64{0}})
	}
	g.AddEdge(0, 1, rules.DirectMatch)
	g.AddEdge(2, 3, rules.DirectMatch)
	g.AddEdge(3, 4, rules.DirectMatch)
	root := rootComponent(g)
	if len(root) != 3 || !hasAll(root, 2, 3, 4) {
		t.Fatalf("root component %v", root)
	}
}
