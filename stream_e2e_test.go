package fexiot_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"fexiot"
	"fexiot/internal/eventlog"
	"fexiot/internal/obs"
)

// streamServer boots the full fexiot.Serve stack with streaming sessions
// tuned for tests (window caps high enough that nothing ages out, so the
// session window is exactly the ingested set).
func streamServer(t *testing.T, sys *fexiot.System, streams fexiot.StreamOptions) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv, err := fexiot.Serve(ctx, sys, fexiot.ServeOptions{
		Addr:           "127.0.0.1:0",
		Workers:        2,
		RequestTimeout: 10 * time.Second,
		Streams:        streams,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "http://" + srv.Addr()
}

func ndjson(t *testing.T, log fexiot.Log) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range log {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

type streamVerdict struct {
	ID           string  `json:"id"`
	Vulnerable   bool    `json:"vulnerable"`
	Score        float64 `json:"score"`
	Drifting     bool    `json:"drifting"`
	DriftScore   float64 `json:"drift_score"`
	Nodes        int     `json:"nodes"`
	SnapshotSeq  uint64  `json:"snapshot_seq"`
	WindowEvents int     `json:"window_events"`
	Refusions    int64   `json:"refusions"`
}

func getVerdict(t *testing.T, base, id string) streamVerdict {
	t.Helper()
	resp, err := http.Get(base + "/v1/streams/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict status %d: %s", resp.StatusCode, body)
	}
	var v streamVerdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad verdict body %s: %v", body, err)
	}
	return v
}

// TestStreamSessionTracksBatchDetection is the streaming acceptance test:
// a live-socket session's rolling verdict is bit-identical to the batch
// path (BuildOnlineGraph + Detect) on the same window, stays bit-identical
// across a republish (with the sequence advancing), and an attack-injected
// batch changes the fused graph within one refusion.
func TestStreamSessionTracksBatchDetection(t *testing.T) {
	sys, train := smallSystem(t, 17)
	sys.TrainCentral(train, 1, 40)
	base := streamServer(t, sys, fexiot.StreamOptions{
		MaxWindowEvents: 1 << 17,
		MaxWindowAge:    1 << 40, // nothing ages out: window == ingested set
	})

	home := fexiot.GenerateHome("safety", 14, 23)
	raw := fexiot.SimulateHome(home, 1200, 29)
	mid := len(raw) / 2
	clean1 := fexiot.CleanLog(append(fexiot.Log(nil), raw[:mid]...))
	attacked := eventlog.Inject(append(fexiot.Log(nil), raw[mid:]...),
		eventlog.FakeCommands, home, 0.8, 31)
	clean2 := fexiot.CleanLog(attacked)
	if len(clean1) == 0 || len(clean2) == 0 {
		t.Fatalf("degenerate halves: %d/%d events", len(clean1), len(clean2))
	}

	// Create the session over the deployed rules.
	body, err := json.Marshal(map[string]any{"rules": home})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/streams", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	created, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, created)
	}
	var cr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(created, &cr); err != nil {
		t.Fatal(err)
	}

	ingest := func(log fexiot.Log) {
		t.Helper()
		resp, err := http.Post(base+"/v1/streams/"+cr.ID+"/events",
			"application/x-ndjson", strings.NewReader(ndjson(t, log)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d: %s", resp.StatusCode, b)
		}
	}

	// mirror replays the manager's window semantics client-side so the
	// batch comparison runs on exactly the session's window.
	var window fexiot.Log
	mirror := func(log fexiot.Log) {
		window = append(window, log...)
		sort.SliceStable(window, func(i, j int) bool {
			return window[i].Time < window[j].Time
		})
	}
	batch := func() (fexiot.Verdict, int) {
		t.Helper()
		g := sys.BuildOnlineGraph(home, window)
		v, err := sys.Detect(g)
		if err != nil {
			t.Fatal(err)
		}
		return v, g.N()
	}

	// Phase 1: the clean half. Stream verdict == batch verdict, bitwise.
	ingest(clean1)
	mirror(clean1)
	v1 := getVerdict(t, base, cr.ID)
	want1, nodes1 := batch()
	if v1.Vulnerable != want1.Vulnerable || v1.Score != want1.Score ||
		v1.Drifting != want1.Drifting || v1.DriftScore != want1.DriftScore {
		t.Fatalf("clean window: stream %+v != batch %+v", v1, want1)
	}
	if v1.Nodes != nodes1 || v1.WindowEvents != len(window) {
		t.Fatalf("clean window: nodes=%d/%d window=%d/%d",
			v1.Nodes, nodes1, v1.WindowEvents, len(window))
	}
	if v1.SnapshotSeq != 1 || v1.Refusions != 1 {
		t.Fatalf("clean window: seq=%d refusions=%d, want 1/1", v1.SnapshotSeq, v1.Refusions)
	}

	// Phase 2: a republish re-scores the same window on the new snapshot —
	// no refusion, sequence advances, still bit-identical to batch.
	sys.TrainCentral(train, 1, 40)
	v2 := getVerdict(t, base, cr.ID)
	want2, _ := batch()
	if v2.SnapshotSeq != 2 {
		t.Fatalf("post-republish seq = %d, want 2", v2.SnapshotSeq)
	}
	if v2.Refusions != 1 {
		t.Fatalf("republish triggered a refusion (refusions = %d)", v2.Refusions)
	}
	if v2.Score != want2.Score || v2.Vulnerable != want2.Vulnerable {
		t.Fatalf("post-republish: stream %+v != batch %+v", v2, want2)
	}

	// Phase 3: the attack-injected half changes the fused graph within one
	// refusion, and the verdict still matches the batch path bitwise.
	ingest(clean2)
	mirror(clean2)
	v3 := getVerdict(t, base, cr.ID)
	want3, nodes3 := batch()
	if v3.Refusions != 2 {
		t.Fatalf("attack ingest: refusions = %d, want 2", v3.Refusions)
	}
	if v3.Nodes != nodes3 || v3.Score != want3.Score ||
		v3.Vulnerable != want3.Vulnerable || v3.DriftScore != want3.DriftScore {
		t.Fatalf("attack window: stream %+v != batch (%+v, %d nodes)", v3, want3, nodes3)
	}
	if v3.Nodes <= v1.Nodes {
		t.Fatalf("fake-command injection left the graph at %d nodes (was %d)",
			v3.Nodes, v1.Nodes)
	}
	if v3.Score == v1.Score && v3.Nodes == v1.Nodes {
		t.Fatal("attack ingest changed nothing")
	}
}

// TestStreamMetricsAndStatus checks the operational surface end to end:
// the feature cache reports hits once a session re-fuses overlapping rule
// sets, /v1/status counts live sessions, and /metrics exports the stream
// family.
func TestStreamMetricsAndStatus(t *testing.T) {
	opts := fexiot.DefaultOptions()
	opts.Seed, opts.WordDim, opts.SentenceDim = 37, 24, 32
	opts.Hidden, opts.EmbedDim = 12, 8
	opts.Metrics = obs.NewRegistry()
	sys, err := fexiot.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var train []*fexiot.Graph
	for home := 0; home < 4; home++ {
		deployed := fexiot.GenerateHome("safety", 18, 37+int64(home))
		train = append(train, sys.BuildGraph(deployed), sys.BuildGraph(deployed))
	}
	sys.TrainCentral(train, 1, 40)
	base := streamServer(t, sys, fexiot.StreamOptions{
		MaxWindowEvents: 1 << 17,
		MaxWindowAge:    1 << 40,
	})

	home := fexiot.GenerateHome("safety", 12, 41)
	log := fexiot.CleanLog(fexiot.SimulateHome(home, 600, 43))
	if len(log) < 4 {
		t.Fatalf("simulator produced only %d events", len(log))
	}
	body, _ := json.Marshal(map[string]any{"rules": home})
	resp, err := http.Post(base+"/v1/streams", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	created, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var cr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(created, &cr); err != nil {
		t.Fatalf("create reply %s: %v", created, err)
	}

	// Two window-changing ingests over the same rule set: the second
	// refusion re-embeds nothing — every rule feature is a cache hit.
	for i := 0; i < 2; i++ {
		half := log[i*len(log)/2 : (i+1)*len(log)/2]
		resp, err := http.Post(base+"/v1/streams/"+cr.ID+"/events",
			"application/x-ndjson", strings.NewReader(ndjson(t, half)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		getVerdict(t, base, cr.ID)
	}

	// /v1/status reports the live session.
	resp, err = http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	stBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		Ready          bool   `json:"ready"`
		SnapshotSeq    uint64 `json:"snapshot_seq"`
		NodeFeatureDim int    `json:"node_feature_dim"`
		StreamSessions *int   `json:"stream_sessions"`
	}
	if err := json.Unmarshal(stBody, &st); err != nil {
		t.Fatalf("bad status %s: %v", stBody, err)
	}
	if !st.Ready || st.SnapshotSeq != 1 || st.NodeFeatureDim == 0 {
		t.Fatalf("status %+v, want ready/seq 1/nonzero dim", st)
	}
	if st.StreamSessions == nil || *st.StreamSessions != 1 {
		t.Fatalf("stream_sessions = %v, want 1", st.StreamSessions)
	}

	// /metrics exports the stream family with a warm feature cache.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(metrics)
	for _, name := range []string{
		"fexiot_stream_sessions 1",
		"fexiot_stream_refusions_total 2",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("/metrics missing %q", name)
		}
	}
	hits := metricValue(t, text, "fexiot_stream_feature_cache_hits_total")
	if hits <= 0 {
		t.Fatalf("feature cache hits = %v, want > 0", hits)
	}
}

func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("unparseable metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("/metrics missing %s", name)
	return 0
}

// TestStreamIdleEvictionEndToEnd pins the janitor through the HTTP
// surface: an untouched session disappears (404 not_found) after its idle
// timeout.
func TestStreamIdleEvictionEndToEnd(t *testing.T) {
	sys, train := smallSystem(t, 19)
	sys.TrainCentral(train, 1, 20)
	base := streamServer(t, sys, fexiot.StreamOptions{
		IdleTimeout:     200 * time.Millisecond,
		JanitorInterval: 50 * time.Millisecond,
	})

	home := fexiot.GenerateHome("safety", 10, 47)
	body, _ := json.Marshal(map[string]any{"rules": home})
	resp, err := http.Post(base+"/v1/streams", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	created, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var cr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(created, &cr); err != nil {
		t.Fatalf("create reply %s: %v", created, err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/streams/" + cr.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			var env struct {
				Err struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.Unmarshal(b, &env); err != nil || env.Err.Code != "not_found" {
				t.Fatalf("eviction reply not a not_found envelope: %s", b)
			}
			return // evicted
		}
		if time.Now().After(deadline) {
			t.Fatalf("session still alive after idle timeout (last status %d)",
				resp.StatusCode)
		}
		// Polling resets lastActive — so only poll every ~idle period and
		// rely on the window between polls exceeding the timeout.
		time.Sleep(300 * time.Millisecond)
	}
}
