package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fexiot/internal/eventlog"
	"fexiot/internal/graph"
	"fexiot/internal/rules"
)

// GraphBuilder fuses a request's rules (and optional event log) into an
// interaction graph. The facade supplies System.BuildGraph /
// System.BuildOnlineGraph; it must be safe for concurrent use.
type GraphBuilder func(rs []*rules.Rule, log eventlog.Log) (*graph.Graph, error)

// DetectRequest is the JSON body of POST /v1/detect and /v1/explain: the
// deployed automation rules, plus an optional cleaned event log — when
// present the rules and log fuse into an online graph, otherwise the rules
// chain into an offline graph.
type DetectRequest struct {
	Rules  []*rules.Rule `json:"rules"`
	Events eventlog.Log  `json:"events,omitempty"`
}

// DetectResponse is the JSON reply of POST /v1/detect.
type DetectResponse struct {
	Vulnerable  bool    `json:"vulnerable"`
	Score       float64 `json:"score"`
	Drifting    bool    `json:"drifting"`
	DriftScore  float64 `json:"drift_score"`
	Nodes       int     `json:"nodes"`
	SnapshotSeq uint64  `json:"snapshot_seq"`
}

// ExplainResponse is the JSON reply of POST /v1/explain.
type ExplainResponse struct {
	NodeIndices []int    `json:"node_indices"`
	RuleIDs     []string `json:"rule_ids"`
	Score       float64  `json:"score"`
	Fidelity    float64  `json:"fidelity"`
	Sparsity    float64  `json:"sparsity"`
	SnapshotSeq uint64   `json:"snapshot_seq"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Mount registers the inference endpoints on mux (typically the
// obs.NewHandler mux, so /v1/* rides next to /metrics). timeout bounds
// each request's queue wait + inference (0 disables).
func (e *Engine) Mount(mux *http.ServeMux, build GraphBuilder, timeout time.Duration) {
	mux.HandleFunc("/v1/detect", func(w http.ResponseWriter, req *http.Request) {
		e.handle(w, req, build, timeout, reqDetect)
	})
	mux.HandleFunc("/v1/explain", func(w http.ResponseWriter, req *http.Request) {
		e.handle(w, req, build, timeout, reqExplain)
	})
}

func (e *Engine) handle(w http.ResponseWriter, req *http.Request,
	build GraphBuilder, timeout time.Duration, kind reqKind) {
	// A panicking handler (hostile payload tripping a parser edge) must
	// cost one 500, never the process.
	defer func() {
		if v := recover(); v != nil {
			e.m.panics.Inc()
			writeJSON(w, http.StatusInternalServerError,
				errorResponse{fmt.Sprintf("%v: %v", ErrPanicked, v)})
		}
	}()
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{"POST a JSON body with rules (and optional events)"})
		return
	}
	req.Body = http.MaxBytesReader(w, req.Body, e.opts.maxBodyBytes())
	var in DetectRequest
	if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad JSON: " + err.Error()})
		return
	}
	if len(in.Rules) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"rules must be non-empty"})
		return
	}
	g, err := build(in.Rules, in.Events)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	ctx := req.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	switch kind {
	case reqDetect:
		v, seq, err := e.Detect(ctx, g)
		if err != nil {
			writeServeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, DetectResponse{
			Vulnerable:  v.Vulnerable,
			Score:       v.Score,
			Drifting:    v.Drifting,
			DriftScore:  v.DriftScore,
			Nodes:       g.N(),
			SnapshotSeq: seq,
		})
	case reqExplain:
		ex, seq, err := e.Explain(ctx, g)
		if err != nil {
			writeServeError(w, err)
			return
		}
		out := ExplainResponse{
			NodeIndices: ex.NodeIndices,
			Score:       ex.Score,
			Fidelity:    ex.Fidelity,
			Sparsity:    ex.Sparsity,
			SnapshotSeq: seq,
		}
		for _, r := range ex.Rules {
			if r != nil {
				out.RuleIDs = append(out.RuleIDs, r.ID)
			}
		}
		writeJSON(w, http.StatusOK, out)
	}
}

// writeServeError maps engine errors onto HTTP statuses: a shed request is
// 429 with a Retry-After hint (back off, the pool is saturated), not-ready
// and closed are 503 (retryable elsewhere), deadline expiry is 504.
func writeServeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
	case errors.Is(err, ErrNotReady), errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}
