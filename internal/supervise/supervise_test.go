package supervise

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fexiot/internal/obs"
)

// fastPolicy keeps test restarts in the microsecond range.
func fastPolicy(maxRestarts int) Policy {
	return Policy{MaxRestarts: maxRestarts, Backoff: time.Microsecond,
		MaxBackoff: time.Millisecond, Seed: 42}
}

// TestRunRecoversPanic pins the crash-to-error conversion: a panicking fn
// yields a *PanicError carrying the panic value and a stack, never an
// unwound test process.
func TestRunRecoversPanic(t *testing.T) {
	err := Run(context.Background(), func(context.Context) error {
		panic("boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError{Value: %v, stack %d bytes}, want boom + stack", pe.Value, len(pe.Stack))
	}
	if err := Run(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatalf("clean fn returned %v", err)
	}
}

// TestSupervisorRestartsUntilSuccess: a task failing a few times is
// restarted (with the restarts counted in state and metrics) and left
// alone once it completes cleanly.
func TestSupervisorRestartsUntilSuccess(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{Policy: fastPolicy(10), Metrics: reg})
	var calls atomic.Int64
	s.Go(context.Background(), "flaky", func(context.Context) error {
		if calls.Add(1) < 4 {
			return errors.New("transient")
		}
		return nil
	})
	s.Wait()
	if got := calls.Load(); got != 4 {
		t.Fatalf("fn ran %d times, want 4", got)
	}
	if got := s.Restarts("flaky"); got != 3 {
		t.Fatalf("Restarts = %d, want 3", got)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("healthy supervisor reports %v", err)
	}
	metric := reg.CounterVec("fexiot_supervisor_restarts_total", "", "task").With("flaky")
	if got := metric.Value(); got != 3 {
		t.Fatalf("restart counter = %v, want 3", got)
	}
}

// TestSupervisorCircuitTrips: a task that keeps panicking exhausts its
// restart budget, trips the circuit (failing Check and firing OnTrip), and
// stops being restarted.
func TestSupervisorCircuitTrips(t *testing.T) {
	tripped := make(chan error, 1)
	s := New(Options{Policy: fastPolicy(2), OnTrip: func(task string, cause error) {
		if task == "doomed" {
			tripped <- cause
		}
	}})
	var calls atomic.Int64
	s.Go(context.Background(), "doomed", func(context.Context) error {
		calls.Add(1)
		panic("always")
	})
	s.Wait()
	// Budget 2 ⇒ initial run + 2 restarts = 3 invocations, then trip.
	if got := calls.Load(); got != 3 {
		t.Fatalf("fn ran %d times, want 3", got)
	}
	err := s.Check()
	if err == nil || !strings.Contains(err.Error(), "doomed") {
		t.Fatalf("Check = %v, want tripped circuit naming the task", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Check error %v does not unwrap to the panic", err)
	}
	select {
	case cause := <-tripped:
		if !errors.As(cause, &pe) {
			t.Fatalf("OnTrip cause %v, want the panic", cause)
		}
	case <-time.After(time.Second):
		t.Fatal("OnTrip never fired")
	}
}

// TestSupervisorStopsOnCancel: cancellation ends the restart loop without
// tripping the circuit, even while the task keeps failing.
func TestSupervisorStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := New(Options{Policy: Policy{MaxRestarts: -1, Backoff: time.Millisecond,
		MaxBackoff: time.Millisecond}})
	started := make(chan struct{}, 64)
	s.Go(ctx, "restarting", func(context.Context) error {
		started <- struct{}{}
		return errors.New("fail")
	})
	<-started
	cancel()
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait hung after cancel")
	}
	if err := s.Check(); err != nil {
		t.Fatalf("cancelled task tripped the circuit: %v", err)
	}
}

// TestRetry pins the bounded-attempt semantics: success after transient
// failures, exhaustion after the budget, and panic conversion.
func TestRetry(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), fastPolicy(5), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Retry err %v after %d calls, want nil after 3", err, calls)
	}

	calls = 0
	err = Retry(context.Background(), fastPolicy(2), func() error {
		calls++
		return errors.New("permanent")
	})
	if err == nil || calls != 3 {
		t.Fatalf("Retry err %v after %d calls, want failure after 3 (1 + budget 2)", err, calls)
	}

	var pe *PanicError
	err = Retry(context.Background(), fastPolicy(1), func() error { panic("disk on fire") })
	if !errors.As(err, &pe) {
		t.Fatalf("Retry on panic = %v, want *PanicError", err)
	}
}

// TestRetryHonoursCancel: a cancelled context stops further attempts.
func TestRetryHonoursCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, Policy{MaxRestarts: -1, Backoff: time.Millisecond}, func() error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("fail")
	})
	if err == nil {
		t.Fatal("cancelled Retry returned nil")
	}
	if calls > 3 {
		t.Fatalf("Retry kept going after cancel: %d calls", calls)
	}
}
