package fed

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fexiot/internal/autodiff"
	"fexiot/internal/mat"
)

// Aggregator combines the (flattened) parameter vectors of a client subset
// into one aggregate vector. FedAvg trusts every vector; the robust
// variants bound the influence any single Byzantine client can exert on
// the result, which is what keeps a poisoned household from corrupting the
// global FexIoT model every platform shares. All aggregators are
// deterministic functions of their inputs, so the in-process simulator and
// the networked fedproto server produce bit-identical rounds from the same
// updates.
//
// vecs[i] is client i's vector, weights[i] its FedAvg data weight
// (normalised to sum 1, as produced by QuorumWeights). Aggregators that
// ignore weights (median, Krum) still receive them so one call site serves
// every scheme. The input vectors are never mutated.
type Aggregator interface {
	Name() string
	Aggregate(vecs [][]float64, weights []float64) []float64
}

// --- Weighted mean (FedAvg) -------------------------------------------------

// MeanAgg is the classic FedAvg data-weighted mean — the repository's
// historical behaviour and the zero-value default of Config.Aggregator.
type MeanAgg struct{}

// Name identifies the aggregator.
func (MeanAgg) Name() string { return "fedavg" }

// Aggregate returns Σ wᵢ·vᵢ.
func (MeanAgg) Aggregate(vecs [][]float64, weights []float64) []float64 {
	out := make([]float64, len(vecs[0]))
	for i, v := range vecs {
		mat.Axpy(out, v, weights[i])
	}
	return out
}

// --- Coordinate-wise trimmed mean ------------------------------------------

// TrimmedMeanAgg is the coordinate-wise trimmed mean (Yin et al., ICML'18):
// at every coordinate the Trim largest and Trim smallest client values are
// discarded and the survivors averaged uniformly. It tolerates up to Trim
// Byzantine clients per coordinate.
type TrimmedMeanAgg struct {
	// Trim is the number of values cut from each tail per coordinate. Zero
	// auto-sizes to floor((n−1)/3), never trimming below one survivor.
	Trim int
}

// Name identifies the aggregator.
func (a TrimmedMeanAgg) Name() string { return "trimmed" }

// trimFor resolves the per-tail cut for n clients.
func (a TrimmedMeanAgg) trimFor(n int) int {
	t := a.Trim
	if t <= 0 {
		t = (n - 1) / 3
	}
	if 2*t >= n {
		t = (n - 1) / 2
	}
	return t
}

// Aggregate computes the coordinate-wise trimmed mean.
func (a TrimmedMeanAgg) Aggregate(vecs [][]float64, weights []float64) []float64 {
	n := len(vecs)
	t := a.trimFor(n)
	if t == 0 {
		return MeanAgg{}.Aggregate(vecs, weights)
	}
	out := make([]float64, len(vecs[0]))
	col := make([]float64, n)
	for j := range out {
		for i, v := range vecs {
			col[i] = v[j]
		}
		sort.Float64s(col)
		var s float64
		for i := t; i < n-t; i++ {
			s += col[i]
		}
		out[j] = s / float64(n-2*t)
	}
	return out
}

// --- Coordinate-wise median -------------------------------------------------

// MedianAgg is the coordinate-wise median — the maximally trimmed mean,
// robust to any minority of Byzantine clients at the cost of discarding the
// data-size weighting entirely.
type MedianAgg struct{}

// Name identifies the aggregator.
func (MedianAgg) Name() string { return "median" }

// Aggregate computes the coordinate-wise median.
func (MedianAgg) Aggregate(vecs [][]float64, weights []float64) []float64 {
	n := len(vecs)
	out := make([]float64, len(vecs[0]))
	col := make([]float64, n)
	for j := range out {
		for i, v := range vecs {
			col[i] = v[j]
		}
		sort.Float64s(col)
		if n%2 == 1 {
			out[j] = col[n/2]
		} else {
			out[j] = (col[n/2-1] + col[n/2]) / 2
		}
	}
	return out
}

// --- Norm-clipped (centered-clipping) mean ----------------------------------

// NormClipAgg is a centered-clipping mean (after Karimireddy et al.): each
// client vector's deviation from the coordinate-wise median is clipped to a
// radius before the data-weighted mean is taken, so a scaled or diverged
// update contributes at most a bounded pull in its own direction.
type NormClipAgg struct {
	// Clip is the deviation-norm radius. Zero auto-calibrates to the median
	// of the clients' deviation norms, which adapts across rounds as the
	// federation converges.
	Clip float64
}

// Name identifies the aggregator.
func (a NormClipAgg) Name() string { return "normclip" }

// Aggregate clips deviations from the coordinate-wise median, then averages.
func (a NormClipAgg) Aggregate(vecs [][]float64, weights []float64) []float64 {
	center := MedianAgg{}.Aggregate(vecs, weights)
	norms := make([]float64, len(vecs))
	for i, v := range vecs {
		var s float64
		for j, x := range v {
			d := x - center[j]
			s += d * d
		}
		norms[i] = math.Sqrt(s)
	}
	clip := a.Clip
	if clip <= 0 {
		clip = mat.Median(norms)
	}
	out := append([]float64(nil), center...)
	for i, v := range vecs {
		scale := weights[i]
		if norms[i] > clip && norms[i] > 0 {
			scale *= clip / norms[i]
		}
		// out = center + Σ wᵢ·clip(vᵢ−center)
		for j, x := range v {
			out[j] += scale * (x - center[j])
		}
	}
	return out
}

// --- (Multi-)Krum -----------------------------------------------------------

// KrumAgg is (Multi-)Krum (Blanchard et al., NeurIPS'17): each client is
// scored by the sum of its squared distances to its n−f−2 nearest
// neighbours; the M lowest-scoring clients are selected and averaged with
// renormalised data weights. M=1 is classic Krum (a single selected
// vector), larger M trades robustness for averaging variance reduction.
type KrumAgg struct {
	// F is the number of Byzantine clients tolerated. Zero auto-sizes to
	// floor((n−1)/3) capped so at least one neighbour remains.
	F int
	// M is the number of selected clients to average; zero selects
	// max(1, n−F−2) (Multi-Krum), one is classic Krum.
	M int
}

// Name identifies the aggregator.
func (a KrumAgg) Name() string {
	if a.M == 1 {
		return "krum"
	}
	return "multikrum"
}

// Aggregate selects by Krum score and averages the selection.
func (a KrumAgg) Aggregate(vecs [][]float64, weights []float64) []float64 {
	n := len(vecs)
	f := a.F
	if f <= 0 {
		f = (n - 1) / 3
	}
	// Krum needs n−f−2 ≥ 1 neighbours; degrade f rather than panic on tiny
	// federations.
	if f > n-3 {
		f = n - 3
	}
	if f < 0 {
		f = 0
	}
	if n <= 2 {
		return MeanAgg{}.Aggregate(vecs, weights)
	}
	// Pairwise squared distances.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for k, x := range vecs[i] {
				d := x - vecs[j][k]
				s += d * d
			}
			d2[i][j], d2[j][i] = s, s
		}
	}
	// Score: sum of the n−f−2 smallest distances to the others.
	neigh := n - f - 2
	if neigh < 1 {
		neigh = 1
	}
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, d2[i][j])
			}
		}
		sort.Float64s(row)
		for _, d := range row[:neigh] {
			scores[i] += d
		}
	}
	m := a.M
	if m <= 0 {
		m = n - f - 2
	}
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	order := indexRange(n)
	sort.SliceStable(order, func(x, y int) bool { return scores[order[x]] < scores[order[y]] })
	sel := order[:m]
	// Renormalise the selection's data weights.
	var wsum float64
	for _, i := range sel {
		wsum += weights[i]
	}
	out := make([]float64, len(vecs[0]))
	for _, i := range sel {
		w := 1 / float64(m)
		if wsum > 0 {
			w = weights[i] / wsum
		}
		mat.Axpy(out, vecs[i], w)
	}
	return out
}

// --- Registry ---------------------------------------------------------------

// AggregatorNames lists the selectable aggregator names accepted by
// NewAggregator (and the fexserver -agg flag).
func AggregatorNames() []string {
	return []string{"fedavg", "trimmed", "median", "normclip", "krum", "multikrum"}
}

// NewAggregator resolves an aggregator by name. The empty string selects
// FedAvg, preserving the behaviour of configurations that predate the
// robust-aggregation subsystem.
func NewAggregator(name string) (Aggregator, error) {
	switch name {
	case "", "fedavg", "mean":
		return MeanAgg{}, nil
	case "trimmed":
		return TrimmedMeanAgg{}, nil
	case "median":
		return MedianAgg{}, nil
	case "normclip":
		return NormClipAgg{}, nil
	case "krum":
		return KrumAgg{M: 1}, nil
	case "multikrum":
		return KrumAgg{}, nil
	default:
		return nil, fmt.Errorf("fed: unknown aggregator %q (valid: %s)",
			name, strings.Join(AggregatorNames(), ", "))
	}
}

// aggregatorOr resolves a Config's aggregator, defaulting to FedAvg.
func aggregatorOr(a Aggregator) Aggregator {
	if a == nil {
		return MeanAgg{}
	}
	return a
}

// AggregateParams overwrites dst with the aggregate of the given parameter
// sets under agg — the whole-model counterpart of autodiff.WeightedAverage
// that every simulator algorithm routes through.
func AggregateParams(agg Aggregator, dst *autodiff.ParamSet, sets []*autodiff.ParamSet, weights []float64) {
	if len(sets) != len(weights) {
		panic("fed: AggregateParams length mismatch")
	}
	if _, ok := agg.(MeanAgg); ok || agg == nil {
		autodiff.WeightedAverage(dst, sets, weights)
		return
	}
	vecs := make([][]float64, len(sets))
	for i, s := range sets {
		vecs[i] = s.Flatten()
	}
	dst.SetFlatten(agg.Aggregate(vecs, weights))
}

// AggregateParamsLayer aggregates only layer l — the layer-wise counterpart
// used by FexIoT's clustered recursion.
func AggregateParamsLayer(agg Aggregator, dst *autodiff.ParamSet, sets []*autodiff.ParamSet, weights []float64, l int) {
	if len(sets) != len(weights) {
		panic("fed: AggregateParamsLayer length mismatch")
	}
	if _, ok := agg.(MeanAgg); ok || agg == nil {
		autodiff.WeightedAverageLayer(dst, sets, weights, l)
		return
	}
	vecs := make([][]float64, len(sets))
	for i, s := range sets {
		vecs[i] = s.FlattenLayer(l)
	}
	dst.SetFlattenLayer(l, agg.Aggregate(vecs, weights))
}
