package obs

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
)

// healthCheck is one named probe; nil error means healthy.
type healthCheck struct {
	name string
	fn   func() error
}

// Health aggregates liveness and readiness probes and serves them on
// /healthz and /readyz. Liveness answers "is the process worth keeping"
// (a tripped supervisor circuit fails it); readiness answers "should this
// instance receive traffic" (no published snapshot, a stale snapshot or a
// down listener fails it). Readiness implies liveness: every liveness
// probe is also consulted by /readyz, so an unhealthy process is never
// advertised as ready. All methods are safe for concurrent use; a nil
// *Health accepts registrations and probes as no-ops, reporting healthy.
type Health struct {
	mu    sync.Mutex
	live  []healthCheck
	ready []healthCheck
}

// NewHealth creates an empty probe set: live and ready until checks say
// otherwise.
func NewHealth() *Health { return &Health{} }

// AddLiveness registers a probe consulted by /healthz (and /readyz).
func (h *Health) AddLiveness(name string, fn func() error) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.live = append(h.live, healthCheck{name, fn})
	h.mu.Unlock()
}

// AddReadiness registers a probe consulted by /readyz only.
func (h *Health) AddReadiness(name string, fn func() error) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.ready = append(h.ready, healthCheck{name, fn})
	h.mu.Unlock()
}

// LiveErr runs the liveness probes and returns the first failure.
func (h *Health) LiveErr() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	checks := append([]healthCheck(nil), h.live...)
	h.mu.Unlock()
	return firstFailure(checks)
}

// ReadyErr runs the liveness and readiness probes and returns the first
// failure.
func (h *Health) ReadyErr() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	checks := append([]healthCheck(nil), h.live...)
	checks = append(checks, h.ready...)
	h.mu.Unlock()
	return firstFailure(checks)
}

func firstFailure(checks []healthCheck) error {
	for _, c := range checks {
		if err := c.fn(); err != nil {
			return &checkError{name: c.name, err: err}
		}
	}
	return nil
}

// checkError names the probe that failed.
type checkError struct {
	name string
	err  error
}

func (e *checkError) Error() string { return e.name + ": " + e.err.Error() }
func (e *checkError) Unwrap() error { return e.err }

// Mount registers /healthz and /readyz on mux (typically the
// obs.NewHandler mux, so the probes ride next to /metrics). 200 with a
// JSON ok body when every probe passes, 503 naming the failing probe
// otherwise.
func (h *Health) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeProbe(w, h.LiveErr())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		writeProbe(w, h.ReadyErr())
	})
}

func writeProbe(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err == nil {
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
		return
	}
	body := map[string]string{"status": "unavailable", "error": err.Error()}
	var ce *checkError
	if errors.As(err, &ce) {
		body["check"] = ce.name
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(body)
}
