// Package gnn implements the graph neural networks of the paper's
// evaluation: GCN (Kipf & Welling) and GIN (Xu et al.) for the homogeneous
// IFTTT dataset, and MAGNN-style metapath-aggregated heterogeneous
// embedding for the five-platform dataset. Models produce fixed-size graph
// embeddings trained with the contrastive loss of Eq. (2); a local linear
// classifier (ml.SGDClassifier) turns embeddings into vulnerability
// predictions, mirroring §III-B1.
package gnn

import (
	"fexiot/internal/autodiff"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
)

// Model is a graph representation learner. Implementations must register
// all weights in a ParamSet with layer indices (bottom = 0) so the
// layer-wise federated clustering of Algorithm 1 can operate on them.
type Model interface {
	// Params exposes the trainable weights.
	Params() *autodiff.ParamSet
	// Forward builds the 1×EmbedDim graph embedding on a tape.
	Forward(t *autodiff.Tape, b *autodiff.Binder, g *graph.Graph) *autodiff.Node
	// EmbedDim is the embedding width.
	EmbedDim() int
	// Fresh returns a new model with the same architecture and
	// independently initialised weights (used to spawn FL clients).
	Fresh(seed int64) Model
}

// Embed runs inference and returns the embedding as a plain vector.
func Embed(m Model, g *graph.Graph) []float64 {
	t := autodiff.NewTape()
	b := autodiff.Bind(t, m.Params())
	out := m.Forward(t, b, g)
	return append([]float64(nil), out.Value.Row(0)...)
}

// EmbedAll embeds a batch of graphs, fanning the independent forward
// passes out over the shared mat worker bound (inference reads the params
// and the mutex-guarded graph caches only, so passes are independent).
func EmbedAll(m Model, gs []*graph.Graph) [][]float64 {
	out := make([][]float64, len(gs))
	mat.ParallelFor(len(gs), func(i int) {
		out[i] = Embed(m, gs[i])
	})
	return out
}
