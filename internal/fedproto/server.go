package fedproto

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fexiot/internal/fed"
	"fexiot/internal/fedproto/codec"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
	"fexiot/internal/supervise"
)

// DefaultRoundTimeout bounds each per-client read and write when
// ServerConfig.RoundTimeout is left zero. One hung or half-closed client
// must not deadlock the whole federation forever.
const DefaultRoundTimeout = 2 * time.Minute

// DefaultQuorum is the fraction of admitted clients whose valid updates
// must arrive before a round closes (ServerConfig.Quorum zero value).
const DefaultQuorum = 2.0 / 3

// DefaultMaxStrikes is the number of consecutive missed rounds after which
// a silent client is evicted (ServerConfig.MaxStrikes zero value).
const DefaultMaxStrikes = 3

// Named protocol errors. All are produced by remote input, never a panic:
// a malformed or non-finite update evicts its sender, and a round that
// closes below quorum fails the federation with ErrQuorumLost wrapping
// every per-client cause.
var (
	ErrMalformedUpdate = errors.New("fedproto: malformed update")
	// ErrNonFiniteUpdate rejects updates carrying NaN or ±Inf weights — a
	// numerically diverged or NaN-injecting client must never reach the
	// aggregator, where a single poisoned coordinate would turn the global
	// mean non-finite for the whole federation.
	ErrNonFiniteUpdate = errors.New("fedproto: non-finite update")
	ErrQuorumLost      = errors.New("fedproto: quorum lost")
)

// ServerConfig controls the networked aggregation server.
type ServerConfig struct {
	Addr      string
	Clients   int // clients to wait for before round 0
	Rounds    int
	Eps1      float64 // Eq. (3) gate, relative interpretation
	Eps2      float64
	NumLayers int
	// RoundTimeout is the per-client read/write deadline applied to every
	// protocol exchange (hello, per-round update receive, model send).
	// Zero selects DefaultRoundTimeout; a negative value disables
	// deadlines entirely (the pre-timeout behaviour).
	RoundTimeout time.Duration
	// Quorum is the fraction of the round's admitted clients whose valid
	// updates must arrive before the deadline for the round to close; the
	// survivors aggregate without the missing members. Zero selects
	// DefaultQuorum; values above 1 clamp to 1 (every client required).
	Quorum float64
	// MaxStrikes evicts a client after this many consecutive missed
	// rounds. Zero selects DefaultMaxStrikes; negative disables eviction,
	// so silent clients keep costing the round deadline forever.
	MaxStrikes int
	// Aggregator combines the responders' layer weights each round. Nil
	// selects the FedAvg quorum-weighted mean (the historical behaviour);
	// the robust alternatives from internal/fed (trimmed mean, median,
	// norm-clipped mean, Krum) bound a Byzantine client's influence.
	Aggregator fed.Aggregator
	// Codec is the update scheme the server prefers clients to use
	// ("raw64", "f32", "q8", "topk"); each session gets it iff the client's
	// hello advertises it, raw64 otherwise. Empty selects raw64 — the dense
	// legacy wire format, byte-identical to pre-codec servers.
	Codec string
	// CheckpointPath, when set, makes the server durable: every
	// CheckpointEvery closed rounds it gob-snapshots the round number,
	// pinned shapes, global model, per-client strike state and stats to
	// this path (atomically, via rename), and a restarted server resumes
	// the federation from the latest snapshot instead of round 0.
	CheckpointPath string
	// CheckpointEvery is the snapshot cadence in closed rounds; zero
	// selects 1 (snapshot after every round).
	CheckpointEvery int
	// Metrics, when non-nil, receives server telemetry: round durations and
	// responder counts, eviction/rejoin/strike totals, wire bytes in both
	// directions, checkpoint and aggregation latency. Nil keeps every
	// instrumentation point on the zero-overhead path.
	Metrics *obs.Registry
	// OnRoundComplete, when non-nil, is invoked after each round's
	// aggregation with the closed round number and the whole-federation
	// global mean — the publish hook serving engines use to swap in a
	// fresh snapshot without polling. The server retains the slice as its
	// resume state, so the callback must treat it as read-only (copy
	// before mutating). It runs synchronously on the round loop (off the
	// server mutex), so slow consumers should hand the payload to their
	// own goroutine.
	OnRoundComplete func(round int, global []LayerPayload)
}

// roundTimeout resolves the configured deadline policy.
func (s *Server) roundTimeout() time.Duration {
	switch {
	case s.cfg.RoundTimeout < 0:
		return 0
	case s.cfg.RoundTimeout == 0:
		return DefaultRoundTimeout
	default:
		return s.cfg.RoundTimeout
	}
}

// quorumFrac resolves the configured quorum fraction.
func (s *Server) quorumFrac() float64 {
	switch {
	case s.cfg.Quorum <= 0:
		return DefaultQuorum
	case s.cfg.Quorum > 1:
		return 1
	default:
		return s.cfg.Quorum
	}
}

// maxStrikes resolves the eviction policy (0 = never evict).
func (s *Server) maxStrikes() int {
	switch {
	case s.cfg.MaxStrikes < 0:
		return 0
	case s.cfg.MaxStrikes == 0:
		return DefaultMaxStrikes
	default:
		return s.cfg.MaxStrikes
	}
}

// aggregator resolves the configured aggregation rule.
func (s *Server) aggregator() fed.Aggregator {
	if s.cfg.Aggregator == nil {
		return fed.MeanAgg{}
	}
	return s.cfg.Aggregator
}

// checkpointEvery resolves the snapshot cadence.
func (s *Server) checkpointEvery() int {
	if s.cfg.CheckpointEvery <= 0 {
		return 1
	}
	return s.cfg.CheckpointEvery
}

// quorumCount is the number of updates required out of n admitted clients.
func quorumCount(frac float64, n int) int {
	need := int(math.Ceil(frac*float64(n) - 1e-9))
	if need < 1 {
		need = 1
	}
	if need > n {
		need = n
	}
	return need
}

// recvDeadline arms the read deadline on c according to the round policy.
func (s *Server) recvDeadline(c *Conn) {
	if d := s.roundTimeout(); d > 0 {
		c.SetReadDeadline(time.Now().Add(d))
	}
}

// sendDeadline arms the write deadline on c according to the round policy.
func (s *Server) sendDeadline(c *Conn) {
	if d := s.roundTimeout(); d > 0 {
		c.SetWriteDeadline(time.Now().Add(d))
	}
}

// maxBases bounds the per-client cache of model snapshots kept as delta
// bases. A well-behaved client encodes against the last model it received,
// so one live base would almost always suffice; a few more absorb replies
// and updates crossing on the wire without unbounded memory.
const maxBases = 4

// clientState is the server's view of one (possibly reconnecting)
// federation member, keyed by the ClientID it announced in MsgHello.
type clientState struct {
	id      int
	conn    *Conn
	size    int // |G_c| for FedAvg weighting
	strikes int // consecutive missed rounds
	alive   bool
	// codec is the update scheme negotiated at this session's admission.
	codec string
	// bases remembers the last maxBases model snapshots sent to this
	// client, keyed by their ModelSeq stamp, so a delta update decodes
	// against the exact base it was encoded against. baseOrder tracks
	// insertion order for pruning. Guarded by Server.mu.
	bases     map[uint64][]LayerPayload
	baseOrder []uint64
}

// rememberBase records one sent model snapshot as a future delta base,
// pruning the oldest past maxBases. Caller holds Server.mu.
func (st *clientState) rememberBase(seq uint64, layers []LayerPayload) {
	if len(layers) == 0 {
		return
	}
	if st.bases == nil {
		st.bases = map[uint64][]LayerPayload{}
	}
	st.bases[seq] = layers
	st.baseOrder = append(st.baseOrder, seq)
	for len(st.baseOrder) > maxBases {
		delete(st.bases, st.baseOrder[0])
		st.baseOrder = st.baseOrder[1:]
	}
}

// ServerStats summarises a federation run for logs and tests.
type ServerStats struct {
	RoundsCompleted int
	Evicted         int
	Rejoined        int
	// Responders records how many clients contributed to each closed round.
	Responders []int
}

// Server aggregates client models over TCP using the layer-wise clustering
// of Algorithm 1. Rounds are quorum-based: the round closes with whichever
// clients delivered a valid update before the deadline, provided they are
// at least Quorum of the admitted population; clients that stay silent for
// MaxStrikes consecutive rounds are evicted, and clients that reconnect
// are re-admitted by replaying the current aggregated model along with the
// round number to resume at.
type Server struct {
	cfg     ServerConfig
	metrics serverMetrics
	// sup restarts the accept loop on transient Accept errors; its tripped
	// circuit surfaces through Healthy (and from there /healthz).
	sup *supervise.Supervisor
	// listening is true between Listen succeeding and Run returning — the
	// readiness signal behind Ready (/readyz).
	listening atomic.Bool

	mu        sync.Mutex
	cond      *sync.Cond
	clients   []*clientState
	round     int            // round currently being collected
	global    []LayerPayload // last closed round's whole-federation mean
	shapes    [][][2]int     // per layer per tensor, pinned by the first valid update
	names     [][]string
	retired   int64 // byte tally of replaced or closed connections
	acceptErr error
	closed    bool
	stats     ServerStats
	// seq stamps every model snapshot sent to a client (session-unique,
	// monotonic, 0 = "no stamp") so delta updates can name their base.
	seq uint64
	// startRound is where Run's round loop begins — nonzero after a
	// checkpoint restore.
	startRound int
	// restoredStrikes carries per-client strike state across a restart:
	// consumed by the first hello of each rejoining client id.
	restoredStrikes map[int]int
}

// NewServer creates a server.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{cfg: cfg, metrics: newServerMetrics(cfg.Metrics, cfg.Aggregator)}
	s.cond = sync.NewCond(&s.mu)
	s.sup = supervise.New(supervise.Options{
		Policy:  supervise.Policy{MaxRestarts: 5, Backoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second, Seed: 7},
		Metrics: cfg.Metrics,
		// A tripped accept circuit must fail the federation the way a fatal
		// Accept error always has: park the error where Run's wait loop and
		// Healthy look.
		OnTrip: func(_ string, cause error) {
			s.mu.Lock()
			s.acceptErr = cause
			s.cond.Broadcast()
			s.mu.Unlock()
		},
	})
	return s
}

// Healthy reports the server's liveness: nil while the supervised accept
// loop is within its restart budget, the tripped circuit's cause once
// admissions have permanently failed. Wire it to /healthz.
func (s *Server) Healthy() error {
	if err := s.sup.Check(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acceptErr
}

// Ready reports whether the server is accepting connections — true between
// the listener coming up and Run returning. Wire it to /readyz.
func (s *Server) Ready() error {
	if !s.listening.Load() {
		return errors.New("fedproto: not listening")
	}
	return nil
}

// Stats returns a snapshot of the run's fault-tolerance counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Responders = append([]int(nil), s.stats.Responders...)
	return st
}

// Run listens, waits for the configured number of clients, coordinates the
// rounds and returns total transferred bytes (both directions, all
// clients). It keeps accepting connections for the whole run so evicted or
// crashed clients can rejoin mid-federation.
//
// Cancelling ctx is the graceful shutdown path: the server stops as if
// Stop had been called, flushes one final checkpoint of the last closed
// round (when checkpointing is configured) so a restarted server resumes
// exactly where cancellation caught this one, and returns an error
// wrapping context.Cause(ctx).
func (s *Server) Run(ctx context.Context) (int64, error) {
	if _, err := codec.New(s.cfg.Codec); err != nil {
		return 0, err
	}
	if err := s.restoreCheckpoint(); err != nil {
		return 0, err
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	s.listening.Store(true)
	defer s.listening.Store(false)
	// Every return path releases every accepted socket: failed rounds must
	// not leak fds.
	defer s.closeAll()

	stop := context.AfterFunc(ctx, s.Stop)
	defer stop()

	// The accept loop runs supervised: a transient Accept error (fd
	// pressure, a scribbling middlebox) restarts it with backoff instead of
	// bricking admissions for the rest of the federation; only a persistent
	// failure trips the circuit and fails Run.
	s.sup.Go(ctx, "fedproto-accept", func(context.Context) error {
		return s.acceptPass(ln)
	})

	s.mu.Lock()
	for s.aliveCount() < s.cfg.Clients && s.acceptErr == nil && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		start := s.startRound
		s.mu.Unlock()
		if ctx.Err() != nil {
			return s.totalBytes(), s.cancelled(ctx, start)
		}
		return s.totalBytes(), fmt.Errorf("fedproto: server stopped before round %d", start)
	}
	if err := s.acceptErr; err != nil && s.aliveCount() < s.cfg.Clients {
		s.mu.Unlock()
		return s.totalBytes(), fmt.Errorf("fedproto: accept: %w", err)
	}
	start := s.startRound
	s.mu.Unlock()

	for round := start; round < s.cfg.Rounds; round++ {
		if err := s.runRound(round); err != nil {
			if ctx.Err() != nil {
				// The round died because cancellation tore the sockets down,
				// not because the federation failed: report the shutdown,
				// with state durable as of the last closed round.
				return s.totalBytes(), s.cancelled(ctx, round)
			}
			return s.totalBytes(), err
		}
	}
	return s.totalBytes(), nil
}

// ckptRetry writes the checkpoint under a bounded retry: a flaky disk gets
// a few backed-off attempts (and a panicking write is converted to an
// error) before the failure propagates to the round.
func (s *Server) ckptRetry(nextRound int) error {
	return supervise.Retry(context.Background(),
		supervise.Policy{MaxRestarts: 3, Backoff: 5 * time.Millisecond,
			MaxBackoff: 50 * time.Millisecond, Seed: int64(nextRound)},
		func() error { return s.saveCheckpoint(nextRound) })
}

// cancelled flushes the shutdown checkpoint (rounds [0, nextRound) have
// closed) and builds Run's cancellation error.
func (s *Server) cancelled(ctx context.Context, nextRound int) error {
	if s.cfg.CheckpointPath != "" {
		if err := s.ckptRetry(nextRound); err != nil {
			return fmt.Errorf("fedproto: shutdown checkpoint: %w (after %w)",
				err, context.Cause(ctx))
		}
	}
	return fmt.Errorf("fedproto: server stopped before round %d: %w",
		nextRound, context.Cause(ctx))
}

// Stop crashes the server mid-federation: every socket is torn down and no
// further admissions are accepted, so Run fails its in-flight round and
// returns. With checkpointing enabled, a fresh Server on the same
// CheckpointPath resumes where the last snapshot left off — Stop is the
// kill switch the crash-recovery tests (and operators' SIGTERM handlers)
// exercise.
func (s *Server) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, st := range s.clients {
		if st.conn != nil {
			st.conn.Close()
		}
	}
	s.cond.Broadcast()
}

// acceptPass admits clients for the lifetime of the listener, including
// late joiners and rejoining evictees. It returns nil on orderly shutdown
// (listener closed by Stop/closeAll) and the Accept error otherwise, which
// the supervisor answers with a backed-off restart. A panic in one
// admission handshake closes that socket without taking the loop down.
func (s *Server) acceptPass(ln net.Listener) error {
	for {
		raw, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.isClosed() {
				return nil
			}
			return err
		}
		go func() {
			if perr := supervise.Run(context.Background(), func(context.Context) error {
				s.admit(raw)
				return nil
			}); perr != nil {
				raw.Close()
			}
		}()
	}
}

// isClosed reports whether Stop or closeAll has run.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// admit completes the hello handshake on one accepted socket, registers
// (or re-registers) the client, and replays the current aggregated model
// so a rejoiner resumes at the server's round instead of desyncing.
func (s *Server) admit(raw net.Conn) {
	c := Wrap(raw)
	c.Instrument(s.metrics.bytesIn, s.metrics.bytesOut)
	s.recvDeadline(c)
	hello, err := c.Recv()
	if err != nil || hello.Kind != MsgHello {
		raw.Close()
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		raw.Close()
		return
	}
	st := s.findClient(hello.ClientID)
	if st == nil {
		st = &clientState{id: hello.ClientID}
		s.clients = append(s.clients, st)
	} else {
		// Reconnect: retire the stale socket but keep its byte tally.
		if st.conn != nil {
			in, out := st.conn.Bytes()
			s.retired += in + out
			st.conn.Close()
		}
		s.stats.Rejoined++
		s.metrics.rejoined.Inc()
	}
	st.conn, st.size, st.strikes, st.alive = c, hello.DataSize, 0, true
	s.metrics.live.Set(float64(s.aliveCount()))
	// A client re-admitted after a server restart inherits the strike
	// state the checkpoint recorded for it (consumed once; later
	// reconnects reset to zero as usual, having proven liveness).
	if n, ok := s.restoredStrikes[hello.ClientID]; ok {
		st.strikes = n
		delete(s.restoredStrikes, hello.ClientID)
	}
	st.codec = negotiateCodec(s.cfg.Codec, hello.Codecs)
	// A fresh session starts from the sync model; bases the previous
	// session encoded against are dead weight.
	st.bases, st.baseOrder = nil, nil
	// Sync reply: the round to resume at plus the current aggregated
	// model (nil before the first round closes — fresh joiners start from
	// their own initialisation like the in-process simulator). A server
	// resumed past its final round tells the client the federation is
	// already over. The reply also assigns the session's update codec and,
	// when a model ships, stamps it as a delta base.
	syncMsg := &Message{Kind: MsgModel, Round: s.round, Layers: s.global,
		Codec: st.codec,
		Final: s.cfg.Rounds > 0 && s.round >= s.cfg.Rounds}
	if len(s.global) > 0 {
		s.seq++
		syncMsg.ModelSeq = s.seq
		st.rememberBase(s.seq, s.global)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	s.sendDeadline(c)
	if err := c.Send(syncMsg); err != nil {
		s.mu.Lock()
		s.dropIfCurrent(st, c)
		s.mu.Unlock()
	}
}

// findClient returns the state registered for id, if any. Caller holds mu.
func (s *Server) findClient(id int) *clientState {
	for _, st := range s.clients {
		if st.id == id {
			return st
		}
	}
	return nil
}

// aliveCount counts admitted, non-evicted clients. Caller holds mu.
func (s *Server) aliveCount() int {
	n := 0
	for _, st := range s.clients {
		if st.alive {
			n++
		}
	}
	return n
}

// dropIfCurrent marks st dead if conn is still its active socket; a state
// that rejoined on a fresh socket in the meantime is left alone. Caller
// holds mu.
func (s *Server) dropIfCurrent(st *clientState, conn *Conn) {
	if st.conn != conn || !st.alive {
		return
	}
	st.alive = false
	s.stats.Evicted++
	s.metrics.evicted.Inc()
	s.metrics.live.Set(float64(s.aliveCount()))
	conn.Close()
}

// recvResult is one client's outcome for a round's collection phase.
type recvResult struct {
	st     *clientState
	conn   *Conn
	layers []LayerPayload
	err    error
}

// runRound collects one round of updates from every live client, closes
// the round at quorum, aggregates, and replies to the contributors.
func (s *Server) runRound(round int) error {
	sp := obs.StartSpan(s.metrics.roundDur)
	defer sp.End()
	s.mu.Lock()
	s.round = round
	var live []recvResult
	for _, st := range s.clients {
		if st.alive {
			live = append(live, recvResult{st: st, conn: st.conn})
		}
	}
	s.mu.Unlock()
	// Aggregate in client-id order, not admission order: float summation
	// order must not depend on goroutine scheduling, or a resumed federation
	// could drift from an uninterrupted one in the last ulp.
	sort.Slice(live, func(i, j int) bool { return live[i].st.id < live[j].st.id })

	// Collect updates concurrently, each receive bounded by the round
	// deadline so one hung client costs at most the deadline, never the
	// federation. Round numbers on updates are advisory: a client that
	// missed the previous reply resends against a slightly stale model and
	// the authoritative round in our reply resyncs it (bounded staleness
	// instead of a desynced stream).
	var wg sync.WaitGroup
	for i := range live {
		wg.Add(1)
		go func(r *recvResult) {
			defer wg.Done()
			s.recvDeadline(r.conn)
			before := r.conn.InBytes()
			m, err := r.conn.Recv()
			if err != nil {
				r.err = err
				return
			}
			wire := r.conn.InBytes() - before
			// Reconstruct dense absolute weights from whatever codec the
			// update declares before any further validation — downstream
			// checks and the aggregator only ever see raw64-shaped data.
			var base []LayerPayload
			if m.Delta {
				s.mu.Lock()
				base = r.st.bases[m.BaseSeq]
				s.mu.Unlock()
			}
			if err := decodeUpdate(m, base); err != nil {
				r.err = err
				return
			}
			if err := ValidateUpdate(m, s.cfg.NumLayers); err != nil {
				r.err = err
				return
			}
			if err := CheckFiniteUpdate(m); err != nil {
				r.err = err
				return
			}
			if err := s.checkShapes(m); err != nil {
				r.err = err
				return
			}
			r.layers = m.Layers
			scheme := m.Codec
			if scheme == "" {
				scheme = codec.Raw64
			}
			raw := denseBytes(m.Layers)
			s.metrics.updEnc.With(scheme).Add(wire)
			s.metrics.updRaw.Add(raw)
			if wire > 0 {
				s.metrics.ratio.Observe(float64(raw) / float64(wire))
			}
		}(&live[i])
	}
	wg.Wait()

	var responders []*clientState
	var upd [][]LayerPayload
	var sizes []int
	var errs []error
	s.mu.Lock()
	for i := range live {
		r := &live[i]
		if r.err == nil {
			responders = append(responders, r.st)
			upd = append(upd, r.layers)
			sizes = append(sizes, r.st.size)
			if r.st.conn == r.conn {
				r.st.strikes = 0
			}
			continue
		}
		errs = append(errs, fmt.Errorf("fedproto: round %d client %d: %w", round, r.st.id, r.err))
		s.metrics.rejected.Inc()
		if r.st.conn != r.conn {
			continue // rejoined on a fresh socket mid-round; stale error
		}
		var nerr net.Error
		if errors.As(r.err, &nerr) && nerr.Timeout() {
			// Silence: strike, evict only after MaxStrikes in a row.
			r.st.strikes++
			s.metrics.strikes.Inc()
			if ms := s.maxStrikes(); ms > 0 && r.st.strikes >= ms {
				s.dropIfCurrent(r.st, r.conn)
			}
		} else {
			// Broken or untrusted stream (EOF, reset, malformed update):
			// the gob framing cannot be trusted any more, so evict now and
			// let the client resync by reconnecting.
			s.dropIfCurrent(r.st, r.conn)
		}
	}
	s.mu.Unlock()

	need := quorumCount(s.quorumFrac(), len(live))
	if len(responders) < need {
		s.metrics.quorumLost.Inc()
		errs = append([]error{fmt.Errorf("fedproto: round %d: %w (%d/%d updates, quorum %d)",
			round, ErrQuorumLost, len(responders), len(live), need)}, errs...)
		return errors.Join(errs...)
	}

	// Layer-wise clustering aggregation over the responders, mirroring
	// fed.FexIoT with the same FedAvg quorum weighting; the configured
	// aggregator decides how each cluster's layer weights combine.
	agg := newRoundAgg(s.cfg, s.aggregator(), upd, sizes)
	asp := obs.StartSpan(s.metrics.aggDur)
	replies := agg.run()
	global := agg.globalMean()
	asp.End()

	s.mu.Lock()
	s.global = global
	s.stats.RoundsCompleted++
	s.stats.Responders = append(s.stats.Responders, len(responders))
	s.mu.Unlock()
	s.metrics.rounds.Inc()
	s.metrics.responders.Set(float64(len(responders)))
	if s.cfg.OnRoundComplete != nil {
		s.cfg.OnRoundComplete(round, global)
	}

	// Durability point: the round is closed and the global model final, so
	// this is the state a restarted server must resume from.
	if s.cfg.CheckpointPath != "" && (round+1)%s.checkpointEvery() == 0 {
		csp := obs.StartSpan(s.metrics.ckptDur)
		err := s.ckptRetry(round + 1)
		csp.End()
		if err != nil {
			return fmt.Errorf("fedproto: round %d checkpoint: %w", round, err)
		}
	}

	final := round == s.cfg.Rounds-1
	for k, st := range responders {
		msg := &Message{Kind: MsgModel, Round: round, Final: final, Layers: replies[k]}
		// Stamp and remember the snapshot before sending: the client cannot
		// echo a stamp it has not received, so remembering first means a
		// delta naming this base always resolves. The conn is captured under
		// mu so a concurrent rejoin cannot swap it mid-send.
		s.mu.Lock()
		s.seq++
		msg.ModelSeq = s.seq
		st.rememberBase(s.seq, replies[k])
		conn := st.conn
		s.mu.Unlock()
		s.sendDeadline(conn)
		if err := conn.Send(msg); err != nil {
			// A failed reply is that client's problem, not the round's: it
			// will miss the next collection and rejoin through admit.
			s.mu.Lock()
			s.dropIfCurrent(st, conn)
			s.mu.Unlock()
		}
	}
	return nil
}

// checkShapes pins the federation's tensor layout to the first valid
// update and rejects later updates that disagree — a mismatched payload
// must fail with a named error before it can panic the aggregation.
func (s *Server) checkShapes(m *Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shapes == nil {
		s.shapes = make([][][2]int, len(m.Layers))
		s.names = make([][]string, len(m.Layers))
		for l, pl := range m.Layers {
			s.shapes[l] = append([][2]int(nil), pl.Shapes...)
			s.names[l] = append([]string(nil), pl.Names...)
		}
		return nil
	}
	for l, pl := range m.Layers {
		if len(pl.Names) != len(s.names[l]) {
			return fmt.Errorf("%w: layer %d has %d tensors, federation uses %d",
				ErrMalformedUpdate, l, len(pl.Names), len(s.names[l]))
		}
		for i := range pl.Names {
			if pl.Names[i] != s.names[l][i] || pl.Shapes[i] != s.shapes[l][i] {
				return fmt.Errorf("%w: layer %d tensor %d is %s%v, federation uses %s%v",
					ErrMalformedUpdate, l, i, pl.Names[i], pl.Shapes[i],
					s.names[l][i], s.shapes[l][i])
			}
		}
	}
	return nil
}

// closeAll releases every accepted socket and stops further admissions.
func (s *Server) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, st := range s.clients {
		if st.conn != nil {
			st.conn.Close()
		}
	}
}

func (s *Server) totalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.retired
	for _, st := range s.clients {
		if st.conn != nil {
			in, out := st.conn.Bytes()
			total += in + out
		}
	}
	return total
}

// --- Round aggregation -------------------------------------------------------

// roundAgg runs one round of the layer-wise clustering aggregation
// (Algorithm 1) over the validated updates of the round's responders. It
// is connection-free so tests can pin clustering decisions on crafted
// payloads.
type roundAgg struct {
	cfg      ServerConfig
	agg      fed.Aggregator
	payloads [][]LayerPayload // [responder][layer]
	sizes    []int
	flats    map[[2]int][]float64 // (responder, layer) → flattened weights
	leaves   [][]int              // bottom-layer clusters (diagnostics/tests)
}

func newRoundAgg(cfg ServerConfig, agg fed.Aggregator, payloads [][]LayerPayload, sizes []int) *roundAgg {
	if agg == nil {
		agg = fed.MeanAgg{}
	}
	return &roundAgg{cfg: cfg, agg: agg, payloads: payloads, sizes: sizes,
		flats: map[[2]int][]float64{}}
}

// run aggregates every layer and returns one reply (all layers) per
// responder.
func (a *roundAgg) run() [][]LayerPayload {
	replies := make([][]LayerPayload, len(a.payloads))
	a.aggregate(0, indexRange(len(a.payloads)), replies)
	return replies
}

// globalMean is the whole-population weighted mean of every layer — the
// model replayed to (re)joining clients so they resync with the
// federation regardless of which cluster they will land in.
func (a *roundAgg) globalMean() []LayerPayload {
	all := indexRange(len(a.payloads))
	out := make([]LayerPayload, 0, a.cfg.NumLayers)
	for l := 0; l < a.cfg.NumLayers; l++ {
		out = append(out, a.average(all, l))
	}
	return out
}

// flat memoises the flattened layer weights of one responder.
func (a *roundAgg) flat(i, layer int) []float64 {
	key := [2]int{i, layer}
	if f, ok := a.flats[key]; ok {
		return f
	}
	f := flatten(a.payloads[i][layer])
	a.flats[key] = f
	return f
}

// aggregate recursively clusters and averages one layer, then descends.
func (a *roundAgg) aggregate(layer int, cluster []int, replies [][]LayerPayload) {
	if layer >= a.cfg.NumLayers {
		a.leaves = append(a.leaves, cluster)
		return
	}
	// Gate: relative Eq. (3) over the clients' reported update norms and
	// the FedAvg-weighted mean direction. The server has no previous
	// weights, so the dispersion of the current weights around their
	// weighted mean stands in for update-direction disagreement:
	// ‖Σ w ΔW‖ ≈ avg‖ΔW‖·(1 − dispersion).
	split := false
	if len(cluster) >= 2 {
		avg, maxN := 0.0, 0.0
		for _, i := range cluster {
			n := a.payloads[i][layer].UpdateNorm
			avg += n
			if n > maxN {
				maxN = n
			}
		}
		avg /= float64(len(cluster))
		if avg > 0 {
			disp := a.dispersion(cluster, layer)
			split = disp > 0 &&
				maxN > a.cfg.Eps2*avg && avg*(1-disp) < a.cfg.Eps1*avg
		}
	}
	if split {
		c1, c2 := a.binaryCluster(cluster, layer)
		if len(c2) > 0 {
			a.averageInto(c1, layer, replies)
			a.averageInto(c2, layer, replies)
			a.aggregate(layer+1, c1, replies)
			a.aggregate(layer+1, c2, replies)
			return
		}
	}
	a.averageInto(cluster, layer, replies)
	a.aggregate(layer+1, cluster, replies)
}

// dispersion is the weighted-mean cosine disagreement of the cluster: the
// mean (1 − cosine) between each member's layer weights and the
// FedAvg-weighted cluster mean.
func (a *roundAgg) dispersion(cluster []int, layer int) float64 {
	w := fed.QuorumWeights(a.sizes, cluster)
	var mean []float64
	for k, i := range cluster {
		f := a.flat(i, layer)
		if mean == nil {
			mean = make([]float64, len(f))
		}
		mat.Axpy(mean, f, w[k])
	}
	var d float64
	for _, i := range cluster {
		d += 1 - mat.CosineSimilarity(a.flat(i, layer), mean)
	}
	return d / float64(len(cluster))
}

// binaryCluster splits by cosine similarity of layer weights.
func (a *roundAgg) binaryCluster(cluster []int, layer int) ([]int, []int) {
	seedA, seedB := cluster[0], cluster[1]
	worst := 2.0
	for x := 0; x < len(cluster); x++ {
		for y := x + 1; y < len(cluster); y++ {
			sim := mat.CosineSimilarity(a.flat(cluster[x], layer), a.flat(cluster[y], layer))
			if sim < worst {
				worst = sim
				seedA, seedB = cluster[x], cluster[y]
			}
		}
	}
	var c1, c2 []int
	for _, i := range cluster {
		if mat.CosineSimilarity(a.flat(i, layer), a.flat(seedA, layer)) >=
			mat.CosineSimilarity(a.flat(i, layer), a.flat(seedB, layer)) {
			c1 = append(c1, i)
		} else {
			c2 = append(c2, i)
		}
	}
	// Match the in-process semantics: singleton clusters fragment the
	// federation, so keep the cluster whole instead.
	if len(c1) < 2 || len(c2) < 2 {
		return cluster, nil
	}
	return c1, c2
}

// average returns the cluster's layer aggregate under the configured
// aggregator (the quorum-weighted mean under FedAvg). The flattened layer
// is aggregated as one vector — Krum's distance scores need the whole
// layer, not per-tensor fragments — then split back along tensor bounds.
func (a *roundAgg) average(cluster []int, layer int) LayerPayload {
	w := fed.QuorumWeights(a.sizes, cluster)
	vecs := make([][]float64, len(cluster))
	for k, i := range cluster {
		vecs[k] = a.flat(i, layer)
	}
	aggVec := a.agg.Aggregate(vecs, w)
	tmpl := a.payloads[cluster[0]][layer]
	avg := LayerPayload{Layer: tmpl.Layer, Names: tmpl.Names, Shapes: tmpl.Shapes}
	off := 0
	for di := range tmpl.Data {
		n := len(tmpl.Data[di])
		avg.Data = append(avg.Data, append([]float64(nil), aggVec[off:off+n]...))
		off += n
	}
	return avg
}

// averageInto writes the weighted layer mean into every member's reply.
func (a *roundAgg) averageInto(cluster []int, layer int, replies [][]LayerPayload) {
	if len(cluster) == 0 {
		return
	}
	avg := a.average(cluster, layer)
	for _, i := range cluster {
		replies[i] = append(replies[i], avg)
	}
}

func flatten(p LayerPayload) []float64 {
	var out []float64
	for _, d := range p.Data {
		out = append(out, d...)
	}
	return out
}

func indexRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
