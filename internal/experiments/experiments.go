// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV). Each driver regenerates the corresponding
// rows/series — workload generation, training, measurement and formatted
// output — at the scale selected by FEXIOT_SCALE (CI by default, "paper"
// for the full Table I counts). EXPERIMENTS.md records paper-reported vs
// measured values produced by these drivers.
package experiments

import (
	"fmt"
	"strings"

	"fexiot/internal/autodiff"
	"fexiot/internal/datasets"
	"fexiot/internal/fed"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/ml"
	"fexiot/internal/obs"
)

// Setup bundles the shared configuration of the federated experiments.
type Setup struct {
	Scale datasets.Scale
	// Federated training shape.
	Rounds        int
	PairsPerRound int
	LR            float64
	Hidden        int
	EmbedDim      int
	Eps1, Eps2    float64
	Seed          int64
	// Metrics, when non-nil, threads an observability registry through
	// every experiment's simulator, trainer and networked-federation
	// configs (nil: zero-overhead paths everywhere).
	Metrics *obs.Registry
}

// DefaultSetup derives experiment sizing from the active dataset scale.
func DefaultSetup() Setup {
	sc := datasets.Active()
	s := Setup{
		Scale:         sc,
		Rounds:        22,
		PairsPerRound: 150,
		LR:            0.005,
		Hidden:        24,
		EmbedDim:      16,
		Eps1:          0.4,
		Eps2:          0.95,
		Seed:          1,
	}
	if sc.Name == "paper" {
		s.Rounds = 60
		s.PairsPerRound = 400
	}
	return s
}

// fedConfig builds the fed.Config for a setup.
func (s Setup) fedConfig() fed.Config {
	cfg := fed.DefaultConfig(s.Seed)
	cfg.Rounds = s.Rounds
	cfg.Eps1, cfg.Eps2 = s.Eps1, s.Eps2
	cfg.Train.LR = s.LR
	cfg.Train.PairsPerEpoch = s.PairsPerRound
	cfg.Metrics = s.Metrics
	return cfg
}

// newModel builds the GNN for a dataset by name ("GIN", "GCN", "MAGNN").
func (s Setup) newModel(kind string, enc interface {
	WordDim() int
	SentenceDim() int
}, seed int64) gnn.Model {
	wordDim := enc.WordDim() + 2*fusion.SigDim
	sentDim := enc.SentenceDim() + 2*fusion.SigDim
	switch kind {
	case "GCN":
		return gnn.NewGCN(wordDim, s.Hidden, s.EmbedDim, seed)
	case "MAGNN":
		return gnn.NewMAGNN(wordDim, sentDim, s.Hidden, s.EmbedDim, seed)
	default:
		return gnn.NewGIN(wordDim, s.Hidden, s.EmbedDim, seed)
	}
}

// splitClients Dirichlet-splits labelled graphs into per-client shards and
// splits each shard 80/20 into local train and test sets — the paper's
// per-trial protocol (§IV-C), under which every client is evaluated against
// its own deployment distribution.
type clientData struct {
	train [][]*graph.Graph
	test  [][]*graph.Graph
}

func (s Setup) splitClients(labeled []*graph.Graph, n int, alpha float64, seed int64) clientData {
	shards := fed.DirichletSplit(labeled, n, alpha, fed.LabelArchetypeClass(5), seed)
	cd := clientData{train: make([][]*graph.Graph, n), test: make([][]*graph.Graph, n)}
	for i, ds := range shards {
		cut := len(ds) * 8 / 10
		cd.train[i] = ds[:cut]
		cd.test[i] = ds[cut:]
	}
	return cd
}

// runFederated trains clients under an algorithm and returns per-client
// metrics plus the training result.
func (s Setup) runFederated(algo fed.Algorithm, base gnn.Model,
	cd clientData) ([]ml.Metrics, *fed.Result) {
	clients := fed.NewClients(base, cd.train, s.LR)
	res := algo.Run(clients, s.fedConfig())
	metrics := make([]ml.Metrics, len(clients))
	// Bounded by the shared mat parallelism knob: one goroutine per client
	// would oversubscribe the scheduler at FEXIOT_SCALE=paper client counts.
	mat.ParallelFor(len(clients), func(i int) {
		metrics[i] = fed.EvaluateClient(clients[i], cd.test[i], 3)
	})
	return metrics, res
}

// meanMetrics averages client metrics.
func meanMetrics(ms []ml.Metrics) ml.Metrics {
	var out ml.Metrics
	for _, m := range ms {
		out.Accuracy += m.Accuracy
		out.Precision += m.Precision
		out.Recall += m.Recall
		out.F1 += m.F1
	}
	n := float64(len(ms))
	if n > 0 {
		out.Accuracy /= n
		out.Precision /= n
		out.Recall /= n
		out.F1 /= n
	}
	return out
}

// Table renders aligned rows for terminal output.
type Table struct {
	Title   string
	Header  []string
	RowData [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.RowData = append(t.RowData, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.RowData {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.RowData {
		writeRow(row)
	}
	return b.String()
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

var _ = autodiff.NewAdam // referenced by sibling files
