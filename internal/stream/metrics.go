package stream

import (
	"fexiot/internal/obs"
)

// metrics bundles the fexiot_stream_* handles, resolved once at manager
// construction. Every obs handle is nil-safe, so a nil registry keeps the
// streaming hot path on the zero-overhead branch.
type metrics struct {
	sessions    *obs.Gauge
	created     *obs.Counter
	events      *obs.Counter
	refusions   *obs.Counter
	refused     *obs.Counter
	evictions   *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	verdictLag  *obs.Histogram
	writeErrs   *obs.Counter
	panics      *obs.Counter
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		return metrics{}
	}
	return metrics{
		sessions: r.Gauge("fexiot_stream_sessions",
			"live streaming detection sessions"),
		created: r.Counter("fexiot_stream_sessions_created_total",
			"streaming sessions ever created"),
		events: r.Counter("fexiot_stream_events_total",
			"events ingested across all sessions"),
		refusions: r.Counter("fexiot_stream_refusions_total",
			"window re-fusions into a fresh online graph"),
		refused: r.Counter("fexiot_stream_refusals_total",
			"session creations shed because the session table was full"),
		evictions: r.Counter("fexiot_stream_evictions_total",
			"sessions evicted by the idle janitor"),
		cacheHits: r.Counter("fexiot_stream_feature_cache_hits_total",
			"node-feature cache hits observed across refusions"),
		cacheMisses: r.Counter("fexiot_stream_feature_cache_misses_total",
			"node-feature cache misses observed across refusions"),
		verdictLag: r.Histogram("fexiot_stream_verdict_lag_seconds",
			"wall time from the newest ingested batch to the refusion that scoped it",
			obs.DefBuckets),
		writeErrs: r.Counter("fexiot_stream_response_write_errors_total",
			"JSON responses whose network write failed after the status line"),
		panics: r.Counter("fexiot_stream_panics_total",
			"panics recovered in stream HTTP handlers"),
	}
}
