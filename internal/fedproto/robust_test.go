package fedproto

import (
	"context"
	"errors"
	"math"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fexiot/internal/autodiff"
)

// TestCheckFiniteUpdateUnit pins the gate itself: clean updates pass, NaN
// or Inf anywhere in the payload (weights or reported norm) fails with
// ErrNonFiniteUpdate.
func TestCheckFiniteUpdateUnit(t *testing.T) {
	mkMsg := func() *Message {
		p := scriptParams()
		return &Message{Kind: MsgUpdate, ClientID: 1, Round: 0,
			Layers: EncodeLayers(p, []int{0, 1}, zeroNorms(p))}
	}
	if err := CheckFiniteUpdate(mkMsg()); err != nil {
		t.Fatalf("clean update rejected: %v", err)
	}
	m := mkMsg()
	m.Layers[1].Data[0][1] = math.NaN()
	if err := CheckFiniteUpdate(m); !errors.Is(err, ErrNonFiniteUpdate) {
		t.Fatalf("NaN weight error %v, want ErrNonFiniteUpdate", err)
	}
	m = mkMsg()
	m.Layers[0].UpdateNorm = math.Inf(1)
	if err := CheckFiniteUpdate(m); !errors.Is(err, ErrNonFiniteUpdate) {
		t.Fatalf("Inf norm error %v, want ErrNonFiniteUpdate", err)
	}
}

// TestNaNClientEvicted is the poisoning e2e of the acceptance criteria: a
// client that ships NaN weights mid-federation is rejected before
// aggregation and evicted, the federation finishes on the honest survivors,
// and the honest global model matches the closed form that excludes every
// poisoned round — i.e. the NaN never leaks into anyone's weights.
func TestNaNClientEvicted(t *testing.T) {
	addr := freeAddr(t)
	srv := NewServer(ServerConfig{
		Addr:         addr,
		Clients:      4,
		Rounds:       3,
		NumLayers:    2,
		Quorum:       0.5,
		RoundTimeout: 5 * time.Second,
		Eps1:         0.4,
		Eps2:         0.95,
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		serverErr <- err
	}()

	params := make([]*autodiff.ParamSet, 4)
	clientErrs := make([]error, 4)
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := scriptParams()
			params[id] = p
			var raw net.Conn
			var err error
			for try := 0; try < 50; try++ {
				raw, err = net.Dial("tcp", addr)
				if err == nil {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err != nil {
				clientErrs[id] = err
				return
			}
			conn := Wrap(raw)
			defer conn.Close()
			clientErrs[id] = RunClientLoop(context.Background(), conn, id, 10, p,
				func(round int) map[int]float64 {
					addDelta(p, float64(id+1)*0.1)
					if id == 3 && round == 1 {
						// Numeric sabotage: one poisoned coordinate in an
						// otherwise well-formed update.
						p.Get(p.Names()[0]).Data()[0] = math.NaN()
					}
					return zeroNorms(p)
				})
		}(id)
	}
	wg.Wait()

	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatalf("server failed despite quorum: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not finish")
	}
	for id := 0; id < 3; id++ {
		if clientErrs[id] != nil {
			t.Fatalf("honest client %d: %v", id, clientErrs[id])
		}
	}
	if clientErrs[3] == nil {
		t.Fatal("NaN injector finished cleanly — it must be evicted")
	}

	st := srv.Stats()
	if st.RoundsCompleted != 3 {
		t.Fatalf("rounds completed %d, want 3", st.RoundsCompleted)
	}
	if st.Evicted != 1 {
		t.Fatalf("evicted %d, want 1", st.Evicted)
	}
	wantResp := []int{4, 3, 3}
	for r, want := range wantResp {
		if st.Responders[r] != want {
			t.Fatalf("round %d responders %d, want %d (all: %v)",
				r, st.Responders[r], want, st.Responders)
		}
	}

	// Round 0 averages all four (mean delta 0.25); rounds 1-2 only the
	// honest three (0.2). No survivor may carry a non-finite weight.
	wantShift := 0.25 + 0.2 + 0.2
	base := scriptParams()
	for id := 0; id < 3; id++ {
		got := params[id].Flatten()
		for i, b := range base.Flatten() {
			want := b + wantShift
			if diff := got[i] - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("survivor %d element %d = %v, want %v", id, i, got[i], want)
			}
		}
	}
}

// TestCheckpointSaveLoadRoundTrip pins the snapshot container itself.
func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fed.ckpt")
	p := scriptParams()
	ck := &Checkpoint{
		Round:   3,
		Shapes:  [][][2]int{{{1, 2}}, {{1, 2}}},
		Names:   [][]string{{"l0.w"}, {"l1.w"}},
		Global:  EncodeLayers(p, []int{0, 1}, zeroNorms(p)),
		Strikes: map[int]int{2: 1},
		Sizes:   map[int]int{0: 10, 1: 10, 2: 10},
		Stats: ServerStats{RoundsCompleted: 3, Evicted: 1, Rejoined: 1,
			Responders: []int{3, 2, 3}},
	}
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != ck.Round || got.Strikes[2] != 1 || got.Sizes[1] != 10 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Stats.RoundsCompleted != 3 || len(got.Stats.Responders) != 3 {
		t.Fatalf("stats lost: %+v", got.Stats)
	}
	if len(got.Global) != 2 || got.Global[1].Data[0][1] != p.Get("l1.w").Data()[1] {
		t.Fatalf("global model lost: %+v", got.Global)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loading a missing checkpoint must error")
	}
}

// TestCheckpointResumeBitIdentical is the crash-recovery acceptance e2e: a
// checkpointing server is hard-killed mid-federation, a fresh server on the
// same address resumes from the snapshot, the clients ride their session
// backoff through the outage, and every client's final model is
// bit-identical to an uninterrupted run of the same seeded federation.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const (
		nClients = 3
		rounds   = 5
	)
	serverCfg := func(addr, ckpt string) ServerConfig {
		return ServerConfig{
			Addr:            addr,
			Clients:         nClients,
			Rounds:          rounds,
			NumLayers:       2,
			Quorum:          1, // every round averages all three, keeping the closed form exact
			RoundTimeout:    5 * time.Second,
			Eps1:            0.4,
			Eps2:            0.95,
			CheckpointPath:  ckpt,
			CheckpointEvery: 2,
		}
	}
	runClients := func(addr string, pace time.Duration) ([]*autodiff.ParamSet, []SessionStats, []error, *sync.WaitGroup) {
		params := make([]*autodiff.ParamSet, nClients)
		stats := make([]SessionStats, nClients)
		errs := make([]error, nClients)
		var wg sync.WaitGroup
		for id := 0; id < nClients; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				p := scriptParams()
				params[id] = p
				stats[id], errs[id] = RunClientSession(context.Background(), ClientConfig{
					Addr: addr, ID: id, DataSize: 10,
					InitialBackoff: 10 * time.Millisecond,
					MaxBackoff:     50 * time.Millisecond,
					MaxAttempts:    100,
					OpTimeout:      5 * time.Second,
					Seed:           int64(id),
				}, p, func(round int) map[int]float64 {
					time.Sleep(pace)
					addDelta(p, float64(id+1)*0.1)
					return zeroNorms(p)
				})
			}(id)
		}
		return params, stats, errs, &wg
	}

	// Reference: the same federation, never interrupted (no checkpointing).
	refAddr := freeAddr(t)
	refSrv := NewServer(serverCfg(refAddr, ""))
	refDone := make(chan error, 1)
	go func() { _, err := refSrv.Run(context.Background()); refDone <- err }()
	refParams, _, refErrs, refWg := runClients(refAddr, 0)
	refWg.Wait()
	if err := <-refDone; err != nil {
		t.Fatalf("reference server: %v", err)
	}
	for id, err := range refErrs {
		if err != nil {
			t.Fatalf("reference client %d: %v", id, err)
		}
	}

	// Interrupted: kill the durable server once at least two rounds closed,
	// then restart it from the snapshot on the same address.
	ckpt := filepath.Join(t.TempDir(), "fed.ckpt")
	addr := freeAddr(t)
	srv1 := NewServer(serverCfg(addr, ckpt))
	done1 := make(chan error, 1)
	go func() { _, err := srv1.Run(context.Background()); done1 <- err }()
	params, stats, errs, wg := runClients(addr, 30*time.Millisecond)

	deadline := time.Now().Add(15 * time.Second)
	for srv1.Stats().RoundsCompleted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("federation never reached round 2")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Stop()
	select {
	case <-done1: // crashed mid-federation, as intended
	case <-time.After(10 * time.Second):
		t.Fatal("stopped server did not return")
	}

	srv2 := NewServer(serverCfg(addr, ckpt))
	done2 := make(chan error, 1)
	go func() { _, err := srv2.Run(context.Background()); done2 <- err }()

	wg.Wait()
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("resumed server: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("resumed server did not finish")
	}
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d session: %v (stats %+v)", id, err, stats[id])
		}
	}
	reconnects := 0
	for _, st := range stats {
		reconnects += st.Reconnects
	}
	if reconnects == 0 {
		t.Fatal("no client reconnected — the kill did not bite")
	}
	if got := srv2.Stats().RoundsCompleted; got < 1 {
		t.Fatalf("resumed server completed %d rounds, want ≥ 1", got)
	}

	// Bit-identical resume: every element of every client's final model must
	// equal the uninterrupted run exactly — no tolerance.
	for id := range params {
		got, want := params[id].Flatten(), refParams[id].Flatten()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("client %d element %d: resumed %v, uninterrupted %v",
					id, i, got[i], want[i])
			}
		}
	}
	// And the closed form holds: five rounds of mean delta 0.2 each.
	base := scriptParams()
	for i, b := range base.Flatten() {
		want := b + float64(rounds)*0.2
		if diff := params[0].Flatten()[i] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("element %d = %v, want %v", i, params[0].Flatten()[i], want)
		}
	}
}
