package autodiff

import (
	"fmt"
	"math"

	"fexiot/internal/mat"
)

// SumAll reduces a node to its 1×1 element sum.
func (t *Tape) SumAll(a *Node) *Node {
	val := mat.NewDense(1, 1)
	val.Set(0, 0, a.Value.Sum())
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if !a.needs {
			return
		}
		ensureGrad(a)
		g := out.Grad.At(0, 0)
		d := a.Grad.Data()
		for i := range d {
			d[i] += g
		}
	})
	return out
}

// AddConst returns a + c element-wise for a constant scalar c.
func (t *Tape) AddConst(a *Node, c float64) *Node {
	val := a.Value.Clone().Apply(func(x float64) float64 { return x + c })
	var out *Node
	out = t.node(val, a.needs, []*Node{a}, func() {
		if !a.needs {
			return
		}
		ensureGrad(a)
		a.Grad.AddScaled(out.Grad, 1)
	})
	return out
}

// SoftmaxCrossEntropy computes the mean weighted cross-entropy between
// logits (n×C) and integer labels, with per-class weights (nil for uniform).
// This is the "weighted cross-entropy loss ... according to the inverse
// ratio to class frequencies" used by the paper for class imbalance.
func (t *Tape) SoftmaxCrossEntropy(logits *Node, labels []int, classWeights []float64) *Node {
	n, c := logits.Value.Dims()
	if len(labels) != n {
		panic(fmt.Sprintf("autodiff: %d labels for %d logits rows", len(labels), n))
	}
	probs := mat.NewDense(n, c)
	var loss float64
	var wsum float64
	for i := 0; i < n; i++ {
		p := mat.Softmax(logits.Value.Row(i))
		copy(probs.Row(i), p)
		w := 1.0
		if classWeights != nil {
			w = classWeights[labels[i]]
		}
		wsum += w
		loss -= w * math.Log(math.Max(p[labels[i]], 1e-12))
	}
	if wsum == 0 {
		wsum = 1
	}
	loss /= wsum
	val := mat.NewDense(1, 1)
	val.Set(0, 0, loss)
	var out *Node
	out = t.node(val, logits.needs, []*Node{logits}, func() {
		if !logits.needs {
			return
		}
		ensureGrad(logits)
		g := out.Grad.At(0, 0)
		for i := 0; i < n; i++ {
			w := 1.0
			if classWeights != nil {
				w = classWeights[labels[i]]
			}
			gi := logits.Grad.Row(i)
			pi := probs.Row(i)
			for j := 0; j < c; j++ {
				d := pi[j]
				if j == labels[i] {
					d -= 1
				}
				gi[j] += g * w * d / wsum
			}
		}
	})
	return out
}

// MSE computes mean squared error between pred and a constant target of the
// same shape.
func (t *Tape) MSE(pred *Node, target *mat.Dense) *Node {
	r, c := pred.Value.Dims()
	tr, tc := target.Dims()
	if r != tr || c != tc {
		panic(fmt.Sprintf("autodiff: MSE %dx%d vs target %dx%d", r, c, tr, tc))
	}
	n := float64(r * c)
	var loss float64
	pd, td := pred.Value.Data(), target.Data()
	for i := range pd {
		d := pd[i] - td[i]
		loss += d * d
	}
	loss /= n
	val := mat.NewDense(1, 1)
	val.Set(0, 0, loss)
	var out *Node
	out = t.node(val, pred.needs, []*Node{pred}, func() {
		if !pred.needs {
			return
		}
		ensureGrad(pred)
		g := out.Grad.At(0, 0)
		gd := pred.Grad.Data()
		for i := range pd {
			gd[i] += g * 2 * (pd[i] - td[i]) / n
		}
	})
	return out
}

// ContrastiveLoss implements Eq. (2) of the paper for a pair of graph
// embeddings za, zb (each 1×d):
//
//	L = d²·(1−y) + max(0, k − d²)·y
//
// where d is the Euclidean distance, y=1 when the two graphs come from
// different classes and y=0 when they share a class, and k is the margin.
func (t *Tape) ContrastiveLoss(za, zb *Node, differentClass bool, margin float64) *Node {
	diff := t.Sub(za, zb)
	sq := t.Hadamard(diff, diff)
	d2 := t.SumAll(sq)
	if !differentClass {
		return d2
	}
	neg := t.Scale(d2, -1)
	shifted := t.AddConst(neg, margin)
	return t.ReLU(shifted)
}

// BCEWithLogits computes mean binary cross-entropy between logits (n×1) and
// targets in {0,1}, with optional per-sample weights.
func (t *Tape) BCEWithLogits(logits *Node, targets []float64, sampleWeights []float64) *Node {
	n, c := logits.Value.Dims()
	if c != 1 || len(targets) != n {
		panic(fmt.Sprintf("autodiff: BCE logits %dx%d with %d targets", n, c, len(targets)))
	}
	var loss, wsum float64
	sig := make([]float64, n)
	for i := 0; i < n; i++ {
		z := logits.Value.At(i, 0)
		s := mat.Sigmoid(z)
		sig[i] = s
		w := 1.0
		if sampleWeights != nil {
			w = sampleWeights[i]
		}
		wsum += w
		// Numerically stable BCE.
		loss += w * (math.Max(z, 0) - z*targets[i] + math.Log(1+math.Exp(-math.Abs(z))))
	}
	if wsum == 0 {
		wsum = 1
	}
	loss /= wsum
	val := mat.NewDense(1, 1)
	val.Set(0, 0, loss)
	var out *Node
	out = t.node(val, logits.needs, []*Node{logits}, func() {
		if !logits.needs {
			return
		}
		ensureGrad(logits)
		g := out.Grad.At(0, 0)
		for i := 0; i < n; i++ {
			w := 1.0
			if sampleWeights != nil {
				w = sampleWeights[i]
			}
			logits.Grad.Add(i, 0, g*w*(sig[i]-targets[i])/wsum)
		}
	})
	return out
}
