package fusion

import (
	"fmt"

	"fexiot/internal/graph"
	"fexiot/internal/rng"
	"fexiot/internal/rules"
)

// injectPattern crafts one micro-pattern of a randomly chosen vulnerability
// type and returns its rules. When possible, the pattern's root rule is
// triggered by an existing member's action so the pattern is woven into the
// surrounding interaction graph.
func (b *Builder) injectPattern(members []*rules.Rule) []*rules.Rule {
	kind := b.r.Intn(6)
	return b.injectPatternOf(kind, members)
}

// injectPatternOf crafts the pattern for a specific vulnerability type
// index (0..5, in the order of vuln.Type).
func (b *Builder) injectPatternOf(kind int, members []*rules.Rule) []*rules.Rule {
	root := b.rootCondition(members)
	room := rng.Pick(b.r, patternRooms)
	switch kind {
	case 4:
		return b.patternConflict(root, room)
	case 2:
		return b.patternRevert(root, room)
	case 3:
		return b.patternLoop(room)
	case 5:
		return b.patternDuplicate(root, room)
	case 0:
		return b.patternBypass(root, room)
	default:
		return b.patternBlock(root, room)
	}
}

var patternRooms = []string{"kitchen", "bedroom", "hallway", "garage",
	"living room", "bathroom"}

// rootCondition derives a trigger condition from a random member's action
// (tying the injected pattern into the graph), falling back to a sensor
// trigger for empty graphs.
func (b *Builder) rootCondition(members []*rules.Rule) rules.Condition {
	if len(members) > 0 {
		m := members[b.r.Intn(len(members))]
		eff := m.Actions[b.r.Intn(len(m.Actions))]
		return rules.Condition{Device: eff.Device, Room: eff.Room,
			Channel: eff.Channel, State: eff.State}
	}
	return rules.Condition{Device: "motion sensor",
		Room: rng.Pick(b.r, patternRooms), Channel: rules.ChanMotion,
		State: "detected"}
}

var appPlatforms = []rules.Platform{rules.SmartThings, rules.HomeAssistant, rules.IFTTT}

func (b *Builder) mkRule(trig rules.Condition, acts ...rules.Effect) *rules.Rule {
	b.nextID++
	platforms := b.InjectPlatforms
	if len(platforms) == 0 {
		platforms = appPlatforms
	}
	p := rng.Pick(b.r, platforms)
	r := &rules.Rule{
		ID:       fmt.Sprintf("inj%d", b.nextID),
		Platform: p,
		Trigger:  trig,
		Actions:  acts,
	}
	r.Description = rules.Describe(p, trig, acts)
	return r
}

// effect looks up a device command from the catalog by device name and
// resulting state, scoped to room.
func effect(device, room, state string) rules.Effect {
	d, ok := rules.CatalogByName()[device]
	if !ok {
		panic(fmt.Sprintf("fusion: unknown device %q", device))
	}
	for _, c := range d.Commands {
		if c.State == state {
			return rules.Effect{Device: d.Name, Room: room, Verb: c.Verb,
				Channel: c.Channel, State: c.State, Env: c.Env,
				Sensitive: c.Sensitive}
		}
	}
	panic(fmt.Sprintf("fusion: device %q has no command for state %q", device, state))
}

func cond(device, room string, ch rules.Channel, state string) rules.Condition {
	return rules.Condition{Device: device, Room: room, Channel: ch, State: state}
}

// patternConflict: a shared cause forks into contradictory commands on one
// device (the paper's motivating water-valve example).
func (b *Builder) patternConflict(root rules.Condition, room string) []*rules.Rule {
	w := b.mkRule(root, effect("heater", room, "on"))
	heaterOn := cond("heater", room, rules.ChanPower, "on")
	a := b.mkRule(heaterOn, effect("fan", room, "running"))
	c := b.mkRule(heaterOn, effect("fan", room, "stopped"))
	return []*rules.Rule{w, a, c}
}

// patternRevert: a downstream rule undoes the upstream action.
func (b *Builder) patternRevert(root rules.Condition, room string) []*rules.Rule {
	w := b.mkRule(root, effect("water valve", room, "on"))
	// The valve raises the leak channel; the reverting rule watches the
	// leak sensor — exactly rule R2 of the paper's introduction.
	leakWet := cond("leak sensor", room, rules.ChanLeak, "wet")
	a := b.mkRule(leakWet, effect("water valve", room, "off"))
	return []*rules.Rule{w, a}
}

// patternLoop: two rules re-trigger each other forever.
func (b *Builder) patternLoop(room string) []*rules.Rule {
	a := b.mkRule(cond("fan", room, rules.ChanPower, "running"),
		effect("humidifier", room, "on"))
	c := b.mkRule(cond("humidifier", room, rules.ChanPower, "on"),
		effect("fan", room, "running"))
	return []*rules.Rule{a, c}
}

// patternDuplicate: a shared cause issues the same command twice.
func (b *Builder) patternDuplicate(root rules.Condition, room string) []*rules.Rule {
	w := b.mkRule(root, effect("light", room, "on"))
	lightOn := cond("light", room, rules.ChanPower, "on")
	a := b.mkRule(lightOn, effect("lock", room, "locked"))
	c := b.mkRule(lightOn, effect("lock", room, "locked"))
	return []*rules.Rule{w, a, c}
}

// patternBypass: an environmental side effect satisfies the trigger of a
// security-sensitive rule.
func (b *Builder) patternBypass(root rules.Condition, room string) []*rules.Rule {
	// The vacuum's movement trips the motion sensor, artificially
	// satisfying the trigger that unlocks the door.
	w := b.mkRule(root, effect("vacuum", room, "running")) // env: motion up
	a := b.mkRule(cond("motion sensor", room, rules.ChanMotion, "detected"),
		effect("lock", room, "unlocked")) // sensitive unlock
	return []*rules.Rule{w, a}
}

// patternBlock: one branch of a fork suppresses the trigger the other
// branch is meant to satisfy.
func (b *Builder) patternBlock(root rules.Condition, room string) []*rules.Rule {
	a := b.mkRule(root, effect("heater", room, "on")) // env: temperature up → triggers v
	u := b.mkRule(cond("heater", room, rules.ChanPower, "on"),
		effect("air conditioner", room, "on")) // env: temperature down → blocks v
	v := b.mkRule(cond("temperature sensor", room, rules.ChanTemperature, "high"),
		effect("fan", room, "running"))
	return []*rules.Rule{a, u, v}
}

// --- Drifting patterns (§IV-C) -------------------------------------------
//
// The three novel vulnerability kinds the paper discovers among drifting
// samples. They are structurally unlike the six training patterns, so a
// detector fitted on the labelled corpus should flag graphs containing them
// as out-of-distribution rather than classify them.

// DriftKind selects one of the three novel patterns.
type DriftKind int

// The discovered drifting patterns.
const (
	// DriftTimedRevert: "automation action is reverted over time" — a
	// schedule-triggered rule undoes an event-triggered action, so no
	// causal edge connects the pair and the revert detector cannot see it.
	DriftTimedRevert DriftKind = iota
	// DriftFakeCondition: "another action can generate fake automation
	// conditions" — an environmental edge into a *benign* rule (the bypass
	// detector only fires on sensitive actions).
	DriftFakeCondition
	// DriftManualBlock: "non-automation settings can block the existing
	// actions of smart devices" — a rule commands a device that a manual
	// setting (modelled as a schedule-held holder rule) keeps in the
	// opposite state.
	DriftManualBlock
	NumDriftKinds
)

// InjectDrift crafts the rules of one drifting pattern; the caller weaves
// them into a graph like the ordinary injected patterns.
func (b *Builder) InjectDrift(kind DriftKind, members []*rules.Rule) []*rules.Rule {
	root := b.rootCondition(members)
	room := rng.Pick(b.r, patternRooms)
	switch kind {
	case DriftTimedRevert:
		w := b.mkRule(root, effect("light", room, "on"))
		timed := b.mkRule(rules.Condition{Device: "clock",
			Channel: rules.ChanTime, State: "sunrise"},
			effect("light", room, "off"))
		return []*rules.Rule{w, timed}
	case DriftFakeCondition:
		// TV raises illuminance; the brightness rule fires on fake light.
		w := b.mkRule(root, effect("tv", room, "on"))
		a := b.mkRule(cond("illuminance sensor", room, rules.ChanIlluminance, "bright"),
			effect("blind", room, "closed"))
		return []*rules.Rule{w, a}
	default: // DriftManualBlock
		// A holder rule pins the switch off (a manual setting); the
		// automation keeps commanding it on with no effect.
		holder := b.mkRule(rules.Condition{Device: "clock",
			Channel: rules.ChanTime, State: "night"},
			effect("switch", room, "off"))
		auto := b.mkRule(root, effect("switch", room, "on"))
		return []*rules.Rule{holder, auto}
	}
}

// OfflineWithDrift builds a base graph of about baseSize nodes (0 draws the
// usual size distribution) and grafts one drifting pattern of the given
// kind; the graph is tagged with the drift kind so experiments can count
// recovered drifting samples. Smaller bases make the novel pattern dominate
// the embedding, as the paper's drifting samples do.
func (b *Builder) OfflineWithDrift(pool []*rules.Rule, kind DriftKind, baseSize int) *graph.Graph {
	var g *graph.Graph
	if baseSize > 0 {
		g = b.Offline(pool, baseSize)
	} else {
		g = b.OfflineSized(pool)
	}
	injected := b.InjectDrift(kind, membersOf(g))
	start := g.N()
	for _, r := range injected {
		feat, space := b.NodeFeature(r)
		g.AddNode(graph.Node{Rule: r, Feature: feat, Space: space})
	}
	for i := start; i < g.N(); i++ {
		ri := g.Nodes[i].Rule
		for j := 0; j < g.N(); j++ {
			if i == j {
				continue
			}
			rj := g.Nodes[j].Rule
			if k := b.Oracle(ri, rj); k != rules.NoMatch {
				g.AddEdge(i, j, k)
			}
			if k := b.Oracle(rj, ri); k != rules.NoMatch {
				g.AddEdge(j, i, k)
			}
		}
	}
	g.InvalidateCache()
	driftTag := [...]string{"drift_timed_revert", "drift_fake_condition",
		"drift_manual_block"}[kind]
	g.Tags = append(g.Tags, driftTag)
	return g
}

func membersOf(g *graph.Graph) []*rules.Rule {
	out := make([]*rules.Rule, 0, g.N())
	for _, n := range g.Nodes {
		if n.Rule != nil {
			out = append(out, n.Rule)
		}
	}
	return out
}
