// Package fexiot is the public API of the FexIoT reproduction: a federated,
// explicable GNN system for IoT interaction vulnerability analysis (Wang et
// al., ICDE 2023). It wraps the internal substrates behind a small facade:
//
//	sys, err := fexiot.New(fexiot.DefaultOptions())
//	g := sys.BuildGraph(deployedRules)          // offline interaction graph
//	sys.TrainCentral(trainingGraphs, 8, 120)    // or TrainFederated(...)
//	verdict, err := sys.Detect(g)               // vulnerability verdict
//	expl, err := sys.Explain(g)                 // responsible subgraph
//
// Detect, Explain and Evaluate fail with ErrNotTrained (not a panic) until
// one of the training entry points has installed a detector. New validates
// its Options and rejects unknown models and non-positive dimensions:
// start from DefaultOptions and override, rather than guessing which zero
// values are meaningful.
//
// The examples/ directory contains runnable walkthroughs and cmd/fexbench
// regenerates every table and figure of the paper's evaluation.
package fexiot

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/drift"
	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/explain"
	"fexiot/internal/fed"
	"fexiot/internal/fedproto/codec"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/mat"
	"fexiot/internal/ml"
	"fexiot/internal/obs"
	"fexiot/internal/rules"
	"fexiot/internal/serve"
	"fexiot/internal/stream"
)

// Re-exported core types so callers only import this package for common
// workflows.
type (
	// Rule is a trigger-action automation rule.
	Rule = rules.Rule
	// Graph is an IoT interaction graph.
	Graph = graph.Graph
	// Log is a device event log.
	Log = eventlog.Log
	// Metrics bundles accuracy/precision/recall/F1.
	Metrics = ml.Metrics
)

// Options configures a System. Build it with DefaultOptions and override
// the fields you care about; New rejects non-positive dimensions and
// unknown model names instead of silently substituting defaults.
type Options struct {
	// WordDim and SentenceDim size the text encoders (DefaultOptions picks
	// compact dims suitable for laptops; the paper used 300/512).
	WordDim     int
	SentenceDim int
	// Hidden and EmbedDim size the GNN.
	Hidden   int
	EmbedDim int
	// Model selects the representation network: "GIN", "GCN" or "MAGNN"
	// (empty selects GIN).
	Model string
	// Seed makes every component deterministic.
	Seed int64
	// Procs bounds the parallelism of the dense kernels and training
	// fan-outs (0 keeps the current setting: FEXIOT_PROCS or all cores).
	// Results are bit-identical at every setting.
	Procs int
	// Metrics, when non-nil, instruments the whole pipeline — training,
	// federation and the dense kernels — into the given observability
	// registry (serve it with obs.StartHTTP). Nil disables instrumentation
	// at unmeasurable cost.
	Metrics *obs.Registry
	// Codec selects the simulated federated update encoding ("raw64",
	// "f32", "q8", "topk"; empty = raw64): lossy schemes shrink upload
	// bytes by compressing per-round deltas at a bounded accuracy cost,
	// mirroring the networked protocol's -codec flag.
	Codec string
	// DisableArena turns off the size-classed matrix arena process-wide
	// (equivalent to FEXIOT_ARENA=off): every tape buffer lease falls
	// through to a fresh allocation. Results are bit-identical either way;
	// this is the escape hatch for leak hunts and memory profiling.
	DisableArena bool
}

// DefaultOptions returns the documented defaults: a compact GIN sized for
// laptops, seed 1. Callers introspect and override fields rather than
// relying on zero values being patched up.
func DefaultOptions() Options {
	return Options{
		WordDim:     48,
		SentenceDim: 64,
		Hidden:      24,
		EmbedDim:    16,
		Model:       "GIN",
		Seed:        1,
	}
}

// validate rejects option sets New must not build from.
func (o Options) validate() error {
	switch o.Model {
	case "", "GIN", "GCN", "MAGNN":
	default:
		return fmt.Errorf("fexiot: unknown model %q (valid: GIN, GCN, MAGNN)", o.Model)
	}
	if o.WordDim < 1 || o.SentenceDim < 1 || o.Hidden < 1 || o.EmbedDim < 1 {
		return fmt.Errorf("fexiot: dimensions must be positive "+
			"(WordDim=%d SentenceDim=%d Hidden=%d EmbedDim=%d); start from DefaultOptions",
			o.WordDim, o.SentenceDim, o.Hidden, o.EmbedDim)
	}
	if o.Procs < 0 {
		return fmt.Errorf("fexiot: Procs must be non-negative, got %d", o.Procs)
	}
	if _, err := codec.New(o.Codec); err != nil {
		return fmt.Errorf("fexiot: %w", err)
	}
	return nil
}

// System is the assembled FexIoT pipeline: data fusion, detection and
// explanation.
//
// The inference state lives in an immutable snapshot behind an atomic
// pointer: Detect/Explain/Evaluate load the pointer once and run entirely
// on that frozen model, while the training entry points build a complete
// new snapshot and swap it in. Training and serving may therefore run
// concurrently from any number of goroutines — a request never observes a
// half-trained model.
type System struct {
	opts    Options
	encoder *embed.Encoder
	builder *fusion.Builder

	// state is the live frozen snapshot (nil until trained); seq stamps
	// each published snapshot monotonically.
	state atomic.Pointer[serve.Snapshot]
	seq   atomic.Uint64

	mu      sync.Mutex
	engines []*serve.Engine // serving engines receiving every publish
}

// New assembles a system, or reports why the options cannot be built.
func New(opts Options) (*System, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Procs > 0 {
		mat.SetParallelism(opts.Procs)
	}
	if opts.DisableArena {
		mat.SetArenaEnabled(false)
	}
	if opts.Metrics != nil {
		mat.InstrumentKernels(opts.Metrics)
	}
	enc := embed.NewEncoder(opts.WordDim, opts.SentenceDim)
	return &System{
		opts:    opts,
		encoder: enc,
		builder: fusion.NewBuilder(opts.Seed, enc),
	}, nil
}

// newModel instantiates the configured GNN.
func (s *System) newModel(seed int64) gnn.Model {
	wordDim := s.encoder.WordDim() + 2*fusion.SigDim
	sentDim := s.encoder.SentenceDim() + 2*fusion.SigDim
	switch s.opts.Model {
	case "GCN":
		return gnn.NewGCN(wordDim, s.opts.Hidden, s.opts.EmbedDim, seed)
	case "MAGNN":
		return gnn.NewMAGNN(wordDim, sentDim, s.opts.Hidden, s.opts.EmbedDim, seed)
	default:
		return gnn.NewGIN(wordDim, s.opts.Hidden, s.opts.EmbedDim, seed)
	}
}

// BuildGraph chains deployed rules into an offline interaction graph
// (§III-A3) and labels it with the ground-truth detectors.
func (s *System) BuildGraph(deployed []*Rule) *Graph {
	size := len(deployed)
	if size > 50 {
		size = 50
	}
	return s.builder.Offline(deployed, size)
}

// BuildOnlineGraph fuses a cleaned event log with the deployed rules into
// an online interaction graph.
func (s *System) BuildOnlineGraph(deployed []*Rule, log Log) *Graph {
	return s.builder.BuildOnline(deployed, log)
}

// CleanLog applies §III-A2 log cleaning (error removal, duplicate
// collapsing, Jenks numeric→logical conversion).
func CleanLog(log Log) Log { return eventlog.Clean(log) }

// SimulateHome runs the discrete-event simulator over deployed rules for
// the given number of simulated seconds and returns the raw event log.
func SimulateHome(deployed []*Rule, steps int64, seed int64) Log {
	return eventlog.NewSimulator(deployed, seed).Run(steps)
}

// TrainCentral trains the detection pipeline centrally on labelled graphs
// (contrastive representation + linear head), for rounds×pairsPerRound
// contrastive pairs.
func (s *System) TrainCentral(graphs []*Graph, rounds, pairsPerRound int) {
	m := s.newModel(100 + s.opts.Seed)
	cfg := gnn.DefaultTrainConfig(s.opts.Seed)
	cfg.LR = 0.005
	cfg.PairsPerEpoch = pairsPerRound
	cfg.Metrics = s.opts.Metrics
	opt := autodiff.NewAdam(cfg.LR)
	opt.WeightDecay = 1e-4
	for r := 0; r < rounds; r++ {
		cfg.Seed = s.opts.Seed + int64(r)
		gnn.TrainContrastive(m, graphs, cfg, opt)
	}
	det := gnn.NewDetector(m, 3)
	det.FitClassifier(graphs)
	s.install(det, fitDrift(det, graphs))
}

// FederatedAlgorithm names a federated training strategy.
type FederatedAlgorithm string

// The five Fig. 4 strategies.
const (
	AlgoFexIoT FederatedAlgorithm = "fexiot"
	AlgoGCFL   FederatedAlgorithm = "gcfl+"
	AlgoFMTL   FederatedAlgorithm = "fmtl"
	AlgoFedAvg FederatedAlgorithm = "fedavg"
	AlgoClient FederatedAlgorithm = "client"
)

func (a FederatedAlgorithm) build() (fed.Algorithm, error) {
	switch a {
	case AlgoFexIoT, "":
		return fed.NewFexIoT(), nil
	case AlgoGCFL:
		return fed.GCFL(), nil
	case AlgoFMTL:
		return fed.FMTL(), nil
	case AlgoFedAvg:
		return fed.FedAvg{}, nil
	case AlgoClient:
		return fed.ClientOnly{}, nil
	default:
		return nil, fmt.Errorf("fexiot: unknown federated algorithm %q", a)
	}
}

// FederatedResult reports a federated training run.
type FederatedResult struct {
	// TransferredBytes is the total communication cost.
	TransferredBytes int64
	// Clusters is the final client→cluster assignment.
	Clusters []int
}

// TrainFederated trains across client datasets with the selected algorithm
// (paper's Algorithm 1 by default) and installs client 0's model as the
// system detector. The per-client detectors are returned via the clients'
// own heads when needed; use the experiments package for full Fig. 4 style
// evaluation.
func (s *System) TrainFederated(clientData [][]*Graph, algo FederatedAlgorithm,
	rounds int) (*FederatedResult, error) {
	a, err := algo.build()
	if err != nil {
		return nil, err
	}
	base := s.newModel(100 + s.opts.Seed)
	clients := fed.NewClients(base, clientData, 0.005)
	cfg := fed.DefaultConfig(s.opts.Seed)
	cfg.Rounds = rounds
	cfg.Eps1, cfg.Eps2 = 0.4, 0.95
	cfg.Metrics = s.opts.Metrics
	cfg.Codec = s.opts.Codec
	res := a.Run(clients, cfg)

	var all []*Graph
	for _, ds := range clientData {
		all = append(all, ds...)
	}
	det := gnn.NewDetector(clients[0].Model, 3)
	det.FitClassifier(all)
	s.install(det, fitDrift(det, all))
	return &FederatedResult{
		TransferredBytes: res.Comm.Total(),
		Clusters:         res.FinalClusters,
	}, nil
}

// fitDrift fits the MAD drift detector on training embeddings.
func fitDrift(det *gnn.Detector, graphs []*Graph) *drift.Detector {
	emb := gnn.EmbedAll(det.Model, graphs)
	labels := make([]int, len(graphs))
	for i, g := range graphs {
		if g.Label {
			labels[i] = 1
		}
	}
	return drift.Fit(emb, labels)
}

// install deep-freezes a freshly trained detector into a snapshot, swaps
// it live and fans it out to every attached serving engine. Training
// mutates only its own locals up to this point, so the swap is the single
// linearisation point between training and serving.
func (s *System) install(det *gnn.Detector, drf *drift.Detector) {
	snap := serve.NewSnapshot(s.seq.Add(1), det, drf,
		explain.DefaultSearchConfig(s.opts.Seed))
	s.state.Store(snap)
	s.mu.Lock()
	engines := append([]*serve.Engine(nil), s.engines...)
	s.mu.Unlock()
	for _, e := range engines {
		e.Publish(snap)
	}
}

// attach registers a serving engine to receive every future snapshot,
// seeding it with the current one when the system is already trained.
func (s *System) attach(e *serve.Engine) {
	s.mu.Lock()
	s.engines = append(s.engines, e)
	s.mu.Unlock()
	if snap := s.state.Load(); snap != nil {
		e.Publish(snap)
	}
}

// Verdict is a detection outcome (see serve.Verdict for field docs: score,
// drift deviation and the MAD-threshold drift flag).
type Verdict = serve.Verdict

// ErrNotTrained reports a detection, explanation or evaluation request
// against a system with no installed detector. Test with errors.Is; train
// via TrainCentral or TrainFederated to clear it.
var ErrNotTrained = errors.New("fexiot: system not trained; call TrainCentral or TrainFederated first")

// Detect classifies an interaction graph. It fails with ErrNotTrained
// until the system has been trained. The verdict is computed entirely on
// one frozen snapshot, so Detect is safe to call concurrently with
// training and with other requests.
func (s *System) Detect(g *Graph) (Verdict, error) {
	snap := s.state.Load()
	if snap == nil {
		return Verdict{}, ErrNotTrained
	}
	return snap.Detect(g), nil
}

// Explanation is a detected root-cause subgraph (see serve.Explanation).
type Explanation = serve.Explanation

// Explain runs the SHAP-guided Monte Carlo beam search (Algorithm 2) on a
// graph and returns the highest-risk connected subgraph. It fails with
// ErrNotTrained until the system has been trained, and — like Detect —
// runs on one frozen snapshot, so concurrent calls with identical inputs
// return identical explanations.
func (s *System) Explain(g *Graph) (Explanation, error) {
	snap := s.state.Load()
	if snap == nil {
		return Explanation{}, ErrNotTrained
	}
	return snap.Explain(g), nil
}

// Evaluate computes detection metrics over labelled graphs. It fails with
// ErrNotTrained until the system has been trained.
func (s *System) Evaluate(graphs []*Graph) (Metrics, error) {
	snap := s.state.Load()
	if snap == nil {
		return Metrics{}, ErrNotTrained
	}
	return snap.Evaluate(graphs), nil
}

// ServeOptions configures fexiot.Serve. The zero value serves on an
// ephemeral port with worker count following the kernel parallelism bound
// and no micro-batching.
type ServeOptions struct {
	// Addr is the HTTP listen address (empty or ":0" picks a free port).
	Addr string
	// Workers bounds concurrent inference goroutines (0 = kernel
	// parallelism, i.e. mat.Parallelism).
	Workers int
	// QueueDepth bounds pending requests (0 = 4 × Workers); full queues
	// make callers wait out their deadline instead of dropping work.
	QueueDepth int
	// BatchSize > 1 groups same-shape detect requests arriving within
	// BatchWindow into one batched forward pass.
	BatchSize int
	// BatchWindow is the batch fill deadline (0 = 2ms).
	BatchWindow time.Duration
	// RequestTimeout bounds each HTTP request's queue wait + inference
	// (0 = 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds HTTP request bodies (0 = 1 MiB); oversized
	// payloads fail with 413 before any parsing work.
	MaxBodyBytes int64
	// MaxSnapshotAge, when > 0, gates readiness on snapshot freshness:
	// /readyz fails once the live snapshot is older than this, so an
	// instance whose republisher died stops advertising itself. Zero
	// requires only that some snapshot has been published.
	MaxSnapshotAge time.Duration
	// Streams tunes the stateful streaming sessions under /v1/streams.
	Streams StreamOptions
}

// StreamOptions tunes the streaming detection sessions (see
// internal/stream). Zero values use the documented stream defaults:
// 256 sessions, 4096-event windows, 3600 simulated seconds of age,
// 10-minute idle eviction swept every 15 seconds.
type StreamOptions struct {
	// MaxSessions bounds concurrent sessions; creation beyond it fails
	// with 429 overloaded.
	MaxSessions int
	// MaxWindowEvents bounds each session's sliding window by count.
	MaxWindowEvents int
	// MaxWindowAge bounds the window by event-time age in simulated
	// seconds.
	MaxWindowAge int64
	// IdleTimeout evicts sessions with no ingest or read for this long.
	IdleTimeout time.Duration
	// JanitorInterval is the idle-eviction sweep cadence.
	JanitorInterval time.Duration
}

// Server is a running inference endpoint: /v1/detect, /v1/explain,
// /v1/status and the /v1/streams session endpoints mounted beside the
// observability routes (/metrics, /statusz, /debug/pprof/) and the health
// probes (/healthz, /readyz).
type Server struct {
	engine  *serve.Engine
	streams *stream.Manager
	http    *obs.HTTPServer
	health  *obs.Health
}

// Streams reports the number of live streaming sessions.
func (s *Server) Streams() int { return s.streams.Sessions() }

// Health exposes the server's probe set so callers can register extra
// liveness or readiness checks (a supervised republisher, a federation
// link) next to the built-in ones.
func (s *Server) Health() *obs.Health { return s.health }

// Addr reports the resolved listen address (host:port).
func (s *Server) Addr() string { return s.http.Addr() }

// Close shuts the HTTP listener down, closes every streaming session and
// drains the worker pool. It is safe to call more than once.
func (s *Server) Close() error {
	err := s.http.Close()
	s.streams.Shutdown()
	s.engine.Close()
	return err
}

// Serve starts the snapshot-isolated inference engine over sys: requests
// run against the system's current frozen snapshot, and every completed
// training call (TrainCentral, TrainFederated) atomically publishes its
// new model to the running server without a restart or a dropped request.
// The server shuts down when ctx is cancelled (or via Close). Serving
// works on an untrained system — requests fail with 503 (and /readyz
// reports unavailable) until the first training completes; /readyz flips
// to 200 exactly when the first snapshot publishes.
func Serve(ctx context.Context, sys *System, opts ServeOptions) (*Server, error) {
	eng := serve.NewEngine(serve.Options{
		Workers:      opts.Workers,
		QueueDepth:   opts.QueueDepth,
		BatchSize:    opts.BatchSize,
		BatchWindow:  opts.BatchWindow,
		MaxBodyBytes: opts.MaxBodyBytes,
		Metrics:      sys.opts.Metrics,
	})
	sys.attach(eng)
	timeout := opts.RequestTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	mux := obs.NewHandler(sys.opts.Metrics)
	eng.Mount(mux, func(rs []*Rule, log Log) (*Graph, error) {
		if len(rs) == 0 {
			return nil, errors.New("fexiot: no rules to fuse")
		}
		if len(log) > 0 {
			return sys.BuildOnlineGraph(rs, log), nil
		}
		return sys.BuildGraph(rs), nil
	}, timeout)
	mgr := stream.NewManager(eng, func(rs []*Rule, log Log) (*Graph, error) {
		return sys.BuildOnlineGraph(rs, log), nil
	}, stream.Options{
		MaxSessions:     opts.Streams.MaxSessions,
		MaxWindowEvents: opts.Streams.MaxWindowEvents,
		MaxWindowAge:    opts.Streams.MaxWindowAge,
		IdleTimeout:     opts.Streams.IdleTimeout,
		JanitorInterval: opts.Streams.JanitorInterval,
		MaxBodyBytes:    opts.MaxBodyBytes,
		Metrics:         sys.opts.Metrics,
		CacheStats:      sys.builder.FeatureCacheStats,
	})
	mgr.Mount(mux, timeout)
	eng.MountStatus(mux, serve.StatusInfo{
		NodeFeatureDim: fusion.WordFeatureDim(sys.encoder),
		Sessions:       mgr.Sessions,
	})
	health := obs.NewHealth()
	health.AddLiveness("serve-workers", eng.LiveCheck())
	health.AddReadiness("snapshot", eng.ReadyCheck(opts.MaxSnapshotAge))
	health.Mount(mux)
	addr := opts.Addr
	if addr == "" {
		addr = ":0"
	}
	hs, err := obs.StartHTTPHandler(addr, mux)
	if err != nil {
		mgr.Shutdown()
		eng.Close()
		return nil, fmt.Errorf("fexiot: serve: %w", err)
	}
	srv := &Server{engine: eng, streams: mgr, http: hs, health: health}
	if ctx != nil {
		context.AfterFunc(ctx, func() { srv.Close() })
	}
	return srv, nil
}

// GenerateHome samples a synthetic smart-home rule deployment from the
// built-in archetypes — handy for examples and tests.
func GenerateHome(archetype string, numRules int, seed int64) []*Rule {
	for _, a := range rules.Archetypes() {
		if a.Name == archetype {
			return rules.NewGenerator(seed, a, archetype+"-").RuleSet(numRules)
		}
	}
	archs := rules.Archetypes()
	return rules.NewGenerator(seed, archs[0], "home-").RuleSet(numRules)
}

// ArchetypeNames lists the built-in household archetypes.
func ArchetypeNames() []string {
	var out []string
	for _, a := range rules.Archetypes() {
		out = append(out, a.Name)
	}
	return out
}
