package experiments

import (
	"fmt"

	"fexiot/internal/datasets"
	"fexiot/internal/fed"
	"fexiot/internal/mat"
)

// fig4Algorithms lists the Fig. 4 systems in the paper's order.
func fig4Algorithms() []fed.Algorithm {
	return []fed.Algorithm{
		fed.NewFexIoT(), fed.GCFL(), fed.FMTL(), fed.FedAvg{}, fed.ClientOnly{},
	}
}

// FigureIV runs the federated comparison of Fig. 4: one GNN model
// ("GIN" or "GCN") on the IFTTT dataset, five algorithms, Dirichlet
// concentration sweep, reporting average client accuracy/precision/
// recall/F1.
func FigureIV(s Setup, model string, alphas []float64) *Table {
	if len(alphas) == 0 {
		alphas = []float64{0.1, 1, 2, 5, 10}
	}
	d := datasets.BuildIFTTT(s.Scale, s.Seed)
	labeled := d.Shuffled(s.Seed + 2)
	t := &Table{
		Title: fmt.Sprintf("Fig. 4 — %s under Dirichlet α sweep (avg client metrics)", model),
		Header: []string{"alpha", "Algorithm", "Accuracy", "Precision",
			"Recall", "F1", "Clusters"},
	}
	const nClients = 10
	for _, alpha := range alphas {
		for _, algo := range fig4Algorithms() {
			cd := s.splitClients(labeled, nClients, alpha, s.Seed+7)
			base := s.newModel(model, d.Encoder, 100)
			ms, res := s.runFederated(algo, base, cd)
			m := meanMetrics(ms)
			t.Add(fmt.Sprintf("%.1f", alpha), algo.Name(), f3(m.Accuracy),
				f3(m.Precision), f3(m.Recall), f3(m.F1),
				fmt.Sprint(res.Rounds[len(res.Rounds)-1].NumClusters))
		}
	}
	t.Add("(paper)", "FexIoT", "0.891-0.919", "", "", "0.89-0.92", "")
	t.Add("(paper)", "FedAvg", "0.717-0.768", "", "", "0.735-0.748", "")
	t.Add("(paper)", "Client", "0.542-0.622", "", "", "", "")
	return t
}

// FigureV runs the scalability box plots of Fig. 5: client counts 25, 50,
// 75, 100 at α = 1 on the IFTTT dataset with GIN and the heterogeneous
// dataset with MAGNN, reporting min/Q1/median/Q3/max of per-client
// accuracy under FexIoT.
func FigureV(s Setup, clientCounts []int) *Table {
	if len(clientCounts) == 0 {
		clientCounts = []int{25, 50, 75, 100}
	}
	t := &Table{
		Title:  "Fig. 5 — Scalability of FexIoT (per-client accuracy box stats, α=1)",
		Header: []string{"Dataset", "Clients", "Min", "Q1", "Median", "Q3", "Max"},
	}
	type job struct {
		name  string
		model string
		data  *datasets.Dataset
	}
	jobs := []job{
		{"IFTTT", "GIN", datasets.BuildIFTTT(s.Scale, s.Seed)},
		{"Hetero", "MAGNN", datasets.BuildHetero(s.Scale, s.Seed+100)},
	}
	for _, j := range jobs {
		labeled := j.data.Shuffled(s.Seed + 2)
		for _, n := range clientCounts {
			cd := s.splitClients(labeled, n, 1.0, s.Seed+int64(n))
			base := s.newModel(j.model, j.data.Encoder, 100)
			ms, _ := s.runFederated(fed.NewFexIoT(), base, cd)
			accs := make([]float64, len(ms))
			for i, m := range ms {
				accs[i] = m.Accuracy
			}
			t.Add(j.name, fmt.Sprint(n),
				f3(mat.Quantile(accs, 0)), f3(mat.Quantile(accs, 0.25)),
				f3(mat.Quantile(accs, 0.5)), f3(mat.Quantile(accs, 0.75)),
				f3(mat.Quantile(accs, 1)))
		}
	}
	t.Add("(paper IFTTT)", "25-100", "0.80@100", "", "", "0.869-0.882", "0.977@100")
	return t
}

// FigureVII measures the communication cost of Fig. 7: total transferred
// bytes over the training run for FedAvg, FMTL, GCFL+ and FexIoT at client
// counts 25, 50, 100.
func FigureVII(s Setup, clientCounts []int) *Table {
	if len(clientCounts) == 0 {
		clientCounts = []int{25, 50, 100}
	}
	d := datasets.BuildIFTTT(s.Scale, s.Seed)
	labeled := d.Shuffled(s.Seed + 2)
	t := &Table{
		Title:  "Fig. 7 — Communication cost (total transferred MB)",
		Header: []string{"Clients", "FedAvg", "FMTL", "GCFL+", "FexIoT", "FexIoT saving"},
	}
	for _, n := range clientCounts {
		row := []string{fmt.Sprint(n)}
		var fedavgMB, fexMB float64
		for _, algo := range []fed.Algorithm{fed.FedAvg{}, fed.FMTL(), fed.GCFL(), fed.NewFexIoT()} {
			cd := s.splitClients(labeled, n, 1.0, s.Seed+int64(n))
			base := s.newModel("GIN", d.Encoder, 100)
			clients := fed.NewClients(base, cd.train, s.LR)
			res := algo.Run(clients, s.fedConfig())
			mb := float64(res.Comm.Total()) / 1e6
			row = append(row, fmt.Sprintf("%.1f", mb))
			switch algo.Name() {
			case "FedAvg":
				fedavgMB = mb
			case "FexIoT":
				fexMB = mb
			}
		}
		saving := 0.0
		if fedavgMB > 0 {
			saving = 100 * (1 - fexMB/fedavgMB)
		}
		row = append(row, fmt.Sprintf("%.1f%%", saving))
		t.Add(row...)
	}
	t.Add("(paper)", "", "", "", "", "40.2% saving vs FedAvg")
	return t
}
