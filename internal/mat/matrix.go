// Package mat implements the dense linear-algebra kernel used throughout
// FexIoT: matrices, vectors, BLAS-like products, linear solvers and the
// statistics helpers needed by the learning substrates. It is deliberately
// small, allocation-conscious and dependency-free.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps an existing backing slice; len(data) must equal r*c.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Data exposes the backing slice in row-major order.
func (m *Dense) Data() []float64 { return m.data }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments the element at row i, column j by v.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view of row i (shared backing memory).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d want %d", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Zero resets every element to 0 in place.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// CopyFrom copies src into m; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom %dx%d into %dx%d", src.rows, src.cols, m.rows, m.cols))
	}
	copy(m.data, src.data)
}

// T returns the transpose as a newly allocated matrix. Large transposes
// are split into row blocks of the output and run on the worker pool.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	parallelRows(m.cols, minBlockRows(m.rows, serialElemCutoff), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			oj := out.data[j*m.rows : (j+1)*m.rows]
			for i := range oj {
				oj[i] = m.data[i*m.cols+j]
			}
		}
	})
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	if len(m.data) < 2*serialElemCutoff || Parallelism() == 1 {
		if km := kmetrics.Load(); km != nil {
			km.serial.Inc()
		}
		for i := range m.data {
			m.data[i] *= s
		}
		return m
	}
	parallelRows(len(m.data), serialElemCutoff, func(lo, hi int) {
		d := m.data[lo:hi]
		for i := range d {
			d[i] *= s
		}
	})
	return m
}

// AddScaled performs m += s*b element-wise in place and returns m.
func (m *Dense) AddScaled(b *Dense, s float64) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: AddScaled %dx%d with %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	if len(m.data) < 2*serialElemCutoff || Parallelism() == 1 {
		if km := kmetrics.Load(); km != nil {
			km.serial.Inc()
		}
		for i, v := range b.data {
			m.data[i] += s * v
		}
		return m
	}
	parallelRows(len(m.data), serialElemCutoff, func(lo, hi int) {
		d, src := m.data[lo:hi], b.data[lo:hi]
		for i, v := range src {
			d[i] += s * v
		}
	})
	return m
}

// Apply replaces each element x with f(x) in place and returns m. Large
// matrices evaluate f concurrently from pool workers, so f must be pure.
func (m *Dense) Apply(f func(float64) float64) *Dense {
	if len(m.data) < 2*serialElemCutoff || Parallelism() == 1 {
		if km := kmetrics.Load(); km != nil {
			km.serial.Inc()
		}
		for i, v := range m.data {
			m.data[i] = f(v)
		}
		return m
	}
	parallelRows(len(m.data), serialElemCutoff, func(lo, hi int) {
		d := m.data[lo:hi]
		for i, v := range d {
			d[i] = f(v)
		}
	})
	return m
}

// Equalish reports whether m and b agree element-wise within tol.
func (m *Dense) Equalish(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// Norm returns the Frobenius norm.
func (m *Dense) Norm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element, or 0 for an empty matrix.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// String renders a small matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows && i < 6; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols && j < 8; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		if m.cols > 8 {
			b.WriteString(" …")
		}
	}
	if m.rows > 6 {
		b.WriteString("; …")
	}
	b.WriteByte(']')
	return b.String()
}

// Mul computes C = A·B into a new matrix.
func Mul(a, b *Dense) *Dense {
	c := NewDense(a.rows, b.cols)
	MulTo(c, a, b)
	return c
}

// MulTo computes dst = A·B; dst must be a.rows×b.cols and must not share
// backing memory with a or b (checked, panics on aliasing). Products above
// the serial FLOP cutoff split dst's rows across the worker pool; every
// output row is computed by exactly one worker in serial accumulation
// order, so the result is bit-identical at any parallelism.
func MulTo(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul %dx%d by %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTo dst %dx%d want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	checkNoAlias("MulTo", dst, a, b)
	countFLOPs(2 * a.rows * a.cols * b.cols)
	perRow := 2 * a.cols * b.cols
	// Small products skip parallelRows entirely: the closure below escapes
	// into the pool channel, so merely creating it allocates — a real cost
	// in the autodiff hot loop, where most products are tiny.
	if 2*a.rows*a.cols*b.cols < serialFLOPCutoff || Parallelism() == 1 {
		if km := kmetrics.Load(); km != nil {
			km.serial.Inc()
		}
		mulToBlock(dst, a, b, 0, a.rows)
		return
	}
	parallelRows(a.rows, minBlockRows(perRow, serialFLOPCutoff), func(lo, hi int) {
		mulToBlock(dst, a, b, lo, hi)
	})
}

// mulToBlock computes rows [lo, hi) of dst = A·B. ikj loop order keeps the
// inner loop streaming over contiguous rows.
func mulToBlock(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		ci := dst.Row(i)
		for j := range ci {
			ci[j] = 0
		}
		for k, av := range ai {
			if av == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bv := range bk {
				ci[j] += av * bv
			}
		}
	}
}

// MulTTo computes dst = Aᵀ·B without materialising the transpose; dst must
// not share backing memory with a or b (checked, panics on aliasing).
func MulTTo(dst, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulT %dx%d by %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTTo dst %dx%d want %dx%d", dst.rows, dst.cols, a.cols, b.cols))
	}
	checkNoAlias("MulTTo", dst, a, b)
	countFLOPs(2 * a.rows * a.cols * b.cols)
	flops := 2 * a.rows * a.cols * b.cols
	if flops < serialFLOPCutoff || Parallelism() == 1 {
		if km := kmetrics.Load(); km != nil {
			km.serial.Inc()
		}
		mulTToSerial(dst, a, b)
		return
	}
	perRow := 2 * a.rows * b.cols
	parallelRows(a.cols, minBlockRows(perRow, serialFLOPCutoff), func(lo, hi int) {
		mulTToBlock(dst, a, b, lo, hi)
	})
}

// mulTToSerial is the cache-friendly k-outer kernel: it streams whole rows
// of A and B. It cannot be row-partitioned (every k touches all dst rows),
// so the parallel path uses mulTToBlock instead.
func mulTToSerial(dst, a, b *Dense) {
	dst.Zero()
	for k := 0; k < a.rows; k++ {
		ak := a.Row(k)
		bk := b.Row(k)
		for i, av := range ak {
			if av == 0 {
				continue
			}
			di := dst.Row(i)
			for j, bv := range bk {
				di[j] += av * bv
			}
		}
	}
}

// mulTToBlock computes rows [lo, hi) of dst = Aᵀ·B. Row i of dst reads
// column i of A; the accumulation over k runs in the same ascending order
// as mulTToSerial (including the zero-skip), so per-element results are
// bit-identical to the serial kernel.
func mulTToBlock(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		di := dst.Row(i)
		for j := range di {
			di[j] = 0
		}
		for k := 0; k < a.rows; k++ {
			av := a.data[k*a.cols+i]
			if av == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bv := range bk {
				di[j] += av * bv
			}
		}
	}
}

// MulBTTo computes dst = A·Bᵀ without materialising the transpose; dst
// must not share backing memory with a or b (checked, panics on aliasing).
func MulBTTo(dst, a, b *Dense) {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulBT %dx%d by %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("mat: MulBTTo dst %dx%d want %dx%d", dst.rows, dst.cols, a.rows, b.rows))
	}
	checkNoAlias("MulBTTo", dst, a, b)
	countFLOPs(2 * a.rows * a.cols * b.rows)
	perRow := 2 * b.rows * a.cols
	if 2*a.rows*a.cols*b.rows < serialFLOPCutoff || Parallelism() == 1 {
		if km := kmetrics.Load(); km != nil {
			km.serial.Inc()
		}
		mulBTToBlock(dst, a, b, 0, a.rows)
		return
	}
	parallelRows(a.rows, minBlockRows(perRow, serialFLOPCutoff), func(lo, hi int) {
		mulBTToBlock(dst, a, b, lo, hi)
	})
}

// mulBTToBlock computes rows [lo, hi) of dst = A·Bᵀ.
func mulBTToBlock(dst, a, b *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		di := dst.Row(i)
		for j := 0; j < b.rows; j++ {
			bj := b.Row(j)
			var s float64
			for k, av := range ai {
				s += av * bj[k]
			}
			di[j] = s
		}
	}
}

// AddM returns A+B as a new matrix.
func AddM(a, b *Dense) *Dense {
	out := a.Clone()
	return out.AddScaled(b, 1)
}

// SubM returns A−B as a new matrix.
func SubM(a, b *Dense) *Dense {
	out := a.Clone()
	return out.AddScaled(b, -1)
}

// Hadamard returns the element-wise product as a new matrix.
func Hadamard(a, b *Dense) *Dense {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: Hadamard %dx%d with %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] *= v
	}
	return out
}
