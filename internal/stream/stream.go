// Package stream turns the online detection phase into a first-class
// streaming service: stateful per-home sessions that continuously fuse a
// sliding window of device events into an online interaction graph and keep
// a rolling vulnerability verdict current against the live model snapshot.
//
// A Session is created with a deployed-rules set and fed event batches.
// The window is bounded twice over — by event count and by event-time age —
// so a session's memory and refusion cost are O(window), not O(stream).
// Fusion is incremental in the sense that matters: the graph is re-fused
// only when the window actually changed (a batch of already-evicted or
// duplicate-window events is a no-op), node features come from the
// builder's seeded-hash embedding cache so unchanged rule text is never
// re-embedded, and a cached verdict is re-scored only when the serving
// engine publishes a new snapshot. Verdicts therefore track live
// republishes for free: the first read after a publish re-runs detection on
// the existing graph against the new snapshot.
//
// Sessions are bounded globally (MaxSessions; creation beyond it sheds with
// serve.ErrOverloaded, riding the same backpressure path as the inference
// queue) and individually (window caps), and a supervised janitor evicts
// sessions idle past IdleTimeout.
package stream

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"fexiot/internal/eventlog"
	"fexiot/internal/fusion"
	"fexiot/internal/graph"
	"fexiot/internal/obs"
	"fexiot/internal/rules"
	"fexiot/internal/serve"
	"fexiot/internal/supervise"
)

// Engine is the slice of serve.Engine a session needs: snapshot-isolated
// detection plus the live snapshot's identity. *serve.Engine satisfies it;
// tests substitute stubs. Going through the engine means rolling verdicts
// inherit its per-worker inference workspaces (DESIGN.md §4.13): a
// session's re-scores run on recycled tape memory, not fresh graphs.
type Engine interface {
	Detect(ctx context.Context, g *graph.Graph) (serve.Verdict, uint64, error)
	SnapshotSeq() (uint64, bool)
}

// Options tunes the session manager. The zero value is usable.
type Options struct {
	// MaxSessions bounds live sessions (0 = 256). Creation beyond the
	// bound fails with serve.ErrOverloaded — callers back off exactly as
	// they do for a saturated inference queue.
	MaxSessions int
	// MaxWindowEvents bounds each session's sliding window by count
	// (0 = 4096); the oldest events fall off first.
	MaxWindowEvents int
	// MaxWindowAge bounds the window by event-time age in simulated
	// seconds (0 = 3600): an event older than the newest event minus
	// MaxWindowAge leaves the window. Event time, not wall time, so
	// replayed and accelerated streams behave identically.
	MaxWindowAge int64
	// IdleTimeout evicts sessions with no ingest or read for this long
	// (0 = 10m).
	IdleTimeout time.Duration
	// JanitorInterval is the eviction sweep cadence (0 = 15s).
	JanitorInterval time.Duration
	// MaxBodyBytes bounds HTTP request bodies on the mounted endpoints
	// (0 = 1 MiB).
	MaxBodyBytes int64
	// Metrics, when non-nil, receives the fexiot_stream_* telemetry.
	Metrics *obs.Registry
	// CacheStats, when non-nil, reports the shared graph builder's
	// node-feature cache counters; the manager exports them as
	// fexiot_stream_feature_cache_{hits,misses}_total.
	CacheStats func() fusion.FeatureCacheStats
	// now is the test seam for the idle clock (nil = time.Now).
	now func() time.Time
}

func (o Options) maxSessions() int {
	if o.MaxSessions > 0 {
		return o.MaxSessions
	}
	return 256
}

func (o Options) maxWindowEvents() int {
	if o.MaxWindowEvents > 0 {
		return o.MaxWindowEvents
	}
	return 4096
}

func (o Options) maxWindowAge() int64 {
	if o.MaxWindowAge > 0 {
		return o.MaxWindowAge
	}
	return 3600
}

func (o Options) idleTimeout() time.Duration {
	if o.IdleTimeout > 0 {
		return o.IdleTimeout
	}
	return 10 * time.Minute
}

func (o Options) janitorInterval() time.Duration {
	if o.JanitorInterval > 0 {
		return o.JanitorInterval
	}
	return 15 * time.Second
}

func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	return 1 << 20
}

// session is one home's streaming state. All mutable fields are guarded by
// mu; holding mu across fusion and detection serialises work per session
// while leaving other sessions fully concurrent.
type session struct {
	id    string
	rules []*rules.Rule

	mu          sync.Mutex
	closed      bool
	window      []eventlog.Event
	maxTime     int64 // newest event time seen (window age anchor)
	dirty       bool  // window changed since the graph was last fused
	graph       *graph.Graph
	verdict     serve.Verdict
	verdictSeq  uint64
	haveVerdict bool
	refusions   int64
	eventsTotal int64
	dropped     int64
	created     time.Time
	lastActive  time.Time
	lastIngest  time.Time // wall time of the newest ingested batch
}

// Manager owns the session table, the shared fusion/detection dependencies
// and the supervised idle janitor. All methods are safe for concurrent use.
type Manager struct {
	opts  Options
	build serve.GraphBuilder
	eng   Engine
	m     metrics

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64

	// cacheMu guards the last-seen builder cache counters used to export
	// deltas (the builder is shared with the batch endpoints, so the
	// stream metrics only claim growth observed across refusions).
	cacheMu    sync.Mutex
	lastHits   int64
	lastMisses int64

	sup    *supervise.Supervisor
	cancel context.CancelFunc
	once   sync.Once
}

// NewManager starts a session manager over the given inference engine and
// graph builder (the facade passes System.BuildOnlineGraph). The idle
// janitor runs supervised until Shutdown.
func NewManager(eng Engine, build serve.GraphBuilder, opts Options) *Manager {
	m := &Manager{
		opts:     opts,
		build:    build,
		eng:      eng,
		m:        newMetrics(opts.Metrics),
		sessions: map[string]*session{},
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	m.sup = supervise.New(supervise.Options{Metrics: opts.Metrics})
	m.sup.Go(ctx, "stream-janitor", m.janitor)
	return m
}

// Shutdown stops the janitor and closes every session. Idempotent.
func (m *Manager) Shutdown() {
	m.once.Do(func() {
		m.cancel()
		m.sup.Wait()
		m.mu.Lock()
		for id, s := range m.sessions {
			s.mu.Lock()
			s.closed = true
			s.mu.Unlock()
			delete(m.sessions, id)
		}
		m.m.sessions.Set(0)
		m.mu.Unlock()
	})
}

// Sessions reports the live session count.
func (m *Manager) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

func (m *Manager) now() time.Time {
	if m.opts.now != nil {
		return m.opts.now()
	}
	return time.Now()
}

// Create opens a session over a deployed-rules set and returns its id.
// A full session table sheds with serve.ErrOverloaded.
func (m *Manager) Create(rs []*rules.Rule) (string, error) {
	if len(rs) == 0 {
		return "", fmt.Errorf("%w: rules must be non-empty", serve.ErrBadRequest)
	}
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sessions) >= m.opts.maxSessions() {
		m.m.refused.Inc()
		return "", fmt.Errorf("%w: session table full (%d sessions, max %d)",
			serve.ErrOverloaded, len(m.sessions), m.opts.maxSessions())
	}
	m.nextID++
	id := fmt.Sprintf("s%d", m.nextID)
	m.sessions[id] = &session{
		id:         id,
		rules:      rs,
		created:    now,
		lastActive: now,
	}
	m.m.created.Inc()
	m.m.sessions.Set(float64(len(m.sessions)))
	return id, nil
}

// get resolves a session id; unknown and evicted ids fail identically with
// serve.ErrNotFound.
func (m *Manager) get(id string) (*session, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no stream session %q", serve.ErrNotFound, id)
	}
	return s, nil
}

// IngestResult reports one event batch's effect on the window.
type IngestResult struct {
	Ingested     int   `json:"ingested"`
	Dropped      int   `json:"dropped"`
	WindowEvents int   `json:"window_events"`
	WindowSpan   int64 `json:"window_span_seconds"`
	Changed      bool  `json:"window_changed"`
}

// Ingest appends an event batch to the session's sliding window, applying
// the age bound then the count bound, and marks the session dirty only when
// the surviving window actually differs — ingesting stale or duplicate
// events never triggers a refusion.
func (m *Manager) Ingest(id string, evs []eventlog.Event) (IngestResult, error) {
	s, err := m.get(id)
	if err != nil {
		return IngestResult{}, err
	}
	now := m.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return IngestResult{}, fmt.Errorf("%w: stream session %q is closed", serve.ErrNotFound, id)
	}
	s.lastActive = now
	s.eventsTotal += int64(len(evs))
	m.m.events.Add(int64(len(evs)))
	if len(evs) > 0 {
		s.lastIngest = now
	}

	old := s.window
	next := make([]eventlog.Event, 0, len(old)+len(evs))
	next = append(next, old...)
	next = append(next, evs...)
	for _, e := range evs {
		if e.Time > s.maxTime {
			s.maxTime = e.Time
		}
	}
	sort.SliceStable(next, func(i, j int) bool { return next[i].Time < next[j].Time })
	// Age bound: an event older than the newest minus MaxWindowAge is out
	// of scope (event time, so replays behave identically to live streams).
	cutoff := s.maxTime - m.opts.maxWindowAge()
	lo := sort.Search(len(next), func(i int) bool { return next[i].Time >= cutoff })
	next = next[lo:]
	// Count bound: keep the most recent MaxWindowEvents.
	if over := len(next) - m.opts.maxWindowEvents(); over > 0 {
		next = next[over:]
	}

	changed := len(next) != len(old)
	if !changed {
		for i := range next {
			if next[i] != old[i] {
				changed = true
				break
			}
		}
	}
	res := IngestResult{
		Ingested:     len(evs),
		Dropped:      len(old) + len(evs) - len(next),
		WindowEvents: len(next),
		Changed:      changed,
	}
	if len(next) > 0 {
		res.WindowSpan = next[len(next)-1].Time - next[0].Time
	}
	s.window = next
	s.dropped += int64(res.Dropped)
	if changed {
		s.dirty = true
	}
	return res, nil
}

// VerdictResult is a session's rolling verdict plus its provenance.
type VerdictResult struct {
	Verdict      serve.Verdict
	SnapshotSeq  uint64
	Nodes        int
	WindowEvents int
	WindowSpan   int64
	Refusions    int64
	EventsTotal  int64
	DroppedTotal int64
	Refused      bool // this read re-fused the graph
	Rescored     bool // this read re-ran detection
}

// Verdict returns the session's rolling verdict, doing the minimum work to
// keep it current: the graph is re-fused only when the window changed since
// the last fusion, and detection re-runs only after a refusion or when the
// engine has published a newer snapshot than the cached verdict was scored
// on. An unchanged window on an unchanged snapshot is a pure cache read.
func (m *Manager) Verdict(ctx context.Context, id string) (VerdictResult, error) {
	s, err := m.get(id)
	if err != nil {
		return VerdictResult{}, err
	}
	now := m.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return VerdictResult{}, fmt.Errorf("%w: stream session %q is closed", serve.ErrNotFound, id)
	}
	s.lastActive = now

	res := VerdictResult{
		WindowEvents: len(s.window),
		EventsTotal:  s.eventsTotal,
		DroppedTotal: s.dropped,
	}
	if len(s.window) > 0 {
		res.WindowSpan = s.window[len(s.window)-1].Time - s.window[0].Time
	}

	if s.dirty || s.graph == nil {
		g, err := m.build(s.rules, append(eventlog.Log(nil), s.window...))
		if err != nil {
			return VerdictResult{}, fmt.Errorf("%w: fusing window: %v", serve.ErrBadRequest, err)
		}
		s.graph = g
		s.dirty = false
		s.refusions++
		s.haveVerdict = false
		res.Refused = true
		m.m.refusions.Inc()
		m.syncCacheStats()
		if !s.lastIngest.IsZero() {
			m.m.verdictLag.Observe(time.Since(s.lastIngest).Seconds())
		}
	}
	res.Refusions = s.refusions
	res.Nodes = s.graph.N()

	curSeq, published := m.eng.SnapshotSeq()
	if s.haveVerdict && !published {
		// Unreachable in practice (snapshots are never unpublished), but
		// fall through to a fresh Detect which will report not-ready.
		s.haveVerdict = false
	}
	if !s.haveVerdict || s.verdictSeq != curSeq {
		if s.graph.N() == 0 {
			// An empty window (or one in which no deployed rule was active)
			// fuses into an empty graph: the rolling verdict is vacuously
			// clean rather than an inference error.
			if !published {
				return VerdictResult{}, serve.ErrNotReady
			}
			s.verdict = serve.Verdict{}
			s.verdictSeq = curSeq
		} else {
			v, seq, err := m.eng.Detect(ctx, s.graph)
			if err != nil {
				return VerdictResult{}, err
			}
			s.verdict = v
			s.verdictSeq = seq
		}
		s.haveVerdict = true
		res.Rescored = true
	}
	res.Verdict = s.verdict
	res.SnapshotSeq = s.verdictSeq
	return res, nil
}

// Delete closes a session. Unknown ids fail with serve.ErrNotFound.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.m.sessions.Set(float64(len(m.sessions)))
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: no stream session %q", serve.ErrNotFound, id)
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// janitor is the supervised idle-eviction loop.
func (m *Manager) janitor(ctx context.Context) error {
	t := time.NewTicker(m.opts.janitorInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
			m.sweep()
		}
	}
}

// sweep evicts sessions idle past IdleTimeout and returns how many fell.
func (m *Manager) sweep() int {
	now := m.now()
	cutoff := now.Add(-m.opts.idleTimeout())
	var victims []*session
	m.mu.Lock()
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := s.lastActive.Before(cutoff)
		s.mu.Unlock()
		if idle {
			victims = append(victims, s)
			delete(m.sessions, id)
		}
	}
	m.m.sessions.Set(float64(len(m.sessions)))
	m.mu.Unlock()
	for _, s := range victims {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		m.m.evictions.Inc()
	}
	return len(victims)
}

// syncCacheStats re-exports the shared builder's node-feature cache
// counters as stream metrics (counters only move forward, so Add of the
// delta is exact).
func (m *Manager) syncCacheStats() {
	if m.opts.CacheStats == nil {
		return
	}
	st := m.opts.CacheStats()
	m.cacheMu.Lock()
	dh, dm := st.Hits-m.lastHits, st.Misses-m.lastMisses
	m.lastHits, m.lastMisses = st.Hits, st.Misses
	m.cacheMu.Unlock()
	m.m.cacheHits.Add(dh)
	m.m.cacheMisses.Add(dm)
}
