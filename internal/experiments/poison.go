package experiments

import (
	"fmt"

	"fexiot/internal/datasets"
	"fexiot/internal/fed"
	"fexiot/internal/mat"
	"fexiot/internal/ml"
)

// PoisonResult holds the honest-client F1 of every attack × aggregator cell
// of the poisoning sweep. The clean baseline is stored under attack "none";
// the pinned robustness test asserts against these numbers directly instead
// of re-parsing the rendered table.
type PoisonResult struct {
	F1 map[string]map[string]float64
}

// Cell returns F1[attack][agg] (0 when the cell was not run).
func (r *PoisonResult) Cell(attack, agg string) float64 {
	if m, ok := r.F1[attack]; ok {
		return m[agg]
	}
	return 0
}

// PoisonSweep runs the Byzantine-robustness experiment: nClients federated
// GIN detectors of which the last nByz run the named model/data-poisoning
// attack, once per aggregation rule. Every cell retrains from the same
// seeded split and initial weights, so differences are attributable to the
// attack × defence pair alone. Reported F1 averages the *honest* clients
// only — a poisoned client's local metrics measure its own corruption, not
// the federation's health.
func PoisonSweep(s Setup, attacks, aggs []string, nClients, nByz int) (*Table, *PoisonResult) {
	d := datasets.BuildIFTTT(s.Scale, s.Seed)
	labeled := d.Shuffled(s.Seed + 2)
	res := &PoisonResult{F1: map[string]map[string]float64{}}
	t := &Table{
		Title: fmt.Sprintf(
			"Poisoning: %d clients, %d Byzantine — honest-client F1 by aggregator",
			nClients, nByz),
		Header: append([]string{"attack"}, aggs...),
	}
	nHonest := nClients - nByz
	for _, atkName := range attacks {
		res.F1[atkName] = map[string]float64{}
		row := []string{atkName}
		for _, aggName := range aggs {
			agg, err := fed.NewAggregator(aggName)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			cd := s.splitClients(labeled, nClients, 1.0, s.Seed+7)
			base := s.newModel("GIN", d.Encoder, 100)
			clients := fed.NewClients(base, cd.train, s.LR)
			if atkName != "none" {
				for i := nHonest; i < nClients; i++ {
					// Fresh attack instance per client: replay is stateful.
					atk, err := fed.NewAttack(atkName)
					if err != nil {
						row = append(row, "n/a")
						continue
					}
					fed.MakeByzantine(clients[i], atk)
				}
			}
			cfg := s.fedConfig()
			cfg.Aggregator = agg
			fed.FedAvg{}.Run(clients, cfg)
			metrics := make([]ml.Metrics, nHonest)
			mat.ParallelFor(nHonest, func(i int) {
				metrics[i] = fed.EvaluateClient(clients[i], cd.test[i], 3)
			})
			f1 := meanMetrics(metrics).F1
			res.F1[atkName][aggName] = f1
			row = append(row, f3(f1))
		}
		t.Add(row...)
	}
	return t, res
}

// PoisonFederation is the registry entry point: the acceptance scenario of
// 8 clients with 2 attackers, swept over the aggregator menu. CI scale
// covers the two model-poisoning attacks the robustness bar is pinned on;
// paper scale adds data poisoning and stale replay.
func PoisonFederation(s Setup) *Table {
	attacks := []string{"none", "sign-flip", "scale"}
	if s.Scale.Name == "paper" {
		attacks = []string{"none", "label-flip", "sign-flip", "scale", "replay"}
	}
	t, _ := PoisonSweep(s, attacks,
		[]string{"fedavg", "trimmed", "median", "krum"}, 8, 2)
	return t
}
