package stream

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fexiot/internal/serve"
)

// httpStream stands a manager's HTTP surface up behind httptest.
func httpStream(t *testing.T, opts Options) (*httptest.Server, *Manager, *stubEngine) {
	t.Helper()
	m, eng, _ := testManager(t, opts)
	mux := http.NewServeMux()
	m.Mount(mux, 5*time.Second)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, m, eng
}

func do(t *testing.T, method, url, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		buf.Write(b[:n])
		if err != nil {
			break
		}
	}
	return resp, []byte(buf.String())
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var env serve.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not an envelope: %v\n%s", err, body)
	}
	return env.Err.Code
}

func TestStreamHTTPLifecycle(t *testing.T) {
	ts, _, eng := httpStream(t, Options{})
	eng.publish(1)

	// Create with rules and an initial event.
	resp, body := do(t, "POST", ts.URL+"/v1/streams", "application/json",
		`{"rules":[{"id":"r1"}],"events":[{"Time":1,"Device":"lamp","Value":"on"}]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d\n%s", resp.StatusCode, body)
	}
	var created CreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.WindowEvents != 1 {
		t.Fatalf("create reply %+v, want id + 1 window event", created)
	}

	// NDJSON ingest.
	nd := `{"Time":2,"Device":"fan","Value":"on"}` + "\n" +
		`{"Time":3,"Device":"door","Value":"open"}` + "\n"
	resp, body = do(t, "POST", ts.URL+"/v1/streams/"+created.ID+"/events",
		"application/x-ndjson", nd)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d\n%s", resp.StatusCode, body)
	}
	var ing IngestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Ingested != 2 || ing.WindowEvents != 3 || !ing.Changed {
		t.Fatalf("ingest reply %+v, want 2 ingested / 3 window / changed", ing)
	}

	// Rolling verdict.
	resp, body = do(t, "GET", ts.URL+"/v1/streams/"+created.ID, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict: status %d\n%s", resp.StatusCode, body)
	}
	var v VerdictResponse
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Nodes != 3 || v.SnapshotSeq != 1 || v.WindowEvents != 3 || v.Refusions != 1 {
		t.Fatalf("verdict reply %+v, want 3 nodes / seq 1 / 3 window / 1 refusion", v)
	}

	// Delete, then every touch is a 404 envelope.
	resp, body = do(t, "DELETE", ts.URL+"/v1/streams/"+created.ID, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d\n%s", resp.StatusCode, body)
	}
	resp, body = do(t, "GET", ts.URL+"/v1/streams/"+created.ID, "", "")
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != serve.CodeNotFound {
		t.Fatalf("read after delete: %d %s", resp.StatusCode, body)
	}
}

func TestStreamHTTPErrors(t *testing.T) {
	ts, _, eng := httpStream(t, Options{MaxSessions: 1, MaxBodyBytes: 256})
	eng.publish(1)

	// Empty rules → bad_request.
	resp, body := do(t, "POST", ts.URL+"/v1/streams", "application/json", `{"rules":[]}`)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != serve.CodeBadRequest {
		t.Fatalf("empty rules: %d %s", resp.StatusCode, body)
	}

	// Wrong verb on the collection → 405 + Allow.
	resp, body = do(t, "GET", ts.URL+"/v1/streams", "", "")
	if resp.StatusCode != http.StatusMethodNotAllowed ||
		resp.Header.Get("Allow") != "POST" ||
		errCode(t, body) != serve.CodeMethodNotAllowed {
		t.Fatalf("GET collection: %d Allow=%q %s",
			resp.StatusCode, resp.Header.Get("Allow"), body)
	}

	// Wrong Content-Type on create → 415.
	resp, body = do(t, "POST", ts.URL+"/v1/streams", "text/csv", "a,b")
	if resp.StatusCode != http.StatusUnsupportedMediaType ||
		errCode(t, body) != serve.CodeUnsupportedMedia {
		t.Fatalf("csv create: %d %s", resp.StatusCode, body)
	}

	// Fill the table → 429 overloaded with Retry-After.
	resp, _ = do(t, "POST", ts.URL+"/v1/streams", "application/json", `{"rules":[{"id":"r1"}]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create: %d", resp.StatusCode)
	}
	resp, body = do(t, "POST", ts.URL+"/v1/streams", "application/json", `{"rules":[{"id":"r2"}]}`)
	if resp.StatusCode != http.StatusTooManyRequests ||
		resp.Header.Get("Retry-After") != "1" ||
		errCode(t, body) != serve.CodeOverloaded {
		t.Fatalf("table full: %d Retry-After=%q %s",
			resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}

	// Unknown id → not_found.
	resp, body = do(t, "GET", ts.URL+"/v1/streams/nope", "", "")
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != serve.CodeNotFound {
		t.Fatalf("unknown id: %d %s", resp.StatusCode, body)
	}

	// Bad NDJSON record → bad_request naming the record.
	resp, body = do(t, "POST", ts.URL+"/v1/streams/s1/events", "application/x-ndjson",
		`{"Time":1,"Device":"a","Value":"on"}`+"\n"+`{broken`)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != serve.CodeBadRequest {
		t.Fatalf("bad ndjson: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "record 2") {
		t.Fatalf("bad-record error does not name the record: %s", body)
	}

	// Empty batch → bad_request.
	resp, body = do(t, "POST", ts.URL+"/v1/streams/s1/events", "application/x-ndjson", "")
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != serve.CodeBadRequest {
		t.Fatalf("empty batch: %d %s", resp.StatusCode, body)
	}

	// Oversize NDJSON body → 413 too_large.
	big := strings.Repeat(`{"Time":1,"Device":"aaaaaaaaaaaaaaaa","Value":"on"}`+"\n", 32)
	resp, body = do(t, "POST", ts.URL+"/v1/streams/s1/events", "application/x-ndjson", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge ||
		errCode(t, body) != serve.CodeTooLarge {
		t.Fatalf("oversize batch: %d %s", resp.StatusCode, body)
	}

	// Junk sub-path → not_found.
	resp, body = do(t, "POST", ts.URL+"/v1/streams/s1/events/extra", "application/json", "{}")
	if resp.StatusCode != http.StatusNotFound || errCode(t, body) != serve.CodeNotFound {
		t.Fatalf("junk path: %d %s", resp.StatusCode, body)
	}
}
