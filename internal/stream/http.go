package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"fexiot/internal/eventlog"
	"fexiot/internal/rules"
	"fexiot/internal/serve"
)

// CreateRequest is the JSON body of POST /v1/streams: the session's
// deployed rules, plus an optional initial event batch.
type CreateRequest struct {
	Rules  []*rules.Rule `json:"rules"`
	Events eventlog.Log  `json:"events,omitempty"`
}

// CreateResponse is the JSON reply of POST /v1/streams.
type CreateResponse struct {
	ID           string `json:"id"`
	WindowEvents int    `json:"window_events"`
}

// IngestResponse is the JSON reply of POST /v1/streams/{id}/events.
type IngestResponse struct {
	ID string `json:"id"`
	IngestResult
}

// VerdictResponse is the JSON reply of GET /v1/streams/{id}: the rolling
// verdict plus enough provenance (snapshot seq, window shape, refusion
// count) for a client to reason about how fresh it is.
type VerdictResponse struct {
	ID            string  `json:"id"`
	Vulnerable    bool    `json:"vulnerable"`
	Score         float64 `json:"score"`
	Drifting      bool    `json:"drifting"`
	DriftScore    float64 `json:"drift_score"`
	Nodes         int     `json:"nodes"`
	SnapshotSeq   uint64  `json:"snapshot_seq"`
	WindowEvents  int     `json:"window_events"`
	WindowSpan    int64   `json:"window_span_seconds"`
	Refusions     int64   `json:"refusions"`
	EventsTotal   int64   `json:"events_total"`
	DroppedTotal  int64   `json:"dropped_total"`
}

// DeleteResponse is the JSON reply of DELETE /v1/streams/{id}.
type DeleteResponse struct {
	ID     string `json:"id"`
	Closed bool   `json:"closed"`
}

func (m *Manager) send(w http.ResponseWriter, status int, body any) {
	if err := serve.WriteJSON(w, status, body); err != nil {
		m.m.writeErrs.Inc()
	}
}

func (m *Manager) sendErr(w http.ResponseWriter, err error) {
	if werr := serve.WriteError(w, err); werr != nil {
		m.m.writeErrs.Inc()
	}
}

// Mount registers the streaming session endpoints on mux:
//
//	POST   /v1/streams             create a session (JSON: rules [+events])
//	POST   /v1/streams/{id}/events ingest an NDJSON event batch
//	GET    /v1/streams/{id}        rolling verdict
//	DELETE /v1/streams/{id}        close the session
//
// All errors use the shared /v1 envelope and code vocabulary.
func (m *Manager) Mount(mux *http.ServeMux, timeout time.Duration) {
	mux.HandleFunc("/v1/streams", func(w http.ResponseWriter, req *http.Request) {
		defer m.recoverPanic(w)
		m.handleCreate(w, req)
	})
	mux.HandleFunc("/v1/streams/", func(w http.ResponseWriter, req *http.Request) {
		defer m.recoverPanic(w)
		m.handleItem(w, req, timeout)
	})
}

// recoverPanic converts a panicking handler into one internal-error reply.
func (m *Manager) recoverPanic(w http.ResponseWriter) {
	if v := recover(); v != nil {
		m.m.panics.Inc()
		m.sendErr(w, fmt.Errorf("stream: handler panicked: %v", v))
	}
}

func (m *Manager) handleCreate(w http.ResponseWriter, req *http.Request) {
	if !serve.AllowMethods(w, req, http.MethodPost) {
		return
	}
	if !serve.RequireContentType(w, req) {
		return
	}
	var in CreateRequest
	if err := serve.ReadJSON(w, req, m.opts.maxBodyBytes(), &in); err != nil {
		m.sendErr(w, err)
		return
	}
	id, err := m.Create(in.Rules)
	if err != nil {
		m.sendErr(w, err)
		return
	}
	resp := CreateResponse{ID: id}
	if len(in.Events) > 0 {
		res, err := m.Ingest(id, in.Events)
		if err != nil {
			m.sendErr(w, err)
			return
		}
		resp.WindowEvents = res.WindowEvents
	}
	m.send(w, http.StatusCreated, resp)
}

func (m *Manager) handleItem(w http.ResponseWriter, req *http.Request, timeout time.Duration) {
	rest := strings.TrimPrefix(req.URL.Path, "/v1/streams/")
	parts := strings.Split(rest, "/")
	switch {
	case len(parts) == 1 && parts[0] != "":
		id := parts[0]
		switch req.Method {
		case http.MethodGet:
			m.handleVerdict(w, req, id, timeout)
		case http.MethodDelete:
			if err := m.Delete(id); err != nil {
				m.sendErr(w, err)
				return
			}
			m.send(w, http.StatusOK, DeleteResponse{ID: id, Closed: true})
		default:
			serve.AllowMethods(w, req, http.MethodGet, http.MethodDelete)
		}
	case len(parts) == 2 && parts[1] == "events":
		if !serve.AllowMethods(w, req, http.MethodPost) {
			return
		}
		m.handleIngest(w, req, parts[0])
	default:
		m.sendErr(w, fmt.Errorf("%w: no endpoint %s", serve.ErrNotFound, req.URL.Path))
	}
}

func (m *Manager) handleVerdict(w http.ResponseWriter, req *http.Request,
	id string, timeout time.Duration) {
	ctx := req.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := m.Verdict(ctx, id)
	if err != nil {
		m.sendErr(w, err)
		return
	}
	m.send(w, http.StatusOK, VerdictResponse{
		ID:           id,
		Vulnerable:   res.Verdict.Vulnerable,
		Score:        res.Verdict.Score,
		Drifting:     res.Verdict.Drifting,
		DriftScore:   res.Verdict.DriftScore,
		Nodes:        res.Nodes,
		SnapshotSeq:  res.SnapshotSeq,
		WindowEvents: res.WindowEvents,
		WindowSpan:   res.WindowSpan,
		Refusions:    res.Refusions,
		EventsTotal:  res.EventsTotal,
		DroppedTotal: res.DroppedTotal,
	})
}

// handleIngest consumes an NDJSON batch: one JSON event object per line
// (any whitespace-separated concatenation of JSON objects is accepted).
// Either the whole batch lands in the window or none of it does.
func (m *Manager) handleIngest(w http.ResponseWriter, req *http.Request, id string) {
	if !serve.RequireContentType(w, req, "application/x-ndjson", "application/json") {
		return
	}
	req.Body = http.MaxBytesReader(w, req.Body, m.opts.maxBodyBytes())
	dec := json.NewDecoder(req.Body)
	var evs []eventlog.Event
	for {
		var e eventlog.Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				m.sendErr(w, fmt.Errorf("%w: body exceeds %d bytes",
					serve.ErrTooLarge, tooBig.Limit))
				return
			}
			m.sendErr(w, fmt.Errorf("%w: bad NDJSON at record %d: %v",
				serve.ErrBadRequest, len(evs)+1, err))
			return
		}
		evs = append(evs, e)
	}
	if len(evs) == 0 {
		m.sendErr(w, fmt.Errorf("%w: empty event batch", serve.ErrBadRequest))
		return
	}
	res, err := m.Ingest(id, evs)
	if err != nil {
		m.sendErr(w, err)
		return
	}
	m.send(w, http.StatusOK, IngestResponse{ID: id, IngestResult: res})
}
