package ml

import (
	"math"
	"testing"
	"testing/quick"

	"fexiot/internal/rng"
)

// blobs builds a linearly separable 2-cluster dataset with optional overlap
// noise.
func blobs(n int, noise float64, seed int64) ([][]float64, []int) {
	r := rng.New(seed)
	var x [][]float64
	var y []int
	for i := 0; i < n; i++ {
		label := i % 2
		cx, cy := 2.0, 2.0
		if label == 0 {
			cx, cy = -2.0, -2.0
		}
		x = append(x, []float64{
			cx + r.NormFloat64()*noise,
			cy + r.NormFloat64()*noise,
		})
		y = append(y, label)
	}
	return x, y
}

// xorData builds the XOR dataset, non-linearly separable.
func xorData(n int, seed int64) ([][]float64, []int) {
	r := rng.New(seed)
	var x [][]float64
	var y []int
	for i := 0; i < n; i++ {
		a := r.Float64()*2 - 1
		b := r.Float64()*2 - 1
		label := 0
		if (a > 0) != (b > 0) {
			label = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, label)
	}
	return x, y
}

func TestEvaluateKnownConfusion(t *testing.T) {
	pred := []int{1, 1, 0, 0, 1}
	truth := []int{1, 0, 0, 1, 1}
	m := Evaluate(pred, truth)
	if m.TP != 2 || m.FP != 1 || m.TN != 1 || m.FN != 1 {
		t.Fatalf("confusion %+v", m)
	}
	if math.Abs(m.Accuracy-0.6) > 1e-12 {
		t.Fatalf("accuracy %v", m.Accuracy)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-12 || math.Abs(m.Recall-2.0/3) > 1e-12 {
		t.Fatalf("precision/recall %+v", m)
	}
	if math.Abs(m.F1-2.0/3) > 1e-12 {
		t.Fatalf("f1 %v", m.F1)
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	m := Evaluate([]int{0, 0}, []int{0, 0})
	if m.Accuracy != 1 || m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("all-negative metrics %+v", m)
	}
}

func TestClassifiersSeparateBlobs(t *testing.T) {
	x, y := blobs(200, 0.5, 1)
	teX, teY := x[150:], y[150:]
	trX, trY := x[:150], y[:150]
	cases := map[string]Classifier{
		"knn":    NewKNN(5),
		"tree":   NewDecisionTree(6),
		"forest": NewRandomForest(20, 6, 7),
		"gboost": NewGradientBoost(30, 3, 0.2),
		"sgd":    NewSGDClassifier(50, 0.1, 3),
	}
	for name, c := range cases {
		c.Fit(trX, trY)
		m := Evaluate(PredictAll(c, teX), teY)
		if m.Accuracy < 0.95 {
			t.Errorf("%s accuracy on blobs = %v", name, m.Accuracy)
		}
	}
}

func TestNonlinearModelsSolveXOR(t *testing.T) {
	x, y := xorData(400, 5)
	trX, trY := x[:300], y[:300]
	teX, teY := x[300:], y[300:]
	nonlinear := map[string]Classifier{
		"knn":    NewKNN(7),
		"tree":   NewDecisionTree(8),
		"forest": NewRandomForest(30, 8, 11),
		"gboost": NewGradientBoost(60, 3, 0.3),
	}
	for name, c := range nonlinear {
		c.Fit(trX, trY)
		m := Evaluate(PredictAll(c, teX), teY)
		if m.Accuracy < 0.85 {
			t.Errorf("%s accuracy on XOR = %v", name, m.Accuracy)
		}
	}
	// Linear SGD must fail on XOR — sanity check that the task is nonlinear.
	sgd := NewSGDClassifier(50, 0.1, 3)
	sgd.Fit(trX, trY)
	if m := Evaluate(PredictAll(sgd, teX), teY); m.Accuracy > 0.8 {
		t.Errorf("linear model should not solve XOR, got %v", m.Accuracy)
	}
}

func TestKFoldAveragesReasonably(t *testing.T) {
	x, y := blobs(120, 0.4, 9)
	m := KFold(func() Classifier { return NewKNN(3) }, x, y, 10, 42)
	if m.Accuracy < 0.95 || m.F1 < 0.95 {
		t.Fatalf("10-fold metrics %+v", m)
	}
}

func TestTrainTestSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		x, y := blobs(50, 0.3, seed)
		trX, trY, teX, teY := TrainTestSplit(x, y, 0.8, seed)
		return len(trX) == 40 && len(teX) == 10 &&
			len(trY) == 40 && len(teY) == 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGridSearchPicksWorkingDepth(t *testing.T) {
	x, y := xorData(200, 13)
	best, m := GridSearch(func(p float64) Classifier {
		return NewDecisionTree(int(p))
	}, []float64{1, 8}, x, y, 5, 7)
	if best != 8 {
		t.Fatalf("grid search picked depth %v (metrics %+v)", best, m)
	}
}

func TestDecisionTreeDepthBound(t *testing.T) {
	x, y := xorData(300, 17)
	tree := NewDecisionTree(3)
	tree.Fit(x, y)
	if d := tree.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds bound", d)
	}
}

func TestDecisionTreePureLeafShortCircuit(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []int{1, 1, 1}
	tree := NewDecisionTree(5)
	tree.Fit(x, y)
	if tree.Depth() != 0 {
		t.Fatal("pure dataset should produce a lone leaf")
	}
	if tree.Predict([]float64{9}) != 1 {
		t.Fatal("pure-leaf prediction")
	}
}

func TestSGDClassWeights(t *testing.T) {
	// Highly imbalanced data: class weights should raise recall on the
	// minority class.
	r := rng.New(3)
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		if i%20 == 0 {
			x = append(x, []float64{1.0 + r.NormFloat64()*0.6})
			y = append(y, 1)
		} else {
			x = append(x, []float64{-0.4 + r.NormFloat64()*0.6})
			y = append(y, 0)
		}
	}
	plain := NewSGDClassifier(40, 0.1, 5)
	plain.Fit(x, y)
	weighted := NewSGDClassifier(40, 0.1, 5)
	weighted.ClassWeights = []float64{1, 20}
	weighted.Fit(x, y)
	mp := Evaluate(PredictAll(plain, x), y)
	mw := Evaluate(PredictAll(weighted, x), y)
	if mw.Recall <= mp.Recall {
		t.Fatalf("class weights should raise recall: plain %v weighted %v",
			mp.Recall, mw.Recall)
	}
}

func TestIsolationForestFlagsOutliers(t *testing.T) {
	r := rng.New(21)
	var x [][]float64
	for i := 0; i < 300; i++ {
		x = append(x, []float64{r.NormFloat64() * 0.5, r.NormFloat64() * 0.5})
	}
	f := NewIsolationForest(100, 128, 3)
	f.Fit(x, nil)
	inlier := f.Score([]float64{0, 0})
	outlier := f.Score([]float64{8, -8})
	if outlier <= inlier {
		t.Fatalf("outlier score %v should exceed inlier score %v", outlier, inlier)
	}
	if f.Predict([]float64{8, -8}) != 1 {
		t.Fatalf("far outlier not flagged (score %v)", outlier)
	}
	if f.Predict([]float64{0, 0}) != 0 {
		t.Fatalf("centre flagged as anomaly (score %v)", inlier)
	}
}

func TestKNNScoreBounds(t *testing.T) {
	x, y := blobs(60, 0.4, 31)
	c := NewKNN(5)
	c.Fit(x, y)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		s := c.Score([]float64{a, b})
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGradientBoostProbabilityBounds(t *testing.T) {
	x, y := blobs(100, 0.5, 37)
	b := NewGradientBoost(20, 3, 0.3)
	b.Fit(x, y)
	for _, q := range x {
		s := b.Score(q)
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %v out of range", s)
		}
	}
}

func TestEmptyFitSafety(t *testing.T) {
	// Fitting on empty data must not panic, and prediction stays defined.
	for _, c := range []Classifier{
		NewDecisionTree(3), NewRandomForest(5, 3, 1),
		NewGradientBoost(5, 2, 0.1), NewSGDClassifier(5, 0.1, 1),
	} {
		c.Fit(nil, nil)
		_ = c.Score([]float64{1, 2})
	}
}

// TestGradientBoostDegenerateLabels is the regression test for the initial
// log-odds bias: an all-one-class training set sits at the clamp boundary,
// and the fitted ensemble must stay finite and keep predicting the only
// class it has ever seen.
func TestGradientBoostDegenerateLabels(t *testing.T) {
	x, _ := blobs(40, 0.3, 5)
	for _, class := range []int{0, 1} {
		y := make([]int, len(x))
		for i := range y {
			y[i] = class
		}
		b := NewGradientBoost(10, 3, 0.3)
		b.Fit(x, y)
		if math.IsInf(b.bias, 0) || math.IsNaN(b.bias) {
			t.Fatalf("class %d: degenerate labels produced non-finite bias %v", class, b.bias)
		}
		for _, q := range x {
			s := b.Score(q)
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Fatalf("class %d: score %v out of range on degenerate fit", class, s)
			}
			if b.Predict(q) != class {
				t.Fatalf("class %d: predicted %d after seeing only class %d",
					class, b.Predict(q), class)
			}
		}
	}
}
