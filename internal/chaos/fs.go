package chaos

import (
	"errors"
	"io"
	"os"
	"sync"
)

// ErrInjected is the error every armed filesystem fault reports, so tests
// can tell an injected failure from a real one with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// File is the subset of *os.File the checkpoint writer needs. Keeping the
// interface this small is what makes disk faults injectable: a FaultFS can
// fail any single write, sync or rename without reimplementing os.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam behind durable state (fedproto checkpoints).
// The production implementation is OSFS; FaultFS wraps any FS with
// scripted failures.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	ReadFile(name string) ([]byte, error)
	Remove(name string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// CreateTemp delegates to os.CreateTemp.
func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename delegates to os.Rename.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// ReadFile delegates to os.ReadFile.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Remove delegates to os.Remove.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// FaultFS wraps an FS with scripted disk faults: the next N writes, syncs
// or renames fail with ErrInjected, then the disk "heals" and subsequent
// operations pass through. Arming methods may be called mid-flight; all
// methods are safe for concurrent use.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	failWrites  int
	failSyncs   int
	failRenames int
	writes      int
	syncs       int
	renames     int
}

// NewFaultFS wraps inner (nil selects the real filesystem) with no faults
// armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner}
}

// FailWrites arms the next n Write calls to fail with ErrInjected.
func (f *FaultFS) FailWrites(n int) {
	f.mu.Lock()
	f.failWrites = n
	f.mu.Unlock()
}

// FailSyncs arms the next n Sync calls to fail with ErrInjected.
func (f *FaultFS) FailSyncs(n int) {
	f.mu.Lock()
	f.failSyncs = n
	f.mu.Unlock()
}

// FailRenames arms the next n Rename calls to fail with ErrInjected.
func (f *FaultFS) FailRenames(n int) {
	f.mu.Lock()
	f.failRenames = n
	f.mu.Unlock()
}

// Writes reports how many Write calls reached the fault layer.
func (f *FaultFS) Writes() int { f.mu.Lock(); defer f.mu.Unlock(); return f.writes }

// Renames reports how many Rename calls reached the fault layer.
func (f *FaultFS) Renames() int { f.mu.Lock(); defer f.mu.Unlock(); return f.renames }

// CreateTemp delegates to the inner FS, wrapping the file so its writes
// and syncs consult the fault budget.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename fails while the rename budget is armed, then delegates.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	inject := f.failRenames > 0
	if inject {
		f.failRenames--
	}
	f.mu.Unlock()
	if inject {
		return ErrInjected
	}
	return f.inner.Rename(oldpath, newpath)
}

// ReadFile delegates to the inner FS (reads are never faulted — corrupt
// reads are modelled by corrupting the file itself).
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Remove delegates to the inner FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// faultFile consults the owning FaultFS budget on every write and sync.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	w.fs.writes++
	inject := w.fs.failWrites > 0
	if inject {
		w.fs.failWrites--
	}
	w.fs.mu.Unlock()
	if inject {
		return 0, ErrInjected
	}
	return w.inner.Write(p)
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	w.fs.syncs++
	inject := w.fs.failSyncs > 0
	if inject {
		w.fs.failSyncs--
	}
	w.fs.mu.Unlock()
	if inject {
		return ErrInjected
	}
	return w.inner.Sync()
}

func (w *faultFile) Close() error { return w.inner.Close() }

func (w *faultFile) Name() string { return w.inner.Name() }
