package graph

// Closure is a precomputed transitive closure over the directed edges,
// stored as per-node bitsets. The ground-truth labeler issues O(n²)
// reachability and common-ancestor queries per graph; with n ≤ 50 the
// closure makes each query a few word operations.
type Closure struct {
	n     int
	words int
	reach [][]uint64 // reach[u] bitset of nodes reachable from u (excl. u unless on a cycle)
	out   [][]int
}

// TransitiveClosure computes the closure of g.
func (g *Graph) TransitiveClosure() *Closure {
	n := g.N()
	words := (n + 63) / 64
	c := &Closure{n: n, words: words,
		reach: make([][]uint64, n), out: make([][]int, n)}
	for _, e := range g.Edges {
		c.out[e.From] = append(c.out[e.From], e.To)
	}
	visited := make([]bool, n)
	for u := 0; u < n; u++ {
		bits := make([]uint64, words)
		for i := range visited {
			visited[i] = false
		}
		stack := append([]int(nil), c.out[u]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[v] {
				continue
			}
			visited[v] = true
			bits[v/64] |= 1 << (uint(v) % 64)
			stack = append(stack, c.out[v]...)
		}
		c.reach[u] = bits
	}
	return c
}

// Reachable reports whether v is reachable from u along directed edges
// (true for u==v only when u lies on a cycle).
func (c *Closure) Reachable(u, v int) bool {
	return c.reach[u][v/64]&(1<<(uint(v)%64)) != 0
}

// CommonAncestor reports whether u and v are causally related: one reaches
// the other, or a third node reaches both.
func (c *Closure) CommonAncestor(u, v int) bool {
	if c.Reachable(u, v) || c.Reachable(v, u) {
		return true
	}
	for w := 0; w < c.n; w++ {
		if w == u || w == v {
			continue
		}
		if c.Reachable(w, u) && c.Reachable(w, v) {
			return true
		}
	}
	return false
}

// InDegree returns the in-degree of node v.
func (c *Closure) InDegree(v int) int {
	n := 0
	for u := 0; u < c.n; u++ {
		for _, x := range c.out[u] {
			if x == v {
				n++
			}
		}
	}
	return n
}

// Out returns the adjacency list of u (shared slice; do not mutate).
func (c *Closure) Out(u int) []int { return c.out[u] }
