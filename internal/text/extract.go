package text

import "strings"

// Elements are the linguistic elements §III-A1 extracts from a clause: the
// root/main verbs, the device objects (direct objects and nominal subjects)
// and the property words (states, levels, numbers).
type Elements struct {
	Verbs      []string
	Objects    []string
	Properties []string
}

// Clause is one side (trigger or action) of an automation rule.
type Clause struct {
	Text     string
	Tokens   []Token
	Elements Elements
}

// ParsedRule is a rule description split into its trigger and action parts.
type ParsedRule struct {
	Trigger Clause
	Action  Clause
}

// Place/entity nouns eliminated during element extraction: the paper strips
// named entities because "the same entity might modify two distinct
// objects" (a kitchen light and a kitchen valve must not look correlated
// just because of the room name).
var entityNouns = set("kitchen", "bathroom", "bedroom", "living", "hallway",
	"basement", "attic", "office", "yard", "lawn", "room", "home", "house",
	"front", "back", "upstairs", "downstairs", "porch", "hall")

// Trigger markers that introduce the condition clause of a rule.
var triggerMarkers = []string{"as soon as", "whenever", "when", "while", "if",
	"once", "in case", "every time", "until", "unless", "after"}

// SplitClauses divides a rule sentence into (trigger, action) clause texts.
// It recognises both "ACTION if TRIGGER" and "If TRIGGER, ACTION" /
// "If TRIGGER then ACTION" orders. A rule with no marker (a plain voice
// command) returns an empty trigger.
func SplitClauses(rule string) (trigger, action string) {
	s := strings.ToLower(strings.TrimSpace(rule))
	for _, m := range triggerMarkers {
		idx := markerIndex(s, m)
		if idx < 0 {
			continue
		}
		if idx == 0 {
			rest := strings.TrimSpace(s[len(m):])
			// Trigger runs to the first comma or a "then".
			if cut := strings.Index(rest, ","); cut >= 0 {
				return strings.TrimSpace(rest[:cut]), strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest[cut+1:]), "then "))
			}
			if cut := markerIndex(rest, "then"); cut >= 0 {
				return strings.TrimSpace(rest[:cut]), strings.TrimSpace(rest[cut+len("then"):])
			}
			// No explicit boundary: treat the whole remainder as trigger
			// with an empty action (degenerate but harmless).
			return rest, ""
		}
		return strings.TrimSpace(s[idx+len(m):]), strings.TrimSpace(strings.TrimSuffix(s[:idx], ","))
	}
	return "", s
}

// markerIndex finds marker as a whole-word occurrence in s, or -1.
func markerIndex(s, marker string) int {
	from := 0
	for {
		i := strings.Index(s[from:], marker)
		if i < 0 {
			return -1
		}
		i += from
		leftOK := i == 0 || !isWordByte(s[i-1])
		r := i + len(marker)
		rightOK := r >= len(s) || !isWordByte(s[r])
		if leftOK && rightOK {
			return i
		}
		from = i + len(marker)
	}
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// ExtractElements pulls the verbs, objects and properties from a clause.
func ExtractElements(tokens []Token) Elements {
	var e Elements
	for _, t := range tokens {
		switch t.Tag {
		case Verb:
			if t.Lemma != "be" && t.Lemma != "do" && t.Lemma != "have" {
				e.Verbs = append(e.Verbs, t.Lemma)
			}
		case Noun:
			if entityNouns[t.Text] || entityNouns[t.Lemma] {
				continue // named-entity elimination
			}
			if IsStopword(t.Lemma) {
				continue
			}
			e.Objects = append(e.Objects, t.Lemma)
		case Adjective:
			e.Properties = append(e.Properties, t.Lemma)
		case Particle:
			if t.Text == "on" || t.Text == "off" || t.Text == "up" || t.Text == "down" {
				e.Properties = append(e.Properties, t.Text)
			}
		case Number:
			e.Properties = append(e.Properties, t.Text)
		}
	}
	return e
}

// Parse splits a rule description into trigger and action clauses and
// extracts the elements of each.
func Parse(rule string) ParsedRule {
	trigText, actText := SplitClauses(rule)
	var pr ParsedRule
	pr.Trigger = parseClause(trigText)
	pr.Action = parseClause(actText)
	return pr
}

func parseClause(s string) Clause {
	toks := TagSentence(s)
	return Clause{Text: s, Tokens: toks, Elements: ExtractElements(toks)}
}

// KeyPhrases returns the content lemmas of a sentence (verbs, objects,
// properties of both clauses) in order, with stopwords and entities removed.
// These feed the word-embedding encoder for node features (§IV-A).
func KeyPhrases(rule string) []string {
	pr := Parse(rule)
	var out []string
	for _, e := range []Elements{pr.Trigger.Elements, pr.Action.Elements} {
		out = append(out, e.Verbs...)
		out = append(out, e.Objects...)
		out = append(out, e.Properties...)
	}
	return out
}
