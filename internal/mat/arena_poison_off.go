//go:build !debugarena

package mat

// poison is a no-op in normal builds; build with -tags=debugarena to fill
// released buffers with NaN so use-after-recycle reads are caught loudly.
func poison([]float64) {}

// ArenaPoisonEnabled reports whether the debugarena NaN-poison build is
// active.
const ArenaPoisonEnabled = false
