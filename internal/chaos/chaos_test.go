package chaos

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestPlanDeterministic: equal seeds replay the exact same decision
// stream; different seeds diverge.
func TestPlanDeterministic(t *testing.T) {
	draw := func(seed int64) []int {
		p := NewPlan(seed)
		out := make([]int, 32)
		for i := range out {
			out[i] = p.Intn(1000)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 draw %d: %d vs %d — plan is not deterministic", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical streams")
	}
	p := NewPlan(7)
	for i := 0; i < 1000; i++ {
		if f := p.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if d := p.Duration(time.Millisecond, time.Second); d < time.Millisecond || d >= time.Second {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
}

// TestPanicOnCall pins the scheduled-crash hook: exactly the nth call
// panics, all others (including post-fire) are no-ops, concurrently safe.
func TestPanicOnCall(t *testing.T) {
	hook := PanicOnCall(3, "scheduled")
	fire := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		hook()
		return false
	}
	if fire() || fire() {
		t.Fatal("hook fired before its scheduled call")
	}
	if !fire() {
		t.Fatal("hook did not fire on call 3")
	}
	if fire() {
		t.Fatal("hook fired twice")
	}

	// Concurrent hammering fires exactly once.
	hook = PanicOnCall(50, "concurrent")
	var fired sync.Map
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					fired.Store(i, true)
				}
			}()
			hook()
		}(i)
	}
	wg.Wait()
	n := 0
	fired.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("hook fired %d times, want exactly 1", n)
	}
}

// TestFaultFSArmsAndHeals: armed budgets fail with ErrInjected for exactly
// n operations, then the disk heals and a full write cycle succeeds on the
// real filesystem underneath.
func TestFaultFSArmsAndHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)

	writeCycle := func() error {
		f, err := ffs.CreateTemp(dir, "ckpt*")
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("payload")); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ffs.Rename(f.Name(), filepath.Join(dir, "final"))
	}

	ffs.FailWrites(1)
	if err := writeCycle(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write failed with %v, want ErrInjected", err)
	}
	ffs.FailSyncs(1)
	if err := writeCycle(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed sync failed with %v, want ErrInjected", err)
	}
	ffs.FailRenames(1)
	if err := writeCycle(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed rename failed with %v, want ErrInjected", err)
	}
	// Healed: everything passes through to the real disk.
	if err := writeCycle(); err != nil {
		t.Fatalf("healed cycle failed: %v", err)
	}
	data, err := ffs.ReadFile(filepath.Join(dir, "final"))
	if err != nil || string(data) != "payload" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if ffs.Writes() < 4 || ffs.Renames() < 2 {
		t.Fatalf("op counters writes=%d renames=%d, want ≥4/≥2", ffs.Writes(), ffs.Renames())
	}
	if _, err := os.Stat(filepath.Join(dir, "final")); err != nil {
		t.Fatalf("final file missing: %v", err)
	}
}

// TestConnFaults pins the three link faults on a real TCP pair: delay
// slows reads, DropAfter swallows writes while reporting success, Kill
// surfaces as a peer-visible close.
func TestConnFaults(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fc := NewConn(raw)
	defer fc.Close()
	peer := <-accepted
	defer peer.Close()

	// Blackhole: writes report full success but the peer sees nothing.
	fc.DropAfter(0)
	if n, err := fc.Write([]byte("swallowed")); n != 9 || err != nil {
		t.Fatalf("blackholed write = %d, %v; want 9, nil", n, err)
	}
	peer.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := peer.Read(buf); err == nil {
		t.Fatalf("peer read %d bytes through a blackhole", n)
	}

	// Disarm and verify traffic flows again.
	fc.DropAfter(-1)
	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := peer.Read(buf); err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("peer read %q, %v", buf[:n], err)
	}

	// Kill: the peer sees the close.
	if err := fc.Kill(); err != nil {
		t.Fatal(err)
	}
	if !fc.Killed() {
		t.Fatal("Killed() false after Kill")
	}
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := peer.Read(buf); err == nil {
		t.Fatal("peer read succeeded after Kill")
	}
}
