// Command fexclient runs one federated FexIoT client: it generates (or
// would in production: loads) its local interaction-graph dataset, connects
// to a fexserver, and participates in layer-wise clustered federated
// training over TCP. After training it reports local detection metrics.
//
// Usage:
//
//	fexclient -addr localhost:7070 -id 0 -archetype security -graphs 120
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"fexiot/internal/autodiff"
	"fexiot/internal/embed"
	"fexiot/internal/fedproto"
	"fexiot/internal/fusion"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/rules"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "server address")
	id := flag.Int("id", 0, "client id")
	archetype := flag.String("archetype", "security", "household archetype")
	nGraphs := flag.Int("graphs", 120, "local dataset size")
	pairs := flag.Int("pairs", 150, "contrastive pairs per round")
	seed := flag.Int64("seed", 0, "random seed (default: derived from id)")
	flag.Parse()
	if *seed == 0 {
		*seed = int64(*id)*7919 + 17
	}

	// Local data: a home's interaction graphs.
	enc := embed.NewEncoder(48, 64)
	var arch rules.Archetype
	for _, a := range rules.Archetypes() {
		if a.Name == *archetype {
			arch = a
		}
	}
	if arch.Name == "" {
		arch = rules.Archetypes()[*id%len(rules.Archetypes())]
	}
	pool := fusion.MultiHomePool(*seed, 40, 25, nil)
	b := fusion.NewBuilder(*seed+1, enc)
	var local []*graph.Graph
	for i := 0; i < *nGraphs; i++ {
		local = append(local, b.OfflineSized(pool))
	}
	cut := len(local) * 8 / 10
	train, test := local[:cut], local[cut:]

	model := gnn.NewGIN(fusion.WordFeatureDim(enc), 24, 16, 100)
	opt := autodiff.NewAdam(0.005)
	cfg := gnn.DefaultTrainConfig(*seed)
	cfg.LR = 0.005
	cfg.PairsPerEpoch = *pairs

	raw, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		os.Exit(1)
	}
	conn := fedproto.Wrap(raw)
	defer conn.Close()

	err = fedproto.RunClientLoop(conn, *id, len(train), model.Params(),
		func(round int) map[int]float64 {
			before := model.Params().Clone()
			cfg.Seed = *seed + int64(round)
			gnn.TrainContrastive(model, train, cfg, opt)
			return fedproto.LayerNorms(before, model.Params())
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "client loop:", err)
		os.Exit(1)
	}

	det := gnn.NewDetector(model, 3)
	det.FitClassifier(train)
	m := gnn.EvaluateDetector(det, test)
	in, out := conn.Bytes()
	fmt.Printf("client %d done: local acc=%.3f f1=%.3f; wire in=%dB out=%dB\n",
		*id, m.Accuracy, m.F1, in, out)
}
