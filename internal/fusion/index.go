package fusion

import (
	"fexiot/internal/rules"
)

// condKey identifies a device-state condition exactly.
type condKey struct {
	dev, room string
	ch        rules.Channel
	state     string
}

// envKey identifies an environmental influence (channel pushed in a
// direction within a room).
type envKey struct {
	ch   rules.Channel
	sign int
	room string
}

// PoolIndex accelerates correlated-partner lookup over a large rule pool:
// given a rule, it returns the pool rules its actions can trigger (forward)
// and the pool rules whose actions can trigger it (backward) without
// scanning the pool. Semantics mirror rules.CanTrigger exactly.
type PoolIndex struct {
	pool []*rules.Rule

	trigDirect map[condKey][]*rules.Rule // rules triggered by exactly this state
	trigEnv    map[envKey][]*rules.Rule  // rules triggered by this env push
	actDirect  map[condKey][]*rules.Rule // rules performing exactly this state change
	actEnv     map[envKey][]*rules.Rule  // rules whose actions push this env
}

// NewPoolIndex indexes pool.
func NewPoolIndex(pool []*rules.Rule) *PoolIndex {
	ix := &PoolIndex{
		pool:       pool,
		trigDirect: map[condKey][]*rules.Rule{},
		trigEnv:    map[envKey][]*rules.Rule{},
		actDirect:  map[condKey][]*rules.Rule{},
		actEnv:     map[envKey][]*rules.Rule{},
	}
	for _, r := range pool {
		t := r.Trigger
		ix.trigDirect[condKey{t.Device, t.Room, t.Channel, t.State}] =
			append(ix.trigDirect[condKey{t.Device, t.Room, t.Channel, t.State}], r)
		if s := rules.StateSign(t.State); s != 0 {
			k := envKey{t.Channel, s, t.Room}
			ix.trigEnv[k] = append(ix.trigEnv[k], r)
		}
		for _, a := range r.Actions {
			k := condKey{a.Device, a.Room, a.Channel, a.State}
			ix.actDirect[k] = append(ix.actDirect[k], r)
			for _, d := range a.Env {
				ek := envKey{d.Channel, d.Sign, a.Room}
				ix.actEnv[ek] = append(ix.actEnv[ek], r)
			}
		}
	}
	return ix
}

// Forward returns the pool rules that anchor's actions can trigger.
func (ix *PoolIndex) Forward(anchor *rules.Rule) []*rules.Rule {
	var out []*rules.Rule
	seen := map[*rules.Rule]bool{anchor: true}
	add := func(rs []*rules.Rule) {
		for _, r := range rs {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	for _, a := range anchor.Actions {
		add(ix.trigDirect[condKey{a.Device, a.Room, a.Channel, a.State}])
		for _, d := range a.Env {
			add(ix.trigEnv[envKey{d.Channel, d.Sign, a.Room}])
		}
	}
	return out
}

// Backward returns the pool rules whose actions can trigger anchor.
func (ix *PoolIndex) Backward(anchor *rules.Rule) []*rules.Rule {
	var out []*rules.Rule
	seen := map[*rules.Rule]bool{anchor: true}
	add := func(rs []*rules.Rule) {
		for _, r := range rs {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	t := anchor.Trigger
	add(ix.actDirect[condKey{t.Device, t.Room, t.Channel, t.State}])
	if s := rules.StateSign(t.State); s != 0 {
		add(ix.actEnv[envKey{t.Channel, s, t.Room}])
	}
	return out
}

// Neighbors returns forward and backward partners combined.
func (ix *PoolIndex) Neighbors(anchor *rules.Rule) []*rules.Rule {
	f := ix.Forward(anchor)
	b := ix.Backward(anchor)
	seen := map[*rules.Rule]bool{}
	var out []*rules.Rule
	for _, r := range append(f, b...) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
