// Package fedproto implements a real wire protocol for FexIoT federated
// training: clients connect to a server over TCP, exchange gob-encoded
// layer payloads, and the server runs the same layer-wise clustering
// aggregation as the in-process simulator. The communication costs of
// Fig. 7 can therefore be measured on actual serialized bytes rather than
// estimated parameter counts.
package fedproto

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/mat"
	"fexiot/internal/obs"
)

// MsgKind tags protocol messages.
type MsgKind int

// Protocol message kinds.
const (
	MsgHello  MsgKind = iota // client → server: join with dataset size
	MsgUpdate                // client → server: layer payloads after local training
	MsgModel                 // server → client: aggregated layer payloads
	MsgDone                  // server → client: training finished
)

// LayerPayload carries one layer's parameters on the wire.
type LayerPayload struct {
	Layer  int
	Names  []string
	Shapes [][2]int
	Data   [][]float64
	// UpdateNorm is ‖ΔW_l‖ of the client's last local round, used by the
	// server's clustering gate without shipping the previous weights.
	UpdateNorm float64
}

// Message is the single wire envelope.
type Message struct {
	Kind     MsgKind
	ClientID int
	DataSize int // |G_c| for FedAvg weighting (MsgHello)
	Round    int
	Final    bool           // set on the last MsgModel of a session
	Layers   []LayerPayload // MsgUpdate / MsgModel
}

// EncodeLayers extracts the given layers of a ParamSet into payloads.
func EncodeLayers(p *autodiff.ParamSet, layers []int, updates map[int]float64) []LayerPayload {
	var out []LayerPayload
	for _, l := range layers {
		pl := LayerPayload{Layer: l, UpdateNorm: updates[l]}
		for _, name := range p.LayerNames(l) {
			m := p.Get(name)
			r, c := m.Dims()
			pl.Names = append(pl.Names, name)
			pl.Shapes = append(pl.Shapes, [2]int{r, c})
			pl.Data = append(pl.Data, append([]float64(nil), m.Data()...))
		}
		out = append(out, pl)
	}
	return out
}

// ApplyLayers writes payloads back into a ParamSet.
func ApplyLayers(p *autodiff.ParamSet, layers []LayerPayload) error {
	for _, pl := range layers {
		for i, name := range pl.Names {
			m := p.Get(name)
			r, c := m.Dims()
			if pl.Shapes[i] != [2]int{r, c} {
				return fmt.Errorf("fedproto: %s shape %v want %dx%d",
					name, pl.Shapes[i], r, c)
			}
			copy(m.Data(), pl.Data[i])
		}
	}
	return nil
}

// countingConn wraps a connection and tallies transferred bytes, mirroring
// each tally into the (possibly nil) observability counters installed by
// Conn.Instrument.
type countingConn struct {
	net.Conn
	read, written *int64
	mu            *sync.Mutex
	pc            *Conn
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	*c.read += int64(n)
	in := c.pc.obsIn
	c.mu.Unlock()
	in.Add(int64(n)) // nil-safe
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	*c.written += int64(n)
	out := c.pc.obsOut
	c.mu.Unlock()
	out.Add(int64(n)) // nil-safe
	return n, err
}

// Conn is a counted, gob-framed protocol connection.
type Conn struct {
	enc *gob.Encoder
	dec *gob.Decoder
	raw net.Conn

	sendMu sync.Mutex // serialises Send: gob encoders are not goroutine-safe

	mu                sync.Mutex
	inBytes, outBytes int64
	opDeadline        time.Duration
	obsIn, obsOut     *obs.Counter
}

// Wrap builds a protocol connection over a raw socket.
func Wrap(c net.Conn) *Conn {
	pc := &Conn{raw: c}
	counted := countingConn{Conn: c, read: &pc.inBytes, written: &pc.outBytes, mu: &pc.mu, pc: pc}
	pc.enc = gob.NewEncoder(counted)
	pc.dec = gob.NewDecoder(counted)
	return pc
}

// Instrument mirrors this connection's byte tallies into observability
// counters (either may be nil). The server installs its bytes_received /
// bytes_sent counters here at admission so per-connection accounting and
// the scrapeable totals stay in lockstep.
func (c *Conn) Instrument(in, out *obs.Counter) {
	c.mu.Lock()
	c.obsIn, c.obsOut = in, out
	c.mu.Unlock()
}

// Send writes one message.
func (c *Conn) Send(m *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if d := c.OpDeadline(); d > 0 {
		c.raw.SetWriteDeadline(time.Now().Add(d))
	}
	return c.enc.Encode(m)
}

// Recv reads one message.
func (c *Conn) Recv() (*Message, error) {
	if d := c.OpDeadline(); d > 0 {
		c.raw.SetReadDeadline(time.Now().Add(d))
	}
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	return &m, nil
}

// SetOpDeadline makes every subsequent Send and Recv arm a fresh deadline
// of d on the socket (zero disables). Client sessions use it so a server
// that silently evicts them cannot park them in Recv forever.
func (c *Conn) SetOpDeadline(d time.Duration) {
	c.mu.Lock()
	c.opDeadline = d
	c.mu.Unlock()
}

// OpDeadline reports the per-operation deadline installed by SetOpDeadline.
func (c *Conn) OpDeadline() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opDeadline
}

// Close closes the underlying socket.
func (c *Conn) Close() error { return c.raw.Close() }

// SetReadDeadline bounds the next Recv; a zero time clears the deadline.
// A Recv past the deadline fails with a net timeout error.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline bounds the next Send; a zero time clears the deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// Bytes reports (received, sent) byte counts.
func (c *Conn) Bytes() (in, out int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inBytes, c.outBytes
}

// ValidateUpdate checks that a remote MsgUpdate is well-formed before any
// payload is indexed: the right kind, exactly one payload per model layer
// in ascending layer-id order, and internally consistent
// names/shapes/data. Remote input that fails any check is rejected with an
// error wrapping ErrMalformedUpdate — a short, shuffled or padded update
// must never panic the server.
func ValidateUpdate(m *Message, numLayers int) error {
	if m.Kind != MsgUpdate {
		return fmt.Errorf("%w: message kind %d, want MsgUpdate", ErrMalformedUpdate, m.Kind)
	}
	if len(m.Layers) != numLayers {
		return fmt.Errorf("%w: %d layer payloads, want %d", ErrMalformedUpdate, len(m.Layers), numLayers)
	}
	for l, pl := range m.Layers {
		if pl.Layer != l {
			return fmt.Errorf("%w: payload %d carries layer id %d", ErrMalformedUpdate, l, pl.Layer)
		}
		if len(pl.Names) != len(pl.Shapes) || len(pl.Names) != len(pl.Data) {
			return fmt.Errorf("%w: layer %d has %d names, %d shapes, %d tensors",
				ErrMalformedUpdate, l, len(pl.Names), len(pl.Shapes), len(pl.Data))
		}
		for i, sh := range pl.Shapes {
			if sh[0] < 0 || sh[1] < 0 || len(pl.Data[i]) != sh[0]*sh[1] {
				return fmt.Errorf("%w: layer %d tensor %q has %d values, want %dx%d",
					ErrMalformedUpdate, l, pl.Names[i], len(pl.Data[i]), sh[0], sh[1])
			}
		}
	}
	return nil
}

// CheckFiniteUpdate rejects updates carrying NaN or ±Inf weights with an
// error wrapping ErrNonFiniteUpdate. It runs after ValidateUpdate on every
// remote update — one diverged client must never reach the aggregator,
// where a single non-finite coordinate poisons the global model. The scan
// is mat.CheckFinite per tensor plus the reported update norm.
func CheckFiniteUpdate(m *Message) error {
	for l, pl := range m.Layers {
		if !mat.AllFinite([]float64{pl.UpdateNorm}) {
			return fmt.Errorf("%w: layer %d update norm is %v", ErrNonFiniteUpdate, l, pl.UpdateNorm)
		}
		for i, d := range pl.Data {
			if j := mat.CheckFinite(d); j >= 0 {
				return fmt.Errorf("%w: layer %d tensor %q element %d is %v",
					ErrNonFiniteUpdate, l, pl.Names[i], j, d[j])
			}
		}
	}
	return nil
}

// LayerNorms computes per-layer update norms between two snapshots.
func LayerNorms(before, after *autodiff.ParamSet) map[int]float64 {
	out := map[int]float64{}
	diff := after.Sub(before)
	for l := 0; l < after.NumLayers(); l++ {
		out[l] = mat.Norm2(diff.FlattenLayer(l))
	}
	return out
}
