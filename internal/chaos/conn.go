package chaos

import (
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn with scriptable link-fault injection for chaos
// tests, soak harnesses and the chaos experiment. Three failure modes,
// composable and switchable mid-stream:
//
//   - SetDelay(d): every Read and Write sleeps d first — a slow link that
//     pushes a client past the server's round deadline.
//   - DropAfter(n): after n more written bytes, writes are silently
//     swallowed (reported as successful, never sent) — a half-open
//     connection the peer can only detect by deadline.
//   - Kill(): hard-closes the underlying socket mid-stream — a crashed
//     client or yanked cable; the peer sees EOF/reset.
//
// The zero state injects nothing and passes all traffic through.
type Conn struct {
	inner net.Conn

	mu        sync.Mutex
	delay     time.Duration
	dropAfter int64 // remaining write budget; -1 = unlimited
	killed    bool
}

// NewConn wraps an established connection with no faults armed.
func NewConn(c net.Conn) *Conn {
	return &Conn{inner: c, dropAfter: -1}
}

// SetDelay makes every subsequent Read and Write sleep d before touching
// the socket (zero disables).
func (f *Conn) SetDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// DropAfter lets n more bytes through and then silently swallows every
// write; n = 0 blackholes immediately. A negative n disarms the fault.
func (f *Conn) DropAfter(n int64) {
	f.mu.Lock()
	f.dropAfter = n
	f.mu.Unlock()
}

// Kill hard-closes the underlying socket, dropping any in-flight message
// mid-stream.
func (f *Conn) Kill() error {
	f.mu.Lock()
	f.killed = true
	f.mu.Unlock()
	return f.inner.Close()
}

// Killed reports whether Kill was called.
func (f *Conn) Killed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

func (f *Conn) sleep() {
	f.mu.Lock()
	d := f.delay
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// Read delays, then passes through.
func (f *Conn) Read(p []byte) (int, error) {
	f.sleep()
	return f.inner.Read(p)
}

// Write delays, forwards at most the remaining write budget, and reports
// the full length as written so the sender keeps believing the link is
// healthy.
func (f *Conn) Write(p []byte) (int, error) {
	f.sleep()
	f.mu.Lock()
	budget := f.dropAfter
	f.mu.Unlock()
	allowed := len(p)
	if budget >= 0 && int64(allowed) > budget {
		allowed = int(budget)
	}
	if allowed > 0 {
		n, err := f.inner.Write(p[:allowed])
		f.mu.Lock()
		if f.dropAfter >= 0 {
			f.dropAfter -= int64(n)
		}
		f.mu.Unlock()
		if err != nil {
			return n, err
		}
	}
	return len(p), nil
}

// Close closes the underlying socket.
func (f *Conn) Close() error { return f.inner.Close() }

// LocalAddr reports the underlying local address.
func (f *Conn) LocalAddr() net.Addr { return f.inner.LocalAddr() }

// RemoteAddr reports the underlying remote address.
func (f *Conn) RemoteAddr() net.Addr { return f.inner.RemoteAddr() }

// SetDeadline delegates to the underlying socket.
func (f *Conn) SetDeadline(t time.Time) error { return f.inner.SetDeadline(t) }

// SetReadDeadline delegates to the underlying socket.
func (f *Conn) SetReadDeadline(t time.Time) error { return f.inner.SetReadDeadline(t) }

// SetWriteDeadline delegates to the underlying socket.
func (f *Conn) SetWriteDeadline(t time.Time) error { return f.inner.SetWriteDeadline(t) }
