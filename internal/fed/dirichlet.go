package fed

import (
	"fexiot/internal/graph"
	"fexiot/internal/rng"
)

// DirichletSplit partitions graphs across n clients following the paper's
// non-i.i.d. protocol: for each data class, per-client proportions are
// drawn from Dirichlet(α,…,α) and the class's samples are dealt out
// accordingly. Small α concentrates each class on few clients (highly
// non-i.i.d.); large α approaches a uniform split. classOf assigns each
// graph to a class (the evaluation uses label × source-archetype classes so
// both label skew and distribution skew arise).
func DirichletSplit(graphs []*graph.Graph, n int, alpha float64,
	classOf func(*graph.Graph) int, seed int64) [][]*graph.Graph {
	if n <= 0 {
		panic("fed: DirichletSplit needs n > 0")
	}
	r := rng.New(seed)
	byClass := map[int][]*graph.Graph{}
	for _, g := range graphs {
		k := classOf(g)
		byClass[k] = append(byClass[k], g)
	}
	out := make([][]*graph.Graph, n)
	// Deterministic class order.
	var classes []int
	for k := range byClass {
		classes = append(classes, k)
	}
	sortInts(classes)
	for _, k := range classes {
		members := byClass[k]
		props := r.Dirichlet(n, alpha)
		// Shuffle members, then deal by cumulative proportion.
		r.Shuffle(len(members), func(i, j int) {
			members[i], members[j] = members[j], members[i]
		})
		start := 0
		cum := 0.0
		for c := 0; c < n; c++ {
			cum += props[c]
			end := int(cum*float64(len(members)) + 0.5)
			if c == n-1 {
				end = len(members)
			}
			if end > len(members) {
				end = len(members)
			}
			if end > start {
				out[c] = append(out[c], members[start:end]...)
			}
			start = end
		}
	}
	// Every client needs at least a couple of graphs to train at all.
	donateTo(out, r)
	// Classes were dealt sequentially; shuffle within each client so local
	// train/test splits are class-representative.
	for c := range out {
		members := out[c]
		r.Shuffle(len(members), func(i, j int) {
			members[i], members[j] = members[j], members[i]
		})
	}
	return out
}

// donateTo tops up empty or near-empty clients from the largest ones.
func donateTo(out [][]*graph.Graph, r *rng.RNG) {
	const minGraphs = 4
	for c := range out {
		for len(out[c]) < minGraphs {
			// Find the largest client.
			big := 0
			for i := range out {
				if len(out[i]) > len(out[big]) {
					big = i
				}
			}
			if len(out[big]) <= minGraphs {
				return // nothing left to donate
			}
			last := len(out[big]) - 1
			out[c] = append(out[c], out[big][last])
			out[big] = out[big][:last]
		}
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// LabelArchetypeClass builds a classOf function keyed on (label, archetype
// tag) pairs. Graph IDs carry no archetype, so the class derives from the
// rules' ID prefixes assigned by the multi-home pool generator; graphs
// whose rules come from unknown sources fall back to label-only classes.
func LabelArchetypeClass(numArchetypes int) func(*graph.Graph) int {
	return func(g *graph.Graph) int {
		label := 0
		if g.Label {
			label = 1
		}
		arch := 0
		if g.N() > 0 && g.Nodes[0].Rule != nil {
			arch = homeArchetype(g.Nodes[0].Rule.ID, numArchetypes)
		}
		return label*numArchetypes + arch
	}
}

// homeArchetype recovers the archetype index from a rule id of the form
// "h<home>-<n>" produced by fusion.MultiHomePool (homes cycle through the
// archetypes).
func homeArchetype(id string, numArchetypes int) int {
	if len(id) < 2 || id[0] != 'h' {
		return 0
	}
	n := 0
	for i := 1; i < len(id) && id[i] >= '0' && id[i] <= '9'; i++ {
		n = n*10 + int(id[i]-'0')
	}
	return n % numArchetypes
}
