package fexiot_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"fexiot"
)

// getStatus fetches a probe endpoint and returns status code + parsed body.
func getStatus(t *testing.T, url string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := map[string]string{}
	json.Unmarshal(raw, &body)
	return resp.StatusCode, body
}

// TestServeHealthAndReadiness is the readiness acceptance e2e: on an
// untrained system /healthz is 200 (the process is fine) while /readyz is
// 503 (no snapshot to serve), and /readyz flips to 200 exactly when the
// first training publishes a snapshot.
func TestServeHealthAndReadiness(t *testing.T) {
	sys, train := smallSystem(t, 17)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := fexiot.Serve(ctx, sys, fexiot.ServeOptions{
		Addr:           "127.0.0.1:0",
		Workers:        2,
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, _ := getStatus(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("untrained /healthz = %d, want 200 (liveness is not readiness)", code)
	}
	code, body := getStatus(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("untrained /readyz = %d, want 503", code)
	}
	if body["check"] != "snapshot" {
		t.Fatalf("untrained /readyz blamed %q, want the snapshot probe (%v)", body["check"], body)
	}

	// First training publishes the first snapshot; readiness must flip.
	sys.TrainCentral(train, 1, 40)
	if code, body := getStatus(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("trained /readyz = %d (%v), want 200", code, body)
	}
	if code, _ := getStatus(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("trained /healthz = %d, want 200", code)
	}
}

// TestServeStaleSnapshotUnready: with MaxSnapshotAge set, a snapshot that
// outlives the bound flips /readyz back to 503 — a server whose
// republisher died stops advertising itself.
func TestServeStaleSnapshotUnready(t *testing.T) {
	sys, train := smallSystem(t, 19)
	sys.TrainCentral(train, 1, 40)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := fexiot.Serve(ctx, sys, fexiot.ServeOptions{
		Addr:           "127.0.0.1:0",
		Workers:        1,
		MaxSnapshotAge: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Republish so the snapshot is fresh relative to the bound, then let it
	// age past it.
	sys.TrainCentral(train, 1, 20)
	if code, body := getStatus(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("fresh /readyz = %d (%v), want 200", code, body)
	}
	time.Sleep(1300 * time.Millisecond)
	code, body := getStatus(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("stale /readyz = %d (%v), want 503", code, body)
	}
}
