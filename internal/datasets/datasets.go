// Package datasets assembles the evaluation corpora of Table I: the
// homogeneous IFTTT graph dataset (6,000 labelled of which 1,473
// vulnerable, plus 10,000 unlabelled) and the heterogeneous five-platform
// dataset (12,758 labelled of which 3,828 vulnerable, plus 19,440
// unlabelled), along with the 600 online testbed graphs of Table II. Scale
// is configurable: the CI scale shrinks counts proportionally so the whole
// evaluation runs on a laptop, while FEXIOT_SCALE=paper reproduces the
// paper's exact counts.
package datasets

import (
	"os"

	"fexiot/internal/embed"
	"fexiot/internal/eventlog"
	"fexiot/internal/fusion"
	"fexiot/internal/graph"
	"fexiot/internal/rng"
	"fexiot/internal/rules"
)

// Scale selects dataset sizing.
type Scale struct {
	Name string
	// Labelled/unlabelled graph counts and vulnerable quotas per dataset.
	IFTTTLabeled     int
	IFTTTVulnerable  int
	IFTTTUnlabeled   int
	HeteroLabeled    int
	HeteroVulnerable int
	HeteroUnlabeled  int
	OnlineGraphs     int // Table II testbed graphs (half vulnerable)

	// Corpus/encoder sizing.
	Homes        int
	RulesPerHome int
	WordDim      int
	SentenceDim  int
}

// PaperScale reproduces Table I exactly.
func PaperScale() Scale {
	return Scale{
		Name:             "paper",
		IFTTTLabeled:     6000,
		IFTTTVulnerable:  1473,
		IFTTTUnlabeled:   10000,
		HeteroLabeled:    12758,
		HeteroVulnerable: 3828,
		HeteroUnlabeled:  19440,
		OnlineGraphs:     600,
		Homes:            400,
		RulesPerHome:     30,
		WordDim:          embed.PaperWordDim,
		SentenceDim:      embed.PaperSentenceDim,
	}
}

// CIScale shrinks the corpus ~8× and the embedding dims so the full
// pipeline runs in seconds; the labelled/vulnerable ratios of Table I are
// preserved.
func CIScale() Scale {
	return Scale{
		Name:             "ci",
		IFTTTLabeled:     750,
		IFTTTVulnerable:  184, // 1473/6000 of 750
		IFTTTUnlabeled:   1250,
		HeteroLabeled:    1600,
		HeteroVulnerable: 480, // 3828/12758 of 1600
		HeteroUnlabeled:  2430,
		OnlineGraphs:     120,
		Homes:            150,
		RulesPerHome:     25,
		WordDim:          48,
		SentenceDim:      64,
	}
}

// Active returns the scale selected by the FEXIOT_SCALE environment
// variable ("paper" or anything else → CI).
func Active() Scale {
	if os.Getenv("FEXIOT_SCALE") == "paper" {
		return PaperScale()
	}
	return CIScale()
}

// Dataset is one assembled corpus.
type Dataset struct {
	Name      string
	Labeled   []*graph.Graph
	Unlabeled []*graph.Graph
	Encoder   *embed.Encoder
	Pool      []*rules.Rule
}

// Vulnerable counts labelled vulnerable graphs.
func (d *Dataset) Vulnerable() int {
	n := 0
	for _, g := range d.Labeled {
		if g.Label {
			n++
		}
	}
	return n
}

// NodeRange returns the min and max node counts across all graphs.
func (d *Dataset) NodeRange() (min, max int) {
	min, max = 1<<30, 0
	for _, g := range append(append([]*graph.Graph{}, d.Labeled...), d.Unlabeled...) {
		if g.N() < min {
			min = g.N()
		}
		if g.N() > max {
			max = g.N()
		}
	}
	if min > max {
		min = 0
	}
	return
}

// BuildIFTTT assembles the homogeneous IFTTT dataset: every rule is an
// IFTTT applet, node features are word-space only.
func BuildIFTTT(sc Scale, seed int64) *Dataset {
	enc := embed.NewEncoder(sc.WordDim, sc.SentenceDim)
	p := rules.IFTTT
	pool := fusion.MultiHomePool(seed, sc.Homes, sc.RulesPerHome, &p)
	d := &Dataset{Name: "IFTTT", Encoder: enc, Pool: pool}
	b := fusion.NewBuilder(seed+1, enc)
	b.InjectPlatforms = []rules.Platform{rules.IFTTT}
	d.Labeled = sampleWithQuota(b, pool, sc.IFTTTLabeled, sc.IFTTTVulnerable)
	d.Unlabeled = sampleAny(b, pool, sc.IFTTTUnlabeled)
	return d
}

// BuildHetero assembles the heterogeneous five-platform dataset.
func BuildHetero(sc Scale, seed int64) *Dataset {
	enc := embed.NewEncoder(sc.WordDim, sc.SentenceDim)
	pool := fusion.MultiHomePool(seed, sc.Homes, sc.RulesPerHome, nil)
	d := &Dataset{Name: "Hetero", Encoder: enc, Pool: pool}
	b := fusion.NewBuilder(seed+1, enc)
	d.Labeled = sampleWithQuota(b, pool, sc.HeteroLabeled, sc.HeteroVulnerable)
	d.Unlabeled = sampleAny(b, pool, sc.HeteroUnlabeled)
	return d
}

// sampleWithQuota draws graphs until the labelled corpus holds exactly
// `total` graphs with `vulnerable` positives — the Table I class balance.
func sampleWithQuota(b *fusion.Builder, pool []*rules.Rule, total, vulnerable int) []*graph.Graph {
	benignQuota := total - vulnerable
	var out []*graph.Graph
	vuln, benign := 0, 0
	guard := 0
	for (vuln < vulnerable || benign < benignQuota) && guard < total*60 {
		guard++
		g := b.OfflineSized(pool)
		if g.Label && vuln < vulnerable {
			out = append(out, g)
			vuln++
		} else if !g.Label && benign < benignQuota {
			out = append(out, g)
			benign++
		}
	}
	return out
}

// sampleAny draws graphs without quota (the unlabelled corpora).
func sampleAny(b *fusion.Builder, pool []*rules.Rule, total int) []*graph.Graph {
	out := make([]*graph.Graph, total)
	for i := range out {
		out[i] = b.OfflineSized(pool)
	}
	return out
}

// Shuffled returns a deterministic permutation of the labelled graphs.
func (d *Dataset) Shuffled(seed int64) []*graph.Graph {
	out := append([]*graph.Graph(nil), d.Labeled...)
	rng.New(seed).Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TestbedHome describes one simulated deployment for the Table II testbed:
// its deployed rules and the simulated event-log duration.
type TestbedHome struct {
	Deployed []*rules.Rule
	Steps    int64
}

// BuildOnlineSamples produces the Table II online graphs following the
// paper's testbed: ONE volunteer deployment ("a volunteer deploys the
// off-the-shelf smart devices in a house"), simulated over many independent
// time windows; half the windows are compromised by attacks cycling through
// the five HAWatcher classes, giving the paper's 300/600 vulnerable split.
func BuildOnlineSamples(sc Scale, seed int64) ([]*fusion.OnlineSample, *embed.Encoder) {
	samples, enc, _ := BuildTestbed(sc, seed)
	return samples, enc
}

// TestbedWindows simulates n additional windows of an existing deployment
// (half attacked), used as training material disjoint from the test
// windows.
func TestbedWindows(sc Scale, deployed []*rules.Rule, enc *embed.Encoder,
	seed int64, n int) []*fusion.OnlineSample {
	b := fusion.NewBuilder(seed+1, enc)
	r := rng.New(seed + 3)
	var out []*fusion.OnlineSample
	for i := 0; i < n; i++ {
		sim := eventlog.NewSimulator(deployed, seed+int64(i)*29)
		log := eventlog.Clean(sim.Run(1500))
		sample := &fusion.OnlineSample{Log: log}
		if i%2 == 1 {
			attack := eventlog.Attack(i % int(eventlog.NumAttacks))
			sample.Attacked = true
			sample.Attack = attack
			sample.Log = eventlog.Inject(log, attack, deployed, 0.2+0.2*r.Float64(), seed+int64(i))
		}
		sample.Graph = b.BuildOnline(deployed, sample.Log)
		out = append(out, sample)
	}
	return out
}

// BuildTestbed is BuildOnlineSamples plus the testbed deployment itself.
func BuildTestbed(sc Scale, seed int64) ([]*fusion.OnlineSample, *embed.Encoder, []*rules.Rule) {
	enc := embed.NewEncoder(sc.WordDim, sc.SentenceDim)
	b := fusion.NewBuilder(seed+11, enc)
	r := rng.New(seed + 13)

	// Pick a deployment whose full offline interaction graph is benign, so
	// window labels are purely "was this window attacked" — the paper's
	// 300 vulnerable graphs come from the simulated attacks.
	var deployed []*rules.Rule
	for trial := int64(0); ; trial++ {
		gen := rules.NewGenerator(seed+trial*31, rules.Archetypes()[4], "t")
		cand := gen.RuleSet(16)
		g := b.Offline(cand, len(cand))
		if !g.Label || trial > 60 {
			deployed = cand
			break
		}
	}

	var out []*fusion.OnlineSample
	for i := 0; i < sc.OnlineGraphs; i++ {
		sim := eventlog.NewSimulator(deployed, seed+int64(i)*17)
		log := eventlog.Clean(sim.Run(1500))
		sample := &fusion.OnlineSample{Log: log}
		if i%2 == 1 {
			attack := eventlog.Attack(i % int(eventlog.NumAttacks))
			sample.Attacked = true
			sample.Attack = attack
			sample.Log = eventlog.Inject(log, attack, deployed, 0.2+0.2*r.Float64(), seed+int64(i))
		}
		sample.Graph = b.BuildOnline(deployed, sample.Log)
		out = append(out, sample)
	}
	return out, enc, deployed
}
