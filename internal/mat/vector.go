package mat

import (
	"fmt"
	"math"
	"sort"
)

// Vector helpers operate on plain []float64 slices; a heavier Vector type is
// unnecessary for the workloads in this repository.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy performs dst += s*src element-wise.
func Axpy(dst, src []float64, s float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mat: Axpy lengths %d and %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += s * v
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dist2 lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between a and b, or 0 if
// either vector is zero.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation of v.
func Std(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Median returns the median of v without modifying it.
func Median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-th quantile (0≤q≤1) of v using linear interpolation,
// matching the convention used by box plots (Fig. 5 in the paper).
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ArgMax returns the index of the largest element, or -1 for an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	idx := 0
	mx := v[0]
	for i, x := range v {
		if x > mx {
			mx, idx = x, i
		}
	}
	return idx
}

// ArgMin returns the index of the smallest element, or -1 for an empty slice.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	idx := 0
	mn := v[0]
	for i, x := range v {
		if x < mn {
			mn, idx = x, i
		}
	}
	return idx
}

// Softmax writes the softmax of v into a new slice.
func Softmax(v []float64) []float64 {
	out := make([]float64, len(v))
	if len(v) == 0 {
		return out
	}
	mx := v[ArgMax(v)]
	var z float64
	for i, x := range v {
		e := math.Exp(x - mx)
		out[i] = e
		z += e
	}
	for i := range out {
		out[i] /= z
	}
	return out
}

// SoftmaxTo writes the softmax of src into dst (same length), using the
// exact same max-shifted exponentiation as Softmax so results are
// bit-identical; it exists so hot loops can reuse a caller-owned buffer.
// dst and src may alias.
func SoftmaxTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mat: SoftmaxTo lengths %d and %d", len(dst), len(src)))
	}
	if len(src) == 0 {
		return
	}
	mx := src[ArgMax(src)]
	var z float64
	for i, x := range src {
		e := math.Exp(x - mx)
		dst[i] = e
		z += e
	}
	for i := range dst {
		dst[i] /= z
	}
}

// Sigmoid returns the logistic function value for x.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// CheckFinite returns the index of the first NaN or ±Inf element of v, or
// -1 when every element is finite. The scan uses the identity x−x ≠ 0 ⇔ x
// is non-finite (NaN−NaN = NaN, Inf−Inf = NaN), which keeps the loop free
// of math.IsNaN/IsInf calls and branch-predictable on the clean path — it
// runs on every remote update the federation server accepts.
func CheckFinite(v []float64) int {
	for i, x := range v {
		if x-x != 0 {
			return i
		}
	}
	return -1
}

// AllFinite reports whether every element of v is finite.
func AllFinite(v []float64) bool { return CheckFinite(v) < 0 }

// Clamp restricts x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
