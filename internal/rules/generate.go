package rules

import (
	"fmt"

	"fexiot/internal/rng"
)

// Archetype is a household profile: which devices a home favours and which
// platforms it automates with. Archetypes are the source of the inter-client
// heterogeneity the paper's clustered federated learning exploits — clients
// drawn from the same archetype have approximately i.i.d. rule
// distributions, clients from different archetypes do not (§III-B2).
type Archetype struct {
	Name            string
	DeviceWeights   map[string]float64
	PlatformWeights []float64 // indexed by Platform
	MultiActionProb float64   // chance a rule has two actions
}

// Archetypes returns the built-in household profiles.
func Archetypes() []Archetype {
	return []Archetype{
		{
			Name: "security",
			DeviceWeights: map[string]float64{
				"lock": 4, "door": 4, "camera": 4, "alarm": 3, "doorbell": 3,
				"motion sensor": 4, "contact sensor": 3, "window": 2,
				"garage door": 2, "presence sensor": 3, "light": 2,
				"phone": 4, "spreadsheet": 2, "email": 2,
			},
			PlatformWeights: []float64{3, 1, 3, 1, 2},
			MultiActionProb: 0.35,
		},
		{
			Name: "climate",
			DeviceWeights: map[string]float64{
				"thermostat": 4, "heater": 4, "air conditioner": 4, "fan": 3,
				"humidifier": 3, "dehumidifier": 2, "window": 3,
				"temperature sensor": 4, "humidity sensor": 3, "blind": 2,
				"phone": 3, "weather station": 3, "spreadsheet": 2,
			},
			PlatformWeights: []float64{2, 4, 2, 1, 1},
			MultiActionProb: 0.25,
		},
		{
			Name: "energy",
			DeviceWeights: map[string]float64{
				"plug": 4, "switch": 4, "light": 3, "washer": 2,
				"coffee maker": 2, "tv": 2, "presence sensor": 3,
				"illuminance sensor": 2, "thermostat": 2,
				"spreadsheet": 4, "phone": 3, "email": 2,
			},
			PlatformWeights: []float64{2, 2, 4, 1, 1},
			MultiActionProb: 0.2,
		},
		{
			Name: "entertainment",
			DeviceWeights: map[string]float64{
				"speaker": 4, "tv": 4, "light": 4, "blind": 2, "plug": 2,
				"motion sensor": 2, "button": 3, "vacuum": 2,
				"phone": 3, "calendar": 3,
			},
			PlatformWeights: []float64{1, 1, 2, 4, 4},
			MultiActionProb: 0.3,
		},
		{
			Name: "safety",
			DeviceWeights: map[string]float64{
				"smoke detector": 4, "co detector": 3, "leak sensor": 4,
				"water valve": 4, "sprinkler": 2, "alarm": 3, "fan": 2,
				"door": 2, "window": 2, "camera": 2,
				"phone": 4, "email": 3, "weather station": 2,
			},
			PlatformWeights: []float64{4, 2, 2, 1, 1},
			MultiActionProb: 0.4,
		},
	}
}

// Rooms a home may have; each generated home uses a subset. The qualified
// variants keep device instances distinct across the large multi-home rule
// pools the dataset builder chains over, mirroring the diversity of the
// 316k-applet IFTTT corpus.
var allRooms = []string{"kitchen", "bedroom", "bathroom", "hallway",
	"garage", "living room", "basement", "office", "master bedroom",
	"guest bedroom", "upstairs hallway", "laundry room", "dining room",
	"pantry", "study", "attic", "porch", "back yard", "nursery", "balcony",
	"closet", "den", "sunroom", "entryway"}

// globalChannels are channels whose conditions are home-global rather than
// room-scoped.
var globalChannels = map[Channel]bool{
	ChanTime: true, ChanVoice: true, ChanPresence: true, ChanWeather: true,
}

// instance is one physically installed device: a kind placed in a room.
type instance struct {
	dev  *Device
	room string
}

// Generator samples rules for one home. At construction it lays out the
// home's device inventory (device kinds placed in rooms); rules then
// reference those concrete instances, so multiple rules genuinely interact
// through shared devices — the substrate of interaction graphs.
type Generator struct {
	r         *rng.RNG
	arch      Archetype
	catalog   []Device
	rooms     []string
	sensors   []instance
	actuators []instance
	nextID    int
	prefix    string
}

// NewGenerator creates a rule generator for the given archetype; the seed
// fully determines its output.
func NewGenerator(seed int64, arch Archetype, idPrefix string) *Generator {
	g := &Generator{
		r:       rng.New(seed),
		arch:    arch,
		catalog: Catalog(),
		prefix:  idPrefix,
	}
	// Pick 5–9 rooms for this home.
	roomPerm := g.r.Perm(len(allRooms))
	nRooms := g.r.IntRange(5, 9)
	for _, idx := range roomPerm[:nRooms] {
		g.rooms = append(g.rooms, allRooms[idx])
	}
	// Install devices: archetype-favoured kinds appear in more rooms.
	for i := range g.catalog {
		d := &g.catalog[i]
		w := g.deviceWeight(d.Name)
		copies := 0
		switch {
		case w >= 3:
			copies = g.r.IntRange(1, 2)
		case w >= 1:
			copies = g.r.IntRange(0, 1)
		default:
			if g.r.Bool(0.25) {
				copies = 1
			}
		}
		roomPerm := g.r.Perm(len(g.rooms))
		for c := 0; c < copies && c < len(g.rooms); c++ {
			inst := instance{dev: d, room: g.rooms[roomPerm[c]]}
			if d.SenseChannel == ChanPresence {
				inst.room = "" // presence is home-global
			}
			if d.IsSensor() {
				g.sensors = append(g.sensors, inst)
			}
			if d.IsActuator() {
				g.actuators = append(g.actuators, inst)
			}
		}
	}
	// Guarantee a minimal inventory.
	if len(g.sensors) == 0 {
		g.sensors = append(g.sensors, instance{dev: g.byName("motion sensor"), room: g.rooms[0]})
	}
	if len(g.actuators) == 0 {
		g.actuators = append(g.actuators, instance{dev: g.byName("light"), room: g.rooms[0]})
	}
	return g
}

func (g *Generator) byName(name string) *Device {
	for i := range g.catalog {
		if g.catalog[i].Name == name {
			return &g.catalog[i]
		}
	}
	panic(fmt.Sprintf("rules: unknown device %q", name))
}

func (g *Generator) deviceWeight(name string) float64 {
	if w, ok := g.arch.DeviceWeights[name]; ok {
		return w
	}
	return 0.3 // long tail: every home has a few off-profile devices
}

func (g *Generator) pickSensor() instance {
	w := make([]float64, len(g.sensors))
	for i, inst := range g.sensors {
		w[i] = g.deviceWeight(inst.dev.Name)
	}
	return g.sensors[g.r.PickWeighted(w)]
}

func (g *Generator) pickActuator() instance {
	w := make([]float64, len(g.actuators))
	for i, inst := range g.actuators {
		w[i] = g.deviceWeight(inst.dev.Name)
	}
	return g.actuators[g.r.PickWeighted(w)]
}

// pickPlatform samples a platform according to the archetype profile.
func (g *Generator) pickPlatform() Platform {
	return Platform(g.r.PickWeighted(g.arch.PlatformWeights))
}

var timeStates = []string{"sunset", "sunrise", "night", "morning"}

// sampleTrigger draws a trigger condition. Voice platforms mostly trigger
// on spoken commands; other platforms mix sensor triggers, device-state
// triggers and schedules.
func (g *Generator) sampleTrigger(p Platform) Condition {
	if p.VoicePlatform() && g.r.Bool(0.7) {
		phrases := []string{"good night", "good morning", "movie time",
			"i am leaving", "i am home", "party time", "bedtime"}
		return Condition{Device: "voice", Channel: ChanVoice,
			State: rng.Pick(g.r, phrases)}
	}
	roll := g.r.Float64()
	switch {
	case roll < 0.55: // sensor trigger
		inst := g.pickSensor()
		c := Condition{
			Device:  inst.dev.Name,
			Room:    inst.room,
			Channel: inst.dev.SenseChannel,
			State:   rng.Pick(g.r, inst.dev.SenseStates),
		}
		if globalChannels[c.Channel] {
			c.Room = ""
		}
		return c
	case roll < 0.85: // device-state trigger ("the kitchen lights are on")
		inst := g.pickActuator()
		cmd := rng.Pick(g.r, inst.dev.Commands)
		return Condition{Device: inst.dev.Name, Room: inst.room,
			Channel: cmd.Channel, State: cmd.State}
	default: // schedule trigger
		return Condition{Device: "clock", Channel: ChanTime,
			State: rng.Pick(g.r, timeStates)}
	}
}

// sampleAction draws one effect.
func (g *Generator) sampleAction() Effect {
	inst := g.pickActuator()
	cmd := rng.Pick(g.r, inst.dev.Commands)
	return Effect{
		Device:    inst.dev.Name,
		Room:      inst.room,
		Verb:      cmd.Verb,
		Channel:   cmd.Channel,
		State:     cmd.State,
		Env:       cmd.Env,
		Sensitive: cmd.Sensitive,
	}
}

// Rule samples one automation rule on a sampled platform.
func (g *Generator) Rule() *Rule {
	return g.RuleOn(g.pickPlatform())
}

// RuleOn samples one automation rule for platform p.
func (g *Generator) RuleOn(p Platform) *Rule {
	trig := g.sampleTrigger(p)
	actions := []Effect{g.sampleAction()}
	if g.r.Bool(g.arch.MultiActionProb) {
		second := g.sampleAction()
		if second.Device != actions[0].Device || second.Room != actions[0].Room {
			actions = append(actions, second)
		}
	}
	g.nextID++
	r := &Rule{
		ID:       fmt.Sprintf("%s%d", g.prefix, g.nextID),
		Platform: p,
		Trigger:  trig,
		Actions:  actions,
	}
	r.Description = Describe(p, trig, actions)
	return r
}

// RuleSet samples the n rules deployed in one home.
func (g *Generator) RuleSet(n int) []*Rule {
	out := make([]*Rule, n)
	for i := range out {
		out[i] = g.Rule()
	}
	return out
}

// RuleSetOn samples n rules restricted to platform p (used for the
// homogeneous IFTTT dataset).
func (g *Generator) RuleSetOn(p Platform, n int) []*Rule {
	out := make([]*Rule, n)
	for i := range out {
		out[i] = g.RuleOn(p)
	}
	return out
}

// Rooms returns the home's room list (copy).
func (g *Generator) Rooms() []string { return append([]string(nil), g.rooms...) }
