package fedproto

import (
	"testing"
)

// mkLayer builds a single-tensor layer payload around one weight vector.
func mkLayer(layer int, data []float64, norm float64) LayerPayload {
	return LayerPayload{Layer: layer, Names: []string{"w"},
		Shapes: [][2]int{{1, len(data)}}, Data: [][]float64{append([]float64(nil), data...)},
		UpdateNorm: norm}
}

// TestAggregateGateRegression pins the Eq. (3) clustering decision on
// crafted payload splits. It is the regression test for the dead
// weighted-mean accumulation bug: the gate now reads the FedAvg-weighted
// mean direction (through the dispersion term) instead of computing and
// discarding it.
func TestAggregateGateRegression(t *testing.T) {
	cfg := ServerConfig{NumLayers: 1, Eps1: 0.4, Eps2: 0.95}
	sizes := []int{10, 10, 10, 10}

	// Two camps pulling in opposite directions while every member still
	// moves: dispersion around the weighted mean is maximal, so the gate
	// must fire and the cluster must split camp-by-camp.
	diverging := [][]LayerPayload{
		{mkLayer(0, []float64{1, 0}, 1)},
		{mkLayer(0, []float64{0.9, 0.1}, 1)},
		{mkLayer(0, []float64{-1, 0}, 1)},
		{mkLayer(0, []float64{-0.9, -0.1}, 1)},
	}
	agg := newRoundAgg(cfg, nil, diverging, sizes)
	replies := agg.run()
	if len(agg.leaves) != 2 {
		t.Fatalf("diverging camps: %d leaf clusters, want 2 (%v)", len(agg.leaves), agg.leaves)
	}
	wantLeaves := [][]int{{0, 1}, {2, 3}}
	for k, want := range wantLeaves {
		got := agg.leaves[k]
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("leaf %d = %v, want %v", k, got, want)
		}
	}
	// Each camp averages only its own members.
	if got := replies[0][0].Data[0][0]; got != 0.95 {
		t.Fatalf("camp A mean = %v, want 0.95", got)
	}
	if got := replies[2][0].Data[0][0]; got != -0.95 {
		t.Fatalf("camp B mean = %v, want -0.95", got)
	}

	// Aligned clients: everyone moves the same way, dispersion is tiny,
	// the gate stays shut and the whole federation averages together.
	aligned := [][]LayerPayload{
		{mkLayer(0, []float64{1, 0.00}, 1)},
		{mkLayer(0, []float64{1, 0.01}, 1)},
		{mkLayer(0, []float64{1, 0.02}, 1)},
		{mkLayer(0, []float64{1, 0.03}, 1)},
	}
	agg = newRoundAgg(cfg, nil, aligned, sizes)
	agg.run()
	if len(agg.leaves) != 1 || len(agg.leaves[0]) != 4 {
		t.Fatalf("aligned clients: leaves %v, want one cluster of 4", agg.leaves)
	}

	// No movement at all (zero reported norms): the gate must not fire no
	// matter how the weights are arranged.
	still := [][]LayerPayload{
		{mkLayer(0, []float64{1, 0}, 0)},
		{mkLayer(0, []float64{-1, 0}, 0)},
		{mkLayer(0, []float64{0, 1}, 0)},
		{mkLayer(0, []float64{0, -1}, 0)},
	}
	agg = newRoundAgg(cfg, nil, still, sizes)
	agg.run()
	if len(agg.leaves) != 1 {
		t.Fatalf("stationary clients: leaves %v, want one cluster", agg.leaves)
	}
}

// TestGlobalMeanWeighting pins the rejoin-replay model: the global mean is
// the size-weighted average over every responder, shared with the
// fed simulator's QuorumWeights rule.
func TestGlobalMeanWeighting(t *testing.T) {
	cfg := ServerConfig{NumLayers: 1}
	payloads := [][]LayerPayload{
		{mkLayer(0, []float64{0, 0}, 0)},
		{mkLayer(0, []float64{4, 8}, 0)},
	}
	agg := newRoundAgg(cfg, nil, payloads, []int{30, 10})
	global := agg.globalMean()
	if len(global) != 1 {
		t.Fatalf("global layers %d, want 1", len(global))
	}
	// Weights 0.75/0.25 → 0.25·{4,8} = {1,2}.
	if global[0].Data[0][0] != 1 || global[0].Data[0][1] != 2 {
		t.Fatalf("global mean %v, want [1 2]", global[0].Data[0])
	}
}
