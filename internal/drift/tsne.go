package drift

import (
	"math"

	"fexiot/internal/mat"
)

// TSNE is exact t-distributed stochastic neighbour embedding (van der
// Maaten & Hinton) with PCA initialisation — the dimensionality reduction
// behind Fig. 6. Exact O(n²) gradients are fine at the paper's n = 1500.
//
// Embed is fully deterministic: the PCA initialisation replaces the random
// init of the reference implementation, so there is no random state to seed
// or share, and concurrent embeds on distinct inputs are race-free.
type TSNE struct {
	Perplexity float64
	Iters      int
	LR         float64
}

// NewTSNE uses the conventional defaults.
func NewTSNE() *TSNE {
	return &TSNE{Perplexity: 30, Iters: 300, LR: 100}
}

// Embed reduces x (n×d) to n×2 coordinates.
func (t *TSNE) Embed(x [][]float64) [][]float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return [][]float64{{0, 0}}
	}
	perp := t.Perplexity
	if perp > float64(n-1)/3 {
		perp = float64(n-1) / 3
	}
	if perp < 2 {
		perp = 2
	}

	// Pairwise squared distances.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			d := mat.Dist2(x[i], x[j])
			d2[i][j] = d * d
			d2[j][i] = d * d
		}
	}

	// Per-point sigma via binary search on entropy = log(perplexity).
	p := make([][]float64, n)
	target := math.Log(perp)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		// Zero-variance guard: when every neighbour of i is a duplicate
		// (all pairwise distances zero) the entropy is the same constant for
		// every beta, so the search below can never converge and its clamped
		// ratios degrade into 0/0. The limiting affinity distribution is
		// uniform over the neighbours; return it directly.
		zeroVar := true
		for j := 0; j < n && zeroVar; j++ {
			if j != i && d2[i][j] != 0 {
				zeroVar = false
			}
		}
		if zeroVar {
			for j := 0; j < n; j++ {
				if j != i {
					p[i][j] = 1 / float64(n-1)
				}
			}
			continue
		}
		lo, hi := 1e-10, 1e10
		beta := 1.0
		for it := 0; it < 50; it++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				p[i][j] = math.Exp(-d2[i][j] * beta)
				sum += p[i][j]
			}
			if sum == 0 {
				sum = 1e-12
			}
			var entropy float64
			for j := 0; j < n; j++ {
				if j == i || p[i][j] == 0 {
					continue
				}
				pj := p[i][j] / sum
				entropy -= pj * math.Log(pj)
			}
			if math.Abs(entropy-target) < 1e-4 {
				break
			}
			if entropy > target {
				lo = beta
				if hi > 1e9 {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			sum += p[i][j]
		}
		if sum == 0 {
			sum = 1e-12
		}
		for j := 0; j < n; j++ {
			p[i][j] /= sum
		}
	}
	// Symmetrise with early exaggeration.
	pSym := make([][]float64, n)
	for i := range pSym {
		pSym[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			pSym[i][j] = v
		}
	}

	// PCA init scaled down.
	xm := mat.NewDense(n, len(x[0]))
	for i, row := range x {
		xm.SetRow(i, row)
	}
	init := mat.PCA(xm, 2, 30)
	y := make([][]float64, n)
	for i := range y {
		y[i] = []float64{init.At(i, 0) * 1e-2, init.At(i, 1) * 1e-2}
	}

	vel := make([][]float64, n)
	for i := range vel {
		vel[i] = make([]float64, 2)
	}
	grad := make([][]float64, n)
	for i := range grad {
		grad[i] = make([]float64, 2)
	}
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}

	for iter := 0; iter < t.Iters; iter++ {
		exag := 1.0
		if iter < t.Iters/4 {
			exag = 4 // early exaggeration
		}
		momentum := 0.5
		if iter >= 50 {
			momentum = 0.8
		}
		// Student-t affinities.
		var qSum float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				v := 1 / (1 + dx*dx + dy*dy)
				q[i][j] = v
				q[j][i] = v
				qSum += 2 * v
			}
		}
		if qSum == 0 {
			qSum = 1e-12
		}
		for i := 0; i < n; i++ {
			grad[i][0], grad[i][1] = 0, 0
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mult := (exag*pSym[i][j] - q[i][j]/qSum) * q[i][j]
				grad[i][0] += 4 * mult * (y[i][0] - y[j][0])
				grad[i][1] += 4 * mult * (y[i][1] - y[j][1])
			}
		}
		for i := 0; i < n; i++ {
			for k := 0; k < 2; k++ {
				vel[i][k] = momentum*vel[i][k] - t.LR*grad[i][k]
				y[i][k] += vel[i][k]
			}
		}
	}
	return y
}
