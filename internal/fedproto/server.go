package fedproto

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fexiot/internal/autodiff"
	"fexiot/internal/mat"
)

// DefaultRoundTimeout bounds each per-client read and write when
// ServerConfig.RoundTimeout is left zero. One hung or half-closed client
// must not deadlock the whole federation forever.
const DefaultRoundTimeout = 2 * time.Minute

// ServerConfig controls the networked aggregation server.
type ServerConfig struct {
	Addr      string
	Clients   int // expected client count
	Rounds    int
	Eps1      float64 // Eq. (3) gate, relative interpretation
	Eps2      float64
	NumLayers int
	// RoundTimeout is the per-client read/write deadline applied to every
	// protocol exchange (hello, per-round update receive, model send).
	// Zero selects DefaultRoundTimeout; a negative value disables
	// deadlines entirely (the pre-timeout behaviour).
	RoundTimeout time.Duration
}

// roundTimeout resolves the configured deadline policy.
func (s *Server) roundTimeout() time.Duration {
	switch {
	case s.cfg.RoundTimeout < 0:
		return 0
	case s.cfg.RoundTimeout == 0:
		return DefaultRoundTimeout
	default:
		return s.cfg.RoundTimeout
	}
}

// recvDeadline arms the read deadline on c according to the round policy.
func (s *Server) recvDeadline(c *Conn) {
	if d := s.roundTimeout(); d > 0 {
		c.SetReadDeadline(time.Now().Add(d))
	}
}

// sendDeadline arms the write deadline on c according to the round policy.
func (s *Server) sendDeadline(c *Conn) {
	if d := s.roundTimeout(); d > 0 {
		c.SetWriteDeadline(time.Now().Add(d))
	}
}

// Server aggregates client models over TCP using the layer-wise clustering
// of Algorithm 1.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	conns    []*Conn
	sizes    []int
	payloads [][]LayerPayload // per client, per layer
}

// NewServer creates a server.
func NewServer(cfg ServerConfig) *Server { return &Server{cfg: cfg} }

// Run listens, accepts the expected number of clients, coordinates the
// rounds and returns total transferred bytes (both directions, all
// clients).
func (s *Server) Run() (int64, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	for len(s.conns) < s.cfg.Clients {
		raw, err := ln.Accept()
		if err != nil {
			return 0, err
		}
		c := Wrap(raw)
		s.recvDeadline(c)
		hello, err := c.Recv()
		if err != nil || hello.Kind != MsgHello {
			raw.Close()
			continue
		}
		s.conns = append(s.conns, c)
		s.sizes = append(s.sizes, hello.DataSize)
	}

	for round := 0; round < s.cfg.Rounds; round++ {
		// Collect updates from every client, each receive bounded by the
		// round deadline so one hung client fails the round instead of
		// blocking it forever.
		s.payloads = make([][]LayerPayload, len(s.conns))
		var wg sync.WaitGroup
		errs := make([]error, len(s.conns))
		for i, c := range s.conns {
			wg.Add(1)
			go func(i int, c *Conn) {
				defer wg.Done()
				s.recvDeadline(c)
				m, err := c.Recv()
				if err != nil {
					errs[i] = err
					return
				}
				if m.Kind != MsgUpdate {
					errs[i] = fmt.Errorf("fedproto: unexpected message kind %d", m.Kind)
					return
				}
				s.payloads[i] = m.Layers
			}(i, c)
		}
		wg.Wait()
		if err := joinClientErrs(round, errs); err != nil {
			return s.totalBytes(), err
		}

		// Layer-wise clustering aggregation, mirroring fed.FexIoT.
		replies := make([][]LayerPayload, len(s.conns))
		s.aggregate(0, indexRange(len(s.conns)), replies)

		final := round == s.cfg.Rounds-1
		for i, c := range s.conns {
			msg := &Message{Kind: MsgModel, Round: round, Final: final,
				Layers: replies[i]}
			s.sendDeadline(c)
			if err := c.Send(msg); err != nil {
				return s.totalBytes(), fmt.Errorf("fedproto: round %d client %d: %w", round, i, err)
			}
		}
	}
	for _, c := range s.conns {
		c.Close()
	}
	return s.totalBytes(), nil
}

// aggregate recursively clusters and averages one layer, then descends.
func (s *Server) aggregate(layer int, cluster []int, replies [][]LayerPayload) {
	if layer >= s.cfg.NumLayers {
		return
	}
	// Gate: relative Eq. (3) over the clients' reported update norms and
	// the mean payload direction.
	split := false
	if len(cluster) >= 2 {
		var norms []float64
		var mean []float64
		w := s.weights(cluster)
		for k, i := range cluster {
			flat := flatten(s.payloads[i][layer])
			norms = append(norms, s.payloads[i][layer].UpdateNorm)
			if mean == nil {
				mean = make([]float64, len(flat))
			}
			mat.Axpy(mean, flat, w[k])
			_ = k
		}
		avg := 0.0
		maxN := 0.0
		for _, n := range norms {
			avg += n
			if n > maxN {
				maxN = n
			}
		}
		avg /= float64(len(norms))
		// Weight-space dispersion: mean cosine distance to the average.
		if avg > 0 {
			split = dispersion(s, cluster, layer) > 0 &&
				maxN > s.cfg.Eps2*avg && meanUpdateNorm(s, cluster, layer) < s.cfg.Eps1*avg
		}
	}
	if split {
		c1, c2 := s.binaryCluster(cluster, layer)
		if len(c2) > 0 {
			s.averageInto(c1, layer, replies)
			s.averageInto(c2, layer, replies)
			s.aggregate(layer+1, c1, replies)
			s.aggregate(layer+1, c2, replies)
			return
		}
	}
	s.averageInto(cluster, layer, replies)
	s.aggregate(layer+1, cluster, replies)
}

// meanUpdateNorm approximates ‖Σ w ΔW‖ from reported norms and weight
// dispersion; without previous weights on the server, the dispersion of the
// current weights stands in for update-direction disagreement.
func meanUpdateNorm(s *Server, cluster []int, layer int) float64 {
	// Served conservatively: scale the average reported norm by the weight
	// agreement (1 − dispersion).
	var avg float64
	for _, i := range cluster {
		avg += s.payloads[i][layer].UpdateNorm
	}
	avg /= float64(len(cluster))
	return avg * (1 - dispersion(s, cluster, layer))
}

// dispersion is the mean (1 − cosine) between members' layer weights and
// the cluster mean.
func dispersion(s *Server, cluster []int, layer int) float64 {
	var mean []float64
	flats := make([][]float64, len(cluster))
	for k, i := range cluster {
		flats[k] = flatten(s.payloads[i][layer])
		if mean == nil {
			mean = make([]float64, len(flats[k]))
		}
		mat.Axpy(mean, flats[k], 1/float64(len(cluster)))
	}
	var d float64
	for _, f := range flats {
		d += 1 - mat.CosineSimilarity(f, mean)
	}
	return d / float64(len(cluster))
}

// binaryCluster splits by cosine similarity of layer weights.
func (s *Server) binaryCluster(cluster []int, layer int) ([]int, []int) {
	flats := map[int][]float64{}
	for _, i := range cluster {
		flats[i] = flatten(s.payloads[i][layer])
	}
	seedA, seedB := cluster[0], cluster[1]
	worst := 2.0
	for x := 0; x < len(cluster); x++ {
		for y := x + 1; y < len(cluster); y++ {
			sim := mat.CosineSimilarity(flats[cluster[x]], flats[cluster[y]])
			if sim < worst {
				worst = sim
				seedA, seedB = cluster[x], cluster[y]
			}
		}
	}
	var a, b []int
	for _, i := range cluster {
		if mat.CosineSimilarity(flats[i], flats[seedA]) >=
			mat.CosineSimilarity(flats[i], flats[seedB]) {
			a = append(a, i)
		} else {
			b = append(b, i)
		}
	}
	// Match the in-process semantics: singleton clusters fragment the
	// federation, so keep the cluster whole instead.
	if len(a) < 2 || len(b) < 2 {
		return cluster, nil
	}
	return a, b
}

// averageInto writes the weighted layer mean into every member's reply.
func (s *Server) averageInto(cluster []int, layer int, replies [][]LayerPayload) {
	if len(cluster) == 0 {
		return
	}
	w := s.weights(cluster)
	tmpl := s.payloads[cluster[0]][layer]
	avg := LayerPayload{Layer: tmpl.Layer, Names: tmpl.Names, Shapes: tmpl.Shapes}
	for di := range tmpl.Data {
		sum := make([]float64, len(tmpl.Data[di]))
		for k, i := range cluster {
			mat.Axpy(sum, s.payloads[i][layer].Data[di], w[k])
		}
		avg.Data = append(avg.Data, sum)
	}
	for _, i := range cluster {
		replies[i] = append(replies[i], avg)
	}
}

func (s *Server) weights(cluster []int) []float64 {
	total := 0
	for _, i := range cluster {
		total += s.sizes[i]
	}
	w := make([]float64, len(cluster))
	for k, i := range cluster {
		if total == 0 {
			w[k] = 1 / float64(len(cluster))
		} else {
			w[k] = float64(s.sizes[i]) / float64(total)
		}
	}
	return w
}

func (s *Server) totalBytes() int64 {
	var total int64
	for _, c := range s.conns {
		in, out := c.Bytes()
		total += in + out
	}
	return total
}

func flatten(p LayerPayload) []float64 {
	var out []float64
	for _, d := range p.Data {
		out = append(out, d...)
	}
	return out
}

// joinClientErrs combines every failed client's error into one, annotated
// with round and client index, so a multi-client failure surfaces all
// causes instead of dropping everything past the first.
func joinClientErrs(round int, errs []error) error {
	var out []error
	for i, err := range errs {
		if err != nil {
			out = append(out, fmt.Errorf("fedproto: round %d client %d: %w", round, i, err))
		}
	}
	return errors.Join(out...)
}

func indexRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RunClientLoop drives one client over an established connection: it sends
// hello, then for each round trains locally via the callback, ships all
// layers, and installs the aggregated reply. localRound must run one round
// of local training and return the per-layer update norms.
func RunClientLoop(conn *Conn, clientID, dataSize int,
	params *autodiff.ParamSet,
	localRound func(round int) map[int]float64) error {
	if err := conn.Send(&Message{Kind: MsgHello, ClientID: clientID,
		DataSize: dataSize}); err != nil {
		return err
	}
	layers := make([]int, params.NumLayers())
	for i := range layers {
		layers[i] = i
	}
	for round := 0; ; round++ {
		norms := localRound(round)
		up := &Message{Kind: MsgUpdate, ClientID: clientID, Round: round,
			Layers: EncodeLayers(params, layers, norms)}
		if err := conn.Send(up); err != nil {
			return err
		}
		reply, err := conn.Recv()
		if err != nil {
			return err
		}
		if reply.Kind == MsgDone {
			return nil
		}
		if reply.Kind != MsgModel {
			return fmt.Errorf("fedproto: unexpected reply kind %d", reply.Kind)
		}
		if err := ApplyLayers(params, reply.Layers); err != nil {
			return err
		}
		if reply.Final {
			return nil
		}
	}
}
