package fexiot_test

import (
	"errors"
	"testing"

	"fexiot"
)

// trainedSystem builds a small trained system for API tests.
func trainedSystem(t *testing.T) (*fexiot.System, []*fexiot.Graph) {
	t.Helper()
	opts := fexiot.DefaultOptions()
	opts.Seed, opts.WordDim, opts.SentenceDim = 7, 24, 32
	opts.Hidden, opts.EmbedDim = 12, 8
	sys, err := fexiot.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var train []*fexiot.Graph
	for home := 0; home < 15; home++ {
		arch := fexiot.ArchetypeNames()[home%len(fexiot.ArchetypeNames())]
		deployed := fexiot.GenerateHome(arch, 22, int64(home+1))
		for i := 0; i < 5; i++ {
			train = append(train, sys.BuildGraph(deployed))
		}
	}
	sys.TrainCentral(train, 3, 80)
	return sys, train
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys, train := trainedSystem(t)

	// Detection on a fresh home.
	home := fexiot.GenerateHome("safety", 16, 99)
	g := sys.BuildGraph(home)
	if g.N() < 2 {
		t.Fatalf("graph too small: %d", g.N())
	}
	v, err := sys.Detect(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.Score < 0 || v.Score > 1 {
		t.Fatalf("score %v out of range", v.Score)
	}
	if v.Vulnerable != (v.Score >= 0.5) {
		t.Fatal("verdict inconsistent with score")
	}

	// Explanation on a vulnerable training graph.
	for _, tg := range train {
		if tg.Label && tg.N() >= 6 {
			ex, err := sys.Explain(tg)
			if err != nil {
				t.Fatal(err)
			}
			if len(ex.NodeIndices) == 0 {
				t.Fatal("empty explanation")
			}
			if ex.Sparsity < 0 || ex.Sparsity > 1 {
				t.Fatalf("sparsity %v", ex.Sparsity)
			}
			if len(ex.Rules) != len(ex.NodeIndices) {
				t.Fatal("rules/indices mismatch")
			}
			break
		}
	}

	// Metrics over the training set beat chance comfortably.
	m, err := sys.Evaluate(train)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.6 {
		t.Fatalf("train accuracy %v suspiciously low", m.Accuracy)
	}
}

func TestPublicAPIOnlinePipeline(t *testing.T) {
	sys, _ := trainedSystem(t)
	deployed := fexiot.GenerateHome("safety", 12, 5)
	raw := fexiot.SimulateHome(deployed, 1500, 3)
	if len(raw) == 0 {
		t.Fatal("simulator produced nothing")
	}
	clean := fexiot.CleanLog(raw)
	if len(clean) == 0 || len(clean) >= len(raw) {
		t.Fatalf("cleaning: %d → %d", len(raw), len(clean))
	}
	g := sys.BuildOnlineGraph(deployed, clean)
	if !g.Online {
		t.Fatal("online graph not flagged")
	}
	if _, err := sys.Detect(g); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIFederated(t *testing.T) {
	opts := fexiot.DefaultOptions()
	opts.Seed, opts.WordDim, opts.SentenceDim = 3, 24, 32
	opts.Hidden, opts.EmbedDim = 12, 8
	sys, err := fexiot.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	builderOpts := fexiot.DefaultOptions()
	builderOpts.Seed, builderOpts.WordDim, builderOpts.SentenceDim = 3, 24, 32
	builder, err := fexiot.New(builderOpts)
	if err != nil {
		t.Fatal(err)
	}
	clientData := make([][]*fexiot.Graph, 4)
	for i := range clientData {
		arch := fexiot.ArchetypeNames()[i%len(fexiot.ArchetypeNames())]
		deployed := fexiot.GenerateHome(arch, 22, int64(i*7+1))
		for g := 0; g < 12; g++ {
			clientData[i] = append(clientData[i], builder.BuildGraph(deployed))
		}
	}
	res, err := sys.TrainFederated(clientData, fexiot.AlgoFexIoT, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransferredBytes <= 0 {
		t.Fatal("no communication accounted")
	}
	if len(res.Clusters) != 4 {
		t.Fatalf("cluster assignment %v", res.Clusters)
	}
	// Unknown algorithm rejected.
	if _, err := sys.TrainFederated(clientData, "bogus", 1); err == nil {
		t.Fatal("bogus algorithm must error")
	}
}

func TestUntrainedSystemErrors(t *testing.T) {
	sys, err := fexiot.New(fexiot.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Detect(&fexiot.Graph{}); !errors.Is(err, fexiot.ErrNotTrained) {
		t.Fatalf("Detect: want ErrNotTrained, got %v", err)
	}
	if _, err := sys.Explain(&fexiot.Graph{}); !errors.Is(err, fexiot.ErrNotTrained) {
		t.Fatalf("Explain: want ErrNotTrained, got %v", err)
	}
	if _, err := sys.Evaluate(nil); !errors.Is(err, fexiot.ErrNotTrained) {
		t.Fatalf("Evaluate: want ErrNotTrained, got %v", err)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := fexiot.New(fexiot.Options{}); err == nil {
		t.Fatal("zero-value Options must be rejected (use DefaultOptions)")
	}
	bad := fexiot.DefaultOptions()
	bad.Model = "transformer"
	if _, err := fexiot.New(bad); err == nil {
		t.Fatal("unknown model must be rejected")
	}
	bad = fexiot.DefaultOptions()
	bad.EmbedDim = -4
	if _, err := fexiot.New(bad); err == nil {
		t.Fatal("negative dimension must be rejected")
	}
	bad = fexiot.DefaultOptions()
	bad.Procs = -1
	if _, err := fexiot.New(bad); err == nil {
		t.Fatal("negative Procs must be rejected")
	}
}

func TestArchetypeNames(t *testing.T) {
	names := fexiot.ArchetypeNames()
	if len(names) != 5 {
		t.Fatalf("archetype count %d", len(names))
	}
	// GenerateHome falls back gracefully for unknown archetypes.
	if rs := fexiot.GenerateHome("nonexistent", 5, 1); len(rs) != 5 {
		t.Fatal("fallback generation failed")
	}
}
