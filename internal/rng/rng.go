// Package rng provides deterministic, splittable pseudo-random streams so
// that every experiment in the repository is exactly reproducible from a
// single seed. It wraps math/rand with domain-separated sub-seeds and adds
// the samplers the learning substrates need (Gaussian matrices, Dirichlet
// draws, permutations, categorical sampling).
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"

	"fexiot/internal/mat"
)

// RNG is a deterministic random stream.
type RNG struct {
	r *rand.Rand
}

// New creates a stream from a 64-bit seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream identified by name. The child is
// a pure function of (parent seed state, name), so call order on siblings
// does not matter as long as Split calls themselves are ordered identically.
func (g *RNG) Split(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return New(int64(h.Sum64()) ^ g.r.Int63())
}

// SplitStable derives a child stream from name alone plus a fixed salt drawn
// once; unlike Split it does not advance the parent stream.
func SplitStable(seed int64, name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return New(seed ^ int64(h.Sum64()))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Range returns a uniform float64 in [lo,hi).
func (g *RNG) Range(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// IntRange returns a uniform int in [lo,hi] inclusive.
func (g *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange hi < lo")
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes the n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly chosen element of xs.
func Pick[T any](g *RNG, xs []T) T {
	return xs[g.Intn(len(xs))]
}

// PickWeighted returns an index sampled proportionally to weights.
func (g *RNG) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return g.Intn(len(weights))
	}
	u := g.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Gaussian fills an r×c matrix with N(0, std²) entries.
func (g *RNG) Gaussian(r, c int, std float64) *mat.Dense {
	m := mat.NewDense(r, c)
	d := m.Data()
	for i := range d {
		d[i] = g.NormFloat64() * std
	}
	return m
}

// Glorot fills an r×c matrix with Glorot/Xavier-uniform entries, the
// initialisation the paper's GNN layers use.
func (g *RNG) Glorot(r, c int) *mat.Dense {
	limit := math.Sqrt(6.0 / float64(r+c))
	m := mat.NewDense(r, c)
	d := m.Data()
	for i := range d {
		d[i] = g.Range(-limit, limit)
	}
	return m
}

// Gamma samples from a Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method.
func (g *RNG) Gamma(shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := g.Float64()
		for u == 0 {
			u = g.Float64()
		}
		return g.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet samples a probability vector from Dirichlet(alpha,...,alpha) of
// dimension k. This drives the non-i.i.d. client splits in the paper's
// evaluation (Fig. 4): small alpha concentrates mass on few classes.
func (g *RNG) Dirichlet(k int, alpha float64) []float64 {
	out := make([]float64, k)
	var sum float64
	for i := range out {
		v := g.Gamma(alpha)
		if v < 1e-300 {
			v = 1e-300
		}
		out[i] = v
		sum += v
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// DirichletVec samples from Dirichlet(alphas).
func (g *RNG) DirichletVec(alphas []float64) []float64 {
	out := make([]float64, len(alphas))
	var sum float64
	for i, a := range alphas {
		v := g.Gamma(a)
		if v < 1e-300 {
			v = 1e-300
		}
		out[i] = v
		sum += v
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Poisson samples from Poisson(lambda) via Knuth's method (adequate for the
// small rates used by the event-log simulator).
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		k++
		p *= g.Float64()
		if p <= l {
			return k - 1
		}
		if k > 10000 {
			return k
		}
	}
}

// Exp samples from an exponential distribution with the given rate.
func (g *RNG) Exp(rate float64) float64 {
	return g.r.ExpFloat64() / rate
}

// SampleWithoutReplacement returns k distinct indices from [0,n).
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		k = n
	}
	p := g.Perm(n)
	return p[:k]
}
