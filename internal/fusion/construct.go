// Package fusion implements the cross-modality data fusion of §III-A: the
// correlation features between rule pairs (DTW element similarity, lexical
// relation one-hots, Eq. (1) pair embeddings), offline interaction-graph
// construction by chaining action-trigger pairs, and the fusion of event
// logs with app descriptions into online interaction graphs.
package fusion

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"fexiot/internal/embed"
	"fexiot/internal/graph"
	"fexiot/internal/rng"
	"fexiot/internal/rules"
	"fexiot/internal/vuln"
)

// EdgeOracle decides whether rule a's action triggers rule b's condition.
// The dataset generator uses the ground-truth semantics
// (rules.RuleCanTrigger); the deployed pipeline substitutes a trained
// correlation classifier (§III-A3).
type EdgeOracle func(a, b *rules.Rule) rules.MatchKind

// Builder constructs interaction graphs from rule pools.
type Builder struct {
	Encoder *embed.Encoder
	Oracle  EdgeOracle
	// InjectProb is the probability that a generated graph receives one
	// crafted vulnerability pattern on top of organic interactions,
	// ensuring all six types appear in the corpus.
	InjectProb float64
	// InjectPlatforms restricts the platforms of injected rules (nil = the
	// three app platforms); homogeneous datasets set a single platform.
	InjectPlatforms []rules.Platform

	// mu serialises graph construction: the builder's RNG stream, graph
	// counter and pool index are shared, and the serving engine builds
	// graphs from concurrent HTTP handlers.
	mu      sync.Mutex
	r       *rng.RNG
	nextID  int
	indexed []*rules.Rule
	index   *PoolIndex

	// Node-feature cache: NodeFeature is a pure function of the rule's
	// content (description, platform, trigger, actions — NOT its ID), so
	// re-fusing a streaming session's window after every event batch must
	// never re-tokenise and re-embed unchanged rule text. Keyed by a
	// seeded FNV-64 content hash; guarded by its own mutex because
	// NodeFeature runs while mu is already held.
	featMu     sync.Mutex
	featSeed   uint64
	featCache  map[uint64]featEntry
	featHits   atomic.Int64
	featMisses atomic.Int64
}

type featEntry struct {
	feat  []float64
	space graph.FeatureSpace
}

// maxFeatCacheEntries bounds the feature cache; a full cache is dropped
// wholesale (epoch eviction), which is deterministic and keeps the common
// steady-state — a bounded set of deployed rules per serving process —
// permanently warm.
const maxFeatCacheEntries = 8192

// FeatureCacheStats reports node-feature cache effectiveness.
type FeatureCacheStats struct {
	Hits   int64
	Misses int64
}

// FeatureCacheStats returns cumulative cache hits and misses.
func (b *Builder) FeatureCacheStats() FeatureCacheStats {
	return FeatureCacheStats{Hits: b.featHits.Load(), Misses: b.featMisses.Load()}
}

// ruleContentHash hashes everything NodeFeature reads from a rule, seeded
// per builder. The rule ID is deliberately excluded: two rules with
// identical text and structure embed identically and share a cache slot.
func (b *Builder) ruleContentHash(r *rules.Rule) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	str := func(s string) {
		putU64(uint64(len(s)))
		h.Write([]byte(s))
	}
	cond := func(c rules.Condition) {
		str(c.Device)
		str(c.Room)
		putU64(uint64(c.Channel))
		str(c.State)
	}
	putU64(b.featSeed)
	putU64(uint64(r.Platform))
	str(r.Description)
	cond(r.Trigger)
	putU64(uint64(len(r.Actions)))
	for _, a := range r.Actions {
		str(a.Device)
		str(a.Room)
		str(a.Verb)
		putU64(uint64(a.Channel))
		str(a.State)
		if a.Sensitive {
			putU64(1)
		} else {
			putU64(0)
		}
		putU64(uint64(len(a.Env)))
		for _, d := range a.Env {
			putU64(uint64(d.Channel))
			putU64(uint64(int64(d.Sign)))
		}
	}
	return h.Sum64()
}

// indexFor returns a PoolIndex for pool, rebuilding only when the pool
// changes.
func (b *Builder) indexFor(pool []*rules.Rule) *PoolIndex {
	if b.index != nil && len(b.indexed) == len(pool) &&
		(len(pool) == 0 || &b.indexed[0] == &pool[0]) {
		return b.index
	}
	b.indexed = pool
	b.index = NewPoolIndex(pool)
	return b.index
}

// NewBuilder creates a graph builder with ground-truth edges.
func NewBuilder(seed int64, enc *embed.Encoder) *Builder {
	return &Builder{
		Encoder:    enc,
		Oracle:     rules.RuleCanTrigger,
		InjectProb: 0.18,
		r:          rng.New(seed),
		featSeed:   uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9,
		featCache:  map[uint64]featEntry{},
	}
}

// SigDim is the width of each instance-signature block appended to node
// features (one block for actions + environmental pushes, one for the
// trigger).
const SigDim = 16

// WordFeatureDim returns the node feature width of word-space nodes for an
// encoder (description embedding + two signature blocks).
func WordFeatureDim(enc *embed.Encoder) int { return enc.WordDim() + 2*SigDim }

// SentenceFeatureDim returns the node feature width of sentence-space nodes.
func SentenceFeatureDim(enc *embed.Encoder) int { return enc.SentenceDim() + 2*SigDim }

// NodeFeature encodes a rule into its node feature vector. The semantic
// block comes from the platform-appropriate encoder (sentence encoder for
// voice platforms — the paper's 512-d USE — and word embeddings for app
// platforms — the paper's 300-d spaCy vectors). Two signed instance-
// signature blocks encode which device instances the rule commands and
// watches: a conflicting pair's action signatures cancel under the GNN's
// sum aggregation while a duplicate pair's double, giving the network a
// linear-algebraic handle on the vulnerability patterns.
// The result is cached under a seeded content hash (see ruleContentHash):
// a hit skips tokenisation, word-embedding lookups and the signature sums
// entirely, and returns a fresh copy bit-identical to a recomputation —
// the cache can never change a verdict, only the work to reach it.
func (b *Builder) NodeFeature(r *rules.Rule) ([]float64, graph.FeatureSpace) {
	key := b.ruleContentHash(r)
	b.featMu.Lock()
	if e, ok := b.featCache[key]; ok {
		b.featMu.Unlock()
		b.featHits.Add(1)
		return append([]float64(nil), e.feat...), e.space
	}
	b.featMu.Unlock()
	b.featMisses.Add(1)

	var base []float64
	space := graph.WordSpace
	if r.Platform.VoicePlatform() {
		base = b.Encoder.Sentence(r.Description)
		space = graph.SentenceSpace
	} else {
		base = b.Encoder.RuleEmbedding(r.Description)
	}
	feat := make([]float64, 0, len(base)+2*SigDim)
	feat = append(feat, base...)
	feat = append(feat, actionSignature(r)...)
	feat = append(feat, triggerSignature(r)...)

	b.featMu.Lock()
	if b.featCache == nil {
		b.featCache = map[uint64]featEntry{}
	}
	if len(b.featCache) >= maxFeatCacheEntries {
		clear(b.featCache)
	}
	b.featCache[key] = featEntry{feat: append([]float64(nil), feat...), space: space}
	b.featMu.Unlock()
	return feat, space
}

// instanceKey maps a device state to its signature key and cancellation
// coefficient: opposite poles get ±1 on the same instance key, sign-free
// states get +1 on a state-qualified key.
func instanceKey(room, dev string, ch rules.Channel, state string) (string, float64) {
	if s := rules.StateSign(state); s != 0 {
		return fmt.Sprintf("inst:%s|%s|%d", room, dev, ch), float64(s)
	}
	return fmt.Sprintf("inst:%s|%s|%d|%s", room, dev, ch, state), 1
}

// actionSignature sums signed instance vectors over the rule's actions and
// environmental pushes.
func actionSignature(r *rules.Rule) []float64 {
	sig := make([]float64, SigDim)
	for _, a := range r.Actions {
		key, coef := instanceKey(a.Room, a.Device, a.Channel, a.State)
		axpy(sig, embed.HashVector(key, SigDim), coef)
		for _, d := range a.Env {
			axpy(sig, embed.HashVector(fmt.Sprintf("env:%s|%d", a.Room, d.Channel), SigDim),
				0.5*float64(d.Sign))
		}
	}
	return sig
}

// triggerSignature encodes the watched instance with the trigger pole.
func triggerSignature(r *rules.Rule) []float64 {
	sig := make([]float64, SigDim)
	t := r.Trigger
	key, coef := instanceKey(t.Room, t.Device, t.Channel, t.State)
	axpy(sig, embed.HashVector(key, SigDim), coef)
	return sig
}

func axpy(dst, src []float64, s float64) {
	for i := range dst {
		dst[i] += s * src[i]
	}
}

// Offline chains rules from pool into an interaction graph with about
// `size` nodes (2–50), per §III-A3: random seed rule, grown by sampling
// action-trigger correlated partners, with all oracle edges added among the
// chosen rules. Labels are assigned by the ground-truth detectors.
func (b *Builder) Offline(pool []*rules.Rule, size int) *graph.Graph {
	if len(pool) == 0 {
		panic("fusion: empty rule pool")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if size < 2 {
		size = 2
	}
	if size > 50 {
		size = 50
	}
	b.nextID++
	g := &graph.Graph{ID: fmt.Sprintf("g%d", b.nextID)}

	ix := b.indexFor(pool)
	chosen := map[*rules.Rule]bool{}
	var members []*rules.Rule
	type pendingEdge struct {
		a, b *rules.Rule
	}
	var pending []pendingEdge
	addRule := func(r *rules.Rule) bool {
		if chosen[r] {
			return false
		}
		chosen[r] = true
		members = append(members, r)
		return true
	}
	// connect records the oracle edges between two chained rules (either or
	// both directions may hold).
	connect := func(x, y *rules.Rule) {
		if b.Oracle(x, y) != rules.NoMatch {
			pending = append(pending, pendingEdge{x, y})
		}
		if b.Oracle(y, x) != rules.NoMatch {
			pending = append(pending, pendingEdge{y, x})
		}
	}
	addRule(pool[b.r.Intn(len(pool))])

	// Grow path-like chains: extend from the most recent node most of the
	// time, occasionally branch from an older node, and start a fresh
	// component when the chain runs dry. Only the chained pairs become
	// edges — the paper chains sampled "trigger-action"/"action-trigger"
	// pairs rather than materialising every latent correlation — which
	// yields the sparse, sometimes multi-component graphs of Fig. 8.
	attempts := 0
	for len(members) < size && attempts < size*25 {
		attempts++
		var anchor *rules.Rule
		if b.r.Bool(0.85) {
			anchor = members[len(members)-1]
		} else {
			anchor = members[b.r.Intn(len(members))]
		}
		var fresh []*rules.Rule
		for _, c := range ix.Neighbors(anchor) {
			if !chosen[c] {
				fresh = append(fresh, c)
			}
		}
		if len(fresh) == 0 {
			// Chain ran dry: seed a new component.
			addRule(pool[b.r.Intn(len(pool))])
			continue
		}
		cand := rng.Pick(b.r, fresh)
		addRule(cand)
		connect(anchor, cand)
		// Occasionally close a secondary correlation to an older member,
		// letting forks and cycles arise organically.
		if len(members) > 2 && b.r.Bool(0.12) {
			other := members[b.r.Intn(len(members))]
			if other != cand && other != anchor {
				connect(other, cand)
			}
		}
	}

	// Optionally graft a crafted vulnerability pattern; pattern rules are
	// fully wired among themselves and to the member whose action roots
	// them.
	if b.r.Bool(b.InjectProb) {
		injected := b.injectPattern(members)
		wire := append(append([]*rules.Rule(nil), members...), injected...)
		for _, pr := range injected {
			for _, other := range wire {
				if other != pr {
					connect(other, pr)
				}
			}
		}
		members = append(members, injected...)
	}

	idx := make(map[*rules.Rule]int, len(members))
	for i, r := range members {
		feat, space := b.NodeFeature(r)
		g.AddNode(graph.Node{Rule: r, Feature: feat, Space: space})
		idx[r] = i
	}
	for _, pe := range pending {
		i, iok := idx[pe.a]
		j, jok := idx[pe.b]
		if iok && jok && i != j {
			g.AddEdge(i, j, b.Oracle(pe.a, pe.b))
		}
	}
	vuln.Label(g)
	return g
}

// OfflineSized draws a size in [2,50] (the paper's node-count range, with
// mass concentrated near the ~18-node average Table III reports) and builds
// a graph.
func (b *Builder) OfflineSized(pool []*rules.Rule) *graph.Graph {
	b.mu.Lock()
	size := 2 + b.r.Poisson(9) + b.r.Intn(7)
	b.mu.Unlock()
	if size > 50 {
		size = 50
	}
	return b.Offline(pool, size)
}

// MultiHomePool builds a pool of rules drawn from nHomes generated homes
// cycling through the archetypes; this is the stand-in for the crawled
// multi-platform corpora of §IV-A.
func MultiHomePool(seed int64, nHomes, rulesPerHome int, platform *rules.Platform) []*rules.Rule {
	archs := rules.Archetypes()
	var pool []*rules.Rule
	for h := 0; h < nHomes; h++ {
		gen := rules.NewGenerator(seed+int64(h)*7919, archs[h%len(archs)],
			fmt.Sprintf("h%d-", h))
		if platform != nil {
			pool = append(pool, gen.RuleSetOn(*platform, rulesPerHome)...)
		} else {
			pool = append(pool, gen.RuleSet(rulesPerHome)...)
		}
	}
	return pool
}
