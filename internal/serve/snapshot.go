// Package serve implements the concurrent, snapshot-isolated inference
// engine: the online serving path the paper's deployment story implies
// (real-time vulnerability detection across platforms) but that the
// experiment pipeline never needed. The design splits the system into a
// mutable training side and an immutable serving side:
//
//   - A Snapshot is a deep-frozen copy of everything Detect/Explain reads —
//     GNN weights, classifier state, drift centroids and thresholds, search
//     configuration. Once constructed it is never written again, so any
//     number of requests may read it concurrently without locks.
//   - An Engine holds the live snapshot in an atomic.Pointer and swaps it
//     lock-free when training publishes a new global model. A request loads
//     the pointer exactly once and finishes entirely on that snapshot:
//     a swap mid-request can never tear a verdict across two models.
//
// Requests run on a bounded worker pool sized from mat.Parallelism (the
// same discipline the dense kernels use), with per-request context
// deadlines and optional micro-batching that groups same-shape graphs into
// one batched forward pass.
package serve

import (
	"time"

	"fexiot/internal/drift"
	"fexiot/internal/explain"
	"fexiot/internal/gnn"
	"fexiot/internal/graph"
	"fexiot/internal/ml"
	"fexiot/internal/rules"
)

// Verdict is a detection outcome.
type Verdict struct {
	Vulnerable bool
	Score      float64 // vulnerability probability
	Drifting   bool    // outside the training distribution (§III-B3)
	// DriftScore is the MAD-normalised out-of-distribution deviation A^k;
	// values above the fitted threshold set Drifting.
	DriftScore float64
}

// Explanation is a detected root-cause subgraph.
type Explanation struct {
	NodeIndices []int
	Rules       []*rules.Rule
	Score       float64
	Fidelity    float64
	Sparsity    float64
}

// Snapshot is an immutable, deep-frozen copy of the inference state. All
// fields are private and never mutated after NewSnapshot returns, which is
// the entire concurrency contract: readers share it freely, writers build
// a new one.
type Snapshot struct {
	seq     uint64
	created time.Time
	det     *gnn.Detector
	drf     *drift.Detector // nil when drift was never fitted
	search  explain.SearchConfig
}

// NewSnapshot deep-copies the detector and drift state into a frozen
// snapshot stamped with a publish sequence number. The model weights are
// copied into a fresh architecture-identical instance, the classifier and
// drift statistics are cloned, so no later training step — central,
// federated, or a direct Fit on the originals — can reach the snapshot.
// drf may be nil (verdicts then carry no drift signal).
func NewSnapshot(seq uint64, det *gnn.Detector, drf *drift.Detector,
	search explain.SearchConfig) *Snapshot {
	m := det.Model.Fresh(0)
	m.Params().CopyFrom(det.Model.Params())
	return &Snapshot{
		seq:     seq,
		created: time.Now(),
		det:     &gnn.Detector{Model: m, Clf: det.Clf.Clone()},
		drf:     drf.Clone(),
		search:  search,
	}
}

// Seq is the monotonically increasing publish sequence number.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Created is the instant the snapshot was frozen (snapshot age = now −
// Created).
func (s *Snapshot) Created() time.Time { return s.created }

// Detect classifies one interaction graph against the frozen model.
func (s *Snapshot) Detect(g *graph.Graph) Verdict {
	z := gnn.Embed(s.det.Model, g)
	return s.verdictFromEmbedding(z)
}

// DetectWith classifies one graph using a caller-owned inference workspace,
// the zero-allocation path long-lived workers take: the forward pass runs
// entirely on the workspace's recycled tape memory and the embedding is
// consumed before the call returns. The verdict is bit-identical to Detect.
func (s *Snapshot) DetectWith(ws *gnn.Workspace, g *graph.Graph) Verdict {
	return s.verdictFromEmbedding(ws.Embed(s.det.Model, g))
}

// DetectBatch classifies a batch in one fan-out forward pass (gnn.EmbedAll
// under the shared mat parallelism bound). Each graph's embedding — and
// hence its verdict — is bit-identical to a standalone Detect call; the
// batch only amortises scheduling.
func (s *Snapshot) DetectBatch(gs []*graph.Graph) []Verdict {
	emb := gnn.EmbedAll(s.det.Model, gs)
	out := make([]Verdict, len(gs))
	for i, z := range emb {
		out[i] = s.verdictFromEmbedding(z)
	}
	return out
}

func (s *Snapshot) verdictFromEmbedding(z []float64) Verdict {
	score := s.det.Clf.Score(z)
	v := Verdict{Vulnerable: score >= 0.5, Score: score}
	if s.drf != nil {
		v.DriftScore = s.drf.Anomaly(z)
		v.Drifting = s.drf.IsDrifting(z)
	}
	return v
}

// Explain runs the SHAP-guided Monte Carlo beam search (Algorithm 2)
// against the frozen model and returns the highest-risk connected
// subgraph. All sampling derives from the snapshot's search seed, so
// concurrent Explain calls on the same snapshot and graph return identical
// explanations.
func (s *Snapshot) Explain(g *graph.Graph) Explanation {
	h := func(sub *graph.Graph) float64 {
		if sub.N() == 0 {
			return 0
		}
		return s.det.Score(sub)
	}
	ex := explain.FexIoTExplain(h, g, s.search)
	out := Explanation{
		NodeIndices: ex.Nodes,
		Score:       ex.Score,
		Fidelity:    explain.Fidelity(h, g, ex.Nodes),
		Sparsity:    explain.Sparsity(g, ex.Nodes),
	}
	for _, idx := range ex.Nodes {
		out.Rules = append(out.Rules, g.Nodes[idx].Rule)
	}
	return out
}

// Evaluate computes detection metrics over labelled graphs against the
// frozen model.
func (s *Snapshot) Evaluate(graphs []*graph.Graph) ml.Metrics {
	return gnn.EvaluateDetector(s.det, graphs)
}
