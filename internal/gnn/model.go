// Package gnn implements the graph neural networks of the paper's
// evaluation: GCN (Kipf & Welling) and GIN (Xu et al.) for the homogeneous
// IFTTT dataset, and MAGNN-style metapath-aggregated heterogeneous
// embedding for the five-platform dataset. Models produce fixed-size graph
// embeddings trained with the contrastive loss of Eq. (2); a local linear
// classifier (ml.SGDClassifier) turns embeddings into vulnerability
// predictions, mirroring §III-B1.
package gnn

import (
	"fexiot/internal/autodiff"
	"fexiot/internal/graph"
)

// Model is a graph representation learner. Implementations must register
// all weights in a ParamSet with layer indices (bottom = 0) so the
// layer-wise federated clustering of Algorithm 1 can operate on them.
type Model interface {
	// Params exposes the trainable weights.
	Params() *autodiff.ParamSet
	// Forward builds the 1×EmbedDim graph embedding on a tape.
	Forward(t *autodiff.Tape, b *autodiff.Binder, g *graph.Graph) *autodiff.Node
	// EmbedDim is the embedding width.
	EmbedDim() int
	// Fresh returns a new model with the same architecture and
	// independently initialised weights (used to spawn FL clients).
	Fresh(seed int64) Model
}
